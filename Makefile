GO ?= go

.PHONY: all build test vet bench bench-telemetry check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The full evaluation-in-miniature: one benchmark per paper table/figure.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Tracer overhead: disabled vs discard-sink vs JSONL-encoding runs.
bench-telemetry:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchmem .

check: build vet test

clean:
	$(GO) clean ./...
	rm -f out.jsonl out.trace.json *.cpu.pb.gz *.mem.pb.gz
