GO ?= go

.PHONY: all build test vet bench bench-json bench-telemetry chaos serve service-smoke dist-smoke check clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The full evaluation-in-miniature: one benchmark per paper table/figure.
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Engine micro-benchmarks (interpreter, energy accounting, power events)
# plus the two headline figure matrices, archived as machine-readable
# JSON; CI uploads the file as an artifact. The memory-hierarchy fast-path
# benchmarks run as a second pass with the default benchtime — they are
# nanosecond-scale, so 3 iterations would be pure noise.
bench-json:
	{ $(GO) test -run '^$$' -bench 'BenchmarkEngineStep|BenchmarkRunOutageFree|BenchmarkRunRFHome|BenchmarkRunBatch' . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkFig5OutageFree|BenchmarkFig6RFHome' -benchtime 3x . ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCacheProbe|BenchmarkCacheDirtySweep|BenchmarkCacheInvalidate|BenchmarkBufferSearch' . ; } \
		| $(GO) run ./cmd/benchjson -o BENCH_engine.json
	@cat BENCH_engine.json

# The regression gate: fresh engine benchmarks vs the committed
# BENCH_engine.json baseline, failing on >15% sim-instrs/s loss.
# WARN=1 downgrades failures to GitHub warning annotations (CI mode).
bench-check:
	./scripts/bench_check.sh $(if $(WARN),-warn-only)

# Tracer overhead: disabled vs discard-sink vs JSONL-encoding runs.
bench-telemetry:
	$(GO) test -run xxx -bench BenchmarkTelemetry -benchmem .

# Resilience suite under the race detector plus a real SIGKILL
# kill/resume smoke against the sweepexp binary (docs/ROBUSTNESS.md).
chaos:
	$(GO) test -race -count=1 -run 'TestKillResume|TestPanicIsolation|TestRunMatrix|TestCellTimeout|TestCancel|TestOpenTolerance|TestAttemptSalting|TestPanicDeterminism|TestCorruptFile|TestRunBatch|TestSeedSweep' ./internal/exp/ ./internal/sim/ ./internal/journal/ ./internal/chaos/
	$(GO) test -race -count=1 ./internal/store/ ./internal/service/
	./scripts/kill_resume_smoke.sh

# Run the simulation server locally (docs/SERVICE.md); cmd/sweepctl is
# the client.
serve:
	$(GO) run ./cmd/sweepd -listen :8077 -store cells.jsonl

# Boot sweepd, replay a mixed workload through sweepctl, restart, and
# check digests survive every cache tier (scripts/service_smoke.sh).
service-smoke:
	./scripts/service_smoke.sh

# Distributed-campaign chaos: coordinator suite under the race detector,
# then three real workers vs SIGKILL / SIGSTOP-past-TTL / torn journal,
# with merged digests diffed against a single-process golden run
# (scripts/dist_smoke.sh).
dist-smoke:
	$(GO) test -race -count=1 ./internal/dist/
	./scripts/dist_smoke.sh

check: build vet test

clean:
	$(GO) clean ./...
	rm -f out.jsonl out.trace.json *.cpu.pb.gz *.mem.pb.gz
