// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark runs can be archived and diffed by CI (the
// BENCH_engine.json artifact) without scraping the text format twice.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngine . | go run ./cmd/benchjson -o BENCH_engine.json
//
// Non-benchmark lines (goos/goarch/pkg headers, PASS/ok trailers) are
// carried in the context block, together with the attribution fields a
// regression gate needs — git commit, sim.EngineVersion, GOMAXPROCS —
// and every `BenchmarkX  N  v unit  v unit...` line becomes one result
// entry with all its metrics. cmd/benchcheck diffs two such documents.
package main

import (
	"flag"
	"log/slog"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/obs"
	"repro/internal/sim"
)

// gitCommit resolves the current commit: the VCS stamp the go toolchain
// embeds when it has one, else a direct `git rev-parse`, else "unknown"
// (benchjson must keep working outside a checkout).
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			return rev + dirty
		}
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	logfmt := flag.String("logfmt", "text", "log format: text|json")
	verbose := flag.Bool("v", false, "debug logging")
	flag.Parse()
	log, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		slog.Error("benchjson: bad -logfmt", "err", err)
		os.Exit(2)
	}

	doc, err := benchfmt.Parse(os.Stdin)
	if err != nil {
		log.Error("read failed", "err", err)
		os.Exit(1)
	}
	// Attribution: make every archived entry answerable to "which code,
	// which engine model, how many procs".
	doc.Context["git-commit"] = gitCommit()
	doc.Context["engine"] = sim.EngineVersion
	doc.Context["gomaxprocs"] = strconv.Itoa(runtime.GOMAXPROCS(0))
	log.Debug("parsed benchmarks",
		"results", len(doc.Results), "commit", doc.Context["git-commit"],
		"engine", doc.Context["engine"])

	enc, err := doc.Encode()
	if err != nil {
		log.Error("encode failed", "err", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		log.Error("write failed", "path", *out, "err", err)
		os.Exit(1)
	}
}
