// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark runs can be archived and diffed by CI (the
// BENCH_engine.json artifact) without scraping the text format twice.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkEngine . | go run ./cmd/benchjson -o BENCH_engine.json
//
// Non-benchmark lines (goos/goarch/pkg headers, PASS/ok trailers) are
// carried in the context block; every `BenchmarkX  N  v unit  v unit...`
// line becomes one result entry with all its metrics.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is the emitted document.
type Doc struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: n, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := Doc{Context: map[string]string{}, Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if r, ok := parseLine(line); ok {
			doc.Results = append(doc.Results, r)
			continue
		}
		// goos/goarch/pkg/cpu headers: "key: value".
		if k, v, ok := strings.Cut(line, ":"); ok && !strings.Contains(k, " ") && v != "" {
			doc.Context[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: encode:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: write:", err)
		os.Exit(1)
	}
}
