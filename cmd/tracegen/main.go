// Command tracegen emits a synthetic power trace as CSV (time_us,power_uW)
// for inspection or plotting.
//
// Usage:
//
//	tracegen -profile rfhome -seed 1 -duration 100ms > rfhome.csv
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	profile := flag.String("profile", "rfoffice", "rfhome|rfoffice|solar|thermal")
	seed := flag.Int64("seed", 1, "generator seed")
	duration := flag.Duration("duration", 100*time.Millisecond, "trace length")
	logfmt := flag.String("logfmt", "text", "log format: text|json")
	verbose := flag.Bool("v", false, "debug logging")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		slog.Error("tracegen: bad -logfmt", "err", err)
		os.Exit(2)
	}

	var pr trace.Profile
	switch *profile {
	case "rfhome":
		pr = trace.RFHome
	case "rfoffice":
		pr = trace.RFOffice
	case "solar":
		pr = trace.Solar
	case "thermal":
		pr = trace.Thermal
	default:
		log.Error("unknown profile", "profile", *profile)
		os.Exit(1)
	}

	// Ctrl-C stops generation gracefully: the rows written so far flush,
	// leaving a well-formed (if shorter) CSV instead of a torn last line.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	src := trace.New(pr, *seed)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintln(out, "time_us,power_uW")
	var t int64
	limit := duration.Nanoseconds()
	for i := 0; t < limit; i++ {
		if i%1024 == 0 && ctx.Err() != nil {
			log.Warn("interrupted", "at_ms", float64(t)/1e6)
			break
		}
		d, p := src.Next()
		fmt.Fprintf(out, "%.3f,%.3f\n", float64(t)/1e3, p*1e6)
		t += d
	}
}
