// Command benchcheck is the benchmark-regression gate: it diffs a fresh
// benchjson document against the committed baseline (BENCH_engine.json)
// on one metric and fails when any benchmark regresses beyond the
// tolerance. scripts/bench_check.sh wires the fresh run; CI runs it with
// -warn-only so shared-runner noise annotates instead of failing.
//
// Usage:
//
//	go run ./cmd/benchcheck -baseline BENCH_engine.json -current fresh.json
//	go run ./cmd/benchcheck -baseline BENCH_engine.json -current fresh.json -warn-only
//
// The default metric, sim-instrs/s, is higher-better; pass
// -higher-better=false for latency metrics like ns/op.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"repro/internal/benchfmt"
	"repro/internal/obs"
)

func main() {
	baseline := flag.String("baseline", "BENCH_engine.json", "baseline benchjson document")
	current := flag.String("current", "", "fresh benchjson document to gate (required)")
	metric := flag.String("metric", "sim-instrs/s", "metric to compare")
	tolerance := flag.Float64("tolerance", 0.15, "allowed relative regression (0.15 = 15%)")
	higherBetter := flag.Bool("higher-better", true, "larger metric values are better (false for ns/op-style metrics)")
	warnOnly := flag.Bool("warn-only", false, "report regressions as GitHub warning annotations and exit 0 (CI-noise mode)")
	logfmt := flag.String("logfmt", "text", "log format: text|json")
	verbose := flag.Bool("v", false, "debug logging")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		slog.Error("benchcheck: bad -logfmt", "err", err)
		os.Exit(2)
	}
	if *current == "" {
		log.Error("missing -current document")
		os.Exit(2)
	}
	base, err := benchfmt.ReadFile(*baseline)
	if err != nil {
		log.Error("baseline unreadable", "err", err)
		os.Exit(2)
	}
	cur, err := benchfmt.ReadFile(*current)
	if err != nil {
		log.Error("current unreadable", "err", err)
		os.Exit(2)
	}

	deltas, err := benchfmt.Compare(base, cur, *metric, *tolerance, *higherBetter)
	if err != nil {
		// Missing benchmarks gate too: a comparison that silently skips
		// entries would pass on an empty run.
		log.Error("comparison incomplete", "err", err)
		if !*warnOnly {
			os.Exit(1)
		}
		fmt.Printf("::warning title=benchcheck::%v\n", err)
		if deltas == nil {
			os.Exit(0)
		}
	}

	regressed := 0
	for _, d := range deltas {
		attrs := []any{
			"bench", d.Name, "metric", *metric,
			"baseline", d.Base, "current", d.Current, "change", d.Change(),
		}
		if d.Regressed {
			regressed++
			log.Warn("regression", attrs...)
			if *warnOnly {
				fmt.Printf("::warning title=bench regression::%s %s %s (baseline %g, current %g, tolerance %.0f%%)\n",
					d.Name, *metric, d.Change(), d.Base, d.Current, *tolerance*100)
			}
		} else {
			log.Info("ok", attrs...)
		}
	}
	log.Info("benchcheck summary",
		"baseline", *baseline,
		"baseline_commit", base.Context["git-commit"],
		"baseline_engine", base.Context["engine"],
		"current_commit", cur.Context["git-commit"],
		"compared", len(deltas), "regressed", regressed,
		"tolerance", *tolerance)
	if regressed > 0 && !*warnOnly {
		os.Exit(1)
	}
}
