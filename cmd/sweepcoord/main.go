// Command sweepcoord coordinates a distributed campaign: it expands a
// cell matrix, farms the cells out as TTL-bounded leases to N sweepd
// workers, and survives worker kills, hangs, stragglers, and torn
// journals — re-issuing expired leases, hedging stragglers at k×p95,
// retrying deterministic failures with capped backoff, and quarantining
// poisoned cells instead of aborting. Accepted completions are merged
// into one journal and one sorted digest file proven byte-identical to
// a single-process run.
//
// Usage:
//
//	sweepcoord -workers host1:8077,host2:8077,host3:8077 \
//	    -workloads quick -schemes eval -profile RFHome -seeds 2 \
//	    -journal merged.jsonl -digests merged.txt
//
//	sweepcoord -local -workloads quick ... -digests golden.txt
//
// -local runs the identical cell set in-process (no workers): the
// golden reference for digest-identity checks. The final report is JSON
// on stdout. Exit codes: 0 all cells completed, 3 completed with
// quarantined cells, 1 hard failure (stall, merge-journal error,
// cancellation), 2 usage.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/sim"
)

func main() {
	workers := flag.String("workers", "", "comma-separated sweepd worker addresses (required unless -local)")
	local := flag.Bool("local", false, "run the campaign in-process instead (golden reference mode)")
	workloadSpec := flag.String("workloads", "quick", "workload set: quick|all|name,name,...")
	schemeSpec := flag.String("schemes", "eval", "scheme set: eval|all|Name,Name,... (presentation names)")
	profile := flag.String("profile", "", "supply profile (RFHome, RFOffice, solar, thermal; '' = outage-free)")
	seeds := flag.Int("seeds", 1, "seeds per cell (1..N)")
	scale := flag.Int("scale", 1, "workload scale factor")
	paramsPath := flag.String("params", "", "JSON params override file (partial, on Table 1 defaults)")
	journalPath := flag.String("journal", "", "merged journal path for accepted completions")
	digestsPath := flag.String("digests", "", "write sorted 'key digest' lines here (diffable vs golden)")
	ttl := flag.Duration("ttl", 30*time.Second, "lease TTL (must exceed worst-case cell time on a healthy worker)")
	attempts := flag.Int("attempts", 3, "deterministic failures before a cell is quarantined")
	lanes := flag.Int("lanes", 2, "concurrent leases per worker")
	hedgeK := flag.Float64("hedge", 4, "hedge stragglers at k×p95 cell latency")
	stall := flag.Duration("stalltimeout", 2*time.Minute, "fail the campaign after this long with no worker response")
	timeout := flag.Duration("timeout", 0, "overall campaign deadline (0 = none)")
	listen := flag.String("listen", "", "serve coordinator /progress,/metrics,/healthz,/runinfo on this address")
	logfmt := flag.String("logfmt", "text", "log format: text|json")
	verbose := flag.Bool("v", false, "debug logging")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		slog.Error("sweepcoord: bad -logfmt", "err", err)
		os.Exit(2)
	}
	usage := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(2)
	}
	fail := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	wl, err := dist.ParseWorkloads(*workloadSpec)
	if err != nil {
		usage("bad -workloads", "err", err)
	}
	sc, err := dist.ParseSchemes(*schemeSpec)
	if err != nil {
		usage("bad -schemes", "err", err)
	}
	var params json.RawMessage
	if *paramsPath != "" {
		raw, err := os.ReadFile(*paramsPath)
		if err != nil {
			usage("bad -params", "err", err)
		}
		params = raw
	}
	seedList := make([]int64, 0, *seeds)
	for s := int64(1); s <= int64(*seeds); s++ {
		seedList = append(seedList, s)
	}
	spec := dist.MatrixSpec{
		Workloads: wl, Schemes: sc, Profile: *profile,
		Seeds: seedList, Scale: *scale, Params: params,
	}
	reqs := spec.Requests()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var rep *dist.Report
	if *local {
		log.Info("running golden local campaign", "cells", len(reqs))
		rep, err = dist.RunLocal(ctx, reqs, log)
		if err != nil {
			fail("local campaign failed", "err", err)
		}
	} else {
		if *workers == "" {
			usage("need -workers (or -local)")
		}
		var addrs []string
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				addrs = append(addrs, w)
			}
		}
		tracker := obs.NewCampaignTracker(log)
		if *listen != "" {
			info := obs.NewRunInfo("sweepcoord", sim.EngineVersion)
			srv := &obs.Server{Info: info, Tracker: tracker, Log: log}
			_, shutdown, err := srv.Serve(*listen)
			if err != nil {
				fail("introspection server failed", "err", err)
			}
			defer shutdown()
		}
		cfg := dist.Config{
			Workers: addrs, LanesPerWorker: *lanes, LeaseTTL: *ttl,
			MaxAttempts: *attempts, HedgeK: *hedgeK, StallTimeout: *stall,
			Tracker: tracker, Log: log,
		}
		if *journalPath != "" {
			j, err := journal.Open(*journalPath)
			if err != nil {
				fail("merged journal open failed", "path", *journalPath, "err", err)
			}
			defer j.Close()
			cfg.MergeJournal = j
		}
		coord, err := dist.New(cfg)
		if err != nil {
			usage("bad coordinator config", "err", err)
		}
		log.Info("distributed campaign starting",
			"workers", len(addrs), "cells", len(reqs), "ttl", *ttl,
			"lanes_per_worker", *lanes, "max_attempts", *attempts)
		rep, err = coord.Run(ctx, reqs)
		if err != nil {
			// Emit what we have before failing: partial accounting beats
			// none when diagnosing a dead fleet.
			if rep != nil {
				log.Info("campaign aborted", "summary", rep.Summary())
				writeReport(rep, digestsPath, log)
			}
			fail("campaign failed", "err", err)
		}
	}

	log.Info("campaign finished",
		"summary", rep.Summary(), "campaign_digest", rep.CampaignDigest())
	writeReport(rep, digestsPath, log)
	if len(rep.Quarantined) > 0 {
		os.Exit(3)
	}
}

// writeReport emits the JSON report on stdout and, when requested, the
// sorted digest lines to their file.
func writeReport(rep *dist.Report, digestsPath *string, log *slog.Logger) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Error("report encode failed", "err", err)
	}
	if *digestsPath == "" {
		return
	}
	f, err := os.Create(*digestsPath)
	if err != nil {
		log.Error("digest file create failed", "path", *digestsPath, "err", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := rep.WriteDigests(f); err != nil {
		log.Error("digest file write failed", "path", *digestsPath, "err", err)
		os.Exit(1)
	}
}
