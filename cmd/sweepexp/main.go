// Command sweepexp regenerates the paper's tables and figures.
//
// Usage:
//
//	sweepexp -exp fig5            # one experiment
//	sweepexp -exp all             # everything (EXPERIMENTS.md source)
//	sweepexp -exp fig7 -quick     # reduced workload subset
//	sweepexp -exp all -journal run.jsonl   # crash-safe: kill and rerun to resume
//	sweepexp -exp all -listen :8090        # live introspection while it runs
//	sweepexp -list                # list experiment names
//
// Ctrl-C (or -timeout) cancels the run promptly: in-flight simulations
// abort at their next epoch boundary, workers drain, and the process
// exits 130. With -journal, cells completed before the interruption are
// durable and a rerun with the same flags resumes where it stopped,
// producing byte-identical results (see docs/ROBUSTNESS.md).
//
// With -listen, a live control plane serves /metrics (Prometheus text),
// /progress (per-cell states, cells/sec, ETA), /healthz, and /runinfo
// while the campaign runs, and a watchdog logs cells running beyond 4×
// the rolling p95 (see docs/OBSERVABILITY.md). Without the flag the
// tracking hooks are nil no-ops and results are byte-identical.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/exp"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
)

type experiment struct {
	name string
	desc string
	run  func(c *exp.Context) error
}

// csvDir, when set by -csv, receives <experiment>.csv exports for the
// figures that support them.
var csvDir string

// exportCSV writes one figure's CSV when -csv is in effect.
func exportCSV(name string, write func(w io.Writer) error) error {
	if csvDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return write(f)
}

var experiments = []experiment{
	{"table1", "simulation configuration", func(c *exp.Context) error { c.Table1(); return nil }},
	{"fig5", "outage-free speedups over NVP", func(c *exp.Context) error {
		r, err := c.Fig5()
		if err != nil {
			return err
		}
		if c.Out != nil {
			fmt.Fprintln(c.Out, r.Chart())
		}
		return exportCSV("fig5", r.WriteCSV)
	}},
	{"fig6", "RFHome speedups over NVP", func(c *exp.Context) error {
		r, err := c.Fig6()
		if err != nil {
			return err
		}
		return exportCSV("fig6", r.WriteCSV)
	}},
	{"fig7", "RFOffice speedups over NVP", func(c *exp.Context) error {
		r, err := c.Fig7()
		if err != nil {
			return err
		}
		return exportCSV("fig7", r.WriteCSV)
	}},
	{"par", "Sec 6.3 parallelism efficiency", func(c *exp.Context) error { _, err := c.Parallelism(); return err }},
	{"fig8", "cache-size sensitivity", func(c *exp.Context) error { _, err := c.Fig8(); return err }},
	{"fig9", "capacitor sensitivity + Table 2 outages", func(c *exp.Context) error {
		r, err := c.Fig9()
		if err != nil {
			return err
		}
		return exportCSV("fig9", r.WriteCSV)
	}},
	{"fig10", "power-trace comparison", func(c *exp.Context) error {
		r, err := c.Fig10()
		if err != nil {
			return err
		}
		return exportCSV("fig10", r.WriteCSV)
	}},
	{"fig11", "propagation-delay sensitivity", func(c *exp.Context) error { _, err := c.Fig11(); return err }},
	{"fig12", "region size / store count CDFs", func(c *exp.Context) error {
		r, err := c.Fig12()
		if err != nil {
			return err
		}
		return exportCSV("fig12", r.WriteCSV)
	}},
	{"icount", "Sec 6.5 instruction counts", func(c *exp.Context) error { _, err := c.ICount(); return err }},
	{"fig13", "backup/restore energy breakdown", func(c *exp.Context) error { _, err := c.Fig13(); return err }},
	{"fig14", "SweepCache vs NvMR", func(c *exp.Context) error { _, err := c.Fig14(); return err }},
	{"fig15", "cache miss rates per trace", func(c *exp.Context) error { _, err := c.Fig15(); return err }},
	{"fig16", "NVM writes normalized to NVSRAM", func(c *exp.Context) error { _, err := c.Fig16(); return err }},
	{"hwcost", "Sec 6.9 hardware cost", func(c *exp.Context) error { c.HWCost(); return nil }},
	{"degradation", "Sec 2.2 backup-threshold ablation", func(c *exp.Context) error { _, err := c.Degradation(); return err }},
	{"threshold", "Sec 6.4 store-threshold study", func(c *exp.Context) error { _, err := c.Threshold(); return err }},
	{"ablation", "design-choice ablations (dual-buffer, empty-bit, unrolling)", func(c *exp.Context) error {
		r, err := c.Ablation()
		if err == nil && c.Out != nil {
			fmt.Fprintln(c.Out, r.Chart())
		}
		return err
	}},
	{"recovery", "per-outage recovery latency (Sec 2.2 slow-recovery claim)", func(c *exp.Context) error { _, err := c.Recovery(); return err }},
	{"vmin", "Table 1 footnote: SweepCache with Vmin 1.8 V", func(c *exp.Context) error { _, err := c.Vmin(); return err }},
	{"wt", "Figure 1(b) naive write-through baseline", func(c *exp.Context) error { _, err := c.WT(); return err }},
}

// extraExperiments run only when named explicitly: a Monte-Carlo seed
// sweep multiplies the whole Figure 6 matrix by -seeds, so it is not part
// of 'all'.
var extraExperiments = []experiment{
	{"seedsweep", "Monte-Carlo seed sweep: Fig 6 matrix × -seeds timelines, batched (mean ±95% CI)",
		func(c *exp.Context) error { _, err := c.Sweep(); return err }},
}

func main() {
	name := flag.String("exp", "all", "experiment name or 'all'")
	csv := flag.String("csv", "", "directory to export figure CSVs into")
	quick := flag.Bool("quick", false, "run the reduced workload subset")
	scale := flag.Int("scale", 1, "workload scale factor")
	seed := flag.Int64("seed", 1, "power-trace seed")
	seeds := flag.Int("seeds", 1, "seed count for -exp seedsweep: timelines seed..seed+seeds-1 per cell")
	batch := flag.Int("batch", 8, "lockstep batch width for -exp seedsweep")
	only := flag.String("only", "", "comma-separated workload names to restrict the sweep to")
	metricsFile := flag.String("metrics", "", "write metrics aggregated across every simulated run to this file ('-' = stdout)")
	traceDir := flag.String("tracedir", "", "record one JSONL telemetry stream per simulated run into this directory")
	pprofPrefix := flag.String("pprof", "", "write <prefix>.cpu.pb.gz and <prefix>.mem.pb.gz profiles")
	paramsFile := flag.String("params", "", "JSON file of config.Params overrides (validated before any run)")
	timeout := flag.Duration("timeout", 0, "cancel the whole run after this duration (0 = none)")
	cellTimeout := flag.Duration("celltimeout", 0, "per-cell wall-clock bound; an overrunning cell fails while the rest complete (0 = none)")
	journalPath := flag.String("journal", "", "append-only cell journal for crash-safe resume; rerun with the same flags to skip proven cells")
	chaosSpec := flag.String("chaos", "", "fault-injection spec, e.g. 'seed=7,panic=0.05,cancel=12,delay=5ms' (testing only)")
	listen := flag.String("listen", "", "serve live /metrics, /progress, /healthz, /runinfo on this address (e.g. :8090)")
	logfmt := flag.String("logfmt", "text", "log format: text|json")
	verbose := flag.Bool("v", false, "debug logging")
	list := flag.Bool("list", false, "list experiments")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		slog.Error("sweepexp: bad -logfmt", "err", err)
		os.Exit(2)
	}
	fail := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	if *list {
		for _, e := range experiments {
			fmt.Printf("%-12s %s\n", e.name, e.desc)
		}
		for _, e := range extraExperiments {
			fmt.Printf("%-12s %s (not part of 'all')\n", e.name, e.desc)
		}
		return
	}

	csvDir = *csv
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			fail("csv directory", "err", err)
		}
	}
	ctx := exp.DefaultContext()
	ctx.Quick = *quick
	ctx.Scale = *scale
	ctx.Seed = *seed
	ctx.Seeds = *seeds
	ctx.BatchWidth = *batch
	if *only != "" {
		ctx.Only = strings.Split(*only, ",")
	}
	ctx.Out = os.Stdout
	ctx.CellTimeout = *cellTimeout
	if *paramsFile != "" {
		raw, err := os.ReadFile(*paramsFile)
		if err != nil {
			fail("params file unreadable", "path", *paramsFile, "err", err)
		}
		p, err := config.FromJSON(raw)
		if err != nil {
			fail("params file invalid", "path", *paramsFile, "err", err)
		}
		ctx.Params = p
	}
	// Metrics accumulate for an explicit -metrics file and for the live
	// /metrics endpoint.
	if *metricsFile != "" || *listen != "" {
		ctx.Metrics = telemetry.NewSnapshot()
	}

	// Ctrl-C / SIGTERM cancel the run; a second signal kills the process
	// outright via the restored default handler.
	runCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}
	ctx.Ctx = runCtx

	info := obs.NewRunInfo("sweepexp", sim.EngineVersion)
	info.Experiment = *name
	info.ParamsFP = ctx.Params.Fingerprint()
	info.Seed = *seed
	info.Scale = *scale
	info.Journal = *journalPath

	if *journalPath != "" {
		jn, err := journal.Open(*journalPath)
		if err != nil {
			fail("journal open failed", "path", *journalPath, "err", err)
		}
		defer jn.Close()
		ctx.Journal = jn
		if st := jn.Stats(); st.Loaded > 0 || st.Corrupt > 0 {
			log.Info("journal loaded",
				"path", *journalPath, "cells_loaded", st.Loaded, "lines_corrupt", st.Corrupt)
		}
	}
	if *chaosSpec != "" {
		cfg, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fail("chaos spec invalid", "spec", *chaosSpec, "err", err)
		}
		ctx.Chaos = chaos.New(cfg)
		info.ChaosSpec = *chaosSpec
		info.ChaosSeed = cfg.Seed
	}
	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fail("trace directory", "err", err)
		}
		ctx.TraceDir = *traceDir
	}

	if *listen != "" {
		tracker := obs.NewCampaignTracker(log)
		ctx.Tracker = tracker
		if ctx.Journal != nil {
			st := ctx.Journal.Stats()
			tracker.SetJournalStats(st.Loaded, st.Corrupt)
		}
		stopWatchdog := tracker.StartWatchdog(2*time.Second, 4)
		defer stopWatchdog()
		srv := &obs.Server{Info: info, Tracker: tracker, Extra: ctx.MetricsSnapshot, Log: log}
		_, shutdown, err := srv.Serve(*listen)
		if err != nil {
			fail("introspection server", "err", err)
		}
		defer shutdown()
	}

	var stopProfiles func() error
	if *pprofPrefix != "" {
		stop, err := telemetry.StartProfiles(*pprofPrefix)
		if err != nil {
			fail("profile start failed", "err", err)
		}
		stopProfiles = stop
	}

	all := append(append([]experiment{}, experiments...), extraExperiments...)
	ran := false
	for _, e := range all {
		// Explicitly-named extras run; 'all' covers the standard set only.
		inAll := true
		for _, x := range extraExperiments {
			if e.name == x.name {
				inAll = false
			}
		}
		if (*name == "all" && inAll) || *name == e.name {
			ran = true
			ctx.Tracker.BeginPhase(e.name)
			log.Debug("experiment starting", "exp", e.name)
			if err := e.run(ctx); err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					log.Error("interrupted", "exp", e.name, "err", err)
					if *journalPath != "" {
						st := ctx.Journal.Stats()
						log.Info("completed cells are journaled — rerun with the same flags to resume",
							"journal", *journalPath,
							"cells_loaded", st.Loaded, "cells_appended", st.Appends,
							"lines_corrupt", st.Corrupt)
					}
					os.Exit(130)
				}
				fail("experiment failed", "exp", e.name, "err", err)
			}
		}
	}
	if !ran {
		fail("unknown experiment (use -list)", "exp", *name)
	}

	if stopProfiles != nil {
		if err := stopProfiles(); err != nil {
			fail("profile stop failed", "err", err)
		}
	}
	if ctx.Metrics != nil && *metricsFile != "" {
		out := os.Stdout
		if *metricsFile != "-" {
			f, err := os.Create(*metricsFile)
			if err != nil {
				fail("metrics file", "err", err)
			}
			defer f.Close()
			out = f
		}
		if err := ctx.MetricsSnapshot().WriteText(out); err != nil {
			fail("metrics write failed", "err", err)
		}
	}
}
