// Command sweepd serves simulation results over HTTP: simulation-as-a-
// service on top of the experiment engine. A request names one cell
// (workload × scheme × supply profile × seed × scale × params) and the
// server answers from its tiered result store — bounded in-memory LRU
// over the durable append-only journal — simulating only on a miss,
// with concurrent identical requests collapsed onto one simulation.
//
// Usage:
//
//	sweepd -listen :8077 -store cells.jsonl
//	sweepd -listen :8077 -store cells.jsonl -maxsim 4 -memcap 1024
//
// Endpoints: POST /v1/cell, POST /v1/cells, GET /v1/stats, plus the
// standard introspection plane (/metrics, /progress, /healthz,
// /runinfo). Restarting the daemon over the same -store serves every
// previously simulated cell from disk. See docs/SERVICE.md; cmd/sweepctl
// is the client.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	listen := flag.String("listen", ":8077", "address to serve on")
	storePath := flag.String("store", "", "durable journal path for the disk tier ('' = memory-only, no restarts)")
	memCap := flag.Int("memcap", 0, "memory-tier capacity in records (0 = default)")
	maxSim := flag.Int("maxsim", 0, "max concurrent simulations (0 = NumCPU); cache hits are never gated")
	cellTimeout := flag.Duration("celltimeout", 0, "per-simulation wall-clock bound (0 = none)")
	chaosSpec := flag.String("chaos", "", "fault-injection spec for simulations (testing only)")
	logfmt := flag.String("logfmt", "text", "log format: text|json")
	verbose := flag.Bool("v", false, "debug logging")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		slog.Error("sweepd: bad -logfmt", "err", err)
		os.Exit(2)
	}
	fail := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	cfg := service.Config{
		StorePath:   *storePath,
		MemCap:      *memCap,
		MaxSim:      *maxSim,
		CellTimeout: *cellTimeout,
		Tracker:     obs.NewCampaignTracker(log),
		Log:         log,
	}
	if *chaosSpec != "" {
		ccfg, err := chaos.Parse(*chaosSpec)
		if err != nil {
			fail("chaos spec invalid", "spec", *chaosSpec, "err", err)
		}
		cfg.Chaos = chaos.New(ccfg)
	}
	svc, err := service.New(cfg)
	if err != nil {
		fail("store open failed", "path", *storePath, "err", err)
	}
	defer svc.Close()

	info := obs.NewRunInfo("sweepd", sim.EngineVersion)
	info.Journal = *storePath
	if *chaosSpec != "" {
		info.ChaosSpec = *chaosSpec
	}
	srv := &http.Server{Handler: svc.Handler(info)}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fail("listen failed", "addr", *listen, "err", err)
	}

	st := svc.Store().Stats()
	log.Info("sweepd serving",
		"addr", ln.Addr().String(), "store", *storePath,
		"cells_loaded", st.Disk.Loaded, "mem_cap", st.MemCap,
		"engine", sim.EngineVersion)

	// First SIGINT/SIGTERM drains gracefully; a second one kills the
	// process via the restored default handler.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fail("server failed", "err", err)
		}
	case <-ctx.Done():
		// Drain first: /healthz flips to 503 and new leases are refused,
		// so coordinators re-route while in-flight requests finish under
		// the shutdown grace.
		svc.StartDrain()
		log.Info("shutting down", "grace", obs.ShutdownGrace)
		sctx, cancel := context.WithTimeout(context.Background(), obs.ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			log.Warn("graceful shutdown incomplete, closing", "err", err)
			srv.Close()
		}
	}

	final := svc.Store().Stats()
	log.Info("sweepd stopped",
		"mem_hits", final.MemHits, "disk_hits", final.DiskHits,
		"misses", final.Misses, "dedup_collapses", final.DedupCollapses,
		"errors", final.Errors)
}
