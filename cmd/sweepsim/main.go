// Command sweepsim runs one benchmark on one scheme under one power trace
// and prints a full report: timing, outages, energy ledger, cache and
// persist-buffer behaviour, and region statistics.
//
// Usage:
//
//	sweepsim -bench sha -scheme sweep-eb -trace rfoffice
//	sweepsim -bench dijkstra -scheme nvp -trace none
//	sweepsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

var schemeNames = map[string]arch.Kind{
	"nvp":       arch.NVP,
	"wt":        arch.WTVCache,
	"nvsram":    arch.NVSRAM,
	"nvsram-e":  arch.NVSRAME,
	"replay":    arch.ReplayCache,
	"sweep-nvm": arch.SweepNVMSearch,
	"sweep-eb":  arch.SweepEmptyBit,
	"nvmr":      arch.NvMR,
}

var traceNames = map[string]trace.Profile{
	"rfhome":   trace.RFHome,
	"rfoffice": trace.RFOffice,
	"solar":    trace.Solar,
	"thermal":  trace.Thermal,
}

func main() {
	bench := flag.String("bench", "sha", "workload name")
	scheme := flag.String("scheme", "sweep-eb", "scheme: nvp|wt|nvsram|nvsram-e|replay|sweep-nvm|sweep-eb|nvmr")
	traceName := flag.String("trace", "rfoffice", "power trace: rfhome|rfoffice|solar|thermal|none")
	seed := flag.Int64("seed", 1, "trace seed")
	scale := flag.Int("scale", 1, "workload scale")
	capNF := flag.Float64("cap", 470, "capacitor size in nF")
	cacheKB := flag.Int("cache", 4, "cache size in kB")
	list := flag.Bool("list", false, "list workloads and schemes")
	flag.Parse()

	if *list {
		fmt.Println("workloads:", strings.Join(workloads.Names(), " "))
		fmt.Println("schemes:   nvp wt nvsram nvsram-e replay sweep-nvm sweep-eb nvmr")
		fmt.Println("traces:    rfhome rfoffice solar thermal none")
		return
	}

	kind, ok := schemeNames[*scheme]
	if !ok {
		fail("unknown scheme %q", *scheme)
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		fail("%v", err)
	}
	var src trace.Source
	if *traceName != "none" {
		pr, ok := traceNames[*traceName]
		if !ok {
			fail("unknown trace %q", *traceName)
		}
		src = trace.New(pr, *seed)
	}

	p := config.Default()
	p.CapacitorF = *capNF * 1e-9
	p.CacheSize = *cacheKB << 10

	build := func() *ir.Program { return w.Build(*scale) }
	res, err := core.Run(build, kind, p, src)
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("%s on %s", *bench, res.Scheme)
	if src != nil {
		fmt.Printf(" under %s (seed %d)", *traceName, *seed)
	}
	fmt.Printf("\n\n")
	fmt.Printf("wall clock     %12.3f ms   (run %.3f ms, recharge %.3f ms)\n",
		float64(res.TimeNs)/1e6, float64(res.RunNs)/1e6, float64(res.ChargeNs)/1e6)
	fmt.Printf("instructions   %12d      (loads %d, stores %d, ckpt %d)\n",
		res.Counts.Executed, res.Counts.Loads, res.Counts.Stores, res.Counts.CkptStores)
	fmt.Printf("power outages  %12d\n", res.Outages)
	led := res.Ledger
	fmt.Printf("energy         %12.3f uJ   (compute %.3f, nvm %.3f, persist %.3f,\n",
		led.Total()*1e6, led.Compute*1e6, led.NVM*1e6, led.Persist*1e6)
	fmt.Printf("                                  backup %.3f, restore %.3f, sleep %.3f)\n",
		led.Backup*1e6, led.Restore*1e6, led.Sleep*1e6)
	if res.CacheHits+res.CacheMisses > 0 {
		fmt.Printf("cache          %11.2f%% miss  (%d hits, %d misses, %d dirty evictions)\n",
			100*res.MissRate(), res.CacheHits, res.CacheMisses, res.DirtyEvictions)
	}
	fmt.Printf("NVM traffic    %12d word reads, %d word writes, %d line reads, %d line writes\n",
		res.NVMReads, res.NVMWrites, res.NVMLineReads, res.NVMLineWrites)
	if res.Arch.RegionsExecuted > 0 {
		fmt.Printf("regions        %12d      (mean %.1f insts, %.1f stores; parallelism eff %.1f%%)\n",
			res.Arch.RegionsExecuted, res.RegionSizes.Mean(),
			res.Arch.StoresPerRegion.Mean(), 100*res.ParallelismEfficiency())
		fmt.Printf("buffer search  %12d      (%d bypassed by empty-bit, %d served misses)\n",
			res.Arch.BufferSearches, res.Arch.BufferBypasses, res.Arch.BufferHits)
	}
	if res.Arch.BackupEvents > 0 {
		fmt.Printf("JIT events     %12d backups, %d restores, %d lines backed up\n",
			res.Arch.BackupEvents, res.Arch.RestoreEvents, res.Arch.LinesBackedUp)
	}
	fmt.Printf("checksum       %#x\n", res.NVM.PeekWord(workloads.CheckAddr()))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sweepsim: "+format+"\n", args...)
	os.Exit(1)
}
