// Command sweepsim runs one benchmark on one scheme under one power trace
// and prints a full report: timing, outages, energy ledger, cache and
// persist-buffer behaviour, and region statistics.
//
// Usage:
//
//	sweepsim -bench sha -scheme sweep-eb -trace rfoffice
//	sweepsim -bench dijkstra -scheme nvp -trace none
//	sweepsim -bench sha -scheme sweep-eb -tracefile out.jsonl -chrometrace out.trace.json
//	sweepsim -bench sha -metrics - -pprof prof
//	sweepsim -list
//
// -tracefile records the run's telemetry events as JSONL (one event per
// line; see docs/TELEMETRY.md); -chrometrace records the same stream in
// Chrome trace_event format, loadable in Perfetto or chrome://tracing.
// -metrics writes the run's metrics snapshot as text ("-" for stdout).
// -pprof <prefix> writes <prefix>.cpu.pb.gz and <prefix>.mem.pb.gz for
// `go tool pprof`. -listen serves live /metrics, /progress, /healthz,
// and /runinfo while the simulation runs (docs/OBSERVABILITY.md);
// -logfmt/-v control the structured stderr logging.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// logger is the process logger, installed by main before any fail().
var logger = slog.Default()

var schemeNames = map[string]arch.Kind{
	"nvp":       arch.NVP,
	"wt":        arch.WTVCache,
	"nvsram":    arch.NVSRAM,
	"nvsram-e":  arch.NVSRAME,
	"replay":    arch.ReplayCache,
	"sweep-nvm": arch.SweepNVMSearch,
	"sweep-eb":  arch.SweepEmptyBit,
	"nvmr":      arch.NvMR,
}

var traceNames = map[string]trace.Profile{
	"rfhome":   trace.RFHome,
	"rfoffice": trace.RFOffice,
	"solar":    trace.Solar,
	"thermal":  trace.Thermal,
}

func main() {
	bench := flag.String("bench", "sha", "workload name")
	scheme := flag.String("scheme", "sweep-eb", "scheme: nvp|wt|nvsram|nvsram-e|replay|sweep-nvm|sweep-eb|nvmr")
	traceName := flag.String("trace", "rfoffice", "power trace: rfhome|rfoffice|solar|thermal|none")
	seed := flag.Int64("seed", 1, "trace seed")
	scale := flag.Int("scale", 1, "workload scale")
	capNF := flag.Float64("cap", 470, "capacitor size in nF")
	cacheKB := flag.Int("cache", 4, "cache size in kB")
	tracefile := flag.String("tracefile", "", "write telemetry events as JSONL to this file")
	chrometrace := flag.String("chrometrace", "", "write telemetry events as a Chrome/Perfetto trace to this file")
	metricsFile := flag.String("metrics", "", "write the metrics snapshot as text to this file ('-' = stdout)")
	pprofPrefix := flag.String("pprof", "", "write <prefix>.cpu.pb.gz and <prefix>.mem.pb.gz profiles")
	paramsFile := flag.String("params", "", "JSON file of config.Params overrides (validated before the run)")
	timeout := flag.Duration("timeout", 0, "cancel the simulation after this duration (0 = none)")
	listen := flag.String("listen", "", "serve live /metrics, /progress, /healthz, /runinfo on this address (e.g. :8090)")
	logfmt := flag.String("logfmt", "text", "log format: text|json")
	verbose := flag.Bool("v", false, "debug logging")
	list := flag.Bool("list", false, "list workloads and schemes")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		slog.Error("sweepsim: bad -logfmt", "err", err)
		os.Exit(2)
	}
	logger = log

	if *list {
		fmt.Println("workloads:", strings.Join(workloads.Names(), " "))
		fmt.Println("schemes:   nvp wt nvsram nvsram-e replay sweep-nvm sweep-eb nvmr")
		fmt.Println("traces:    rfhome rfoffice solar thermal none")
		return
	}

	kind, ok := schemeNames[*scheme]
	if !ok {
		fail("unknown scheme %q", *scheme)
	}
	w, err := workloads.ByName(*bench)
	if err != nil {
		fail("%v", err)
	}
	var src trace.Source
	if *traceName != "none" {
		pr, ok := traceNames[*traceName]
		if !ok {
			fail("unknown trace %q", *traceName)
		}
		src = trace.New(pr, *seed)
	}

	p := config.Default()
	if *paramsFile != "" {
		raw, err := os.ReadFile(*paramsFile)
		if err != nil {
			fail("%v", err)
		}
		p, err = config.FromJSON(raw)
		if err != nil {
			fail("-params %s: %v", *paramsFile, err)
		}
	}
	// The -cap/-cache conveniences only apply when given explicitly, so
	// their defaults cannot silently clobber a -params file.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "cap":
			p.CapacitorF = *capNF * 1e-9
		case "cache":
			p.CacheSize = *cacheKB << 10
		}
	})
	if err := p.Validate(); err != nil {
		fail("%v", err)
	}

	// Live introspection: a one-cell campaign. /metrics carries the
	// final simulation snapshot once the run completes.
	var tracker *obs.CampaignTracker
	var resSnap atomic.Pointer[telemetry.Snapshot]
	if *listen != "" {
		tracker = obs.NewCampaignTracker(log)
		info := obs.NewRunInfo("sweepsim", sim.EngineVersion)
		info.ParamsFP = p.Fingerprint()
		info.Seed = *seed
		info.Scale = *scale
		srv := &obs.Server{Info: info, Tracker: tracker, Log: log,
			Extra: func() *telemetry.Snapshot {
				if s := resSnap.Load(); s != nil {
					return s
				}
				return telemetry.NewSnapshot()
			}}
		_, shutdown, err := srv.Serve(*listen)
		if err != nil {
			fail("%v", err)
		}
		defer shutdown()
		tracker.AddCells([]obs.CellMeta{{Workload: *bench, Scheme: *scheme, Profile: *traceName}})
	}

	if *pprofPrefix != "" {
		stop, err := telemetry.StartProfiles(*pprofPrefix)
		if err != nil {
			fail("%v", err)
		}
		defer func() {
			if err := stop(); err != nil {
				fail("%v", err)
			}
		}()
	}

	var sinks telemetry.MultiSink
	var sinkFiles []*os.File
	addSink := func(path string, mk func(f *os.File) telemetry.Sink) {
		f, err := os.Create(path)
		if err != nil {
			fail("%v", err)
		}
		sinkFiles = append(sinkFiles, f)
		sinks = append(sinks, mk(f))
	}
	if *tracefile != "" {
		addSink(*tracefile, func(f *os.File) telemetry.Sink { return telemetry.NewJSONLSink(f) })
	}
	if *chrometrace != "" {
		addSink(*chrometrace, func(f *os.File) telemetry.Sink { return telemetry.NewChromeSink(f) })
	}
	var tr *telemetry.Tracer
	if len(sinks) > 0 {
		tr = telemetry.NewTracer(sinks, 0)
	}

	// Ctrl-C / SIGTERM (or -timeout) abort the simulation at its next
	// epoch boundary and exit 130.
	runCtx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	if *timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(runCtx, *timeout)
		defer cancel()
	}

	build := func() *ir.Program { return w.Build(*scale) }
	tracker.Start(0, 0)
	res, err := core.RunTracedCtx(runCtx, build, kind, p, src, tr)
	if cerr := tr.Close(); cerr != nil && err == nil {
		err = cerr
	}
	for _, f := range sinkFiles {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		tracker.Fail(0, 0, err, false)
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			logger.Error("interrupted", "err", err)
			os.Exit(130)
		}
		fail("%v", err)
	}
	tracker.Done(0, 0)
	resSnap.Store(res.Metrics())

	fmt.Printf("%s on %s", *bench, res.Scheme)
	if src != nil {
		fmt.Printf(" under %s (seed %d)", *traceName, *seed)
	}
	fmt.Printf("\n\n")
	fmt.Print(res)
	fmt.Printf("checksum       %#x\n", res.NVM.PeekWord(workloads.CheckAddr()))

	if *metricsFile != "" {
		out := os.Stdout
		if *metricsFile != "-" {
			f, err := os.Create(*metricsFile)
			if err != nil {
				fail("%v", err)
			}
			defer f.Close()
			out = f
		} else {
			fmt.Println()
		}
		if err := res.Metrics().WriteText(out); err != nil {
			fail("%v", err)
		}
	}
}

func fail(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
