// Command sweepctl is the sweepd client: request cells, replay batches,
// run the load-generator scenario, and inspect server stats from the
// command line.
//
// Usage:
//
//	sweepctl -server localhost:8077 cell -workload sha -scheme Sweep-EmptyBit -profile RFHome
//	sweepctl batch -file cells.json           # JSON array of cell requests
//	sweepctl load -file cells.json -clients 8 -repeat 4
//	sweepctl stats
//	sweepctl wait -timeout 10s                # block until /healthz answers
//
// Single-cell responses print as JSON on stdout (add -full for the whole
// record, not just key/tier/digest). Exit status is non-zero on any
// request failure, so scripts can gate on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/service"
)

func main() {
	server := flag.String("server", "localhost:8077", "sweepd address")
	timeout := flag.Duration("timeout", 2*time.Minute, "overall deadline for the command")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *timeout)
	defer cancel()

	cl := service.NewClient(*server)
	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "cell":
		err = runCell(ctx, cl, args)
	case "batch":
		err = runBatch(ctx, cl, args)
	case "load":
		err = runLoad(ctx, cl, args)
	case "stats":
		var st *service.Stats
		if st, err = cl.Stats(ctx); err == nil {
			err = emit(st)
		}
	case "wait":
		err = cl.WaitHealthy(ctx, *timeout)
	default:
		fmt.Fprintf(os.Stderr, "sweepctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: sweepctl [-server addr] [-timeout d] <command> [flags]

commands:
  cell    request one cell: -workload -scheme [-profile] [-scale] [-seed] [-params file] [-full]
  batch   replay a JSON array of cell requests: -file path ('-' = stdin) [-full]
  load    load-generator scenario: -file path -clients n -repeat n
  stats   print the server's store/tier statistics
  wait    block until the server answers /healthz
`)
}

// emit prints v as indented JSON on stdout.
func emit(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// trim drops the full record from a response unless -full asked for it;
// the key/tier/digest triple is what interactive use wants.
func trim(resp *service.CellResponse, full bool) *service.CellResponse {
	if !full {
		c := *resp
		c.Record = nil
		return &c
	}
	return resp
}

func runCell(ctx context.Context, cl *service.Client, args []string) error {
	fs := flag.NewFlagSet("cell", flag.ExitOnError)
	workload := fs.String("workload", "", "workload name")
	scheme := fs.String("scheme", "", "scheme name (e.g. Sweep-EmptyBit, NVP)")
	profile := fs.String("profile", "", "supply profile (RFHome, RFOffice, solar, thermal) or outage-free")
	scale := fs.Int("scale", 0, "workload scale (0 = default)")
	seed := fs.Int64("seed", 0, "trace seed (0 = default)")
	paramsFile := fs.String("params", "", "JSON file of config.Params overrides")
	full := fs.Bool("full", false, "print the whole record, not just key/tier/digest")
	fs.Parse(args)

	req := service.CellRequest{
		Workload: *workload, Scheme: *scheme, Profile: *profile,
		Scale: *scale, Seed: *seed,
	}
	if *paramsFile != "" {
		raw, err := os.ReadFile(*paramsFile)
		if err != nil {
			return err
		}
		req.Params = raw
	}
	resp, err := cl.Cell(ctx, req)
	if err != nil {
		return err
	}
	return emit(trim(resp, *full))
}

func readRequests(path string) ([]service.CellRequest, error) {
	var raw []byte
	var err error
	if path == "-" {
		raw, err = os.ReadFile("/dev/stdin")
	} else {
		raw, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	var reqs []service.CellRequest
	if err := json.Unmarshal(raw, &reqs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("%s: no cell requests", path)
	}
	return reqs, nil
}

func runBatch(ctx context.Context, cl *service.Client, args []string) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	file := fs.String("file", "-", "JSON array of cell requests ('-' = stdin)")
	full := fs.Bool("full", false, "print whole records")
	fs.Parse(args)

	reqs, err := readRequests(*file)
	if err != nil {
		return err
	}
	items, err := cl.Cells(ctx, reqs)
	if err != nil {
		return err
	}
	failures := 0
	for i := range items {
		if items[i].Error != "" {
			failures++
		} else if !*full {
			items[i].Response = trim(items[i].Response, false)
		}
	}
	if err := emit(items); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d/%d batch items failed", failures, len(items))
	}
	return nil
}

func runLoad(ctx context.Context, cl *service.Client, args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	file := fs.String("file", "-", "JSON array of cell requests to cycle ('-' = stdin)")
	clients := fs.Int("clients", 4, "concurrent clients")
	repeat := fs.Int("repeat", 1, "times each client walks the cell list")
	fs.Parse(args)

	cells, err := readRequests(*file)
	if err != nil {
		return err
	}
	rep, lerr := service.RunLoad(ctx, cl, service.LoadSpec{
		Clients: *clients, Repeat: *repeat, Cells: cells,
	})
	if rep != nil {
		if err := emit(rep); err != nil {
			return err
		}
	}
	return lerr
}
