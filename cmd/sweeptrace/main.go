// Command sweeptrace filters and summarises a recorded JSONL telemetry
// stream (see docs/TELEMETRY.md for the schema).
//
// Usage:
//
//	sweeptrace out.jsonl                    # event counts + span summary
//	sweeptrace -sweeps 10 out.jsonl         # the 10 longest persist sweeps
//	sweeptrace -outages out.jsonl           # per-outage cycle breakdown
//	sweeptrace -chrome out.trace.json out.jsonl   # convert for Perfetto
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"

	"repro/internal/obs"
	"repro/internal/telemetry"
)

// logger is the process logger, installed by main before any fail().
var logger = slog.Default()

func main() {
	sweeps := flag.Int("sweeps", 0, "print the N longest persist-buffer sweeps")
	outages := flag.Bool("outages", false, "print a per-outage cycle breakdown")
	chrome := flag.String("chrome", "", "convert the stream to a Chrome/Perfetto trace file")
	strict := flag.Bool("strict", false, "fail on malformed lines instead of skipping them")
	logfmt := flag.String("logfmt", "text", "log format: text|json")
	verbose := flag.Bool("v", false, "debug logging")
	flag.Parse()

	log, err := obs.NewLogger(os.Stderr, *logfmt, *verbose)
	if err != nil {
		slog.Error("sweeptrace: bad -logfmt", "err", err)
		os.Exit(2)
	}
	logger = log

	if flag.NArg() != 1 {
		fail("usage: sweeptrace [flags] <trace.jsonl>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail("%v", err)
	}
	// A trace whose recorder was killed mid-write routinely ends in a
	// truncated line; by default that damage is skipped, not fatal.
	var events []telemetry.Event
	if *strict {
		events, err = telemetry.ReadJSONL(f)
	} else {
		var skipped int
		events, skipped, err = telemetry.ReadJSONLTolerant(f)
		if skipped > 0 {
			log.Warn("skipped malformed lines (rerun with -strict to fail instead)",
				"skipped", skipped, "path", flag.Arg(0))
		}
	}
	f.Close()
	if err != nil {
		fail("%v", err)
	}

	switch {
	case *chrome != "":
		out, err := os.Create(*chrome)
		if err != nil {
			fail("%v", err)
		}
		if err := telemetry.WriteChromeTrace(out, events); err != nil {
			fail("%v", err)
		}
		if err := out.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("wrote %d events to %s (load in Perfetto or chrome://tracing)\n", len(events), *chrome)
	case *sweeps > 0:
		printLongestSweeps(events, *sweeps)
	case *outages:
		printOutages(events)
	default:
		printSummary(events)
	}
}

// span pairs a begin/end event couple.
type span struct {
	id       int64
	beginNs  int64
	endNs    int64
	entries  int64
	chargeNs int64
	vFail    float64
	vRestore float64
}

// pairSpans matches begin/end events of one kind pair by their id (A).
func pairSpans(events []telemetry.Event, begin, end telemetry.EventKind) []span {
	open := map[int64]telemetry.Event{}
	var out []span
	for _, e := range events {
		switch e.Kind {
		case begin:
			open[e.A] = e
		case end:
			if b, ok := open[e.A]; ok {
				delete(open, e.A)
				out = append(out, span{
					id: e.A, beginNs: b.Now, endNs: e.Now,
					entries: e.B, chargeNs: e.B, vFail: b.F, vRestore: e.F,
				})
			}
		}
	}
	return out
}

func printLongestSweeps(events []telemetry.Event, n int) {
	spans := pairSpans(events, telemetry.EvSweepBegin, telemetry.EvSweepEnd)
	sort.Slice(spans, func(i, j int) bool {
		di, dj := spans[i].endNs-spans[i].beginNs, spans[j].endNs-spans[j].beginNs
		if di != dj {
			return di > dj
		}
		return spans[i].id < spans[j].id
	})
	if n > len(spans) {
		n = len(spans)
	}
	fmt.Printf("%d sweeps recorded; %d longest:\n", len(spans), n)
	fmt.Printf("%8s %14s %14s %12s %8s\n", "region", "seal ns", "drained ns", "duration ns", "entries")
	for _, s := range spans[:n] {
		fmt.Printf("%8d %14d %14d %12d %8d\n", s.id, s.beginNs, s.endNs, s.endNs-s.beginNs, s.entries)
	}
}

func printOutages(events []telemetry.Event) {
	spans := pairSpans(events, telemetry.EvOutageBegin, telemetry.EvOutageEnd)
	// Count what happened inside each outage window (restores, redone
	// drains) by a second pass.
	fmt.Printf("%d outages:\n", len(spans))
	fmt.Printf("%8s %14s %14s %12s %8s %8s\n", "outage", "fail ns", "up ns", "charge ns", "V fail", "V up")
	for _, s := range spans {
		fmt.Printf("%8d %14d %14d %12d %8.3f %8.3f\n",
			s.id, s.beginNs, s.endNs, s.chargeNs, s.vFail, s.vRestore)
	}
	if len(spans) > 0 {
		var tot int64
		for _, s := range spans {
			tot += s.chargeNs
		}
		fmt.Printf("total recharge %.3f ms, mean %.3f ms/outage\n",
			float64(tot)/1e6, float64(tot)/float64(len(spans))/1e6)
	}
}

func printSummary(events []telemetry.Event) {
	counts := map[telemetry.EventKind]int{}
	var lastNs int64
	for _, e := range events {
		counts[e.Kind]++
		if e.Now > lastNs {
			lastNs = e.Now
		}
	}
	fmt.Printf("%d events spanning %.3f ms\n\n", len(events), float64(lastNs)/1e6)
	var kinds []telemetry.EventKind
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		fmt.Printf("%-16s %8d\n", k, counts[k])
	}

	if sweeps := pairSpans(events, telemetry.EvSweepBegin, telemetry.EvSweepEnd); len(sweeps) > 0 {
		var tot, max int64
		for _, s := range sweeps {
			d := s.endNs - s.beginNs
			tot += d
			if d > max {
				max = d
			}
		}
		fmt.Printf("\nsweeps: %d completed, mean %.1f us, max %.1f us\n",
			len(sweeps), float64(tot)/float64(len(sweeps))/1e3, float64(max)/1e3)
	}
	if regions := pairSpans(events, telemetry.EvRegionStart, telemetry.EvRegionCommit); len(regions) > 0 {
		var tot int64
		for _, s := range regions {
			tot += s.endNs - s.beginNs
		}
		fmt.Printf("regions: %d committed, mean %.1f us\n",
			len(regions), float64(tot)/float64(len(regions))/1e3)
	}
}

func fail(format string, args ...any) {
	logger.Error(fmt.Sprintf(format, args...))
	os.Exit(1)
}
