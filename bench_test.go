// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure of the paper's evaluation. Each benchmark runs the
// corresponding experiment on the reduced (Quick) workload subset and
// reports the headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation in miniature. For the full 26-workload
// numbers recorded in EXPERIMENTS.md, run `go run ./cmd/sweepexp -exp all`.
package repro

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/exp"
	"repro/internal/trace"
)

func quickCtx() *exp.Context {
	c := exp.DefaultContext()
	c.Quick = true
	return c
}

func BenchmarkFig5OutageFree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoAll[arch.SweepEmptyBit], "sweep-speedup")
		b.ReportMetric(r.GeoAll[arch.NVSRAM], "nvsram-speedup")
		b.ReportMetric(r.GeoAll[arch.ReplayCache], "replay-speedup")
	}
}

func BenchmarkFig6RFHome(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoAll[arch.SweepEmptyBit], "sweep-speedup")
	}
}

func BenchmarkFig7RFOffice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GeoAll[arch.SweepEmptyBit], "sweep-speedup")
		b.ReportMetric(r.GeoAll[arch.NVSRAM], "nvsram-speedup")
	}
}

func BenchmarkParallelismEfficiency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Parallelism()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.OutageFree, "eff-outagefree-%")
		b.ReportMetric(100*r.WithOutage, "eff-outage-%")
	}
}

func BenchmarkFig8CacheSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig8()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup[16<<10][arch.SweepEmptyBit], "sweep-16kB")
		b.ReportMetric(r.Speedup[512][arch.SweepEmptyBit], "sweep-512B")
	}
}

func BenchmarkFig9CapacitorSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Outages[470e-9][arch.NVP], "nvp-outages-470nF")
		b.ReportMetric(r.Outages[470e-9][arch.SweepEmptyBit], "sweep-outages-470nF")
	}
}

func BenchmarkFig10Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig10()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup[trace.RFOffice][arch.SweepEmptyBit], "sweep-rfoffice")
		b.ReportMetric(r.Speedup[trace.Thermal][arch.SweepEmptyBit], "sweep-thermal")
	}
}

func BenchmarkFig11PropagationDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig11()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SlowSweep.Relative[470e-9][arch.SweepEmptyBit], "slow-sweep-470nF")
		b.ReportMetric(r.FastJIT.Relative[470e-9][arch.NVSRAM], "fast-nvsram-470nF")
	}
}

func BenchmarkFig12RegionStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig12()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanRegionSize, "region-size")
		b.ReportMetric(r.MeanStores, "stores-per-region")
	}
}

func BenchmarkICount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().ICount()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ReplayOverSweep, "replay-over-sweep")
		b.ReportMetric(r.SweepOverNVSRAM, "sweep-over-nvsram")
	}
}

func BenchmarkFig13Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.TotalPct[arch.SweepEmptyBit], "sweep-total-%")
		b.ReportMetric(r.TotalPct[arch.ReplayCache], "replay-total-%")
	}
}

func BenchmarkFig14NvMR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig14()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SpeedupSweep[470e-9]/r.SpeedupNvMR[470e-9], "sweep-over-nvmr-470nF")
		b.ReportMetric(r.EnergySaving[470e-9], "energy-saving-%")
	}
}

func BenchmarkFig15MissRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig15()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MissRate[trace.RFOffice][arch.SweepEmptyBit], "sweep-miss-%")
		b.ReportMetric(r.MissRate[trace.RFOffice][arch.ReplayCache], "replay-miss-%")
	}
}

func BenchmarkFig16NVMWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig16()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Normalized[trace.RFOffice][arch.SweepEmptyBit], "sweep-writes-x")
		b.ReportMetric(r.Normalized[trace.RFOffice][arch.ReplayCache], "replay-writes-x")
	}
}

func BenchmarkTable2Outages(b *testing.B) {
	// Table 2 shares Figure 9's sweep; benchmark the 100 nF corner where
	// outage counts peak.
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Outages[100e-9][arch.NVP], "nvp-outages-100nF")
	}
}

func BenchmarkDegradation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Degradation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Slowdown20, "slowdown-20%")
		b.ReportMetric(r.Slowdown40, "slowdown-40%")
	}
}

func BenchmarkThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := quickCtx().Threshold()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MeanStores[64], "stores-at-64")
		b.ReportMetric(r.MeanStores[256], "stores-at-256")
	}
}
