package repro

import (
	"io"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Telemetry overhead benchmarks: the same (workload, scheme, trace)
// simulation with tracing disabled (nil tracer — the default every
// experiment driver uses), enabled into a discarding sink (isolates event
// construction + buffering), and enabled into the JSONL encoder. Compare
// the Disabled variants against the seed's figure benchmarks to confirm
// the disabled path costs nothing measurable.

func benchRun(b *testing.B, bench string, kind arch.Kind, mkSink func() telemetry.Sink) {
	b.Helper()
	w, err := workloads.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	build := func() *ir.Program { return w.Build(1) }
	p := config.Default()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr *telemetry.Tracer
		if mkSink != nil {
			tr = telemetry.NewTracer(mkSink(), 0)
		}
		src := trace.New(trace.RFOffice, 1)
		if _, err := core.RunTraced(build, kind, p, src, tr); err != nil {
			b.Fatal(err)
		}
		if err := tr.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTelemetryDisabledSHA(b *testing.B) {
	benchRun(b, "sha", arch.SweepEmptyBit, nil)
}

func BenchmarkTelemetryDisabledDijkstra(b *testing.B) {
	benchRun(b, "dijkstra", arch.SweepEmptyBit, nil)
}

func BenchmarkTelemetryDiscardSHA(b *testing.B) {
	benchRun(b, "sha", arch.SweepEmptyBit, func() telemetry.Sink { return telemetry.DiscardSink{} })
}

func BenchmarkTelemetryDiscardDijkstra(b *testing.B) {
	benchRun(b, "dijkstra", arch.SweepEmptyBit, func() telemetry.Sink { return telemetry.DiscardSink{} })
}

func BenchmarkTelemetryJSONLSHA(b *testing.B) {
	benchRun(b, "sha", arch.SweepEmptyBit, func() telemetry.Sink { return telemetry.NewJSONLSink(io.Discard) })
}

func BenchmarkTelemetryJSONLDijkstra(b *testing.B) {
	benchRun(b, "dijkstra", arch.SweepEmptyBit, func() telemetry.Sink { return telemetry.NewJSONLSink(io.Discard) })
}
