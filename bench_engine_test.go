// Engine micro-benchmarks: unlike the figure benchmarks, these measure
// the simulation engine itself — interpreter dispatch, energy accounting,
// power-event handling — on single (workload, scheme) runs, and report
// simulated instructions per second so engine regressions show up
// directly rather than through a whole experiment matrix.
package repro

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// benchWorkload is the engine-benchmark subject: fft has a mixed
// ALU/load/store/branch profile and enough dynamic instructions to
// swamp per-run setup.
const benchWorkload = "fft"

func benchCompile(b *testing.B, kind arch.Kind) (*compiler.Result, config.Params) {
	return benchCompileW(b, benchWorkload, kind)
}

func benchCompileW(b *testing.B, name string, kind arch.Kind) (*compiler.Result, config.Params) {
	b.Helper()
	p := config.Default()
	var w workloads.Workload
	for _, cand := range workloads.All() {
		if cand.Name == name {
			w = cand
		}
	}
	if w.Name == "" {
		b.Fatalf("workload %q not found", name)
	}
	cres, err := core.Compile(func() *ir.Program { return w.Build(1) }, kind, p)
	if err != nil {
		b.Fatal(err)
	}
	return cres, p
}

func reportInstrRate(b *testing.B, instrs uint64) {
	b.ReportMetric(float64(instrs)*float64(b.N)/b.Elapsed().Seconds(), "sim-instrs/s")
}

// BenchmarkEngineStep measures raw interpreter + ledger throughput: the
// SweepCache machine under an ideal supply, where the engine's outage-free
// loop carries no capacitor work at all.
func BenchmarkEngineStep(b *testing.B) {
	cres, p := benchCompile(b, arch.SweepEmptyBit)
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cres.Linked, arch.New(arch.SweepEmptyBit, p), sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Counts.Executed
	}
	b.StopTimer()
	reportInstrRate(b, instrs)
}

// BenchmarkRunOutageFree measures a full outage-free run on the cache-free
// NVP baseline — the configuration with the highest per-instruction
// memory-system overhead.
func BenchmarkRunOutageFree(b *testing.B) {
	cres, p := benchCompile(b, arch.NVP)
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cres.Linked, arch.New(arch.NVP, p), sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Counts.Executed
	}
	b.StopTimer()
	reportInstrRate(b, instrs)
}

// BenchmarkRunRFHome measures the harvested-power engine — batched
// settlement epochs, threshold fallback, outages and recharges — on the
// SweepCache machine under the RF-Home trace.
func BenchmarkRunRFHome(b *testing.B) {
	cres, p := benchCompile(b, arch.SweepEmptyBit)
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cres.Linked, arch.New(arch.SweepEmptyBit, p),
			sim.Options{Source: trace.NewShared(trace.RFHome, 1)})
		if err != nil {
			b.Fatal(err)
		}
		instrs = res.Counts.Executed
	}
	b.StopTimer()
	reportInstrRate(b, instrs)
}

// benchRunBatch measures the lockstep multi-seed engine at a given batch
// width, reporting the aggregate simulated-instruction rate summed across
// lanes. The cell is basicmath on WT-VCache under the Thermal trace: an
// ALU-heavy workload makes the shared decode+semantics slice large, and
// the smooth thermal harvest keeps lanes in lockstep (outages, where lanes
// diverge and run solo, are rare), so this cell shows the amortization
// ceiling. Width 1 exercises the scalar fallback, so BenchmarkRunBatch8
// vs 8× BenchmarkRunBatch1 is the lockstep speedup over sequential runs.
func benchRunBatch(b *testing.B, width int) {
	cres, p := benchCompileW(b, "basicmath", arch.WTVCache)
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		schemes := make([]arch.Scheme, width)
		opt := sim.BatchOptions{Sources: make([]trace.Source, width)}
		for j := range schemes {
			schemes[j] = arch.New(arch.WTVCache, p)
			opt.Sources[j] = trace.NewShared(trace.Thermal, int64(j+1))
		}
		results, errs, err := sim.RunBatch(cres.Linked, schemes, opt)
		if err != nil {
			b.Fatal(err)
		}
		instrs = 0
		for j, res := range results {
			if errs[j] != nil {
				b.Fatal(errs[j])
			}
			instrs += res.Counts.Executed
		}
	}
	b.StopTimer()
	reportInstrRate(b, instrs)
}

func BenchmarkRunBatch1(b *testing.B)  { benchRunBatch(b, 1) }
func BenchmarkRunBatch8(b *testing.B)  { benchRunBatch(b, 8) }
func BenchmarkRunBatch32(b *testing.B) { benchRunBatch(b, 32) }
