// Memory-hierarchy micro-benchmarks: the fast paths this package's hot
// loops lean on — cache probe/touch, WBI-driven dirty sweeps, epoch
// invalidation, and the indexed persist-buffer search. These isolate the
// functional-state operations from the engine, so a regression in the
// SoA layout or the youngest-entry index shows up directly.
package repro

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/mem"
	"repro/internal/persist"
)

// benchCache builds the Table 1 cache geometry, fully populated.
func benchCache(b *testing.B) *cache.Cache {
	b.Helper()
	p := config.Default()
	c := cache.New(p.CacheSize, p.CacheWays)
	var data [mem.LineSize]byte
	for la := int64(0); la < int64(p.CacheSize); la += mem.LineSize {
		c.Fill(la, &data)
	}
	return c
}

// BenchmarkCacheProbeHit: the hottest path of every load/store — a probe
// that hits, usually through the per-set MRU hint.
func BenchmarkCacheProbeHit(b *testing.B) {
	c := benchCache(b)
	addrs := [8]int64{0, 64, 128, 512, 1024, 2048, 3072, 4032}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Probe(addrs[i&7]) == cache.NoSlot {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkCacheProbeMiss: a probe that scans every way and misses.
func BenchmarkCacheProbeMiss(b *testing.B) {
	c := benchCache(b)
	p := config.Default()
	miss := int64(p.CacheSize) * 4 // same sets, absent tags
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.Probe(miss+int64(i&7)*64) != cache.NoSlot {
			b.Fatal("unexpected hit")
		}
	}
}

// BenchmarkCacheDirtySweep: the region-end flush enumeration — mark a
// spread of lines dirty, walk them via the incremental dirty list, clear.
func BenchmarkCacheDirtySweep(b *testing.B) {
	c := benchCache(b)
	var slots []int
	for la := int64(0); la < int64(config.Default().CacheSize); la += 4 * mem.LineSize {
		slots = append(slots, c.Probe(la))
	}
	var scratch []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range slots {
			c.MarkDirtyRegion(s, uint64(i))
		}
		scratch = c.DirtySlots(scratch[:0])
		for _, s := range scratch {
			c.ClearDirty(s)
		}
	}
}

// BenchmarkCacheInvalidate: the outage path — epoch-tagged invalidation
// of a fully populated cache (formerly a zeroing scan).
func BenchmarkCacheInvalidate(b *testing.B) {
	c := benchCache(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Invalidate()
	}
}

// BenchmarkBufferSearchHit: persist-buffer search resolving a miss from
// the youngest-entry index while modelling the sequential probe depth.
func BenchmarkBufferSearchHit(b *testing.B) {
	p := config.Default()
	buf := persist.NewBuffer(p.StoreThreshold)
	buf.Claim(1)
	var data [mem.LineSize]byte
	for i := 0; i < p.StoreThreshold; i++ {
		buf.Append(int64(i)*mem.LineSize, &data)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Oldest entry: worst case for the replaced linear scan.
		if e, depth := buf.FindDepth(0); e == nil || depth != buf.Len() {
			b.Fatal("bad search result")
		}
	}
}

// BenchmarkBufferSearchMiss: a full-depth search that finds nothing.
func BenchmarkBufferSearchMiss(b *testing.B) {
	p := config.Default()
	buf := persist.NewBuffer(p.StoreThreshold)
	buf.Claim(1)
	var data [mem.LineSize]byte
	for i := 0; i < p.StoreThreshold; i++ {
		buf.Append(int64(i)*mem.LineSize, &data)
	}
	miss := int64(p.StoreThreshold+1) * mem.LineSize
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if e, _ := buf.FindDepth(miss); e != nil {
			b.Fatal("phantom hit")
		}
	}
}
