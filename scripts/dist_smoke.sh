#!/usr/bin/env bash
# Distributed-campaign chaos smoke against the real binaries: a
# sweepcoord coordinator farms a 64-cell matrix to three sweepd workers
# while the script works through the ISSUE's fault menu — one worker
# SIGKILLed mid-campaign, one SIGSTOPped so its leases hang past the TTL
# and must be re-issued, and one booted from a journal whose tail was
# torn. The campaign must finish with exit 0, report at least one
# expired lease, one connection failure, and one re-issue, and produce a
# digest file byte-identical to a single-process golden run. CI runs
# this on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
w1_pid="" w2_pid="" w3_pid="" coord_pid=""
cleanup() {
    for p in "$w1_pid" "$w2_pid" "$w3_pid" "$coord_pid"; do
        [ -n "$p" ] && kill -9 "$p" 2>/dev/null || true
    done
    rm -rf "$workdir"
}
trap cleanup EXIT

base=$((20000 + RANDOM % 20000))
w1="127.0.0.1:$base" w2="127.0.0.1:$((base + 1))" w3="127.0.0.1:$((base + 2))"
coord="127.0.0.1:$((base + 3))"

# The matrix: 8 quick workloads x 4 eval schemes x 2 seeds. -scale slows
# each cell to tens of milliseconds so the kill below lands mid-campaign
# instead of after the matrix has already drained.
MATRIX="-workloads quick -schemes eval -profile RFHome -seeds 2 -scale 40"
CELLS=64

# field FILE NAME: first value of "NAME": "..." in pretty-printed JSON.
field() {
    grep -m1 "\"$2\"" "$1" | sed -E 's/.*: *"?([^",]*)"?,?$/\1/'
}

start_worker() { # addr store -> pid on stdout
    "$workdir/sweepd" -listen "$1" -store "$2" >>"$workdir/sweepd-$1.log" 2>&1 &
    local pid=$!
    "$workdir/sweepctl" -server "$1" wait -timeout 10s
    echo "$pid"
}

echo "== build"
go build -o "$workdir" ./cmd/sweepd ./cmd/sweepctl ./cmd/sweepcoord

echo "== golden single-process run ($CELLS cells)"
"$workdir/sweepcoord" -local $MATRIX -digests "$workdir/golden.txt" \
    >"$workdir/golden.json" 2>"$workdir/golden.log"
golden_lines=$(wc -l <"$workdir/golden.txt")
if [ "$golden_lines" != "$CELLS" ]; then
    echo "FAIL: golden run produced $golden_lines digests, want $CELLS" >&2
    exit 1
fi

echo "== worker 3: pre-populate journal, then tear its tail"
w3_pid=$(start_worker "$w3" "$workdir/w3.jsonl")
for cell in "sha Sweep-EmptyBit" "sha NVP" "fft Sweep-EmptyBit"; do
    set -- $cell
    "$workdir/sweepctl" -server "$w3" cell -workload "$1" -scheme "$2" \
        -profile RFHome -scale 40 -seed 1 >/dev/null
done
kill -TERM "$w3_pid" && wait "$w3_pid" 2>/dev/null || true
w3_pid=""
truncate -s -17 "$workdir/w3.jsonl"
w3_pid=$(start_worker "$w3" "$workdir/w3.jsonl")
"$workdir/sweepctl" -server "$w3" stats >"$workdir/w3-stats.json"
corrupt=$(field "$workdir/w3-stats.json" Corrupt)
if [ "${corrupt:-0}" -lt 1 ]; then
    echo "FAIL: torn journal tail not detected (Corrupt=$corrupt)" >&2
    cat "$workdir/w3-stats.json" >&2
    exit 1
fi
echo "   worker 3 booted over torn journal: Corrupt=$corrupt, Loaded=$(field "$workdir/w3-stats.json" Loaded)"

echo "== workers 1+2 up; worker 2 SIGSTOPped (leases will hang past the TTL)"
w1_pid=$(start_worker "$w1" "$workdir/w1.jsonl")
w2_pid=$(start_worker "$w2" "$workdir/w2.jsonl")
kill -STOP "$w2_pid"

echo "== distributed campaign: 3 workers, ttl 3s"
# -hedge 50 keeps the straggler hedger out of the way so the hung worker
# is rescued by lease expiry — the path this smoke is proving. (Hedged
# re-dispatch has its own -race test in internal/dist.)
"$workdir/sweepcoord" -workers "$w1,$w2,$w3" $MATRIX \
    -ttl 3s -hedge 50 -attempts 3 -lanes 2 -timeout 180s -listen "$coord" \
    -journal "$workdir/merged.jsonl" -digests "$workdir/merged.txt" \
    >"$workdir/report.json" 2>"$workdir/coord.log" &
coord_pid=$!

# Let a few completions become durable, then SIGKILL worker 1 — no drain,
# no cleanup; its in-flight leases die with it.
for _ in $(seq 1 600); do
    n=$(wc -l 2>/dev/null <"$workdir/merged.jsonl" || echo 0)
    [ "$n" -ge 2 ] && break
    kill -0 "$coord_pid" 2>/dev/null || break
    sleep 0.05
done
kill -9 "$w1_pid" 2>/dev/null || true
echo "   worker 1 SIGKILLed with $(wc -l 2>/dev/null <"$workdir/merged.jsonl" || echo 0)/$CELLS cells merged"

# Hold worker 2 past the lease TTL so its leases expire and re-issue,
# then wake it to rejoin the fleet.
sleep 4
kill -CONT "$w2_pid"
echo "   worker 2 resumed after the TTL window"

if ! wait "$coord_pid"; then
    echo "FAIL: coordinator exited non-zero" >&2
    tail -30 "$workdir/coord.log" >&2
    exit 1
fi
coord_pid=""

echo "== merged digests byte-identical to golden"
if ! diff "$workdir/golden.txt" "$workdir/merged.txt"; then
    echo "FAIL: merged digests differ from the single-process golden run" >&2
    exit 1
fi
merged_lines=$(wc -l <"$workdir/merged.jsonl")
if [ "$merged_lines" != "$CELLS" ]; then
    echo "FAIL: merged journal has $merged_lines lines, want $CELLS" >&2
    exit 1
fi

echo "== chaos actually happened"
expired=$(field "$workdir/report.json" expired)
reissues=$(field "$workdir/report.json" reissues)
conn=$(field "$workdir/report.json" conn_failures)
if [ "${expired:-0}" -lt 1 ]; then
    echo "FAIL: no lease expired — the hung worker was never timed out" >&2
    grep -v '"' "$workdir/report.json" >&2 || true
    exit 1
fi
if [ "${conn:-0}" -lt 1 ]; then
    echo "FAIL: no connection failures — the SIGKILL was not observed" >&2
    exit 1
fi
if [ "${reissues:-0}" -lt 1 ]; then
    echo "FAIL: no leases re-issued" >&2
    exit 1
fi

echo "PASS: $CELLS cells byte-identical across SIGKILL + hung worker + torn journal" \
    "(expired=$expired conn_failures=$conn reissues=$reissues)"
