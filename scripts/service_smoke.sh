#!/usr/bin/env bash
# Service smoke test against the real binaries: boot sweepd over a fresh
# store, replay a mixed workload through sweepctl (concurrent identical
# and distinct requests via the load generator), then restart the daemon
# over the same store and require the cell to come back from the disk
# tier with the digest it had when it was first simulated. CI runs this
# on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

addr="127.0.0.1:$((20000 + RANDOM % 20000))"
ctl() { "$workdir/sweepctl" -server "$addr" "$@"; }

# field FILE NAME: first value of "NAME": "..." in pretty-printed JSON.
field() {
    grep -m1 "\"$2\"" "$1" | sed -E 's/.*: *"?([^",]*)"?,?$/\1/'
}

start_daemon() {
    "$workdir/sweepd" -listen "$addr" -store "$workdir/cells.jsonl" \
        >>"$workdir/sweepd.log" 2>&1 &
    daemon_pid=$!
    ctl wait -timeout 10s
}

stop_daemon() {
    kill -TERM "$daemon_pid"
    wait "$daemon_pid" 2>/dev/null || true
    daemon_pid=""
}

echo "== build"
go build -o "$workdir" ./cmd/sweepd ./cmd/sweepctl

cat >"$workdir/cells.json" <<'EOF'
[
  {"workload": "sha", "scheme": "Sweep-EmptyBit", "profile": "RFHome", "seed": 1},
  {"workload": "sha", "scheme": "NVP", "profile": "RFHome", "seed": 1},
  {"workload": "adpcmenc", "scheme": "Sweep-EmptyBit", "seed": 1}
]
EOF

echo "== boot sweepd on $addr"
start_daemon

echo "== mixed load: 8 clients x 3 repeats over 3 distinct cells"
ctl load -file "$workdir/cells.json" -clients 8 -repeat 3 >"$workdir/load.json"
grep -q '"failures": 0' "$workdir/load.json" ||
    { echo "FAIL: load scenario had failures"; cat "$workdir/load.json"; exit 1; }

echo "== misses bounded by distinct cell count"
ctl stats >"$workdir/stats.json"
misses=$(field "$workdir/stats.json" misses)
if [ "$misses" != "3" ]; then
    echo "FAIL: $misses simulations for 3 distinct cells (dedup/memoization broken)" >&2
    cat "$workdir/stats.json" >&2
    exit 1
fi

echo "== repeat request is a memory hit"
ctl cell -workload sha -scheme Sweep-EmptyBit -profile RFHome >"$workdir/warm.json"
tier=$(field "$workdir/warm.json" tier)
digest=$(field "$workdir/warm.json" digest)
if [ "$tier" != "memory" ] || [ -z "$digest" ]; then
    echo "FAIL: warm request served from tier '$tier'" >&2
    cat "$workdir/warm.json" >&2
    exit 1
fi

echo "== restart: same cell from the disk tier, same digest"
stop_daemon
start_daemon
ctl cell -workload sha -scheme Sweep-EmptyBit -profile RFHome >"$workdir/cold.json"
cold_tier=$(field "$workdir/cold.json" tier)
cold_digest=$(field "$workdir/cold.json" digest)
if [ "$cold_tier" != "disk" ]; then
    echo "FAIL: post-restart request served from tier '$cold_tier', want disk" >&2
    cat "$workdir/cold.json" >&2
    exit 1
fi
if [ "$cold_digest" != "$digest" ]; then
    echo "FAIL: digest drifted across restart: $digest -> $cold_digest" >&2
    exit 1
fi
stop_daemon

echo "PASS: 72 requests, 3 simulations, digest $digest stable across memory/disk/restart"
