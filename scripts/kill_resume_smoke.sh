#!/usr/bin/env bash
# Kill/resume smoke test against the real sweepexp binary: run a journaled
# figure matrix, SIGKILL the process mid-run (no cleanup handler gets to
# run — this is the crash the journal exists for), rerun with the same
# flags, and require the final journal's (key, digest) set to be identical
# to an uninterrupted run's. CI runs this on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build"
go build -o "$workdir/sweepexp" ./cmd/sweepexp

echo "== clean reference run"
"$workdir/sweepexp" -exp fig6 -quick -journal "$workdir/clean.jsonl" >/dev/null

total=$(wc -l <"$workdir/clean.jsonl")
if [ "$total" -lt 8 ]; then
    echo "FAIL: clean run journaled only $total cells" >&2
    exit 1
fi

echo "== run to be killed"
"$workdir/sweepexp" -exp fig6 -quick -journal "$workdir/killed.jsonl" >/dev/null 2>&1 &
pid=$!
# Kill as soon as a few cells are durable but (hopefully) before the
# matrix completes. SIGKILL: the process gets no chance to flush or
# clean up.
for _ in $(seq 1 1000); do
    n=$(wc -l <"$workdir/killed.jsonl" 2>/dev/null || echo 0)
    [ "$n" -ge 5 ] && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.01
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
before=$(wc -l <"$workdir/killed.jsonl" 2>/dev/null || echo 0)
echo "   killed with $before/$total cells journaled"
if [ "$before" -ge "$total" ]; then
    echo "   (matrix finished before the kill landed — resume will be a pure cache run)"
fi

echo "== resume run"
"$workdir/sweepexp" -exp fig6 -quick -journal "$workdir/killed.jsonl" >/dev/null

# Compare the (key, digest) sets. Only well-formed lines count: a torn
# final line from the kill is expected, and the resume re-proves that cell.
extract() {
    grep -aE '^\{"format":1,"key":"[0-9a-f]{64}"' "$1" |
        sed -E 's/.*"key":"([0-9a-f]+)".*"digest":"([0-9a-f]+)".*/\1 \2/' |
        sort -u
}
if ! diff <(extract "$workdir/clean.jsonl") <(extract "$workdir/killed.jsonl"); then
    echo "FAIL: resumed journal digests differ from the uninterrupted run" >&2
    exit 1
fi
echo "PASS: $(extract "$workdir/clean.jsonl" | wc -l) cells byte-identical across SIGKILL + resume"
