#!/usr/bin/env bash
# bench_check.sh — the benchmark-regression gate (docs/OBSERVABILITY.md).
#
# Runs the engine micro-benchmarks fresh, converts them with benchjson
# (which stamps git commit, engine version, and GOMAXPROCS into the
# context block), and diffs sim-instrs/s against the committed baseline
# BENCH_engine.json with cmd/benchcheck. Exits non-zero on a >15%
# regression unless -warn-only is passed (CI's noise-tolerant mode).
#
# Usage:
#   scripts/bench_check.sh               # hard gate
#   scripts/bench_check.sh -warn-only    # annotate only
# Extra args are passed through to benchcheck (e.g. -tolerance 0.25).
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# Default benchtime (not -benchtime 3x): the engine benches are sub-ms
# per op, and the gate needs ~1s of iterations for a stable number.
go test -run '^$' -bench 'BenchmarkEngineStep|BenchmarkRunOutageFree|BenchmarkRunRFHome|BenchmarkRunBatch' . \
  | go run ./cmd/benchjson -o "$tmp"

go run ./cmd/benchcheck -baseline BENCH_engine.json -current "$tmp" "$@"
