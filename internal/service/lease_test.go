package service_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
)

// TestLeaseEndToEnd: a lease is the cell path plus coordinator
// bookkeeping — the result digest matches a direct engine run, the
// lease ID and attempt echo back, and the worker identifies itself
// with the /runinfo run ID.
func TestLeaseEndToEnd(t *testing.T) {
	want := directDigest(t)
	svc, err := service.New(service.Config{})
	if err != nil {
		t.Fatal(err)
	}
	info := obs.NewRunInfo("sweepd-test", sim.EngineVersion)
	ts := httptest.NewServer(svc.Handler(info))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	cl := service.NewClient(ts.URL)

	resp, err := cl.Lease(context.Background(), service.LeaseRequest{
		LeaseID: "lease-1", Attempt: 2, TTLMs: 60_000, Cell: testReq,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.LeaseID != "lease-1" || resp.Attempt != 2 {
		t.Fatalf("lease echo drifted: %+v", resp)
	}
	if resp.Worker != info.RunID {
		t.Fatalf("lease worker %q, want the /runinfo run ID %q", resp.Worker, info.RunID)
	}
	if resp.Result == nil || resp.Result.Digest != want {
		t.Fatalf("lease digest != direct engine run: %+v", resp.Result)
	}

	// A lease without an ID is a coordinator bug: 400, not a simulation.
	if _, err := cl.Lease(context.Background(), service.LeaseRequest{Cell: testReq}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Fatalf("missing lease_id: err = %v, want 400", err)
	}
}

// TestLeaseDraining: StartDrain flips the worker to 503 for new leases
// and for /healthz, so coordinators route around it — and the client
// surfaces the status in a typed error.
func TestLeaseDraining(t *testing.T) {
	svc, ts, cl := startService(t, "")
	if err := cl.Health(context.Background()); err != nil {
		t.Fatalf("healthy before drain: %v", err)
	}
	svc.StartDrain()
	if !svc.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}

	cl.Retry = service.RetryPolicy{} // assert on the raw 503, no backoff
	_, err := cl.Lease(context.Background(), service.LeaseRequest{LeaseID: "l", Cell: testReq})
	var se *service.StatusError
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("lease while draining: err = %v, want typed 503", err)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body.String(), "draining") {
		t.Fatalf("healthz while draining: %d %q", resp.StatusCode, body.String())
	}
	if st := svc.Stats(); st.Health.State != obs.HealthDraining {
		t.Fatalf("stats health %+v, want draining", st.Health)
	}

	// Plain cell requests still work during drain: only new leases are
	// refused, so in-flight coordinator traffic elsewhere is unaffected.
	if _, err := cl.Cell(context.Background(), testReq); err != nil {
		t.Fatalf("cell during drain: %v", err)
	}
}

// TestQuarantineDegradesHealth: a cell that fails deterministically
// (chaos panic probability 1) crosses QuarantineThreshold, flips
// /healthz to degraded, and surfaces in /v1/stats — and the counters
// ride /metrics as a gauge.
func TestQuarantineDegradesHealth(t *testing.T) {
	svc, err := service.New(service.Config{
		Chaos: chaos.New(chaos.Config{Seed: 1, PanicProb: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler(obs.NewRunInfo("sweepd-test", sim.EngineVersion)))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	cl := service.NewClient(ts.URL)
	cl.Retry = service.RetryPolicy{} // 500s are terminal; don't retry in the client

	for i := 0; i < service.QuarantineThreshold; i++ {
		if _, err := cl.Cell(context.Background(), testReq); err == nil {
			t.Fatal("chaos-panicked cell succeeded")
		}
	}
	if got := svc.QuarantinedCells(); got != 1 {
		t.Fatalf("quarantined %d cells, want 1", got)
	}
	if h := svc.Health(); h.State != obs.HealthDegraded {
		t.Fatalf("health %+v, want degraded", h)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with quarantined cells: %d, want 503", resp.StatusCode)
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Quarantined != 1 || st.Health.State != obs.HealthDegraded {
		t.Fatalf("stats: quarantined=%d health=%+v", st.Quarantined, st.Health)
	}
}

// TestServiceStatsTailError: a journal tail the scanner cannot read is
// operator-visible end to end — journal.Stats.TailError rides
// store.Stats into the /v1/stats document a sweepctl stats call reads.
func TestServiceStatsTailError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{'x'}, 1<<20)
	for i := 0; i < 65; i++ { // one line past the 64 MB scanner cap
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	_, _, cl := startService(t, path)
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.Disk.TailError == "" {
		t.Fatalf("/v1/stats hides the journal tail error: %+v", st.Store.Disk)
	}
	if !strings.Contains(st.Store.Disk.TailError, "too long") && !strings.Contains(st.Store.Disk.TailError, "token") {
		t.Logf("tail error text: %q", st.Store.Disk.TailError)
	}
}
