package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/obs"
)

// API is the HTTP surface:
//
//	POST /v1/cell   one CellRequest  -> CellResponse
//	POST /v1/cells  []CellRequest    -> []BatchItem (concurrent)
//	POST /v1/lease  LeaseRequest     -> LeaseResponse (503 while draining)
//	GET  /v1/stats  -> Stats (store tiers, dedup, counters, health)
//
// plus the standard introspection endpoints from internal/obs —
// /healthz (503 when draining or degraded), /runinfo, /metrics
// (Prometheus, including the store's tier counters), /progress
// (simulating cells) — mounted at the root.

// maxBodyBytes bounds request bodies; a cell request is a few hundred
// bytes, a large batch a few hundred kilobytes.
const maxBodyBytes = 8 << 20

// Handler returns the service mux.
func (s *Service) Handler(info obs.RunInfo) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cell", func(w http.ResponseWriter, r *http.Request) {
		var req CellRequest
		if !s.decode(w, r, &req) {
			return
		}
		resp, err := s.Cell(r.Context(), req)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		s.writeJSON(w, resp)
	})
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		var reqs []CellRequest
		if !s.decode(w, r, &reqs) {
			return
		}
		s.writeJSON(w, s.Cells(r.Context(), reqs))
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !s.decode(w, r, &req) {
			return
		}
		resp, err := s.Lease(r.Context(), req)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		s.writeJSON(w, resp)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, s.Stats())
	})
	// Lease responses name this worker by the same run ID /runinfo
	// advertises.
	s.workerID = info.RunID
	// The obs endpoints serve everything else; its Extra hook merges the
	// store and service counters into /metrics, and its Health hook turns
	// /healthz into 503 while draining or degraded.
	obsSrv := &obs.Server{Info: info, Tracker: s.tracker, Extra: s.MetricsSnapshot, Health: s.Health, Log: s.log}
	mux.Handle("/", obsSrv.Handler())
	return mux
}

// decode reads one JSON body, rejecting trailing garbage and oversize
// payloads; a false return means the 400 is already written.
func (s *Service) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		s.httpError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	if dec.More() {
		s.httpError(w, http.StatusBadRequest, "trailing data after request body")
		return false
	}
	return true
}

// writeError maps service errors to status codes: RequestErrors are the
// client's fault (400); a draining worker answers 503 so coordinators
// re-route instead of retrying here; a dead request context is 499
// (client closed, nginx's convention); everything else — simulation
// failures, durability failures — is a 500.
func (s *Service) writeError(w http.ResponseWriter, r *http.Request, err error) {
	var re *RequestError
	switch {
	case errors.As(err, &re):
		s.httpError(w, http.StatusBadRequest, re.Error())
	case errors.Is(err, ErrDraining):
		s.httpError(w, http.StatusServiceUnavailable, err.Error())
	case r.Context().Err() != nil:
		s.httpError(w, 499, err.Error())
	default:
		s.log.Error("cell request failed", "err", err)
		s.httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// errorBody is every non-200 response's JSON shape.
type errorBody struct {
	Error string `json:"error"`
}

func (s *Service) httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(errorBody{Error: msg}); err != nil {
		s.log.Warn("service: error response encode failed", "err", err)
	}
}

func (s *Service) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Warn("service: response encode failed", "err", err)
	}
}
