package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"time"
)

// RetryPolicy bounds the client's transient-failure retry loop: total
// attempts, and a capped exponential backoff with jitter between them.
// The zero value disables retries (one attempt, no waiting), so struct-
// literal clients behave exactly as before; NewClient installs
// DefaultRetry.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first
	// (<= 0 means 1: no retries).
	Attempts int
	// Base is the delay before the first retry; each further retry
	// doubles it.
	Base time.Duration
	// Cap bounds the backoff however many retries have happened
	// (0 = uncapped).
	Cap time.Duration
}

// DefaultRetry is the policy NewClient installs: three tries with
// 100ms → 200ms backoff, capped at 2s. One dropped packet or a worker
// mid-restart no longer fails a sweepctl call.
var DefaultRetry = RetryPolicy{Attempts: 3, Base: 100 * time.Millisecond, Cap: 2 * time.Second}

// backoff returns the jittered delay before retry n (0-based): full
// jitter over the upper half of the exponential step, so synchronized
// clients spread out without ever retrying instantly.
func (p RetryPolicy) backoff(n int) time.Duration {
	d := p.Base
	if d <= 0 {
		d = 50 * time.Millisecond
	}
	for i := 0; i < n; i++ {
		d *= 2
		if p.Cap > 0 && d >= p.Cap {
			d = p.Cap
			break
		}
	}
	if p.Cap > 0 && d > p.Cap {
		d = p.Cap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// StatusError is a non-200 response from the server, carrying the
// status code so callers can tell a client fault (400: fix the request)
// from a simulation failure (500: retrying the cell may help) from a
// routing condition (503: the worker is draining or degraded — go
// elsewhere). The distributed coordinator's retry/quarantine policy
// keys on this.
type StatusError struct {
	Status int
	Method string
	Path   string
	Msg    string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: %s %s: %d: %s", e.Method, e.Path, e.Status, e.Msg)
}

// retryableStatus reports whether a status code marks a transient
// server condition: gateway hiccups and a draining/overloaded worker
// (503 is what /healthz and the lease endpoint return while draining).
func retryableStatus(code int) bool {
	return code == http.StatusBadGateway ||
		code == http.StatusServiceUnavailable ||
		code == http.StatusGatewayTimeout
}

// Client talks to a sweepd instance. Safe for concurrent use.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8077".
	Base string
	HTTP *http.Client
	// Retry governs transient-failure retries. Every service request is
	// idempotent — cells are content-addressed and memoized — so
	// connection-level failures and 502/503/504 responses are retried
	// up to Retry.Attempts with capped exponential backoff + jitter.
	// Anything else (400s, 500 simulation failures) is reported to the
	// caller, who owns cell-level policy. The zero value retries
	// nothing.
	Retry RetryPolicy
}

// NewClient builds a client for base (scheme optional; bare host:port
// gets "http://") with DefaultRetry and a transport whose dial and TLS
// handshake time out in seconds — a dead host fails fast instead of
// hanging for the kernel's SYN-retry eternity.
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{
		Base:  strings.TrimRight(base, "/"),
		HTTP:  &http.Client{Transport: NewTransport()},
		Retry: DefaultRetry,
	}
}

// NewTransport returns the client's default transport: bounded dial and
// TLS handshake timeouts, keep-alives for lease streams. There is
// deliberately no response-header or overall deadline — a cold
// /v1/cell blocks for the whole simulation, so wall-clock bounds are
// the caller's ctx's job (the coordinator uses the lease TTL).
func NewTransport() *http.Transport {
	return &http.Transport{
		DialContext: (&net.Dialer{
			Timeout:   5 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout: 5 * time.Second,
		MaxIdleConnsPerHost: 16,
		IdleConnTimeout:     90 * time.Second,
	}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// retryable reports whether an attempt's failure is worth retrying: a
// transient status (502/503/504) or a transport-level error. Context
// cancellation and deadlines are the caller saying stop — never
// retried.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return retryableStatus(se.Status)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	// Everything else that escapes once() is connection-level (dial
	// refused/reset/timeout) or a torn response — transient by nature.
	return true
}

// do runs one JSON round trip with the retry policy. in == nil means GET.
func (c *Client) do(ctx context.Context, path string, in, out any) error {
	method := http.MethodGet
	var raw []byte
	if in != nil {
		method = http.MethodPost
		var err error
		raw, err = json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
	}
	attempts := c.Retry.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	var last error
	for try := 0; ; try++ {
		err := c.once(ctx, method, path, raw, out)
		if err == nil {
			return nil
		}
		last = err
		if try+1 >= attempts || !retryable(err) || ctx.Err() != nil {
			return last
		}
		t := time.NewTimer(c.Retry.backoff(try))
		select {
		case <-ctx.Done():
			t.Stop()
			return last
		case <-t.C:
		}
	}
}

// once is a single request/response cycle.
func (c *Client) once(ctx context.Context, method, path string, raw []byte, out any) error {
	var body io.Reader
	if raw != nil {
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if raw != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("client: read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg := strings.TrimSpace(string(data))
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			msg = eb.Error
		}
		return &StatusError{Status: resp.StatusCode, Method: method, Path: path, Msg: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

// Cell requests one cell.
func (c *Client) Cell(ctx context.Context, req CellRequest) (*CellResponse, error) {
	var resp CellResponse
	if err := c.do(ctx, "/v1/cell", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Cells requests a batch.
func (c *Client) Cells(ctx context.Context, reqs []CellRequest) ([]BatchItem, error) {
	var items []BatchItem
	if err := c.do(ctx, "/v1/cells", reqs, &items); err != nil {
		return nil, err
	}
	return items, nil
}

// Lease dispatches one coordinator lease to the worker.
func (c *Client) Lease(ctx context.Context, req LeaseRequest) (*LeaseResponse, error) {
	var resp LeaseResponse
	if err := c.do(ctx, "/v1/lease", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the service stats document.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health pings /healthz once. A degraded or draining worker answers
// 503, which surfaces here as a *StatusError.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, "/healthz", nil, nil)
}

// WaitHealthy polls /healthz until the server answers 200 or the
// deadline passes — the startup handshake for scripts and tests.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = c.Health(ctx); last == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return fmt.Errorf("client: server not healthy after %v: %w", timeout, last)
}
