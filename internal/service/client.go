package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a sweepd instance. The zero HTTP client is fine for
// localhost; point HTTP at a tuned transport for remote servers.
type Client struct {
	// Base is the server root, e.g. "http://localhost:8077".
	Base string
	HTTP *http.Client
}

// NewClient builds a client for base (scheme optional; bare host:port
// gets "http://").
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: &http.Client{}}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one JSON round trip. in == nil means GET.
func (c *Client) do(ctx context.Context, path string, in, out any) error {
	method := http.MethodGet
	var body io.Reader
	if in != nil {
		method = http.MethodPost
		raw, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
		body = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return fmt.Errorf("client: read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(raw, &eb) == nil && eb.Error != "" {
			return fmt.Errorf("client: %s %s: %d: %s", method, path, resp.StatusCode, eb.Error)
		}
		return fmt.Errorf("client: %s %s: %d: %s", method, path, resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("client: decode %s: %w", path, err)
	}
	return nil
}

// Cell requests one cell.
func (c *Client) Cell(ctx context.Context, req CellRequest) (*CellResponse, error) {
	var resp CellResponse
	if err := c.do(ctx, "/v1/cell", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Cells requests a batch.
func (c *Client) Cells(ctx context.Context, reqs []CellRequest) ([]BatchItem, error) {
	var items []BatchItem
	if err := c.do(ctx, "/v1/cells", reqs, &items); err != nil {
		return nil, err
	}
	return items, nil
}

// Stats fetches the service stats document.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health pings /healthz once.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, "/healthz", nil, nil)
}

// WaitHealthy polls /healthz until the server answers or the deadline
// passes — the startup handshake for scripts and tests.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for time.Now().Before(deadline) {
		if last = c.Health(ctx); last == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
	return fmt.Errorf("client: server not healthy after %v: %w", timeout, last)
}
