package service

import (
	"testing"
	"time"
)

// TestBackoffBounds: the jittered backoff stays inside (0, cap] for
// every retry index, including ones deep enough to overflow a naive
// shift, and a zero Base falls back to a sane default.
func TestBackoffBounds(t *testing.T) {
	p := RetryPolicy{Attempts: 8, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	for _, n := range []int{0, 1, 2, 3, 7, 40, 100} {
		for i := 0; i < 50; i++ {
			d := p.backoff(n)
			if d <= 0 || d > p.Cap {
				t.Fatalf("backoff(%d) = %v outside (0, %v]", n, d, p.Cap)
			}
		}
	}
	z := RetryPolicy{}
	if d := z.backoff(0); d <= 0 || d > 50*time.Millisecond {
		t.Fatalf("zero-policy backoff(0) = %v", d)
	}
}
