package service_test

import (
	"context"
	"io"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// startService boots a Service over path with an httptest server and a
// client pointed at it.
func startService(t *testing.T, path string) (*service.Service, *httptest.Server, *service.Client) {
	t.Helper()
	svc, err := service.New(service.Config{
		StorePath: path,
		Tracker:   obs.NewCampaignTracker(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler(obs.NewRunInfo("sweepd-test", sim.EngineVersion)))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	cl := service.NewClient(ts.URL)
	return svc, ts, cl
}

// directDigest runs the cell directly on the engine — no store, no
// service — and returns the digest its durable record would carry. This
// is the ground truth every served tier must match.
func directDigest(t *testing.T) string {
	t.Helper()
	w, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *ir.Program { return w.Build(1) }
	res, err := core.Run(build, arch.SweepEmptyBit, config.Default(), trace.New(trace.RFHome, 1))
	if err != nil {
		t.Fatal(err)
	}
	return journal.FromResult(res).Digest()
}

var testReq = service.CellRequest{
	Workload: "sha", Scheme: "Sweep-EmptyBit", Profile: "RFHome", Seed: 1,
}

// TestServiceEndToEnd is the acceptance path of simulation-as-a-service:
//
//  1. two concurrent identical requests cost exactly one simulation
//     (singleflight dedup or, if the first finishes before the second
//     arrives, a memory hit — either way Misses stays 1);
//  2. a repeated request is served from the memory tier without
//     touching the disk tier;
//  3. a cold restart (new service over the same journal) serves the
//     cell from the disk tier;
//  4. every response — simulated, memory, disk — carries the same
//     record digest as a direct engine run of the same cell.
func TestServiceEndToEnd(t *testing.T) {
	want := directDigest(t)
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	svc, _, cl := startService(t, path)

	// Phase 1: concurrent identical requests.
	var wg sync.WaitGroup
	start := make(chan struct{})
	resps := make([]*service.CellResponse, 2)
	errs := make([]error, 2)
	for i := range resps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resps[i], errs[i] = cl.Cell(context.Background(), testReq)
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent request %d: %v", i, err)
		}
		if resps[i].Digest != want {
			t.Fatalf("concurrent request %d digest %.16s…, want direct-run %.16s…", i, resps[i].Digest, want)
		}
	}
	st := svc.Store().Stats()
	if st.Misses != 1 {
		t.Fatalf("two concurrent identical requests ran %d simulations, want 1 (stats %+v)", st.Misses, st)
	}
	if got := st.DedupCollapses + st.MemHits; got != 1 {
		t.Fatalf("second request unaccounted: dedup %d + mem %d = %d, want 1", st.DedupCollapses, st.MemHits, got)
	}
	t.Logf("concurrent pair: dedup=%d mem=%d", st.DedupCollapses, st.MemHits)

	// Phase 2: repeat — memory tier, disk untouched.
	diskHitsBefore := svc.Store().Stats().Disk.Hits
	r3, err := cl.Cell(context.Background(), testReq)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Tier != "memory" {
		t.Fatalf("repeat served from %q, want memory", r3.Tier)
	}
	if r3.Digest != want {
		t.Fatalf("memory tier digest %.16s…, want %.16s…", r3.Digest, want)
	}
	if after := svc.Store().Stats().Disk.Hits; after != diskHitsBefore {
		t.Fatalf("memory hit touched the disk tier (journal hits %d -> %d)", diskHitsBefore, after)
	}

	// Phase 3: cold restart over the same journal.
	svc.Close()
	_, _, cl2 := startService(t, path)
	r4, err := cl2.Cell(context.Background(), testReq)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Tier != "disk" {
		t.Fatalf("post-restart request served from %q, want disk", r4.Tier)
	}
	if r4.Digest != want {
		t.Fatalf("disk tier digest %.16s…, want %.16s…", r4.Digest, want)
	}
	if r4.Key != resps[0].Key {
		t.Fatalf("cell key drifted across restart: %s vs %s", r4.Key, resps[0].Key)
	}
}

// TestServiceValidation: requests naming things that don't exist are
// 400s, not simulations or 500s.
func TestServiceValidation(t *testing.T) {
	_, _, cl := startService(t, "")
	for name, req := range map[string]service.CellRequest{
		"unknown workload": {Workload: "nope", Scheme: "NVP"},
		"unknown scheme":   {Workload: "sha", Scheme: "nope"},
		"unknown profile":  {Workload: "sha", Scheme: "NVP", Profile: "nope"},
		"missing workload": {Scheme: "NVP"},
		"bad params":       {Workload: "sha", Scheme: "NVP", Params: []byte(`{"NoSuchKnob":1}`)},
		"invalid params":   {Workload: "sha", Scheme: "NVP", Params: []byte(`{"Vmax":-1}`)},
	} {
		if _, err := cl.Cell(context.Background(), req); err == nil || !strings.Contains(err.Error(), "400") {
			t.Errorf("%s: err = %v, want a 400", name, err)
		}
	}
}

// TestServiceBatchAndStats: a mixed batch reports per-item outcomes in
// order, and /v1/stats exposes the tier counters.
func TestServiceBatchAndStats(t *testing.T) {
	_, _, cl := startService(t, filepath.Join(t.TempDir(), "cells.jsonl"))
	items, err := cl.Cells(context.Background(), []service.CellRequest{
		testReq,
		{Workload: "nope", Scheme: "NVP"},
		testReq, // duplicate: hit or collapse, never a second simulation
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items, want 3", len(items))
	}
	if items[0].Response == nil || items[0].Error != "" {
		t.Fatalf("item 0: %+v", items[0])
	}
	if items[1].Response != nil || !strings.Contains(items[1].Error, "nope") {
		t.Fatalf("item 1 should fail validation: %+v", items[1])
	}
	if items[2].Response == nil || items[2].Response.Digest != items[0].Response.Digest {
		t.Fatalf("duplicate batch item digests differ: %+v vs %+v", items[2], items[0])
	}

	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Store.Misses != 1 {
		t.Fatalf("batch ran %d simulations for one distinct valid cell, want 1", st.Store.Misses)
	}
	if st.Counters["service.requests"] == 0 || st.Counters["service.bad_requests"] != 1 {
		t.Fatalf("service counters: %+v", st.Counters)
	}
}

// TestLoadGenerator runs the mixed hit/miss/concurrent scenario the CI
// smoke uses, in-process: concurrent identical and distinct requests,
// every digest agreeing, simulations bounded by the distinct cell count.
func TestLoadGenerator(t *testing.T) {
	svc, _, cl := startService(t, filepath.Join(t.TempDir(), "cells.jsonl"))
	cells := []service.CellRequest{
		{Workload: "sha", Scheme: "Sweep-EmptyBit", Profile: "RFHome", Seed: 1},
		{Workload: "sha", Scheme: "NVP", Profile: "RFHome", Seed: 1},
		{Workload: "adpcmenc", Scheme: "Sweep-EmptyBit", Seed: 1},
	}
	rep, err := service.RunLoad(context.Background(), cl, service.LoadSpec{
		Clients: 6, Repeat: 3, Cells: cells,
	})
	if err != nil {
		t.Fatalf("load scenario failed: %v (report %+v)", err, rep)
	}
	wantReqs := 6 * 3 * len(cells)
	if rep.Requests != wantReqs || rep.Failures != 0 {
		t.Fatalf("report: %+v, want %d requests 0 failures", rep, wantReqs)
	}
	if len(rep.Digests) != len(cells) {
		t.Fatalf("%d distinct keys, want %d", len(rep.Digests), len(cells))
	}
	st := svc.Store().Stats()
	if st.Misses != uint64(len(cells)) {
		t.Fatalf("%d simulations for %d distinct cells under load", st.Misses, len(cells))
	}
	if st.Errors != 0 {
		t.Fatalf("%d compute errors under load", st.Errors)
	}
}

// TestServiceMetricsEndpoint: the store counters ride the Prometheus
// scrape.
func TestServiceMetricsEndpoint(t *testing.T) {
	_, ts, cl := startService(t, filepath.Join(t.TempDir(), "cells.jsonl"))
	if _, err := cl.Cell(context.Background(), testReq); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Cell(context.Background(), testReq); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"store_mem_hits 1", "store_misses 1", "service_requests 2"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}
