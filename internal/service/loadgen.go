package service

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// LoadSpec drives the load-generator scenario: Clients concurrent
// clients each walk the Cells list Repeat times. Every client requests
// every cell, so the same key is in flight from many clients at once —
// the mixed workload that exercises singleflight dedup (identical
// concurrent requests), the memory tier (repeats), and the miss path
// (first arrivals), all in one run.
type LoadSpec struct {
	Clients int           `json:"clients"`
	Repeat  int           `json:"repeat"`
	Cells   []CellRequest `json:"cells"`
}

// LoadReport is the scenario's verdict. The invariant checked: for each
// key, every response across every client and repetition carried one
// digest. Tier counts show the cache doing its job (at most one
// "simulated" per distinct cell is the ideal; dedup makes the observed
// number one per cell that wasn't already durable).
type LoadReport struct {
	Requests int            `json:"requests"`
	Failures int            `json:"failures"`
	Tiers    map[string]int `json:"tiers"`
	// Digests maps cell key -> the one digest every response agreed on.
	Digests   map[string]string `json:"digests"`
	ElapsedNs int64             `json:"elapsed_ns"`
}

// RunLoad executes the scenario against the server behind cl. It fails
// if any request errors or if two responses for the same key ever
// disagree on the digest — the correctness property "memoization is
// invisible" reduced to one check.
func RunLoad(ctx context.Context, cl *Client, spec LoadSpec) (*LoadReport, error) {
	if spec.Clients <= 0 {
		spec.Clients = 4
	}
	if spec.Repeat <= 0 {
		spec.Repeat = 1
	}
	if len(spec.Cells) == 0 {
		return nil, fmt.Errorf("loadgen: no cells to request")
	}

	type obs struct {
		key, digest, tier string
		err               error
	}
	results := make(chan obs, spec.Clients*spec.Repeat*len(spec.Cells))
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < spec.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for rep := 0; rep < spec.Repeat; rep++ {
				for i := range spec.Cells {
					// Each client starts at its own offset so distinct
					// cells are in flight concurrently while every cell
					// still gets concurrent identical requests.
					req := spec.Cells[(i+c)%len(spec.Cells)]
					resp, err := cl.Cell(ctx, req)
					if err != nil {
						results <- obs{err: err}
						continue
					}
					results <- obs{key: resp.Key, digest: resp.Digest, tier: resp.Tier}
				}
			}
		}(c)
	}
	wg.Wait()
	close(results)

	rep := &LoadReport{
		Tiers:     map[string]int{},
		Digests:   map[string]string{},
		ElapsedNs: time.Since(start).Nanoseconds(),
	}
	var firstErr error
	var mismatches []string
	for r := range results {
		rep.Requests++
		if r.err != nil {
			rep.Failures++
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		rep.Tiers[r.tier]++
		if prev, ok := rep.Digests[r.key]; !ok {
			rep.Digests[r.key] = r.digest
		} else if prev != r.digest {
			mismatches = append(mismatches, r.key)
		}
	}
	if firstErr != nil {
		return rep, fmt.Errorf("loadgen: %d/%d requests failed, first: %w", rep.Failures, rep.Requests, firstErr)
	}
	if len(mismatches) > 0 {
		sort.Strings(mismatches)
		return rep, fmt.Errorf("loadgen: digest disagreement on %d keys (first %.16s…) — the cache served a wrong record", len(mismatches), mismatches[0])
	}
	return rep, nil
}
