package service_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

// countingServer answers each request with the next status in seq
// (repeating the last forever), returning "{}" bodies on 200.
func countingServer(t *testing.T, seq ...int) (*httptest.Server, *atomic.Int32) {
	t.Helper()
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(hits.Add(1)) - 1
		if n >= len(seq) {
			n = len(seq) - 1
		}
		code := seq[n]
		w.Header().Set("Content-Type", "application/json")
		if code != http.StatusOK {
			w.WriteHeader(code)
			w.Write([]byte(`{"error":"injected"}`))
			return
		}
		w.Write([]byte(`{}`))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func fastRetry() service.RetryPolicy {
	return service.RetryPolicy{Attempts: 3, Base: time.Millisecond, Cap: 5 * time.Millisecond}
}

// TestClientRetriesTransient: 503s (a draining worker, a gateway
// hiccup) are retried with backoff until an attempt succeeds.
func TestClientRetriesTransient(t *testing.T) {
	ts, hits := countingServer(t, http.StatusServiceUnavailable, http.StatusServiceUnavailable, http.StatusOK)
	cl := service.NewClient(ts.URL)
	cl.Retry = fastRetry()
	if _, err := cl.Stats(context.Background()); err != nil {
		t.Fatalf("third attempt should have succeeded: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (two retries)", got)
	}
}

// TestClientNoRetryOnCallerFault: 400 means the request itself is
// wrong and 500 means the cell's computation failed — both are the
// caller's policy to handle, never silently retried.
func TestClientNoRetryOnCallerFault(t *testing.T) {
	for _, code := range []int{http.StatusBadRequest, http.StatusInternalServerError} {
		ts, hits := countingServer(t, code)
		cl := service.NewClient(ts.URL)
		cl.Retry = fastRetry()
		_, err := cl.Cell(context.Background(), testReq)
		if err == nil || !strings.Contains(err.Error(), "injected") {
			t.Fatalf("status %d: err = %v", code, err)
		}
		if got := hits.Load(); got != 1 {
			t.Fatalf("status %d retried: server saw %d requests, want 1", code, got)
		}
	}
}

// TestClientZeroValueNoRetry: a struct-literal client (zero RetryPolicy)
// behaves exactly as before retries existed — one attempt.
func TestClientZeroValueNoRetry(t *testing.T) {
	ts, hits := countingServer(t, http.StatusServiceUnavailable)
	cl := &service.Client{Base: ts.URL}
	if _, err := cl.Stats(context.Background()); err == nil {
		t.Fatal("503 must surface")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("zero-value client retried: %d requests", got)
	}
}

// TestClientRetryHonorsContext: a canceled context stops the backoff
// loop immediately instead of sleeping out the remaining retries.
func TestClientRetryHonorsContext(t *testing.T) {
	ts, hits := countingServer(t, http.StatusServiceUnavailable)
	cl := service.NewClient(ts.URL)
	cl.Retry = service.RetryPolicy{Attempts: 10, Base: time.Hour, Cap: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cl.Stats(ctx)
		done <- err
	}()
	for hits.Load() == 0 { // let the first attempt land, then cancel mid-backoff
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled retry loop returned success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored cancellation (still backing off)")
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("server saw %d requests after cancel, want 1", got)
	}
}

// TestClientRetriesConnError: a dropped connection (server gone between
// attempts... or never there) is transient; retries reach a server that
// comes back. Here the address refuses outright, so all attempts burn —
// but the error must be the connection error, not a panic or a hang.
func TestClientRetriesConnError(t *testing.T) {
	cl := service.NewClient("http://127.0.0.1:1")
	cl.Retry = fastRetry()
	start := time.Now()
	_, err := cl.Stats(context.Background())
	if err == nil {
		t.Fatal("connecting to a closed port succeeded")
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("conn-refused retries took %v — backoff or dial timeout broken", el)
	}
}
