// Package service is simulation-as-a-service: the layer that turns the
// batch experiment engine into a server. A request names one experiment
// cell — workload × scheme × supply profile × seed × scale × params —
// and the service serves its result from the tiered store
// (internal/store: LRU memory tier over the durable journal), only
// simulating on a miss, with singleflight collapsing concurrent
// identical requests into one simulation.
//
// Simulation reuses the matrix-cell machinery of internal/exp
// (exp.Context.RunSingle): panic isolation, per-cell timeouts, chaos
// injection, and the process-wide compile and trace-tape caches, so a
// served cell is bit-identical to the same cell in a batch campaign —
// the journal's content-hash key guarantees it can never be anything
// else.
//
// cmd/sweepd wraps this package in a binary; cmd/sweepctl is the
// client. See docs/SERVICE.md.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/exp"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// OutageFree is the profile name selecting an ideal supply (no power
// trace). An empty profile means the same thing.
const OutageFree = "outage-free"

// CellRequest names one experiment cell. Zero values pick the
// evaluation defaults: scale 1, seed 1, Table 1 params, outage-free
// supply.
type CellRequest struct {
	Workload string `json:"workload"`
	Scheme   string `json:"scheme"`
	// Profile is a supply trace name (RFHome, RFOffice, solar, thermal)
	// or "outage-free"/"" for an ideal supply.
	Profile string `json:"profile,omitempty"`
	Scale   int    `json:"scale,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	// Params, when present, is a partial config.Params override decoded
	// on top of the Table 1 defaults (exactly the -params file format);
	// unknown fields and invalid merges are rejected.
	Params json.RawMessage `json:"params,omitempty"`
}

// CellResponse is the served result of one cell.
type CellResponse struct {
	// Key is the cell's content-hash store key.
	Key  string       `json:"key"`
	Cell journal.Cell `json:"cell"`
	// Tier says where the record came from: "memory", "disk", or
	// "simulated" (a miss — including requests collapsed onto another
	// request's in-flight simulation).
	Tier string `json:"tier"`
	// Digest is the record's content digest; every tier and every
	// replica serves the same digest for the same key.
	Digest    string          `json:"digest"`
	ElapsedNs int64           `json:"elapsed_ns"`
	Record    *journal.Record `json:"record,omitempty"`
}

// RequestError marks a client-side fault (unknown workload, bad params);
// the HTTP layer renders it as 400 instead of 500.
type RequestError struct{ msg string }

func (e *RequestError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &RequestError{msg: fmt.Sprintf(format, args...)}
}

// Config assembles a Service.
type Config struct {
	// StorePath is the disk tier's journal path; empty runs memory-only
	// (no durability, cold restarts).
	StorePath string
	// MemCap bounds the memory tier (entries); <=0 = store.DefaultMemCap.
	MemCap int
	// MaxSim bounds concurrent simulations; <=0 = NumCPU. Cache hits are
	// never gated.
	MaxSim int
	// CellTimeout bounds one simulation's wall clock (0 = none).
	CellTimeout time.Duration
	// Chaos, when non-nil, injects deterministic faults into simulations
	// (testing only).
	Chaos *chaos.Injector
	// Tracker, when non-nil, follows simulated cells through the obs
	// state machine for /progress. Only misses register — hits would
	// grow the tracker without bound on a long-lived server.
	Tracker *obs.CampaignTracker
	Log     *slog.Logger
}

// Service serves memoized simulation results. Safe for concurrent use.
type Service struct {
	store       *store.Store
	reg         *telemetry.LiveRegistry
	log         *slog.Logger
	tracker     *obs.CampaignTracker
	chaos       *chaos.Injector
	cellTimeout time.Duration
	// sem holds simulation slots; the slot index doubles as the obs
	// worker id, so /progress shows MaxSim stable worker rows.
	sem chan int

	// workerID identifies this daemon in lease responses; Handler
	// overrides the default with the run ID from /runinfo so the two
	// always agree.
	workerID string

	// draining refuses new leases once shutdown has begun (StartDrain).
	draining atomic.Bool

	// Quarantine tracking: consecutive compute-failure streaks per cell
	// key, and the keys that crossed QuarantineThreshold with their last
	// error. Guarded by qmu; context-derived failures don't count.
	qmu         sync.Mutex
	failStreaks map[string]int
	quarantined map[string]string
}

// New builds the service and opens its store.
func New(cfg Config) (*Service, error) {
	st, err := store.Open(cfg.StorePath, cfg.MemCap)
	if err != nil {
		return nil, err
	}
	maxSim := cfg.MaxSim
	if maxSim <= 0 {
		maxSim = runtime.NumCPU()
	}
	sem := make(chan int, maxSim)
	for i := 0; i < maxSim; i++ {
		sem <- i
	}
	log := cfg.Log
	if log == nil {
		log = slog.Default()
	}
	reg := telemetry.NewLiveRegistry()
	st.SetRegistry(reg)
	s := &Service{
		store:       st,
		reg:         reg,
		log:         log,
		tracker:     cfg.Tracker,
		chaos:       cfg.Chaos,
		cellTimeout: cfg.CellTimeout,
		sem:         sem,
		workerID:    obs.NewRunID(),
		failStreaks: map[string]int{},
		quarantined: map[string]string{},
	}
	if cfg.Tracker != nil {
		cfg.Tracker.BeginPhase("serve")
		if st := s.store.Stats(); st.Disk.Loaded > 0 || st.Disk.Corrupt > 0 {
			cfg.Tracker.SetJournalStats(st.Disk.Loaded, st.Disk.Corrupt)
		}
	}
	return s, nil
}

// Store exposes the underlying store (tests and stats endpoints).
func (s *Service) Store() *store.Store { return s.store }

// Close releases the store's disk tier.
func (s *Service) Close() error { return s.store.Close() }

// cellSpec is a parsed, validated request.
type cellSpec struct {
	workload string
	kind     arch.Kind
	profile  *trace.Profile
	ec       *exp.Context
}

// parse validates a request into a runnable spec. All failures are
// RequestErrors: the request named something that does not exist.
func (s *Service) parse(req CellRequest) (*cellSpec, error) {
	if req.Workload == "" {
		return nil, badRequest("missing workload")
	}
	kind, ok := arch.ParseKind(req.Scheme)
	if !ok {
		return nil, badRequest("unknown scheme %q (want one of %v)", req.Scheme, arch.AllKinds())
	}
	var profile *trace.Profile
	if req.Profile != "" && req.Profile != OutageFree {
		p, ok := trace.ParseProfile(req.Profile)
		if !ok {
			return nil, badRequest("unknown profile %q (want %v or %q)", req.Profile, trace.Profiles(), OutageFree)
		}
		profile = &p
	}
	params := config.Default()
	if len(req.Params) > 0 {
		p, err := config.FromJSON(req.Params)
		if err != nil {
			return nil, badRequest("bad params: %v", err)
		}
		params = p
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1
	}
	if scale < 0 {
		return nil, badRequest("negative scale %d", scale)
	}
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	// One exp.Context per request: it carries the cell's identity knobs
	// and the matrix-cell machinery (panic isolation, CellTimeout,
	// chaos); the expensive state (compile cache, trace tapes) is
	// process-wide and shared behind it.
	ec := &exp.Context{
		Params:      params,
		Scale:       scale,
		Seed:        seed,
		CellTimeout: s.cellTimeout,
		Chaos:       s.chaos,
	}
	// Resolve the workload now so an unknown name is a 400, not a
	// simulated-miss 500.
	if _, err := workloads.ByName(req.Workload); err != nil {
		return nil, badRequest("%v", err)
	}
	return &cellSpec{workload: req.Workload, kind: kind, profile: profile, ec: ec}, nil
}

// Cell serves one cell: fastest tier first, simulate on miss, dedup
// identical in-flight requests.
func (s *Service) Cell(ctx context.Context, req CellRequest) (*CellResponse, error) {
	s.reg.Counter("service.requests").Add(1)
	spec, err := s.parse(req)
	if err != nil {
		s.reg.Counter("service.bad_requests").Add(1)
		return nil, err
	}
	id := spec.ec.CellID(spec.workload, spec.kind, spec.profile)
	start := time.Now()
	rec, tier, err := s.store.GetOrCompute(ctx, id, func(ctx context.Context) (*journal.Record, error) {
		return s.simulate(ctx, spec, id)
	})
	if err != nil {
		s.reg.Counter("service.failures").Add(1)
		return nil, err
	}
	return &CellResponse{
		Key:       id.Key(),
		Cell:      id,
		Tier:      tier.String(),
		Digest:    rec.Digest(),
		ElapsedNs: time.Since(start).Nanoseconds(),
		Record:    rec,
	}, nil
}

// simulate runs the cell under a simulation slot, with obs tracking.
func (s *Service) simulate(ctx context.Context, spec *cellSpec, id journal.Cell) (*journal.Record, error) {
	var slot int
	select {
	case slot = <-s.sem:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { s.sem <- slot }()

	idx := -1
	if s.tracker != nil {
		idx = s.tracker.AddCells([]obs.CellMeta{{
			Workload: id.Workload, Scheme: id.Scheme, Profile: id.Profile,
		}})
		s.tracker.Start(slot, idx)
	}
	s.log.Debug("simulating cell", "workload", id.Workload, "scheme", id.Scheme,
		"profile", id.Profile, "seed", id.Seed, "slot", slot)
	res, err := spec.ec.RunSingle(ctx, spec.workload, spec.kind, spec.profile)
	if err != nil {
		if s.tracker != nil {
			s.tracker.Fail(slot, idx, err, false)
		}
		// A failure with a live context is the cell's own doing (panic,
		// no-progress, chaos) and counts toward quarantine; a dead context
		// means the caller walked away or the lease TTL fired — not the
		// cell's fault.
		if ctx.Err() == nil {
			s.noteCellFailure(id.Key(), err)
		}
		return nil, err
	}
	if s.tracker != nil {
		s.tracker.Done(slot, idx)
	}
	s.noteCellSuccess(id.Key())
	return journal.FromResult(res), nil
}

// BatchItem is one result of a Cells batch: exactly one of Response or
// Error is set.
type BatchItem struct {
	Response *CellResponse `json:"response,omitempty"`
	Error    string        `json:"error,omitempty"`
}

// Cells serves a batch concurrently. Per-item failures are reported in
// place; the batch itself only fails on a dead context. The simulation
// semaphore bounds the real work however large the batch is.
func (s *Service) Cells(ctx context.Context, reqs []CellRequest) []BatchItem {
	items := make([]BatchItem, len(reqs))
	workers := runtime.NumCPU() * 2 // waiters are cheap; sims are gated by sem
	if workers > len(reqs) {
		workers = len(reqs)
	}
	jobCh := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobCh {
				resp, err := s.Cell(ctx, reqs[i])
				if err != nil {
					items[i] = BatchItem{Error: err.Error()}
				} else {
					items[i] = BatchItem{Response: resp}
				}
				done <- struct{}{}
			}
		}()
	}
	go func() {
		for i := range reqs {
			jobCh <- i
		}
		close(jobCh)
	}()
	for range reqs {
		<-done
	}
	return items
}

// Stats is the /v1/stats document.
type Stats struct {
	Store store.Stats `json:"store"`
	// Counters are the live service counters (requests, failures, store
	// tier hits as they accumulate).
	Counters map[string]uint64 `json:"counters"`
	// Health mirrors the /healthz verdict so one stats scrape carries it.
	Health obs.Health `json:"health"`
	// Quarantined is the current quarantined-cell count (cells that
	// failed QuarantineThreshold consecutive times).
	Quarantined int `json:"quarantined"`
}

// Stats snapshots the service.
func (s *Service) Stats() Stats {
	snap := s.reg.Snapshot()
	return Stats{
		Store:       s.store.Stats(),
		Counters:    snap.Counters,
		Health:      s.Health(),
		Quarantined: s.QuarantinedCells(),
	}
}

// MetricsSnapshot merges the live counters with point-in-time store
// gauges — the Extra hook for the obs /metrics endpoint.
func (s *Service) MetricsSnapshot() *telemetry.Snapshot {
	snap := s.reg.Snapshot()
	st := s.store.Stats()
	snap.Gauges["store.in_flight"] = float64(st.InFlight)
	snap.Gauges["store.mem_entries"] = float64(st.MemEntries)
	snap.Counters["store.disk_loaded"] = uint64(st.Disk.Loaded)
	snap.Gauges["service.quarantined_cells"] = float64(s.QuarantinedCells())
	return snap
}
