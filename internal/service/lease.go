package service

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/obs"
)

// The worker half of the distributed-campaign lease protocol
// (internal/dist is the coordinator half). A lease names one cell plus
// the coordinator's bookkeeping — lease ID, attempt number, TTL — and
// the worker simply serves the cell through the same tiered-store path
// as /v1/cell, bounded by the TTL. Leases are idempotent by
// construction: the cell key is a content hash, so a re-issued or
// duplicated lease lands on the memoized record (or collapses onto the
// in-flight simulation) instead of recomputing, and every completion
// for a key carries the same digest. The coordinator therefore never
// needs worker-side lease state; TTL enforcement here only stops a
// stolen straggler from burning CPU on a result nobody will read.

// LeaseRequest is one coordinator work order.
type LeaseRequest struct {
	// LeaseID names this dispatch attempt for the coordinator's books;
	// the response echoes it.
	LeaseID string `json:"lease_id"`
	// Attempt is 1-based: how many leases (including this one) the
	// coordinator has issued for the cell. Chaos injectors salt their
	// decisions with per-cell attempt counters, so retries converge.
	Attempt int `json:"attempt"`
	// TTLMs bounds the lease's wall clock; the worker aborts the
	// simulation at the TTL (the coordinator has already given up on
	// this lease by then). 0 = unbounded.
	TTLMs int64       `json:"ttl_ms,omitempty"`
	Cell  CellRequest `json:"cell"`
}

// LeaseResponse is a completed lease.
type LeaseResponse struct {
	LeaseID string `json:"lease_id"`
	Attempt int    `json:"attempt"`
	// Worker identifies the serving daemon (its run ID), so a merged
	// campaign report can say which worker proved which cell.
	Worker string        `json:"worker"`
	Result *CellResponse `json:"result"`
}

// ErrDraining is returned for leases (and rendered as 503) while the
// worker is shutting down: the coordinator re-issues the lease to a
// healthy worker instead of waiting out the drain.
var ErrDraining = errors.New("service: draining — not accepting new leases")

// Lease serves one coordinator lease: the cell runs through the normal
// tiered-store path under a TTL-bounded context.
func (s *Service) Lease(ctx context.Context, lr LeaseRequest) (*LeaseResponse, error) {
	if lr.LeaseID == "" {
		return nil, badRequest("missing lease_id")
	}
	if s.draining.Load() {
		return nil, ErrDraining
	}
	s.reg.Counter("service.leases").Add(1)
	lctx := ctx
	if lr.TTLMs > 0 {
		var cancel context.CancelFunc
		lctx, cancel = context.WithTimeout(ctx, time.Duration(lr.TTLMs)*time.Millisecond)
		defer cancel()
	}
	resp, err := s.Cell(lctx, lr.Cell)
	if err != nil {
		return nil, err
	}
	return &LeaseResponse{LeaseID: lr.LeaseID, Attempt: lr.Attempt, Worker: s.workerID, Result: resp}, nil
}

// QuarantineThreshold is how many consecutive compute failures put a
// cell key on the worker's quarantine list (flipping /healthz to
// degraded). A success clears the key: transient failures heal,
// deterministic ones accumulate.
const QuarantineThreshold = 3

// StartDrain flips the worker into draining: /healthz answers 503 and
// new leases are refused, while in-flight requests run to completion
// under the server's shutdown grace. sweepd calls this on
// SIGINT/SIGTERM before http.Server.Shutdown.
func (s *Service) StartDrain() {
	if !s.draining.Swap(true) {
		s.log.Info("service draining: refusing new leases, /healthz now 503")
	}
}

// Draining reports whether StartDrain has been called.
func (s *Service) Draining() bool { return s.draining.Load() }

// noteCellFailure records a compute failure for quarantine tracking.
// Context-derived failures (lease expiry, client disconnect) are the
// caller's doing, not the cell's — the simulate path filters them out
// before calling this.
func (s *Service) noteCellFailure(key string, err error) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	s.failStreaks[key]++
	if s.failStreaks[key] == QuarantineThreshold {
		if s.quarantined == nil {
			s.quarantined = map[string]string{}
		}
		s.quarantined[key] = err.Error()
		s.reg.Counter("service.cells_quarantined").Add(1)
		s.log.Warn("cell quarantined: repeated deterministic failures — /healthz degraded",
			"key", key, "streak", s.failStreaks[key], "err", err)
	}
}

// noteCellSuccess clears a key's failure streak (and un-quarantines it:
// the failure evidently was not deterministic after all).
func (s *Service) noteCellSuccess(key string) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	if s.failStreaks[key] > 0 {
		delete(s.failStreaks, key)
	}
	if _, ok := s.quarantined[key]; ok {
		delete(s.quarantined, key)
		s.log.Info("cell recovered from quarantine", "key", key)
	}
}

// QuarantinedCells returns how many cell keys are currently quarantined.
func (s *Service) QuarantinedCells() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.quarantined)
}

// Health is the /healthz verdict: draining beats degraded beats ok.
func (s *Service) Health() obs.Health {
	if s.draining.Load() {
		return obs.Health{State: obs.HealthDraining, Reason: "shutting down"}
	}
	if n := s.QuarantinedCells(); n > 0 {
		return obs.Health{State: obs.HealthDegraded, Reason: fmt.Sprintf("%d quarantined cells", n)}
	}
	return obs.Health{State: obs.HealthOK}
}
