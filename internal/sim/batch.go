// Batched multi-seed engine: RunBatch advances N runs of the same
// program on the same scheme configuration in lockstep, where the runs
// differ only in power-trace seed. Decode/dispatch and register
// semantics are paid once per instruction per batch on a shared pack
// core (cpu.RunLockstep); each lane keeps full private accounting —
// capacitor, ledger, trace cursor, memory hierarchy, epoch state — so
// every lane's result is bit-identical to a scalar Run with its seed
// (TestRunBatchMatchesScalar pins this across the scheme matrix).
//
// Divergence model: lanes leave the pack at power events. A lane whose
// restore lands exactly on the pack state (JIT schemes restoring the
// snapshot they just took) rejoins instantly; otherwise the lane replays
// privately — running literally the scalar engine's loops — until its
// (PC, regs) reach the pack state again, then re-enters the pack, mid-
// epoch or at a boundary. The pack pauses while stopped lanes settle and
// replay, so actives never desynchronize. A lane that halts, errors, or
// exhausts its budget drops out; the pack continues while any lane
// remains.
//
// Zero-budget stretches (epochBudget == 0: near-threshold voltage,
// harvest exceeding run power, segment tails) must settle the capacitor
// after every instruction. Those never route through the pack: lanes
// park on their own live cores and advance in precise *bursts* — rounds
// where every parked lane runs the scalar boundary checks and then one
// scalar stepPrecise. Converged lanes execute the same instruction, so
// they stay converged without any pack traffic; the pack is re-seeded
// from the shared round-start state each round, which preserves the
// invariant that no lane is ever ahead of the pack (anything that leaves
// a burst — power cycle, halt, open epoch — leaves at or behind the
// round start). See docs/PERFORMANCE.md.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/trace"
)

// BatchOptions configures one RunBatch call. The per-run knobs carry
// Options' semantics and apply to every lane uniformly.
type BatchOptions struct {
	// Sources holds one power trace per lane (same length as the scheme
	// slice). Batched runs are always harvested — an outage-free run has
	// no seed to sweep, so there is nothing to batch.
	Sources []trace.Source
	// Ctx, when non-nil, cancels the batch: every still-active lane
	// returns a *CanceledError. Canceled lanes stop at a pack pause, not
	// at the scalar engine's poll points, so their partial state is not
	// bit-comparable to a canceled scalar run.
	Ctx             context.Context
	MaxInstructions uint64
	StagnationNs    int64
	RegionHistMax   int
}

// packChunkSlots bounds the pack's advance while any live lane is
// outside it (parked or replaying): stragglers then chase a short,
// bounded distance instead of replaying arbitrarily far stepwise.
const packChunkSlots = 48

// Lane replay/pack modes.
const (
	laneIdle     = iota // between pack entries, inside boundary processing
	laneLockstep        // in the pack with an open epoch
	laneParked          // converged at the pack on a live core, zero budget
	laneSolo            // behind the pack, replaying privately to converge
	laneDone            // halted, result final
	laneFailed          // errored, error final
)

// blane is one lane of a batch: a full scalar runner (used verbatim for
// boundary events and divergent replay) plus the pack-side accounting
// view and the bookkeeping that relates the two.
type blane struct {
	idx  int
	r    *runner
	mode int
	err  error
	// extra is the lane's instruction-count surplus over the pack —
	// instructions the lane re-executed during divergent replays. While
	// the lane is in the pack, its true counts are pack counts + extra.
	extra cpu.Counts
	ls    cpu.LockstepLane
	// epochStartNow is the lane clock when its open epoch began; the
	// settlement integrates harvest over ls.Now - epochStartNow.
	epochStartNow int64
}

// batch is the coordinator state shared across one RunBatch call.
type batch struct {
	l     *ir.Linked
	pack  *cpu.CPU
	ctl   cpu.LockstepControl
	lanes []*blane
	burst []*blane // scratch: the parked-lane set of the current burst
	jit   bool
	max   uint64

	ctx             context.Context
	cancelCountdown int
}

// RunBatch executes the linked program on every scheme in lockstep,
// lane i drawing power from opt.Sources[i]. The schemes must be distinct
// instances of the same configuration (same Name and Params) — lanes
// may differ only in power-trace seed, which is what makes the shared
// register trajectory sound. It returns one Result and one error slot
// per lane (results[i] is meaningful even when errs[i] is non-nil, as
// with Run), plus a batch-level configuration error.
func RunBatch(l *ir.Linked, schemes []arch.Scheme, opt BatchOptions) ([]*Result, []error, error) {
	n := len(schemes)
	if n == 0 {
		return nil, nil, errors.New("sim: RunBatch needs at least one scheme")
	}
	if len(opt.Sources) != n {
		return nil, nil, fmt.Errorf("sim: RunBatch got %d schemes but %d sources", n, len(opt.Sources))
	}
	for i, src := range opt.Sources {
		if src == nil {
			return nil, nil, fmt.Errorf("sim: RunBatch source %d is nil", i)
		}
	}
	name, p0 := schemes[0].Name(), schemes[0].Params()
	for i, s := range schemes {
		if s.Name() != name {
			return nil, nil, fmt.Errorf("sim: RunBatch lane %d is %s, lane 0 is %s — lanes must share one configuration", i, s.Name(), name)
		}
		if s.Params() != p0 {
			return nil, nil, fmt.Errorf("sim: RunBatch lane %d params differ from lane 0 — lanes must share one configuration", i)
		}
		for j := 0; j < i; j++ {
			if schemes[j] == s {
				return nil, nil, fmt.Errorf("sim: RunBatch lanes %d and %d are the same scheme instance — each lane needs its own", j, i)
			}
		}
	}
	laneOpt := func(i int) Options {
		return Options{
			Source:          opt.Sources[i],
			Ctx:             opt.Ctx,
			MaxInstructions: opt.MaxInstructions,
			StagnationNs:    opt.StagnationNs,
			RegionHistMax:   opt.RegionHistMax,
		}
	}
	if n == 1 {
		// A batch of one is exactly a scalar run; take the scalar engine.
		res, err := Run(l, schemes[0], laneOpt(0))
		return []*Result{res}, []error{err}, nil
	}

	results := make([]*Result, n)
	errs := make([]error, n)
	b := &batch{l: l, jit: schemes[0].JIT(), ctx: opt.Ctx, cancelCountdown: cancelPollInterval}
	for i, s := range schemes {
		r, err := newRunner(l, s, laneOpt(i))
		if err != nil {
			return nil, nil, err
		}
		ln := &blane{idx: i, r: r}
		ln.ls.MS = r.ms
		ln.ls.NeedsBackup = s.NeedsBackup
		ln.ls.Led = r.led
		ln.ls.OnRegionEnd = r.res.RegionSizes.Add
		b.lanes = append(b.lanes, ln)
		results[i] = r.res
	}
	b.max = b.lanes[0].r.opt.MaxInstructions // post-default value, uniform
	b.pack = cpu.NewLinked(l)
	if b.lanes[0].r.fetchFree {
		b.pack.SetFetchFree(true)
	}
	r0 := b.lanes[0].r
	b.ctl = cpu.LockstepControl{
		Timing:     r0.timing,
		EByNs:      r0.eInstrByNs,
		EInstr:     r0.p.EInstr,
		PRun:       r0.p.PRun,
		Jit:        b.jit,
		MaxInstrNs: epochMaxInstrNs,
	}

	// A batch that is already canceled does no work at all (Run's
	// pre-canceled contract, per lane).
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			for _, ln := range b.lanes {
				ln.mode = laneFailed
				ln.err = ln.r.checkCancel()
			}
		}
	}

	// Boundary-process every lane once to plan its first pack entry; all
	// cores start identical to the pack, so lanes enter converged.
	for _, ln := range b.lanes {
		if ln.mode == laneFailed {
			continue
		}
		b.laneBoundary(ln)
		if ln.mode == laneLockstep {
			b.syncFromRunner(ln)
		}
	}

	active := make([]*blane, 0, n)
	lsLanes := make([]*cpu.LockstepLane, 0, n)
	b.burst = make([]*blane, 0, n)
	for {
		// Solo lanes first: replay privately until they converge on the
		// parked pack (possibly mid-epoch), halt, or fail.
		for _, ln := range b.lanes {
			if ln.mode != laneSolo {
				continue
			}
			ln.mode = laneIdle
			if err := b.runDivergent(ln); err != nil {
				b.failLane(ln, err)
				continue
			}
			if ln.mode != laneLockstep {
				b.laneBoundary(ln)
			}
			if ln.mode == laneLockstep {
				b.syncFromRunner(ln)
			}
		}

		// Advance the pack, fused, with every open-epoch lane.
		active = active[:0]
		lsLanes = lsLanes[:0]
		live := 0
		limit := uint64(math.MaxUint64)
		for _, ln := range b.lanes {
			switch ln.mode {
			case laneParked, laneSolo:
				live++
				continue
			case laneLockstep:
			default:
				continue
			}
			live++
			active = append(active, ln)
			lsLanes = append(lsLanes, &ln.ls)
			if lim := b.max - ln.extra.Executed; lim < limit {
				limit = lim
			}
		}
		if len(active) == 0 {
			// No epochs open. Parked lanes advance in precise bursts;
			// if none are parked either, every lane is terminal (solo
			// lanes were all chased above).
			if !b.runBurst() {
				break
			}
			continue
		}
		b.ctl.LimitExec = limit
		switch {
		case len(active) < live:
			// Some live lane is parked or replaying outside the pack.
			// Cap the pack's lead so stragglers chase short distances:
			// a runaway pack turns entire lanes into stepwise replays.
			b.ctl.MaxSlots = packChunkSlots
		case b.ctx != nil:
			b.ctl.MaxSlots = cancelChunkInstrs
		default:
			b.ctl.MaxSlots = math.MaxInt64
		}
		slots := b.pack.RunLockstep(&b.ctl, lsLanes)
		if slots > 0 {
			// The pack moved past any parked lane; it chases next round.
			for _, ln := range b.lanes {
				if ln.mode == laneParked {
					ln.mode = laneSolo
				}
			}
		}

		if b.ctx != nil {
			if b.cancelCountdown -= slots + 1; b.cancelCountdown <= 0 {
				b.cancelCountdown = cancelPollInterval
				if b.ctx.Err() != nil {
					for _, ln := range active {
						b.syncLaneCore(ln)
						b.failLane(ln, ln.r.checkCancel())
					}
					continue
				}
			}
		}

		for _, ln := range active {
			laneExec := b.pack.Counts.Executed + ln.extra.Executed
			if !ln.ls.Stop && laneExec < b.max && !b.pack.Halted {
				continue // epoch still open; no boundary work
			}
			// The lane's epoch closed (budget, latency, deadline,
			// structural backup, halt, or instruction budget): settle
			// it, then run the scalar boundary protocol. The common
			// boundary — no power event due, next epoch opens at once —
			// skips the core-view sync round-trip, which is the identity
			// when nothing touches the lane's core.
			b.settleEpoch(ln)
			if b.fastReopen(ln) {
				continue
			}
			b.syncLaneCore(ln)
			ln.mode = laneIdle
			b.laneBoundary(ln)
			if ln.mode == laneLockstep {
				b.syncFromRunner(ln)
			}
		}
	}

	for _, ln := range b.lanes {
		errs[ln.idx] = ln.err
	}
	return results, errs, nil
}

// syncLaneCore materializes the lane's scalar view from the pack: the
// shared architectural state plus the lane's private count surplus and
// clock. Boundary events and divergent replay then run on the lane's
// own core exactly as the scalar engine would.
func (b *batch) syncLaneCore(ln *blane) {
	core := ln.r.core
	core.Regs = b.pack.Regs
	core.PC = b.pack.PC
	core.Halted = b.pack.Halted
	core.Counts = addCounts(b.pack.Counts, ln.extra)
	ln.r.now = ln.ls.Now
	ln.r.regionInstrs = b.ctl.PackRi + ln.ls.RiOff
}

// syncFromRunner refreshes the pack-side view after the lane's scalar
// state advanced privately (boundary events, divergent replay).
func (b *batch) syncFromRunner(ln *blane) {
	ln.extra = subCounts(ln.r.core.Counts, b.pack.Counts)
	ln.ls.Now = ln.r.now
	ln.ls.RiOff = ln.r.regionInstrs - b.ctl.PackRi
}

// openEpoch arms the lane's pack-side epoch state, mirroring runEpoch's
// prologue: ledger baseline, budget, Compute watermark, and the absolute
// segment deadline.
func (b *batch) openEpoch(ln *blane, budget float64) {
	r := ln.r
	ln.ls.LedStart = r.led.Total()
	ln.ls.Budget = budget
	ln.ls.CSafe = r.led.Compute
	ln.ls.SegDeadline = r.now + r.cursor.SegmentRemaining() - epochMaxInstrNs
	ln.epochStartNow = r.now
	ln.mode = laneLockstep
}

// settleEpoch closes the lane's open epoch with runEpoch's settlement
// order: draw the ledger delta, then integrate harvest over the epoch.
func (b *batch) settleEpoch(ln *blane) {
	r := ln.r
	elapsed := ln.ls.Now - ln.epochStartNow
	r.cap.Draw(r.led.Total() - ln.ls.LedStart)
	r.cap.Add(r.cursor.Harvest(elapsed))
	r.res.RunNs += elapsed
	r.now = ln.ls.Now
}

func (b *batch) finishLane(ln *blane) {
	ln.r.finish()
	ln.mode = laneDone
}

func (b *batch) failLane(ln *blane, err error) {
	ln.err = err
	ln.mode = laneFailed
}

// fastReopen attempts the common epoch boundary without materializing
// the lane's core view: when the pack is running, the lane is within its
// instruction budget, no power event is pending, and the next epoch's
// budget is positive, the boundary protocol would sync the core from the
// pack, touch nothing, and sync it straight back — so both syncs are
// skipped and the epoch opens in place. Any other condition (including
// an attached context, whose cancellation poll belongs to the full
// protocol) reports false and falls back to laneBoundary.
func (b *batch) fastReopen(ln *blane) bool {
	if b.pack.Halted || b.ctx != nil {
		return false
	}
	if b.pack.Counts.Executed+ln.extra.Executed >= b.max {
		return false
	}
	r := ln.r
	if r.boundaryEventCheck(b.jit) {
		return false
	}
	budget := r.epochBudget(b.jit)
	if budget <= 0 {
		return false
	}
	// laneBoundary's runEpoch prologue guard (a pending structural backup)
	// cannot apply here: boundaryEventCheck just reported none pending.
	b.openEpoch(ln, budget)
	return true
}

// laneBoundary runs the scalar engine's between-epochs protocol
// (runBatched's outer loop) on the lane until it opens an epoch, parks
// for a precise burst, finishes, or fails. The lane's
// core must be synced to the pack on entry; on every return into the
// pack it is converged again — power cycles that land elsewhere replay
// divergently to convergence before returning.
func (b *batch) laneBoundary(ln *blane) {
	r := ln.r
	for {
		if r.core.Halted {
			b.finishLane(ln)
			return
		}
		if r.core.Counts.Executed >= b.max {
			b.failLane(ln, r.budgetErr())
			return
		}
		if err := r.pollCancel(); err != nil {
			b.failLane(ln, err)
			return
		}
		handled, err := r.preInstrEvents()
		if err != nil {
			b.failLane(ln, err)
			return
		}
		if handled {
			// A power cycle moved the lane. JIT schemes restoring the
			// snapshot they just took land exactly on the pack state
			// and rejoin instantly; anything else replays privately.
			if !b.pack.Halted && r.core.PC == b.pack.PC && r.core.Regs == b.pack.Regs {
				continue
			}
			if err := b.runDivergent(ln); err != nil {
				b.failLane(ln, err)
				return
			}
			if ln.mode == laneLockstep {
				return // rejoined mid-epoch, live epoch transferred
			}
			continue // rejoined at a boundary (or halted; top handles it)
		}
		if budget := r.epochBudget(b.jit); budget > 0 {
			if err := r.checkCancel(); err != nil {
				b.failLane(ln, err)
				return
			}
			if b.jit && r.s.NeedsBackup() {
				// runEpoch's prologue guard: a pending structural backup
				// closes the epoch before anything retires — a no-op
				// settlement — and the next iteration's preInstrEvents
				// services it.
				continue
			}
			b.openEpoch(ln, budget)
			return
		}
		// Zero budget: the next instruction must settle the capacitor
		// and re-check power events. Park the lane on its live core;
		// the coordinator advances parked lanes in precise bursts.
		ln.mode = laneParked
		return
	}
}

// runBurst advances every parked lane — converged, zero-budget lanes
// whose next instruction must settle the capacitor — without any pack
// traffic. Each round re-seeds the pack from the lanes' shared
// round-start state, runs the scalar boundary protocol on every lane
// (which may open an epoch, power-cycle and chase back, halt, or fail),
// and then steps each still-parked lane one precise instruction on its
// own core. Survivors execute the same instruction, so they stay
// converged round over round; anything that leaves does so at or behind
// the round start the pack holds, preserving the never-ahead invariant.
// The burst ends when a lane opens an epoch (the pack must move) or no
// parked lane remains. Reports whether any lane was parked at entry.
func (b *batch) runBurst() bool {
	burst := b.burst[:0]
	for _, ln := range b.lanes {
		if ln.mode == laneParked {
			burst = append(burst, ln)
		}
	}
	if len(burst) == 0 {
		return false
	}
	for {
		k := 0
		for _, ln := range burst {
			if ln.mode == laneParked {
				burst[k] = ln
				k++
			}
		}
		burst = burst[:k]
		if k == 0 {
			return true
		}
		// Re-seed the pack to the round start every parked lane shares:
		// convergence checks and count baselines stay consistent for
		// lanes leaving the burst, at a fixed per-round cost.
		r0 := burst[0].r
		b.pack.Regs = r0.core.Regs
		b.pack.PC = r0.core.PC
		b.pack.Halted = r0.core.Halted
		b.pack.Counts = r0.core.Counts
		b.ctl.PackRi = r0.regionInstrs
		open := false
		for _, ln := range burst {
			ln.mode = laneIdle
			b.laneBoundary(ln)
			if ln.mode == laneLockstep {
				b.syncFromRunner(ln)
				open = true
			}
		}
		if open {
			return true
		}
		for _, ln := range burst {
			if ln.mode == laneParked {
				ln.r.stepPrecise()
			}
		}
	}
}

// runDivergent replays the lane privately — the scalar engine's exact
// loops on the lane's own core — until its architectural state reaches
// the pack again, it halts, or it errors. Replay is how the scalar
// engine recovers from an outage too, so a lane that never rejoins
// still produces bit-identical results, just without amortization.
func (b *batch) runDivergent(ln *blane) error {
	r := ln.r
	pack := b.pack
	for {
		if r.core.Halted {
			return nil
		}
		if !pack.Halted && r.core.PC == pack.PC && r.core.Regs == pack.Regs {
			return nil // converged at a boundary; caller resumes the protocol
		}
		if r.core.Counts.Executed >= b.max {
			return r.budgetErr()
		}
		if err := r.pollCancel(); err != nil {
			return err
		}
		handled, err := r.preInstrEvents()
		if err != nil {
			return err
		}
		if handled {
			continue
		}
		if budget := r.epochBudget(b.jit); budget > 0 {
			if err := r.checkCancel(); err != nil {
				return err
			}
			if b.runEpochStepwise(ln, budget) {
				ln.mode = laneLockstep
				return nil // converged mid-epoch; live epoch handed to the pack
			}
		} else {
			r.stepPrecise()
		}
	}
}

// runEpochStepwise is runEpoch's per-step loop (untraced) with one
// addition: after each instruction that leaves the epoch open, if the
// lane's architectural state has reached the pack, the epoch is handed
// over live — ledger baseline, budget, watermark, and deadline move into
// the lane's pack-side state unsettled, and the pack continues it with
// the identical per-instruction arithmetic. Reports whether it rejoined.
func (b *batch) runEpochStepwise(ln *blane, budget float64) bool {
	r := ln.r
	core, led, s := r.core, r.led, r.s
	ms, timing := r.ms, r.timing
	ledStart := led.Total()
	segRem := r.cursor.SegmentRemaining()
	max := b.max
	hist := r.res.RegionSizes
	pack := b.pack
	now, runNs, ri := r.now, r.res.RunNs, r.regionInstrs
	epochStart := now
	var epochNs int64
	jit := b.jit
	needBk := jit && s.NeedsBackup()
	cSafe := led.Compute
	for {
		if needBk {
			break
		}
		if core.Counts.Executed >= max {
			break
		}
		ns, cl := core.StepFast(now, ms, timing)
		led.Compute += r.instrEnergy(ns)
		now += ns
		runNs += ns
		epochNs += ns
		memTouch := !r.fetchFree || cl.TouchesMemSystem()
		if jit && memTouch {
			needBk = s.NeedsBackup()
		}
		if cl == isa.ClassRegionEnd || cl == isa.ClassFence {
			hist.Add(ri)
			ri = 0
		} else {
			ri++
		}
		if core.Halted || ns >= epochMaxInstrNs ||
			epochNs+epochMaxInstrNs >= segRem {
			break
		}
		if memTouch || led.Compute >= cSafe {
			t := led.Total()
			if t-ledStart >= budget {
				break
			}
			slack := budget - (t - ledStart)
			if slack > (t+1)*1e-9 {
				cSafe = led.Compute + 0.5*slack
			} else {
				cSafe = led.Compute
			}
		}
		// Rejoin only while the epoch provably continues: a pending
		// structural backup must close it here exactly as the scalar
		// loop's next iteration would.
		if !needBk && !pack.Halted && core.PC == pack.PC && core.Regs == pack.Regs {
			// The settlement adds the whole epoch's duration to RunNs at
			// once, so hand RunNs over without the partial epoch.
			r.now, r.res.RunNs, r.regionInstrs = now, runNs-epochNs, ri
			ln.ls.LedStart = ledStart
			ln.ls.Budget = budget
			ln.ls.CSafe = cSafe
			ln.ls.SegDeadline = epochStart + segRem - epochMaxInstrNs
			ln.epochStartNow = epochStart
			return true
		}
	}
	r.now, r.res.RunNs, r.regionInstrs = now, runNs, ri
	r.cap.Draw(led.Total() - ledStart)
	r.cap.Add(r.cursor.Harvest(epochNs))
	return false
}

func addCounts(a, e cpu.Counts) cpu.Counts {
	a.Executed += e.Executed
	a.Loads += e.Loads
	a.Stores += e.Stores
	a.CkptStores += e.CkptStores
	a.SavePCs += e.SavePCs
	a.RegionEnds += e.RegionEnds
	a.Clwbs += e.Clwbs
	a.Fences += e.Fences
	a.Calls += e.Calls
	a.Branches += e.Branches
	return a
}

func subCounts(a, e cpu.Counts) cpu.Counts {
	a.Executed -= e.Executed
	a.Loads -= e.Loads
	a.Stores -= e.Stores
	a.CkptStores -= e.CkptStores
	a.SavePCs -= e.SavePCs
	a.RegionEnds -= e.RegionEnds
	a.Clwbs -= e.Clwbs
	a.Fences -= e.Fences
	a.Calls -= e.Calls
	a.Branches -= e.Branches
	return a
}
