package sim_test

// The engine runs a fused interpreter loop (cpu.RunUntraced) when no
// tracer is attached, and the per-step loop when one is. Both must produce
// the same Result down to the last bit — the benchmarks and production
// runs use the fused loop, while the golden digests are captured through
// the traced loop. This test pins the equivalence across the full quick
// matrix in both supply regimes, which (together with TestFastPathGolden)
// extends the byte-identity proof to the untraced path.

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestUntracedMatchesTraced(t *testing.T) {
	profiles := map[string]*trace.Profile{
		"outage-free": nil,
		"RFHome":      func() *trace.Profile { p := trace.RFHome; return &p }(),
	}
	for _, w := range quickWorkloads(t) {
		for _, k := range arch.AllKinds() {
			for pname, profile := range profiles {
				w, k, profile := w, k, profile
				t.Run(w.Name+"/"+k.String()+"/"+pname, func(t *testing.T) {
					t.Parallel()
					traced, _ := runEngine(t, w, k, profile, false)

					p := config.Default()
					cres, err := core.Compile(func() *ir.Program { return w.Build(1) }, k, p)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					var src trace.Source
					if profile != nil {
						src = trace.New(*profile, 1)
					}
					untraced, err := sim.Run(cres.Linked, arch.New(k, p), sim.Options{Source: src})
					if err != nil {
						t.Fatalf("untraced run: %v", err)
					}

					a, b := canonicalResult(traced), canonicalResult(untraced)
					if !bytes.Equal(a, b) {
						t.Errorf("traced and untraced results diverge:\ntraced:\n%s\nuntraced:\n%s", a, b)
					}
				})
			}
		}
	}
}
