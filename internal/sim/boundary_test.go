package sim

// Boundary coverage for the batched-accounting engine: threshold
// crossings under a steadily draining supply (where every epoch ends in
// the per-instruction fallback window and the trigger must fire at the
// exact instruction), and the forward-progress guard on configurations
// whose energy window cannot cover any work.

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/trace"
)

// runBoth executes the same configuration under the batched and precise
// engines and fails the test on any observable divergence.
func runBoth(t *testing.T, name string, kind arch.Kind, p config.Params, src func() trace.Source) (*Result, *Result) {
	t.Helper()
	l := compiled(t, name, kind)
	fast, errF := Run(l, arch.New(kind, p), Options{Source: src()})
	ref, errP := Run(compiled(t, name, kind), arch.New(kind, p), Options{Source: src(), Precise: true})
	if (errF == nil) != (errP == nil) {
		t.Fatalf("engines disagree on error: batched=%v precise=%v", errF, errP)
	}
	if errF != nil {
		return fast, ref
	}
	if fast.Outages != ref.Outages || fast.TimeNs != ref.TimeNs ||
		fast.Counts.Executed != ref.Counts.Executed || fast.Ledger != ref.Ledger {
		t.Errorf("batched/precise diverge:\n batched outages=%d time=%d exec=%d\n precise outages=%d time=%d exec=%d",
			fast.Outages, fast.TimeNs, fast.Counts.Executed,
			ref.Outages, ref.TimeNs, ref.Counts.Executed)
	}
	return fast, ref
}

// TestVBackupCrossingExact drains a JIT scheme under a constant weak
// supply: the voltage ramps down through VBackup over and over, and the
// backup must trip at the identical instruction in both engines.
func TestVBackupCrossingExact(t *testing.T) {
	src := func() trace.Source { return &trace.Constant{P: 0.5e-3} }
	res, _ := runBoth(t, "adpcmenc", arch.NVSRAM, config.Default(), src)
	if res.Outages == 0 {
		t.Fatal("constant-drain run produced no outages — threshold crossing untested")
	}
	if res.Arch.BackupEvents != res.Outages {
		t.Errorf("backups=%d outages=%d", res.Arch.BackupEvents, res.Outages)
	}
}

// TestVminCrossingExact does the same for the hard Vmin brown-out on
// SweepCache, which runs with no backup threshold at all.
func TestVminCrossingExact(t *testing.T) {
	src := func() trace.Source { return &trace.Constant{P: 0.5e-3} }
	res, _ := runBoth(t, "adpcmenc", arch.SweepEmptyBit, config.Default(), src)
	if res.Outages == 0 {
		t.Fatal("constant-drain run produced no outages")
	}
	if res.Arch.BackupEvents != 0 {
		t.Error("SweepCache performed a JIT backup")
	}
}

// TestRFBurstCrossings covers the segment-spanning case: a bursty RF
// source forces epochs to close at segment boundaries, with crossings in
// both the burst (charging) and idle (draining) phases.
func TestRFBurstCrossings(t *testing.T) {
	src := func() trace.Source { return trace.New(trace.RFOffice, 7) }
	res, _ := runBoth(t, "sha", arch.NVP, config.Default(), src)
	if res.Outages == 0 {
		t.Fatal("RF run produced no outages")
	}
}

// TestZeroProgressGuard misconfigures SweepCache so its brown-out floor
// sits above the restore threshold: every restore browns out again before
// one instruction retires. Both engines must report the forward-progress
// error rather than power-cycling forever.
func TestZeroProgressGuard(t *testing.T) {
	p := config.Default()
	p.SweepVmin = 3.4 // above SweepCache's 3.3 restore threshold
	l := compiled(t, "sha", arch.SweepEmptyBit)
	for _, precise := range []bool{false, true} {
		_, err := Run(l, arch.New(arch.SweepEmptyBit, p), Options{
			Source:  &trace.Constant{P: 0.5e-3},
			Precise: precise,
		})
		if err == nil || !strings.Contains(err.Error(), "no forward progress") {
			t.Errorf("precise=%v: err = %v, want forward-progress guard", precise, err)
			continue
		}
		// The guard is a typed error: errors.Is matches the sentinel and
		// errors.As recovers the scheme/cycle context.
		if !errors.Is(err, ErrNoProgress) {
			t.Errorf("precise=%v: errors.Is(err, ErrNoProgress) = false for %v", precise, err)
		}
		var npe *NoProgressError
		if !errors.As(err, &npe) {
			t.Errorf("precise=%v: errors.As(*NoProgressError) = false for %v", precise, err)
		} else {
			if npe.Scheme == "" || npe.Outages == 0 {
				t.Errorf("precise=%v: NoProgressError missing context: %+v", precise, npe)
			}
		}
	}
}
