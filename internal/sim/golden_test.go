package sim_test

// Golden fast-path proof: the memory-hierarchy fast paths (SoA cache,
// indexed persist-buffer search, WBI-driven dirty sweeps, generation-tagged
// invalidation) are pure functional-lookup optimizations — the charged
// latency/energy model must stay bit-for-bit identical. This test pins a
// SHA-256 digest of the Result (every counter, every ledger joule in hex
// float form, the final NVM image) plus the full telemetry stream for all
// 8 schemes x 8 quick workloads x {outage-free, RF-Home}, captured before
// the fast paths landed. Any drift — one stall nanosecond, one reordered
// flush entry, one differently-rounded joule — changes a digest.
//
// Regenerate (only for deliberate model changes) with:
//
//	UPDATE_GOLDEN=1 go test ./internal/sim -run TestFastPathGolden

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

const goldenPath = "testdata/fastpath_golden.json"

// hexFloat renders f exactly (hexadecimal mantissa), so digests are
// sensitive to last-bit energy drift.
func hexFloat(f float64) string { return strconv.FormatFloat(f, 'x', -1, 64) }

func writeHist(b *bytes.Buffer, name string, h *stats.Hist) {
	if h == nil {
		fmt.Fprintf(b, "%s=nil\n", name)
		return
	}
	fmt.Fprintf(b, "%s n=%d sum=%s overflow=%d buckets=%v\n",
		name, h.N, hexFloat(h.Sum), h.Overflow, h.Buckets)
}

// canonicalResult renders every observable field of a Result in a fixed
// order. Pointer-typed fields (hists, NVM) are rendered by content.
func canonicalResult(r *sim.Result) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "scheme=%s halted=%v\n", r.Scheme, r.Halted)
	fmt.Fprintf(&b, "time=%d run=%d charge=%d restore=%d outages=%d\n",
		r.TimeNs, r.RunNs, r.ChargeNs, r.RestoreNs, r.Outages)
	fmt.Fprintf(&b, "counts=%+v\n", r.Counts)
	fmt.Fprintf(&b, "ledger compute=%s nvm=%s persist=%s backup=%s restore=%s sleep=%s\n",
		hexFloat(r.Ledger.Compute), hexFloat(r.Ledger.NVM), hexFloat(r.Ledger.Persist),
		hexFloat(r.Ledger.Backup), hexFloat(r.Ledger.Restore), hexFloat(r.Ledger.Sleep))
	a := r.Arch
	fmt.Fprintf(&b, "arch tp=%d twait=%d regions=%d searches=%d bypasses=%d hits=%d\n",
		a.TpNs, a.TwaitNs, a.RegionsExecuted, a.BufferSearches, a.BufferBypasses, a.BufferHits)
	fmt.Fprintf(&b, "arch waw=%d fence=%d clwb=%d backups=%d restores=%d lines=%d replayed=%d redone=%d\n",
		a.WAWStallNs, a.FenceStallNs, a.ClwbStallNs, a.BackupEvents, a.RestoreEvents,
		a.LinesBackedUp, a.ReplayedStores, a.RedoneDrains)
	writeHist(&b, "storesPerRegion", a.StoresPerRegion)
	fmt.Fprintf(&b, "cache hits=%d misses=%d dirtyEvictions=%d\n",
		r.CacheHits, r.CacheMisses, r.DirtyEvictions)
	fmt.Fprintf(&b, "nvm reads=%d writes=%d lineReads=%d lineWrites=%d\n",
		r.NVMReads, r.NVMWrites, r.NVMLineReads, r.NVMLineWrites)
	writeHist(&b, "regionSizes", r.RegionSizes)
	if r.NVM != nil {
		fmt.Fprintf(&b, "nvmImage=%x\n", r.NVM.ContentHash())
	}
	return b.Bytes()
}

func goldenDigest(res *sim.Result, traceBytes []byte) string {
	h := sha256.New()
	h.Write(canonicalResult(res))
	h.Write([]byte{0})
	h.Write(traceBytes)
	return hex.EncodeToString(h.Sum(nil))
}

// TestFastPathGolden runs the default (batched) engine over the full quick
// matrix and compares each run's digest against the pre-fast-path capture.
func TestFastPathGolden(t *testing.T) {
	update := os.Getenv("UPDATE_GOLDEN") != ""

	want := map[string]string{}
	if !update {
		raw, err := os.ReadFile(goldenPath)
		if err != nil {
			t.Fatalf("golden file missing (run with UPDATE_GOLDEN=1 to create): %v", err)
		}
		if err := json.Unmarshal(raw, &want); err != nil {
			t.Fatalf("golden file corrupt: %v", err)
		}
	}

	var mu sync.Mutex
	got := map[string]string{}

	profiles := map[string]*trace.Profile{
		"outage-free": nil,
		"RFHome":      func() *trace.Profile { p := trace.RFHome; return &p }(),
	}
	for _, w := range quickWorkloads(t) {
		for _, k := range arch.AllKinds() {
			for pname, profile := range profiles {
				w, k, profile, pname := w, k, profile, pname
				key := w.Name + "/" + k.String() + "/" + pname
				t.Run(key, func(t *testing.T) {
					t.Parallel()
					res, traceBytes := runEngine(t, w, k, profile, false)
					d := goldenDigest(res, traceBytes)
					mu.Lock()
					got[key] = d
					mu.Unlock()
					if !update {
						if wd, ok := want[key]; !ok {
							t.Errorf("no golden digest for %s", key)
						} else if wd != d {
							t.Errorf("digest drift for %s:\n  golden %s\n  got    %s", key, wd, d)
						}
					}
				})
			}
		}
	}

	if update {
		t.Cleanup(func() {
			keys := make([]string, 0, len(got))
			for k := range got {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			ordered := make(map[string]string, len(got))
			for _, k := range keys {
				ordered[k] = got[k]
			}
			raw, err := json.MarshalIndent(ordered, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath, append(raw, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("wrote %d golden digests to %s", len(got), goldenPath)
		})
	}
}
