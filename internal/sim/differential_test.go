package sim_test

// Differential proof for the batched-accounting engine: on every quick-set
// workload, on every scheme, under an ideal supply and under the RF-Home
// harvested trace, the default engine must produce a Result and a JSONL
// telemetry stream byte-identical to the per-instruction reference engine
// (Options.Precise). Any divergence — one outage fired an instruction
// early, one joule attributed differently — fails loudly with the first
// differing field or trace line.

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// diffQuickSet mirrors exp's quick subset: two workloads per flavour.
var diffQuickSet = map[string]bool{
	"adpcmenc": true, "gsmdec": true, "sha": true, "susane": true,
	"dijkstra": true, "fft": true, "blowfishenc": true, "rijndaelenc": true,
}

func quickWorkloads(t testing.TB) []workloads.Workload {
	t.Helper()
	var out []workloads.Workload
	for _, w := range workloads.All() {
		if diffQuickSet[w.Name] {
			out = append(out, w)
		}
	}
	if len(out) != len(diffQuickSet) {
		t.Fatalf("quick set resolved %d of %d workloads", len(out), len(diffQuickSet))
	}
	return out
}

// runEngine compiles w for k and runs it once, returning the result and
// the raw telemetry stream.
func runEngine(t testing.TB, w workloads.Workload, k arch.Kind, profile *trace.Profile, precise bool) (*sim.Result, []byte) {
	t.Helper()
	p := config.Default()
	cres, err := core.Compile(func() *ir.Program { return w.Build(1) }, k, p)
	if err != nil {
		t.Fatalf("compile %s for %v: %v", w.Name, k, err)
	}
	var src trace.Source
	if profile != nil {
		src = trace.New(*profile, 1)
	}
	var buf bytes.Buffer
	tr := telemetry.NewTracer(telemetry.NewJSONLSink(&buf), 0)
	res, err := sim.Run(cres.Linked, arch.New(k, p), sim.Options{Source: src, Tracer: tr, Precise: precise})
	if err != nil {
		t.Fatalf("run %s on %v (precise=%v): %v", w.Name, k, precise, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("close tracer: %v", err)
	}
	return res, buf.Bytes()
}

// firstTraceDiff returns the first line index at which the two JSONL
// streams differ, or -1.
func firstTraceDiff(a, b []byte) int {
	la, lb := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	n := len(la)
	if len(lb) > n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		var xa, xb []byte
		if i < len(la) {
			xa = la[i]
		}
		if i < len(lb) {
			xb = lb[i]
		}
		if !bytes.Equal(xa, xb) {
			return i
		}
	}
	return -1
}

func TestBatchedMatchesPrecise(t *testing.T) {
	profiles := map[string]*trace.Profile{
		"outage-free": nil,
		"RFHome":      func() *trace.Profile { p := trace.RFHome; return &p }(),
	}
	for _, w := range quickWorkloads(t) {
		for _, k := range arch.AllKinds() {
			for pname, profile := range profiles {
				w, k, profile := w, k, profile
				t.Run(w.Name+"/"+k.String()+"/"+pname, func(t *testing.T) {
					t.Parallel()
					ref, refTrace := runEngine(t, w, k, profile, true)
					got, gotTrace := runEngine(t, w, k, profile, false)

					if !ref.NVM.Equal(got.NVM) {
						t.Errorf("NVM images differ, first byte at %#x", ref.NVM.FirstDiff(got.NVM))
					}
					// NVM compared above; DeepEqual would descend into its
					// unexported one-entry page cache, which legitimately
					// differs by access pattern.
					ref.NVM, got.NVM = nil, nil
					if !reflect.DeepEqual(ref, got) {
						t.Errorf("results differ:\nprecise: %+v\nbatched: %+v", ref, got)
					}
					if i := firstTraceDiff(refTrace, gotTrace); i >= 0 {
						t.Errorf("telemetry diverges at line %d:\nprecise: %s\nbatched: %s",
							i, traceLine(refTrace, i), traceLine(gotTrace, i))
					}
				})
			}
		}
	}
}

func traceLine(b []byte, i int) []byte {
	lines := bytes.Split(b, []byte("\n"))
	if i < len(lines) {
		return lines[i]
	}
	return []byte("<stream ended>")
}
