package sim_test

// Differential proof for the lockstep batch engine: every lane of a
// RunBatch must be byte-identical to a scalar Run with the same seed —
// same Result, same NVM image — across the full scheme matrix under the
// RF-Home harvested trace. The batch engine shares decode/dispatch and
// register semantics across lanes, so any divergence (an epoch folded
// one instruction late, a replay rejoined one slot early) surfaces here
// as a field diff against the scalar reference.

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func compileFor(t testing.TB, w workloads.Workload, k arch.Kind, p config.Params) *ir.Linked {
	t.Helper()
	cres, err := core.Compile(func() *ir.Program { return w.Build(1) }, k, p)
	if err != nil {
		t.Fatalf("compile %s for %v: %v", w.Name, k, err)
	}
	return cres.Linked
}

// runScalarSeed runs the scalar engine on one RF-Home seed.
func runScalarSeed(t testing.TB, l *ir.Linked, k arch.Kind, p config.Params, seed int64) *sim.Result {
	t.Helper()
	res, err := sim.Run(l, arch.New(k, p), sim.Options{Source: trace.New(trace.RFHome, seed)})
	if err != nil {
		t.Fatalf("scalar run on %v seed %d: %v", k, seed, err)
	}
	return res
}

// diffLane fails the test if a batch lane's result differs from the
// scalar reference in any field, using the repo's established NVM-then-
// DeepEqual comparison.
func diffLane(t *testing.T, label string, ref, got *sim.Result) {
	t.Helper()
	if !ref.NVM.Equal(got.NVM) {
		t.Errorf("%s: NVM images differ, first byte at %#x", label, ref.NVM.FirstDiff(got.NVM))
	}
	refCopy, gotCopy := *ref, *got
	refCopy.NVM, gotCopy.NVM = nil, nil
	if !reflect.DeepEqual(&refCopy, &gotCopy) {
		t.Errorf("%s: results differ:\nscalar: %+v\nbatch:  %+v", label, &refCopy, &gotCopy)
	}
}

// batchCell runs RunBatch over seeds 1..width on one (workload, kind)
// cell and compares every lane to its scalar reference.
func batchCell(t *testing.T, w workloads.Workload, k arch.Kind, width int) {
	t.Helper()
	p := config.Default()
	l := compileFor(t, w, k, p)
	schemes := make([]arch.Scheme, width)
	opt := sim.BatchOptions{Sources: make([]trace.Source, width)}
	for i := range schemes {
		schemes[i] = arch.New(k, p)
		opt.Sources[i] = trace.New(trace.RFHome, int64(i+1))
	}
	results, errs, err := sim.RunBatch(l, schemes, opt)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("lane %d failed: %v", i, errs[i])
		}
		ref := runScalarSeed(t, l, k, p, int64(i+1))
		diffLane(t, w.Name+"/"+k.String()+"/lane"+string(rune('0'+i)), ref, results[i])
	}
}

func TestRunBatchMatchesScalar(t *testing.T) {
	ws := quickWorkloads(t)
	if testing.Short() {
		// The -race CI job runs a two-workload subset; the full 8×8
		// matrix runs in the regular test job.
		short := map[string]bool{"sha": true, "fft": true}
		var sub []workloads.Workload
		for _, w := range ws {
			if short[w.Name] {
				sub = append(sub, w)
			}
		}
		ws = sub
	}
	for _, w := range ws {
		for _, k := range arch.AllKinds() {
			w, k := w, k
			t.Run(w.Name+"/"+k.String(), func(t *testing.T) {
				t.Parallel()
				batchCell(t, w, k, 8)
			})
		}
	}
}

// TestRunBatchWidths covers the scalar fallback (width 1) and odd
// widths whose lane sets exercise partial divergence.
func TestRunBatchWidths(t *testing.T) {
	for _, width := range []int{1, 2, 3} {
		width := width
		t.Run(string(rune('0'+width)), func(t *testing.T) {
			t.Parallel()
			batchCell(t, quickWorkload(t, "sha"), arch.SweepEmptyBit, width)
		})
	}
}

func quickWorkload(t testing.TB, name string) workloads.Workload {
	t.Helper()
	for _, w := range workloads.All() {
		if w.Name == name {
			return w
		}
	}
	t.Fatalf("workload %s not found", name)
	return workloads.Workload{}
}

// TestRunBatchLaneErrorIsolation gives one lane a supply too weak to
// ever recharge: that lane must fail with ErrStagnation while its
// neighbours complete bit-identical to their scalar references.
func TestRunBatchLaneErrorIsolation(t *testing.T) {
	t.Parallel()
	k := arch.SweepEmptyBit
	p := config.Default()
	w := quickWorkload(t, "sha")
	l := compileFor(t, w, k, p)
	schemes := []arch.Scheme{arch.New(k, p), arch.New(k, p), arch.New(k, p)}
	opt := sim.BatchOptions{Sources: []trace.Source{
		trace.New(trace.RFHome, 1),
		&trace.Constant{P: 1e-6, Label: "weak"},
		trace.New(trace.RFHome, 2),
	}}
	results, errs, err := sim.RunBatch(l, schemes, opt)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if !errors.Is(errs[1], sim.ErrStagnation) {
		t.Errorf("weak lane: want ErrStagnation, got %v", errs[1])
	}
	for _, i := range []int{0, 2} {
		if errs[i] != nil {
			t.Fatalf("healthy lane %d failed: %v", i, errs[i])
		}
		seed := int64(1)
		if i == 2 {
			seed = 2
		}
		ref := runScalarSeed(t, l, k, p, seed)
		diffLane(t, "healthy lane", ref, results[i])
	}
}

// TestRunBatchPreCanceled: a batch handed an already-canceled context
// does no work and fails every lane with a CanceledError, mirroring
// Run's pre-canceled contract.
func TestRunBatchPreCanceled(t *testing.T) {
	t.Parallel()
	k := arch.SweepEmptyBit
	p := config.Default()
	l := compileFor(t, quickWorkload(t, "sha"), k, p)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	schemes := []arch.Scheme{arch.New(k, p), arch.New(k, p)}
	opt := sim.BatchOptions{
		Ctx:     ctx,
		Sources: []trace.Source{trace.New(trace.RFHome, 1), trace.New(trace.RFHome, 2)},
	}
	results, errs, err := sim.RunBatch(l, schemes, opt)
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	for i := range errs {
		var ce *sim.CanceledError
		if !errors.As(errs[i], &ce) || !errors.Is(errs[i], context.Canceled) {
			t.Errorf("lane %d: want CanceledError wrapping context.Canceled, got %v", i, errs[i])
		}
		if results[i] == nil {
			t.Errorf("lane %d: want a (partial) result even when canceled", i)
		}
	}
}

// TestRunBatchValidation covers the batch-level configuration errors.
func TestRunBatchValidation(t *testing.T) {
	t.Parallel()
	p := config.Default()
	l := compileFor(t, quickWorkload(t, "sha"), arch.SweepEmptyBit, p)
	src := func() trace.Source { return trace.New(trace.RFHome, 1) }

	if _, _, err := sim.RunBatch(l, nil, sim.BatchOptions{}); err == nil {
		t.Error("empty batch: want error")
	}
	one := arch.New(arch.SweepEmptyBit, p)
	if _, _, err := sim.RunBatch(l, []arch.Scheme{one}, sim.BatchOptions{}); err == nil {
		t.Error("scheme/source count mismatch: want error")
	}
	if _, _, err := sim.RunBatch(l, []arch.Scheme{one, one},
		sim.BatchOptions{Sources: []trace.Source{src(), src()}}); err == nil {
		t.Error("duplicate scheme instance: want error")
	}
	if _, _, err := sim.RunBatch(l, []arch.Scheme{arch.New(arch.SweepEmptyBit, p), arch.New(arch.NVP, p)},
		sim.BatchOptions{Sources: []trace.Source{src(), src()}}); err == nil {
		t.Error("mixed scheme kinds: want error")
	}
	if _, _, err := sim.RunBatch(l, []arch.Scheme{arch.New(arch.SweepEmptyBit, p), arch.New(arch.SweepEmptyBit, p)},
		sim.BatchOptions{Sources: []trace.Source{src(), nil}}); err == nil {
		t.Error("nil source: want error")
	}
}
