package sim

// Cancellation coverage: a context attached via Options.Ctx must stop
// every engine — batched, precise, and the outage-free fused loop — at an
// epoch boundary, returning a typed *CanceledError that wraps ctx.Err(),
// without perturbing uncancelled runs (the golden digests pin that).

import (
	"context"
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/trace"
)

// errAfter is a context that reports cancellation once its Err method has
// been polled n times: a deterministic way to cancel mid-run at an exact
// poll boundary, with no goroutines and no wall-clock in the test.
type errAfter struct {
	context.Context
	remaining int
}

func (c *errAfter) Err() error {
	if c.remaining > 0 {
		c.remaining--
		return nil
	}
	return context.Canceled
}

func TestCancelPreemptsRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cases := []struct {
		name string
		opt  func() Options
	}{
		{"batched", func() Options { return Options{Source: trace.New(trace.RFHome, 1), Ctx: ctx} }},
		{"precise", func() Options { return Options{Source: trace.New(trace.RFHome, 1), Precise: true, Ctx: ctx} }},
		{"outage-free", func() Options { return Options{Ctx: ctx} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := compiled(t, "sha", arch.SweepEmptyBit)
			_, err := Run(l, arch.New(arch.SweepEmptyBit, config.Default()), tc.opt())
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled in the chain", err)
			}
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CanceledError", err)
			}
			if ce.Scheme == "" {
				t.Errorf("CanceledError missing scheme: %+v", ce)
			}
		})
	}
}

func TestCancelMidRun(t *testing.T) {
	for _, precise := range []bool{false, true} {
		name := "batched"
		if precise {
			name = "precise"
		}
		t.Run(name, func(t *testing.T) {
			l := compiled(t, "sha", arch.SweepEmptyBit)
			// Survive a few polls, then cancel: the run must be genuinely
			// under way (instructions retired) when the abort lands.
			ctx := &errAfter{Context: context.Background(), remaining: 3}
			_, err := Run(l, arch.New(arch.SweepEmptyBit, config.Default()), Options{
				Source:  trace.New(trace.RFHome, 1),
				Precise: precise,
				Ctx:     ctx,
			})
			var ce *CanceledError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *CanceledError", err)
			}
			if ce.Executed == 0 {
				t.Error("cancelled before any instruction retired — poll cadence broken")
			}
		})
	}
}

// TestNilCtxRunsUnchanged pins that leaving Options.Ctx nil keeps the
// fast paths entirely poll-free and the run completes normally.
func TestNilCtxRunsUnchanged(t *testing.T) {
	l := compiled(t, "sha", arch.SweepEmptyBit)
	res, err := Run(l, arch.New(arch.SweepEmptyBit, config.Default()), Options{})
	if err != nil || !res.Halted {
		t.Fatalf("err=%v halted=%v", err, res != nil && res.Halted)
	}
}
