package sim

import (
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func compiled(t *testing.T, name string, kind arch.Kind) *ir.Linked {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compiler.Compile(w.Build(1), compiler.Options{
		Mode: compiler.Mode(kind.CompilerMode()),
	})
	if err != nil {
		t.Fatal(err)
	}
	return res.Linked
}

func TestOutageFreeRunCompletes(t *testing.T) {
	l := compiled(t, "sha", arch.SweepEmptyBit)
	s := arch.New(arch.SweepEmptyBit, config.Default())
	res, err := Run(l, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Outages != 0 || res.ChargeNs != 0 {
		t.Errorf("halted=%v outages=%d charge=%d", res.Halted, res.Outages, res.ChargeNs)
	}
	if res.TimeNs != res.RunNs {
		t.Error("outage-free wall-clock must equal run time")
	}
	if res.Counts.Executed == 0 || res.Ledger.Total() <= 0 {
		t.Error("empty counters")
	}
	if res.Arch.RegionsExecuted == 0 || res.RegionSizes.N == 0 {
		t.Error("region stats missing")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() *Result {
		l := compiled(t, "adpcmenc", arch.SweepEmptyBit)
		s := arch.New(arch.SweepEmptyBit, config.Default())
		res, err := Run(l, s, Options{Source: trace.New(trace.RFOffice, 9)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TimeNs != b.TimeNs || a.Outages != b.Outages || a.Counts.Executed != b.Counts.Executed {
		t.Errorf("nondeterminism: %d/%d vs %d/%d", a.TimeNs, a.Outages, b.TimeNs, b.Outages)
	}
}

func TestInstructionBudget(t *testing.T) {
	l := compiled(t, "sha", arch.NVP)
	s := arch.New(arch.NVP, config.Default())
	_, err := Run(l, s, Options{MaxInstructions: 100})
	if err == nil {
		t.Fatal("budget not enforced")
	}
}

func TestStagnationDetected(t *testing.T) {
	l := compiled(t, "sha", arch.NVP)
	s := arch.New(arch.NVP, config.Default())
	// A source too weak to ever recharge.
	_, err := Run(l, s, Options{
		Source:       &trace.Constant{P: 1e-9, Label: "dead"},
		StagnationNs: 1e9,
	})
	if !errors.Is(err, ErrStagnation) {
		t.Fatalf("err = %v", err)
	}
}

func TestJITSchemeBacksUpOnOutage(t *testing.T) {
	l := compiled(t, "adpcmenc", arch.NVSRAM)
	s := arch.New(arch.NVSRAM, config.Default())
	res, err := Run(l, s, Options{Source: trace.New(trace.RFOffice, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Fatal("no outages")
	}
	if res.Arch.BackupEvents != res.Outages || res.Arch.RestoreEvents != res.Outages {
		t.Errorf("backup=%d restore=%d outages=%d",
			res.Arch.BackupEvents, res.Arch.RestoreEvents, res.Outages)
	}
	if res.ChargeNs == 0 || res.TimeNs <= res.RunNs {
		t.Error("charging time unaccounted")
	}
}

func TestSweepNeverBacksUp(t *testing.T) {
	l := compiled(t, "adpcmenc", arch.SweepEmptyBit)
	s := arch.New(arch.SweepEmptyBit, config.Default())
	res, err := Run(l, s, Options{Source: trace.New(trace.RFOffice, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Fatal("no outages")
	}
	if res.Arch.BackupEvents != 0 {
		t.Error("SweepCache performed a JIT backup")
	}
	if res.Ledger.Backup != 0 {
		t.Error("SweepCache consumed backup energy")
	}
}

func TestNvMRTakesStructuralBackups(t *testing.T) {
	p := config.Default()
	p.NvMRRenameCap = 2 // force frequent rename-table pressure
	p.CacheSize = 512   // heavy eviction -> speculative writebacks rename
	l := compiled(t, "dijkstra", arch.NvMR)
	s := arch.New(arch.NvMR, p)
	res, err := Run(l, s, Options{Source: trace.New(trace.RFOffice, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arch.BackupEvents <= res.Outages {
		t.Errorf("backups (%d) should exceed outages (%d) with a tiny rename table",
			res.Arch.BackupEvents, res.Outages)
	}
}

// TestEnergyConservation: every joule drawn from the capacitor appears in
// the ledger; total ledger energy is positive and dominated by categories
// the scheme actually exercises.
func TestEnergyLedgerSanity(t *testing.T) {
	l := compiled(t, "sha", arch.SweepEmptyBit)
	s := arch.New(arch.SweepEmptyBit, config.Default())
	res, err := Run(l, s, Options{Source: trace.New(trace.RFOffice, 5)})
	if err != nil {
		t.Fatal(err)
	}
	led := res.Ledger
	if led.Compute <= 0 || led.Persist <= 0 || led.Sleep <= 0 {
		t.Errorf("ledger: %+v", led)
	}
	if led.Backup != 0 {
		t.Error("sweep backup energy")
	}
}

func TestParallelismEfficiencyBounds(t *testing.T) {
	l := compiled(t, "gsmenc", arch.SweepEmptyBit)
	s := arch.New(arch.SweepEmptyBit, config.Default())
	res, err := Run(l, s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	eff := res.ParallelismEfficiency()
	if eff < 0 || eff > 1 {
		t.Errorf("efficiency = %f", eff)
	}
	if res.Arch.TpNs == 0 {
		t.Error("no persistence latency recorded")
	}
}

func TestInitNVMLoadsImage(t *testing.T) {
	l := compiled(t, "sha", arch.NVP)
	s := arch.New(arch.NVP, config.Default())
	InitNVM(s, l)
	if s.NVM().PeekWord(ir.PCSlotAddr) != int64(l.EntryPC) {
		t.Error("PC slot not initialized")
	}
	found := false
	for _, di := range l.Prog.Inits {
		if !di.Byte && s.NVM().PeekWord(di.Addr) == di.Val && di.Val != 0 {
			found = true
			break
		}
	}
	if !found {
		t.Error("data image not loaded")
	}
}
