// Package sim is the simulation engine: it couples the in-order core and a
// scheme's memory hierarchy to the capacitor and power trace, injects power
// failures at the exact instants the energy model dictates, drives each
// scheme's backup/recovery protocol, and collects the statistics every
// experiment consumes.
//
// The engine checks the voltage before every instruction. JIT-checkpoint
// schemes trip a backup when V falls to VBackup (after the monitor's
// propagation delay) and then sleep until VRestore; SweepCache executes
// down to Vmin and loses all volatile state. Recharge periods fast-forward
// through the power trace. Energy accounting is ledger-delta based: scheme
// operations attribute energy to the shared ledger, and the engine draws
// exactly the per-step ledger delta from the capacitor, so no joule is
// counted twice.
package sim

import (
	"errors"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures one run.
type Options struct {
	// Source is the power trace; nil runs outage-free with an ideal
	// supply (the Figure 5 configuration).
	Source trace.Source
	// MaxInstructions aborts runaway executions. 0 means 2e9.
	MaxInstructions uint64
	// StagnationNs bounds one recharge wait. 0 means 60 s.
	StagnationNs int64
	// RegionHistMax bounds the region-size histogram. 0 means 256.
	RegionHistMax int
}

// Result is everything measured during a run.
type Result struct {
	Scheme string
	Halted bool

	TimeNs    int64 // wall-clock: execution + backup/restore + recharge
	RunNs     int64 // execution time only
	ChargeNs  int64 // powered-off recharge time
	RestoreNs int64 // time spent inside scheme restore work (excl. recharge)
	Outages   uint64

	Counts cpu.Counts
	Ledger energy.Ledger
	Arch   arch.Stats

	CacheHits      uint64
	CacheMisses    uint64
	DirtyEvictions uint64

	NVMReads      uint64
	NVMWrites     uint64
	NVMLineReads  uint64
	NVMLineWrites uint64

	// RegionSizes samples dynamic instructions per region (Figure 12a);
	// populated for sweep- and replay-compiled binaries.
	RegionSizes *stats.Hist

	// NVM is the final memory image, for differential consistency checks.
	NVM *mem.NVM
}

// MissRate returns the L1D miss rate of the run.
func (r *Result) MissRate() float64 {
	tot := r.CacheHits + r.CacheMisses
	if tot == 0 {
		return 0
	}
	return float64(r.CacheMisses) / float64(tot)
}

// ParallelismEfficiency returns Section 6.3's (Tp-Twait)/Tp.
func (r *Result) ParallelismEfficiency() float64 {
	if r.Arch.TpNs == 0 {
		return 1
	}
	return float64(r.Arch.TpNs-r.Arch.TwaitNs) / float64(r.Arch.TpNs)
}

// debugOutages, enabled by setting the SIM_DEBUG environment variable,
// prints one line per power cycle (failure point, restored PC, voltage) —
// the quickest way to see a recovery protocol misbehaving.
var debugOutages = os.Getenv("SIM_DEBUG") != ""

// ErrStagnation reports a power source too weak to ever recharge the
// capacitor to the restore threshold.
var ErrStagnation = errors.New("sim: stagnation — power source cannot recharge the capacitor")

// InitNVM loads the program's data image and recovery PC slot into the
// scheme's NVM.
func InitNVM(s arch.Scheme, l *ir.Linked) {
	nvm := s.NVM()
	for _, di := range l.Prog.Inits {
		if di.Byte {
			nvm.PokeByte(di.Addr, byte(di.Val))
		} else {
			nvm.PokeWord(di.Addr, di.Val)
		}
	}
	nvm.PokeWord(ir.PCSlotAddr, int64(l.EntryPC))
}

// Run executes the linked program on the scheme until it halts.
func Run(l *ir.Linked, s arch.Scheme, opt Options) (*Result, error) {
	p := s.Params()
	if opt.MaxInstructions == 0 {
		opt.MaxInstructions = 2_000_000_000
	}
	if opt.StagnationNs == 0 {
		opt.StagnationNs = 60_000_000_000
	}
	if opt.RegionHistMax == 0 {
		opt.RegionHistMax = 256
	}

	InitNVM(s, l)
	core := cpu.New(l.Code, int64(l.EntryPC))
	s.Boot(int64(l.EntryPC))
	led := s.Ledger()
	timing := cpu.StepTiming{CycleNs: p.CycleNs, MulCycles: p.MulCycles, DivCycles: p.DivCycles}

	res := &Result{Scheme: s.Name(), RegionSizes: stats.NewHist(opt.RegionHistMax)}

	cap := energy.NewCapacitor(p.CapacitorF, p.Vmax, p.Vmax)
	var cursor *trace.Cursor
	if opt.Source != nil {
		cursor = trace.NewCursor(opt.Source)
	}

	now := int64(0)
	armed := true
	regionInstrs := 0
	// Forward-progress guard: a configuration whose per-cycle energy
	// window cannot cover even one instruction (plus its own restore
	// draw) would power-cycle forever.
	lastOutageExec := uint64(0)
	zeroProgress := 0

	// drawRun charges the capacitor with harvest and drains run power
	// over an interval where the core is on but not retiring
	// instructions (backup, restore, detection delays).
	drawRun := func(dt int64) {
		if dt <= 0 {
			return
		}
		sec := float64(dt) * 1e-9
		led.Compute += p.PRun * sec
		if cursor != nil {
			cap.Add(cursor.Harvest(dt))
		}
		cap.Draw(p.PRun * sec)
		now += dt
		res.RunNs += dt
	}

	// powerCycle sleeps through a recharge and restores the scheme.
	powerCycle := func() error {
		if core.Counts.Executed == lastOutageExec {
			zeroProgress++
			if zeroProgress > 256 {
				return fmt.Errorf("sim: no forward progress on %s — energy window too small for its backup/restore costs", s.Name())
			}
		} else {
			zeroProgress = 0
		}
		lastOutageExec = core.Counts.Executed
		if debugOutages {
			fmt.Printf("OUTAGE %d at now=%d pc=%d executed=%d V=%.3f r0=%d\n", res.Outages, now, core.PC, core.Counts.Executed, cap.V(), core.Regs[0])
		}
		res.Outages++
		s.PowerFail(now)
		elapsed, ok := cursor.ChargeUntil(cap, p.VRestore, p.PSleep, opt.StagnationNs, led)
		now += elapsed
		res.ChargeNs += elapsed
		if !ok {
			return fmt.Errorf("%w (scheme %s, %.1f ms waited)", ErrStagnation, s.Name(), float64(elapsed)/1e6)
		}
		// Restore propagation delay (T_plh) at sleep draw.
		sec := float64(p.RestoreDelayNs) * 1e-9
		led.Sleep += p.PSleep * sec
		cap.Draw(p.PSleep * sec)
		cap.Add(cursor.Harvest(p.RestoreDelayNs))
		now += p.RestoreDelayNs
		res.ChargeNs += p.RestoreDelayNs

		before := led.Total()
		pc, rcost := s.Restore(now, &core.Regs)
		if debugOutages {
			fmt.Printf("  RESTORE -> pc=%d V=%.3f r0=%d r13=%d\n", pc, cap.V(), core.Regs[0], core.Regs[13])
		}
		core.PC = pc
		cap.Draw(led.Total() - before)
		drawRun(rcost.Ns)
		res.RestoreNs += rcost.Ns
		// The restoration itself was fed while still tethered to the
		// charging path: top the capacitor back up to the restore
		// threshold before execution resumes, so arbitrarily expensive
		// restores lengthen the charge instead of eating the run window.
		if cap.V() < p.VRestore {
			elapsed, ok := cursor.ChargeUntil(cap, p.VRestore, p.PSleep, opt.StagnationNs, led)
			now += elapsed
			res.ChargeNs += elapsed
			if !ok {
				return fmt.Errorf("%w (scheme %s, restore top-up)", ErrStagnation, s.Name())
			}
		}
		regionInstrs = 0
		armed = true
		return nil
	}

	for !core.Halted {
		if core.Counts.Executed >= opt.MaxInstructions {
			return res, fmt.Errorf("sim: instruction budget (%d) exceeded on %s", opt.MaxInstructions, s.Name())
		}
		if cursor != nil {
			// Structural backup request (NvMR rename-table full).
			if s.JIT() && s.NeedsBackup() {
				before := led.Total()
				bcost := s.Backup(now, &core.Regs, core.PC)
				cap.Draw(led.Total() - before)
				drawRun(bcost.Ns)
			}
			// Voltage-triggered JIT backup.
			if s.JIT() && armed && cap.V() <= p.VBackup {
				drawRun(p.BackupDelayNs) // T_phl detection delay
				before := led.Total()
				bcost := s.Backup(now, &core.Regs, core.PC)
				cap.Draw(led.Total() - before)
				drawRun(bcost.Ns)
				armed = false
				if !s.ContinuesAfterBackup() {
					if err := powerCycle(); err != nil {
						return res, err
					}
					continue
				}
			}
			// Hard brown-out: SweepCache by design, NvMR while
			// speculating past its backup.
			if cap.V() < p.Vmin {
				if err := powerCycle(); err != nil {
					return res, err
				}
				continue
			}
			// Re-arm once the source lifts the voltage back up
			// (NvMR keeps executing through this window).
			if s.JIT() && !armed && cap.V() > p.VBackup+0.02 {
				armed = true
			}
		}

		op := l.Code[core.PC].Op
		before := led.Total()
		st := core.Step(now, s, timing)
		led.Compute += p.EInstr + p.PRun*float64(st.Ns)*1e-9
		if cursor != nil {
			cap.Add(cursor.Harvest(st.Ns))
		}
		cap.Draw(led.Total() - before)
		now += st.Ns
		res.RunNs += st.Ns

		if op == isa.OpRegionEnd || op == isa.OpFence {
			res.RegionSizes.Add(regionInstrs)
			regionInstrs = 0
		} else {
			regionInstrs++
		}
	}

	s.Sync(now + 1<<40) // settle all background persistence
	s.Finalize()        // drain volatile leftovers so the NVM image is observable

	res.Halted = true
	res.TimeNs = now
	res.Counts = core.Counts
	res.Ledger = *led
	res.Arch = *s.Stats()
	if c := s.Cache(); c != nil {
		res.CacheHits, res.CacheMisses, res.DirtyEvictions = c.Hits, c.Misses, c.DirtyEvictions
	}
	nvm := s.NVM()
	res.NVMReads, res.NVMWrites = nvm.Reads, nvm.Writes
	res.NVMLineReads, res.NVMLineWrites = nvm.LineReads, nvm.LineWrites
	res.NVM = nvm
	return res, nil
}
