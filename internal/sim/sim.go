// Package sim is the simulation engine: it couples the in-order core and a
// scheme's memory hierarchy to the capacitor and power trace, injects power
// failures at the exact instants the energy model dictates, drives each
// scheme's backup/recovery protocol, and collects the statistics every
// experiment consumes.
//
// The engine checks the voltage before every instruction. JIT-checkpoint
// schemes trip a backup when V falls to VBackup (after the monitor's
// propagation delay) and then sleep until VRestore; SweepCache executes
// down to Vmin and loses all volatile state. Recharge periods fast-forward
// through the power trace. Energy accounting is ledger-delta based: scheme
// operations attribute energy to the shared ledger, and the engine draws
// exactly the per-step ledger delta from the capacitor, so no joule is
// counted twice.
package sim

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// EngineVersion names the engine's result-affecting revision. Journal
// entries (internal/journal) record it so cached cell results are never
// reused across model changes: bump it whenever the golden digests
// (TestFastPathGolden) are deliberately regenerated.
const EngineVersion = "engine-v3-fastpath"

// Options configures one run.
type Options struct {
	// Source is the power trace; nil runs outage-free with an ideal
	// supply (the Figure 5 configuration).
	Source trace.Source
	// Ctx, when non-nil, cancels the run: the engine polls it at epoch
	// boundaries (never inside the per-instruction hot loop) and returns
	// a *CanceledError wrapping Ctx.Err(). nil runs to completion.
	Ctx context.Context
	// MaxInstructions aborts runaway executions. 0 means 2e9.
	MaxInstructions uint64
	// StagnationNs bounds one recharge wait. 0 means 60 s.
	StagnationNs int64
	// RegionHistMax bounds the region-size histogram. 0 means 256.
	RegionHistMax int
	// Tracer receives the run's telemetry events; nil (the default)
	// disables tracing at the cost of one branch per emit site.
	Tracer *telemetry.Tracer
	// Precise forces the reference engine: capacitor settlement (ledger
	// sum, harvest integration, draw) after every retired instruction.
	// The default engine batches settlements over epochs sized so that
	// no voltage trigger can fire inside one, falling back to precise
	// stepping near the thresholds; TestBatchedMatchesPrecise proves the
	// two produce byte-identical results and telemetry. Precise remains
	// for differential testing and debugging. See docs/PERFORMANCE.md.
	Precise bool
}

// Result is everything measured during a run.
type Result struct {
	Scheme string
	Halted bool

	TimeNs    int64 // wall-clock: execution + backup/restore + recharge
	RunNs     int64 // execution time only
	ChargeNs  int64 // powered-off recharge time
	RestoreNs int64 // time spent inside scheme restore work (excl. recharge)
	Outages   uint64

	Counts cpu.Counts
	Ledger energy.Ledger
	Arch   arch.Stats

	CacheHits      uint64
	CacheMisses    uint64
	DirtyEvictions uint64

	NVMReads      uint64
	NVMWrites     uint64
	NVMLineReads  uint64
	NVMLineWrites uint64

	// RegionSizes samples dynamic instructions per region (Figure 12a);
	// populated for sweep- and replay-compiled binaries.
	RegionSizes *stats.Hist

	// NVM is the final memory image, for differential consistency checks.
	NVM *mem.NVM
}

// MissRate returns the L1D miss rate of the run.
func (r *Result) MissRate() float64 {
	tot := r.CacheHits + r.CacheMisses
	if tot == 0 {
		return 0
	}
	return float64(r.CacheMisses) / float64(tot)
}

// ParallelismEfficiency returns Section 6.3's (Tp-Twait)/Tp, clamped to
// [0, 1]: a run with no persistence work reports 1, and accumulated wait
// exceeding Tp (possible when structural stalls pile up across outages)
// reports 0 rather than a nonsensical negative efficiency.
func (r *Result) ParallelismEfficiency() float64 {
	if r.Arch.TpNs == 0 {
		return 1
	}
	eff := float64(r.Arch.TpNs-r.Arch.TwaitNs) / float64(r.Arch.TpNs)
	if eff < 0 {
		return 0
	}
	return eff
}

// OutageRate returns outages per simulated millisecond of wall clock, or
// 0 for an instantaneous (empty) run.
func (r *Result) OutageRate() float64 {
	if r.TimeNs == 0 {
		return 0
	}
	return float64(r.Outages) / (float64(r.TimeNs) / 1e6)
}

// String renders the run as the human-readable report cmd/sweepsim
// prints: timing, instruction mix, energy ledger, cache and NVM traffic,
// and — where the scheme produces them — region and JIT statistics.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wall clock     %12.3f ms   (run %.3f ms, recharge %.3f ms)\n",
		float64(r.TimeNs)/1e6, float64(r.RunNs)/1e6, float64(r.ChargeNs)/1e6)
	fmt.Fprintf(&b, "instructions   %12d      (loads %d, stores %d, ckpt %d)\n",
		r.Counts.Executed, r.Counts.Loads, r.Counts.Stores, r.Counts.CkptStores)
	fmt.Fprintf(&b, "power outages  %12d\n", r.Outages)
	led := r.Ledger
	fmt.Fprintf(&b, "energy         %12.3f uJ   (compute %.3f, nvm %.3f, persist %.3f,\n",
		led.Total()*1e6, led.Compute*1e6, led.NVM*1e6, led.Persist*1e6)
	fmt.Fprintf(&b, "                                  backup %.3f, restore %.3f, sleep %.3f)\n",
		led.Backup*1e6, led.Restore*1e6, led.Sleep*1e6)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&b, "cache          %11.2f%% miss  (%d hits, %d misses, %d dirty evictions)\n",
			100*r.MissRate(), r.CacheHits, r.CacheMisses, r.DirtyEvictions)
	}
	fmt.Fprintf(&b, "NVM traffic    %12d word reads, %d word writes, %d line reads, %d line writes\n",
		r.NVMReads, r.NVMWrites, r.NVMLineReads, r.NVMLineWrites)
	if r.Arch.RegionsExecuted > 0 {
		fmt.Fprintf(&b, "regions        %12d      (mean %.1f insts, %.1f stores; parallelism eff %.1f%%)\n",
			r.Arch.RegionsExecuted, r.RegionSizes.Mean(),
			r.Arch.StoresPerRegion.Mean(), 100*r.ParallelismEfficiency())
		fmt.Fprintf(&b, "buffer search  %12d      (%d bypassed by empty-bit, %d served misses)\n",
			r.Arch.BufferSearches, r.Arch.BufferBypasses, r.Arch.BufferHits)
	}
	if r.Arch.BackupEvents > 0 {
		fmt.Fprintf(&b, "JIT events     %12d backups, %d restores, %d lines backed up\n",
			r.Arch.BackupEvents, r.Arch.RestoreEvents, r.Arch.LinesBackedUp)
	}
	return b.String()
}

// Metrics converts the run's counters into a telemetry snapshot: every
// ad-hoc Result field becomes a named counter, gauge, or histogram, so
// runs merge uniformly across a parallel experiment matrix.
func (r *Result) Metrics() *telemetry.Snapshot {
	reg := telemetry.NewRegistry()
	reg.Counter("sim.runs").Add(1) // merged snapshots count aggregated runs
	reg.Counter("sim.outages").Add(r.Outages)
	reg.Counter("sim.instructions").Add(r.Counts.Executed)
	reg.Counter("sim.loads").Add(r.Counts.Loads)
	reg.Counter("sim.stores").Add(r.Counts.Stores)
	reg.Counter("sim.ckpt_stores").Add(r.Counts.CkptStores)
	reg.Counter("sim.save_pcs").Add(r.Counts.SavePCs)
	reg.Counter("sim.region_ends").Add(r.Counts.RegionEnds)
	reg.Counter("sim.clwbs").Add(r.Counts.Clwbs)
	reg.Counter("sim.fences").Add(r.Counts.Fences)
	reg.Counter("cache.hits").Add(r.CacheHits)
	reg.Counter("cache.misses").Add(r.CacheMisses)
	reg.Counter("cache.dirty_evictions").Add(r.DirtyEvictions)
	reg.Counter("nvm.reads").Add(r.NVMReads)
	reg.Counter("nvm.writes").Add(r.NVMWrites)
	reg.Counter("nvm.line_reads").Add(r.NVMLineReads)
	reg.Counter("nvm.line_writes").Add(r.NVMLineWrites)
	reg.Counter("arch.regions").Add(r.Arch.RegionsExecuted)
	reg.Counter("arch.buffer_searches").Add(r.Arch.BufferSearches)
	reg.Counter("arch.buffer_bypasses").Add(r.Arch.BufferBypasses)
	reg.Counter("arch.buffer_hits").Add(r.Arch.BufferHits)
	reg.Counter("arch.backups").Add(r.Arch.BackupEvents)
	reg.Counter("arch.restores").Add(r.Arch.RestoreEvents)
	reg.Counter("arch.lines_backed_up").Add(r.Arch.LinesBackedUp)
	reg.Counter("arch.replayed_stores").Add(r.Arch.ReplayedStores)
	reg.Counter("arch.redone_drains").Add(r.Arch.RedoneDrains)

	// Run-phase breakdown: where the wall clock went.
	reg.Gauge("phase.total_ns").Set(float64(r.TimeNs))
	reg.Gauge("phase.run_ns").Set(float64(r.RunNs))
	reg.Gauge("phase.charge_ns").Set(float64(r.ChargeNs))
	reg.Gauge("phase.restore_ns").Set(float64(r.RestoreNs))
	reg.Gauge("phase.waw_stall_ns").Set(float64(r.Arch.WAWStallNs))
	reg.Gauge("phase.fence_stall_ns").Set(float64(r.Arch.FenceStallNs))
	reg.Gauge("phase.clwb_stall_ns").Set(float64(r.Arch.ClwbStallNs))
	reg.Gauge("phase.tp_ns").Set(float64(r.Arch.TpNs))
	reg.Gauge("phase.twait_ns").Set(float64(r.Arch.TwaitNs))

	reg.Gauge("energy.compute_j").Set(r.Ledger.Compute)
	reg.Gauge("energy.nvm_j").Set(r.Ledger.NVM)
	reg.Gauge("energy.persist_j").Set(r.Ledger.Persist)
	reg.Gauge("energy.backup_j").Set(r.Ledger.Backup)
	reg.Gauge("energy.restore_j").Set(r.Ledger.Restore)
	reg.Gauge("energy.sleep_j").Set(r.Ledger.Sleep)
	reg.Gauge("energy.total_j").Set(r.Ledger.Total())

	if r.RegionSizes != nil {
		reg.SetHistogram("region.sizes", r.RegionSizes)
	}
	if r.Arch.StoresPerRegion != nil {
		reg.SetHistogram("region.stores", r.Arch.StoresPerRegion)
	}
	return reg.Snapshot()
}

// debugOutages, enabled by setting the SIM_DEBUG environment variable,
// prints one line per power cycle (failure point, restored PC, voltage) —
// the quickest way to see a recovery protocol misbehaving.
var debugOutages = os.Getenv("SIM_DEBUG") != ""

// ErrStagnation reports a power source too weak to ever recharge the
// capacitor to the restore threshold.
var ErrStagnation = errors.New("sim: stagnation — power source cannot recharge the capacitor")

// ErrNoProgress is the sentinel behind NoProgressError: a configuration
// whose per-cycle energy window cannot cover even one instruction plus its
// own backup/restore costs would power-cycle forever. errors.Is against
// this sentinel matches; errors.As against *NoProgressError recovers the
// scheme/cycle context.
var ErrNoProgress = errors.New("sim: no forward progress")

// NoProgressError carries the context of a tripped forward-progress guard.
type NoProgressError struct {
	Scheme   string
	Outages  uint64 // power cycles completed when the guard tripped
	Executed uint64 // instructions retired in total
	NowNs    int64  // simulated clock at the trip
}

func (e *NoProgressError) Error() string {
	return fmt.Sprintf("%v on %s: outage %d at %.3f ms with %d instructions retired — energy window too small for its backup/restore costs",
		ErrNoProgress, e.Scheme, e.Outages, float64(e.NowNs)/1e6, e.Executed)
}

func (e *NoProgressError) Unwrap() error { return ErrNoProgress }

// CanceledError reports a run interrupted through Options.Ctx. It wraps
// the context's error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both work.
type CanceledError struct {
	Scheme   string
	Executed uint64 // instructions retired before the interruption
	NowNs    int64  // simulated clock at the interruption
	Err      error  // the context's error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: run canceled on %s at %.3f ms after %d instructions: %v",
		e.Scheme, float64(e.NowNs)/1e6, e.Executed, e.Err)
}

func (e *CanceledError) Unwrap() error { return e.Err }

// cancelPollInterval is how many engine-loop iterations (epochs, precise
// steps, or traced instructions) elapse between context polls. The poll is
// a single counter decrement on the common path, so cancellation support
// costs nothing measurable; the interval bounds cancellation latency to a
// few thousand instructions of simulated work.
const cancelPollInterval = 1024

// cancelChunkInstrs bounds one fused RunUntraced call when a context is
// attached: plain binaries (NVP) have no region delimiters, so without a
// chunk bound a single call could run the whole program and never observe
// the cancellation. The chunk is large enough that the extra call overhead
// vanishes (one call per ~1M instructions).
const cancelChunkInstrs = 1 << 20

// InitNVM loads the program's data image and recovery PC slot into the
// scheme's NVM.
func InitNVM(s arch.Scheme, l *ir.Linked) {
	nvm := s.NVM()
	for _, run := range linkedImage(l) {
		nvm.PokeImage(run.addr, run.data)
	}
}

// imageRun is a contiguous byte run of a program's initial NVM image.
type imageRun struct {
	addr int64
	data []byte
}

// imageCache memoizes the coalesced NVM image per linked program: the
// image is a pure function of the Linked (data inits plus the recovery PC
// slot), and a batch or sweep boots the same program many times, so each
// boot after the first is a handful of bulk copies instead of a poke per
// word. The map holds strong references, which also guarantees a cached
// pointer key cannot be recycled for a different program; the reset cap
// bounds the footprint.
var imageCache struct {
	sync.Mutex
	m map[*ir.Linked][]imageRun
}

func linkedImage(l *ir.Linked) []imageRun {
	imageCache.Lock()
	defer imageCache.Unlock()
	if runs, ok := imageCache.m[l]; ok {
		return runs
	}
	var runs []imageRun
	add := func(addr int64, b ...byte) {
		if n := len(runs); n > 0 && runs[n-1].addr+int64(len(runs[n-1].data)) == addr {
			runs[n-1].data = append(runs[n-1].data, b...)
			return
		}
		runs = append(runs, imageRun{addr, append([]byte(nil), b...)})
	}
	var w [8]byte
	for _, di := range l.Prog.Inits {
		if di.Byte {
			add(di.Addr, byte(di.Val))
		} else {
			binary.LittleEndian.PutUint64(w[:], uint64(di.Val))
			add(di.Addr, w[:]...)
		}
	}
	binary.LittleEndian.PutUint64(w[:], uint64(l.EntryPC))
	add(ir.PCSlotAddr, w[:]...)
	if imageCache.m == nil || len(imageCache.m) >= 64 {
		imageCache.m = map[*ir.Linked][]imageRun{}
	}
	imageCache.m[l] = runs
	return runs
}

// eTableCache shares the tabulated per-latency instruction energies across
// runners: the table is a pure function of (EInstr, PRun) and read-only
// after construction, so every lane of a batch uses one copy.
var eTableCache struct {
	sync.Mutex
	m map[[2]float64][]float64
}

func eInstrTable(eInstr, pRun float64) []float64 {
	key := [2]float64{eInstr, pRun}
	eTableCache.Lock()
	defer eTableCache.Unlock()
	if t, ok := eTableCache.m[key]; ok {
		return t
	}
	t := make([]float64, 4096)
	for ns := range t {
		t[ns] = eInstr + pRun*float64(ns)*1e-9
	}
	if eTableCache.m == nil || len(eTableCache.m) >= 64 {
		eTableCache.m = map[[2]float64][]float64{}
	}
	eTableCache.m[key] = t
	return t
}

// epochMaxInstrNs is the engine's working bound on a single instruction's
// latency when sizing batched-accounting epochs. It is a planning margin,
// not a hard ISA limit: epochs are closed early enough that one more
// instruction of this length still fits inside the current power-trace
// segment, and an instruction that blows past it (a deep persist-buffer
// drain) closes the epoch immediately after retiring.
const epochMaxInstrNs = 16_384

// minEpochInstrs is the smallest epoch worth opening: below this the
// budget-check and settlement overhead cancel the savings, so the engine
// just steps precisely.
const minEpochInstrs = 64

// quantV quantizes a reported voltage to 1 µV. Telemetry voltage fields
// exist for humans and plots; quantizing them makes the JSONL stream
// insensitive to ULP-level differences in capacitor state between the
// batched and precise engines, keeping their traces byte-identical.
func quantV(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// runner is one simulation run's mutable state, shared by the three
// engine loops (precise, outage-free, batched) and the power-event
// handlers so that all paths drive identical protocol code.
type runner struct {
	l      *ir.Linked
	s      arch.Scheme
	ms     cpu.MemSystem // s, converted once: keeps convI2I off the hot loop
	opt    Options
	p      config.Params
	core   *cpu.CPU
	led    *energy.Ledger
	cap    *energy.Capacitor
	cursor *trace.Cursor
	tr     *telemetry.Tracer
	res    *Result
	timing cpu.StepTiming

	now          int64
	armed        bool
	regionInstrs int
	// ec parameterizes the fused epoch loop (untraced harvested-power
	// runs); run-constant fields are filled once by runBatched, the
	// per-epoch fields by runEpoch.
	ec cpu.EpochControl
	// fetchFree mirrors the core's fetch elision: when set, pure-compute
	// instructions provably never enter the memory system, so scheme
	// queries (NeedsBackup) hold across them.
	fetchFree bool

	// eInstrByNs tabulates EInstr + PRun*ns*1e-9 per instruction latency,
	// pre-filled by Run for every ns below the table length (latencies
	// cluster on cycle multiples plus fixed memory costs). The table
	// converts the per-instruction float conversion and multiplies into
	// one load; each entry is the bit-exact result of the original
	// expression, so ledger totals are unchanged.
	eInstrByNs []float64

	// Forward-progress guard: a configuration whose per-cycle energy
	// window cannot cover even one instruction (plus its own restore
	// draw) would power-cycle forever.
	lastOutageExec uint64
	zeroProgress   int

	// ctx, when non-nil, cancels the run; cancelCountdown rate-limits the
	// Err() poll to one per cancelPollInterval loop iterations.
	ctx             context.Context
	cancelCountdown int
}

// pollCancel is the engine loops' cancellation check: a counter decrement
// on the common path, a context poll every cancelPollInterval calls.
func (r *runner) pollCancel() error {
	if r.ctx == nil {
		return nil
	}
	if r.cancelCountdown--; r.cancelCountdown > 0 {
		return nil
	}
	r.cancelCountdown = cancelPollInterval
	return r.checkCancel()
}

// checkCancel polls the context unconditionally.
func (r *runner) checkCancel() error {
	if r.ctx == nil {
		return nil
	}
	if err := r.ctx.Err(); err != nil {
		return &CanceledError{Scheme: r.s.Name(), Executed: r.core.Counts.Executed, NowNs: r.now, Err: err}
	}
	return nil
}

// newRunner validates opt, boots the scheme, and builds one run's mutable
// state — the shared construction path of Run and RunBatch. It leaves the
// pre-canceled-context check to the caller (Run wants the Result back even
// then).
func newRunner(l *ir.Linked, s arch.Scheme, opt Options) (*runner, error) {
	p := s.Params()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid params for %s: %w", s.Name(), err)
	}
	if opt.Source != nil && s.JIT() {
		if err := p.ValidateJIT(); err != nil {
			return nil, fmt.Errorf("sim: invalid params for %s: %w", s.Name(), err)
		}
	}
	if opt.MaxInstructions == 0 {
		opt.MaxInstructions = 2_000_000_000
	}
	if opt.StagnationNs == 0 {
		opt.StagnationNs = 60_000_000_000
	}
	if opt.RegionHistMax == 0 {
		opt.RegionHistMax = 256
	}

	InitNVM(s, l)
	s.SetTracer(opt.Tracer)
	core := cpu.NewLinked(l)
	fetchFree := false
	if ff, ok := s.(cpu.FreeFetcher); ok && ff.FetchIsFree() {
		core.SetFetchFree(true)
		fetchFree = true
	}
	s.Boot(int64(l.EntryPC))

	r := &runner{
		l:         l,
		s:         s,
		ms:        s,
		opt:       opt,
		p:         p,
		core:      core,
		led:       s.Ledger(),
		cap:       energy.NewCapacitor(p.CapacitorF, p.Vmax, p.Vmax),
		tr:        opt.Tracer,
		res:       &Result{Scheme: s.Name(), RegionSizes: stats.NewHist(opt.RegionHistMax)},
		timing:    cpu.StepTiming{CycleNs: p.CycleNs, MulCycles: p.MulCycles, DivCycles: p.DivCycles},
		armed:     true,
		fetchFree: fetchFree,

		eInstrByNs: eInstrTable(p.EInstr, p.PRun),
	}
	if opt.Source != nil {
		r.cursor = trace.NewCursor(opt.Source)
	}
	if opt.Ctx != nil {
		r.ctx = opt.Ctx
		r.cancelCountdown = cancelPollInterval
	}
	return r, nil
}

// Run executes the linked program on the scheme until it halts.
func Run(l *ir.Linked, s arch.Scheme, opt Options) (*Result, error) {
	r, err := newRunner(l, s, opt)
	if err != nil {
		return nil, err
	}
	// A run that is already canceled does no work at all.
	if err := r.checkCancel(); err != nil {
		return r.res, err
	}
	switch {
	case opt.Precise:
		err = r.runPrecise()
	case r.cursor == nil:
		err = r.runOutageFree()
	default:
		err = r.runBatched()
	}
	if err != nil {
		return r.res, err
	}
	r.finish()
	return r.res, nil
}

// budgetErr builds the instruction-budget error all engine loops share.
func (r *runner) budgetErr() error {
	return fmt.Errorf("sim: instruction budget (%d) exceeded on %s", r.opt.MaxInstructions, r.s.Name())
}

// drawRun charges the capacitor with harvest and drains run power over an
// interval where the core is on but not retiring instructions (backup,
// restore, detection delays).
func (r *runner) drawRun(dt int64) {
	if dt <= 0 {
		return
	}
	sec := float64(dt) * 1e-9
	r.led.Compute += r.p.PRun * sec
	if r.cursor != nil {
		r.cap.Add(r.cursor.Harvest(dt))
	}
	r.cap.Draw(r.p.PRun * sec)
	r.now += dt
	r.res.RunNs += dt
}

// powerCycle sleeps through a recharge and restores the scheme.
func (r *runner) powerCycle() error {
	p, s, core, led, cap, res := &r.p, r.s, r.core, r.led, r.cap, r.res
	if core.Counts.Executed == r.lastOutageExec {
		r.zeroProgress++
		if r.zeroProgress > 256 {
			return &NoProgressError{
				Scheme:   s.Name(),
				Outages:  res.Outages,
				Executed: core.Counts.Executed,
				NowNs:    r.now,
			}
		}
	} else {
		r.zeroProgress = 0
	}
	r.lastOutageExec = core.Counts.Executed
	if debugOutages {
		fmt.Printf("OUTAGE %d at now=%d pc=%d executed=%d V=%.3f r0=%d\n", res.Outages, r.now, core.PC, core.Counts.Executed, cap.V(), core.Regs[0])
	}
	res.Outages++
	r.tr.Emit(telemetry.EvOutageBegin, r.now, int64(res.Outages), 0, 0, quantV(cap.V()))
	chargeBefore := res.ChargeNs
	s.PowerFail(r.now)
	elapsed, ok := r.cursor.ChargeUntil(cap, p.VRestore, p.PSleep, r.opt.StagnationNs, led)
	r.now += elapsed
	res.ChargeNs += elapsed
	if !ok {
		return fmt.Errorf("%w (scheme %s, %.1f ms waited)", ErrStagnation, s.Name(), float64(elapsed)/1e6)
	}
	// Restore propagation delay (T_plh) at sleep draw.
	sec := float64(p.RestoreDelayNs) * 1e-9
	led.Sleep += p.PSleep * sec
	cap.Draw(p.PSleep * sec)
	cap.Add(r.cursor.Harvest(p.RestoreDelayNs))
	r.now += p.RestoreDelayNs
	res.ChargeNs += p.RestoreDelayNs

	before := led.Total()
	restoreStart := r.now
	pc, rcost := s.Restore(r.now, &core.Regs)
	if debugOutages {
		fmt.Printf("  RESTORE -> pc=%d V=%.3f r0=%d r13=%d\n", pc, cap.V(), core.Regs[0], core.Regs[13])
	}
	r.tr.Emit(telemetry.EvRestore, restoreStart, pc, rcost.Ns, 0, 0)
	core.PC = pc
	cap.Draw(led.Total() - before)
	r.drawRun(rcost.Ns)
	res.RestoreNs += rcost.Ns
	// The restoration itself was fed while still tethered to the
	// charging path: top the capacitor back up to the restore
	// threshold before execution resumes, so arbitrarily expensive
	// restores lengthen the charge instead of eating the run window.
	if cap.V() < p.VRestore {
		elapsed, ok := r.cursor.ChargeUntil(cap, p.VRestore, p.PSleep, r.opt.StagnationNs, led)
		r.now += elapsed
		res.ChargeNs += elapsed
		if !ok {
			return fmt.Errorf("%w (scheme %s, restore top-up)", ErrStagnation, s.Name())
		}
	}
	r.regionInstrs = 0
	r.armed = true
	r.tr.Emit(telemetry.EvOutageEnd, r.now, int64(res.Outages), res.ChargeNs-chargeBefore, 0, quantV(cap.V()))
	return nil
}

// preInstrEvents runs the pre-instruction power protocol: structural
// backups, the voltage-triggered JIT backup, the Vmin brown-out, and
// re-arming. It reports handled=true when a power cycle consumed the slot
// and the caller must re-enter its loop from the top.
func (r *runner) preInstrEvents() (handled bool, err error) {
	p, s, core, led, cap := &r.p, r.s, r.core, r.led, r.cap
	jit := s.JIT()
	// Structural backup request (NvMR rename-table full).
	if jit && s.NeedsBackup() {
		before := led.Total()
		bcost := s.Backup(r.now, &core.Regs, core.PC)
		r.tr.Emit(telemetry.EvBackup, r.now, core.PC, bcost.Ns, 0, 0)
		cap.Draw(led.Total() - before)
		r.drawRun(bcost.Ns)
	}
	// The voltage is re-read only after a draw can have moved it, so the
	// comparisons below see exactly the values per-compare reads would.
	v := cap.V()
	// Voltage-triggered JIT backup.
	if jit && r.armed && v <= p.VBackup {
		r.drawRun(p.BackupDelayNs) // T_phl detection delay
		before := led.Total()
		bcost := s.Backup(r.now, &core.Regs, core.PC)
		r.tr.Emit(telemetry.EvBackup, r.now, core.PC, bcost.Ns, 0, 0)
		cap.Draw(led.Total() - before)
		r.drawRun(bcost.Ns)
		r.armed = false
		if !s.ContinuesAfterBackup() {
			return true, r.powerCycle()
		}
		v = cap.V()
	}
	// Hard brown-out: SweepCache by design, NvMR while
	// speculating past its backup.
	if v < p.Vmin {
		return true, r.powerCycle()
	}
	// Re-arm once the source lifts the voltage back up
	// (NvMR keeps executing through this window).
	if jit && !r.armed && v > p.VBackup+0.02 {
		r.armed = true
	}
	return false, nil
}

// boundaryEventCheck is preInstrEvents' decision procedure without the
// event bodies: it reports whether a state-mutating event (structural
// backup, voltage-triggered JIT backup, brown-out) is due, using exactly
// the same comparisons in the same order. When none is, it applies the
// re-arm transition — the one action that touches no core state — so a
// false return means a full preInstrEvents call would have returned
// (false, nil) and left the lane's core untouched. The batch engine uses
// this to reopen epochs without materializing a lane's core view.
func (r *runner) boundaryEventCheck(jit bool) (pending bool) {
	if jit && r.s.NeedsBackup() {
		return true
	}
	v := r.cap.V()
	if jit && r.armed && v <= r.p.VBackup {
		return true
	}
	if v < r.p.Vmin {
		return true
	}
	if jit && !r.armed && v > r.p.VBackup+0.02 {
		r.armed = true
	}
	return false
}

// preStepEmit reports compiler-inserted checkpoint activity. Callers only
// invoke it when a tracer is attached, keeping the per-instruction switch
// off the disabled hot path.
func (r *runner) preStepEmit() {
	d := &r.l.Dec[r.core.PC]
	switch d.Class {
	case isa.ClassCkptSt:
		r.tr.Emit(telemetry.EvCkptStore, r.now, int64(d.Src2), 0, 0, 0)
	case isa.ClassSavePC:
		r.tr.Emit(telemetry.EvSavePC, r.now, d.Imm, 0, 0, 0)
	}
}

// noteRegion maintains the region-size histogram after an instruction of
// dispatch class cl retires.
func (r *runner) noteRegion(cl isa.Class) {
	if cl == isa.ClassRegionEnd || cl == isa.ClassFence {
		r.res.RegionSizes.Add(r.regionInstrs)
		r.regionInstrs = 0
	} else {
		r.regionInstrs++
	}
}

// stepPrecise retires one instruction with immediate capacitor
// settlement — the reference accounting sequence both the precise engine
// and the batched engine's near-threshold fallback execute.
func (r *runner) stepPrecise() {
	if r.tr != nil {
		r.preStepEmit()
	}
	before := r.led.Total()
	ns, cl := r.core.StepFast(r.now, r.ms, r.timing)
	r.led.Compute += r.instrEnergy(ns)
	if r.cursor != nil {
		r.cap.Add(r.cursor.Harvest(ns))
	}
	r.cap.Draw(r.led.Total() - before)
	r.now += ns
	r.res.RunNs += ns
	r.noteRegion(cl)
}

// runPrecise is the reference engine: power events checked and capacitor
// settled before/after every instruction.
func (r *runner) runPrecise() error {
	for !r.core.Halted {
		if r.core.Counts.Executed >= r.opt.MaxInstructions {
			return r.budgetErr()
		}
		if err := r.pollCancel(); err != nil {
			return err
		}
		if r.cursor != nil {
			handled, err := r.preInstrEvents()
			if err != nil {
				return err
			}
			if handled {
				continue
			}
		}
		r.stepPrecise()
	}
	return nil
}

// instrEnergy returns the instruction's ledger charge, bit-identical to
// computing p.EInstr + p.PRun*float64(ns)*1e-9 inline (the table holds
// exactly that value, pre-filled by Run; float arithmetic is
// deterministic). The common path is one bounds test and one load.
func (r *runner) instrEnergy(ns int64) float64 {
	if ns < int64(len(r.eInstrByNs)) {
		return r.eInstrByNs[ns]
	}
	return r.p.EInstr + r.p.PRun*float64(ns)*1e-9
}

// runOutageFree is the ideal-supply engine (the Figure 5 configuration).
// With no power trace the capacitor can never cross a threshold and
// nothing observable ever reads it, so the loop carries no capacitor work
// at all. The ledger — which IS observable — is maintained with exactly
// the precise path's per-instruction arithmetic, so results stay
// byte-identical with Options.Precise.
func (r *runner) runOutageFree() error {
	core, led, tr := r.core, r.led, r.tr
	ms, timing := r.ms, r.timing
	max := r.opt.MaxInstructions
	hist := r.res.RegionSizes
	// Loop state lives in plain locals (no closure captures them, so they
	// stay in registers across the interpreter call); synced back on loop
	// exit, and before any emit, which reads r.now.
	now, runNs, ri := r.now, r.res.RunNs, r.regionInstrs
	if tr == nil {
		// No tracer: the fused interpreter loop retires whole regions per
		// call, with the identical per-instruction ledger arithmetic (the
		// traced-versus-untraced matrix test pins the equivalence). With a
		// context attached, each call is additionally capped at
		// cancelChunkInstrs so delimiter-free binaries still observe
		// cancellation; the chunk boundary only changes where the outer
		// loop re-enters, never any retired state.
		for !core.Halted {
			lim := max
			if r.ctx != nil {
				if c := core.Counts.Executed + cancelChunkInstrs; c < lim {
					lim = c
				}
				if err := r.checkCancel(); err != nil {
					r.now, r.res.RunNs, r.regionInstrs = now, runNs, ri
					return err
				}
			}
			ns, n, delim := core.RunUntraced(now, ms, timing,
				r.eInstrByNs, r.p.EInstr, r.p.PRun, &led.Compute, lim)
			now += ns
			runNs += ns
			if delim {
				hist.Add(ri + n - 1)
				ri = 0
				continue
			}
			ri += n
			if !core.Halted && core.Counts.Executed >= max {
				break // instruction budget
			}
		}
	} else {
		for !core.Halted {
			if core.Counts.Executed >= max {
				break
			}
			if err := r.pollCancel(); err != nil {
				r.now, r.res.RunNs, r.regionInstrs = now, runNs, ri
				return err
			}
			r.now = now
			r.preStepEmit()
			ns, cl := core.StepFast(now, ms, timing)
			led.Compute += r.instrEnergy(ns)
			now += ns
			runNs += ns
			if cl == isa.ClassRegionEnd || cl == isa.ClassFence {
				hist.Add(ri)
				ri = 0
			} else {
				ri++
			}
		}
	}
	r.now, r.res.RunNs, r.regionInstrs = now, runNs, ri
	if !core.Halted {
		return r.budgetErr()
	}
	return nil
}

// epochBudget returns the energy (joules) the engine may consume under
// one deferred settlement, or 0 when it must fall back to precise
// stepping: while a JIT scheme is disarmed (the re-arm crossing needs
// per-instruction voltage), when the source out-powers the core (voltage
// rising toward a re-arm or Vmax clamp), near the Vmax clamp itself, too
// close to the end of the current power-trace segment, or simply too
// close to a trigger threshold for a worthwhile epoch.
//
// The budget is a fixed fraction (strictly below one) of the slack
// between the present stored energy and the highest trigger floor. Draw
// is bounded by the ledger delta regardless of harvest, so before every
// instruction of the epoch the capacitor provably holds more than any
// trigger threshold — the precise path's voltage comparisons could not
// have fired and are skipped wholesale.
func (r *runner) epochBudget(jit bool) float64 {
	if jit && !r.armed {
		return 0
	}
	pseg := r.cursor.Power()
	if pseg >= r.p.PRun {
		return 0
	}
	if r.cursor.SegmentRemaining() < 2*epochMaxInstrNs {
		return 0
	}
	eNow := r.cap.Energy()
	// Clamp guard: the precise path adds each instruction's harvest
	// before drawing its cost; if that transient could reach Vmax the
	// clamp would discard energy that batched settlement keeps.
	if r.cap.EnergyAt(r.p.Vmax)-eNow <= 2*pseg*epochMaxInstrNs*1e-9 {
		return 0
	}
	floor := r.cap.EnergyAt(r.p.Vmin)
	if jit {
		if eb := r.cap.EnergyAt(r.p.VBackup); eb > floor {
			floor = eb
		}
	}
	// Any fraction strictly below one keeps every pre-instruction point of
	// the epoch above the floor (the draw at each such point is below the
	// budget, and harvest only adds), so the reference engine's threshold
	// comparisons provably could not have fired — the equivalence is to
	// the precise path, independent of the fraction. 7/8 rather than 1/2
	// makes the per-discharge epoch count log_{8}, not log_{2}, and leaves
	// correspondingly fewer instructions to the precise-stepping tail once
	// the slack stops being worth an epoch.
	budget := (eNow - floor) * 0.875
	minWorthwhile := minEpochInstrs * (r.p.EInstr + r.p.PRun*float64(r.p.CycleNs)*1e-9)
	if budget <= minWorthwhile {
		return 0
	}
	return budget
}

// runEpoch retires instructions under one deferred capacitor settlement.
// The epoch closes when the ledger delta reaches the budget, when the
// next instruction might not fit in the current power-trace segment, on
// a structural backup request, on halt, or at the instruction budget.
func (r *runner) runEpoch(jit bool, budget float64) {
	core, led, tr, s := r.core, r.led, r.tr, r.s
	ms, timing := r.ms, r.timing
	ledStart := led.Total()
	segRem := r.cursor.SegmentRemaining()
	if tr == nil {
		// No tracer: one fused interpreter call retires the whole epoch
		// (the traced-versus-untraced matrix test pins the equivalence).
		// The initial backup check mirrors the per-step loop's first
		// iteration: a pending request ends the epoch before any
		// instruction retires.
		var epochNs int64
		if !(jit && s.NeedsBackup()) {
			ec := &r.ec
			ec.LedStart, ec.Budget, ec.SegRem = ledStart, budget, segRem
			ec.RegionInstrs = r.regionInstrs
			elapsed, ri := core.RunEpoch(r.now, ms, timing, ec)
			r.now += elapsed
			r.res.RunNs += elapsed
			r.regionInstrs = ri
			epochNs = elapsed
		}
		r.cap.Draw(led.Total() - ledStart)
		r.cap.Add(r.cursor.Harvest(epochNs))
		return
	}
	max := r.opt.MaxInstructions
	hist := r.res.RegionSizes
	now, runNs, ri := r.now, r.res.RunNs, r.regionInstrs
	var epochNs int64
	// NeedsBackup is an interface call per iteration, but scheme state
	// only changes across instructions that enter the memory system, so
	// the answer is re-queried only after those (or after every
	// instruction when fetches are charged — a fetch enters the scheme
	// too). Branch outcomes are identical to querying every iteration.
	needBk := jit && s.NeedsBackup()
	// cSafe is a Compute watermark below which the budget comparison is
	// provably still false, so the exact ledger fold can be skipped on
	// pure-compute instructions. Soundness: Total() is monotone
	// non-decreasing in Compute with the other fields held fixed (IEEE
	// round-to-nearest addition is monotone in each operand, and the fold
	// composes monotone steps), and the other fields can change only when
	// an instruction enters the memory system. Starting at Compute forces
	// an exact evaluation on the first instruction (energies are
	// non-negative). Whenever the budget comparison matters it is
	// evaluated with the exact original expression, so the epoch boundary
	// — and every downstream bit — is unchanged.
	cSafe := led.Compute
	for {
		if needBk {
			break
		}
		if core.Counts.Executed >= max {
			break
		}
		if tr != nil {
			r.now = now
			r.preStepEmit()
		}
		ns, cl := core.StepFast(now, ms, timing)
		led.Compute += r.instrEnergy(ns)
		now += ns
		runNs += ns
		epochNs += ns
		memTouch := !r.fetchFree || cl.TouchesMemSystem()
		if jit && memTouch {
			needBk = s.NeedsBackup()
		}
		if cl == isa.ClassRegionEnd || cl == isa.ClassFence {
			hist.Add(ri)
			ri = 0
		} else {
			ri++
		}
		if core.Halted || ns >= epochMaxInstrNs ||
			epochNs+epochMaxInstrNs >= segRem {
			break
		}
		if memTouch || led.Compute >= cSafe {
			t := led.Total()
			if t-ledStart >= budget {
				break
			}
			// Re-arm the watermark at half the remaining slack: the
			// half not granted dwarfs the rounding drift between the
			// incremental Compute adds and the fresh fold (~1e-15
			// relative), so crossing the budget while below cSafe is
			// impossible. Near the epoch's end the slack collapses and
			// the floor forces exact evaluation every instruction.
			slack := budget - (t - ledStart)
			if slack > (t+1)*1e-9 {
				cSafe = led.Compute + 0.5*slack
			} else {
				cSafe = led.Compute
			}
		}
	}
	r.now, r.res.RunNs, r.regionInstrs = now, runNs, ri
	// Settle: draw first — the epoch invariant keeps the floor distant,
	// and with the source weaker than the run draw the net flow is
	// negative, so this order can touch neither the zero floor nor the
	// Vmax clamp.
	r.cap.Draw(led.Total() - ledStart)
	r.cap.Add(r.cursor.Harvest(epochNs))
}

// runBatched is the production engine for harvested-power runs: the
// power protocol of runPrecise at every epoch boundary, with the
// per-instruction capacitor work amortized across whole epochs whenever
// the stored energy is provably far from every trigger threshold.
func (r *runner) runBatched() error {
	jit := r.s.JIT()
	if r.tr == nil {
		r.ec = cpu.EpochControl{
			EByNs:       r.eInstrByNs,
			EInstr:      r.p.EInstr,
			PRun:        r.p.PRun,
			Max:         r.opt.MaxInstructions,
			Jit:         jit,
			NeedsBackup: r.s.NeedsBackup,
			Led:         r.led,
			MaxInstrNs:  epochMaxInstrNs,
			OnRegionEnd: r.res.RegionSizes.Add,
		}
	}
	for !r.core.Halted {
		if r.core.Counts.Executed >= r.opt.MaxInstructions {
			return r.budgetErr()
		}
		if err := r.pollCancel(); err != nil {
			return err
		}
		handled, err := r.preInstrEvents()
		if err != nil {
			return err
		}
		if handled {
			continue
		}
		if budget := r.epochBudget(jit); budget > 0 {
			// An epoch retires up to millions of instructions under one
			// settlement; poll unconditionally so cancellation latency is
			// bounded by one epoch, not cancelPollInterval of them.
			if err := r.checkCancel(); err != nil {
				return err
			}
			r.runEpoch(jit, budget)
		} else {
			r.stepPrecise()
		}
	}
	return nil
}

// finish settles background persistence and fills the result.
func (r *runner) finish() {
	r.s.Sync(r.now + 1<<40) // settle all background persistence
	r.s.Finalize()          // drain volatile leftovers so the NVM image is observable
	r.tr.Emit(telemetry.EvHalt, r.now, int64(r.core.Counts.Executed), 0, 0, 0)

	res := r.res
	res.Halted = true
	res.TimeNs = r.now
	res.Counts = r.core.Counts
	res.Ledger = *r.led
	res.Arch = *r.s.Stats()
	if c := r.s.Cache(); c != nil {
		res.CacheHits, res.CacheMisses, res.DirtyEvictions = c.Hits, c.Misses, c.DirtyEvictions
	}
	nvm := r.s.NVM()
	res.NVMReads, res.NVMWrites = nvm.Reads, nvm.Writes
	res.NVMLineReads, res.NVMLineWrites = nvm.LineReads, nvm.LineWrites
	res.NVM = nvm
}
