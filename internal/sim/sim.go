// Package sim is the simulation engine: it couples the in-order core and a
// scheme's memory hierarchy to the capacitor and power trace, injects power
// failures at the exact instants the energy model dictates, drives each
// scheme's backup/recovery protocol, and collects the statistics every
// experiment consumes.
//
// The engine checks the voltage before every instruction. JIT-checkpoint
// schemes trip a backup when V falls to VBackup (after the monitor's
// propagation delay) and then sleep until VRestore; SweepCache executes
// down to Vmin and loses all volatile state. Recharge periods fast-forward
// through the power trace. Energy accounting is ledger-delta based: scheme
// operations attribute energy to the shared ledger, and the engine draws
// exactly the per-step ledger delta from the capacitor, so no joule is
// counted twice.
package sim

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Options configures one run.
type Options struct {
	// Source is the power trace; nil runs outage-free with an ideal
	// supply (the Figure 5 configuration).
	Source trace.Source
	// MaxInstructions aborts runaway executions. 0 means 2e9.
	MaxInstructions uint64
	// StagnationNs bounds one recharge wait. 0 means 60 s.
	StagnationNs int64
	// RegionHistMax bounds the region-size histogram. 0 means 256.
	RegionHistMax int
	// Tracer receives the run's telemetry events; nil (the default)
	// disables tracing at the cost of one branch per emit site.
	Tracer *telemetry.Tracer
}

// Result is everything measured during a run.
type Result struct {
	Scheme string
	Halted bool

	TimeNs    int64 // wall-clock: execution + backup/restore + recharge
	RunNs     int64 // execution time only
	ChargeNs  int64 // powered-off recharge time
	RestoreNs int64 // time spent inside scheme restore work (excl. recharge)
	Outages   uint64

	Counts cpu.Counts
	Ledger energy.Ledger
	Arch   arch.Stats

	CacheHits      uint64
	CacheMisses    uint64
	DirtyEvictions uint64

	NVMReads      uint64
	NVMWrites     uint64
	NVMLineReads  uint64
	NVMLineWrites uint64

	// RegionSizes samples dynamic instructions per region (Figure 12a);
	// populated for sweep- and replay-compiled binaries.
	RegionSizes *stats.Hist

	// NVM is the final memory image, for differential consistency checks.
	NVM *mem.NVM
}

// MissRate returns the L1D miss rate of the run.
func (r *Result) MissRate() float64 {
	tot := r.CacheHits + r.CacheMisses
	if tot == 0 {
		return 0
	}
	return float64(r.CacheMisses) / float64(tot)
}

// ParallelismEfficiency returns Section 6.3's (Tp-Twait)/Tp, clamped to
// [0, 1]: a run with no persistence work reports 1, and accumulated wait
// exceeding Tp (possible when structural stalls pile up across outages)
// reports 0 rather than a nonsensical negative efficiency.
func (r *Result) ParallelismEfficiency() float64 {
	if r.Arch.TpNs == 0 {
		return 1
	}
	eff := float64(r.Arch.TpNs-r.Arch.TwaitNs) / float64(r.Arch.TpNs)
	if eff < 0 {
		return 0
	}
	return eff
}

// OutageRate returns outages per simulated millisecond of wall clock, or
// 0 for an instantaneous (empty) run.
func (r *Result) OutageRate() float64 {
	if r.TimeNs == 0 {
		return 0
	}
	return float64(r.Outages) / (float64(r.TimeNs) / 1e6)
}

// String renders the run as the human-readable report cmd/sweepsim
// prints: timing, instruction mix, energy ledger, cache and NVM traffic,
// and — where the scheme produces them — region and JIT statistics.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "wall clock     %12.3f ms   (run %.3f ms, recharge %.3f ms)\n",
		float64(r.TimeNs)/1e6, float64(r.RunNs)/1e6, float64(r.ChargeNs)/1e6)
	fmt.Fprintf(&b, "instructions   %12d      (loads %d, stores %d, ckpt %d)\n",
		r.Counts.Executed, r.Counts.Loads, r.Counts.Stores, r.Counts.CkptStores)
	fmt.Fprintf(&b, "power outages  %12d\n", r.Outages)
	led := r.Ledger
	fmt.Fprintf(&b, "energy         %12.3f uJ   (compute %.3f, nvm %.3f, persist %.3f,\n",
		led.Total()*1e6, led.Compute*1e6, led.NVM*1e6, led.Persist*1e6)
	fmt.Fprintf(&b, "                                  backup %.3f, restore %.3f, sleep %.3f)\n",
		led.Backup*1e6, led.Restore*1e6, led.Sleep*1e6)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&b, "cache          %11.2f%% miss  (%d hits, %d misses, %d dirty evictions)\n",
			100*r.MissRate(), r.CacheHits, r.CacheMisses, r.DirtyEvictions)
	}
	fmt.Fprintf(&b, "NVM traffic    %12d word reads, %d word writes, %d line reads, %d line writes\n",
		r.NVMReads, r.NVMWrites, r.NVMLineReads, r.NVMLineWrites)
	if r.Arch.RegionsExecuted > 0 {
		fmt.Fprintf(&b, "regions        %12d      (mean %.1f insts, %.1f stores; parallelism eff %.1f%%)\n",
			r.Arch.RegionsExecuted, r.RegionSizes.Mean(),
			r.Arch.StoresPerRegion.Mean(), 100*r.ParallelismEfficiency())
		fmt.Fprintf(&b, "buffer search  %12d      (%d bypassed by empty-bit, %d served misses)\n",
			r.Arch.BufferSearches, r.Arch.BufferBypasses, r.Arch.BufferHits)
	}
	if r.Arch.BackupEvents > 0 {
		fmt.Fprintf(&b, "JIT events     %12d backups, %d restores, %d lines backed up\n",
			r.Arch.BackupEvents, r.Arch.RestoreEvents, r.Arch.LinesBackedUp)
	}
	return b.String()
}

// Metrics converts the run's counters into a telemetry snapshot: every
// ad-hoc Result field becomes a named counter, gauge, or histogram, so
// runs merge uniformly across a parallel experiment matrix.
func (r *Result) Metrics() *telemetry.Snapshot {
	reg := telemetry.NewRegistry()
	reg.Counter("sim.runs").Add(1) // merged snapshots count aggregated runs
	reg.Counter("sim.outages").Add(r.Outages)
	reg.Counter("sim.instructions").Add(r.Counts.Executed)
	reg.Counter("sim.loads").Add(r.Counts.Loads)
	reg.Counter("sim.stores").Add(r.Counts.Stores)
	reg.Counter("sim.ckpt_stores").Add(r.Counts.CkptStores)
	reg.Counter("sim.save_pcs").Add(r.Counts.SavePCs)
	reg.Counter("sim.region_ends").Add(r.Counts.RegionEnds)
	reg.Counter("sim.clwbs").Add(r.Counts.Clwbs)
	reg.Counter("sim.fences").Add(r.Counts.Fences)
	reg.Counter("cache.hits").Add(r.CacheHits)
	reg.Counter("cache.misses").Add(r.CacheMisses)
	reg.Counter("cache.dirty_evictions").Add(r.DirtyEvictions)
	reg.Counter("nvm.reads").Add(r.NVMReads)
	reg.Counter("nvm.writes").Add(r.NVMWrites)
	reg.Counter("nvm.line_reads").Add(r.NVMLineReads)
	reg.Counter("nvm.line_writes").Add(r.NVMLineWrites)
	reg.Counter("arch.regions").Add(r.Arch.RegionsExecuted)
	reg.Counter("arch.buffer_searches").Add(r.Arch.BufferSearches)
	reg.Counter("arch.buffer_bypasses").Add(r.Arch.BufferBypasses)
	reg.Counter("arch.buffer_hits").Add(r.Arch.BufferHits)
	reg.Counter("arch.backups").Add(r.Arch.BackupEvents)
	reg.Counter("arch.restores").Add(r.Arch.RestoreEvents)
	reg.Counter("arch.lines_backed_up").Add(r.Arch.LinesBackedUp)
	reg.Counter("arch.replayed_stores").Add(r.Arch.ReplayedStores)
	reg.Counter("arch.redone_drains").Add(r.Arch.RedoneDrains)

	// Run-phase breakdown: where the wall clock went.
	reg.Gauge("phase.total_ns").Set(float64(r.TimeNs))
	reg.Gauge("phase.run_ns").Set(float64(r.RunNs))
	reg.Gauge("phase.charge_ns").Set(float64(r.ChargeNs))
	reg.Gauge("phase.restore_ns").Set(float64(r.RestoreNs))
	reg.Gauge("phase.waw_stall_ns").Set(float64(r.Arch.WAWStallNs))
	reg.Gauge("phase.fence_stall_ns").Set(float64(r.Arch.FenceStallNs))
	reg.Gauge("phase.clwb_stall_ns").Set(float64(r.Arch.ClwbStallNs))
	reg.Gauge("phase.tp_ns").Set(float64(r.Arch.TpNs))
	reg.Gauge("phase.twait_ns").Set(float64(r.Arch.TwaitNs))

	reg.Gauge("energy.compute_j").Set(r.Ledger.Compute)
	reg.Gauge("energy.nvm_j").Set(r.Ledger.NVM)
	reg.Gauge("energy.persist_j").Set(r.Ledger.Persist)
	reg.Gauge("energy.backup_j").Set(r.Ledger.Backup)
	reg.Gauge("energy.restore_j").Set(r.Ledger.Restore)
	reg.Gauge("energy.sleep_j").Set(r.Ledger.Sleep)
	reg.Gauge("energy.total_j").Set(r.Ledger.Total())

	if r.RegionSizes != nil {
		reg.SetHistogram("region.sizes", r.RegionSizes)
	}
	if r.Arch.StoresPerRegion != nil {
		reg.SetHistogram("region.stores", r.Arch.StoresPerRegion)
	}
	return reg.Snapshot()
}

// debugOutages, enabled by setting the SIM_DEBUG environment variable,
// prints one line per power cycle (failure point, restored PC, voltage) —
// the quickest way to see a recovery protocol misbehaving.
var debugOutages = os.Getenv("SIM_DEBUG") != ""

// ErrStagnation reports a power source too weak to ever recharge the
// capacitor to the restore threshold.
var ErrStagnation = errors.New("sim: stagnation — power source cannot recharge the capacitor")

// InitNVM loads the program's data image and recovery PC slot into the
// scheme's NVM.
func InitNVM(s arch.Scheme, l *ir.Linked) {
	nvm := s.NVM()
	for _, di := range l.Prog.Inits {
		if di.Byte {
			nvm.PokeByte(di.Addr, byte(di.Val))
		} else {
			nvm.PokeWord(di.Addr, di.Val)
		}
	}
	nvm.PokeWord(ir.PCSlotAddr, int64(l.EntryPC))
}

// Run executes the linked program on the scheme until it halts.
func Run(l *ir.Linked, s arch.Scheme, opt Options) (*Result, error) {
	p := s.Params()
	if opt.MaxInstructions == 0 {
		opt.MaxInstructions = 2_000_000_000
	}
	if opt.StagnationNs == 0 {
		opt.StagnationNs = 60_000_000_000
	}
	if opt.RegionHistMax == 0 {
		opt.RegionHistMax = 256
	}

	InitNVM(s, l)
	tr := opt.Tracer
	s.SetTracer(tr)
	core := cpu.New(l.Code, int64(l.EntryPC))
	s.Boot(int64(l.EntryPC))
	led := s.Ledger()
	timing := cpu.StepTiming{CycleNs: p.CycleNs, MulCycles: p.MulCycles, DivCycles: p.DivCycles}

	res := &Result{Scheme: s.Name(), RegionSizes: stats.NewHist(opt.RegionHistMax)}

	cap := energy.NewCapacitor(p.CapacitorF, p.Vmax, p.Vmax)
	var cursor *trace.Cursor
	if opt.Source != nil {
		cursor = trace.NewCursor(opt.Source)
	}

	now := int64(0)
	armed := true
	regionInstrs := 0
	// Forward-progress guard: a configuration whose per-cycle energy
	// window cannot cover even one instruction (plus its own restore
	// draw) would power-cycle forever.
	lastOutageExec := uint64(0)
	zeroProgress := 0

	// drawRun charges the capacitor with harvest and drains run power
	// over an interval where the core is on but not retiring
	// instructions (backup, restore, detection delays).
	drawRun := func(dt int64) {
		if dt <= 0 {
			return
		}
		sec := float64(dt) * 1e-9
		led.Compute += p.PRun * sec
		if cursor != nil {
			cap.Add(cursor.Harvest(dt))
		}
		cap.Draw(p.PRun * sec)
		now += dt
		res.RunNs += dt
	}

	// powerCycle sleeps through a recharge and restores the scheme.
	powerCycle := func() error {
		if core.Counts.Executed == lastOutageExec {
			zeroProgress++
			if zeroProgress > 256 {
				return fmt.Errorf("sim: no forward progress on %s — energy window too small for its backup/restore costs", s.Name())
			}
		} else {
			zeroProgress = 0
		}
		lastOutageExec = core.Counts.Executed
		if debugOutages {
			fmt.Printf("OUTAGE %d at now=%d pc=%d executed=%d V=%.3f r0=%d\n", res.Outages, now, core.PC, core.Counts.Executed, cap.V(), core.Regs[0])
		}
		res.Outages++
		tr.Emit(telemetry.EvOutageBegin, now, int64(res.Outages), 0, 0, cap.V())
		chargeBefore := res.ChargeNs
		s.PowerFail(now)
		elapsed, ok := cursor.ChargeUntil(cap, p.VRestore, p.PSleep, opt.StagnationNs, led)
		now += elapsed
		res.ChargeNs += elapsed
		if !ok {
			return fmt.Errorf("%w (scheme %s, %.1f ms waited)", ErrStagnation, s.Name(), float64(elapsed)/1e6)
		}
		// Restore propagation delay (T_plh) at sleep draw.
		sec := float64(p.RestoreDelayNs) * 1e-9
		led.Sleep += p.PSleep * sec
		cap.Draw(p.PSleep * sec)
		cap.Add(cursor.Harvest(p.RestoreDelayNs))
		now += p.RestoreDelayNs
		res.ChargeNs += p.RestoreDelayNs

		before := led.Total()
		restoreStart := now
		pc, rcost := s.Restore(now, &core.Regs)
		if debugOutages {
			fmt.Printf("  RESTORE -> pc=%d V=%.3f r0=%d r13=%d\n", pc, cap.V(), core.Regs[0], core.Regs[13])
		}
		tr.Emit(telemetry.EvRestore, restoreStart, pc, rcost.Ns, 0, 0)
		core.PC = pc
		cap.Draw(led.Total() - before)
		drawRun(rcost.Ns)
		res.RestoreNs += rcost.Ns
		// The restoration itself was fed while still tethered to the
		// charging path: top the capacitor back up to the restore
		// threshold before execution resumes, so arbitrarily expensive
		// restores lengthen the charge instead of eating the run window.
		if cap.V() < p.VRestore {
			elapsed, ok := cursor.ChargeUntil(cap, p.VRestore, p.PSleep, opt.StagnationNs, led)
			now += elapsed
			res.ChargeNs += elapsed
			if !ok {
				return fmt.Errorf("%w (scheme %s, restore top-up)", ErrStagnation, s.Name())
			}
		}
		regionInstrs = 0
		armed = true
		tr.Emit(telemetry.EvOutageEnd, now, int64(res.Outages), res.ChargeNs-chargeBefore, 0, cap.V())
		return nil
	}

	for !core.Halted {
		if core.Counts.Executed >= opt.MaxInstructions {
			return res, fmt.Errorf("sim: instruction budget (%d) exceeded on %s", opt.MaxInstructions, s.Name())
		}
		if cursor != nil {
			// Structural backup request (NvMR rename-table full).
			if s.JIT() && s.NeedsBackup() {
				before := led.Total()
				bcost := s.Backup(now, &core.Regs, core.PC)
				tr.Emit(telemetry.EvBackup, now, core.PC, bcost.Ns, 0, 0)
				cap.Draw(led.Total() - before)
				drawRun(bcost.Ns)
			}
			// Voltage-triggered JIT backup.
			if s.JIT() && armed && cap.V() <= p.VBackup {
				drawRun(p.BackupDelayNs) // T_phl detection delay
				before := led.Total()
				bcost := s.Backup(now, &core.Regs, core.PC)
				tr.Emit(telemetry.EvBackup, now, core.PC, bcost.Ns, 0, 0)
				cap.Draw(led.Total() - before)
				drawRun(bcost.Ns)
				armed = false
				if !s.ContinuesAfterBackup() {
					if err := powerCycle(); err != nil {
						return res, err
					}
					continue
				}
			}
			// Hard brown-out: SweepCache by design, NvMR while
			// speculating past its backup.
			if cap.V() < p.Vmin {
				if err := powerCycle(); err != nil {
					return res, err
				}
				continue
			}
			// Re-arm once the source lifts the voltage back up
			// (NvMR keeps executing through this window).
			if s.JIT() && !armed && cap.V() > p.VBackup+0.02 {
				armed = true
			}
		}

		in := &l.Code[core.PC]
		op := in.Op
		if tr != nil {
			// Compiler-inserted checkpoint stores; the nil guard keeps the
			// per-instruction switch off the disabled hot path.
			switch op {
			case isa.OpCkptSt:
				tr.Emit(telemetry.EvCkptStore, now, int64(in.Src2), 0, 0, 0)
			case isa.OpSavePC:
				tr.Emit(telemetry.EvSavePC, now, in.Imm, 0, 0, 0)
			}
		}
		before := led.Total()
		st := core.Step(now, s, timing)
		led.Compute += p.EInstr + p.PRun*float64(st.Ns)*1e-9
		if cursor != nil {
			cap.Add(cursor.Harvest(st.Ns))
		}
		cap.Draw(led.Total() - before)
		now += st.Ns
		res.RunNs += st.Ns

		if op == isa.OpRegionEnd || op == isa.OpFence {
			res.RegionSizes.Add(regionInstrs)
			regionInstrs = 0
		} else {
			regionInstrs++
		}
	}

	s.Sync(now + 1<<40) // settle all background persistence
	s.Finalize()        // drain volatile leftovers so the NVM image is observable
	tr.Emit(telemetry.EvHalt, now, int64(core.Counts.Executed), 0, 0, 0)

	res.Halted = true
	res.TimeNs = now
	res.Counts = core.Counts
	res.Ledger = *led
	res.Arch = *s.Stats()
	if c := s.Cache(); c != nil {
		res.CacheHits, res.CacheMisses, res.DirtyEvictions = c.Hits, c.Misses, c.DirtyEvictions
	}
	nvm := s.NVM()
	res.NVMReads, res.NVMWrites = nvm.Reads, nvm.Writes
	res.NVMLineReads, res.NVMLineWrites = nvm.LineReads, nvm.LineWrites
	res.NVM = nvm
	return res, nil
}
