package exp

import (
	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/trace"
)

// AblationResult isolates the contribution of each SweepCache design
// choice that DESIGN.md calls out: the dual-buffer region-level
// parallelism (Section 3.3, Figure 3), the empty-bit search (Section 4.4),
// and the compiler's loop unrolling (Section 4.1).
type AblationResult struct {
	// Geomean speedups over NVP, outage-free and under RFOffice.
	Full         [2]float64 // default SweepCache (Empty-Bit)
	SingleBuffer [2]float64 // Figure 3a: no region-level parallelism
	NVMSearch    [2]float64 // no empty-bit
	NoUnroll     [2]float64 // UnrollCap = 1
	Inline       [2]float64 // + Section 5 small-function inlining
	// Efficiency of the full design vs the single-buffer baseline
	// quantifies how much persistence latency dual-buffering hides.
	SingleBufferEff float64
}

// Ablation runs each single-change variant against the full design.
func (c *Context) Ablation() (*AblationResult, error) {
	r := &AblationResult{}
	pr := trace.RFOffice

	variants := []struct {
		name string
		mod  func(p config.Params) config.Params
		kind arch.Kind
		dst  *[2]float64
	}{
		{"full", func(p config.Params) config.Params { return p }, arch.SweepEmptyBit, &r.Full},
		{"single-buffer", func(p config.Params) config.Params { p.SweepSingleBuffer = true; return p }, arch.SweepEmptyBit, &r.SingleBuffer},
		{"nvm-search", func(p config.Params) config.Params { return p }, arch.SweepNVMSearch, &r.NVMSearch},
		{"no-unroll", func(p config.Params) config.Params { p.CompilerUnrollCap = 1; return p }, arch.SweepEmptyBit, &r.NoUnroll},
		{"inline", func(p config.Params) config.Params { p.CompilerInline = true; return p }, arch.SweepEmptyBit, &r.Inline},
	}

	c.printf("Ablation — SweepCache design choices (geomean speedup over NVP)\n")
	c.printf("%-14s %12s %12s\n", "variant", "outage-free", "RFOffice")
	for _, v := range variants {
		p := v.mod(c.Params)
		free, err := c.runMatrix([]arch.Kind{v.kind}, nil, p)
		if err != nil {
			return nil, err
		}
		out, err := c.runMatrix([]arch.Kind{v.kind}, &pr, p)
		if err != nil {
			return nil, err
		}
		v.dst[0] = free.GeomeanSpeedup(v.kind, nil)
		v.dst[1] = out.GeomeanSpeedup(v.kind, nil)
		if v.name == "single-buffer" {
			// How much wall-clock the dual buffer saves outage-free.
			var tp, tw int64
			for _, n := range free.Names {
				res := free.Get(n, v.kind)
				tp += res.Arch.TpNs
				tw += res.Arch.TwaitNs
			}
			if tp > 0 {
				r.SingleBufferEff = float64(tp-tw) / float64(tp)
			}
		}
		c.printf("%-14s %12.2f %12.2f\n", v.name, v.dst[0], v.dst[1])
	}
	c.printf("\n")
	return r, nil
}
