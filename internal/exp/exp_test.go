package exp

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/trace"
)

// quick returns a reduced-workload context for test speed.
func quickCtx() *Context {
	c := DefaultContext()
	c.Quick = true
	return c
}

// TestFig5Shape asserts the paper's headline outage-free ordering on the
// quick subset: NVSRAM > Sweep > Replay, and Empty-Bit >= NVM Search.
func TestFig5Shape(t *testing.T) {
	r, err := quickCtx().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	g := r.GeoAll
	if !(g[arch.NVSRAM] > g[arch.SweepEmptyBit]) {
		t.Errorf("NVSRAM (%.2f) must beat Sweep (%.2f) outage-free", g[arch.NVSRAM], g[arch.SweepEmptyBit])
	}
	if !(g[arch.SweepEmptyBit] > g[arch.ReplayCache]) {
		t.Errorf("Sweep (%.2f) must beat Replay (%.2f)", g[arch.SweepEmptyBit], g[arch.ReplayCache])
	}
	if g[arch.SweepEmptyBit] < g[arch.SweepNVMSearch]*0.99 {
		t.Errorf("Empty-Bit (%.2f) slower than NVM Search (%.2f)", g[arch.SweepEmptyBit], g[arch.SweepNVMSearch])
	}
	// Every speedup over the cache-free NVP must exceed 1.
	for _, k := range evalKinds {
		if g[k] < 1.5 {
			t.Errorf("%v geomean %.2f — caching should clearly beat NVP", k, g[k])
		}
	}
}

// TestFig7Shape asserts the with-outage inversion: SweepCache overtakes
// NVSRAM under the RFOffice trace.
func TestFig7Shape(t *testing.T) {
	r, err := quickCtx().Fig7()
	if err != nil {
		t.Fatal(err)
	}
	g := r.GeoAll
	if !(g[arch.SweepEmptyBit] > g[arch.NVSRAM]) {
		t.Errorf("with outages Sweep (%.2f) must beat NVSRAM (%.2f)", g[arch.SweepEmptyBit], g[arch.NVSRAM])
	}
	if !(g[arch.NVSRAM] > g[arch.ReplayCache]) {
		t.Errorf("with outages NVSRAM (%.2f) must beat Replay (%.2f)", g[arch.NVSRAM], g[arch.ReplayCache])
	}
}

func TestParallelismEfficiencyHigh(t *testing.T) {
	r, err := quickCtx().Parallelism()
	if err != nil {
		t.Fatal(err)
	}
	if r.OutageFree < 0.75 || r.OutageFree > 1 {
		t.Errorf("outage-free efficiency %.2f out of plausible range", r.OutageFree)
	}
	if r.WithOutage < 0.75 || r.WithOutage > 1 {
		t.Errorf("with-outage efficiency %.2f out of plausible range", r.WithOutage)
	}
}

func TestFig12Distributions(t *testing.T) {
	r, err := quickCtx().Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanStores <= 0 || r.MeanStores > float64(DefaultContext().Params.StoreThreshold) {
		t.Errorf("mean stores/region %.2f outside (0, threshold]", r.MeanStores)
	}
	if r.MeanRegionSize <= r.MeanStores {
		t.Error("regions must contain more instructions than stores")
	}
	cdf := r.StoresPerRegion.CDF()
	if cdf[len(cdf)-1] < 0.99 {
		t.Error("stores/region CDF should reach ~1 within the threshold")
	}
}

func TestFig13EnergyBreakdown(t *testing.T) {
	r, err := quickCtx().Fig13()
	if err != nil {
		t.Fatal(err)
	}
	// SweepCache performs no JIT backups and only trivial restores.
	if r.BackupPct[arch.SweepEmptyBit] != 0 {
		t.Error("SweepCache backup energy nonzero")
	}
	if r.RestorePct[arch.SweepEmptyBit] > 5 {
		t.Errorf("SweepCache restore share %.2f%% too large", r.RestorePct[arch.SweepEmptyBit])
	}
	// Every scheme consumes far less total energy than NVP.
	for _, k := range fig13Kinds {
		if r.TotalPct[k] >= 60 {
			t.Errorf("%v total energy %.1f%% of NVP — caching should slash it", k, r.TotalPct[k])
		}
	}
}

func TestHWCost(t *testing.T) {
	r := quickCtx().HWCost()
	if r.Bits != 134 {
		t.Errorf("hardware cost %d bits, want the paper's 134", r.Bits)
	}
}

func TestICountOrdering(t *testing.T) {
	r, err := quickCtx().ICount()
	if err != nil {
		t.Fatal(err)
	}
	// SweepCache must execute more instructions than NVSRAM (checkpoint
	// stores + boundary code).
	if r.SweepOverNVSRAM <= 1 {
		t.Errorf("Sweep/NVSRAM instruction ratio %.3f <= 1", r.SweepOverNVSRAM)
	}
}

func TestTable1Prints(t *testing.T) {
	var sb strings.Builder
	c := quickCtx()
	c.Out = &sb
	c.Table1()
	out := sb.String()
	for _, want := range []string{"470nF", "3.5/2.8", "64"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestMatrixAccessors(t *testing.T) {
	c := quickCtx()
	pr := trace.RFOffice
	m, err := c.runMatrix([]arch.Kind{arch.SweepEmptyBit}, &pr, c.Params)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Names) == 0 {
		t.Fatal("empty matrix")
	}
	n := m.Names[0]
	if m.Get(n, arch.NVP) == nil || m.Get(n, arch.SweepEmptyBit) == nil {
		t.Fatal("missing cells")
	}
	if s := m.Speedup(n, arch.SweepEmptyBit); s <= 0 {
		t.Errorf("speedup %f", s)
	}
	if g := m.GeomeanSpeedup(arch.SweepEmptyBit, nil); g <= 0 {
		t.Errorf("geomean %f", g)
	}
}

func TestWorkloadSubset(t *testing.T) {
	full := DefaultContext()
	if len(full.Workloads()) != 26 {
		t.Error("full context must use all workloads")
	}
	q := quickCtx()
	n := len(q.Workloads())
	if n == 0 || n >= 26 {
		t.Errorf("quick subset size %d", n)
	}
}

func TestVminGainPositive(t *testing.T) {
	r, err := quickCtx().Vmin()
	if err != nil {
		t.Fatal(err)
	}
	if r.Low <= r.Default {
		t.Errorf("lower Vmin must help: %.2f vs %.2f", r.Low, r.Default)
	}
}

func TestWTBetweenNVPAndNVSRAM(t *testing.T) {
	r, err := quickCtx().WT()
	if err != nil {
		t.Fatal(err)
	}
	if r.OutageFree <= 1 {
		t.Errorf("WT-VCache should beat the cache-free NVP: %.2f", r.OutageFree)
	}
	// Section 2.2: the per-store NVM write keeps WT well below the
	// write-back designs.
	fig5, err := quickCtx().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if r.OutageFree >= fig5.GeoAll[arch.NVSRAM] {
		t.Errorf("WT (%.2f) should not reach NVSRAM (%.2f)", r.OutageFree, fig5.GeoAll[arch.NVSRAM])
	}
}
