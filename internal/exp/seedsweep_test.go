package exp

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/arch"
	"repro/internal/journal"
	"repro/internal/trace"
)

// sweepCtx is a one-workload sweep configuration small enough for tests.
func sweepCtx(seeds, width int) *Context {
	c := DefaultContext()
	c.Only = []string{"sha"}
	c.Seeds = seeds
	c.BatchWidth = width
	return c
}

// TestSeedSweepMatchesScalarMatrix pins the sweep's per-seed results to
// the scalar matrix path: for every seed, the sweep's speedup sample must
// equal the single-seed matrix run under that seed, because the batched
// lanes are bit-exact against scalar runs.
func TestSeedSweepMatchesScalarMatrix(t *testing.T) {
	const seeds = 3
	c := sweepCtx(seeds, 2) // width 2 forces a multi-chunk cell
	r, err := c.SeedSweep(trace.RFHome, []arch.Kind{arch.SweepEmptyBit})
	if err != nil {
		t.Fatal(err)
	}
	sc := r.Get("sha", arch.SweepEmptyBit)
	if sc.N != seeds {
		t.Fatalf("cell aggregated %d seeds, want %d", sc.N, seeds)
	}

	var spd []float64
	for s := int64(1); s <= seeds; s++ {
		mc := DefaultContext()
		mc.Only = []string{"sha"}
		mc.Seed = s
		m, err := mc.runMatrix([]arch.Kind{arch.SweepEmptyBit}, &[]trace.Profile{trace.RFHome}[0], mc.Params)
		if err != nil {
			t.Fatal(err)
		}
		spd = append(spd, m.Speedup("sha", arch.SweepEmptyBit))
	}
	mean := (spd[0] + spd[1] + spd[2]) / 3
	if diff := sc.Mean - mean; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("sweep mean %.15g != scalar per-seed mean %.15g", sc.Mean, mean)
	}
	if sc.Half <= 0 {
		t.Fatalf("CI half-width %g, want > 0 for %d distinct seeds", sc.Half, seeds)
	}
}

// TestSeedSweepPerSeedErrors asserts satellite semantics: a failing
// multi-seed cell reports one typed *CellError per seed, each carrying
// its own seed identity — not one blended error for the cell. The
// failure here is a journal whose file is already closed, so every
// completed seed's durability append fails independently.
func TestSeedSweepPerSeedErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	jn, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	jn.Close() // sabotage: appends now fail, lookups still work

	c := sweepCtx(2, 8)
	c.Journal = jn
	_, err = c.SeedSweep(trace.RFHome, []arch.Kind{arch.SweepEmptyBit})
	if err == nil {
		t.Fatal("sweep with a broken journal returned nil error")
	}

	// Flatten the joined error and index the CellErrors by identity.
	seen := map[string]map[int64]bool{}
	var walk func(error)
	walk = func(e error) {
		var ce *CellError
		if errors.As(e, &ce) {
			if seen[ce.Scheme] == nil {
				seen[ce.Scheme] = map[int64]bool{}
			}
			seen[ce.Scheme][ce.Seed] = true
		}
		if mu, ok := e.(interface{ Unwrap() []error }); ok {
			for _, sub := range mu.Unwrap() {
				walk(sub)
			}
		}
	}
	walk(err)
	for _, scheme := range []string{"NVP", arch.SweepEmptyBit.String()} {
		if len(seen[scheme]) != 2 || !seen[scheme][1] || !seen[scheme][2] {
			t.Fatalf("scheme %s reported seeds %v, want individual errors for seeds 1 and 2 (full error: %v)",
				scheme, seen[scheme], err)
		}
	}
}

// TestSeedSweepCanceledCollapses pins the complementary behavior: under
// cancellation the interrupted seeds collapse into one summary error
// (errors.Is-able as context.Canceled) instead of seeds× noise.
func TestSeedSweepCanceledCollapses(t *testing.T) {
	c := sweepCtx(3, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.Ctx = ctx

	_, err := c.SeedSweep(trace.RFHome, []arch.Kind{arch.SweepEmptyBit})
	if err == nil {
		t.Fatal("pre-canceled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, Canceled) = false: %v", err)
	}
}

// TestSeedSweepJournalResume proves per-seed durability: a sweep journals
// one cell per (workload, scheme, seed), and a wider rerun reuses every
// proven seed while appending only the new ones.
func TestSeedSweepJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	jn, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c := sweepCtx(2, 8)
	c.Journal = jn
	r1, err := c.SeedSweep(trace.RFHome, []arch.Kind{arch.SweepEmptyBit})
	if err != nil {
		t.Fatal(err)
	}
	appended := jn.Stats().Appends
	if appended != 4 { // (NVP + SweepEmptyBit) × 2 seeds
		t.Fatalf("first sweep journaled %d cells, want 4", appended)
	}
	jn.Close()

	jn2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	c2 := sweepCtx(3, 8)
	c2.Journal = jn2
	r2, err := c2.SeedSweep(trace.RFHome, []arch.Kind{arch.SweepEmptyBit})
	if err != nil {
		t.Fatal(err)
	}
	st := jn2.Stats()
	if st.Loaded != 4 || st.Appends != 2 {
		t.Fatalf("resume loaded %d / appended %d cells, want 4 / 2", st.Loaded, st.Appends)
	}
	// Seeds 1-2 were reconstructed from the journal; the 3-seed mean must
	// still be consistent with the 2-seed mean (same underlying samples).
	a := r1.Get("sha", arch.SweepEmptyBit)
	b := r2.Get("sha", arch.SweepEmptyBit)
	if a.N != 2 || b.N != 3 {
		t.Fatalf("seed counts %d/%d, want 2/3", a.N, b.N)
	}
}
