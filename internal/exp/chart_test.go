package exp

import (
	"strings"
	"testing"

	"repro/internal/arch"
)

func TestBarChartRendering(t *testing.T) {
	out := barChart("title", []barRow{
		{"alpha", 10},
		{"b", 5},
		{"longest-label", 0},
	}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 || lines[0] != "title" {
		t.Fatalf("layout:\n%s", out)
	}
	// The max value fills the width; half value fills half.
	if !strings.Contains(lines[1], strings.Repeat("█", 20)) {
		t.Errorf("max bar not full width: %q", lines[1])
	}
	if !strings.Contains(lines[2], strings.Repeat("█", 10)) || strings.Contains(lines[2], strings.Repeat("█", 11)) {
		t.Errorf("half bar wrong: %q", lines[2])
	}
	if strings.Contains(lines[3], "█") {
		t.Errorf("zero bar drew blocks: %q", lines[3])
	}
}

func TestBarChartEmptyAndZeroMax(t *testing.T) {
	out := barChart("t", []barRow{{"a", 0}}, 10)
	if !strings.Contains(out, "0.00") {
		t.Error("zero row missing")
	}
	if out := barChart("t", nil, 10); !strings.HasPrefix(out, "t\n") {
		t.Error("empty chart")
	}
}

func TestSpeedupChartAndCSV(t *testing.T) {
	r, err := quickCtx().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	chart := r.Chart()
	for _, k := range evalKinds {
		if !strings.Contains(chart, k.String()) {
			t.Errorf("chart missing %v:\n%s", k, chart)
		}
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	csv := sb.String()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	// Header + one row per workload + geomean.
	if len(lines) != len(r.Matrix.Names)+2 {
		t.Errorf("csv rows = %d, want %d", len(lines), len(r.Matrix.Names)+2)
	}
	if !strings.HasPrefix(lines[0], "benchmark,") {
		t.Error("csv header")
	}
	if !strings.HasPrefix(lines[len(lines)-1], "geomean,") {
		t.Error("csv geomean row")
	}
}

func TestFig12CSV(t *testing.T) {
	r, err := quickCtx().Fig12()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) < 100 {
		t.Errorf("cdf rows = %d", len(lines))
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "1.000000") {
		t.Errorf("CDF does not reach 1: %q", last)
	}
}

func TestRecoveryExperiment(t *testing.T) {
	r, err := quickCtx().Recovery()
	if err != nil {
		t.Fatal(err)
	}
	// NVSRAM-E restores the whole cache: slowest restore of the JIT set.
	if r.AvgRestoreNs[arch.NVSRAME] <= r.AvgRestoreNs[arch.NVP] {
		t.Errorf("NVSRAM-E restore (%f) not slower than NVP (%f)",
			r.AvgRestoreNs[arch.NVSRAME], r.AvgRestoreNs[arch.NVP])
	}
	for k, v := range r.AvgRestoreNs {
		if v < 0 {
			t.Errorf("%v: negative restore time", k)
		}
	}
}

func TestAblationOrdering(t *testing.T) {
	r, err := quickCtx().Ablation()
	if err != nil {
		t.Fatal(err)
	}
	if r.Full[0] <= r.NoUnroll[0] {
		t.Errorf("unrolling should help outage-free: full %.2f vs no-unroll %.2f",
			r.Full[0], r.NoUnroll[0])
	}
	if r.Full[1] <= r.SingleBuffer[1] {
		t.Errorf("dual buffering should help under outages: full %.2f vs single %.2f",
			r.Full[1], r.SingleBuffer[1])
	}
	if !strings.Contains(r.Chart(), "single-buffer") {
		t.Error("ablation chart missing variant")
	}
}
