package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/arch"
	"repro/internal/trace"
)

// The WriteCSV methods export experiment results as plain CSV so the
// figures can be re-plotted outside the terminal (gnuplot, matplotlib,
// spreadsheets). Column order is stable.

// WriteCSV exports a Figure 5/6/7-style result: one row per workload.
func (r *SpeedupResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "benchmark,replaycache,nvsram,sweep_nvmsearch,sweep_emptybit"); err != nil {
		return err
	}
	for _, n := range r.Matrix.Names {
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f,%.4f\n", n,
			r.Matrix.Speedup(n, arch.ReplayCache),
			r.Matrix.Speedup(n, arch.NVSRAM),
			r.Matrix.Speedup(n, arch.SweepNVMSearch),
			r.Matrix.Speedup(n, arch.SweepEmptyBit)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "geomean,%.4f,%.4f,%.4f,%.4f\n",
		r.GeoAll[arch.ReplayCache], r.GeoAll[arch.NVSRAM],
		r.GeoAll[arch.SweepNVMSearch], r.GeoAll[arch.SweepEmptyBit])
	return err
}

// WriteCSV exports the Figure 9 capacitor sweep: one row per capacitor.
func (r *CapacitorSweepResult) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "capacitor_f,replaycache,nvsram,sweep,sweep_abs,outages_nvp,outages_replay,outages_nvsram,outages_sweep"); err != nil {
		return err
	}
	caps := append([]float64(nil), r.Caps...)
	sort.Float64s(caps)
	for _, cf := range caps {
		if _, err := fmt.Fprintf(w, "%g,%.4f,%.4f,%.4f,%.4f,%.2f,%.2f,%.2f,%.2f\n", cf,
			r.Relative[cf][arch.ReplayCache], r.Relative[cf][arch.NVSRAM],
			r.Relative[cf][arch.SweepEmptyBit], r.Absolute[cf][arch.SweepEmptyBit],
			r.Outages[cf][arch.NVP], r.Outages[cf][arch.ReplayCache],
			r.Outages[cf][arch.NVSRAM], r.Outages[cf][arch.SweepEmptyBit]); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the Figure 12 CDFs: value, cdf_region_size, cdf_stores.
func (r *Fig12Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "value,cdf_region_size,cdf_stores_per_region"); err != nil {
		return err
	}
	sizes := r.RegionSizes.CDF()
	stores := r.StoresPerRegion.CDF()
	n := len(sizes)
	if len(stores) > n {
		n = len(stores)
	}
	for i := 0; i < n; i++ {
		sv, st := 1.0, 1.0
		if i < len(sizes) {
			sv = sizes[i]
		}
		if i < len(stores) {
			st = stores[i]
		}
		if _, err := fmt.Fprintf(w, "%d,%.6f,%.6f\n", i, sv, st); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV exports the Figure 10 per-trace geomeans.
func (r *Fig10Result) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "trace,replaycache,nvsram,sweep"); err != nil {
		return err
	}
	for _, pr := range trace.Profiles() {
		if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f\n", pr,
			r.Speedup[pr][arch.ReplayCache], r.Speedup[pr][arch.NVSRAM],
			r.Speedup[pr][arch.SweepEmptyBit]); err != nil {
			return err
		}
	}
	return nil
}
