package exp

// Resilience coverage for the experiment engine: the kill/resume
// invariant (a journaled run interrupted mid-matrix resumes to
// byte-identical digests), panic isolation, prompt cancellation, input
// validation, and the no-goroutine-leak guarantee.

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// resilienceCtx is the shared quick configuration: 8 workloads x 8
// schemes under RF-Home, the matrix the acceptance criterion names.
func resilienceCtx() (*Context, []arch.Kind, *trace.Profile) {
	c := DefaultContext()
	c.Quick = true
	pr := trace.RFHome
	return c, arch.AllKinds(), &pr
}

// cleanDigests runs the matrix uninterrupted and returns the per-cell
// record digests plus the matrix itself.
func cleanDigests(t *testing.T) (map[journal.Cell]string, *Matrix) {
	t.Helper()
	c, kinds, pr := resilienceCtx()
	m, err := c.runMatrix(kinds, pr, c.Params)
	if err != nil {
		t.Fatal(err)
	}
	fp := c.Params.Fingerprint()
	want := map[journal.Cell]string{}
	for _, name := range m.Names {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range kinds {
			id := c.cellID(matrixJob{w: w, k: k}, profileName(pr), fp)
			want[id] = journal.FromResult(m.Get(name, k)).Digest()
		}
	}
	return want, m
}

// TestKillResumeInvariant is the acceptance criterion: interrupt a
// journaled 8x8 matrix mid-run, then resume with a fresh journal handle
// (a new process, as far as the journal is concerned) and require the
// final per-cell digests to be identical to an uninterrupted run's.
func TestKillResumeInvariant(t *testing.T) {
	want, cleanM := cleanDigests(t)
	path := filepath.Join(t.TempDir(), "cells.jsonl")

	// Phase 1: run with an injected cancellation partway through the
	// 64-cell matrix. The run must fail with a cancellation error, and
	// whatever completed must already be durable.
	j1, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j1.Fsync = false
	c1, kinds, pr := resilienceCtx()
	c1.Journal = j1
	c1.Chaos = chaos.New(chaos.Config{Seed: 11, CancelAfter: 20})
	if _, err := c1.runMatrix(kinds, pr, c1.Params); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled in the chain", err)
	}
	j1.Close()
	st := j1.Stats()
	if st.Appends == 0 {
		t.Fatal("nothing was journaled before the cancellation — resume would restart from scratch")
	}
	if st.Appends >= 64 {
		t.Fatalf("all %d cells completed despite the injected cancel — nothing was interrupted", st.Appends)
	}
	t.Logf("interrupted with %d/64 cells journaled", st.Appends)

	// Phase 2: resume. A fresh Open replays the journal exactly as a new
	// process would; the run completes the missing cells only.
	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	j2.Fsync = false
	if got := j2.Stats().Loaded; got != st.Appends {
		t.Fatalf("journal reload recovered %d cells, %d were appended", got, st.Appends)
	}
	c2, kinds, pr := resilienceCtx()
	c2.Journal = j2
	m, err := c2.runMatrix(kinds, pr, c2.Params)
	if err != nil {
		t.Fatalf("resume run failed: %v", err)
	}
	if hits := j2.Stats().Hits; hits != st.Appends {
		t.Errorf("resume re-simulated journaled cells: %d hits, want %d", hits, st.Appends)
	}

	// Every cell's journal record must hash identically to the
	// uninterrupted run, whether it was simulated before or after the
	// interruption.
	for id, wd := range want {
		rec, ok := j2.Lookup(id)
		if !ok {
			t.Errorf("cell %s/%s missing from resumed journal", id.Workload, id.Scheme)
			continue
		}
		if d := rec.Digest(); d != wd {
			t.Errorf("digest mismatch for %s/%s:\n clean   %s\n resumed %s",
				id.Workload, id.Scheme, wd, d)
		}
	}
	// And the resumed matrix must serve the figures identically.
	for _, name := range m.Names {
		for _, k := range kinds {
			a, b := cleanM.Get(name, k), m.Get(name, k)
			if a.TimeNs != b.TimeNs || a.Ledger != b.Ledger || a.Counts != b.Counts {
				t.Errorf("resumed result diverges for %s/%v", name, k)
			}
		}
	}
}

// TestPanicIsolationAndConvergence injects worker panics at 30%
// probability and requires: (1) a failing run still journals its healthy
// cells and reports every panicked cell as a *CellError with a stack;
// (2) repeated resumes converge (attempt-salted decisions redraw), ending
// byte-identical to a clean run.
func TestPanicIsolationAndConvergence(t *testing.T) {
	want, _ := cleanDigests(t)
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Fsync = false

	c, kinds, pr := resilienceCtx()
	c.Journal = j
	c.Chaos = chaos.New(chaos.Config{Seed: 5, PanicProb: 0.3})

	var lastErr error
	for attempt := 1; ; attempt++ {
		if attempt > 20 {
			t.Fatalf("matrix did not converge in 20 attempts; last error: %v", lastErr)
		}
		m, err := c.runMatrix(kinds, pr, c.Params)
		if err == nil {
			if m == nil || len(m.Results) == 0 {
				t.Fatal("converged run returned an empty matrix")
			}
			break
		}
		lastErr = err
		var ce *CellError
		if !errors.As(err, &ce) {
			t.Fatalf("attempt %d: error chain lacks *CellError: %v", attempt, err)
		}
		if ce.Stack == nil {
			t.Fatalf("attempt %d: panicked cell has no captured stack: %v", attempt, ce)
		}
		if !strings.Contains(ce.Err.Error(), "injected panic") {
			t.Fatalf("attempt %d: unexpected cell failure: %v", attempt, ce)
		}
	}
	if c.Chaos.Panics() == 0 {
		t.Fatal("no panics were injected — the test exercised nothing")
	}
	if j.Len() != len(want) {
		t.Fatalf("converged journal holds %d cells, want %d", j.Len(), len(want))
	}
	for id, wd := range want {
		rec, ok := j.Lookup(id)
		if !ok || rec.Digest() != wd {
			t.Errorf("post-convergence digest mismatch for %s/%s", id.Workload, id.Scheme)
		}
	}
}

// TestRunMatrixNoGoroutineLeak drives the pool through cancellation and
// panic storms and requires the process goroutine count to settle back:
// no orphaned workers, whatever the exit path.
func TestRunMatrixNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	// Cancelled mid-run.
	c, kinds, pr := resilienceCtx()
	c.Chaos = chaos.New(chaos.Config{Seed: 1, CancelAfter: 5})
	if _, err := c.runMatrix(kinds, pr, c.Params); err == nil {
		t.Fatal("cancelled run reported success")
	}
	// Every cell panicking.
	c2, kinds, pr := resilienceCtx()
	c2.Chaos = chaos.New(chaos.Config{Seed: 2, PanicProb: 1})
	if _, err := c2.runMatrix(kinds, pr, c2.Params); err == nil {
		t.Fatal("all-panic run reported success")
	}
	// Pre-cancelled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c3, kinds, pr := resilienceCtx()
	c3.Ctx = ctx
	if _, err := c3.runMatrix(kinds, pr, c3.Params); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunMatrixInputValidation: malformed params and empty workload sets
// fail up front with descriptive errors, before any worker spawns.
func TestRunMatrixInputValidation(t *testing.T) {
	c, kinds, pr := resilienceCtx()
	p := c.Params
	p.CapacitorF = -1
	if _, err := c.runMatrix(kinds, pr, p); err == nil || !strings.Contains(err.Error(), "config:") {
		t.Errorf("malformed params: err = %v", err)
	}

	c2, kinds, pr := resilienceCtx()
	c2.Only = []string{"no-such-workload"}
	if _, err := c2.runMatrix(kinds, pr, c2.Params); err == nil || !strings.Contains(err.Error(), "empty workload") {
		t.Errorf("empty workload set: err = %v", err)
	}
}

// TestCellTimeout bounds one cell's wall clock at an impossible 1 ns:
// every cell must fail with DeadlineExceeded as a genuine per-cell error
// (the matrix itself was not cancelled).
func TestCellTimeout(t *testing.T) {
	c, _, pr := resilienceCtx()
	c.Only = []string{"sha"}
	c.CellTimeout = time.Nanosecond
	_, err := c.runMatrix([]arch.Kind{arch.SweepEmptyBit}, pr, c.Params)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in the chain", err)
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *CellError", err)
	}
}
