package exp

import (
	"repro/internal/arch"
	"repro/internal/stats"
	"repro/internal/trace"
)

// evalKinds are the four bars of Figures 5-7.
var evalKinds = []arch.Kind{arch.ReplayCache, arch.NVSRAM, arch.SweepNVMSearch, arch.SweepEmptyBit}

// SpeedupResult is the outcome of one Figure 5/6/7-style experiment.
type SpeedupResult struct {
	Title string
	// PerWorkload[name][kind] = speedup over NVP.
	Matrix *Matrix
	// Geomeans per scheme: MediaBench, MiBench, all.
	GeoMedia map[arch.Kind]float64
	GeoMi    map[arch.Kind]float64
	GeoAll   map[arch.Kind]float64
}

// speedupFigure runs the common shape of Figures 5, 6 and 7.
func (c *Context) speedupFigure(title string, profile *trace.Profile) (*SpeedupResult, error) {
	m, err := c.runMatrix(evalKinds, profile, c.Params)
	if err != nil {
		return nil, err
	}
	media, mi := c.suites()
	r := &SpeedupResult{
		Title:    title,
		Matrix:   m,
		GeoMedia: map[arch.Kind]float64{},
		GeoMi:    map[arch.Kind]float64{},
		GeoAll:   map[arch.Kind]float64{},
	}
	for _, k := range evalKinds {
		r.GeoMedia[k] = m.GeomeanSpeedup(k, media)
		r.GeoMi[k] = m.GeomeanSpeedup(k, mi)
		r.GeoAll[k] = m.GeomeanSpeedup(k, nil)
	}

	c.printf("%s — speedups over NVP\n", title)
	c.printf("%-13s %12s %10s %12s %12s\n", "benchmark", "ReplayCache", "NVSRAM", "Sweep(NVM)", "Sweep(EB)")
	row := func(name string) {
		c.printf("%-13s", name)
		for _, k := range evalKinds {
			c.printf(" %*.2f", colw(k), m.Speedup(name, k))
		}
		c.printf("\n")
	}
	for _, name := range media {
		row(name)
	}
	c.geoRow("geomean(media)", r.GeoMedia)
	for _, name := range mi {
		row(name)
	}
	c.geoRow("geomean(mi)", r.GeoMi)
	c.geoRow("geomean(all)", r.GeoAll)
	c.printf("\n")
	return r, nil
}

func colw(k arch.Kind) int {
	switch k {
	case arch.ReplayCache:
		return 12
	case arch.NVSRAM:
		return 10
	default:
		return 12
	}
}

func (c *Context) geoRow(label string, g map[arch.Kind]float64) {
	c.printf("%-13s", label)
	for _, k := range evalKinds {
		c.printf(" %*.2f", colw(k), g[k])
	}
	c.printf("\n")
}

// Fig5 reproduces Figure 5: outage-free speedups over NVP.
func (c *Context) Fig5() (*SpeedupResult, error) {
	return c.speedupFigure("Figure 5 (no power failure)", nil)
}

// Fig6 reproduces Figure 6: RFHome-trace speedups over NVP.
func (c *Context) Fig6() (*SpeedupResult, error) {
	pr := trace.RFHome
	return c.speedupFigure("Figure 6 (RFHome trace)", &pr)
}

// Fig7 reproduces Figure 7: RFOffice-trace speedups over NVP.
func (c *Context) Fig7() (*SpeedupResult, error) {
	pr := trace.RFOffice
	return c.speedupFigure("Figure 7 (RFOffice trace)", &pr)
}

// Fig10Result holds the per-trace geomean speedups of Figure 10.
type Fig10Result struct {
	// Speedup[profile][kind] = geomean speedup over NVP under profile.
	Speedup map[trace.Profile]map[arch.Kind]float64
}

// fig10Kinds are the three bars of Figure 10.
var fig10Kinds = []arch.Kind{arch.ReplayCache, arch.NVSRAM, arch.SweepEmptyBit}

// Fig10 reproduces Figure 10: speedups over NVP across power traces.
func (c *Context) Fig10() (*Fig10Result, error) {
	r := &Fig10Result{Speedup: map[trace.Profile]map[arch.Kind]float64{}}
	c.printf("Figure 10 — geomean speedups over NVP per power trace\n")
	c.printf("%-10s %12s %10s %12s\n", "trace", "ReplayCache", "NVSRAM", "SweepCache")
	for _, pr := range trace.Profiles() {
		m, err := c.runMatrix(fig10Kinds, &pr, c.Params)
		if err != nil {
			return nil, err
		}
		r.Speedup[pr] = map[arch.Kind]float64{}
		c.printf("%-10s", pr)
		for _, k := range fig10Kinds {
			g := m.GeomeanSpeedup(k, nil)
			r.Speedup[pr][k] = g
			c.printf(" %*.2f", map[arch.Kind]int{arch.ReplayCache: 12, arch.NVSRAM: 10, arch.SweepEmptyBit: 12}[k], g)
		}
		c.printf("\n")
	}
	c.printf("\n")
	return r, nil
}

// ParallelismResult is Section 6.3's efficiency metric.
type ParallelismResult struct {
	OutageFree float64
	WithOutage float64
}

// Parallelism reproduces Section 6.3: average region-level parallelism
// efficiency (Tp - Twait)/Tp outage-free and under RFOffice.
func (c *Context) Parallelism() (*ParallelismResult, error) {
	kinds := []arch.Kind{arch.SweepEmptyBit}
	eff := func(profile *trace.Profile) (float64, error) {
		m, err := c.runMatrix(kinds, profile, c.Params)
		if err != nil {
			return 0, err
		}
		var xs []float64
		for _, n := range m.Names {
			xs = append(xs, m.Get(n, arch.SweepEmptyBit).ParallelismEfficiency())
		}
		return stats.Geomean(xs), nil
	}
	free, err := eff(nil)
	if err != nil {
		return nil, err
	}
	pr := trace.RFOffice
	out, err := eff(&pr)
	if err != nil {
		return nil, err
	}
	r := &ParallelismResult{OutageFree: free, WithOutage: out}
	c.printf("Section 6.3 — region-level parallelism efficiency\n")
	c.printf("outage-free: %.2f%%   with outages (RFOffice): %.2f%%\n\n",
		100*r.OutageFree, 100*r.WithOutage)
	return r, nil
}
