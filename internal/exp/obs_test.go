package exp

// Live-tracking coverage: the campaign tracker wired through runMatrix
// must see every cell reach a terminal state, journal hits as skips,
// panics as panicked failures — and must not perturb the results.

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/telemetry"
)

// trackedCtx is a small 2×2 matrix (sha, fft × NVP, Sweep-EmptyBit)
// with a tracker attached.
func trackedCtx() (*Context, []arch.Kind) {
	c := DefaultContext()
	c.Quick = true
	c.Only = []string{"sha", "fft"}
	c.Tracker = obs.NewCampaignTracker(nil)
	return c, []arch.Kind{arch.SweepEmptyBit}
}

func TestRunMatrixTracker(t *testing.T) {
	// Reference run without a tracker.
	ref, kinds := trackedCtx()
	ref.Tracker = nil
	refM, err := ref.runMatrix(kinds, nil, ref.Params)
	if err != nil {
		t.Fatal(err)
	}

	c, kinds := trackedCtx()
	c.Tracker.BeginPhase("test")
	m, err := c.runMatrix(kinds, nil, c.Params)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Tracker.Progress()
	if p.Total != 4 || p.Done != 4 || p.Pending != 0 || p.Running != 0 || p.Failed != 0 || p.Skipped != 0 {
		t.Fatalf("tracked counts: %+v", p)
	}
	if p.Phase != "test" || p.Panics != 0 {
		t.Fatalf("phase/panics: %+v", p)
	}
	for _, cp := range p.Cells {
		if cp.DurationMs <= 0 {
			t.Fatalf("done cell without duration: %+v", cp)
		}
	}
	// Tracking must not perturb the simulation.
	for _, name := range m.Names {
		for _, k := range append(kinds, arch.NVP) {
			a, b := refM.Get(name, k), m.Get(name, k)
			if a.TimeNs != b.TimeNs || a.Ledger != b.Ledger || a.Counts != b.Counts {
				t.Errorf("tracked result diverges for %s/%v", name, k)
			}
		}
	}
}

// TestRunMatrixTrackerJournalSkips: cells proven by the journal surface
// as skipped, not done, and the journal counters ride the tracker's
// /metrics registry.
func TestRunMatrixTrackerJournalSkips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j1, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j1.Fsync = false
	c1, kinds := trackedCtx()
	c1.Tracker = nil
	c1.Journal = j1
	if _, err := c1.runMatrix(kinds, nil, c1.Params); err != nil {
		t.Fatal(err)
	}
	j1.Close()

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	j2.Fsync = false
	c2, kinds := trackedCtx()
	c2.Journal = j2
	c2.Metrics = telemetry.NewSnapshot()
	st := j2.Stats()
	c2.Tracker.SetJournalStats(st.Loaded, st.Corrupt)
	if _, err := c2.runMatrix(kinds, nil, c2.Params); err != nil {
		t.Fatal(err)
	}
	p := c2.Tracker.Progress()
	if p.Total != 4 || p.Skipped != 4 || p.Done != 0 || p.Failed != 0 {
		t.Fatalf("resume counts: %+v", p)
	}
	snap := c2.Tracker.Metrics()
	if snap.Counters["journal_cells_loaded"] != 4 {
		t.Fatalf("journal_cells_loaded = %d, want 4", snap.Counters["journal_cells_loaded"])
	}
	if snap.Counters["campaign_cells_skipped"] != 4 {
		t.Fatalf("campaign_cells_skipped = %d", snap.Counters["campaign_cells_skipped"])
	}
	// The context accumulator counts the reuse too (what -metrics prints).
	if c2.MetricsSnapshot().Counters["journal.cells_reused"] != 4 {
		t.Fatalf("journal.cells_reused = %d", c2.MetricsSnapshot().Counters["journal.cells_reused"])
	}
}

// TestRunMatrixTrackerPanics: injected worker panics must land in the
// tracker as panicked failures.
func TestRunMatrixTrackerPanics(t *testing.T) {
	c, kinds := trackedCtx()
	c.Chaos = chaos.New(chaos.Config{Seed: 7, PanicProb: 1})
	if _, err := c.runMatrix(kinds, nil, c.Params); err == nil {
		t.Fatal("all-panic run reported success")
	}
	p := c.Tracker.Progress()
	if p.Failed != 4 || p.Done != 0 {
		t.Fatalf("panic counts: %+v", p)
	}
	if p.Panics != 4 {
		t.Fatalf("worker_panics = %d, want 4", p.Panics)
	}
	for _, cp := range p.Cells {
		if cp.State.String() != "failed" || cp.Error == "" {
			t.Fatalf("panicked cell record: %+v", cp)
		}
	}
}

// TestRunMatrixTrackerTimeouts: cell timeouts surface as ordinary
// (non-panic) failures.
func TestRunMatrixTrackerTimeouts(t *testing.T) {
	c, kinds := trackedCtx()
	c.CellTimeout = time.Nanosecond
	if _, err := c.runMatrix(kinds, nil, c.Params); err == nil {
		t.Fatal("all-timeout run reported success")
	}
	p := c.Tracker.Progress()
	if p.Failed != 4 {
		t.Fatalf("timeout counts: %+v", p)
	}
	if p.Panics != 0 {
		t.Fatalf("timeouts counted as panics: %d", p.Panics)
	}
}
