package exp

import (
	"repro/internal/arch"
	"repro/internal/trace"
)

// VminResult reproduces Table 1's footnote 1: because SweepCache only
// needs a single-threshold comparator, it can afford a lower brown-out
// voltage than the JIT designs' monitors; the paper reports an extra
// 10-15% performance from Vmin = 1.8 V.
type VminResult struct {
	Default float64 // geomean speedup over NVP at Vmin = 2.8 V
	Low     float64 // geomean speedup over NVP at Vmin = 1.8 V
	GainPct float64
}

// Vmin runs SweepCache under RFOffice with the paper's two Vmin settings.
// The NVP baseline keeps Vmin = 2.8 V in both runs, as in the footnote.
func (c *Context) Vmin() (*VminResult, error) {
	pr := trace.RFOffice
	base, err := c.runMatrix([]arch.Kind{arch.SweepEmptyBit}, &pr, c.Params)
	if err != nil {
		return nil, err
	}
	p := c.Params
	p.SweepVmin = 1.8
	low, err := c.runMatrix([]arch.Kind{arch.SweepEmptyBit}, &pr, p)
	if err != nil {
		return nil, err
	}
	r := &VminResult{}
	// Both matrices share the same NVP configuration, so comparing each
	// sweep against its own baseline is apples-to-apples.
	r.Default = base.GeomeanSpeedup(arch.SweepEmptyBit, nil)
	r.Low = low.GeomeanSpeedup(arch.SweepEmptyBit, nil)
	r.GainPct = 100 * (r.Low/r.Default - 1)
	c.printf("Table 1 footnote — SweepCache Vmin sensitivity (RFOffice)\n")
	c.printf("Vmin 2.8 V: %.2fx   Vmin 1.8 V: %.2fx   gain: %.1f%%\n\n",
		r.Default, r.Low, r.GainPct)
	return r, nil
}

// WTResult places the naive write-through cache of Figure 1(b) on the
// Figure 5/7 axes, quantifying Section 2.2's claim that per-store NVM
// writes make it pay "a high persistence overhead".
type WTResult struct {
	OutageFree float64 // geomean speedup over NVP
	RFOffice   float64
}

// WT evaluates the write-through baseline.
func (c *Context) WT() (*WTResult, error) {
	free, err := c.runMatrix([]arch.Kind{arch.WTVCache}, nil, c.Params)
	if err != nil {
		return nil, err
	}
	pr := trace.RFOffice
	out, err := c.runMatrix([]arch.Kind{arch.WTVCache}, &pr, c.Params)
	if err != nil {
		return nil, err
	}
	r := &WTResult{
		OutageFree: free.GeomeanSpeedup(arch.WTVCache, nil),
		RFOffice:   out.GeomeanSpeedup(arch.WTVCache, nil),
	}
	c.printf("Figure 1(b) baseline — WT-VCache geomean speedup over NVP\n")
	c.printf("outage-free: %.2fx   RFOffice: %.2fx\n\n", r.OutageFree, r.RFOffice)
	return r, nil
}
