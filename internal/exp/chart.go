package exp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
)

// barChart renders a labelled horizontal ASCII bar chart, the terminal
// stand-in for the paper's figures. Bars are scaled to the maximum value.
func barChart(title string, rows []barRow, width int) string {
	if width <= 0 {
		width = 48
	}
	var max float64
	labelW := 0
	for _, r := range rows {
		if r.Value > max {
			max = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for _, r := range rows {
		n := 0
		if max > 0 {
			n = int(r.Value / max * float64(width))
		}
		fmt.Fprintf(&sb, "  %-*s %7.2f %s\n", labelW, r.Label, r.Value, strings.Repeat("█", n))
	}
	return sb.String()
}

type barRow struct {
	Label string
	Value float64
}

// Chart renders a SpeedupResult (Figures 5–7) as an ASCII chart of the
// per-scheme geomeans — a quick visual check that the ordering matches
// the paper's bars.
func (r *SpeedupResult) Chart() string {
	rows := make([]barRow, 0, len(evalKinds))
	for _, k := range evalKinds {
		rows = append(rows, barRow{Label: k.String(), Value: r.GeoAll[k]})
	}
	return barChart(r.Title+" — geomean speedup over NVP", rows, 48)
}

// Chart renders Figure 9's relative speedups per capacitor for SweepCache.
func (r *CapacitorSweepResult) Chart() string {
	caps := append([]float64(nil), r.Caps...)
	sort.Float64s(caps)
	rows := make([]barRow, 0, len(caps))
	for _, cf := range caps {
		rows = append(rows, barRow{Label: capLabel(cf), Value: r.Relative[cf][arch.SweepEmptyBit]})
	}
	return barChart("SweepCache speedup over NVP across capacitor sizes", rows, 48)
}

// Chart renders the ablation variants side by side (RFOffice column).
func (r *AblationResult) Chart() string {
	rows := []barRow{
		{"full", r.Full[1]},
		{"single-buffer", r.SingleBuffer[1]},
		{"nvm-search", r.NVMSearch[1]},
		{"no-unroll", r.NoUnroll[1]},
		{"inline", r.Inline[1]},
	}
	return barChart("Ablation under RFOffice — geomean speedup over NVP", rows, 48)
}
