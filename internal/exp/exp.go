// Package exp regenerates every table and figure of the paper's
// evaluation (Section 6). One driver per experiment; each prints the same
// rows/series the paper reports and returns a typed result the tests and
// benchmarks assert on. See EXPERIMENTS.md for paper-vs-measured numbers.
package exp

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Context configures an experiment run.
type Context struct {
	Params config.Params
	// Scale multiplies workload sizes (1 = evaluation default).
	Scale int
	// Seed selects the synthetic power-trace timeline.
	Seed int64
	// Quick restricts sweeps to a representative workload subset, for
	// tests and benchmarks.
	Quick bool
	// Out receives the printed tables; nil discards them.
	Out io.Writer

	// Metrics, when non-nil, accumulates every simulated run's metrics
	// snapshot across the (parallel) experiment matrices.
	Metrics *telemetry.Snapshot
	// TraceDir, when set, records one JSONL telemetry stream per
	// simulated run into that directory.
	TraceDir string

	metricsMu sync.Mutex
	traceSeq  atomic.Uint64
}

// DefaultContext returns the evaluation configuration.
func DefaultContext() *Context {
	return &Context{Params: config.Default(), Scale: 1, Seed: 1}
}

func (c *Context) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// quickSet is the sweep subset: two of each flavour (codec, crypto, image,
// irregular).
var quickSet = map[string]bool{
	"adpcmenc": true, "gsmdec": true, "sha": true, "susane": true,
	"dijkstra": true, "fft": true, "blowfishenc": true, "rijndaelenc": true,
}

// Workloads returns the experiment's workload list.
func (c *Context) Workloads() []workloads.Workload {
	all := workloads.All()
	if !c.Quick {
		return all
	}
	var out []workloads.Workload
	for _, w := range all {
		if quickSet[w.Name] {
			out = append(out, w)
		}
	}
	return out
}

func (c *Context) builder(w workloads.Workload) core.Builder {
	scale := c.Scale
	return func() *ir.Program { return w.Build(scale) }
}

// cell identifies one simulation in a run matrix.
type cell struct {
	Workload string
	Kind     arch.Kind
}

// Matrix holds the results of workloads × schemes under one configuration.
type Matrix struct {
	Kinds   []arch.Kind
	Names   []string
	Results map[cell]*sim.Result
}

// Get returns the result for (workload, kind).
func (m *Matrix) Get(name string, k arch.Kind) *sim.Result {
	return m.Results[cell{name, k}]
}

// Speedup returns kind's speedup over NVP for one workload.
func (m *Matrix) Speedup(name string, k arch.Kind) float64 {
	return float64(m.Get(name, arch.NVP).TimeNs) / float64(m.Get(name, k).TimeNs)
}

// GeomeanSpeedup aggregates speedups over a set of workload names (nil =
// all).
func (m *Matrix) GeomeanSpeedup(k arch.Kind, names []string) float64 {
	if names == nil {
		names = m.Names
	}
	xs := make([]float64, 0, len(names))
	for _, n := range names {
		xs = append(xs, m.Speedup(n, k))
	}
	return stats.Geomean(xs)
}

// runMatrix executes every workload on NVP plus the requested kinds, in
// parallel, under fresh per-run cursors of the same trace profile (nil =
// outage-free). Deterministic: each run sees the identical timeline.
func (c *Context) runMatrix(kinds []arch.Kind, profile *trace.Profile, p config.Params) (*Matrix, error) {
	wl := c.Workloads()
	m := &Matrix{Kinds: kinds, Results: map[cell]*sim.Result{}}
	for _, w := range wl {
		m.Names = append(m.Names, w.Name)
	}

	allKinds := append([]arch.Kind{arch.NVP}, kinds...)
	type job struct {
		w workloads.Workload
		k arch.Kind
	}
	var jobs []job
	for _, w := range wl {
		for _, k := range allKinds {
			if k == arch.NVP && m.Results[cell{w.Name, k}] != nil {
				continue
			}
			jobs = append(jobs, job{w, k})
		}
	}

	// Fixed-size worker pool: exactly min(NumCPU, len(jobs)) goroutines
	// exist at any moment, however large the matrix — the alternative
	// (spawn per job, gate on a semaphore inside) stacks up one idle
	// goroutine per queued cell. Results and errors land in indexed
	// slots, so no mutex and no result reordering.
	workers := runtime.NumCPU()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	jobCh := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				j := jobs[idx]
				var src trace.Source
				if profile != nil {
					src = trace.NewShared(*profile, c.Seed)
				}
				res, err := c.runJob(j.w, j.k, p, src)
				if err != nil {
					errs[idx] = fmt.Errorf("%s on %v: %w", j.w.Name, j.k, err)
					continue
				}
				results[idx] = res
			}
		}()
	}
	for i := range jobs {
		jobCh <- i
	}
	close(jobCh)
	wg.Wait()
	// Report every failed cell, in job order, not just the first.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for i, j := range jobs {
		m.Results[cell{j.w.Name, j.k}] = results[i]
	}
	return m, nil
}

// runJob executes one (workload, scheme) simulation, recording per-run
// telemetry and folding the run's metrics into the context accumulator
// when those are enabled.
func (c *Context) runJob(w workloads.Workload, k arch.Kind, p config.Params, src trace.Source) (*sim.Result, error) {
	var tr *telemetry.Tracer
	var traceFile *os.File
	if c.TraceDir != "" {
		seq := c.traceSeq.Add(1)
		name := fmt.Sprintf("%04d_%s_%v.jsonl", seq, w.Name, k)
		f, err := os.Create(filepath.Join(c.TraceDir, name))
		if err != nil {
			return nil, err
		}
		traceFile = f
		tr = telemetry.NewTracer(telemetry.NewJSONLSink(f), 0)
	}
	// Binaries come from the process-wide compile cache: schemes sharing
	// a compiler mode (and figures sharing parameters) reuse one
	// compilation instead of rebuilding per cell.
	res, err := func() (*sim.Result, error) {
		cres, err := core.SharedCompileCache().Get(core.KeyFor(w.Name, c.Scale, k, p), c.builder(w), k, p)
		if err != nil {
			return nil, err
		}
		return core.RunCompiled(cres, k, p, src, tr)
	}()
	if traceFile != nil {
		if cerr := tr.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, err
	}
	if c.Metrics != nil {
		snap := res.Metrics()
		c.metricsMu.Lock()
		defer c.metricsMu.Unlock()
		if err := c.Metrics.Merge(snap); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// suites splits the matrix workload names by benchmark suite.
func (c *Context) suites() (media, mi []string) {
	for _, w := range c.Workloads() {
		if w.Suite == "mediabench" {
			media = append(media, w.Name)
		} else {
			mi = append(mi, w.Name)
		}
	}
	return
}
