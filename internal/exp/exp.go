// Package exp regenerates every table and figure of the paper's
// evaluation (Section 6). One driver per experiment; each prints the same
// rows/series the paper reports and returns a typed result the tests and
// benchmarks assert on. See EXPERIMENTS.md for paper-vs-measured numbers.
package exp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/chaos"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Context configures an experiment run.
type Context struct {
	Params config.Params
	// Scale multiplies workload sizes (1 = evaluation default).
	Scale int
	// Seed selects the synthetic power-trace timeline.
	Seed int64
	// Quick restricts sweeps to a representative workload subset, for
	// tests and benchmarks.
	Quick bool
	// Seeds is the Monte-Carlo sample count for SeedSweep: timelines
	// Seed..Seed+Seeds-1 run per cell. Values below 1 mean 1.
	Seeds int
	// BatchWidth is the lockstep lane count SeedSweep batches seeds with;
	// values below 1 select the default width 8.
	BatchWidth int
	// Only, when non-nil, further restricts the sweep to these workload
	// names. Names that match nothing are simply absent; an empty
	// resulting set fails validation in runMatrix.
	Only []string
	// Out receives the printed tables; nil discards them.
	Out io.Writer

	// Ctx, when non-nil, cancels the whole experiment: dispatch stops,
	// in-flight cells abort at their next epoch boundary, and runMatrix
	// returns an error wrapping Ctx.Err(). nil runs to completion.
	Ctx context.Context
	// CellTimeout, when positive, bounds each matrix cell's wall-clock
	// time; an overrunning cell fails with context.DeadlineExceeded while
	// the rest of the matrix completes.
	CellTimeout time.Duration
	// Journal, when non-nil, makes the run crash-safe: every completed
	// cell is appended durably, and cells already proven under the
	// identical configuration (and engine version) are skipped. See
	// internal/journal.
	Journal *journal.Journal
	// Chaos, when non-nil, injects deterministic faults (worker panics,
	// mid-run cancellation) for resilience testing. See internal/chaos.
	Chaos *chaos.Injector

	// Tracker, when non-nil, follows every matrix cell through its state
	// machine (pending/running/done/failed/journal-skipped) for the live
	// introspection endpoints. The nil path costs nothing: every hook is
	// a nil-safe method call carrying only pre-existing values. See
	// internal/obs and docs/OBSERVABILITY.md.
	Tracker *obs.CampaignTracker
	// Metrics, when non-nil, accumulates every simulated run's metrics
	// snapshot across the (parallel) experiment matrices. Journal-skipped
	// cells were not simulated and contribute nothing.
	Metrics *telemetry.Snapshot
	// TraceDir, when set, records one JSONL telemetry stream per
	// simulated run into that directory.
	TraceDir string

	metricsMu sync.Mutex
	traceSeq  atomic.Uint64
}

// ctx returns the run's context, defaulting to Background.
func (c *Context) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// CellError is the structured failure of one matrix cell: a simulation
// error or a recovered worker panic, carrying everything needed to
// reproduce the cell. errors.As against *CellError recovers the identity;
// Unwrap exposes the cause (including context.Canceled for interrupted
// cells).
type CellError struct {
	Workload string
	Scheme   string
	Profile  string // trace profile name, or "outage-free"
	Seed     int64
	ParamsFP string // config.Params.Fingerprint()
	Err      error
	// Stack is the worker's stack at recovery time for panicking cells,
	// nil for ordinary errors.
	Stack []byte
}

func (e *CellError) Error() string {
	s := fmt.Sprintf("cell %s/%s under %s (seed %d, params %.8s): %v",
		e.Workload, e.Scheme, e.Profile, e.Seed, e.ParamsFP, e.Err)
	if e.Stack != nil {
		s += " (panic; stack captured)"
	}
	return s
}

func (e *CellError) Unwrap() error { return e.Err }

// DefaultContext returns the evaluation configuration.
func DefaultContext() *Context {
	return &Context{Params: config.Default(), Scale: 1, Seed: 1}
}

func (c *Context) printf(format string, args ...any) {
	if c.Out != nil {
		fmt.Fprintf(c.Out, format, args...)
	}
}

// quickSet is the sweep subset: two of each flavour (codec, crypto, image,
// irregular).
var quickSet = map[string]bool{
	"adpcmenc": true, "gsmdec": true, "sha": true, "susane": true,
	"dijkstra": true, "fft": true, "blowfishenc": true, "rijndaelenc": true,
}

// Workloads returns the experiment's workload list.
func (c *Context) Workloads() []workloads.Workload {
	all := workloads.All()
	if c.Quick {
		var out []workloads.Workload
		for _, w := range all {
			if quickSet[w.Name] {
				out = append(out, w)
			}
		}
		all = out
	}
	if c.Only != nil {
		only := map[string]bool{}
		for _, n := range c.Only {
			only[n] = true
		}
		var out []workloads.Workload
		for _, w := range all {
			if only[w.Name] {
				out = append(out, w)
			}
		}
		all = out
	}
	return all
}

func (c *Context) builder(w workloads.Workload) core.Builder {
	scale := c.Scale
	return func() *ir.Program { return w.Build(scale) }
}

// cell identifies one simulation in a run matrix.
type cell struct {
	Workload string
	Kind     arch.Kind
}

// Matrix holds the results of workloads × schemes under one configuration.
type Matrix struct {
	Kinds   []arch.Kind
	Names   []string
	Results map[cell]*sim.Result
}

// Get returns the result for (workload, kind).
func (m *Matrix) Get(name string, k arch.Kind) *sim.Result {
	return m.Results[cell{name, k}]
}

// Speedup returns kind's speedup over NVP for one workload.
func (m *Matrix) Speedup(name string, k arch.Kind) float64 {
	return float64(m.Get(name, arch.NVP).TimeNs) / float64(m.Get(name, k).TimeNs)
}

// GeomeanSpeedup aggregates speedups over a set of workload names (nil =
// all).
func (m *Matrix) GeomeanSpeedup(k arch.Kind, names []string) float64 {
	if names == nil {
		names = m.Names
	}
	xs := make([]float64, 0, len(names))
	for _, n := range names {
		xs = append(xs, m.Speedup(n, k))
	}
	return stats.Geomean(xs)
}

// profileName renders a trace profile for cell identities and errors.
func profileName(profile *trace.Profile) string {
	if profile == nil {
		return "outage-free"
	}
	return profile.String()
}

// matrixJob is one cell's work order.
type matrixJob struct {
	w workloads.Workload
	k arch.Kind
}

// cellID builds the journal identity of one cell under this context.
func (c *Context) cellID(j matrixJob, pname, fp string) journal.Cell {
	return journal.Cell{
		Workload: j.w.Name,
		Scale:    c.Scale,
		Scheme:   j.k.String(),
		Profile:  pname,
		Seed:     c.Seed,
		ParamsFP: fp,
		Engine:   sim.EngineVersion,
	}
}

// runMatrix executes every workload on NVP plus the requested kinds, in
// parallel, under fresh per-run cursors of the same trace profile (nil =
// outage-free). Deterministic: each run sees the identical timeline.
//
// Resilience properties (see docs/ROBUSTNESS.md):
//   - Each worker isolates panics: one bad cell fails one cell, as a
//     *CellError carrying workload/scheme/supply/params identity plus the
//     recovered stack, while healthy cells complete. errors.Join reports
//     every failure.
//   - A cancelled context stops dispatch, aborts in-flight cells at their
//     next epoch boundary, and joins the workers before returning — no
//     orphaned goroutines, ever.
//   - With a journal attached, completed cells are durable and re-runs
//     skip them, so any interruption (cancel, panic, kill -9) resumes to
//     a byte-identical result.
func (c *Context) runMatrix(kinds []arch.Kind, profile *trace.Profile, p config.Params) (*Matrix, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("exp: invalid params: %w", err)
	}
	wl := c.Workloads()
	if len(wl) == 0 {
		return nil, errors.New("exp: empty workload set — nothing to run")
	}
	m := &Matrix{Kinds: kinds, Results: map[cell]*sim.Result{}}
	for _, w := range wl {
		m.Names = append(m.Names, w.Name)
	}

	// NVP (the baseline every figure normalizes to) always runs; requested
	// kinds are deduplicated so a caller listing NVP explicitly does not
	// double-run it.
	allKinds := []arch.Kind{arch.NVP}
	seen := map[arch.Kind]bool{arch.NVP: true}
	for _, k := range kinds {
		if !seen[k] {
			seen[k] = true
			allKinds = append(allKinds, k)
		}
	}
	var jobs []matrixJob
	for _, w := range wl {
		for _, k := range allKinds {
			jobs = append(jobs, matrixJob{w, k})
		}
	}

	ctx := c.ctx()
	if c.Chaos != nil {
		var cancel context.CancelFunc
		ctx, cancel = c.Chaos.Arm(ctx)
		defer cancel()
	}
	pname := profileName(profile)
	fp := p.Fingerprint()

	// Live tracking: register the matrix's cells before the journal pass
	// so /progress sees skips as skips, not as missing cells. Guarded —
	// building the meta slice is the one tracker interaction that
	// allocates, and the nil path must stay allocation-free.
	var trkBase int
	if c.Tracker != nil {
		metas := make([]obs.CellMeta, len(jobs))
		for i, j := range jobs {
			metas[i] = obs.CellMeta{Workload: j.w.Name, Scheme: j.k.String(), Profile: pname}
		}
		trkBase = c.Tracker.AddCells(metas)
	}

	// Journal consultation: cells already proven under this exact
	// configuration are reconstructed, not re-simulated.
	results := make([]*sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	var pending []int
	journalHits := 0
	for idx, j := range jobs {
		if c.Journal != nil {
			if rec, ok := c.Journal.Lookup(c.cellID(j, pname, fp)); ok {
				results[idx] = rec.Result()
				journalHits++
				c.Tracker.Skip(trkBase + idx)
				continue
			}
		}
		pending = append(pending, idx)
	}

	// Fixed-size worker pool: exactly min(NumCPU, len(pending)) goroutines
	// exist at any moment, however large the matrix — the alternative
	// (spawn per job, gate on a semaphore inside) stacks up one idle
	// goroutine per queued cell. Results and errors land in indexed
	// slots, so no mutex and no result reordering.
	workers := runtime.NumCPU()
	if workers > len(pending) {
		workers = len(pending)
	}
	jobCh := make(chan int)
	var wg sync.WaitGroup
	var chaosPanics, chaosCancels uint64
	if c.Chaos != nil {
		chaosPanics, chaosCancels = c.Chaos.Panics(), c.Chaos.Cancels()
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				j := jobs[idx]
				// Heartbeat + cell state hooks are nil-safe no-ops when no
				// tracker is attached; the disabled path allocates nothing
				// (pinned by TestTrackerHooksNilZeroAlloc).
				c.Tracker.Heartbeat(i)
				// A cancelled run drains the queue without simulating:
				// every undone cell reports the cancellation and the pool
				// winds down promptly.
				if err := ctx.Err(); err != nil {
					errs[idx] = &CellError{Workload: j.w.Name, Scheme: j.k.String(),
						Profile: pname, Seed: c.Seed, ParamsFP: fp, Err: err}
					c.Tracker.Fail(i, trkBase+idx, err, false)
					continue
				}
				c.Tracker.Start(i, trkBase+idx)
				res, err := c.runCell(ctx, j, p, profile, pname, fp)
				if err != nil {
					errs[idx] = err
					if c.Tracker != nil {
						var ce *CellError
						panicked := errors.As(err, &ce) && ce.Stack != nil
						c.Tracker.Fail(i, trkBase+idx, err, panicked)
					}
					continue
				}
				if c.Journal != nil {
					if err := c.Journal.Append(c.cellID(j, pname, fp), journal.FromResult(res)); err != nil {
						// Durability is part of the contract when a journal
						// is attached: a cell whose proof cannot be written
						// is reported failed (its result is still returned
						// in-memory via results for this run).
						errs[idx] = &CellError{Workload: j.w.Name, Scheme: j.k.String(),
							Profile: pname, Seed: c.Seed, ParamsFP: fp, Err: err}
					}
				}
				results[idx] = res
				if errs[idx] != nil {
					c.Tracker.Fail(i, trkBase+idx, errs[idx], false)
				} else {
					c.Tracker.Done(i, trkBase+idx)
				}
			}
		}()
	}
	// Dispatch until done or cancelled; either way the channel closes and
	// the workers join before runMatrix returns.
feed:
	for _, idx := range pending {
		select {
		case jobCh <- idx:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	// Fold journal/chaos activity into the metrics accumulator.
	if c.Metrics != nil && (c.Journal != nil || c.Chaos != nil) {
		reg := telemetry.NewRegistry()
		if c.Journal != nil {
			reg.Counter("journal.cells_reused").Add(uint64(journalHits))
		}
		if c.Chaos != nil {
			reg.Counter("chaos.injected_panics").Add(c.Chaos.Panics() - chaosPanics)
			reg.Counter("chaos.injected_cancels").Add(c.Chaos.Cancels() - chaosCancels)
		}
		snap := reg.Snapshot()
		c.metricsMu.Lock()
		err := c.Metrics.Merge(snap)
		c.metricsMu.Unlock()
		if err != nil {
			return nil, err
		}
	}

	// Error assembly: a cancelled run reports the cancellation (wrapping
	// ctx.Err() so errors.Is works) plus any genuine cell failures;
	// otherwise every failed cell is reported, in job order, while the
	// healthy cells' results stand — and, with a journal, are already
	// durable, so the matrix is resumable.
	var real []error
	interrupted := 0
	for _, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) && ctx.Err() != nil {
			interrupted++
			continue
		}
		real = append(real, err)
	}
	if err := ctx.Err(); err != nil {
		done := 0
		for _, r := range results {
			if r != nil {
				done++
			}
		}
		real = append(real, fmt.Errorf("exp: matrix canceled with %d/%d cells complete (%d interrupted): %w",
			done, len(jobs), interrupted, err))
	}
	if err := errors.Join(real...); err != nil {
		return nil, err
	}
	for i, j := range jobs {
		m.Results[cell{j.w.Name, j.k}] = results[i]
	}
	return m, nil
}

// runCell runs one matrix cell inside a panic isolation boundary: a
// panicking simulation (or injected chaos fault) is converted into a
// *CellError with the recovered value and stack, so the rest of the
// matrix is unaffected.
func (c *Context) runCell(ctx context.Context, j matrixJob, p config.Params, profile *trace.Profile, pname, fp string) (res *sim.Result, err error) {
	mkErr := func(cause error, stack []byte) *CellError {
		return &CellError{Workload: j.w.Name, Scheme: j.k.String(),
			Profile: pname, Seed: c.Seed, ParamsFP: fp, Err: cause, Stack: stack}
	}
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, mkErr(fmt.Errorf("worker panic: %v", v), debug.Stack())
		}
	}()
	if c.Chaos != nil {
		c.Chaos.CellStart(j.w.Name, j.k.String())
	}
	runCtx := ctx
	if c.CellTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, c.CellTimeout)
		defer cancel()
	}
	var src trace.Source
	if profile != nil {
		src = trace.NewShared(*profile, c.Seed)
	}
	res, runErr := c.runJob(runCtx, j.w, j.k, p, src)
	if runErr != nil {
		return nil, mkErr(runErr, nil)
	}
	return res, nil
}

// runJob executes one (workload, scheme) simulation, recording per-run
// telemetry and folding the run's metrics into the context accumulator
// when those are enabled.
func (c *Context) runJob(ctx context.Context, w workloads.Workload, k arch.Kind, p config.Params, src trace.Source) (*sim.Result, error) {
	var tr *telemetry.Tracer
	var traceFile *os.File
	if c.TraceDir != "" {
		seq := c.traceSeq.Add(1)
		name := fmt.Sprintf("%04d_%s_%v.jsonl", seq, w.Name, k)
		f, err := os.Create(filepath.Join(c.TraceDir, name))
		if err != nil {
			return nil, err
		}
		traceFile = f
		tr = telemetry.NewTracer(telemetry.NewJSONLSink(f), 0)
	}
	// Binaries come from the process-wide compile cache: schemes sharing
	// a compiler mode (and figures sharing parameters) reuse one
	// compilation instead of rebuilding per cell.
	res, err := func() (*sim.Result, error) {
		cres, err := core.SharedCompileCache().Get(core.KeyFor(w.Name, c.Scale, k, p), c.builder(w), k, p)
		if err != nil {
			return nil, err
		}
		return core.RunCompiledCtx(ctx, cres, k, p, src, tr)
	}()
	if traceFile != nil {
		if cerr := tr.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return nil, err
	}
	if c.Metrics != nil {
		snap := res.Metrics()
		c.metricsMu.Lock()
		defer c.metricsMu.Unlock()
		if err := c.Metrics.Merge(snap); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// MetricsSnapshot returns a copy of the accumulated simulation metrics,
// safe to call concurrently with a running matrix — the live /metrics
// endpoint scrapes it mid-campaign. An empty snapshot when metrics
// accumulation is off.
func (c *Context) MetricsSnapshot() *telemetry.Snapshot {
	out := telemetry.NewSnapshot()
	if c.Metrics == nil {
		return out
	}
	c.metricsMu.Lock()
	defer c.metricsMu.Unlock()
	// Merging into an empty snapshot deep-copies and cannot conflict.
	_ = out.Merge(c.Metrics)
	return out
}

// suites splits the matrix workload names by benchmark suite.
func (c *Context) suites() (media, mi []string) {
	for _, w := range c.Workloads() {
		if w.Suite == "mediabench" {
			media = append(media, w.Name)
		} else {
			mi = append(mi, w.Name)
		}
	}
	return
}
