package exp

import (
	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/stats"
	"repro/internal/trace"
)

// sweepKinds are the three bars of the sensitivity figures.
var sweepKinds = []arch.Kind{arch.ReplayCache, arch.NVSRAM, arch.SweepEmptyBit}

// CacheSweepResult is Figure 8's data.
type CacheSweepResult struct {
	Sizes []int
	// Speedup[size][kind] = geomean speedup over NVP with that cache.
	Speedup map[int]map[arch.Kind]float64
}

// Fig8 reproduces Figure 8: speedups over NVP across cache sizes under
// the RFOffice trace.
func (c *Context) Fig8() (*CacheSweepResult, error) {
	sizes := []int{512, 1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10}
	r := &CacheSweepResult{Sizes: sizes, Speedup: map[int]map[arch.Kind]float64{}}
	pr := trace.RFOffice
	c.printf("Figure 8 — geomean speedups over NVP across cache sizes (RFOffice)\n")
	c.printf("%-8s %12s %10s %12s\n", "cache", "ReplayCache", "NVSRAM", "SweepCache")
	for _, sz := range sizes {
		p := c.Params
		p.CacheSize = sz
		m, err := c.runMatrix(sweepKinds, &pr, p)
		if err != nil {
			return nil, err
		}
		r.Speedup[sz] = map[arch.Kind]float64{}
		c.printf("%-8s", sizeLabel(sz))
		for _, k := range sweepKinds {
			g := m.GeomeanSpeedup(k, nil)
			r.Speedup[sz][k] = g
			c.printf(" %*.2f", kcolw(k), g)
		}
		c.printf("\n")
	}
	c.printf("\n")
	return r, nil
}

func kcolw(k arch.Kind) int {
	if k == arch.NVSRAM {
		return 10
	}
	return 12
}

func sizeLabel(sz int) string {
	if sz >= 1<<10 {
		return itoa(sz>>10) + "kB"
	}
	return itoa(sz) + "B"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// CapacitorSweepResult is the data behind Figure 9 and Table 2.
type CapacitorSweepResult struct {
	Caps []float64
	// Relative[c][kind]: speedup over an NVP with the same capacitor.
	Relative map[float64]map[arch.Kind]float64
	// Absolute[c][kind]: speedup over the fixed 100 nF NVP baseline.
	Absolute map[float64]map[arch.Kind]float64
	// Outages[c][kind]: average outage count (Table 2; NVP included).
	Outages map[float64]map[arch.Kind]float64
}

// capLabel renders a capacitance.
func capLabel(f float64) string {
	switch {
	case f >= 1e-3:
		return itoa(int(f*1e3+0.5)) + "mF"
	case f >= 1e-6:
		return itoa(int(f*1e6+0.5)) + "uF"
	default:
		return itoa(int(f*1e9+0.5)) + "nF"
	}
}

// Fig9 reproduces Figure 9 (capacitor sensitivity) and Table 2 (average
// power outages).
func (c *Context) Fig9() (*CapacitorSweepResult, error) {
	return c.capacitorSweep(c.Params, "Figure 9 / Table 2 — capacitor sweep (RFOffice)")
}

// capacitorSweep is the shared engine of Figure 9 and Figure 11.
func (c *Context) capacitorSweep(p0 config.Params, title string) (*CapacitorSweepResult, error) {
	caps := []float64{100e-9, 470e-9, 1e-6, 10e-6, 100e-6, 1e-3}
	pr := trace.RFOffice
	r := &CapacitorSweepResult{
		Caps:     caps,
		Relative: map[float64]map[arch.Kind]float64{},
		Absolute: map[float64]map[arch.Kind]float64{},
		Outages:  map[float64]map[arch.Kind]float64{},
	}

	// Fixed 100 nF NVP baseline for the "absolute" curve.
	pBase := p0
	pBase.CapacitorF = 100e-9
	mBase, err := c.runMatrix(nil, &pr, pBase)
	if err != nil {
		return nil, err
	}

	c.printf("%s\n", title)
	c.printf("%-7s %12s %10s %12s %12s | avg outages: %s\n",
		"cap", "ReplayCache", "NVSRAM", "SweepCache", "Sweep(abs)", "NVP Replay NVSRAM Sweep")
	for _, cf := range caps {
		p := p0
		p.CapacitorF = cf
		m, err := c.runMatrix(sweepKinds, &pr, p)
		if err != nil {
			return nil, err
		}
		r.Relative[cf] = map[arch.Kind]float64{}
		r.Absolute[cf] = map[arch.Kind]float64{}
		r.Outages[cf] = map[arch.Kind]float64{}
		// Outage averages include the NVP baseline.
		for _, k := range append([]arch.Kind{arch.NVP}, sweepKinds...) {
			var tot float64
			for _, n := range m.Names {
				tot += float64(m.Get(n, k).Outages)
			}
			r.Outages[cf][k] = tot / float64(len(m.Names))
		}
		for _, k := range sweepKinds {
			r.Relative[cf][k] = m.GeomeanSpeedup(k, nil)
			// Absolute: this scheme at cf over NVP fixed at 100 nF.
			var xs []float64
			for _, n := range m.Names {
				xs = append(xs, float64(mBase.Get(n, arch.NVP).TimeNs)/float64(m.Get(n, k).TimeNs))
			}
			r.Absolute[cf][k] = stats.Geomean(xs)
		}
		c.printf("%-7s %12.2f %10.2f %12.2f %12.2f | %6.1f %6.1f %6.1f %6.1f\n",
			capLabel(cf),
			r.Relative[cf][arch.ReplayCache], r.Relative[cf][arch.NVSRAM],
			r.Relative[cf][arch.SweepEmptyBit], r.Absolute[cf][arch.SweepEmptyBit],
			r.Outages[cf][arch.NVP], r.Outages[cf][arch.ReplayCache],
			r.Outages[cf][arch.NVSRAM], r.Outages[cf][arch.SweepEmptyBit])
	}
	c.printf("\n")
	return r, nil
}

// Fig11Result holds the two propagation-delay settings of Figure 11.
type Fig11Result struct {
	SlowSweep *CapacitorSweepResult // (a): SweepCache delayed like JIT designs
	FastJIT   *CapacitorSweepResult // (b): JIT designs sped up to the literature's best
}

// Fig11 reproduces Figure 11: capacitor sweeps under modified propagation
// delays. (a) sets SweepCache's restore delay to the JIT designs' 10.3 us;
// (b) shortens the JIT designs' delays to 0.5/3.0 us.
func (c *Context) Fig11() (*Fig11Result, error) {
	pa := c.Params
	pa.SweepRestoreDelayNs = 10300
	a, err := c.capacitorSweep(pa, "Figure 11a — SweepCache delay raised to JIT designs'")
	if err != nil {
		return nil, err
	}

	pb := c.Params
	pb.BackupDelayNs = 500
	pb.RestoreDelayNs = 3000
	b, err := c.capacitorSweep(pb, "Figure 11b — JIT designs' delays reduced (0.5/3.0 us)")
	if err != nil {
		return nil, err
	}
	return &Fig11Result{SlowSweep: a, FastJIT: b}, nil
}

// Fig14Result compares SweepCache against NvMR (Section 6.7).
type Fig14Result struct {
	Caps []float64
	// SpeedupNvMR/SpeedupSweep: geomean speedups over NVP per capacitor.
	SpeedupNvMR  map[float64]float64
	SpeedupSweep map[float64]float64
	// EnergySaving: SweepCache's total-energy saving vs NvMR (%).
	EnergySaving map[float64]float64
}

// Fig14 reproduces Figure 14: SweepCache vs NvMR across capacitor sizes.
func (c *Context) Fig14() (*Fig14Result, error) {
	caps := []float64{470e-9, 1e-6, 2e-6, 5e-6, 10e-6, 100e-6, 1e-3}
	pr := trace.RFOffice
	kinds := []arch.Kind{arch.NvMR, arch.SweepEmptyBit}
	r := &Fig14Result{
		Caps:         caps,
		SpeedupNvMR:  map[float64]float64{},
		SpeedupSweep: map[float64]float64{},
		EnergySaving: map[float64]float64{},
	}
	c.printf("Figure 14 — SweepCache vs NvMR (RFOffice)\n")
	c.printf("%-7s %10s %10s %14s\n", "cap", "NvMR", "Sweep", "energy-saving%")
	for _, cf := range caps {
		p := c.Params
		p.CapacitorF = cf
		m, err := c.runMatrix(kinds, &pr, p)
		if err != nil {
			return nil, err
		}
		r.SpeedupNvMR[cf] = m.GeomeanSpeedup(arch.NvMR, nil)
		r.SpeedupSweep[cf] = m.GeomeanSpeedup(arch.SweepEmptyBit, nil)
		var savings []float64
		for _, n := range m.Names {
			en := m.Get(n, arch.NvMR).Ledger.Total()
			es := m.Get(n, arch.SweepEmptyBit).Ledger.Total()
			savings = append(savings, 100*(en-es)/en)
		}
		var mean float64
		for _, s := range savings {
			mean += s
		}
		r.EnergySaving[cf] = mean / float64(len(savings))
		c.printf("%-7s %10.2f %10.2f %14.1f\n", capLabel(cf),
			r.SpeedupNvMR[cf], r.SpeedupSweep[cf], r.EnergySaving[cf])
	}
	c.printf("\n")
	return r, nil
}
