package exp

import (
	"repro/internal/arch"
	"repro/internal/persist"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Fig12Result holds the Figure 12 distributions.
type Fig12Result struct {
	RegionSizes     *stats.Hist // dynamic instructions per region
	StoresPerRegion *stats.Hist // dynamic stores per region
	MeanRegionSize  float64
	MeanStores      float64
}

// Fig12 reproduces Figure 12: CDFs of dynamic region size and store count
// per region across all benchmarks (SweepCache, outage-free, threshold 64).
func (c *Context) Fig12() (*Fig12Result, error) {
	m, err := c.runMatrix([]arch.Kind{arch.SweepEmptyBit}, nil, c.Params)
	if err != nil {
		return nil, err
	}
	r := &Fig12Result{
		RegionSizes:     stats.NewHist(256),
		StoresPerRegion: stats.NewHist(c.Params.StoreThreshold + 1),
	}
	for _, n := range m.Names {
		res := m.Get(n, arch.SweepEmptyBit)
		if err := r.RegionSizes.Merge(res.RegionSizes); err != nil {
			return nil, err
		}
		if err := r.StoresPerRegion.Merge(res.Arch.StoresPerRegion); err != nil {
			return nil, err
		}
	}
	r.MeanRegionSize = r.RegionSizes.Mean()
	r.MeanStores = r.StoresPerRegion.Mean()

	c.printf("Figure 12 — region size and store count distributions (dynamic)\n")
	c.printf("mean region size: %.2f insts   mean stores/region: %.2f\n", r.MeanRegionSize, r.MeanStores)
	c.printf("region-size quantiles: p50=%d p90=%d p99=%d\n",
		r.RegionSizes.Quantile(0.5), r.RegionSizes.Quantile(0.9), r.RegionSizes.Quantile(0.99))
	c.printf("stores/region quantiles: p50=%d p90=%d p99=%d\n\n",
		r.StoresPerRegion.Quantile(0.5), r.StoresPerRegion.Quantile(0.9), r.StoresPerRegion.Quantile(0.99))
	return r, nil
}

// ICountResult is Section 6.5's instruction-count comparison.
type ICountResult struct {
	ReplayOverSweep float64 // dynamic instructions, geomean ratio
	SweepOverNVSRAM float64
}

// ICount reproduces Section 6.5: ReplayCache executes ~1.64x SweepCache's
// instructions; SweepCache ~15% more than NVSRAM.
func (c *Context) ICount() (*ICountResult, error) {
	m, err := c.runMatrix([]arch.Kind{arch.ReplayCache, arch.NVSRAM, arch.SweepEmptyBit}, nil, c.Params)
	if err != nil {
		return nil, err
	}
	var rs, sn []float64
	for _, n := range m.Names {
		rep := float64(m.Get(n, arch.ReplayCache).Counts.Executed)
		swp := float64(m.Get(n, arch.SweepEmptyBit).Counts.Executed)
		nvs := float64(m.Get(n, arch.NVSRAM).Counts.Executed)
		rs = append(rs, rep/swp)
		sn = append(sn, swp/nvs)
	}
	r := &ICountResult{ReplayOverSweep: stats.Geomean(rs), SweepOverNVSRAM: stats.Geomean(sn)}
	c.printf("Section 6.5 — dynamic instruction counts\n")
	c.printf("ReplayCache / SweepCache: %.2fx   SweepCache / NVSRAM: %.2fx (+%.1f%%)\n\n",
		r.ReplayOverSweep, r.SweepOverNVSRAM, 100*(r.SweepOverNVSRAM-1))
	return r, nil
}

// Fig13Result is the backup/restore energy breakdown.
type Fig13Result struct {
	// BackupPct/RestorePct: backup and restore energy as a percentage of
	// NVP's total consumed energy, per scheme (Figure 13's bars).
	BackupPct  map[arch.Kind]float64
	RestorePct map[arch.Kind]float64
	// TotalPct: each scheme's total energy normalized to NVP's
	// (Section 6.6 prose).
	TotalPct map[arch.Kind]float64
}

var fig13Kinds = []arch.Kind{arch.ReplayCache, arch.NVSRAM, arch.SweepEmptyBit}

// Fig13 reproduces Figure 13 and the Section 6.6 totals under RFOffice.
func (c *Context) Fig13() (*Fig13Result, error) {
	pr := trace.RFOffice
	m, err := c.runMatrix(fig13Kinds, &pr, c.Params)
	if err != nil {
		return nil, err
	}
	r := &Fig13Result{
		BackupPct:  map[arch.Kind]float64{},
		RestorePct: map[arch.Kind]float64{},
		TotalPct:   map[arch.Kind]float64{},
	}
	for _, k := range fig13Kinds {
		var bk, rs, tot, nvpTot, nvpBkRs float64
		for _, n := range m.Names {
			led := m.Get(n, k).Ledger
			bk += led.Backup
			rs += led.Restore
			tot += led.Total()
			nvpLed := m.Get(n, arch.NVP).Ledger
			nvpTot += nvpLed.Total()
			nvpBkRs += nvpLed.Backup + nvpLed.Restore
		}
		// Figure 13 normalizes each scheme's backup/restore energy to
		// NVP's backup/restore energy (its bars exceed the schemes'
		// Section 6.6 total-energy percentages, which are normalized to
		// NVP's total).
		r.BackupPct[k] = 100 * bk / nvpBkRs
		r.RestorePct[k] = 100 * rs / nvpBkRs
		r.TotalPct[k] = 100 * tot / nvpTot
	}
	c.printf("Figure 13 / Section 6.6 — energy vs NVP (RFOffice)\n")
	c.printf("%-12s %9s %10s %9s\n", "scheme", "backup%", "restore%", "total%")
	for _, k := range fig13Kinds {
		c.printf("%-12v %9.2f %10.2f %9.2f\n", k, r.BackupPct[k], r.RestorePct[k], r.TotalPct[k])
	}
	c.printf("\n")
	return r, nil
}

// Fig15Result holds per-trace cache miss rates.
type Fig15Result struct {
	// MissRate[profile][kind] in percent.
	MissRate map[trace.Profile]map[arch.Kind]float64
}

var fig15Kinds = []arch.Kind{arch.ReplayCache, arch.NVSRAM, arch.NVSRAME, arch.SweepEmptyBit}

// Fig15 reproduces Figure 15: L1D miss rates across power traces.
func (c *Context) Fig15() (*Fig15Result, error) {
	r := &Fig15Result{MissRate: map[trace.Profile]map[arch.Kind]float64{}}
	c.printf("Figure 15 — cache miss rate (%%) per trace\n")
	c.printf("%-10s %12s %10s %10s %12s\n", "trace", "ReplayCache", "NVSRAM", "NVSRAM-E", "SweepCache")
	for _, pr := range trace.Profiles() {
		m, err := c.runMatrix(fig15Kinds, &pr, c.Params)
		if err != nil {
			return nil, err
		}
		r.MissRate[pr] = map[arch.Kind]float64{}
		c.printf("%-10s", pr)
		for _, k := range fig15Kinds {
			var hits, misses uint64
			for _, n := range m.Names {
				res := m.Get(n, k)
				hits += res.CacheHits
				misses += res.CacheMisses
			}
			mr := 100 * float64(misses) / float64(hits+misses)
			r.MissRate[pr][k] = mr
			c.printf(" %*.2f", map[arch.Kind]int{arch.ReplayCache: 12, arch.NVSRAM: 10, arch.NVSRAME: 10, arch.SweepEmptyBit: 12}[k], mr)
		}
		c.printf("\n")
	}
	c.printf("\n")
	return r, nil
}

// Fig16Result holds NVM write counts normalized to NVSRAM.
type Fig16Result struct {
	// Normalized[profile][kind] = NVM writes / NVSRAM's NVM writes.
	Normalized map[trace.Profile]map[arch.Kind]float64
}

// Fig16 reproduces Figure 16: NVM writes normalized to NVSRAM per trace.
func (c *Context) Fig16() (*Fig16Result, error) {
	r := &Fig16Result{Normalized: map[trace.Profile]map[arch.Kind]float64{}}
	c.printf("Figure 16 — NVM writes normalized to NVSRAM\n")
	c.printf("%-10s %12s %10s %10s %12s\n", "trace", "ReplayCache", "NVSRAM", "NVSRAM-E", "SweepCache")
	for _, pr := range trace.Profiles() {
		m, err := c.runMatrix(fig15Kinds, &pr, c.Params)
		if err != nil {
			return nil, err
		}
		writes := func(k arch.Kind) float64 {
			var tot float64
			for _, n := range m.Names {
				res := m.Get(n, k)
				// Line writes plus word-granular writes expressed in
				// line-equivalents, plus JIT backup line traffic.
				tot += float64(res.NVMLineWrites) + float64(res.NVMWrites)/8 +
					float64(res.Arch.LinesBackedUp)
			}
			return tot
		}
		base := writes(arch.NVSRAM)
		r.Normalized[pr] = map[arch.Kind]float64{}
		c.printf("%-10s", pr)
		for _, k := range fig15Kinds {
			v := writes(k) / base
			r.Normalized[pr][k] = v
			c.printf(" %*.2f", map[arch.Kind]int{arch.ReplayCache: 12, arch.NVSRAM: 10, arch.NVSRAME: 10, arch.SweepEmptyBit: 12}[k], v)
		}
		c.printf("\n")
	}
	c.printf("\n")
	return r, nil
}

// HWCostResult is Section 6.9's accounting.
type HWCostResult struct {
	Bits int
}

// HWCost reproduces Section 6.9: SweepCache's extra state beyond the two
// persist buffers for the default 4 kB cache — 134 bits.
func (c *Context) HWCost() *HWCostResult {
	lines := c.Params.CacheSize / 64
	r := &HWCostResult{Bits: persist.HardwareCostBits(lines)}
	c.printf("Section 6.9 — hardware cost: %d bits (2 empty-bits + 4 phase bits + 2x%d-bit WBI tables)\n\n",
		r.Bits, lines)
	return r
}

// DegradationResult is the Section 2.2 capacitor-degradation ablation.
type DegradationResult struct {
	// Slowdown of NVSRAM when its backup threshold is raised by 20%/40%
	// of the backup-to-Vmin margin headroom.
	Slowdown20 float64
	Slowdown40 float64
}

// Degradation reproduces the Section 2.2 observation: raising the JIT
// backup voltage threshold (as capacitor degradation demands) slows
// JIT-checkpoint designs down substantially.
func (c *Context) Degradation() (*DegradationResult, error) {
	pr := trace.RFOffice
	run := func(extra float64) (float64, error) {
		p := c.Params
		p.VBackupBoost = extra
		m, err := c.runMatrix([]arch.Kind{arch.NVSRAM}, &pr, p)
		if err != nil {
			return 0, err
		}
		var tot float64
		for _, n := range m.Names {
			tot += float64(m.Get(n, arch.NVSRAM).TimeNs)
		}
		return tot, nil
	}
	base, err := run(0)
	if err != nil {
		return nil, err
	}
	t20, err := run(0.20)
	if err != nil {
		return nil, err
	}
	t40, err := run(0.40)
	if err != nil {
		return nil, err
	}
	r := &DegradationResult{Slowdown20: t20 / base, Slowdown40: t40 / base}
	c.printf("Section 2.2 — capacitor degradation (backup threshold raised)\n")
	c.printf("+20%%: %.2fx slowdown   +40%%: %.2fx slowdown\n\n", r.Slowdown20, r.Slowdown40)
	return r, nil
}

// ThresholdResult is the Section 6.4 store-threshold study.
type ThresholdResult struct {
	Thresholds []int
	// MeanStores[threshold] = average dynamic stores per region.
	MeanStores map[int]float64
	// Speedup[threshold] = outage-free geomean speedup over NVP.
	Speedup map[int]float64
}

// Threshold reproduces Section 6.4's store-threshold paragraph: average
// dynamic store counts barely move across thresholds 32-256 because the
// callsite and loop-header boundaries dominate.
func (c *Context) Threshold() (*ThresholdResult, error) {
	ths := []int{32, 64, 128, 256}
	r := &ThresholdResult{Thresholds: ths, MeanStores: map[int]float64{}, Speedup: map[int]float64{}}
	c.printf("Section 6.4 — store threshold sensitivity (outage-free)\n")
	c.printf("%-10s %12s %10s\n", "threshold", "avg stores", "speedup")
	for _, th := range ths {
		p := c.Params
		p.StoreThreshold = th
		m, err := c.runMatrix([]arch.Kind{arch.SweepEmptyBit}, nil, p)
		if err != nil {
			return nil, err
		}
		h := stats.NewHist(th + 1)
		for _, n := range m.Names {
			if err := h.Merge(m.Get(n, arch.SweepEmptyBit).Arch.StoresPerRegion); err != nil {
				return nil, err
			}
		}
		r.MeanStores[th] = h.Mean()
		r.Speedup[th] = m.GeomeanSpeedup(arch.SweepEmptyBit, nil)
		c.printf("%-10d %12.2f %10.2f\n", th, r.MeanStores[th], r.Speedup[th])
	}
	c.printf("\n")
	return r, nil
}

// Table1 prints the simulation configuration.
func (c *Context) Table1() {
	p := c.Params
	c.printf("Table 1 — simulation configuration\n")
	c.printf("Vmax/Vmin: %.1f/%.1f V  NVP backup/restore: %.1f/%.1f V  NVSRAM: 3.2/3.4 V  Sweep restore: 3.3 V\n",
		p.Vmax, p.Vmin, p.VBackup, p.VRestore)
	c.printf("cache: %d B, %d-way   capacitor: %s   NVM: %d MB ReRAM, %d/%d ns write/read\n",
		p.CacheSize, p.CacheWays, capLabel(p.CapacitorF), p.NVMSize>>20, p.NVMWriteNs, p.NVMReadNs)
	c.printf("persist buffers: 2 x %d entries   propagation delay: %.1f/%.1f us (JIT), -/%.1f us (Sweep)\n\n",
		p.StoreThreshold, float64(p.BackupDelayNs)/1e3, float64(p.RestoreDelayNs)/1e3,
		float64(p.SweepRestoreDelayNs)/1e3)
}
