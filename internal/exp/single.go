package exp

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/journal"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// CellID builds the journal/store identity of one (workload, scheme,
// profile) cell under this context's scale, seed, params, and engine
// revision — the content-hash key the result store memoizes on.
func (c *Context) CellID(workload string, kind arch.Kind, profile *trace.Profile) journal.Cell {
	return journal.Cell{
		Workload: workload,
		Scale:    c.Scale,
		Scheme:   kind.String(),
		Profile:  profileName(profile),
		Seed:     c.Seed,
		ParamsFP: c.Params.Fingerprint(),
		Engine:   sim.EngineVersion,
	}
}

// RunSingle executes one cell with the full matrix-cell machinery —
// parameter validation, panic isolation (a panicking simulation comes
// back as a *CellError with the stack, never up the caller's stack),
// CellTimeout, chaos injection, and metrics accumulation — but without
// the matrix's journal consultation: callers like the result store own
// the caching story. This is the simulation entry point of
// simulation-as-a-service (internal/service).
func (c *Context) RunSingle(ctx context.Context, workload string, kind arch.Kind, profile *trace.Profile) (*sim.Result, error) {
	w, err := workloads.ByName(workload)
	if err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	if err := c.Params.Validate(); err != nil {
		return nil, fmt.Errorf("exp: invalid params: %w", err)
	}
	if ctx == nil {
		ctx = c.ctx()
	}
	return c.runCell(ctx, matrixJob{w, kind}, c.Params, profile,
		profileName(profile), c.Params.Fingerprint())
}
