// Monte-Carlo seed sweep: the same (workload, scheme) matrix as the
// speedup figures, but across many power-trace seeds per cell, so each
// speedup is reported as a mean with a 95% confidence interval instead of
// a single-timeline point estimate. Within one cell the seeds run on the
// lockstep batched engine (sim.RunBatch) — decode and instruction
// semantics are paid once per instruction for the whole seed batch — and
// cells run in parallel across workers, so a sweep costs a small multiple
// of the single-seed matrix rather than seeds× it.
package exp

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// SweepCell is one (workload, scheme) cell of a seed sweep: the speedup
// over NVP aggregated across seeds.
type SweepCell struct {
	Workload string
	Kind     arch.Kind
	// N is the number of seeds contributing; Mean and Half are the mean
	// speedup over NVP (same seed, same timeline) and the half-width of
	// its 95% Student-t confidence interval.
	N    int
	Mean float64
	Half float64
}

// SweepResult is the outcome of a seed-sweep experiment.
type SweepResult struct {
	Profile trace.Profile
	Seeds   int
	Batch   int
	Kinds   []arch.Kind
	Names   []string
	Cells   map[cell]SweepCell
}

// Get returns the aggregated cell for (workload, kind).
func (r *SweepResult) Get(name string, k arch.Kind) SweepCell {
	return r.Cells[cell{name, k}]
}

// sweepJob is one (workload, scheme) column of the sweep: all seeds of
// one cell, batched.
type sweepJob struct {
	w matrixJob
	// results[i] is seed c.Seed+i's run; errs[i] its failure, if any.
	results []*sim.Result
	errs    []error
}

// SeedSweep runs every workload on NVP plus the requested kinds under
// `c.Seeds` power-trace seeds of the profile (seeds c.Seed through
// c.Seed+c.Seeds-1), batching each cell's seeds on the lockstep engine
// with lane count `c.BatchWidth`, and aggregates per-seed speedups over
// NVP into mean ± 95% CI per cell.
//
// The resilience contract matches runMatrix, at per-seed granularity:
// each failed seed is reported as its own *CellError carrying the exact
// (workload, scheme, profile, seed, params) identity, healthy seeds'
// results stand, and with a journal attached every completed seed is
// durable under the same content-hash identity the scalar matrix uses —
// a sweep interrupted and rerun resumes seed by seed, and a seed proven
// by a scalar run is never re-simulated (the batched engine is bit-exact
// against the scalar one, so the journals are interchangeable).
func (c *Context) SeedSweep(profile trace.Profile, kinds []arch.Kind) (*SweepResult, error) {
	p := c.Params
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("exp: invalid params: %w", err)
	}
	seeds := c.Seeds
	if seeds <= 0 {
		seeds = 1
	}
	width := c.BatchWidth
	if width <= 0 {
		width = 8
	}
	wl := c.Workloads()
	if len(wl) == 0 {
		return nil, errors.New("exp: empty workload set — nothing to sweep")
	}

	allKinds := []arch.Kind{arch.NVP}
	seen := map[arch.Kind]bool{arch.NVP: true}
	for _, k := range kinds {
		if !seen[k] {
			seen[k] = true
			allKinds = append(allKinds, k)
		}
	}
	var jobs []*sweepJob
	for _, w := range wl {
		for _, k := range allKinds {
			jobs = append(jobs, &sweepJob{w: matrixJob{w, k}})
		}
	}

	ctx := c.ctx()
	pname := profile.String()
	fp := p.Fingerprint()

	// One worker per CPU, one job per (workload, scheme) cell: the batch
	// engine amortizes across seeds inside a job, the pool amortizes
	// across cells.
	workers := runtime.NumCPU()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	jobCh := make(chan *sweepJob)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				c.sweepCell(ctx, j, p, profile, pname, fp, seeds, width)
			}
		}()
	}
feed:
	for _, j := range jobs {
		select {
		case jobCh <- j:
		case <-ctx.Done():
			// Drain: undone jobs report the cancellation per seed.
			for i := range j.results {
				if j.results[i] == nil && j.errs[i] == nil {
					j.errs[i] = c.sweepErr(j.w, pname, fp, int64(i), ctx.Err(), nil)
				}
			}
			if j.results == nil {
				j.results = make([]*sim.Result, seeds)
				j.errs = make([]error, seeds)
				for i := range j.errs {
					j.errs[i] = c.sweepErr(j.w, pname, fp, int64(i), ctx.Err(), nil)
				}
			}
			break feed
		}
	}
	close(jobCh)
	wg.Wait()

	// Per-seed error assembly, mirroring runMatrix: under cancellation the
	// interrupted seeds collapse into one summary line, genuine failures
	// are each reported with their seed identity.
	var real []error
	interrupted, done, total := 0, 0, 0
	for _, j := range jobs {
		for i := 0; i < seeds; i++ {
			if j.results == nil {
				interrupted++
				total++
				continue
			}
			total++
			if j.results[i] != nil {
				done++
			}
			err := j.errs[i]
			if err == nil {
				continue
			}
			if errors.Is(err, context.Canceled) && ctx.Err() != nil {
				interrupted++
				continue
			}
			real = append(real, err)
		}
	}
	if err := ctx.Err(); err != nil {
		real = append(real, fmt.Errorf("exp: sweep canceled with %d/%d seed-cells complete (%d interrupted): %w",
			done, total, interrupted, err))
	}
	if err := errors.Join(real...); err != nil {
		return nil, err
	}

	res := &SweepResult{Profile: profile, Seeds: seeds, Batch: width,
		Kinds: allKinds[1:], Cells: map[cell]SweepCell{}}
	byJob := map[cell]*sweepJob{}
	for _, j := range jobs {
		byJob[cell{j.w.w.Name, j.w.k}] = j
	}
	for _, w := range wl {
		res.Names = append(res.Names, w.Name)
		base := byJob[cell{w.Name, arch.NVP}]
		for _, k := range allKinds[1:] {
			j := byJob[cell{w.Name, k}]
			spd := make([]float64, seeds)
			for i := 0; i < seeds; i++ {
				spd[i] = float64(base.results[i].TimeNs) / float64(j.results[i].TimeNs)
			}
			mean, half := stats.MeanCI(spd)
			res.Cells[cell{w.Name, k}] = SweepCell{Workload: w.Name, Kind: k,
				N: seeds, Mean: mean, Half: half}
		}
	}

	c.printf("seed sweep under %s — speedups over NVP, mean ±95%% CI over %d seeds (batch width %d)\n",
		pname, seeds, width)
	c.printf("%-13s", "benchmark")
	for _, k := range res.Kinds {
		c.printf(" %16v", k)
	}
	c.printf("\n")
	for _, name := range res.Names {
		c.printf("%-13s", name)
		for _, k := range res.Kinds {
			sc := res.Get(name, k)
			c.printf("      %5.2f ±%4.2f", sc.Mean, sc.Half)
		}
		c.printf("\n")
	}
	c.printf("\n")
	return res, nil
}

// Sweep is the seed-sweep experiment as the sweepexp command runs it:
// the Figure 6 configuration (RF-Home harvest, the four evaluated
// schemes) across c.Seeds seeds.
func (c *Context) Sweep() (*SweepResult, error) {
	return c.SeedSweep(trace.RFHome, evalKinds)
}

// sweepErr builds one seed's typed failure. Seed sweeps never fold seeds
// into one error: a multi-seed cell that fails on two seeds reports two
// *CellError values, each independently actionable (and independently
// resumable under a journal).
func (c *Context) sweepErr(j matrixJob, pname, fp string, off int64, cause error, stack []byte) *CellError {
	return &CellError{Workload: j.w.Name, Scheme: j.k.String(),
		Profile: pname, Seed: c.Seed + off, ParamsFP: fp, Err: cause, Stack: stack}
}

// sweepCell runs all seeds of one (workload, scheme) cell: journal-proven
// seeds are reconstructed, the rest run on the batched engine in chunks
// of the batch width. A panic anywhere in the cell fails the not-yet-
// finished seeds of the in-flight chunk, not the whole sweep.
func (c *Context) sweepCell(ctx context.Context, j *sweepJob, p config.Params, profile trace.Profile, pname, fp string, seeds, width int) {
	j.results = make([]*sim.Result, seeds)
	j.errs = make([]error, seeds)

	cellAt := func(off int) journal.Cell {
		id := c.cellID(j.w, pname, fp)
		id.Seed = c.Seed + int64(off)
		return id
	}

	var pending []int
	for i := 0; i < seeds; i++ {
		if c.Journal != nil {
			if rec, ok := c.Journal.Lookup(cellAt(i)); ok {
				j.results[i] = rec.Result()
				continue
			}
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return
	}

	cres, err := core.SharedCompileCache().Get(core.KeyFor(j.w.w.Name, c.Scale, j.w.k, p), c.builder(j.w.w), j.w.k, p)
	if err != nil {
		for _, i := range pending {
			j.errs[i] = c.sweepErr(j.w, pname, fp, int64(i), err, nil)
		}
		return
	}

	for len(pending) > 0 {
		chunk := pending
		if len(chunk) > width {
			chunk = chunk[:width]
		}
		pending = pending[len(chunk):]
		if err := ctx.Err(); err != nil {
			for _, i := range chunk {
				j.errs[i] = c.sweepErr(j.w, pname, fp, int64(i), err, nil)
			}
			continue
		}
		c.sweepChunk(ctx, j, cres, p, profile, pname, fp, chunk, cellAt)
	}
}

// sweepChunk simulates one batch of seeds inside a panic-isolation
// boundary, mirroring runCell: a panicking chunk fails its own seeds,
// with the recovered stack attached, while the rest of the cell (and the
// sweep) proceeds.
func (c *Context) sweepChunk(ctx context.Context, j *sweepJob, cres *compiler.Result, p config.Params, profile trace.Profile, pname, fp string, chunk []int, cellAt func(int) journal.Cell) {
	defer func() {
		if v := recover(); v != nil {
			cause := fmt.Errorf("worker panic: %v", v)
			stack := debug.Stack()
			for _, i := range chunk {
				if j.results[i] == nil && j.errs[i] == nil {
					j.errs[i] = c.sweepErr(j.w, pname, fp, int64(i), cause, stack)
				}
			}
		}
	}()

	schemes := make([]arch.Scheme, len(chunk))
	opt := sim.BatchOptions{Sources: make([]trace.Source, len(chunk))}
	for li, i := range chunk {
		schemes[li] = arch.New(j.w.k, p)
		opt.Sources[li] = trace.NewShared(profile, c.Seed+int64(i))
	}
	if ctx != context.Background() {
		opt.Ctx = ctx
	}
	results, errs, err := sim.RunBatch(cres.Linked, schemes, opt)
	if err != nil {
		for _, i := range chunk {
			j.errs[i] = c.sweepErr(j.w, pname, fp, int64(i), err, nil)
		}
		return
	}
	for li, i := range chunk {
		if errs[li] != nil {
			j.errs[i] = c.sweepErr(j.w, pname, fp, int64(i), errs[li], nil)
			continue
		}
		res := results[li]
		if c.Journal != nil {
			if jerr := c.Journal.Append(cellAt(i), journal.FromResult(res)); jerr != nil {
				j.errs[i] = c.sweepErr(j.w, pname, fp, int64(i), jerr, nil)
			}
		}
		j.results[i] = res
		if c.Metrics != nil {
			snap := res.Metrics()
			c.metricsMu.Lock()
			merr := c.Metrics.Merge(snap)
			c.metricsMu.Unlock()
			if merr != nil && j.errs[i] == nil {
				j.errs[i] = c.sweepErr(j.w, pname, fp, int64(i), merr, nil)
			}
		}
	}
}
