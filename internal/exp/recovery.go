package exp

import (
	"repro/internal/arch"
	"repro/internal/trace"
)

// RecoveryResult quantifies Section 2.2's claim that ReplayCache's
// sequential store replay makes its recovery slow, against the other
// schemes' restore paths.
type RecoveryResult struct {
	// AvgRestoreNs[kind] is the mean time per outage spent in the
	// scheme's restore work (register reload, cache refill, store
	// replay, buffer-drain redo) — recharge and propagation delays
	// excluded.
	AvgRestoreNs map[arch.Kind]float64
	// AvgReplayed is ReplayCache's mean replayed stores per outage.
	AvgReplayed float64
}

var recoveryKinds = []arch.Kind{arch.NVP, arch.NVSRAM, arch.NVSRAME, arch.ReplayCache, arch.SweepEmptyBit}

// Recovery measures per-outage restore latency under RFOffice.
func (c *Context) Recovery() (*RecoveryResult, error) {
	pr := trace.RFOffice
	m, err := c.runMatrix(recoveryKinds, &pr, c.Params)
	if err != nil {
		return nil, err
	}
	r := &RecoveryResult{AvgRestoreNs: map[arch.Kind]float64{}}
	c.printf("Recovery latency per outage (RFOffice) — Section 2.2's slow-recovery claim\n")
	c.printf("%-14s %14s %16s\n", "scheme", "restore (us)", "replayed stores")
	var totReplay, totOut float64
	for _, k := range recoveryKinds {
		var restore, outs, replayed float64
		for _, n := range m.Names {
			res := m.Get(n, k)
			restore += float64(res.RestoreNs)
			outs += float64(res.Outages)
			replayed += float64(res.Arch.ReplayedStores)
		}
		if outs > 0 {
			r.AvgRestoreNs[k] = restore / outs
		}
		if k == arch.ReplayCache {
			totReplay, totOut = replayed, outs
		}
		c.printf("%-14v %14.2f %16.2f\n", k, r.AvgRestoreNs[k]/1e3, replayed/maxf(outs, 1))
	}
	if totOut > 0 {
		r.AvgReplayed = totReplay / totOut
	}
	c.printf("\n")
	return r, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
