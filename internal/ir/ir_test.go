package ir

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

// twoBlockProgram builds: entry -> (beq r0,r1 ? exit : body), body -> exit.
func twoBlockProgram(t *testing.T) (*Program, *Function) {
	t.Helper()
	p := NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	en.MovI(0, 1)
	en.Beq(0, 1, exit, body)
	body.AddI(2, 2, 1)
	body.Jmp(exit)
	exit.Halt()
	return p, f
}

func TestValidateOK(t *testing.T) {
	p, _ := twoBlockProgram(t)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesEmptyBlock(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	f.Entry().Halt()
	f.NewBlock("orphan") // left empty
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for empty block")
	}
}

func TestValidateCatchesEntryRet(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	f.Entry().Ret()
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for entry function returning")
	}
}

func TestValidateCatchesMissingTarget(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	en.append(isa.Instr{Op: isa.OpJmp}) // raw append: no target
	if err := p.Validate(); err == nil {
		t.Fatal("expected error for jmp without target")
	}
}

func TestSealedBlockPanics(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	en.Halt()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic appending to sealed block")
		}
	}()
	en.Nop()
}

func TestLinkResolvesTargets(t *testing.T) {
	p, _ := twoBlockProgram(t)
	l, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	// entry: movi, beq; body: addi, jmp; exit: halt.
	if len(l.Code) != 5 {
		t.Fatalf("code len = %d: %s", len(l.Code), l.Disasm())
	}
	beq := l.Code[1]
	if beq.Op != isa.OpBeq || beq.Target != 4 {
		t.Errorf("beq target = %d, want 4", beq.Target)
	}
	jmp := l.Code[3]
	if jmp.Op != isa.OpJmp || jmp.Target != 4 {
		t.Errorf("jmp target = %d, want 4", jmp.Target)
	}
}

func TestLinkInsertsFallthroughJump(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	exit := f.NewBlock("exit") // laid out immediately after entry
	body := f.NewBlock("body") // fall target laid out NOT adjacent
	en.Beq(0, 0, exit, body)
	exit.Halt()
	body.Jmp(exit)
	l, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	// After the beq a synthetic jmp to body must appear.
	if l.Code[1].Op != isa.OpJmp {
		t.Fatalf("expected synthetic jmp after branch, got %v\n%s", l.Code[1].Op, l.Disasm())
	}
}

func TestLinkCalls(t *testing.T) {
	p := NewProgram("t")
	callee := p.NewFunc("leaf")
	p.SetEntry(nil) // reset: first NewFunc became entry
	main := p.NewFunc("main")
	p.SetEntry(main)
	callee.Entry().Ret()
	en := main.Entry()
	cont := main.NewBlock("cont")
	en.Call(callee, cont)
	cont.Halt()
	l, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	// Layout: leaf.ret at 0, main.call at 1, cont.halt at 2.
	call := l.Code[1]
	if call.Op != isa.OpCall || call.Target != 0 {
		t.Fatalf("call target = %d\n%s", call.Target, l.Disasm())
	}
	if l.EntryPC != 1 {
		t.Errorf("entry pc = %d", l.EntryPC)
	}
}

func TestSavePCPatching(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	en.Nop()
	// Simulate compiler boundary code mid-stream via raw appends.
	en.append(isa.Instr{Op: isa.OpSavePC})
	en.append(isa.Instr{Op: isa.OpRegionEnd})
	en.Nop()
	en.Halt()
	l, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	if l.Code[1].Op != isa.OpSavePC || l.Code[1].Imm != 3 {
		t.Errorf("save.pc imm = %d, want 3 (pc after region.end)", l.Code[1].Imm)
	}
}

func TestSplitAt(t *testing.T) {
	p := NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	en.Nop()
	en.Nop()
	en.AddI(1, 1, 1)
	en.Halt()
	nb := f.SplitAt(en, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(en.Instrs) != 3 || en.Instrs[2].Op != isa.OpJmp || en.TakenTarget != nb {
		t.Errorf("head after split: %v", en.Instrs)
	}
	if len(nb.Instrs) != 2 || nb.Instrs[0].Op != isa.OpAddI || nb.Instrs[1].Op != isa.OpHalt {
		t.Errorf("tail after split: %v", nb.Instrs)
	}
	if f.Blocks[1] != nb {
		t.Error("split block not laid out after head")
	}
}

func TestSuccs(t *testing.T) {
	p, f := twoBlockProgram(t)
	_ = p
	en := f.Entry()
	succs := en.Succs(nil)
	if len(succs) != 2 {
		t.Fatalf("branch succs = %d", len(succs))
	}
	exit := f.Blocks[2]
	if len(exit.Succs(nil)) != 0 {
		t.Error("halt block has successors")
	}
}

func TestAllocLayout(t *testing.T) {
	p := NewProgram("t")
	a := p.Alloc(8)
	b := p.Alloc(3) // rounds to 8
	c := p.Alloc(16)
	if a != DataBase || b != DataBase+8 || c != DataBase+16 {
		t.Errorf("allocs: %d %d %d", a, b, c)
	}
	if p.DataSize != 32 {
		t.Errorf("data size = %d", p.DataSize)
	}
	base := p.AllocWords([]int64{7, 8})
	if len(p.Inits) != 2 || p.Inits[0].Addr != base || p.Inits[1].Val != 8 {
		t.Errorf("inits: %+v", p.Inits)
	}
}

func TestCkptSlotAddr(t *testing.T) {
	if CkptSlotAddr(0) != CkptBase || CkptSlotAddr(15) != CkptBase+120 {
		t.Error("checkpoint slot addressing")
	}
	if CkptBase+8*isa.NumRegs > DataBase {
		t.Error("checkpoint array overlaps data segment")
	}
}

func TestDisasmMentionsLabels(t *testing.T) {
	p, _ := twoBlockProgram(t)
	l, err := Link(p)
	if err != nil {
		t.Fatal(err)
	}
	d := l.Disasm()
	for _, want := range []string{"main:", ".entry:", ".body:", ".exit:"} {
		if !strings.Contains(d, want) {
			t.Errorf("disasm missing %q:\n%s", want, d)
		}
	}
}
