package ir

import (
	"fmt"

	"repro/internal/isa"
)

// Linked is a program laid out as flat executable code with all control
// transfer targets resolved to code indices ("PCs").
type Linked struct {
	Prog *Program
	Code []isa.Instr
	// Dec is the predecoded dispatch table, position-matched to Code.
	// It is built once here so every simulation of the binary — and
	// every scheme sharing it out of the compile cache — dispatches
	// through the dense class table instead of re-inspecting opcodes.
	Dec []isa.Decoded
	// EntryPC is the PC execution starts at.
	EntryPC int32
	// FuncStart[i] is the first PC of Prog.Funcs[i].
	FuncStart []int32
	// PCBlock[pc] is the block the instruction at pc was emitted from;
	// synthetic fall-through jumps belong to the block they follow.
	PCBlock []*Block
}

// Link lays out blocks in creation order per function, resolves branch,
// jump, and call targets, inserts fall-through jumps where the layout
// requires them, and patches every save.pc immediate with the PC of the
// instruction that follows its region.end (the next region's first real
// instruction).
func Link(p *Program) (*Linked, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	l := &Linked{Prog: p, FuncStart: make([]int32, len(p.Funcs))}

	// First pass: compute block start PCs, accounting for synthetic jumps.
	blockPC := make(map[*Block]int32)
	pc := int32(0)
	for fi, f := range p.Funcs {
		l.FuncStart[fi] = pc
		for bi, b := range f.Blocks {
			blockPC[b] = pc
			pc += int32(len(b.Instrs))
			if needFallJump(f, bi) {
				pc++
			}
		}
	}

	// Second pass: emit and patch.
	l.Code = make([]isa.Instr, 0, pc)
	l.PCBlock = make([]*Block, 0, pc)
	emit := func(in isa.Instr, b *Block) {
		l.Code = append(l.Code, in)
		l.PCBlock = append(l.PCBlock, b)
	}
	for _, f := range p.Funcs {
		for bi, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch {
				case in.Op.IsBranch(), in.Op == isa.OpJmp:
					in.Target = blockPC[b.TakenTarget]
				case in.Op == isa.OpCall:
					in.Target = l.FuncStart[b.CallTarget.Idx]
				case in.Op == isa.OpSavePC:
					// The next region begins right after the
					// region.end that follows this save.pc.
					in.Imm = int64(len(l.Code)) + 2
				}
				emit(in, b)
			}
			if needFallJump(f, bi) {
				emit(isa.Instr{Op: isa.OpJmp, Target: blockPC[b.FallTarget]}, b)
			}
		}
	}
	l.EntryPC = l.FuncStart[p.Entry.Idx]
	l.Dec = isa.Predecode(l.Code)
	return l, nil
}

// needFallJump reports whether block i of f needs a synthetic jump to reach
// its fall-through successor because the successor is not laid out next.
func needFallJump(f *Function, i int) bool {
	b := f.Blocks[i]
	t := b.Terminator()
	if !t.Op.IsBranch() && t.Op != isa.OpCall {
		return false
	}
	return i+1 >= len(f.Blocks) || f.Blocks[i+1] != b.FallTarget
}

// Disasm renders the linked code with PCs, function labels, and block
// labels for debugging.
func (l *Linked) Disasm() string {
	funcAt := map[int32]string{}
	for i, f := range l.Prog.Funcs {
		funcAt[l.FuncStart[i]] = f.Name
	}
	s := ""
	var prev *Block
	for pc, in := range l.Code {
		if name, ok := funcAt[int32(pc)]; ok {
			s += fmt.Sprintf("%s:\n", name)
		}
		if b := l.PCBlock[pc]; b != prev {
			s += fmt.Sprintf("  .%s:\n", b.Label)
			prev = b
		}
		s += fmt.Sprintf("  %5d  %s\n", pc, in)
	}
	return s
}

// StaticInstrCount returns the number of emitted instructions.
func (l *Linked) StaticInstrCount() int { return len(l.Code) }
