// Package ir provides the compiler's intermediate representation: programs
// made of functions, functions made of basic blocks holding isa.Instr
// sequences, plus a builder DSL the benchmark kernels are written in and a
// linker that lays blocks out into flat executable code.
//
// Control flow is explicit: every block ends in exactly one terminator and
// records its successor blocks as pointers (TakenTarget for the branch/jump
// target, FallTarget for the fall-through path, CallTarget for the callee).
// The isa.Instr Target field is only meaningful after Link.
package ir

import (
	"fmt"

	"repro/internal/isa"
)

// Data-layout constants shared with the memory system. The low page of the
// address space is architectural: the recovery-PC slot and the register
// checkpoint array live there so checkpoint stores can use fixed addresses
// (Section 4.1, "Checkpoint Storage Management").
const (
	// PCSlotAddr is the NVM address of the recovery PC slot.
	PCSlotAddr = 0
	// CkptBase is the NVM base address of the register checkpoint array;
	// register r's slot is CkptBase + 8*r.
	CkptBase = 64
	// DataBase is where builder-allocated program data begins.
	DataBase = 4096
)

// CkptSlotAddr returns the checkpoint-array address for register r.
func CkptSlotAddr(r isa.Reg) int64 { return CkptBase + 8*int64(r) }

// Program is a whole compilation unit: functions plus a global data segment.
type Program struct {
	Name  string
	Funcs []*Function
	// Entry is the function execution starts in. It must end in OpHalt on
	// every exiting path rather than OpRet.
	Entry *Function

	// DataSize is the number of bytes of global data allocated past
	// DataBase. Inits lists words to pre-load into NVM before execution.
	DataSize int64
	Inits    []DataInit

	nextAlloc int64
}

// DataInit pre-loads one value into NVM before the program runs.
type DataInit struct {
	Addr int64
	Val  int64
	Byte bool // if set, only the low byte is written
}

// Function is a named sequence of basic blocks. Blocks[0] is the entry.
type Function struct {
	Name   string
	Idx    int
	Blocks []*Block

	prog *Program
}

// Block is a basic block: straight-line instructions ending in one
// terminator. The builder appends via the typed helper methods.
type Block struct {
	Label string
	Fn    *Function
	// Idx is the block's position within Fn.Blocks; maintained by the
	// builder and by compiler passes that split blocks.
	Idx    int
	Instrs []isa.Instr

	// TakenTarget is the successor for branch/jump terminators.
	TakenTarget *Block
	// FallTarget is the fall-through successor for conditional branches
	// and the continuation block for calls.
	FallTarget *Block
	// CallTarget is the callee for call terminators.
	CallTarget *Function

	// RegionHead is set by the compiler when a region boundary precedes
	// this block.
	RegionHead bool

	sealed bool
}

// NewProgram returns an empty program named name.
func NewProgram(name string) *Program {
	return &Program{Name: name}
}

// NewFunc adds a function with an empty entry block labeled "entry". The
// first function created becomes the program entry unless SetEntry
// overrides it.
func (p *Program) NewFunc(name string) *Function {
	f := &Function{Name: name, Idx: len(p.Funcs), prog: p}
	p.Funcs = append(p.Funcs, f)
	if p.Entry == nil {
		p.Entry = f
	}
	f.NewBlock("entry")
	return f
}

// SetEntry marks f as the program entry point.
func (p *Program) SetEntry(f *Function) { p.Entry = f }

// Alloc reserves size bytes of global data (8-byte aligned) and returns the
// base address.
func (p *Program) Alloc(size int64) int64 {
	addr := DataBase + p.nextAlloc
	p.nextAlloc += (size + 7) &^ 7
	p.DataSize = p.nextAlloc
	return addr
}

// InitWord records a 64-bit word to pre-load into NVM at addr.
func (p *Program) InitWord(addr, val int64) {
	p.Inits = append(p.Inits, DataInit{Addr: addr, Val: val})
}

// InitByte records a byte to pre-load into NVM at addr.
func (p *Program) InitByte(addr int64, val byte) {
	p.Inits = append(p.Inits, DataInit{Addr: addr, Val: int64(val), Byte: true})
}

// InitWords pre-loads consecutive words starting at base.
func (p *Program) InitWords(base int64, vals []int64) {
	for i, v := range vals {
		p.InitWord(base+8*int64(i), v)
	}
}

// AllocWords allocates and initializes a word array, returning its base.
func (p *Program) AllocWords(vals []int64) int64 {
	base := p.Alloc(8 * int64(len(vals)))
	p.InitWords(base, vals)
	return base
}

// NewBlock appends an empty block to f.
func (f *Function) NewBlock(label string) *Block {
	b := &Block{Label: label, Fn: f, Idx: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// renumber restores Block.Idx invariants after passes insert blocks.
func (f *Function) renumber() {
	for i, b := range f.Blocks {
		b.Idx = i
	}
}

// InsertBlockAfter places nb immediately after b in layout order.
func (f *Function) InsertBlockAfter(b *Block, nb *Block) {
	f.Blocks = append(f.Blocks, nil)
	copy(f.Blocks[b.Idx+2:], f.Blocks[b.Idx+1:])
	f.Blocks[b.Idx+1] = nb
	f.renumber()
}

// NewBlockAfter creates an empty sealed block placed right after prev in
// layout order. Compiler passes fill Instrs and targets directly.
func (f *Function) NewBlockAfter(prev *Block, label string) *Block {
	nb := &Block{Label: label, Fn: f, sealed: true}
	f.InsertBlockAfter(prev, nb)
	return nb
}

// SplitAt splits b before instruction index idx (0 < idx <= len-1). The new
// block receives Instrs[idx:] together with b's terminator targets; b is
// re-terminated with a jump to the new block, which is laid out right after
// b. Returns the new block.
func (f *Function) SplitAt(b *Block, idx int) *Block {
	if idx <= 0 || idx >= len(b.Instrs) {
		panic(fmt.Sprintf("ir: SplitAt(%s.%s, %d) out of range", f.Name, b.Label, idx))
	}
	nb := &Block{
		Label:       b.Label + ".split",
		Fn:          f,
		Instrs:      append([]isa.Instr(nil), b.Instrs[idx:]...),
		TakenTarget: b.TakenTarget,
		FallTarget:  b.FallTarget,
		CallTarget:  b.CallTarget,
		sealed:      true,
	}
	b.Instrs = append(b.Instrs[:idx:idx], isa.Instr{Op: isa.OpJmp})
	b.TakenTarget = nb
	b.FallTarget = nil
	b.CallTarget = nil
	b.sealed = true
	f.InsertBlockAfter(b, nb)
	return nb
}

// Succs appends b's successor blocks to dst and returns it. Call blocks
// have their continuation (FallTarget) as their only intra-procedural
// successor.
func (b *Block) Succs(dst []*Block) []*Block {
	if len(b.Instrs) == 0 {
		return dst
	}
	t := b.Instrs[len(b.Instrs)-1]
	switch {
	case t.Op.IsBranch():
		dst = append(dst, b.TakenTarget, b.FallTarget)
	case t.Op == isa.OpJmp:
		dst = append(dst, b.TakenTarget)
	case t.Op == isa.OpCall:
		dst = append(dst, b.FallTarget)
	}
	return dst
}

// Terminator returns the block's final instruction.
func (b *Block) Terminator() isa.Instr { return b.Instrs[len(b.Instrs)-1] }

// append adds an instruction, panicking if the block is already sealed.
func (b *Block) append(in isa.Instr) {
	if b.sealed {
		panic(fmt.Sprintf("ir: append to sealed block %s.%s", b.Fn.Name, b.Label))
	}
	b.Instrs = append(b.Instrs, in)
}

func (b *Block) seal() { b.sealed = true }

// ---- builder helpers: straight-line instructions ----

// Nop appends a no-op.
func (b *Block) Nop() { b.append(isa.Instr{Op: isa.OpNop}) }

// MovI sets d to the constant v.
func (b *Block) MovI(d isa.Reg, v int64) {
	b.append(isa.Instr{Op: isa.OpMovI, Dst: d, Imm: v})
}

// Mov copies s into d.
func (b *Block) Mov(d, s isa.Reg) {
	b.append(isa.Instr{Op: isa.OpMov, Dst: d, Src1: s})
}

// ALU appends a register-register ALU op d = a op c.
func (b *Block) ALU(op isa.Op, d, a, c isa.Reg) {
	if !op.IsALURR() {
		panic("ir: ALU with non-RR op " + op.String())
	}
	b.append(isa.Instr{Op: op, Dst: d, Src1: a, Src2: c})
}

// ALUI appends a register-immediate ALU op d = a op imm.
func (b *Block) ALUI(op isa.Op, d, a isa.Reg, imm int64) {
	if !op.IsALURI() {
		panic("ir: ALUI with non-RI op " + op.String())
	}
	b.append(isa.Instr{Op: op, Dst: d, Src1: a, Imm: imm})
}

// Add appends d = a + c. The remaining arithmetic helpers follow suit.
func (b *Block) Add(d, a, c isa.Reg)  { b.ALU(isa.OpAdd, d, a, c) }
func (b *Block) Sub(d, a, c isa.Reg)  { b.ALU(isa.OpSub, d, a, c) }
func (b *Block) Mul(d, a, c isa.Reg)  { b.ALU(isa.OpMul, d, a, c) }
func (b *Block) Div(d, a, c isa.Reg)  { b.ALU(isa.OpDiv, d, a, c) }
func (b *Block) Rem(d, a, c isa.Reg)  { b.ALU(isa.OpRem, d, a, c) }
func (b *Block) And(d, a, c isa.Reg)  { b.ALU(isa.OpAnd, d, a, c) }
func (b *Block) Or(d, a, c isa.Reg)   { b.ALU(isa.OpOr, d, a, c) }
func (b *Block) Xor(d, a, c isa.Reg)  { b.ALU(isa.OpXor, d, a, c) }
func (b *Block) Shl(d, a, c isa.Reg)  { b.ALU(isa.OpShl, d, a, c) }
func (b *Block) Shr(d, a, c isa.Reg)  { b.ALU(isa.OpShr, d, a, c) }
func (b *Block) Sar(d, a, c isa.Reg)  { b.ALU(isa.OpSar, d, a, c) }
func (b *Block) Slt(d, a, c isa.Reg)  { b.ALU(isa.OpSlt, d, a, c) }
func (b *Block) Sltu(d, a, c isa.Reg) { b.ALU(isa.OpSltu, d, a, c) }

// AddI appends d = a + imm; the remaining immediate helpers follow suit.
func (b *Block) AddI(d, a isa.Reg, imm int64) { b.ALUI(isa.OpAddI, d, a, imm) }
func (b *Block) MulI(d, a isa.Reg, imm int64) { b.ALUI(isa.OpMulI, d, a, imm) }
func (b *Block) AndI(d, a isa.Reg, imm int64) { b.ALUI(isa.OpAndI, d, a, imm) }
func (b *Block) OrI(d, a isa.Reg, imm int64)  { b.ALUI(isa.OpOrI, d, a, imm) }
func (b *Block) XorI(d, a isa.Reg, imm int64) { b.ALUI(isa.OpXorI, d, a, imm) }
func (b *Block) ShlI(d, a isa.Reg, imm int64) { b.ALUI(isa.OpShlI, d, a, imm) }
func (b *Block) ShrI(d, a isa.Reg, imm int64) { b.ALUI(isa.OpShrI, d, a, imm) }
func (b *Block) SarI(d, a isa.Reg, imm int64) { b.ALUI(isa.OpSarI, d, a, imm) }

// Ld loads the word at [base+off] into d.
func (b *Block) Ld(d, base isa.Reg, off int64) {
	b.append(isa.Instr{Op: isa.OpLd, Dst: d, Src1: base, Imm: off})
}

// LdB loads the zero-extended byte at [base+off] into d.
func (b *Block) LdB(d, base isa.Reg, off int64) {
	b.append(isa.Instr{Op: isa.OpLdB, Dst: d, Src1: base, Imm: off})
}

// St stores the word in src to [base+off].
func (b *Block) St(base isa.Reg, off int64, src isa.Reg) {
	b.append(isa.Instr{Op: isa.OpSt, Src1: base, Imm: off, Src2: src})
}

// StB stores the low byte of src to [base+off].
func (b *Block) StB(base isa.Reg, off int64, src isa.Reg) {
	b.append(isa.Instr{Op: isa.OpStB, Src1: base, Imm: off, Src2: src})
}

// ---- builder helpers: terminators ----

// Br appends a conditional branch terminator to taken, falling through to
// fall, and seals the block.
func (b *Block) Br(op isa.Op, a, c isa.Reg, taken, fall *Block) {
	if !op.IsBranch() {
		panic("ir: Br with non-branch op " + op.String())
	}
	b.append(isa.Instr{Op: op, Src1: a, Src2: c})
	b.TakenTarget = taken
	b.FallTarget = fall
	b.seal()
}

// Beq branches to taken when a == c; the remaining helpers follow suit.
func (b *Block) Beq(a, c isa.Reg, taken, fall *Block)  { b.Br(isa.OpBeq, a, c, taken, fall) }
func (b *Block) Bne(a, c isa.Reg, taken, fall *Block)  { b.Br(isa.OpBne, a, c, taken, fall) }
func (b *Block) Blt(a, c isa.Reg, taken, fall *Block)  { b.Br(isa.OpBlt, a, c, taken, fall) }
func (b *Block) Bge(a, c isa.Reg, taken, fall *Block)  { b.Br(isa.OpBge, a, c, taken, fall) }
func (b *Block) Bltu(a, c isa.Reg, taken, fall *Block) { b.Br(isa.OpBltu, a, c, taken, fall) }
func (b *Block) Bgeu(a, c isa.Reg, taken, fall *Block) { b.Br(isa.OpBgeu, a, c, taken, fall) }

// Jmp appends an unconditional jump terminator and seals the block.
func (b *Block) Jmp(target *Block) {
	b.append(isa.Instr{Op: isa.OpJmp})
	b.TakenTarget = target
	b.seal()
}

// Call appends a call terminator to callee, continuing in cont.
func (b *Block) Call(callee *Function, cont *Block) {
	b.append(isa.Instr{Op: isa.OpCall})
	b.CallTarget = callee
	b.FallTarget = cont
	b.seal()
}

// Ret appends a return terminator and seals the block.
func (b *Block) Ret() {
	b.append(isa.Instr{Op: isa.OpRet})
	b.seal()
}

// Halt appends a program-end terminator and seals the block.
func (b *Block) Halt() {
	b.append(isa.Instr{Op: isa.OpHalt})
	b.seal()
}

// Validate checks structural invariants: non-empty blocks, exactly one
// terminator per block placed last, targets present where required, and an
// entry function that never returns via Ret.
func (p *Program) Validate() error {
	if p.Entry == nil {
		return fmt.Errorf("ir: program %q has no entry function", p.Name)
	}
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function %q has no blocks", f.Name)
		}
		for bi, b := range f.Blocks {
			if b.Idx != bi {
				return fmt.Errorf("ir: %s.%s has stale index %d (want %d)", f.Name, b.Label, b.Idx, bi)
			}
			if len(b.Instrs) == 0 {
				return fmt.Errorf("ir: %s.%s is empty", f.Name, b.Label)
			}
			for i, in := range b.Instrs {
				isLast := i == len(b.Instrs)-1
				if in.Op.IsTerminator() != isLast {
					return fmt.Errorf("ir: %s.%s instr %d (%s): terminator placement", f.Name, b.Label, i, in)
				}
			}
			t := b.Terminator()
			switch {
			case t.Op.IsBranch():
				if b.TakenTarget == nil || b.FallTarget == nil {
					return fmt.Errorf("ir: %s.%s branch missing targets", f.Name, b.Label)
				}
			case t.Op == isa.OpJmp:
				if b.TakenTarget == nil {
					return fmt.Errorf("ir: %s.%s jmp missing target", f.Name, b.Label)
				}
			case t.Op == isa.OpCall:
				if b.CallTarget == nil || b.FallTarget == nil {
					return fmt.Errorf("ir: %s.%s call missing callee or continuation", f.Name, b.Label)
				}
			case t.Op == isa.OpRet && f == p.Entry:
				return fmt.Errorf("ir: entry function %q returns via ret; use halt", f.Name)
			}
		}
	}
	return nil
}

// String renders the program as readable assembly for debugging.
func (p *Program) String() string {
	s := ""
	for _, f := range p.Funcs {
		s += fmt.Sprintf("func %s:\n", f.Name)
		for _, b := range f.Blocks {
			head := ""
			if b.RegionHead {
				head = " <region>"
			}
			s += fmt.Sprintf("  %s:%s\n", b.Label, head)
			for _, in := range b.Instrs {
				s += "    " + in.String() + "\n"
			}
		}
	}
	return s
}
