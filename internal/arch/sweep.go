package arch

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/persist"
	"repro/internal/telemetry"
)

// sweep implements SweepCache (Figure 1e): a volatile write-back cache in
// front of dual NVM-resident persist buffers. During a region, dirty
// evictions are quarantined in the active buffer (t-phase1); at a region
// end the dirty lines named by the write-back-instructive table are flushed
// into the buffer (s-phase1) and a DMA drains the buffer to NVM (s-phase2)
// while the next region already executes out of the other buffer
// (region-level parallelism, Section 3.3). No JIT checkpointing exists:
// power failure destroys the cache and registers, and recovery follows the
// (phase1Complete, phase2Complete) protocol of Section 4.2 using the
// register-checkpoint array and recovery-PC slot in NVM.
//
// The simulator mirrors the paper's fast-path hardware: the region-end
// flush set comes from the cache's incremental dirty list (in lockstep
// with the WBI table — the table exists precisely so hardware need not
// scan the cache, Section 4.6), and buffer searches resolve through the
// youngest-entry index while charging the sequential NVM-search cost the
// modelled hardware pays. Build with -tags debugcheck to re-enable the
// full-scan agreement assertions.
type sweep struct {
	base
	c        *cache.Cache
	emptyBit bool // Empty-Bit Search vs NVM Search (Section 4.4)

	bufs   [2]*persist.Buffer
	wbi    [2]*persist.WBITable
	active int
	seq    uint64

	// flushDoneAt[slot] is when the previous region's s-phase1 finishes
	// flushing that cacheline (the hardware walks the WBI table line by
	// line, clearing dirty bits as it goes).
	flushDoneAt []int64

	storesThisRegion int
	pendingRedo      []*persist.Buffer

	// nextDrainAt caches the earliest Phase2End among sealed, unretired
	// buffers (or noDrainPending), so the per-access Sync is one compare
	// instead of a two-buffer scan. Pure bookkeeping: drains still apply
	// at exactly the same simulated instants.
	nextDrainAt int64

	// Region-end scratch, reused across regions to keep the hot path
	// allocation-free.
	dirtyScratch []int
	flushScratch []persist.Entry
}

func newSweep(p config.Params, emptyBit bool) *sweep {
	s := &sweep{
		base:     newBase(p),
		c:        cache.New(p.CacheSize, p.CacheWays),
		emptyBit: emptyBit,
	}
	for i := range s.bufs {
		s.bufs[i] = persist.NewBuffer(p.StoreThreshold)
		s.wbi[i] = persist.NewWBITable(s.c.NumLines())
	}
	s.flushDoneAt = make([]int64, s.c.NumLines())
	s.seq = 1
	s.bufs[0].Claim(s.seq)
	s.nextDrainAt = noDrainPending
	return s
}

// noDrainPending marks nextDrainAt when no sealed buffer awaits its
// s-phase2 completion.
const noDrainPending = int64(^uint64(0) >> 1)

func (s *sweep) Name() string {
	if s.emptyBit {
		return "Sweep-EmptyBit"
	}
	return "Sweep-NVMSearch"
}

func (s *sweep) Kind() Kind {
	if s.emptyBit {
		return SweepEmptyBit
	}
	return SweepNVMSearch
}

func (s *sweep) JIT() bool           { return false }
func (s *sweep) Cache() *cache.Cache { return s.c }

// Boot emits the first region's start; the buffer itself was claimed at
// construction, before any tracer could be attached.
func (s *sweep) Boot(entryPC int64) {
	s.tr.Emit(telemetry.EvRegionStart, 0, int64(s.seq), 0, 0, 0)
}

// Sync drains buffers whose s-phase2 completed by now, in region order so
// a younger duplicate line lands after an older one. The fast path — no
// sealed buffer due yet — is a single compare against the cached earliest
// completion time.
func (s *sweep) Sync(now int64) {
	if now < s.nextDrainAt {
		return
	}
	for {
		var due *persist.Buffer
		for _, b := range s.bufs {
			if b.Sealed && !b.Retired && b.Phase2CompleteAt(now) {
				if due == nil || b.Region < due.Region {
					due = b
				}
			}
		}
		if due == nil {
			s.recomputeNextDrain()
			return
		}
		// The span's end time is the logical s-phase2 completion, not the
		// (later) moment the drain is observed and applied.
		s.tr.Emit(telemetry.EvSweepEnd, due.Phase2End, int64(due.Region), int64(due.Len()), 0, 0)
		due.Drain(s.nvm)
	}
}

// recomputeNextDrain re-derives the cached earliest pending s-phase2
// completion from the buffers' actual state.
func (s *sweep) recomputeNextDrain() {
	s.nextDrainAt = noDrainPending
	for _, b := range s.bufs {
		if b.Sealed && !b.Retired && b.Phase2End < s.nextDrainAt {
			s.nextDrainAt = b.Phase2End
		}
	}
}

// searchBuffers looks for addr in the persist buffers on a load miss,
// youngest region first (the active buffer holds the current region's
// evictions). The hit position comes from the buffer's youngest-entry
// index, but the charged latency and energy are the modelled hardware's
// sequential scan — each conceptually probed entry is an NVM read — so the
// cost is identical to walking the FIFO. With the empty-bit variant an
// empty buffer is skipped outright; the NVM Search variant always pays at
// least the FIFO metadata read (Section 4.4).
func (s *sweep) searchBuffers(now int64, addr int64) (*[mem.LineSize]byte, cpu.Cost) {
	var cost cpu.Cost
	searched := false
	var found *[mem.LineSize]byte
	order := [2]*persist.Buffer{s.bufs[s.active], s.bufs[1-s.active]}
	for _, b := range order {
		if s.emptyBit && b.Empty() {
			continue
		}
		searched = true
		cost.Ns += s.p.SearchBaseNs
		e, depth := b.FindDepth(addr)
		cost.Ns += int64(depth) * s.p.SearchPerEntryNs
		// One ledger add per probed entry, exactly as the sequential scan
		// charged it, so energy totals stay bit-identical.
		for i := 0; i < depth; i++ {
			s.led.NVM += s.p.ENVMRead
		}
		if e != nil {
			found = &e.Data
			break
		}
	}
	if searched {
		s.st.BufferSearches++
	} else {
		s.st.BufferBypasses++
	}
	if found != nil {
		s.st.BufferHits++
	}
	return found, cost
}

// missFill handles a load/store miss: evict the victim into the active
// buffer if dirty, then fill from the buffers or NVM.
func (s *sweep) missFill(now int64, addr int64) (int, cpu.Cost) {
	var cost cpu.Cost
	v := s.c.Victim(addr)
	if s.c.Valid(v) && s.c.Dirty(v) {
		// t-phase1: quarantine the writeback in the active buffer
		// (an NVM-resident write).
		s.bufs[s.active].Append(s.c.Tag(v), s.c.Data(v))
		s.nvm.LineWrites++
		s.led.Persist += s.p.ENVMLineWrite
		cost.Ns += s.p.NVMLineWriteNs
		s.wbi[s.active].ClearBit(v)
		s.tr.Emit(telemetry.EvDirtyEvict, now, s.c.Tag(v), int64(s.c.DirtyRegion(v)), 0, 0)
		s.c.ClearDirty(v)
		s.c.DirtyEvictions++
	}
	data, scost := s.searchBuffers(now, addr)
	cost.Add(scost)
	slot := s.c.FillUninit(addr)
	if data != nil {
		*s.c.Data(slot) = *data
	} else {
		s.nvm.ReadLine(mem.LineAddr(addr), s.c.Data(slot))
		s.led.NVM += s.p.ENVMLineRead
		cost.Ns += s.p.NVMLineReadNs
	}
	return slot, cost
}

func (s *sweep) Load(now int64, addr int64, byteWide bool) (int64, cpu.Cost) {
	s.Sync(now)
	s.led.Compute += s.p.ESRAMAccess
	slot := s.c.Touch(addr)
	var cost cpu.Cost
	if slot == cache.NoSlot {
		slot, cost = s.missFill(now, addr)
	}
	if byteWide {
		return int64(s.c.ByteAt(slot, addr)), cost
	}
	return s.c.ReadWord(slot, addr), cost
}

func (s *sweep) Store(now int64, addr int64, val int64, byteWide bool) cpu.Cost {
	s.Sync(now)
	s.led.Compute += s.p.ESRAMAccess
	slot := s.c.Touch(addr)
	var cost cpu.Cost
	if slot == cache.NoSlot {
		slot, cost = s.missFill(now, addr)
	}
	// Write-after-write rule (Section 4.3). The s-phase1 hardware walks
	// the previous region's WBI table line by line, clearing dirty bits
	// as it flushes; a store must wait if its target line is still
	// awaiting flush. A line already flushed (clean) proceeds — unless
	// the current region re-dirtied it, in which case the hardware's
	// coarse (dirty, WBI-prev, phase1Complete) check stalls spuriously:
	// the paper's rare false positive.
	prev := s.bufs[1-s.active]
	if s.wbi[1-s.active].Get(slot) && prev.Sealed && !prev.Phase1CompleteAt(now+cost.Ns) {
		t := now + cost.Ns
		var until int64
		if done := s.flushDoneAt[slot]; done > t {
			until = done // true hazard: this line's flush is in flight
		} else if s.c.Dirty(slot) {
			until = prev.Phase1End // false positive: re-dirtied line
		}
		if until > t {
			wait := until - t
			cost.Ns += wait
			s.st.WAWStallNs += wait
		}
	}
	if byteWide {
		s.c.SetByte(slot, addr, byte(val))
	} else {
		s.c.WriteWord(slot, addr, val)
	}
	if !s.c.Dirty(slot) {
		s.c.MarkDirtyRegion(slot, s.seq)
		s.wbi[s.active].Set(slot)
	}
	s.storesThisRegion++
	return cost
}

// assertWBIAgreement is the paper's Section 4.6 invariant, checked the
// expensive way: the WBI table, the cache's incremental dirty list, and a
// full per-slot cache scan must all name exactly the same lines. The fast
// paths keep these in lockstep by construction; the scan survives behind
// the debugcheck build tag.
func (s *sweep) assertWBIAgreement(dirty []int) {
	if got, want := s.wbi[s.active].Count(), len(dirty); got != want {
		panic(fmt.Sprintf("sweep: WBI table (%d) disagrees with dirty list (%d)", got, want))
	}
	for _, slot := range dirty {
		if !s.wbi[s.active].Get(slot) {
			panic("sweep: dirty line missing from WBI table")
		}
	}
	for slot := 0; slot < s.c.NumLines(); slot++ {
		if s.wbi[s.active].Get(slot) != (s.c.Valid(slot) && s.c.Dirty(slot)) {
			panic(fmt.Sprintf("sweep: WBI/dirty-scan disagreement at slot %d", slot))
		}
	}
}

func (s *sweep) RegionEnd(now int64) cpu.Cost {
	s.Sync(now)
	var cost cpu.Cost

	// Structural hazard (Section 3.3): the buffer about to be claimed
	// must have finished its s-phase2.
	other := s.bufs[1-s.active]
	if other.Sealed && !other.Retired {
		wait := other.Phase2End - now
		if wait > 0 {
			cost.Ns += wait
			s.st.TwaitNs += wait
			s.Sync(now + cost.Ns)
		}
	}

	// s-phase1 flush set: the WBI-driven dirty list (Section 4.6), in the
	// same ascending slot order the full-cache scan produced.
	s.dirtyScratch = s.c.DirtySlots(s.dirtyScratch[:0])
	dirty := s.dirtyScratch
	if cache.DebugChecks {
		s.assertWBIAgreement(dirty)
	}
	flush := s.flushScratch[:0]
	start := now + cost.Ns
	for i, slot := range dirty {
		flush = append(flush, persist.Entry{Addr: s.c.Tag(slot), Data: *s.c.Data(slot)})
		s.c.ClearDirty(slot) // flushed lines remain resident and clean
		s.flushDoneAt[slot] = start + int64(i+1)*s.p.FlushPerLineNs
	}
	s.flushScratch = flush

	cur := s.bufs[s.active]
	cur.Seal(start, flush, s.p.FlushPerLineNs, s.p.DrainPerLineNs, other.Phase2End)
	if cur.Phase2End < s.nextDrainAt {
		s.nextDrainAt = cur.Phase2End
	}
	s.tr.Emit(telemetry.EvRegionCommit, start, int64(s.seq), int64(s.storesThisRegion), int64(len(dirty)), 0)
	s.tr.Emit(telemetry.EvSweepBegin, start, int64(cur.Region), int64(cur.Len()), 0, 0)

	// Account the persistence traffic: the flush writes the NVM-resident
	// buffer, the drain writes the home locations (write amplification,
	// Figure 16). Drain line-writes are counted when applied.
	nFlush := int64(len(flush))
	s.nvm.LineWrites += uint64(nFlush)
	s.led.Persist += float64(nFlush)*s.p.ENVMLineWrite + float64(cur.Len())*s.p.ENVMLineWrite

	// Parallelism accounting (Section 6.3): Tp is what a design without
	// region-level parallelism would stall for.
	s.st.TpNs += nFlush*s.p.FlushPerLineNs + int64(cur.Len())*s.p.DrainPerLineNs

	// Figure 3a ablation: with a single buffer the next region cannot
	// start until this region's own persistence completes.
	if s.p.SweepSingleBuffer {
		if wait := cur.Phase2End - start; wait > 0 {
			cost.Ns += wait
			s.st.TwaitNs += wait
			s.Sync(cur.Phase2End)
		}
	}
	s.st.RegionsExecuted++
	s.st.StoresPerRegion.Add(s.storesThisRegion)
	s.storesThisRegion = 0

	// Switch buffers; WBI of the ending region stays visible for the
	// WAW rule until its phase 1 completes.
	s.seq++
	s.active = 1 - s.active
	s.bufs[s.active].Claim(s.seq)
	s.wbi[s.active].Clear()
	s.tr.Emit(telemetry.EvRegionStart, now+cost.Ns, int64(s.seq), 0, 0, 0)
	return cost
}

func (s *sweep) Backup(now int64, regs *cpu.Regs, pc int64) cpu.Cost {
	panic("sweep: JIT backup does not exist in SweepCache")
}

func (s *sweep) PowerFail(now int64) {
	s.Sync(now)
	s.pendingRedo = s.pendingRedo[:0]
	// Classify each buffer by its phase bits at the failure instant
	// (Section 4.2): (1,0) buffers are redone at recovery in region
	// order; (0,0) buffers and the filling buffer are discarded.
	ordered := []*persist.Buffer{s.bufs[0], s.bufs[1]}
	if ordered[0].Region > ordered[1].Region {
		ordered[0], ordered[1] = ordered[1], ordered[0]
	}
	for _, b := range ordered {
		switch {
		case b.Sealed && !b.Retired && b.Phase1CompleteAt(now):
			s.pendingRedo = append(s.pendingRedo, b) // (1,0)
		default:
			b.Discard() // (0,0) or filling
		}
	}
	s.c.Invalidate()
	s.wbi[0].Clear()
	s.wbi[1].Clear()
	s.storesThisRegion = 0
	s.recomputeNextDrain()
}

func (s *sweep) Restore(now int64, regs *cpu.Regs) (int64, cpu.Cost) {
	cost := cpu.Cost{Ns: s.p.RestoreTimeNs}
	// (1,0) recovery: redo the s-phase2 DMA. The drain is idempotent, so
	// redoing a partially completed one is safe.
	for _, b := range s.pendingRedo {
		n := int64(b.Len())
		s.tr.Emit(telemetry.EvRedoDrain, now, int64(b.Region), n, 0, 0)
		b.Drain(s.nvm)
		cost.Ns += n * s.p.DrainPerLineNs
		s.led.Restore += float64(n) * s.p.ENVMLineWrite
		s.st.RedoneDrains++
	}
	s.pendingRedo = s.pendingRedo[:0]

	// A fresh power-on has no s-phase1 in flight: drop every pre-outage
	// flush deadline so a post-reboot store can never observe a stale
	// s-phase1 window. (Stale deadlines were only reachable through WBI
	// bits, which PowerFail cleared, but the invariant is kept structural
	// rather than incidental.)
	for i := range s.flushDoneAt {
		s.flushDoneAt[i] = 0
	}

	// Reload the register file from the checkpoint array and the resume
	// PC from the recovery slot (two checkpoint lines plus the PC line).
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		regs[r] = s.nvm.ReadWord(ir.CkptSlotAddr(r))
	}
	pc := s.nvm.ReadWord(ir.PCSlotAddr)
	cost.Ns += 3 * s.p.NVMLineReadNs
	s.led.Restore += s.p.ESweepRestore + 3*s.p.ENVMLineRead
	s.st.RestoreEvents++

	// Fresh buffers for the restarted region.
	s.bufs[0].Discard()
	s.bufs[1].Discard()
	s.seq++
	s.active = 0
	s.bufs[0].Claim(s.seq)
	s.recomputeNextDrain()
	s.tr.Emit(telemetry.EvRegionStart, now, int64(s.seq), 0, 0, 0)
	return pc, cost
}

// Finalize drains both buffers in region order, then the still-dirty lines
// of the unfinished final region, so the final NVM image is observable.
func (s *sweep) Finalize() {
	ordered := []*persist.Buffer{s.bufs[0], s.bufs[1]}
	if ordered[0].Region > ordered[1].Region {
		ordered[0], ordered[1] = ordered[1], ordered[0]
	}
	for _, b := range ordered {
		for i := range b.Entries {
			s.nvm.PokeLine(b.Entries[i].Addr, &b.Entries[i].Data)
		}
		b.Discard()
	}
	s.recomputeNextDrain()
	flushDirty(s.c, &s.base)
}
