package arch

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/persist"
	"repro/internal/telemetry"
)

// sweep implements SweepCache (Figure 1e): a volatile write-back cache in
// front of dual NVM-resident persist buffers. During a region, dirty
// evictions are quarantined in the active buffer (t-phase1); at a region
// end the dirty lines named by the write-back-instructive table are flushed
// into the buffer (s-phase1) and a DMA drains the buffer to NVM (s-phase2)
// while the next region already executes out of the other buffer
// (region-level parallelism, Section 3.3). No JIT checkpointing exists:
// power failure destroys the cache and registers, and recovery follows the
// (phase1Complete, phase2Complete) protocol of Section 4.2 using the
// register-checkpoint array and recovery-PC slot in NVM.
type sweep struct {
	base
	c        *cache.Cache
	emptyBit bool // Empty-Bit Search vs NVM Search (Section 4.4)

	bufs   [2]*persist.Buffer
	wbi    [2]*persist.WBITable
	active int
	seq    uint64

	// flushDoneAt[slot] is when the previous region's s-phase1 finishes
	// flushing that cacheline (the hardware walks the WBI table line by
	// line, clearing dirty bits as it goes).
	flushDoneAt []int64

	storesThisRegion int
	pendingRedo      []*persist.Buffer
}

func newSweep(p config.Params, emptyBit bool) *sweep {
	s := &sweep{
		base:     newBase(p),
		c:        cache.New(p.CacheSize, p.CacheWays),
		emptyBit: emptyBit,
	}
	for i := range s.bufs {
		s.bufs[i] = persist.NewBuffer(p.StoreThreshold)
		s.wbi[i] = persist.NewWBITable(s.c.NumLines())
	}
	s.flushDoneAt = make([]int64, s.c.NumLines())
	s.seq = 1
	s.bufs[0].Claim(s.seq)
	return s
}

func (s *sweep) Name() string {
	if s.emptyBit {
		return "Sweep-EmptyBit"
	}
	return "Sweep-NVMSearch"
}

func (s *sweep) Kind() Kind {
	if s.emptyBit {
		return SweepEmptyBit
	}
	return SweepNVMSearch
}

func (s *sweep) JIT() bool           { return false }
func (s *sweep) Cache() *cache.Cache { return s.c }

// Boot emits the first region's start; the buffer itself was claimed at
// construction, before any tracer could be attached.
func (s *sweep) Boot(entryPC int64) {
	s.tr.Emit(telemetry.EvRegionStart, 0, int64(s.seq), 0, 0, 0)
}

// Sync drains buffers whose s-phase2 completed by now, in region order so
// a younger duplicate line lands after an older one.
func (s *sweep) Sync(now int64) {
	for {
		var due *persist.Buffer
		for _, b := range s.bufs {
			if b.Sealed && !b.Retired && b.Phase2CompleteAt(now) {
				if due == nil || b.Region < due.Region {
					due = b
				}
			}
		}
		if due == nil {
			return
		}
		// The span's end time is the logical s-phase2 completion, not the
		// (later) moment the drain is observed and applied.
		s.tr.Emit(telemetry.EvSweepEnd, due.Phase2End, int64(due.Region), int64(due.Len()), 0, 0)
		due.Drain(s.nvm)
	}
}

// searchBuffers looks for addr in the persist buffers on a load miss,
// youngest region first (the active buffer holds the current region's
// evictions). It returns the found data (or nil) and the sequential-search
// latency — each probed entry is an NVM read — and updates the search
// statistics. With the empty-bit variant an empty buffer is skipped
// outright; the NVM Search variant always pays at least the FIFO metadata
// read (Section 4.4).
func (s *sweep) searchBuffers(now int64, addr int64) (*[mem.LineSize]byte, cpu.Cost) {
	var cost cpu.Cost
	searched := false
	la := mem.LineAddr(addr)
	var found *[mem.LineSize]byte
	order := [2]*persist.Buffer{s.bufs[s.active], s.bufs[1-s.active]}
	for _, b := range order {
		if s.emptyBit && b.Empty() {
			continue
		}
		searched = true
		cost.Ns += s.p.SearchBaseNs
		for i := b.Len() - 1; i >= 0; i-- {
			cost.Ns += s.p.SearchPerEntryNs
			s.led.NVM += s.p.ENVMRead
			if e := b.EntryAt(i); e.Addr == la {
				data := e.Data
				found = &data
				break
			}
		}
		if found != nil {
			break
		}
	}
	if searched {
		s.st.BufferSearches++
	} else {
		s.st.BufferBypasses++
	}
	if found != nil {
		s.st.BufferHits++
	}
	return found, cost
}

// missFill handles a load/store miss: evict the victim into the active
// buffer if dirty, then fill from the buffers or NVM.
func (s *sweep) missFill(now int64, addr int64) (*cache.Line, cpu.Cost) {
	var cost cpu.Cost
	v := s.c.Victim(addr)
	if v.Valid && v.Dirty {
		// t-phase1: quarantine the writeback in the active buffer
		// (an NVM-resident write).
		s.bufs[s.active].Append(v.Tag, &v.Data)
		s.nvm.LineWrites++
		s.led.Persist += s.p.ENVMLineWrite
		cost.Ns += s.p.NVMLineWriteNs
		s.wbi[s.active].ClearBit(v.Slot)
		s.tr.Emit(telemetry.EvDirtyEvict, now, v.Tag, int64(v.DirtyRegion), 0, 0)
		v.Dirty = false
		s.c.DirtyEvictions++
	}
	data, scost := s.searchBuffers(now, addr)
	cost.Add(scost)
	if data == nil {
		var buf [mem.LineSize]byte
		s.nvm.ReadLine(mem.LineAddr(addr), &buf)
		s.led.NVM += s.p.ENVMLineRead
		cost.Ns += s.p.NVMLineReadNs
		data = &buf
	}
	return s.c.Fill(addr, data), cost
}

func (s *sweep) Load(now int64, addr int64, byteWide bool) (int64, cpu.Cost) {
	s.Sync(now)
	s.led.Compute += s.p.ESRAMAccess
	ln := s.c.Touch(addr)
	var cost cpu.Cost
	if ln == nil {
		ln, cost = s.missFill(now, addr)
	}
	if byteWide {
		return int64(ln.ByteAt(addr)), cost
	}
	return ln.ReadWord(addr), cost
}

func (s *sweep) Store(now int64, addr int64, val int64, byteWide bool) cpu.Cost {
	s.Sync(now)
	s.led.Compute += s.p.ESRAMAccess
	ln := s.c.Touch(addr)
	var cost cpu.Cost
	if ln == nil {
		ln, cost = s.missFill(now, addr)
	}
	// Write-after-write rule (Section 4.3). The s-phase1 hardware walks
	// the previous region's WBI table line by line, clearing dirty bits
	// as it flushes; a store must wait if its target line is still
	// awaiting flush. A line already flushed (clean) proceeds — unless
	// the current region re-dirtied it, in which case the hardware's
	// coarse (dirty, WBI-prev, phase1Complete) check stalls spuriously:
	// the paper's rare false positive.
	prev := s.bufs[1-s.active]
	if s.wbi[1-s.active].Get(ln.Slot) && prev.Sealed && !prev.Phase1CompleteAt(now+cost.Ns) {
		t := now + cost.Ns
		var until int64
		if done := s.flushDoneAt[ln.Slot]; done > t {
			until = done // true hazard: this line's flush is in flight
		} else if ln.Dirty {
			until = prev.Phase1End // false positive: re-dirtied line
		}
		if until > t {
			wait := until - t
			cost.Ns += wait
			s.st.WAWStallNs += wait
		}
	}
	if byteWide {
		ln.SetByte(addr, byte(val))
	} else {
		ln.WriteWord(addr, val)
	}
	if !ln.Dirty {
		ln.Dirty = true
		ln.DirtyRegion = s.seq
		s.wbi[s.active].Set(ln.Slot)
	}
	s.storesThisRegion++
	return cost
}

func (s *sweep) RegionEnd(now int64) cpu.Cost {
	s.Sync(now)
	var cost cpu.Cost

	// Structural hazard (Section 3.3): the buffer about to be claimed
	// must have finished its s-phase2.
	other := s.bufs[1-s.active]
	if other.Sealed && !other.Retired {
		wait := other.Phase2End - now
		if wait > 0 {
			cost.Ns += wait
			s.st.TwaitNs += wait
			s.Sync(now + cost.Ns)
		}
	}

	// s-phase1 flush set: all dirty lines, which must match the WBI
	// table exactly (Section 4.6) — the table exists so hardware need
	// not scan the cache; the simulator scans and asserts agreement.
	dirty := s.c.DirtyLines(nil)
	if got, want := s.wbi[s.active].Count(), len(dirty); got != want {
		panic(fmt.Sprintf("sweep: WBI table (%d) disagrees with dirty scan (%d)", got, want))
	}
	flush := make([]persist.Entry, len(dirty))
	start := now + cost.Ns
	for i, ln := range dirty {
		if !s.wbi[s.active].Get(ln.Slot) {
			panic("sweep: dirty line missing from WBI table")
		}
		flush[i] = persist.Entry{Addr: ln.Tag, Data: ln.Data}
		ln.Dirty = false // flushed lines remain resident and clean
		s.flushDoneAt[ln.Slot] = start + int64(i+1)*s.p.FlushPerLineNs
	}

	cur := s.bufs[s.active]
	cur.Seal(start, flush, s.p.FlushPerLineNs, s.p.DrainPerLineNs, other.Phase2End)
	s.tr.Emit(telemetry.EvRegionCommit, start, int64(s.seq), int64(s.storesThisRegion), int64(len(dirty)), 0)
	s.tr.Emit(telemetry.EvSweepBegin, start, int64(cur.Region), int64(cur.Len()), 0, 0)

	// Account the persistence traffic: the flush writes the NVM-resident
	// buffer, the drain writes the home locations (write amplification,
	// Figure 16). Drain line-writes are counted when applied.
	nFlush := int64(len(flush))
	s.nvm.LineWrites += uint64(nFlush)
	s.led.Persist += float64(nFlush)*s.p.ENVMLineWrite + float64(cur.Len())*s.p.ENVMLineWrite

	// Parallelism accounting (Section 6.3): Tp is what a design without
	// region-level parallelism would stall for.
	s.st.TpNs += nFlush*s.p.FlushPerLineNs + int64(cur.Len())*s.p.DrainPerLineNs

	// Figure 3a ablation: with a single buffer the next region cannot
	// start until this region's own persistence completes.
	if s.p.SweepSingleBuffer {
		if wait := cur.Phase2End - start; wait > 0 {
			cost.Ns += wait
			s.st.TwaitNs += wait
			s.Sync(cur.Phase2End)
		}
	}
	s.st.RegionsExecuted++
	s.st.StoresPerRegion.Add(s.storesThisRegion)
	s.storesThisRegion = 0

	// Switch buffers; WBI of the ending region stays visible for the
	// WAW rule until its phase 1 completes.
	s.seq++
	s.active = 1 - s.active
	s.bufs[s.active].Claim(s.seq)
	s.wbi[s.active].Clear()
	s.tr.Emit(telemetry.EvRegionStart, now+cost.Ns, int64(s.seq), 0, 0, 0)
	return cost
}

func (s *sweep) Backup(now int64, regs *cpu.Regs, pc int64) cpu.Cost {
	panic("sweep: JIT backup does not exist in SweepCache")
}

func (s *sweep) PowerFail(now int64) {
	s.Sync(now)
	s.pendingRedo = s.pendingRedo[:0]
	// Classify each buffer by its phase bits at the failure instant
	// (Section 4.2): (1,0) buffers are redone at recovery in region
	// order; (0,0) buffers and the filling buffer are discarded.
	ordered := []*persist.Buffer{s.bufs[0], s.bufs[1]}
	if ordered[0].Region > ordered[1].Region {
		ordered[0], ordered[1] = ordered[1], ordered[0]
	}
	for _, b := range ordered {
		switch {
		case b.Sealed && !b.Retired && b.Phase1CompleteAt(now):
			s.pendingRedo = append(s.pendingRedo, b) // (1,0)
		default:
			b.Discard() // (0,0) or filling
		}
	}
	s.c.Invalidate()
	s.wbi[0].Clear()
	s.wbi[1].Clear()
	s.storesThisRegion = 0
}

func (s *sweep) Restore(now int64, regs *cpu.Regs) (int64, cpu.Cost) {
	cost := cpu.Cost{Ns: s.p.RestoreTimeNs}
	// (1,0) recovery: redo the s-phase2 DMA. The drain is idempotent, so
	// redoing a partially completed one is safe.
	for _, b := range s.pendingRedo {
		n := int64(b.Len())
		s.tr.Emit(telemetry.EvRedoDrain, now, int64(b.Region), n, 0, 0)
		b.Drain(s.nvm)
		cost.Ns += n * s.p.DrainPerLineNs
		s.led.Restore += float64(n) * s.p.ENVMLineWrite
		s.st.RedoneDrains++
	}
	s.pendingRedo = s.pendingRedo[:0]

	// Reload the register file from the checkpoint array and the resume
	// PC from the recovery slot (two checkpoint lines plus the PC line).
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		regs[r] = s.nvm.ReadWord(ir.CkptSlotAddr(r))
	}
	pc := s.nvm.ReadWord(ir.PCSlotAddr)
	cost.Ns += 3 * s.p.NVMLineReadNs
	s.led.Restore += s.p.ESweepRestore + 3*s.p.ENVMLineRead
	s.st.RestoreEvents++

	// Fresh buffers for the restarted region.
	s.bufs[0].Discard()
	s.bufs[1].Discard()
	s.seq++
	s.active = 0
	s.bufs[0].Claim(s.seq)
	s.tr.Emit(telemetry.EvRegionStart, now, int64(s.seq), 0, 0, 0)
	return pc, cost
}

// Finalize drains both buffers in region order, then the still-dirty lines
// of the unfinished final region, so the final NVM image is observable.
func (s *sweep) Finalize() {
	ordered := []*persist.Buffer{s.bufs[0], s.bufs[1]}
	if ordered[0].Region > ordered[1].Region {
		ordered[0], ordered[1] = ordered[1], ordered[0]
	}
	for _, b := range ordered {
		for i := range b.Entries {
			s.nvm.PokeLine(b.Entries[i].Addr, &b.Entries[i].Data)
		}
		b.Discard()
	}
	flushDirty(s.c, &s.base)
}
