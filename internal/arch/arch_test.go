package arch

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/ir"
	"repro/internal/mem"
)

func params() config.Params { return config.Default() }

func TestKindsAndConstruction(t *testing.T) {
	for _, k := range AllKinds() {
		s := New(k, params())
		if s.Kind() != k {
			t.Errorf("%v: Kind() = %v", k, s.Kind())
		}
		if s.Name() == "" {
			t.Errorf("%v: empty name", k)
		}
		if (s.Cache() == nil) != (k == NVP) {
			t.Errorf("%v: cache presence", k)
		}
		if s.NVM() == nil || s.Ledger() == nil || s.Stats() == nil {
			t.Errorf("%v: plumbing", k)
		}
		wantJIT := k != SweepNVMSearch && k != SweepEmptyBit
		if s.JIT() != wantJIT {
			t.Errorf("%v: JIT = %v", k, s.JIT())
		}
		if s.ContinuesAfterBackup() != (k == NvMR) {
			t.Errorf("%v: ContinuesAfterBackup", k)
		}
	}
}

func TestVoltageThresholdSelection(t *testing.T) {
	cases := []struct {
		k      Kind
		vb, vr float64
	}{
		{NVP, 2.9, 3.2},
		{ReplayCache, 2.9, 3.2},
		{NVSRAM, 3.2, 3.4},
		{NVSRAME, 3.2, 3.4},
		{SweepEmptyBit, 0, 3.3},
	}
	for _, c := range cases {
		p := New(c.k, params()).Params()
		if p.VBackup != c.vb || p.VRestore != c.vr {
			t.Errorf("%v: thresholds %.1f/%.1f", c.k, p.VBackup, p.VRestore)
		}
	}
	// SweepCache gets the cheap comparator's restore delay.
	if p := New(SweepEmptyBit, params()).Params(); p.RestoreDelayNs != 1100 || p.BackupDelayNs != 0 {
		t.Errorf("sweep delays: %d/%d", p.BackupDelayNs, p.RestoreDelayNs)
	}
}

// TestNVPStoreDirectlyPersistent: NVP writes NVM synchronously.
func TestNVPStoreDirectlyPersistent(t *testing.T) {
	s := New(NVP, params())
	s.Store(0, 4096, 99, false)
	if s.NVM().PeekWord(4096) != 99 {
		t.Error("store not in NVM")
	}
	v, _ := s.Load(10, 4096, false)
	if v != 99 {
		t.Error("load")
	}
}

// TestWriteBackInvisibleUntilEviction: write-back schemes keep stores in
// the cache; NVM stays stale until a writeback.
func TestWriteBackInvisibleUntilEviction(t *testing.T) {
	for _, k := range []Kind{NVSRAM, ReplayCache, SweepEmptyBit, NvMR} {
		s := New(k, params())
		s.Store(0, 4096, 55, false)
		if got := s.NVM().PeekWord(4096); got == 55 {
			t.Errorf("%v: store visible in NVM before any writeback", k)
		}
		if v, _ := s.Load(100, 4096, false); v != 55 {
			t.Errorf("%v: cached load = %d", k, v)
		}
	}
}

// TestWTStoreWritesThrough: WT-VCache persists every store immediately.
func TestWTStoreWritesThrough(t *testing.T) {
	s := New(WTVCache, params())
	s.Store(0, 4096, 7, false)
	if s.NVM().PeekWord(4096) != 7 {
		t.Error("write-through store not in NVM")
	}
}

// TestJITBackupRestoreRoundTrip: registers and PC survive an outage.
func TestJITBackupRestoreRoundTrip(t *testing.T) {
	for _, k := range []Kind{NVP, WTVCache, NVSRAM, NVSRAME, ReplayCache, NvMR} {
		s := New(k, params())
		s.Boot(0)
		var regs cpu.Regs
		regs[3] = 33
		regs[7] = -7
		s.Store(0, 4096, 1, false)
		s.Backup(100, &regs, 42)
		s.PowerFail(200)
		var got cpu.Regs
		pc, _ := s.Restore(300, &got)
		if pc != 42 || got != regs {
			t.Errorf("%v: restore pc=%d regs ok=%v", k, pc, got == regs)
		}
	}
}

// TestNVSRAMRestoresDirtyLines: the cache comes back warm with its dirty
// data intact, and NVM is updated only later by natural evictions.
func TestNVSRAMRestoresDirtyLines(t *testing.T) {
	s := New(NVSRAM, params())
	s.Boot(0)
	s.Store(0, 4096, 123, false)
	var regs cpu.Regs
	s.Backup(100, &regs, 0)
	s.PowerFail(200)
	if s.Cache().Probe(4096) != cache.NoSlot {
		t.Fatal("cache survived power failure")
	}
	s.Restore(300, &regs)
	if v, _ := s.Load(400, 4096, false); v != 123 {
		t.Error("dirty line not restored")
	}
}

// TestReplayRecoveryReplaysUnpersistedStores: a store whose clwb has not
// drained by backup time must reach NVM through recovery replay.
func TestReplayRecoveryReplaysUnpersistedStores(t *testing.T) {
	s := New(ReplayCache, params())
	s.Boot(0)
	s.Store(0, 4096, 77, false)
	s.Clwb(2, 4096) // queued; drain takes NVMLineWriteNs
	var regs cpu.Regs
	s.Backup(3, &regs, 9) // well before the drain completes
	s.PowerFail(4)
	if s.NVM().PeekWord(4096) == 77 {
		t.Fatal("premature persistence")
	}
	pc, _ := s.Restore(1000, &regs)
	if pc != 9 {
		t.Errorf("pc = %d", pc)
	}
	if s.NVM().PeekWord(4096) != 77 {
		t.Error("unpersisted store not replayed")
	}
	if s.Stats().ReplayedStores == 0 {
		t.Error("replay not counted")
	}
}

// TestNvMRRollbackDiscardsSpeculation: post-backup renamed writebacks are
// discarded on power failure; NVM shows the backup-point state.
func TestNvMRRollbackDiscardsSpeculation(t *testing.T) {
	p := params()
	s := New(NvMR, p).(*nvmr)
	s.Boot(0)
	var regs cpu.Regs
	s.Store(0, 4096, 1, false)
	s.Backup(10, &regs, 5) // commits the store's line via dirty flush
	if s.NVM().PeekWord(4096) != 1 {
		t.Fatal("backup did not persist dirty lines")
	}
	// Speculative: overwrite and force a renamed writeback via eviction
	// pressure (directly exercise the writeback path).
	s.Store(20, 4096, 2, false)
	slot := s.c.Probe(4096)
	s.writeback(slot)
	s.c.ClearDirty(slot)
	if s.NVM().PeekWord(4096) == 2 {
		t.Fatal("renamed write hit the home location")
	}
	// A miss after eviction must see the renamed data.
	s.c.Invalidate()
	if v, _ := s.Load(30, 4096, false); v != 2 {
		t.Error("overlay not snooped")
	}
	s.PowerFail(40)
	pc, _ := s.Restore(50, &regs)
	if pc != 5 {
		t.Errorf("pc = %d", pc)
	}
	if s.NVM().PeekWord(4096) != 1 {
		t.Error("rollback did not restore the backup-point value")
	}
}

// TestSweepRegionPersistence: stores become persistent exactly when the
// region's buffer drains, and recovery follows the phase protocol.
func TestSweepRegionPersistence(t *testing.T) {
	p := params()
	s := New(SweepEmptyBit, p)
	s.NVM().PokeWord(ir.PCSlotAddr, 1000)
	s.Store(0, 4096, 42, false)
	s.Store(2, ir.CkptSlotAddr(3), 7, false) // like a ckpt store
	cost := s.RegionEnd(10)
	_ = cost
	// Before phase 2 completes NVM is stale; Sync at a late time drains.
	if s.NVM().PeekWord(4096) == 42 {
		t.Fatal("persisted before drain")
	}
	s.Sync(1 << 40)
	if s.NVM().PeekWord(4096) != 42 || s.NVM().PeekWord(ir.CkptSlotAddr(3)) != 7 {
		t.Error("region data not drained")
	}
}

// TestSweepRecoveryCases exercises the (0,0) and (1,0) protocols.
func TestSweepRecoveryCases(t *testing.T) {
	p := params()

	// Case (0,0): crash mid-region. Buffer contents discarded; NVM
	// untouched; PC comes from the recovery slot.
	s := New(SweepEmptyBit, p)
	s.NVM().PokeWord(ir.PCSlotAddr, 555)
	s.NVM().PokeWord(ir.CkptSlotAddr(4), 99)
	s.Store(0, 4096, 1, false)
	s.PowerFail(5)
	var regs cpu.Regs
	pc, _ := s.Restore(10, &regs)
	if pc != 555 || regs[4] != 99 {
		t.Errorf("(0,0): pc=%d r4=%d", pc, regs[4])
	}
	if s.NVM().PeekWord(4096) == 1 {
		t.Error("(0,0): quarantined store leaked to NVM")
	}

	// Case (1,0): crash after s-phase1 but before s-phase2 completes.
	// Recovery redoes the drain.
	s2 := New(SweepEmptyBit, p)
	s2.NVM().PokeWord(ir.PCSlotAddr, 700)
	s2.Store(0, 4096, 2, false)
	s2.RegionEnd(10) // seals; phase1 short, phase2 longer
	sw := s2.(*sweep)
	sealed := sw.bufs[0]
	failAt := sealed.Phase1End + 1 // inside phase 2
	if sealed.Phase2CompleteAt(failAt) {
		t.Skip("phase2 too fast to split phases at this config")
	}
	s2.PowerFail(failAt)
	pc2, _ := s2.Restore(failAt+100, &regs)
	if s2.NVM().PeekWord(4096) != 2 {
		t.Error("(1,0): drain not redone at recovery")
	}
	if s2.Stats().RedoneDrains == 0 {
		t.Error("(1,0): redo not counted")
	}
	_ = pc2
}

// TestSweepBufferSearchServesMiss: an evicted dirty line's latest value
// must be found in the persist buffer on a subsequent miss.
func TestSweepBufferSearchServesMiss(t *testing.T) {
	p := params()
	p.CacheSize = 128 // one set, two ways: easy eviction
	p.CacheWays = 2
	for _, kind := range []Kind{SweepEmptyBit, SweepNVMSearch} {
		s := New(kind, p)
		s.Store(0, 4096, 11, false)
		nsets := 1
		_ = nsets
		// Two more lines in the same (only) set evict the first.
		s.Store(1, 4096+64, 22, false)
		s.Store(2, 4096+128, 33, false)
		if v, _ := s.Load(3, 4096, false); v != 11 {
			t.Errorf("%v: miss served %d from buffer, want 11", kind, v)
		}
		if s.Stats().BufferHits == 0 {
			t.Errorf("%v: buffer hit not counted", kind)
		}
	}
}

// TestSweepEmptyBitBypasses: with empty buffers, the empty-bit variant
// skips the search while NVM Search pays for it.
func TestSweepEmptyBitBypasses(t *testing.T) {
	p := params()
	eb := New(SweepEmptyBit, p)
	_, ebCost := eb.Load(0, 4096, false)
	if eb.Stats().BufferBypasses != 1 || eb.Stats().BufferSearches != 0 {
		t.Errorf("empty-bit: searches=%d bypasses=%d",
			eb.Stats().BufferSearches, eb.Stats().BufferBypasses)
	}
	ns := New(SweepNVMSearch, p)
	_, nsCost := ns.Load(0, 4096, false)
	if ns.Stats().BufferSearches != 1 {
		t.Error("nvm-search did not search")
	}
	if nsCost.Ns <= ebCost.Ns {
		t.Errorf("nvm-search (%d ns) not slower than empty-bit (%d ns)", nsCost.Ns, ebCost.Ns)
	}
}

// TestSweepWAWStall: a second store to a line in the previous region's
// flush set stalls while phase 1 is incomplete.
func TestSweepWAWStall(t *testing.T) {
	p := params()
	s := New(SweepEmptyBit, p)
	s.Store(0, 4096, 1, false)
	s.RegionEnd(10)
	// Immediately re-dirty the same line twice: first store is clean
	// (already flushed), second hits the coarse dirty+WBI-prev check.
	s.Store(11, 4096, 2, false)
	c2 := s.Store(12, 4096, 3, false)
	if s.Stats().WAWStallNs == 0 {
		t.Error("no WAW stall recorded")
	}
	_ = c2
}

func TestFinalizeMakesNVMObservable(t *testing.T) {
	for _, k := range AllKinds() {
		s := New(k, params())
		s.Store(0, 4096, 321, false)
		s.Sync(1 << 40)
		s.Finalize()
		if got := s.NVM().PeekWord(4096); got != 321 {
			t.Errorf("%v: finalize left NVM stale (%d)", k, got)
		}
	}
}

func TestHardwareLineAccounting(t *testing.T) {
	p := params()
	s := New(SweepEmptyBit, p)
	before := s.NVM().LineWrites
	s.Store(0, 4096, 1, false)
	s.RegionEnd(10)
	s.Sync(1 << 40)
	// One dirty line: flush into the buffer (+1) and drain to NVM (+1) —
	// the Figure 16 write amplification.
	if got := s.NVM().LineWrites - before; got != 2 {
		t.Errorf("line writes per writeback = %d, want 2", got)
	}
}

var _ = mem.LineSize // keep import if assertions above change

func TestKindStringsAndModes(t *testing.T) {
	for _, k := range AllKinds() {
		if k.String() == "" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if NVP.CompilerMode() != 0 || ReplayCache.CompilerMode() != 2 ||
		SweepEmptyBit.CompilerMode() != 1 || SweepNVMSearch.CompilerMode() != 1 {
		t.Error("compiler-mode mapping")
	}
	if len(EvalKinds()) != 4 {
		t.Error("eval kinds")
	}
}

// TestWTLoadPath: hit and miss behaviour of the write-through cache.
func TestWTLoadPath(t *testing.T) {
	s := New(WTVCache, params())
	s.NVM().PokeWord(8192, 321)
	v, cost := s.Load(0, 8192, false)
	if v != 321 || cost.Ns == 0 {
		t.Errorf("miss: v=%d cost=%d", v, cost.Ns)
	}
	v, cost = s.Load(10, 8192, false)
	if v != 321 || cost.Ns != 0 {
		t.Errorf("hit: v=%d cost=%d", v, cost.Ns)
	}
	// Byte-wide path.
	s.NVM().PokeByte(8256, 7)
	if b, _ := s.Load(20, 8256, true); b != 7 {
		t.Errorf("byte load = %d", b)
	}
	s.Finalize() // no-op, but must not panic
}

// TestReplayFenceDrains: a fence blocks until queued clwbs are in NVM.
func TestReplayFenceDrains(t *testing.T) {
	s := New(ReplayCache, params())
	s.Store(0, 4096, 5, false)
	s.Clwb(1, 4096)
	cost := s.Fence(2)
	if cost.Ns == 0 {
		t.Error("fence did not stall for the in-flight writeback")
	}
	if s.NVM().PeekWord(4096) != 5 {
		t.Error("fence returned before persistence")
	}
	if s.Stats().FenceStallNs == 0 {
		t.Error("fence stall not recorded")
	}
}

// TestSweepBackupPanics: SweepCache has no JIT backup by construction.
func TestSweepBackupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	var regs cpu.Regs
	New(SweepEmptyBit, params()).Backup(0, &regs, 0)
}

// TestPlainSchemeRejectsRegionOps: running sweep-compiled code on a plain
// scheme is a wiring bug and must fail loudly.
func TestPlainSchemeRejectsRegionOps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(NVP, params()).RegionEnd(0)
}
