package arch

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

// nvmr approximates NvMR (Section 6.7): a JIT-checkpoint design whose
// memory renaming removes write-after-read hazards so execution continues
// past the backup instead of halting until VRestore. Post-backup NVM
// writes go to renamed locations (modelled as an overlay); they commit at
// the next backup and are discarded on rollback. When the rename resources
// fill up, NvMR must take another backup.
type nvmr struct {
	base
	c *cache.Cache

	// overlay holds renamed post-backup line writes; loads snoop it.
	overlay map[int64]*[mem.LineSize]byte

	snapRegs cpu.Regs
	snapPC   int64
	needBk   bool

	// dirtyScratch is reused by Backup's dirty-line enumeration.
	dirtyScratch []int
}

func newNvMR(p config.Params) *nvmr {
	return &nvmr{
		base:    newBase(p),
		c:       cache.New(p.CacheSize, p.CacheWays),
		overlay: map[int64]*[mem.LineSize]byte{},
	}
}

func (s *nvmr) Name() string               { return "NvMR" }
func (s *nvmr) Kind() Kind                 { return NvMR }
func (s *nvmr) JIT() bool                  { return true }
func (s *nvmr) ContinuesAfterBackup() bool { return true }
func (s *nvmr) Cache() *cache.Cache        { return s.c }

// NeedsBackup reports that the rename table is full and a commit backup is
// required before more speculative writebacks can rename.
func (s *nvmr) NeedsBackup() bool { return s.needBk }

func (s *nvmr) writeback(v int) {
	// Renamed write: the data lands in NVM at an alternate location, so
	// the pre-backup value of the home location survives a rollback.
	cp := *s.c.Data(v)
	s.overlay[s.c.Tag(v)] = &cp
	s.nvm.LineWrites++
	s.led.NVM += s.p.ENVMLineWrite
	if len(s.overlay) >= s.p.NvMRRenameCap {
		s.needBk = true
	}
}

func (s *nvmr) access(now int64, addr int64) (int, cpu.Cost) {
	s.led.Compute += s.p.ESRAMAccess
	if slot := s.c.Touch(addr); slot != cache.NoSlot {
		return slot, cpu.Cost{}
	}
	var cost cpu.Cost
	v := s.c.Victim(addr)
	if s.c.Valid(v) && s.c.Dirty(v) {
		s.writeback(v)
		cost.Ns += s.p.NVMLineWriteNs
		s.tr.Emit(telemetry.EvDirtyEvict, now, s.c.Tag(v), 0, 0, 0)
		s.c.ClearDirty(v)
		s.c.DirtyEvictions++
	}
	slot := s.c.FillUninit(addr)
	if ov := s.overlay[mem.LineAddr(addr)]; ov != nil {
		*s.c.Data(slot) = *ov
	} else {
		s.nvm.ReadLine(mem.LineAddr(addr), s.c.Data(slot))
	}
	s.led.NVM += s.p.ENVMLineRead
	cost.Ns += s.p.NVMLineReadNs
	return slot, cost
}

func (s *nvmr) Load(now int64, addr int64, byteWide bool) (int64, cpu.Cost) {
	slot, cost := s.access(now, addr)
	if byteWide {
		return int64(s.c.ByteAt(slot, addr)), cost
	}
	return s.c.ReadWord(slot, addr), cost
}

func (s *nvmr) Store(now int64, addr int64, val int64, byteWide bool) cpu.Cost {
	slot, cost := s.access(now, addr)
	if byteWide {
		s.c.SetByte(slot, addr, byte(val))
	} else {
		s.c.WriteWord(slot, addr, val)
	}
	s.c.MarkDirty(slot)
	return cost
}

// Backup commits the speculative overlay (the renamed data is already in
// NVM; committing publishes the mapping), persists the dirty cachelines
// and registers, and re-arms speculation.
func (s *nvmr) Backup(now int64, regs *cpu.Regs, pc int64) cpu.Cost {
	for addr, data := range s.overlay {
		s.nvm.PokeLine(addr, data) // mapping switch, not a data write
		delete(s.overlay, addr)
	}
	s.dirtyScratch = s.c.DirtySlots(s.dirtyScratch[:0])
	for _, slot := range s.dirtyScratch {
		s.nvm.WriteLine(s.c.Tag(slot), s.c.Data(slot))
		s.c.ClearDirty(slot)
	}
	n := int64(len(s.dirtyScratch))
	s.snapRegs = *regs
	s.snapPC = pc
	s.needBk = false
	// NvMR's backup persists more volatile state than a plain JIT
	// checkpoint: registers, dirty cachelines, and the rename-table and
	// store-buffer contents the renaming depends on (Section 6.7), so
	// both the fixed and per-line costs are substantially higher.
	s.led.Backup += 2*s.p.EBackupFixed + float64(n)*4*s.p.EBackupPerLine
	s.st.BackupEvents++
	s.st.LinesBackedUp += uint64(n)
	return cpu.Cost{Ns: 2*s.p.BackupTimeNs + n*s.p.BackupPerLineNs}
}

func (s *nvmr) PowerFail(now int64) {
	// Roll back: speculative renamed writes are discarded; the cache is
	// lost.
	for addr := range s.overlay {
		delete(s.overlay, addr)
	}
	s.c.Invalidate()
	s.needBk = false
}

func (s *nvmr) Restore(now int64, regs *cpu.Regs) (int64, cpu.Cost) {
	*regs = s.snapRegs
	s.led.Restore += s.p.ERestoreFixed
	s.st.RestoreEvents++
	return s.snapPC, cpu.Cost{Ns: s.p.RestoreTimeNs}
}

// Boot primes the JIT snapshot with the program entry so a failure before
// the first backup restarts from the beginning.
func (s *nvmr) Boot(entryPC int64) {
	s.snapPC = entryPC
	s.snapRegs = cpu.Regs{}
}

// Finalize commits the speculative overlay and dirty lines.
func (s *nvmr) Finalize() {
	for addr, data := range s.overlay {
		s.nvm.PokeLine(addr, data)
		delete(s.overlay, addr)
	}
	flushDirty(s.c, &s.base)
}
