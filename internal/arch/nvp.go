package arch

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
)

// nvp is the cache-free baseline (Figure 1a): every fetch and data access
// goes to NVM; a voltage monitor JIT-checkpoints the register file to NVFF.
type nvp struct {
	base
	snapRegs cpu.Regs
	snapPC   int64
}

func newNVP(p config.Params) *nvp { return &nvp{base: newBase(p)} }

func (s *nvp) Name() string        { return "NVP" }
func (s *nvp) Kind() Kind          { return NVP }
func (s *nvp) JIT() bool           { return true }
func (s *nvp) Cache() *cache.Cache { return nil }

func (s *nvp) Fetch(now int64) cpu.Cost {
	s.led.NVM += s.p.ENVMRead
	return cpu.Cost{Ns: s.p.NVPFetchNs}
}

func (s *nvp) FetchIsFree() bool { return false }

func (s *nvp) Load(now int64, addr int64, byteWide bool) (int64, cpu.Cost) {
	s.led.NVM += s.p.ENVMRead
	var v int64
	if byteWide {
		v = int64(s.nvm.ReadByteAt(addr))
	} else {
		v = s.nvm.ReadWord(addr)
	}
	return v, cpu.Cost{Ns: s.p.NVMReadNs}
}

func (s *nvp) Store(now int64, addr int64, val int64, byteWide bool) cpu.Cost {
	s.led.NVM += s.p.ENVMWrite
	if byteWide {
		s.nvm.WriteByteAt(addr, byte(val))
	} else {
		s.nvm.WriteWord(addr, val)
	}
	return cpu.Cost{Ns: s.p.NVMWriteNs}
}

func (s *nvp) Backup(now int64, regs *cpu.Regs, pc int64) cpu.Cost {
	s.snapRegs = *regs
	s.snapPC = pc
	s.led.Backup += s.p.EBackupFixed
	s.st.BackupEvents++
	return cpu.Cost{Ns: s.p.BackupTimeNs}
}

func (s *nvp) PowerFail(now int64) {}

func (s *nvp) Restore(now int64, regs *cpu.Regs) (int64, cpu.Cost) {
	*regs = s.snapRegs
	s.led.Restore += s.p.ERestoreFixed
	s.st.RestoreEvents++
	return s.snapPC, cpu.Cost{Ns: s.p.RestoreTimeNs}
}

// Boot primes the JIT snapshot with the program entry so a failure before
// the first backup restarts from the beginning.
func (s *nvp) Boot(entryPC int64) {
	s.snapPC = entryPC
	s.snapRegs = cpu.Regs{}
}
