package arch

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/ir"
)

// TestSweepRestoreResetsFlushDeadlines: an outage that strikes while the
// previous region's s-phase1 flush is in flight must not leave stale
// per-slot flush deadlines behind. A post-reboot store to the same
// cacheline slot would otherwise compare against a deadline from before
// the outage — a flush that no longer exists — and stall spuriously.
func TestSweepRestoreResetsFlushDeadlines(t *testing.T) {
	p := params()
	s := New(SweepEmptyBit, p).(*sweep)
	s.NVM().PokeWord(ir.PCSlotAddr, 100)
	s.Boot(0)

	// Dirty one line and end the region: the line enters the s-phase1
	// flush set and gets a per-slot flush deadline in the future.
	s.Store(0, 4096, 11, false)
	slot := s.c.Probe(4096)
	s.RegionEnd(10)
	sealed := s.bufs[0]
	if !sealed.Sealed {
		t.Fatal("region end did not seal the buffer")
	}
	if s.flushDoneAt[slot] == 0 {
		t.Fatal("flush deadline not recorded at region end")
	}

	// Fail mid-flush: after the seal but before s-phase1 completes.
	failAt := sealed.Phase1End - 1
	if failAt < 10 {
		t.Skip("phase1 too fast to interrupt at this config")
	}
	s.PowerFail(failAt)
	var regs cpu.Regs
	pc, _ := s.Restore(failAt+100, &regs)
	if pc != 100 {
		t.Fatalf("resume pc = %d", pc)
	}

	// The structural invariant: no pre-outage flush deadline survives.
	for i, done := range s.flushDoneAt {
		if done != 0 {
			t.Fatalf("flushDoneAt[%d] = %d survived the outage", i, done)
		}
	}

	// End to end: re-dirtying the same slot right after reboot must not
	// stall on the phantom flush.
	before := s.Stats().WAWStallNs
	s.Store(failAt+200, 4096, 22, false)
	if got := s.Stats().WAWStallNs - before; got != 0 {
		t.Errorf("post-reboot store stalled %d ns on a pre-outage flush", got)
	}
}
