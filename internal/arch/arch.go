// Package arch implements the seven machines the evaluation compares
// (Figure 1 plus Section 6.7):
//
//	NVP        cache-free nonvolatile processor, JIT register checkpointing
//	WT-VCache  volatile write-through cache, JIT register checkpointing
//	NVSRAM     volatile write-back cache, JIT backup of dirty lines
//	NVSRAM-E   as NVSRAM but backs up the entire cache
//	ReplayCache  write-back cache, clwb per store + fence per region,
//	             store replay at recovery
//	SweepCache   region-level persistence through dual NVM persist buffers
//	             (variants: NVM Search and Empty-Bit Search)
//	NvMR       memory renaming; keeps executing after the JIT backup
//
// Each scheme is a cpu.MemSystem plus a crash/recovery protocol. All state
// is functional: power failure genuinely destroys volatile contents, and
// recovery genuinely reconstructs them, so crash consistency is checked,
// not assumed.
package arch

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/mem"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Kind names a scheme.
type Kind int

const (
	NVP Kind = iota
	WTVCache
	NVSRAM
	NVSRAME
	ReplayCache
	SweepNVMSearch
	SweepEmptyBit
	NvMR
)

var kindNames = map[Kind]string{
	NVP: "NVP", WTVCache: "WT-VCache", NVSRAM: "NVSRAM", NVSRAME: "NVSRAM-E",
	ReplayCache: "ReplayCache", SweepNVMSearch: "Sweep-NVMSearch",
	SweepEmptyBit: "Sweep-EmptyBit", NvMR: "NvMR",
}

func (k Kind) String() string { return kindNames[k] }

// CompilerMode returns the compilation mode the scheme's binary needs.
// The import-free int mirrors compiler.Mode (0 plain, 1 sweep, 2 replay)
// to keep arch independent of the compiler package.
func (k Kind) CompilerMode() int {
	switch k {
	case SweepNVMSearch, SweepEmptyBit:
		return 1
	case ReplayCache:
		return 2
	}
	return 0
}

// Stats collects scheme-level counters beyond the CPU's instruction counts.
type Stats struct {
	// Region-level parallelism accounting (Section 6.3): TpNs is the
	// persistence latency without parallelism, TwaitNs the actual wait.
	TpNs    int64
	TwaitNs int64

	RegionsExecuted uint64
	// StoresPerRegion samples the dynamic store count of each executed
	// region (Figure 12b).
	StoresPerRegion *stats.Hist

	// Persist-buffer search behaviour (Section 4.4).
	BufferSearches uint64 // searches actually performed
	BufferBypasses uint64 // searches skipped thanks to the empty-bit
	BufferHits     uint64 // misses served from a buffer

	WAWStallNs   int64 // Section 4.3 stalls
	FenceStallNs int64
	ClwbStallNs  int64

	BackupEvents   uint64
	RestoreEvents  uint64
	LinesBackedUp  uint64
	ReplayedStores uint64
	RedoneDrains   uint64
}

// base carries the plumbing every scheme shares. tr is nil unless the
// engine attached a tracer — emitting on a nil tracer is a no-op, so the
// schemes' event sites cost one branch when telemetry is off.
type base struct {
	p   config.Params
	nvm *mem.NVM
	led *energy.Ledger
	st  Stats
	tr  *telemetry.Tracer
}

func newBase(p config.Params) base {
	return base{
		p:   p,
		nvm: mem.New(p.NVMSize),
		led: &energy.Ledger{},
		st:  Stats{StoresPerRegion: stats.NewHist(p.StoreThreshold + 1)},
	}
}

func (b *base) NVM() *mem.NVM          { return b.nvm }
func (b *base) Ledger() *energy.Ledger { return b.led }
func (b *base) Stats() *Stats          { return &b.st }
func (b *base) Params() config.Params  { return b.p }

// SetTracer attaches (or detaches, with nil) the telemetry tracer.
func (b *base) SetTracer(tr *telemetry.Tracer) { b.tr = tr }
func (b *base) Sync(now int64)                 {}
func (b *base) Fetch(now int64) cpu.Cost       { return cpu.Cost{} }

// FetchIsFree declares the no-op Fetch above to the interpreter (see
// cpu.FreeFetcher); schemes that charge per-fetch costs must override
// both Fetch and this.
func (b *base) FetchIsFree() bool { return true }
func (b *base) RegionEnd(now int64) cpu.Cost {
	panic("arch: region.end executed on a plain-compiled scheme")
}
func (b *base) Clwb(now int64, addr int64) cpu.Cost {
	panic("arch: clwb executed on a non-replay scheme")
}
func (b *base) Fence(now int64) cpu.Cost {
	panic("arch: fence executed on a non-replay scheme")
}
func (b *base) ContinuesAfterBackup() bool { return false }
func (b *base) NeedsBackup() bool          { return false }
func (b *base) Boot(entryPC int64)         {}
func (b *base) Finalize()                  {}

// flushDirty writes every dirty line of c to NVM uncounted; the shared
// Finalize implementation for write-back schemes.
func flushDirty(c *cache.Cache, b *base) {
	for _, slot := range c.DirtySlots(nil) {
		b.nvm.PokeLine(c.Tag(slot), c.Data(slot))
		c.ClearDirty(slot)
	}
}

// Scheme is one complete machine.
type Scheme interface {
	cpu.MemSystem
	Name() string
	Kind() Kind
	// JIT reports whether the scheme checkpoints just-in-time: the
	// engine triggers Backup when the voltage falls to VBackup. Non-JIT
	// schemes (SweepCache) run down to Vmin and lose everything.
	JIT() bool
	// ContinuesAfterBackup reports NvMR's defining property: execution
	// proceeds past the backup instead of halting until VRestore.
	ContinuesAfterBackup() bool
	// NeedsBackup reports that the scheme requires an extra JIT backup
	// now for structural reasons (NvMR's rename table filling up).
	NeedsBackup() bool
	// Boot primes the recovery state with the program entry point, so a
	// failure before the first backup restarts the program.
	Boot(entryPC int64)
	// Backup checkpoints volatile state (JIT schemes only).
	Backup(now int64, regs *cpu.Regs, pc int64) cpu.Cost
	// PowerFail destroys volatile state at the moment of the outage.
	PowerFail(now int64)
	// Restore rebuilds state after recharge; returns the resume PC.
	Restore(now int64, regs *cpu.Regs) (int64, cpu.Cost)
	// Sync applies background completions (buffer drains, clwb queue)
	// up to now.
	Sync(now int64)
	// Finalize makes the final NVM image observable at program halt:
	// volatile write-back state still in flight (dirty lines, buffers,
	// queues) is drained without cost accounting, so differential tests
	// can compare memory images across schemes.
	Finalize()

	NVM() *mem.NVM
	Ledger() *energy.Ledger
	Stats() *Stats
	Params() config.Params
	// Cache returns the L1D model, or nil for the cache-free NVP.
	Cache() *cache.Cache
	// SetTracer attaches the telemetry tracer the scheme emits events
	// to; nil (the default) disables scheme-level events.
	SetTracer(tr *telemetry.Tracer)
}

// New constructs the scheme for kind with the appropriate Table 1 voltage
// thresholds applied to p.
func New(kind Kind, p config.Params) Scheme {
	switch kind {
	case NVP:
		return newNVP(p.WithNVPThresholds())
	case WTVCache:
		return newWT(p.WithNVPThresholds())
	case NVSRAM:
		return newNVSRAM(p.WithNVSRAMThresholds(), false)
	case NVSRAME:
		return newNVSRAM(p.WithNVSRAMThresholds(), true)
	case ReplayCache:
		return newReplay(p.WithNVPThresholds())
	case SweepNVMSearch:
		return newSweep(p.WithSweepThresholds(), false)
	case SweepEmptyBit:
		return newSweep(p.WithSweepThresholds(), true)
	case NvMR:
		return newNvMR(p.WithNVPThresholds())
	}
	panic("arch: unknown kind")
}

// AllKinds lists every scheme in presentation order.
func AllKinds() []Kind {
	return []Kind{NVP, WTVCache, NVSRAM, NVSRAME, ReplayCache, SweepNVMSearch, SweepEmptyBit, NvMR}
}

// ParseKind resolves a scheme name (its String form, e.g.
// "Sweep-EmptyBit") back to its Kind. The service boundary parses
// client-supplied names through this, so the accepted vocabulary is
// exactly the presentation names the figures print.
func ParseKind(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// EvalKinds lists the schemes of the headline figures (Figures 5–7).
func EvalKinds() []Kind {
	return []Kind{ReplayCache, NVSRAM, SweepNVMSearch, SweepEmptyBit}
}
