package arch

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

// nvsram is a volatile write-back cache with a nonvolatile counterpart
// (Figure 1c): the JIT backup copies dirty lines (or, for NVSRAM-E, the
// entire cache) into the counterpart, and restore brings them back, so the
// cache survives outages warm.
type nvsram struct {
	base
	c      *cache.Cache
	entire bool // NVSRAM-E: back up every valid line

	snapRegs  cpu.Regs
	snapPC    int64
	snapLines []savedLine
}

type savedLine struct {
	addr  int64
	dirty bool
	data  [mem.LineSize]byte
}

func newNVSRAM(p config.Params, entire bool) *nvsram {
	return &nvsram{base: newBase(p), c: cache.New(p.CacheSize, p.CacheWays), entire: entire}
}

func (s *nvsram) Name() string {
	if s.entire {
		return "NVSRAM-E"
	}
	return "NVSRAM"
}

func (s *nvsram) Kind() Kind {
	if s.entire {
		return NVSRAME
	}
	return NVSRAM
}

func (s *nvsram) JIT() bool           { return true }
func (s *nvsram) Cache() *cache.Cache { return s.c }

// access is the shared write-back, write-allocate path.
func (s *nvsram) access(now int64, addr int64) (*cache.Line, cpu.Cost) {
	s.led.Compute += s.p.ESRAMAccess
	if ln := s.c.Touch(addr); ln != nil {
		return ln, cpu.Cost{}
	}
	var cost cpu.Cost
	v := s.c.Victim(addr)
	if v.Valid && v.Dirty {
		s.nvm.WriteLine(v.Tag, &v.Data)
		s.led.NVM += s.p.ENVMLineWrite
		cost.Ns += s.p.NVMLineWriteNs
		s.tr.Emit(telemetry.EvDirtyEvict, now, v.Tag, 0, 0, 0)
		v.Dirty = false
		s.c.DirtyEvictions++
	}
	var data [mem.LineSize]byte
	s.nvm.ReadLine(mem.LineAddr(addr), &data)
	s.led.NVM += s.p.ENVMLineRead
	cost.Ns += s.p.NVMLineReadNs
	return s.c.Fill(addr, &data), cost
}

func (s *nvsram) Load(now int64, addr int64, byteWide bool) (int64, cpu.Cost) {
	ln, cost := s.access(now, addr)
	if byteWide {
		return int64(ln.ByteAt(addr)), cost
	}
	return ln.ReadWord(addr), cost
}

func (s *nvsram) Store(now int64, addr int64, val int64, byteWide bool) cpu.Cost {
	ln, cost := s.access(now, addr)
	if byteWide {
		ln.SetByte(addr, byte(val))
	} else {
		ln.WriteWord(addr, val)
	}
	ln.Dirty = true
	return cost
}

func (s *nvsram) Backup(now int64, regs *cpu.Regs, pc int64) cpu.Cost {
	s.snapRegs = *regs
	s.snapPC = pc
	s.snapLines = s.snapLines[:0]
	var lines []*cache.Line
	if s.entire {
		lines = s.c.ValidLines(nil)
	} else {
		lines = s.c.DirtyLines(nil)
	}
	for _, ln := range lines {
		s.snapLines = append(s.snapLines, savedLine{addr: ln.Tag, dirty: ln.Dirty, data: ln.Data})
	}
	n := int64(len(lines))
	s.led.Backup += s.p.EBackupFixed + float64(n)*s.p.EBackupPerLine
	s.st.BackupEvents++
	s.st.LinesBackedUp += uint64(n)
	return cpu.Cost{Ns: s.p.BackupTimeNs + n*s.p.BackupPerLineNs}
}

func (s *nvsram) PowerFail(now int64) { s.c.Invalidate() }

func (s *nvsram) Restore(now int64, regs *cpu.Regs) (int64, cpu.Cost) {
	*regs = s.snapRegs
	for i := range s.snapLines {
		sl := &s.snapLines[i]
		ln := s.c.Fill(sl.addr, &sl.data)
		ln.Dirty = sl.dirty
	}
	n := int64(len(s.snapLines))
	s.led.Restore += s.p.ERestoreFixed + float64(n)*s.p.ERestorePerLine
	s.st.RestoreEvents++
	return s.snapPC, cpu.Cost{Ns: s.p.RestoreTimeNs + n*s.p.RestorePerLineNs}
}

// Boot primes the JIT snapshot with the program entry so a failure before
// the first backup restarts from the beginning.
func (s *nvsram) Boot(entryPC int64) {
	s.snapPC = entryPC
	s.snapRegs = cpu.Regs{}
}

// Finalize drains dirty lines so the final NVM image is observable.
func (s *nvsram) Finalize() { flushDirty(s.c, &s.base) }
