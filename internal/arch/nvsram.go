package arch

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

// nvsram is a volatile write-back cache with a nonvolatile counterpart
// (Figure 1c): the JIT backup copies dirty lines (or, for NVSRAM-E, the
// entire cache) into the counterpart, and restore brings them back, so the
// cache survives outages warm.
type nvsram struct {
	base
	c      *cache.Cache
	entire bool // NVSRAM-E: back up every valid line

	snapRegs  cpu.Regs
	snapPC    int64
	snapLines []savedLine

	// slotScratch is reused by Backup's line enumeration.
	slotScratch []int
}

type savedLine struct {
	addr  int64
	dirty bool
	data  [mem.LineSize]byte
}

func newNVSRAM(p config.Params, entire bool) *nvsram {
	return &nvsram{base: newBase(p), c: cache.New(p.CacheSize, p.CacheWays), entire: entire}
}

func (s *nvsram) Name() string {
	if s.entire {
		return "NVSRAM-E"
	}
	return "NVSRAM"
}

func (s *nvsram) Kind() Kind {
	if s.entire {
		return NVSRAME
	}
	return NVSRAM
}

func (s *nvsram) JIT() bool           { return true }
func (s *nvsram) Cache() *cache.Cache { return s.c }

// access is the shared write-back, write-allocate path.
func (s *nvsram) access(now int64, addr int64) (int, cpu.Cost) {
	s.led.Compute += s.p.ESRAMAccess
	if slot := s.c.Touch(addr); slot != cache.NoSlot {
		return slot, cpu.Cost{}
	}
	var cost cpu.Cost
	v := s.c.Victim(addr)
	if s.c.Valid(v) && s.c.Dirty(v) {
		s.nvm.WriteLine(s.c.Tag(v), s.c.Data(v))
		s.led.NVM += s.p.ENVMLineWrite
		cost.Ns += s.p.NVMLineWriteNs
		s.tr.Emit(telemetry.EvDirtyEvict, now, s.c.Tag(v), 0, 0, 0)
		s.c.ClearDirty(v)
		s.c.DirtyEvictions++
	}
	slot := s.c.FillUninit(addr)
	s.nvm.ReadLine(mem.LineAddr(addr), s.c.Data(slot))
	s.led.NVM += s.p.ENVMLineRead
	cost.Ns += s.p.NVMLineReadNs
	return slot, cost
}

func (s *nvsram) Load(now int64, addr int64, byteWide bool) (int64, cpu.Cost) {
	slot, cost := s.access(now, addr)
	if byteWide {
		return int64(s.c.ByteAt(slot, addr)), cost
	}
	return s.c.ReadWord(slot, addr), cost
}

func (s *nvsram) Store(now int64, addr int64, val int64, byteWide bool) cpu.Cost {
	slot, cost := s.access(now, addr)
	if byteWide {
		s.c.SetByte(slot, addr, byte(val))
	} else {
		s.c.WriteWord(slot, addr, val)
	}
	s.c.MarkDirty(slot)
	return cost
}

func (s *nvsram) Backup(now int64, regs *cpu.Regs, pc int64) cpu.Cost {
	s.snapRegs = *regs
	s.snapPC = pc
	s.snapLines = s.snapLines[:0]
	if s.entire {
		s.slotScratch = s.c.ValidSlots(s.slotScratch[:0])
	} else {
		s.slotScratch = s.c.DirtySlots(s.slotScratch[:0])
	}
	for _, slot := range s.slotScratch {
		s.snapLines = append(s.snapLines, savedLine{
			addr: s.c.Tag(slot), dirty: s.c.Dirty(slot), data: *s.c.Data(slot),
		})
	}
	n := int64(len(s.slotScratch))
	s.led.Backup += s.p.EBackupFixed + float64(n)*s.p.EBackupPerLine
	s.st.BackupEvents++
	s.st.LinesBackedUp += uint64(n)
	return cpu.Cost{Ns: s.p.BackupTimeNs + n*s.p.BackupPerLineNs}
}

func (s *nvsram) PowerFail(now int64) { s.c.Invalidate() }

func (s *nvsram) Restore(now int64, regs *cpu.Regs) (int64, cpu.Cost) {
	*regs = s.snapRegs
	for i := range s.snapLines {
		sl := &s.snapLines[i]
		slot := s.c.Fill(sl.addr, &sl.data)
		if sl.dirty {
			s.c.MarkDirty(slot)
		}
	}
	n := int64(len(s.snapLines))
	s.led.Restore += s.p.ERestoreFixed + float64(n)*s.p.ERestorePerLine
	s.st.RestoreEvents++
	return s.snapPC, cpu.Cost{Ns: s.p.RestoreTimeNs + n*s.p.RestorePerLineNs}
}

// Boot primes the JIT snapshot with the program entry so a failure before
// the first backup restarts from the beginning.
func (s *nvsram) Boot(entryPC int64) {
	s.snapPC = entryPC
	s.snapRegs = cpu.Regs{}
}

// Finalize drains dirty lines so the final NVM image is observable.
func (s *nvsram) Finalize() { flushDirty(s.c, &s.base) }
