package arch

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// wt is NVP plus a volatile write-through cache (Figure 1b): loads are
// cached, but every store pays a synchronous NVM write, so the cache never
// holds dirty data and crash consistency is free beyond the JIT register
// checkpoint.
type wt struct {
	base
	c        *cache.Cache
	snapRegs cpu.Regs
	snapPC   int64
}

func newWT(p config.Params) *wt {
	return &wt{base: newBase(p), c: cache.New(p.CacheSize, p.CacheWays)}
}

func (s *wt) Name() string        { return "WT-VCache" }
func (s *wt) Kind() Kind          { return WTVCache }
func (s *wt) JIT() bool           { return true }
func (s *wt) Cache() *cache.Cache { return s.c }

// fill brings addr's line in from NVM; write-through lines are always
// clean, so the victim needs no draining.
func (s *wt) fill(addr int64) (int, cpu.Cost) {
	slot := s.c.FillUninit(addr)
	s.nvm.ReadLine(mem.LineAddr(addr), s.c.Data(slot))
	s.led.NVM += s.p.ENVMLineRead
	return slot, cpu.Cost{Ns: s.p.NVMLineReadNs}
}

func (s *wt) Load(now int64, addr int64, byteWide bool) (int64, cpu.Cost) {
	s.led.Compute += s.p.ESRAMAccess
	slot := s.c.Touch(addr)
	var cost cpu.Cost
	if slot == cache.NoSlot {
		slot, cost = s.fill(addr)
	}
	if byteWide {
		return int64(s.c.ByteAt(slot, addr)), cost
	}
	return s.c.ReadWord(slot, addr), cost
}

func (s *wt) Store(now int64, addr int64, val int64, byteWide bool) cpu.Cost {
	s.led.Compute += s.p.ESRAMAccess
	// Update the cached copy if present (no write-allocate) ...
	if slot := s.c.Touch(addr); slot != cache.NoSlot {
		if byteWide {
			s.c.SetByte(slot, addr, byte(val))
		} else {
			s.c.WriteWord(slot, addr, val)
		}
	}
	// ... and always write through to NVM.
	s.led.NVM += s.p.ENVMWrite
	if byteWide {
		s.nvm.WriteByteAt(addr, byte(val))
	} else {
		s.nvm.WriteWord(addr, val)
	}
	return cpu.Cost{Ns: s.p.NVMWriteNs}
}

func (s *wt) Backup(now int64, regs *cpu.Regs, pc int64) cpu.Cost {
	s.snapRegs = *regs
	s.snapPC = pc
	s.led.Backup += s.p.EBackupFixed
	s.st.BackupEvents++
	return cpu.Cost{Ns: s.p.BackupTimeNs}
}

func (s *wt) PowerFail(now int64) { s.c.Invalidate() }

func (s *wt) Restore(now int64, regs *cpu.Regs) (int64, cpu.Cost) {
	*regs = s.snapRegs
	s.led.Restore += s.p.ERestoreFixed
	s.st.RestoreEvents++
	return s.snapPC, cpu.Cost{Ns: s.p.RestoreTimeNs}
}

// Boot primes the JIT snapshot with the program entry so a failure before
// the first backup restarts from the beginning.
func (s *wt) Boot(entryPC int64) {
	s.snapPC = entryPC
	s.snapRegs = cpu.Regs{}
}

// Finalize is a no-op: a write-through cache never holds dirty data.
func (s *wt) Finalize() {}
