package arch

import (
	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/telemetry"
)

// replay implements ReplayCache (Figure 1d): a volatile write-back cache
// where the compiler follows every store with a clwb and fences at region
// ends. Writebacks drain asynchronously through a small queue; stores left
// unpersisted at the JIT backup are replayed into NVM during recovery
// (store integrity guarantees the operands survive — here the replay set is
// recorded at backup time, which is observationally identical).
type replay struct {
	base
	c *cache.Cache

	// pending is the asynchronous clwb drain queue, oldest first.
	pending []clwbEntry
	// lastDrainDone is when the most recently enqueued entry completes.
	lastDrainDone int64

	snapRegs   cpu.Regs
	snapPC     int64
	snapReplay []clwbEntry

	// dirtyScratch is reused by Backup's dirty-line enumeration.
	dirtyScratch []int
}

type clwbEntry struct {
	addr   int64
	doneAt int64
	data   [mem.LineSize]byte
}

func newReplay(p config.Params) *replay {
	return &replay{base: newBase(p), c: cache.New(p.CacheSize, p.CacheWays)}
}

func (s *replay) Name() string        { return "ReplayCache" }
func (s *replay) Kind() Kind          { return ReplayCache }
func (s *replay) JIT() bool           { return true }
func (s *replay) Cache() *cache.Cache { return s.c }

// Sync applies queue entries whose drain completed by now.
func (s *replay) Sync(now int64) {
	i := 0
	for ; i < len(s.pending) && s.pending[i].doneAt <= now; i++ {
		s.nvm.WriteLine(s.pending[i].addr, &s.pending[i].data)
	}
	if i > 0 {
		s.pending = append(s.pending[:0], s.pending[i:]...)
	}
}

// findPending returns the youngest queued writeback for addr's line, if
// any — a miss must snoop the queue or it would read stale NVM.
func (s *replay) findPending(addr int64) *clwbEntry {
	la := mem.LineAddr(addr)
	for i := len(s.pending) - 1; i >= 0; i-- {
		if s.pending[i].addr == la {
			return &s.pending[i]
		}
	}
	return nil
}

func (s *replay) access(now int64, addr int64) (int, cpu.Cost) {
	s.Sync(now)
	s.led.Compute += s.p.ESRAMAccess
	if slot := s.c.Touch(addr); slot != cache.NoSlot {
		return slot, cpu.Cost{}
	}
	var cost cpu.Cost
	v := s.c.Victim(addr)
	if s.c.Valid(v) && s.c.Dirty(v) {
		s.nvm.WriteLine(s.c.Tag(v), s.c.Data(v))
		s.led.NVM += s.p.ENVMLineWrite
		cost.Ns += s.p.NVMLineWriteNs
		s.tr.Emit(telemetry.EvDirtyEvict, now, s.c.Tag(v), 0, 0, 0)
		s.c.ClearDirty(v)
		s.c.DirtyEvictions++
	}
	slot := s.c.FillUninit(addr)
	if pe := s.findPending(addr); pe != nil {
		*s.c.Data(slot) = pe.data
	} else {
		s.nvm.ReadLine(mem.LineAddr(addr), s.c.Data(slot))
	}
	s.led.NVM += s.p.ENVMLineRead
	cost.Ns += s.p.NVMLineReadNs
	return slot, cost
}

func (s *replay) Load(now int64, addr int64, byteWide bool) (int64, cpu.Cost) {
	slot, cost := s.access(now, addr)
	if byteWide {
		return int64(s.c.ByteAt(slot, addr)), cost
	}
	return s.c.ReadWord(slot, addr), cost
}

func (s *replay) Store(now int64, addr int64, val int64, byteWide bool) cpu.Cost {
	slot, cost := s.access(now, addr)
	if byteWide {
		s.c.SetByte(slot, addr, byte(val))
	} else {
		s.c.WriteWord(slot, addr, val)
	}
	s.c.MarkDirty(slot)
	return cost
}

func (s *replay) Clwb(now int64, addr int64) cpu.Cost {
	s.Sync(now)
	var cost cpu.Cost
	if len(s.pending) >= s.p.ClwbQueueDepth {
		// Structural stall until the oldest entry drains.
		wait := s.pending[0].doneAt - now
		if wait > 0 {
			cost.Ns += wait
			s.st.ClwbStallNs += wait
		}
		s.Sync(now + cost.Ns)
	}
	slot := s.c.Probe(addr)
	if slot == cache.NoSlot {
		// The line was evicted between store and clwb (possible only
		// across a boundary oddity); the eviction already wrote NVM.
		return cost
	}
	start := now + cost.Ns
	if s.lastDrainDone > start {
		start = s.lastDrainDone
	}
	done := start + s.p.NVMLineWriteNs
	s.pending = append(s.pending, clwbEntry{addr: s.c.Tag(slot), doneAt: done, data: *s.c.Data(slot)})
	s.lastDrainDone = done
	s.led.Persist += s.p.ENVMLineWrite
	s.c.ClearDirty(slot)
	return cost
}

func (s *replay) Fence(now int64) cpu.Cost {
	s.Sync(now)
	var cost cpu.Cost
	if n := len(s.pending); n > 0 {
		wait := s.pending[n-1].doneAt - now
		if wait > 0 {
			cost.Ns += wait
			s.st.FenceStallNs += wait
		}
		s.Sync(now + cost.Ns)
	}
	return cost
}

func (s *replay) Backup(now int64, regs *cpu.Regs, pc int64) cpu.Cost {
	s.snapRegs = *regs
	s.snapPC = pc
	// Unpersisted stores = queued writebacks not yet drained, plus dirty
	// lines whose clwb had not issued yet.
	s.snapReplay = append(s.snapReplay[:0], s.pending...)
	s.dirtyScratch = s.c.DirtySlots(s.dirtyScratch[:0])
	for _, slot := range s.dirtyScratch {
		s.snapReplay = append(s.snapReplay, clwbEntry{addr: s.c.Tag(slot), data: *s.c.Data(slot)})
	}
	s.led.Backup += s.p.EBackupFixed
	s.st.BackupEvents++
	return cpu.Cost{Ns: s.p.BackupTimeNs}
}

func (s *replay) PowerFail(now int64) {
	s.c.Invalidate()
	s.pending = s.pending[:0]
	s.lastDrainDone = 0
}

func (s *replay) Restore(now int64, regs *cpu.Regs) (int64, cpu.Cost) {
	// Replay unpersisted stores sequentially (Section 2.2: "load the
	// data ... to execute a recovery block for replaying stores
	// sequentially, which leads to slow recovery").
	var cost cpu.Cost
	for i := range s.snapReplay {
		e := &s.snapReplay[i]
		s.nvm.WriteLine(e.addr, &e.data)
		s.led.Restore += s.p.ERestorePerLine
		cost.Ns += s.p.NVMLineWriteNs + 2*s.p.CycleNs
		s.st.ReplayedStores++
	}
	s.snapReplay = s.snapReplay[:0]
	*regs = s.snapRegs
	s.led.Restore += s.p.ERestoreFixed
	s.st.RestoreEvents++
	cost.Ns += s.p.RestoreTimeNs
	return s.snapPC, cost
}

// Boot primes the JIT snapshot with the program entry so a failure before
// the first backup restarts from the beginning.
func (s *replay) Boot(entryPC int64) {
	s.snapPC = entryPC
	s.snapRegs = cpu.Regs{}
}

// Finalize applies the outstanding clwb queue and dirty lines.
func (s *replay) Finalize() {
	for i := range s.pending {
		s.nvm.PokeLine(s.pending[i].addr, &s.pending[i].data)
	}
	s.pending = s.pending[:0]
	flushDirty(s.c, &s.base)
}
