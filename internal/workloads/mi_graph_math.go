package workloads

import "repro/internal/ir"

// buildDijkstra is dijkstra: single-source shortest paths over a dense
// adjacency matrix — repeated min-scans over the distance array (loads,
// compares, branches) with sparse relaxation stores. Memory access is
// irregular relative to the streaming media kernels.
func buildDijkstra(scale int) *ir.Program {
	k := newKernel("dijkstra", 0xd13)
	n := int64(40)
	sources := 4 * normScale(scale)
	adjv := make([]int64, n*n)
	for i := range adjv {
		adjv[i] = k.rng.Int63n(100) + 1
	}
	adj := k.p.AllocWords(adjv)
	dist := k.p.Alloc(n * 8)
	visited := k.p.Alloc(n * 8)
	const inf = 1 << 40

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0) // source counter
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, sources)

	rlib := newLib(k)
	src := NewLoop(f, "src", en, R0, R13)
	sb := src.Body
	// Per-source initialization goes through the runtime library — the
	// realistic pattern where the hot relaxation loops are open-coded but
	// the setup calls memset. The library clobbers r0..r7, so the outer
	// counter is parked in r8 (free until the min-scan below).
	sb.Mov(R8, R0)
	c1 := callMemset(rlib, f, sb, "init.dist", dist, inf, n)
	c2 := callMemset(rlib, f, c1, "init.vis", visited, 0, n)
	c2.Mov(R0, R8)
	c2.MovI(R12, 0) // re-establish the zero register after the calls
	ie := c2
	ie.MovI(R10, dist)
	ie.AndI(R4, R0, 31)
	ie.ShlI(R4, R4, 3)
	ie.Add(R10, R10, R4)
	ie.St(R10, 0, R12) // dist[source]=0

	// n rounds: pick min unvisited, mark, relax.
	ie.MovI(R1, 0)
	ie.MovI(R11, n)
	rounds := NewLoop(f, "round", ie, R1, R11)
	rb := rounds.Body
	// min scan
	rb.MovI(R2, 0)     // j
	rb.MovI(R8, inf*2) // best dist
	rb.MovI(R9, 0)     // best index
	rb.MovI(R10, n)
	scan := NewLoop(f, "scan", rb, R2, R10)
	scb := scan.Body
	scb.MovI(R10, visited)
	scb.ShlI(R4, R2, 3)
	scb.Add(R10, R10, R4)
	scb.Ld(R5, R10, 0)
	seen := f.NewBlock("scan.seen")
	chk := f.NewBlock("scan.chk")
	scb.Bne(R5, R12, seen, chk)
	chk.MovI(R10, dist)
	chk.Add(R10, R10, R4)
	chk.Ld(R5, R10, 0)
	better := f.NewBlock("scan.better")
	cont := f.NewBlock("scan.cont")
	chk.Bge(R5, R8, cont, better)
	better.Mov(R8, R5)
	better.Mov(R9, R2)
	better.Jmp(cont)
	seen.Jmp(cont)
	cont.MovI(R10, n) // restore scan limit
	scan.Close(cont, 1)
	// mark best visited
	se := scan.Exit
	se.MovI(R10, visited)
	se.ShlI(R4, R9, 3)
	se.Add(R10, R10, R4)
	se.MovI(R5, 1)
	se.St(R10, 0, R5)
	// relax neighbours of best
	se.MovI(R2, 0)
	se.MovI(R11, n)
	rel := NewLoop(f, "relax", se, R2, R11)
	lb := rel.Body
	lb.MulI(R4, R9, n*8)
	lb.ShlI(R5, R2, 3)
	lb.Add(R4, R4, R5)
	lb.MovI(R10, adj)
	lb.Add(R4, R4, R10)
	lb.Ld(R3, R4, 0) // weight
	lb.Add(R3, R3, R8)
	lb.MovI(R10, dist)
	lb.Add(R10, R10, R5)
	lb.Ld(R6, R10, 0)
	upd := f.NewBlock("relax.upd")
	rcont := f.NewBlock("relax.cont")
	lb.Bge(R3, R6, rcont, upd)
	upd.St(R10, 0, R3)
	upd.Jmp(rcont)
	rcont.MovI(R11, n) // restore relax limit
	rel.Close(rcont, 1)
	rounds.Close(rel.Exit, 1)

	// checksum distances
	oe := rounds.Exit
	oe.MovI(R2, 0)
	oe.MovI(R11, n)
	sum := NewLoop(f, "sum", oe, R2, R11)
	mb := sum.Body
	mb.MovI(R10, dist)
	mb.ShlI(R4, R2, 3)
	mb.Add(R10, R10, R4)
	mb.Ld(R3, R10, 0)
	mb.Add(R14, R14, R3)
	mb.ShlI(R4, R14, 3)
	mb.Xor(R14, R14, R4)
	sum.Close(mb, 1)
	src.Close(sum.Exit, 1)

	k.finishFold(newLib(k), f, src.Exit, dist, n*8, R14)
	return k.p
}

// buildBasicmath is basicmath: integer square roots by Newton iteration,
// gcds by Euclid, and cubic-ish polynomial evaluation — ALU-dominated with
// only a result store per item, the most compute-bound kernel in the
// suite.
func buildBasicmath(scale int) *ir.Program {
	k := newKernel("basicmath", 0xba51)
	items := 700 * normScale(scale)
	in := k.randWords(int(items), 1<<40)
	out := k.p.Alloc(items * 8)

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0)
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, items)

	it := NewLoop(f, "item", en, R0, R13)
	b := it.Body
	b.MovI(R10, in)
	b.ShlI(R4, R0, 3)
	b.Add(R10, R10, R4)
	b.Ld(R3, R10, 0) // x
	// isqrt by 12 Newton steps: g = (g + x/g) / 2, g0 = x>>20 + 1
	b.SarI(R1, R3, 20)
	b.AddI(R1, R1, 1)
	b.MovI(R2, 0)
	b.MovI(R11, 12)
	nw := NewLoop(f, "newton", b, R2, R11)
	nb := nw.Body
	nb.Div(R5, R3, R1)
	nb.Add(R1, R1, R5)
	nb.SarI(R1, R1, 1)
	nw.Close(nb, 1)
	// gcd(x, g) by Euclid (data-dependent loop).
	ne := nw.Exit
	ne.Mov(R5, R3)
	ne.Mov(R6, R1)
	ne.AddI(R6, R6, 1) // avoid zero
	gh := f.NewBlock("gcd.head")
	gb := f.NewBlock("gcd.body")
	gx := f.NewBlock("gcd.exit")
	ne.Jmp(gh)
	gh.Beq(R6, R12, gx, gb)
	gb.Rem(R7, R5, R6)
	gb.Mov(R5, R6)
	gb.Mov(R6, R7)
	gb.Jmp(gh)
	// poly = ((x*3 + g)*x + gcd) & mask
	gx.MulI(R7, R3, 3)
	gx.Add(R7, R7, R1)
	gx.Mul(R7, R7, R3)
	gx.Add(R7, R7, R5)
	gx.MovI(R10, (1<<45)-1)
	gx.And(R7, R7, R10)
	gx.MovI(R10, out)
	gx.ShlI(R4, R0, 3)
	gx.Add(R10, R10, R4)
	gx.St(R10, 0, R7)
	gx.Add(R14, R14, R7)
	gx.ShlI(R4, R14, 27)
	gx.Xor(R14, R14, R4)
	it.Close(gx, 1)

	k.finishFold(newLib(k), f, it.Exit, out, items*8, R14)
	return k.p
}

// buildFFT builds fft/ifft: 256-point in-place fixed-point radix-2 FFT —
// bit-reversal permutation (irregular load/store pairs), then log2(n)
// butterfly stages with twiddle-table lookups and paired stores. ifft uses
// conjugated twiddles and a final scaling pass.
func buildFFT(name string, inverse bool) func(scale int) *ir.Program {
	return func(scale int) *ir.Program {
		var seed int64 = 0xff7
		if inverse {
			seed = 0x1ff7
		}
		k := newKernel(name, seed)
		const n = 128
		passes := 6 * normScale(scale)
		re := k.randWords(n, 1<<15)
		im := k.randWords(n, 1<<15)
		// Quarter-wave-ish integer twiddle table.
		tw := k.words(n, func(i int) int64 {
			v := int64((i*7919)%32768) - 16384
			if inverse {
				v = -v
			}
			return v
		})
		brev := k.words(n, func(i int) int64 {
			r := 0
			for b := 0; b < 7; b++ {
				r = r<<1 | (i>>b)&1
			}
			return int64(r)
		})

		f := k.p.NewFunc("main")
		en := f.Entry()
		en.MovI(R0, 0)
		en.MovI(R12, 0)
		en.MovI(R14, 0)
		en.MovI(R13, passes)

		ps := NewLoop(f, "pass", en, R0, R13)
		pb := ps.Body
		// Bit-reversal: swap re[i] <-> re[brev[i]] when i < brev[i].
		pb.MovI(R1, 0)
		pb.MovI(R11, n)
		br := NewLoop(f, "brev", pb, R1, R11)
		bb := br.Body
		bb.MovI(R10, brev)
		bb.ShlI(R4, R1, 3)
		bb.Add(R10, R10, R4)
		bb.Ld(R2, R10, 0) // j
		swap := f.NewBlock("brev.swap")
		cont := f.NewBlock("brev.cont")
		bb.Bge(R1, R2, cont, swap)
		swap.MovI(R10, re)
		swap.Add(R5, R10, R4)
		swap.ShlI(R6, R2, 3)
		swap.Add(R6, R10, R6)
		swap.Ld(R7, R5, 0)
		swap.Ld(R8, R6, 0)
		swap.St(R5, 0, R8)
		swap.St(R6, 0, R7)
		swap.Jmp(cont)
		br.Close(cont, 1)
		// Butterfly stages: stride doubles each stage.
		be := br.Exit
		be.MovI(R1, 1) // stride s
		sh := f.NewBlock("stage.head")
		sb := f.NewBlock("stage.body")
		sx := f.NewBlock("stage.exit")
		be.Jmp(sh)
		sh.MovI(R10, n)
		sh.Bge(R1, R10, sx, sb)
		// inner: for i in 0..n step 2s: for j in 0..s: butterfly(i+j, i+j+s)
		sb.MovI(R2, 0) // i
		ih := f.NewBlock("bf.head")
		ibd := f.NewBlock("bf.body")
		ix := f.NewBlock("bf.exit")
		sb.Jmp(ih)
		ih.MovI(R10, n)
		ih.Bge(R2, R10, ix, ibd)
		// butterfly on pair (i, i+s): twiddle index = (i*s) & 255
		ibd.Mul(R3, R2, R1)
		ibd.AndI(R3, R3, n-1)
		ibd.MovI(R10, tw)
		ibd.ShlI(R3, R3, 3)
		ibd.Add(R10, R10, R3)
		ibd.Ld(R3, R10, 0) // w
		ibd.MovI(R10, re)
		ibd.ShlI(R4, R2, 3)
		ibd.Add(R5, R10, R4)
		ibd.ShlI(R6, R1, 3)
		ibd.Add(R6, R5, R6) // &re[i+s]
		ibd.Ld(R7, R5, 0)   // a
		ibd.Ld(R8, R6, 0)   // b
		ibd.Mul(R9, R8, R3)
		ibd.SarI(R9, R9, 14) // b*w scaled
		ibd.Add(R10, R7, R9)
		ibd.St(R5, 0, R10)
		ibd.Sub(R10, R7, R9)
		ibd.St(R6, 0, R10)
		// imaginary part, same shape
		ibd.MovI(R10, im)
		ibd.Add(R5, R10, R4)
		ibd.ShlI(R6, R1, 3)
		ibd.Add(R6, R5, R6)
		ibd.Ld(R7, R5, 0)
		ibd.Ld(R8, R6, 0)
		ibd.Mul(R9, R8, R3)
		ibd.SarI(R9, R9, 14)
		ibd.Add(R10, R7, R9)
		ibd.St(R5, 0, R10)
		ibd.Sub(R10, R7, R9)
		ibd.St(R6, 0, R10)
		// i += 2s, but ensure pair stays in range: i = i + max(2s, 2)
		ibd.ShlI(R4, R1, 1)
		ibd.Add(R2, R2, R4)
		ibd.Jmp(ih)
		ix.ShlI(R1, R1, 1)
		ix.Jmp(sh)
		// Accumulate checksum over a sample of outputs.
		sx.MovI(R10, re)
		sx.Ld(R3, R10, 8*17)
		sx.Add(R14, R14, R3)
		sx.MovI(R10, im)
		sx.Ld(R3, R10, 8*33)
		sx.Xor(R14, R14, R3)
		ps.Close(sx, 1)

		k.finishFold(newLib(k), f, ps.Exit, re, n*8, R14)
		return k.p
	}
}
