package workloads

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 26 {
		t.Fatalf("%d workloads, want 26 (the paper's benchmark count)", len(all))
	}
	media, mi := 0, 0
	for _, w := range all {
		switch w.Suite {
		case "mediabench":
			media++
		case "mibench":
			mi++
		default:
			t.Errorf("%s: unknown suite %q", w.Name, w.Suite)
		}
	}
	if media != 16 || mi != 10 {
		t.Errorf("suites: %d media, %d mibench", media, mi)
	}
	// Paper order: adpcm first, rijndael last.
	if all[0].Name != "adpcmdec" || all[25].Name != "rijndaelenc" {
		t.Error("presentation order")
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("sha")
	if err != nil || w.Name != "sha" {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("missing error for unknown workload")
	}
	if len(Names()) != 26 {
		t.Error("Names length")
	}
}

// TestBuildersDeterministic: two builds of the same workload produce
// identical programs (linked code and data image).
func TestBuildersDeterministic(t *testing.T) {
	for _, w := range All() {
		a, err := ir.Link(w.Build(1))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		b, err := ir.Link(w.Build(1))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if len(a.Code) != len(b.Code) {
			t.Errorf("%s: code size differs", w.Name)
			continue
		}
		for i := range a.Code {
			if a.Code[i] != b.Code[i] {
				t.Errorf("%s: instr %d differs", w.Name, i)
				break
			}
		}
		if len(a.Prog.Inits) != len(b.Prog.Inits) {
			t.Errorf("%s: data image differs", w.Name)
		}
	}
}

// TestBuildersValidate: every built program passes IR validation and
// allocates the checksum word first.
func TestBuildersValidate(t *testing.T) {
	for _, w := range All() {
		p := w.Build(1)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
	}
	if CheckAddr() != ir.DataBase {
		t.Error("checksum address convention")
	}
}

// TestScaleGrowsWork: scale 2 must produce more dynamic work than scale 1;
// verified statically through larger loop bounds reflected in data size or
// identical code with different immediates.
func TestScaleGrowsWork(t *testing.T) {
	for _, name := range []string{"sha", "dijkstra", "adpcmenc"} {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		p1 := w.Build(1)
		p2 := w.Build(2)
		if p2.DataSize < p1.DataSize {
			t.Errorf("%s: scale shrank the data segment", name)
		}
		grew := p2.DataSize > p1.DataSize
		if !grew {
			// Loop bound immediates must grow instead.
			grew = sumImm(p2) > sumImm(p1)
		}
		if !grew {
			t.Errorf("%s: scale had no effect", name)
		}
	}
}

func sumImm(p *ir.Program) int64 {
	var m int64
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == isa.OpMovI && in.Imm > 0 {
					m += in.Imm
				}
			}
		}
	}
	return m
}

// TestOpMixReasonable: every kernel must contain loads, stores and
// branches — the ingredients the memory-hierarchy experiments depend on.
func TestOpMixReasonable(t *testing.T) {
	for _, w := range All() {
		l, err := ir.Link(w.Build(1))
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		var loads, stores, branches int
		for _, in := range l.Code {
			switch {
			case in.Op.IsLoad():
				loads++
			case in.Op == isa.OpSt || in.Op == isa.OpStB:
				stores++
			case in.Op.IsBranch():
				branches++
			}
		}
		if loads == 0 || stores == 0 || branches == 0 {
			t.Errorf("%s: degenerate op mix (ld=%d st=%d br=%d)", w.Name, loads, stores, branches)
		}
	}
}
