package workloads

import (
	"repro/internal/ir"
)

// IMA ADPCM tables, the real ones from the MediaBench codec.
var adpcmIndexTable = []int64{-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8}

var adpcmStepTable = []int64{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
	41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
	190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
	724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
	6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
	16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// buildADPCMEnc is adpcmenc: IMA ADPCM speech encoding. Per sample: sign
// split, three quantization compares against a shrinking step, predictor
// update, index clamp, and one output byte — the classic branchy low-store
// codec loop.
func buildADPCMEnc(scale int) *ir.Program {
	k := newKernel("adpcmenc", 0xad9c)
	n := 2600 * normScale(scale)
	in := k.words(int(n), func(int) int64 { return k.rng.Int63n(65536) - 32768 })
	steps := k.p.AllocWords(adpcmStepTable)
	idxTab := k.p.AllocWords(adpcmIndexTable)
	out := k.p.Alloc(n)

	f := k.p.NewFunc("main")
	en := f.Entry()
	// R0 ctr, R1 valp, R2 index, R13 limit, R12 zero, R14 checksum acc.
	en.MovI(R0, 0)
	en.MovI(R1, 0)
	en.MovI(R2, 0)
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, n)

	lp := NewLoop(f, "samp", en, R0, R13)
	b := lp.Body
	// R3 = sample
	b.MovI(R10, in)
	b.ShlI(R4, R0, 3)
	b.Add(R10, R10, R4)
	b.Ld(R3, R10, 0)
	// delta = sample - valp; sign = (delta<0) ? 8 : 0 (branch, then abs)
	b.Sub(R5, R3, R1)
	neg := f.NewBlock("samp.neg")
	pos := f.NewBlock("samp.pos")
	b.Blt(R5, R12, neg, pos)
	neg.Sub(R5, R12, R5)
	neg.MovI(R6, 8)
	neg.Jmp(pos)
	// pos: R6 holds sign only on the neg path; normalize.
	q := f.NewBlock("samp.q")
	pos.Slt(R7, R3, R1) // sign bit recomputed branchlessly: valp > sample
	pos.MulI(R6, R7, 8)
	pos.Jmp(q)
	// step = steps[index]; three-stage quantization with branches.
	q.MovI(R10, steps)
	q.ShlI(R4, R2, 3)
	q.Add(R10, R10, R4)
	q.Ld(R8, R10, 0) // step
	q.MovI(R7, 0)    // code
	q.Mov(R9, R8)    // vpdiff accumulates step/8 pieces
	q.SarI(R9, R9, 3)
	q4 := f.NewBlock("samp.q4")
	q4b := f.NewBlock("samp.q4b")
	q.Bge(R5, R8, q4, q4b)
	q4.OrI(R7, R7, 4)
	q4.Sub(R5, R5, R8)
	q4.Add(R9, R9, R8)
	q4.Jmp(q4b)
	q2 := f.NewBlock("samp.q2")
	q2b := f.NewBlock("samp.q2b")
	q4b.SarI(R8, R8, 1)
	q4b.Bge(R5, R8, q2, q2b)
	q2.OrI(R7, R7, 2)
	q2.Sub(R5, R5, R8)
	q2.Add(R9, R9, R8)
	q2.Jmp(q2b)
	q1 := f.NewBlock("samp.q1")
	upd := f.NewBlock("samp.upd")
	q2b.SarI(R8, R8, 1)
	q2b.Bge(R5, R8, q1, upd)
	q1.OrI(R7, R7, 1)
	q1.Add(R9, R9, R8)
	q1.Jmp(upd)
	// Predictor update: valp +/- vpdiff, clamped to 16-bit (branchless).
	clampDone := f.NewBlock("samp.cl")
	updNeg := f.NewBlock("samp.updneg")
	upd.Bne(R6, R12, updNeg, clampDone)
	updNeg.Sub(R9, R12, R9)
	updNeg.Jmp(clampDone)
	st := f.NewBlock("samp.st")
	clampDone.Add(R1, R1, R9)
	clampDone.MovI(R10, 32767)
	clampDone.Slt(R4, R10, R1) // valp > 32767?
	clampDone.MovI(R11, -32768)
	clampDone.Sub(R10, R10, R1)
	clampDone.Mul(R10, R10, R4)
	clampDone.Add(R1, R1, R10) // clamp high
	clampDone.Slt(R4, R1, R11)
	clampDone.Sub(R10, R11, R1)
	clampDone.Mul(R10, R10, R4)
	clampDone.Add(R1, R1, R10) // clamp low
	// index += indexTable[code]; clamp 0..88 (branchless)
	clampDone.MovI(R10, idxTab)
	clampDone.ShlI(R4, R7, 3)
	clampDone.Add(R10, R10, R4)
	clampDone.Ld(R4, R10, 0)
	clampDone.Add(R2, R2, R4)
	clampDone.Slt(R4, R2, R12)
	clampDone.MovI(R10, 1)
	clampDone.Sub(R10, R10, R4)
	clampDone.Mul(R2, R2, R10) // index<0 -> 0
	clampDone.MovI(R11, 88)
	clampDone.Slt(R4, R11, R2)
	clampDone.Sub(R10, R11, R2)
	clampDone.Mul(R10, R10, R4)
	clampDone.Add(R2, R2, R10) // index>88 -> 88
	clampDone.Jmp(st)
	// Emit code|sign as one byte and fold into the checksum.
	st.Or(R7, R7, R6)
	st.MovI(R10, out)
	st.Add(R10, R10, R0)
	st.StB(R10, 0, R7)
	st.Add(R14, R14, R7)
	st.ShlI(R4, R14, 1)
	st.Xor(R14, R14, R4)
	lp.Close(st, 1)

	k.finishFold(newLib(k), f, lp.Exit, out, n, R14)
	return k.p
}

// buildADPCMDec is adpcmdec: the matching decoder. Per 4-bit code: table
// step lookup, sign split, predictor reconstruction with clamps, one
// 16-bit sample store.
func buildADPCMDec(scale int) *ir.Program {
	k := newKernel("adpcmdec", 0xad0d)
	n := 2600 * normScale(scale)
	in := k.randBytes(int(n)) // 4-bit codes in low nibbles
	steps := k.p.AllocWords(adpcmStepTable)
	idxTab := k.p.AllocWords(adpcmIndexTable)
	out := k.p.Alloc(n * 8)

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0)
	en.MovI(R1, 0) // valp
	en.MovI(R2, 0) // index
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, n)

	lp := NewLoop(f, "dec", en, R0, R13)
	b := lp.Body
	// code = in[i] & 15
	b.MovI(R10, in)
	b.Add(R10, R10, R0)
	b.LdB(R3, R10, 0)
	b.AndI(R3, R3, 15)
	// step = steps[index]
	b.MovI(R10, steps)
	b.ShlI(R4, R2, 3)
	b.Add(R10, R10, R4)
	b.Ld(R8, R10, 0)
	// vpdiff = step>>3 + pieces per code bits (branchless adds)
	b.SarI(R9, R8, 3)
	b.AndI(R5, R3, 4)
	b.ShrI(R5, R5, 2)
	b.Mul(R5, R5, R8)
	b.Add(R9, R9, R5)
	b.SarI(R8, R8, 1)
	b.AndI(R5, R3, 2)
	b.ShrI(R5, R5, 1)
	b.Mul(R5, R5, R8)
	b.Add(R9, R9, R5)
	b.SarI(R8, R8, 1)
	b.AndI(R5, R3, 1)
	b.Mul(R5, R5, R8)
	b.Add(R9, R9, R5)
	// sign (bit 3): branch to subtract or add
	sub := f.NewBlock("dec.sub")
	add := f.NewBlock("dec.add")
	cl := f.NewBlock("dec.cl")
	b.AndI(R6, R3, 8)
	b.Bne(R6, R12, sub, add)
	sub.Sub(R1, R1, R9)
	sub.Jmp(cl)
	add.Add(R1, R1, R9)
	add.Jmp(cl)
	// clamp valp to 16-bit, update index with clamp (as encoder)
	st := f.NewBlock("dec.st")
	cl.MovI(R10, 32767)
	cl.Slt(R4, R10, R1)
	cl.Sub(R10, R10, R1)
	cl.Mul(R10, R10, R4)
	cl.Add(R1, R1, R10)
	cl.MovI(R11, -32768)
	cl.Slt(R4, R1, R11)
	cl.Sub(R10, R11, R1)
	cl.Mul(R10, R10, R4)
	cl.Add(R1, R1, R10)
	cl.MovI(R10, idxTab)
	cl.ShlI(R4, R3, 3)
	cl.Add(R10, R10, R4)
	cl.Ld(R4, R10, 0)
	cl.Add(R2, R2, R4)
	cl.Slt(R4, R2, R12)
	cl.MovI(R10, 1)
	cl.Sub(R10, R10, R4)
	cl.Mul(R2, R2, R10)
	cl.MovI(R11, 88)
	cl.Slt(R4, R11, R2)
	cl.Sub(R10, R11, R2)
	cl.Mul(R10, R10, R4)
	cl.Add(R2, R2, R10)
	cl.Jmp(st)
	// out[i] = valp
	st.MovI(R10, out)
	st.ShlI(R4, R0, 3)
	st.Add(R10, R10, R4)
	st.St(R10, 0, R1)
	st.Add(R14, R14, R1)
	st.ShlI(R4, R14, 3)
	st.Xor(R14, R14, R4)
	lp.Close(st, 1)

	k.finishFold(newLib(k), f, lp.Exit, out, n*8, R14)
	return k.p
}

// buildG721 builds g721enc/g721dec: CCITT G.721 ADPCM. The miniature keeps
// the codec's signature structure — an adaptive predictor of two poles and
// six zeroes updated per sample (a short inner loop over the delay line,
// i.e. many loads and a handful of stores per sample) plus logarithmic
// quantization built from shifts and compares.
func buildG721(name string, seed int64, decode bool) func(scale int) *ir.Program {
	return func(scale int) *ir.Program {
		k := newKernel(name, seed)
		n := 900 * normScale(scale)
		in := k.words(int(n), func(int) int64 { return k.rng.Int63n(8192) - 4096 })
		delay := k.p.AllocWords(make([]int64, 8)) // b[0..5] delay line + 2 poles
		coef := k.p.AllocWords([]int64{0, 0, 0, 0, 0, 0, 0, 0})
		out := k.p.Alloc(n * 8)

		f := k.p.NewFunc("main")
		en := f.Entry()
		en.MovI(R0, 0)  // sample ctr
		en.MovI(R12, 0) // zero
		en.MovI(R14, 0) // checksum
		en.MovI(R13, n)

		lp := NewLoop(f, "g721", en, R0, R13)
		b := lp.Body
		// Load input sample.
		b.MovI(R10, in)
		b.ShlI(R4, R0, 3)
		b.Add(R10, R10, R4)
		b.Ld(R3, R10, 0)
		// Predictor: se = sum(coef[j] * delay[j]) >> 6 over 8 taps.
		b.MovI(R1, 0) // j
		b.MovI(R2, 0) // se
		b.MovI(R11, 8)
		inner := NewLoop(f, "pred", b, R1, R11)
		ib := inner.Body
		ib.MovI(R10, coef)
		ib.ShlI(R4, R1, 3)
		ib.Add(R10, R10, R4)
		ib.Ld(R5, R10, 0)
		ib.MovI(R10, delay)
		ib.Add(R10, R10, R4)
		ib.Ld(R6, R10, 0)
		ib.Mul(R5, R5, R6)
		ib.Add(R2, R2, R5)
		inner.Close(ib, 1)
		c := inner.Exit
		c.SarI(R2, R2, 6)
		// d = sample - se; logarithmic quantization via shift loop
		// (count leading magnitude): dq = quantize(d).
		c.Sub(R5, R3, R2)
		neg := f.NewBlock("g721.neg")
		qs := f.NewBlock("g721.qs")
		c.Blt(R5, R12, neg, qs)
		neg.Sub(R5, R12, R5)
		neg.Jmp(qs)
		// exponent search: 7 compares via unrolled shifts
		qs.MovI(R6, 0) // exp
		qs.Mov(R7, R5)
		for i := 0; i < 5; i++ {
			nxt := f.NewBlock("g721.e")
			step := f.NewBlock("g721.es")
			qs.MovI(R10, 16)
			qs.Blt(R7, R10, nxt, step)
			step.SarI(R7, R7, 1)
			step.AddI(R6, R6, 1)
			step.Jmp(nxt)
			qs = nxt
		}
		// Reconstruct dq = (16+ (R7&15)) << exp >> 4, signed by d<0.
		qs.AndI(R7, R7, 15)
		qs.AddI(R7, R7, 16)
		qs.Shl(R7, R7, R6)
		qs.SarI(R7, R7, 4)
		qs.Slt(R4, R3, R2)
		qs.MovI(R10, 1)
		qs.ShlI(R4, R4, 1)
		qs.Sub(R10, R10, R4) // +1 or -1
		qs.Mul(R7, R7, R10)  // signed dq
		// sr = se + dq; shift delay line (6 stores), adapt coefs (sign-sign LMS on 2 taps).
		upd := f.NewBlock("g721.upd")
		qs.Jmp(upd)
		upd.Add(R8, R2, R7) // sr
		// delay line shift: delay[j] = delay[j-1] for j=7..1, delay[0]=dq
		upd.MovI(R1, 7)
		sh := f.NewBlock("g721.shift")
		shx := f.NewBlock("g721.shiftx")
		upd.Jmp(sh)
		shBody := f.NewBlock("g721.shb")
		sh.Beq(R1, R12, shx, shBody)
		shBody.MovI(R10, delay)
		shBody.ShlI(R4, R1, 3)
		shBody.Add(R10, R10, R4)
		shBody.Ld(R5, R10, -8)
		shBody.St(R10, 0, R5)
		shBody.AddI(R1, R1, -1)
		shBody.Jmp(sh)
		shx.MovI(R10, delay)
		shx.St(R10, 0, R7)
		// LMS: coef[0] += sign(dq)*sign(delay[1]) (branchless-ish)
		shx.Ld(R5, R10, 8)
		shx.Slt(R4, R5, R12)
		shx.ShlI(R4, R4, 1)
		shx.MovI(R11, 1)
		shx.Sub(R11, R11, R4)
		shx.Slt(R4, R7, R12)
		shx.ShlI(R4, R4, 1)
		shx.MovI(R9, 1)
		shx.Sub(R9, R9, R4)
		shx.Mul(R9, R9, R11)
		shx.MovI(R10, coef)
		shx.Ld(R5, R10, 0)
		shx.Add(R5, R5, R9)
		shx.St(R10, 0, R5)
		// Output: encoder emits exp|quant word, decoder emits sr.
		outv := R8
		if !decode {
			outv = R7
		}
		shx.MovI(R10, out)
		shx.ShlI(R4, R0, 3)
		shx.Add(R10, R10, R4)
		shx.St(R10, 0, outv)
		shx.Add(R14, R14, outv)
		shx.ShlI(R4, R14, 5)
		shx.Xor(R14, R14, R4)
		lp.Close(shx, 1)

		k.finishFold(newLib(k), f, lp.Exit, out, n*8, R14)
		return k.p
	}
}
