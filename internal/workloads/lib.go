package workloads

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// This file is the miniature runtime library the kernels link against,
// standing in for the MUSL routines the paper compiles into its binaries
// (Section 6: "we instruct the linker to link evaluated programs against
// the MUSL C library which is also compiled by SweepCache's compiler").
// Calls to these routines exercise the interprocedural machinery the
// kernels' inner loops never touch: callsite region boundaries, the
// callee-entry lr checkpoint, and interprocedural liveness.
//
// Calling convention (all routines):
//
//	R0, R1, R2   arguments (registers above R7 are caller-owned scratch
//	             the callees never touch, except the documented clobbers)
//	R0           result
//	clobbers     R0..R7 and lr
//
// Kernels call these from their *outer* loops — never the hot inner loops,
// mirroring real programs where the hot paths are inlined but setup and
// per-frame bookkeeping go through the library.

// lib lazily instantiates the library functions a kernel actually uses.
type lib struct {
	k *kernel

	memset  *ir.Function
	memcpy  *ir.Function
	fold    *ir.Function
	clampFn *ir.Function
}

func newLib(k *kernel) *lib { return &lib{k: k} }

// Memset returns lib_memset(dst=R0, val=R1, words=R2): fills R2 words.
func (l *lib) Memset() *ir.Function {
	if l.memset != nil {
		return l.memset
	}
	f := l.k.p.NewFunc("lib_memset")
	en := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	en.MovI(R3, 0)
	en.Jmp(head)
	head.Bge(R3, R2, exit, body)
	body.ShlI(R4, R3, 3)
	body.Add(R4, R4, R0)
	body.St(R4, 0, R1)
	body.AddI(R3, R3, 1)
	body.Jmp(head)
	exit.Ret()
	l.memset = f
	return f
}

// Memcpy returns lib_memcpy(dst=R0, src=R1, words=R2).
func (l *lib) Memcpy() *ir.Function {
	if l.memcpy != nil {
		return l.memcpy
	}
	f := l.k.p.NewFunc("lib_memcpy")
	en := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	en.MovI(R3, 0)
	en.Jmp(head)
	head.Bge(R3, R2, exit, body)
	body.ShlI(R4, R3, 3)
	body.Add(R5, R4, R1)
	body.Ld(R6, R5, 0)
	body.Add(R5, R4, R0)
	body.St(R5, 0, R6)
	body.AddI(R3, R3, 1)
	body.Jmp(head)
	exit.Ret()
	l.memcpy = f
	return f
}

// Fold returns lib_fold(base=R0, words=R1) -> R0: a xor-rotate digest of
// R1 words, the library routine kernels use for their final checksums.
func (l *lib) Fold() *ir.Function {
	if l.fold != nil {
		return l.fold
	}
	f := l.k.p.NewFunc("lib_fold")
	en := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	en.MovI(R3, 0)
	en.MovI(R4, 0) // acc
	en.Jmp(head)
	head.Bge(R3, R1, exit, body)
	body.ShlI(R5, R3, 3)
	body.Add(R5, R5, R0)
	body.Ld(R6, R5, 0)
	body.Add(R4, R4, R6)
	body.ShlI(R7, R4, 13)
	body.Xor(R4, R4, R7)
	body.ShrI(R7, R4, 7)
	body.Xor(R4, R4, R7)
	body.AddI(R3, R3, 1)
	body.Jmp(head)
	exit.Mov(R0, R4)
	exit.Ret()
	l.fold = f
	return f
}

// Clamp returns lib_clamp(x=R0, lo=R1, hi=R2) -> R0.
func (l *lib) Clamp() *ir.Function {
	if l.clampFn != nil {
		return l.clampFn
	}
	f := l.k.p.NewFunc("lib_clamp")
	en := f.Entry()
	lo := f.NewBlock("lo")
	hiChk := f.NewBlock("hichk")
	hi := f.NewBlock("hi")
	out := f.NewBlock("out")
	en.Blt(R0, R1, lo, hiChk)
	lo.Mov(R0, R1)
	lo.Jmp(out)
	hiChk.Blt(R2, R0, hi, out)
	hi.Mov(R0, R2)
	hi.Jmp(out)
	out.Ret()
	l.clampFn = f
	return f
}

// callMemset emits a call dst.memset(base, val, words) at the end of cur,
// returning the continuation block.
func callMemset(l *lib, f *ir.Function, cur *ir.Block, label string, base, val, words int64) *ir.Block {
	cur.MovI(R0, base)
	cur.MovI(R1, val)
	cur.MovI(R2, words)
	cont := f.NewBlock(label)
	cur.Call(l.Memset(), cont)
	return cont
}

// finishFold is the shared library-using epilogue: fold up to 256 words of
// the kernel's output array through lib_fold, xor in the kernel's own
// accumulator, store the checksum, halt. Every kernel ends through here,
// so every workload exercises a call boundary, the callee-entry lr
// checkpoint, and interprocedural liveness.
func (k *kernel) finishFold(l *lib, f *ir.Function, cur *ir.Block, base, bytes int64, acc isa.Reg) {
	words := bytes / 8
	if words > 256 {
		words = 256
	}
	if words < 1 {
		words = 1
	}
	cur.MovI(R0, base)
	cur.MovI(R1, words)
	// Preserve the kernel's accumulator across the call in a register
	// the library never touches.
	cur.Mov(R9, acc)
	cont := f.NewBlock("epilogue")
	cur.Call(l.Fold(), cont)
	cont.Xor(R0, R0, R9)
	cont.MovI(R10, k.check)
	cont.St(R10, 0, R0)
	cont.Halt()
}
