// Package workloads provides the 26 benchmark kernels of the evaluation
// (Section 6): miniature, functionally real re-implementations of the
// MediaBench and MiBench programs the paper runs, hand-written in the IR
// builder. Each kernel reproduces its original's characteristic loop
// structure, memory footprint, store density, and branchiness; inputs are
// seeded pseudo-random data generated at build time, and every kernel
// finishes by folding its output into a checksum word so differential
// tests can compare runs across schemes and outage patterns.
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Register aliases for kernel code readability.
const (
	R0 isa.Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
)

// Workload is one benchmark: a name, its suite, and a deterministic
// program builder. Scale multiplies the outer iteration count; 0 and 1
// both mean the evaluation's default size.
type Workload struct {
	Name  string
	Suite string // "mediabench" or "mibench"
	Build func(scale int) *ir.Program
	// CheckAddr is filled by the builder machinery: the NVM address of
	// the kernel's final checksum word.
	checkAddr int64
}

// CheckAddr returns the NVM address of the checksum the kernel writes last.
// Valid only for programs built by this package (it is the first word of
// the data segment by convention).
func CheckAddr() int64 { return ir.DataBase }

func normScale(scale int) int64 {
	if scale < 1 {
		return 1
	}
	return int64(scale)
}

// kernel is the common scaffolding all builders share: a program with the
// checksum word allocated first, plus a seeded rng for input data.
type kernel struct {
	p   *ir.Program
	rng *rand.Rand
	// check is the checksum address == CheckAddr().
	check int64
}

func newKernel(name string, seed int64) *kernel {
	p := ir.NewProgram(name)
	k := &kernel{p: p, rng: rand.New(rand.NewSource(seed))}
	k.check = p.Alloc(8)
	if k.check != CheckAddr() {
		panic("workloads: checksum must be the first allocation")
	}
	return k
}

// words allocates and initializes n words with values from gen.
func (k *kernel) words(n int, gen func(i int) int64) int64 {
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = gen(i)
	}
	return k.p.AllocWords(vals)
}

// randWords allocates n words of bounded random data.
func (k *kernel) randWords(n int, bound int64) int64 {
	return k.words(n, func(int) int64 { return k.rng.Int63n(bound) })
}

// randBytes allocates n random bytes.
func (k *kernel) randBytes(n int) int64 {
	base := k.p.Alloc(int64(n))
	for i := 0; i < n; i++ {
		k.p.InitByte(base+int64(i), byte(k.rng.Intn(256)))
	}
	return base
}

// Loop is a builder helper for the canonical while-loop shape
// (head tests, body runs, latch jumps back) that the compiler's loop
// passes recognize.
type Loop struct {
	Head, Body, Exit *ir.Block
	ctr              isa.Reg
}

// NewLoop wires prev -> head; head: if ctr >= limit goto exit else body.
// The caller fills Body (and may nest further loops), then calls Close on
// whatever block ends the iteration.
func NewLoop(f *ir.Function, tag string, prev *ir.Block, ctr, limit isa.Reg) *Loop {
	head := f.NewBlock(tag + ".head")
	body := f.NewBlock(tag + ".body")
	exit := f.NewBlock(tag + ".exit")
	prev.Jmp(head)
	head.Bge(ctr, limit, exit, body)
	return &Loop{Head: head, Body: body, Exit: exit, ctr: ctr}
}

// Close increments the counter on `on` and jumps back to the loop head.
func (l *Loop) Close(on *ir.Block, step int64) {
	on.AddI(l.ctr, l.ctr, step)
	on.Jmp(l.Head)
}

// finish appends the standard epilogue to `last`: fold `acc` into the
// checksum word and halt. Every kernel ends through here so differential
// tests have a common observable.
func (k *kernel) finish(last *ir.Block, acc isa.Reg) {
	tmp := R14
	if acc == tmp {
		tmp = R13
	}
	last.MovI(tmp, k.check)
	last.St(tmp, 0, acc)
	last.Halt()
}

var registry []Workload

func register(name, suite string, build func(scale int) *ir.Program) {
	registry = append(registry, Workload{Name: name, Suite: suite, Build: build})
}

// All returns every workload in the paper's presentation order
// (MediaBench first, then MiBench — Figure 5's x-axis).
func All() []Workload {
	out := make([]Workload, len(registry))
	copy(out, registry)
	return out
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	for _, w := range registry {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("workloads: unknown workload %q", name)
}

// Names lists all workload names in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, w := range registry {
		out[i] = w.Name
	}
	return out
}
