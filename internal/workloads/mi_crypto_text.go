package workloads

import "repro/internal/ir"

// buildTypeset is typeset: text layout. Per character: byte load, width
// table lookup, running line width; on overflow, a justification pass
// walks back over the line storing adjusted positions. Extremely branchy
// with bursty stores — the shape of MiBench's typeset (lout).
func buildTypeset(scale int) *ir.Program {
	k := newKernel("typeset", 0x7e57)
	chars := 4000 * normScale(scale)
	text := k.randBytes(int(chars))
	widths := k.words(128, func(i int) int64 { return int64(3 + i%12) })
	linePos := k.p.Alloc(256 * 8)
	out := k.p.Alloc(chars * 8 / 4)

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0) // char index
	en.MovI(R1, 0) // line width
	en.MovI(R2, 0) // chars on line
	en.MovI(R9, 0) // lines emitted
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, chars)

	ch := NewLoop(f, "ch", en, R0, R13)
	b := ch.Body
	b.MovI(R10, text)
	b.Add(R10, R10, R0)
	b.LdB(R3, R10, 0)
	b.AndI(R3, R3, 127)
	b.MovI(R10, widths)
	b.ShlI(R4, R3, 3)
	b.Add(R10, R10, R4)
	b.Ld(R5, R10, 0) // width
	b.Add(R1, R1, R5)
	// record position of this char on the line
	b.MovI(R10, linePos)
	b.AndI(R4, R2, 255)
	b.ShlI(R4, R4, 3)
	b.Add(R10, R10, R4)
	b.St(R10, 0, R1)
	b.AddI(R2, R2, 1)
	// line overflow?
	wrap := f.NewBlock("ch.wrap")
	cont := f.NewBlock("ch.cont")
	b.MovI(R8, 420)
	b.Blt(R1, R8, cont, wrap)
	// justification: slack distributed over the line's positions
	wrap.Sub(R6, R1, R8) // slack
	wrap.MovI(R3, 0)
	jl := NewLoop(f, "just", wrap, R3, R2)
	jb := jl.Body
	jb.MovI(R10, linePos)
	jb.AndI(R4, R3, 255)
	jb.ShlI(R4, R4, 3)
	jb.Add(R10, R10, R4)
	jb.Ld(R5, R10, 0)
	jb.Mul(R7, R6, R3)
	jb.Div(R7, R7, R2)
	jb.Add(R5, R5, R7)
	jb.St(R10, 0, R5)
	jb.Add(R14, R14, R5)
	jl.Close(jb, 1)
	je := jl.Exit
	// emit line summary word
	je.MovI(R10, out)
	je.AndI(R4, R9, 511)
	je.ShlI(R4, R4, 3)
	je.Add(R10, R10, R4)
	je.ShlI(R5, R2, 20)
	je.Or(R5, R5, R1)
	je.St(R10, 0, R5)
	je.ShlI(R7, R14, 5)
	je.Xor(R14, R14, R7)
	je.AddI(R9, R9, 1)
	je.MovI(R1, 0)
	je.MovI(R2, 0)
	je.Jmp(cont)
	ch.Close(cont, 1)

	k.finishFold(newLib(k), f, ch.Exit, out, chars*2, R14)
	return k.p
}

// buildBlowfish builds blowfishenc/blowfishdec: a Feistel cipher with
// four 256-entry S-boxes — per 8-byte block, 16 rounds of S-box loads,
// adds and xors, then two ciphertext stores. Table-lookup dominated, like
// the original.
func buildBlowfish(name string, seed int64, decode bool) func(scale int) *ir.Program {
	return func(scale int) *ir.Program {
		k := newKernel(name, seed)
		blocks := 380 * normScale(scale)
		sbox := k.randWords(4*128, 1<<32)
		parr := k.randWords(18, 1<<32)
		msg := k.randWords(int(blocks)*2, 1<<32)
		out := k.p.Alloc(blocks * 16)

		f := k.p.NewFunc("main")
		en := f.Entry()
		en.MovI(R0, 0)
		en.MovI(R12, 0)
		en.MovI(R14, 0)
		en.MovI(R13, blocks)

		blk := NewLoop(f, "blk", en, R0, R13)
		b := blk.Body
		b.MovI(R10, msg)
		b.ShlI(R4, R0, 4)
		b.Add(R10, R10, R4)
		b.Ld(R1, R10, 0) // L
		b.Ld(R2, R10, 8) // R
		b.MovI(R3, 0)    // round
		b.MovI(R11, 16)
		rnd := NewLoop(f, "round", b, R3, R11)
		rb := rnd.Body
		// L ^= P[round] (decode walks P backwards)
		rb.MovI(R10, parr)
		if decode {
			rb.MovI(R5, 17)
			rb.Sub(R5, R5, R3)
			rb.ShlI(R5, R5, 3)
		} else {
			rb.ShlI(R5, R3, 3)
		}
		rb.Add(R10, R10, R5)
		rb.Ld(R5, R10, 0)
		rb.Xor(R1, R1, R5)
		// F(L): four S-box lookups combined
		rb.ShrI(R5, R1, 24)
		rb.AndI(R5, R5, 127)
		rb.MovI(R10, sbox)
		rb.ShlI(R5, R5, 3)
		rb.Add(R10, R10, R5)
		rb.Ld(R6, R10, 0)
		rb.ShrI(R5, R1, 16)
		rb.AndI(R5, R5, 127)
		rb.MovI(R10, sbox+128*8)
		rb.ShlI(R5, R5, 3)
		rb.Add(R10, R10, R5)
		rb.Ld(R7, R10, 0)
		rb.Add(R6, R6, R7)
		rb.ShrI(R5, R1, 8)
		rb.AndI(R5, R5, 127)
		rb.MovI(R10, sbox+256*8)
		rb.ShlI(R5, R5, 3)
		rb.Add(R10, R10, R5)
		rb.Ld(R7, R10, 0)
		rb.Xor(R6, R6, R7)
		rb.AndI(R5, R1, 127)
		rb.MovI(R10, sbox+384*8)
		rb.ShlI(R5, R5, 3)
		rb.Add(R10, R10, R5)
		rb.Ld(R7, R10, 0)
		rb.Add(R6, R6, R7)
		rb.MovI(R10, 0xFFFFFFFF)
		rb.And(R6, R6, R10)
		// R ^= F(L); swap
		rb.Xor(R2, R2, R6)
		rb.Mov(R5, R1)
		rb.Mov(R1, R2)
		rb.Mov(R2, R5)
		rnd.Close(rb, 1)
		re := rnd.Exit
		re.MovI(R10, out)
		re.ShlI(R4, R0, 4)
		re.Add(R10, R10, R4)
		re.St(R10, 0, R1)
		re.St(R10, 8, R2)
		re.Add(R14, R14, R1)
		re.Xor(R14, R14, R2)
		re.ShlI(R7, R14, 7)
		re.Xor(R14, R14, R7)
		blk.Close(re, 1)

		k.finishFold(newLib(k), f, blk.Exit, out, blocks*16, R14)
		return k.p
	}
}

// buildPatricia is patricia: a binary trie over 32-bit keys stored as a
// node array (bit index, left, right, key). Lookups chase pointers
// (dependent loads, branches); inserts allocate nodes with a handful of
// stores. The most irregular memory access pattern in the suite.
func buildPatricia(scale int) *ir.Program {
	k := newKernel("patricia", 0x9a72)
	ops := 1200 * normScale(scale)
	keys := k.randWords(int(ops), 1<<32)
	const nodeBytes = 32 // bit, left, right, key
	nodes := k.p.Alloc(4096 * nodeBytes)
	nextFree := k.p.AllocWords([]int64{1}) // node 0 = root, preallocated
	hits := k.p.Alloc(8)

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0)
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, ops)

	op := NewLoop(f, "op", en, R0, R13)
	b := op.Body
	b.MovI(R10, keys)
	b.ShlI(R4, R0, 3)
	b.Add(R10, R10, R4)
	b.Ld(R1, R10, 0) // key
	// walk: node = root; up to 32 steps following key bits
	b.MovI(R2, 0) // node index
	b.MovI(R3, 0) // depth
	wh := f.NewBlock("walk.head")
	wb := f.NewBlock("walk.body")
	wx := f.NewBlock("walk.exit")
	b.Jmp(wh)
	wh.MovI(R10, 24)
	wh.Bge(R3, R10, wx, wb)
	// load node.key; if match -> exit; else follow bit
	wb.MulI(R5, R2, nodeBytes)
	wb.MovI(R10, nodes)
	wb.Add(R5, R5, R10)
	wb.Ld(R6, R5, 24) // node.key
	found := f.NewBlock("walk.found")
	follow := f.NewBlock("walk.follow")
	wb.Beq(R6, R1, found, follow)
	// child = (key >> depth) & 1 ? right : left
	follow.Shr(R7, R1, R3)
	follow.AndI(R7, R7, 1)
	follow.ShlI(R7, R7, 3)
	follow.Add(R7, R7, R5)
	follow.Ld(R8, R7, 8) // left at +8, right at +16
	miss := f.NewBlock("walk.miss")
	desc := f.NewBlock("walk.desc")
	follow.Beq(R8, R12, miss, desc)
	desc.Mov(R2, R8)
	desc.AddI(R3, R3, 1)
	desc.Jmp(wh)
	// miss: insert a node here (4 stores) then exit
	miss.MovI(R10, nextFree)
	miss.Ld(R9, R10, 0)
	full := f.NewBlock("walk.full")
	ins := f.NewBlock("walk.ins")
	miss.MovI(R6, 4095)
	miss.Bge(R9, R6, full, ins)
	ins.AddI(R6, R9, 1)
	ins.St(R10, 0, R6) // nextFree++
	ins.St(R7, 8, R9)  // parent child pointer
	ins.MulI(R5, R9, nodeBytes)
	ins.MovI(R10, nodes)
	ins.Add(R5, R5, R10)
	ins.St(R5, 0, R3)  // bit
	ins.St(R5, 8, R12) // left
	ins.St(R5, 16, R12)
	ins.St(R5, 24, R1) // key
	ins.Jmp(wx)
	full.Jmp(wx)
	// found: count a hit (load-modify-store)
	found.MovI(R10, hits)
	found.Ld(R6, R10, 0)
	found.AddI(R6, R6, 1)
	found.St(R10, 0, R6)
	found.Jmp(wx)
	wx.Add(R14, R14, R2)
	wx.ShlI(R7, R14, 9)
	wx.Xor(R14, R14, R7)
	op.Close(wx, 1)

	k.finishFold(newLib(k), f, op.Exit, nodes, 4096*nodeBytes, R14)
	return k.p
}

// buildRijndael builds rijndaelenc/rijndaeldec: AES-style table rounds —
// per 16-byte block, 10 rounds of four T-table lookups with byte
// extraction and xors, then four output stores. Deliberately small inputs
// (the paper notes rijndael is where SweepCache's extra regions hurt
// most, precisely because the program is short).
func buildRijndael(name string, seed int64, decode bool) func(scale int) *ir.Program {
	return func(scale int) *ir.Program {
		k := newKernel(name, seed)
		blocks := 280 * normScale(scale)
		ttab := k.randWords(256, 1<<32)
		rkey := k.randWords(44, 1<<32)
		msg := k.randWords(int(blocks)*2, 1<<32)
		out := k.p.Alloc(blocks * 16)

		f := k.p.NewFunc("main")
		en := f.Entry()
		en.MovI(R0, 0)
		en.MovI(R12, 0)
		en.MovI(R14, 0)
		en.MovI(R13, blocks)

		blk := NewLoop(f, "blk", en, R0, R13)
		b := blk.Body
		b.MovI(R10, msg)
		b.ShlI(R4, R0, 4)
		b.Add(R10, R10, R4)
		b.Ld(R1, R10, 0)
		b.Ld(R2, R10, 8)
		b.MovI(R3, 0)
		b.MovI(R11, 10)
		rnd := NewLoop(f, "round", b, R3, R11)
		rb := rnd.Body
		// round key
		rb.MovI(R10, rkey)
		rb.ShlI(R5, R3, 3)
		rb.Add(R10, R10, R5)
		rb.Ld(R5, R10, 0)
		rb.Xor(R1, R1, R5)
		// 4 T-table lookups from bytes of R1 (decode reverses byte order)
		rb.MovI(R6, 0)
		for i := 0; i < 4; i++ {
			sh := int64(i * 8)
			if decode {
				sh = int64((3 - i) * 8)
			}
			rb.ShrI(R5, R1, sh)
			rb.AndI(R5, R5, 255)
			rb.MovI(R10, ttab)
			rb.ShlI(R5, R5, 3)
			rb.Add(R10, R10, R5)
			rb.Ld(R7, R10, 0)
			rb.ShlI(R6, R6, 8)
			rb.Xor(R6, R6, R7)
		}
		rb.Xor(R2, R2, R6)
		rb.Mov(R5, R1)
		rb.Mov(R1, R2)
		rb.Mov(R2, R5)
		rnd.Close(rb, 1)
		re := rnd.Exit
		re.MovI(R10, out)
		re.ShlI(R4, R0, 4)
		re.Add(R10, R10, R4)
		re.St(R10, 0, R1)
		re.St(R10, 8, R2)
		re.Add(R14, R14, R1)
		re.Xor(R14, R14, R2)
		re.ShlI(R7, R14, 15)
		re.Xor(R14, R14, R7)
		blk.Close(re, 1)

		k.finishFold(newLib(k), f, blk.Exit, out, blocks*16, R14)
		return k.p
	}
}
