package workloads

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// buildSHA is sha: SHA-1-style block hashing. Per 64-byte block: a message
// schedule expanding 16 words to 80 via xor/rotate (64 stores into the
// schedule array), then 80 compression rounds of adds/rotates/logicals,
// then a 5-word digest update — compute-dense with bursts of stores.
func buildSHA(scale int) *ir.Program {
	k := newKernel("sha", 0x5a1)
	blocksN := 24 * normScale(scale)
	msg := k.randWords(int(blocksN)*16, 1<<32)
	w := k.p.Alloc(80 * 8)
	digest := k.p.AllocWords([]int64{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0})

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0)
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, blocksN)

	blk := NewLoop(f, "blk", en, R0, R13)
	bb := blk.Body
	// Copy 16 message words into W.
	bb.MovI(R1, 0)
	bb.MovI(R11, 16)
	cp := NewLoop(f, "cp", bb, R1, R11)
	cb := cp.Body
	cb.MulI(R2, R0, 16*8)
	cb.ShlI(R4, R1, 3)
	cb.Add(R2, R2, R4)
	cb.MovI(R10, msg)
	cb.Add(R2, R2, R10)
	cb.Ld(R3, R2, 0)
	cb.MovI(R10, w)
	cb.Add(R10, R10, R4)
	cb.St(R10, 0, R3)
	cp.Close(cb, 1)
	// Expand W[16..80): W[t] = rotl1(W[t-3]^W[t-8]^W[t-14]^W[t-16]).
	ce := cp.Exit
	ce.MovI(R1, 16)
	ce.MovI(R11, 80)
	ex := NewLoop(f, "ex", ce, R1, R11)
	eb := ex.Body
	eb.MovI(R10, w)
	eb.ShlI(R4, R1, 3)
	eb.Add(R10, R10, R4)
	eb.Ld(R3, R10, -3*8)
	eb.Ld(R5, R10, -8*8)
	eb.Xor(R3, R3, R5)
	eb.Ld(R5, R10, -14*8)
	eb.Xor(R3, R3, R5)
	eb.Ld(R5, R10, -16*8)
	eb.Xor(R3, R3, R5)
	eb.ShlI(R5, R3, 1)
	eb.ShrI(R3, R3, 31)
	eb.Or(R3, R3, R5)
	eb.MovI(R5, 0xFFFFFFFF)
	eb.And(R3, R3, R5)
	eb.St(R10, 0, R3)
	ex.Close(eb, 1)
	// 80 rounds: a,b,c,d,e in R2..R6.
	xe := ex.Exit
	xe.MovI(R10, digest)
	xe.Ld(R2, R10, 0)
	xe.Ld(R3, R10, 8)
	xe.Ld(R4, R10, 16)
	xe.Ld(R5, R10, 24)
	xe.Ld(R6, R10, 32)
	xe.MovI(R1, 0)
	xe.MovI(R11, 80)
	rd := NewLoop(f, "rd", xe, R1, R11)
	rb := rd.Body
	// f = (b & c) | (^b & d)
	rb.And(R7, R3, R4)
	rb.MovI(R10, -1)
	rb.Xor(R8, R3, R10)
	rb.And(R8, R8, R5)
	rb.Or(R7, R7, R8)
	// tmp = rotl5(a) + f + e + K + W[t]
	rb.ShlI(R8, R2, 5)
	rb.ShrI(R9, R2, 27)
	rb.Or(R8, R8, R9)
	rb.Add(R7, R7, R8)
	rb.Add(R7, R7, R6)
	rb.MovI(R10, 0x5A827999)
	rb.Add(R7, R7, R10)
	rb.MovI(R10, w)
	rb.ShlI(R9, R1, 3)
	rb.Add(R10, R10, R9)
	rb.Ld(R9, R10, 0)
	rb.Add(R7, R7, R9)
	// e=d d=c c=rotl30(b) b=a a=tmp, masked to 32 bits.
	rb.Mov(R6, R5)
	rb.Mov(R5, R4)
	rb.ShlI(R4, R3, 30)
	rb.ShrI(R9, R3, 2)
	rb.Or(R4, R4, R9)
	rb.Mov(R3, R2)
	rb.MovI(R10, 0xFFFFFFFF)
	rb.And(R2, R7, R10)
	rb.And(R4, R4, R10)
	rd.Close(rb, 1)
	// Digest update: 5 load-add-store triples.
	re := rd.Exit
	re.MovI(R10, digest)
	for i, rg := range []isa.Reg{R2, R3, R4, R5, R6} {
		off := int64(i * 8)
		re.Ld(R9, R10, off)
		re.Add(R9, R9, rg)
		re.MovI(R7, 0xFFFFFFFF)
		re.And(R9, R9, R7)
		re.St(R10, off, R9)
		re.Add(R14, R14, R9)
	}
	re.ShlI(R7, R14, 21)
	re.Xor(R14, R14, R7)
	blk.Close(re, 1)

	k.finishFold(newLib(k), f, blk.Exit, digest, 40, R14)
	return k.p
}

// susanMode selects which of the three susan kernels to build.
type susanMode int

const (
	susanSmooth susanMode = iota
	susanEdges
	susanCorners
)

// buildSusan builds susans/susane/susanc: SUSAN image processing. Per
// pixel, the 3x3 neighbourhood is loaded and compared against the centre
// through a brightness threshold; smoothing stores a weighted mean per
// pixel, edges store a response only where the USAN area is small, and
// corners add a second, stricter test (fewer stores, more branches).
func buildSusan(name string, seed int64, mode susanMode) func(scale int) *ir.Program {
	return func(scale int) *ir.Program {
		k := newKernel(name, seed)
		side := int64(48)
		rows := side * normScale(scale)
		img := k.randBytes(int(rows*side) + 256)
		out := k.p.Alloc(rows * side)

		f := k.p.NewFunc("main")
		en := f.Entry()
		en.MovI(R0, 1) // row (skip border)
		en.MovI(R12, 0)
		en.MovI(R14, 0)
		en.MovI(R13, rows-1)

		ry := NewLoop(f, "row", en, R0, R13)
		rb := ry.Body
		rb.MovI(R1, 1) // col
		rb.MovI(R11, side-1)
		cx := NewLoop(f, "col", rb, R1, R11)
		cb := cx.Body
		// centre = img[r*side+c]
		cb.MulI(R2, R0, side)
		cb.Add(R2, R2, R1)
		cb.MovI(R10, img)
		cb.Add(R2, R2, R10)
		cb.LdB(R3, R2, 0) // centre
		cb.MovI(R4, 0)    // usan count
		cb.MovI(R5, 0)    // weighted sum
		// Unrolled 3x3 neighbourhood (8 neighbours).
		cur := cb
		for ni, off := range []int64{-side - 1, -side, -side + 1, -1, 1, side - 1, side, side + 1} {
			cur.LdB(R6, R2, off)
			cur.Sub(R7, R6, R3)
			abs := f.NewBlock("n.abs")
			next := f.NewBlock("n.next")
			cur.Blt(R7, R12, abs, next)
			abs.Sub(R7, R12, R7)
			abs.Jmp(next)
			inT := f.NewBlock("n.in")
			cont := f.NewBlock("n.cont")
			next.MovI(R8, 27) // brightness threshold
			next.Blt(R7, R8, inT, cont)
			inT.AddI(R4, R4, 1)
			inT.Add(R5, R5, R6)
			inT.Jmp(cont)
			cur = cont
			_ = ni
		}
		// Mode-specific result.
		st := f.NewBlock("px.st")
		skip := f.NewBlock("px.skip")
		switch mode {
		case susanSmooth:
			// value = (sum + centre) / (count + 1); always stored.
			cur.Add(R5, R5, R3)
			cur.AddI(R4, R4, 1)
			cur.Div(R5, R5, R4)
			cur.Jmp(st)
			skip.Jmp(st) // unreachable, keeps shape uniform
		case susanEdges:
			// Edge response where usan < 6: value = 8 - count.
			cur.MovI(R8, 6)
			cur.Bge(R4, R8, skip, st)
			st.MovI(R8, 8)
			st.Sub(R5, R8, R4)
		case susanCorners:
			// Corner: usan < 4 and the horizontal pair differs too.
			chk := f.NewBlock("px.chk")
			cur.MovI(R8, 4)
			cur.Bge(R4, R8, skip, chk)
			chk.LdB(R6, R2, -1)
			chk.LdB(R7, R2, 1)
			chk.Sub(R6, R6, R7)
			chk.Mul(R6, R6, R6)
			chk.MovI(R8, 100)
			chk.Blt(R6, R8, skip, st)
			st.MovI(R5, 255)
		}
		done := f.NewBlock("px.done")
		// st: out[r*side+c] = value (byte).
		st.MulI(R7, R0, side)
		st.Add(R7, R7, R1)
		st.MovI(R10, out)
		st.Add(R7, R7, R10)
		st.StB(R7, 0, R5)
		st.Add(R14, R14, R5)
		st.ShlI(R7, R14, 23)
		st.Xor(R14, R14, R7)
		st.Jmp(done)
		if mode != susanSmooth {
			skip.Jmp(done)
		}
		done.MovI(R11, side-1) // restore col limit
		cx.Close(done, 1)
		ry.Close(cx.Exit, 1)

		k.finishFold(newLib(k), f, ry.Exit, out, rows*side, R14)
		return k.p
	}
}
