package workloads

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// buildGSM builds gsmenc/gsmdec: GSM 06.10 full-rate. The miniature keeps
// the codec's dominant kernels: per 40-sample subframe, an LTP-style
// cross-correlation search (nested MAC loop over a lag window — load-heavy,
// store-light) followed by APCM quantization of the residual (per-sample
// shifts and compares with one store).
func buildGSM(name string, seed int64, decode bool) func(scale int) *ir.Program {
	return func(scale int) *ir.Program {
		k := newKernel(name, seed)
		frames := 26 * normScale(scale)
		const sub = 40
		const lags = 12
		in := k.words(int(frames)*sub+128, func(int) int64 { return k.rng.Int63n(4096) - 2048 })
		out := k.p.Alloc(frames * sub * 8)

		f := k.p.NewFunc("main")
		en := f.Entry()
		en.MovI(R0, 0) // frame counter
		en.MovI(R12, 0)
		en.MovI(R14, 0)
		en.MovI(R13, frames)

		fr := NewLoop(f, "frame", en, R0, R13)
		fb := fr.Body
		// base = in + 8*(64 + frame*sub): leave history headroom.
		fb.MulI(R1, R0, sub*8)
		fb.MovI(R10, in+64*8)
		fb.Add(R1, R1, R10) // R1 = frame base

		// LTP search: best lag by max correlation.
		fb.MovI(R2, 0) // lag
		fb.MovI(R8, 0) // best corr
		fb.MovI(R9, 0) // best lag
		fb.MovI(R11, lags)
		lagLp := NewLoop(f, "lag", fb, R2, R11)
		lb := lagLp.Body
		lb.MovI(R3, 0) // j
		lb.MovI(R4, 0) // acc
		lb.MovI(R10, sub)
		mac := NewLoop(f, "mac", lb, R3, R10)
		mb := mac.Body
		mb.ShlI(R5, R3, 3)
		mb.Add(R5, R5, R1)
		mb.Ld(R6, R5, 0) // x[j]
		mb.ShlI(R7, R2, 3)
		mb.Sub(R7, R5, R7)
		mb.Ld(R7, R7, -8) // x[j-lag-1]
		mb.Mul(R6, R6, R7)
		mb.SarI(R6, R6, 6)
		mb.Add(R4, R4, R6)
		mac.Close(mb, 1)
		me := mac.Exit
		better := f.NewBlock("lag.better")
		cont := f.NewBlock("lag.cont")
		me.Blt(R8, R4, better, cont)
		better.Mov(R8, R4)
		better.Mov(R9, R2)
		better.Jmp(cont)
		lagLp.Close(cont, 1)

		// APCM: quantize each residual sample to 6 levels by shifting.
		le := lagLp.Exit
		le.MovI(R3, 0)
		le.MovI(R10, sub)
		ap := NewLoop(f, "apcm", le, R3, R10)
		ab := ap.Body
		ab.ShlI(R5, R3, 3)
		ab.Add(R5, R5, R1)
		ab.Ld(R6, R5, 0)
		// residual = x - (best>>4 scaled by lag parity)
		ab.SarI(R7, R8, 4)
		ab.AndI(R4, R9, 1)
		ab.Mul(R7, R7, R4)
		ab.Sub(R6, R6, R7)
		if decode {
			// Decoder reconstructs: sample = residual<<2 + bias.
			ab.ShlI(R6, R6, 2)
			ab.Add(R6, R6, R9)
		} else {
			// Encoder quantizes: code = residual >> 3 clamped.
			ab.SarI(R6, R6, 3)
		}
		// out[frame*sub + j] = value
		ab.MulI(R7, R0, sub*8)
		ab.ShlI(R4, R3, 3)
		ab.Add(R7, R7, R4)
		ab.MovI(R5, out)
		ab.Add(R7, R7, R5)
		ab.St(R7, 0, R6)
		ab.Add(R14, R14, R6)
		ab.ShlI(R4, R14, 7)
		ab.Xor(R14, R14, R4)
		ap.Close(ab, 1)
		fr.Close(ap.Exit, 1)

		k.finishFold(newLib(k), f, fr.Exit, out, frames*sub*8, R14)
		return k.p
	}
}

// jpegBlock emits the shared 8-point butterfly pass used by both jpeg
// kernels: a row-wise integer DCT-like transform over one 8x8 block held
// at base register rbase (word elements), in place.
func jpegRowPass(f *ir.Function, b *ir.Block, rbase isa.Reg) *ir.Block {
	// for row in 0..8: butterflies on the 8 row elements.
	b.MovI(R1, 0)
	b.MovI(R11, 8)
	rows := NewLoop(f, "rows", b, R1, R11)
	rb := rows.Body
	rb.MulI(R2, R1, 64) // row offset bytes
	rb.Add(R2, R2, rbase)
	// Load pairs, butterfly, store back: (a,b) -> (a+b, (a-b)*c>>3)
	for i := 0; i < 4; i++ {
		lo, hi := int64(i*8), int64((7-i)*8)
		rb.Ld(R3, R2, lo)
		rb.Ld(R4, R2, hi)
		rb.Add(R5, R3, R4)
		rb.Sub(R6, R3, R4)
		rb.MulI(R6, R6, int64(3+i*2))
		rb.SarI(R6, R6, 3)
		rb.St(R2, lo, R5)
		rb.St(R2, hi, R6)
	}
	rows.Close(rb, 1)
	return rows.Exit
}

// buildJPEGEnc is jpegenc: per 8x8 block, load pixels, forward integer
// DCT-like butterflies (row pass), quantization by table division, and
// zigzag-order coefficient stores.
func buildJPEGEnc(scale int) *ir.Program {
	k := newKernel("jpegenc", 0x19e6)
	blocks := 80 * normScale(scale)
	pix := k.randBytes(int(blocks)*64 + 64)
	quant := k.words(64, func(i int) int64 { return int64(8 + (i%8)*3 + i/8) })
	zig := k.words(64, func(i int) int64 { return int64((i*17 + i/8) % 64) })
	work := k.p.Alloc(64 * 8)
	out := k.p.Alloc(blocks * 64 * 8)

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0)
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, blocks)

	lib := newLib(k)
	blk := NewLoop(f, "blk", en, R0, R13)
	bb0 := blk.Body
	// Reset the work block through the runtime library (the per-frame
	// bookkeeping real codecs route through memset), parking the block
	// counter in r8 across the call.
	bb0.Mov(R8, R0)
	bb := callMemset(lib, f, bb0, "blk.clear", work, 0, 64)
	bb.Mov(R0, R8)
	bb.MovI(R12, 0)
	// Load 64 pixels (bytes) into the work block, centered at 0.
	bb.MovI(R1, 0)
	bb.MovI(R11, 64)
	ld := NewLoop(f, "ld", bb, R1, R11)
	lb := ld.Body
	lb.MulI(R2, R0, 64)
	lb.Add(R2, R2, R1)
	lb.MovI(R10, pix)
	lb.Add(R2, R2, R10)
	lb.LdB(R3, R2, 0)
	lb.AddI(R3, R3, -128)
	lb.MovI(R10, work)
	lb.ShlI(R4, R1, 3)
	lb.Add(R10, R10, R4)
	lb.St(R10, 0, R3)
	ld.Close(lb, 1)

	// Row butterflies over the work block.
	pre := ld.Exit
	pre.MovI(R9, work)
	post := jpegRowPass(f, pre, R9)

	// Quantize + zigzag store to output.
	post.MovI(R1, 0)
	post.MovI(R11, 64)
	qz := NewLoop(f, "qz", post, R1, R11)
	qb := qz.Body
	qb.MovI(R10, work)
	qb.ShlI(R4, R1, 3)
	qb.Add(R10, R10, R4)
	qb.Ld(R3, R10, 0)
	qb.MovI(R10, quant)
	qb.Add(R10, R10, R4)
	qb.Ld(R5, R10, 0)
	qb.Div(R3, R3, R5)
	qb.MovI(R10, zig)
	qb.Add(R10, R10, R4)
	qb.Ld(R6, R10, 0) // zigzag position
	qb.MulI(R7, R0, 64*8)
	qb.ShlI(R6, R6, 3)
	qb.Add(R7, R7, R6)
	qb.MovI(R10, out)
	qb.Add(R7, R7, R10)
	qb.St(R7, 0, R3)
	qb.Add(R14, R14, R3)
	qb.ShlI(R4, R14, 9)
	qb.Xor(R14, R14, R4)
	qz.Close(qb, 1)
	blk.Close(qz.Exit, 1)

	k.finishFold(newLib(k), f, blk.Exit, out, blocks*64*8, R14)
	return k.p
}

// buildJPEGDec is jpegdec: dequantization, inverse butterflies, and
// clamped byte stores — the decoder mirror with byte-granular output.
func buildJPEGDec(scale int) *ir.Program {
	k := newKernel("jpegdec", 0x19d6)
	blocks := 80 * normScale(scale)
	coef := k.words(int(blocks)*64, func(int) int64 { return k.rng.Int63n(64) - 32 })
	quant := k.words(64, func(i int) int64 { return int64(8 + (i%8)*3 + i/8) })
	work := k.p.Alloc(64 * 8)
	out := k.p.Alloc(blocks * 64)

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0)
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, blocks)

	blk := NewLoop(f, "blk", en, R0, R13)
	bb := blk.Body
	// Dequantize into the work block.
	bb.MovI(R1, 0)
	bb.MovI(R11, 64)
	dq := NewLoop(f, "dq", bb, R1, R11)
	db := dq.Body
	db.MulI(R2, R0, 64*8)
	db.ShlI(R4, R1, 3)
	db.Add(R2, R2, R4)
	db.MovI(R10, coef)
	db.Add(R2, R2, R10)
	db.Ld(R3, R2, 0)
	db.MovI(R10, quant)
	db.Add(R10, R10, R4)
	db.Ld(R5, R10, 0)
	db.Mul(R3, R3, R5)
	db.MovI(R10, work)
	db.Add(R10, R10, R4)
	db.St(R10, 0, R3)
	dq.Close(db, 1)

	pre := dq.Exit
	pre.MovI(R9, work)
	post := jpegRowPass(f, pre, R9)

	// Clamp to [0,255] and store bytes.
	post.MovI(R1, 0)
	post.MovI(R11, 64)
	st := NewLoop(f, "st", post, R1, R11)
	sb := st.Body
	sb.MovI(R10, work)
	sb.ShlI(R4, R1, 3)
	sb.Add(R10, R10, R4)
	sb.Ld(R3, R10, 0)
	sb.AddI(R3, R3, 128)
	// Branchless clamp: r3 = min(max(r3,0),255)
	sb.Slt(R4, R3, R12)
	sb.MovI(R10, 1)
	sb.Sub(R10, R10, R4)
	sb.Mul(R3, R3, R10)
	sb.MovI(R11, 255)
	sb.Slt(R4, R11, R3)
	sb.Sub(R10, R11, R3)
	sb.Mul(R10, R10, R4)
	sb.Add(R3, R3, R10)
	sb.MovI(R11, 64) // restore loop limit clobbered above
	sb.MulI(R5, R0, 64)
	sb.Add(R5, R5, R1)
	sb.MovI(R10, out)
	sb.Add(R5, R5, R10)
	sb.StB(R5, 0, R3)
	sb.Add(R14, R14, R3)
	sb.ShlI(R4, R14, 11)
	sb.Xor(R14, R14, R4)
	st.Close(sb, 1)
	blk.Close(st.Exit, 1)

	k.finishFold(newLib(k), f, blk.Exit, out, blocks*64, R14)
	return k.p
}
