package workloads

// The single init keeps registration in the paper's presentation order
// (Figure 5's x-axis): MediaBench, then MiBench.
func init() {
	register("adpcmdec", "mediabench", buildADPCMDec)
	register("adpcmenc", "mediabench", buildADPCMEnc)
	register("g721dec", "mediabench", buildG721("g721dec", 0x6721d, true))
	register("g721enc", "mediabench", buildG721("g721enc", 0x6721e, false))
	register("gsmdec", "mediabench", buildGSM("gsmdec", 0x65d, true))
	register("gsmenc", "mediabench", buildGSM("gsmenc", 0x65e, false))
	register("jpegdec", "mediabench", buildJPEGDec)
	register("jpegenc", "mediabench", buildJPEGEnc)
	register("mpeg2dec", "mediabench", buildMPEG2Dec)
	register("mpeg2enc", "mediabench", buildMPEG2Enc)
	register("pegwitdec", "mediabench", buildPegwit("pegwitdec", 0x9e6d, true))
	register("pegwitenc", "mediabench", buildPegwit("pegwitenc", 0x9e6e, false))
	register("sha", "mediabench", buildSHA)
	register("susans", "mediabench", buildSusan("susans", 0x5005, susanSmooth))
	register("susane", "mediabench", buildSusan("susane", 0x500e, susanEdges))
	register("susanc", "mediabench", buildSusan("susanc", 0x500c, susanCorners))

	register("dijkstra", "mibench", buildDijkstra)
	register("basicmath", "mibench", buildBasicmath)
	register("fft", "mibench", buildFFT("fft", false))
	register("ifft", "mibench", buildFFT("ifft", true))
	register("typeset", "mibench", buildTypeset)
	register("blowfishdec", "mibench", buildBlowfish("blowfishdec", 0xbf0d, true))
	register("blowfishenc", "mibench", buildBlowfish("blowfishenc", 0xbf0e, false))
	register("patricia", "mibench", buildPatricia)
	register("rijndaeldec", "mibench", buildRijndael("rijndaeldec", 0xae5d, true))
	register("rijndaelenc", "mibench", buildRijndael("rijndaelenc", 0xae5e, false))
}
