package workloads

import "repro/internal/ir"

// buildMPEG2Dec is mpeg2dec: motion compensation — per 16x16 macroblock,
// bilinear-average two reference blocks into the output frame. Load-pair,
// average, store per pixel: a streaming kernel with a store every few
// instructions.
func buildMPEG2Dec(scale int) *ir.Program {
	k := newKernel("mpeg2dec", 0x3e62d)
	mbs := 20 * normScale(scale)
	const mbPix = 256
	ref0 := k.randBytes(int(mbs)*mbPix + 512)
	ref1 := k.randBytes(int(mbs)*mbPix + 512)
	mv := k.words(int(mbs), func(int) int64 { return k.rng.Int63n(256) })
	out := k.p.Alloc(mbs * mbPix)

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0)
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, mbs)

	mb := NewLoop(f, "mb", en, R0, R13)
	bb := mb.Body
	// Motion vector offset for this macroblock.
	bb.MovI(R10, mv)
	bb.ShlI(R4, R0, 3)
	bb.Add(R10, R10, R4)
	bb.Ld(R9, R10, 0) // mv offset 0..255
	bb.MovI(R1, 0)
	bb.MovI(R11, mbPix)
	px := NewLoop(f, "px", bb, R1, R11)
	pb := px.Body
	pb.MulI(R2, R0, mbPix)
	pb.Add(R2, R2, R1)
	pb.Add(R3, R2, R9) // displaced index
	pb.MovI(R10, ref0)
	pb.Add(R4, R10, R3)
	pb.LdB(R5, R4, 0)
	pb.MovI(R10, ref1)
	pb.Add(R4, R10, R3)
	pb.LdB(R6, R4, 0)
	pb.Add(R5, R5, R6)
	pb.AddI(R5, R5, 1)
	pb.SarI(R5, R5, 1) // rounded average
	pb.MovI(R10, out)
	pb.Add(R4, R10, R2)
	pb.StB(R4, 0, R5)
	pb.Add(R14, R14, R5)
	pb.ShlI(R4, R14, 13)
	pb.Xor(R14, R14, R4)
	px.Close(pb, 1)
	mb.Close(px.Exit, 1)

	k.finishFold(newLib(k), f, mb.Exit, out, mbs*mbPix, R14)
	return k.p
}

// buildMPEG2Enc is mpeg2enc: motion estimation — per macroblock, a SAD
// (sum of absolute differences) search over candidate displacements. Very
// load-heavy with branches for the abs and the best-candidate update, and
// almost no stores until the per-block result.
func buildMPEG2Enc(scale int) *ir.Program {
	k := newKernel("mpeg2enc", 0x3e62e)
	mbs := 6 * normScale(scale)
	const mbPix = 64 // 8x8 SAD window keeps runtime reasonable
	const cands = 16
	cur := k.randBytes(int(mbs)*mbPix + 1024)
	ref := k.randBytes(int(mbs)*mbPix + 1024)
	out := k.p.Alloc(mbs * 8)

	f := k.p.NewFunc("main")
	en := f.Entry()
	en.MovI(R0, 0)
	en.MovI(R12, 0)
	en.MovI(R14, 0)
	en.MovI(R13, mbs)

	mb := NewLoop(f, "mb", en, R0, R13)
	bb := mb.Body
	bb.MovI(R8, 1<<30) // best SAD
	bb.MovI(R9, 0)     // best candidate
	bb.MovI(R1, 0)     // candidate
	bb.MovI(R11, cands)
	cd := NewLoop(f, "cand", bb, R1, R11)
	cb := cd.Body
	cb.MovI(R2, 0) // pixel
	cb.MovI(R3, 0) // sad
	cb.MovI(R10, mbPix)
	px := NewLoop(f, "sad", cb, R2, R10)
	pb := px.Body
	pb.MulI(R4, R0, mbPix)
	pb.Add(R4, R4, R2)
	pb.MovI(R10, cur)
	pb.Add(R5, R10, R4)
	pb.LdB(R6, R5, 0)
	pb.MulI(R5, R1, 4)
	pb.Add(R5, R5, R4)
	pb.MovI(R10, ref)
	pb.Add(R5, R10, R5)
	pb.LdB(R7, R5, 0)
	pb.Sub(R6, R6, R7)
	abs := f.NewBlock("sad.abs")
	acc := f.NewBlock("sad.acc")
	pb.Blt(R6, R12, abs, acc)
	abs.Sub(R6, R12, R6)
	abs.Jmp(acc)
	acc.Add(R3, R3, R6)
	acc.MovI(R10, mbPix) // restore inner limit
	px.Close(acc, 1)
	pe := px.Exit
	better := f.NewBlock("cand.better")
	cont := f.NewBlock("cand.cont")
	pe.Blt(R3, R8, better, cont)
	better.Mov(R8, R3)
	better.Mov(R9, R1)
	better.Jmp(cont)
	cd.Close(cont, 1)

	ce := cd.Exit
	ce.MovI(R10, out)
	ce.ShlI(R4, R0, 3)
	ce.Add(R10, R10, R4)
	ce.ShlI(R5, R9, 16)
	ce.Or(R5, R5, R8)
	ce.St(R10, 0, R5)
	ce.Add(R14, R14, R5)
	ce.ShlI(R4, R14, 3)
	ce.Xor(R14, R14, R4)
	mb.Close(ce, 1)

	k.finishFold(newLib(k), f, mb.Exit, out, mbs*8, R14)
	return k.p
}

// buildPegwit builds pegwitenc/pegwitdec: public-key-ish crypto. The
// miniature keeps pegwit's character — wide-integer modular square-and-
// multiply (mul/shift/xor chains over a digit array with periodic stores)
// driven by key bits, which makes it branchy and compute-dense.
func buildPegwit(name string, seed int64, decode bool) func(scale int) *ir.Program {
	return func(scale int) *ir.Program {
		k := newKernel(name, seed)
		msgs := 48 * normScale(scale)
		const digits = 8
		msg := k.randWords(int(msgs)*digits, 1<<30)
		key := k.randWords(64, 1<<62)
		out := k.p.Alloc(msgs * digits * 8)
		acc := k.p.Alloc(digits * 8)

		f := k.p.NewFunc("main")
		en := f.Entry()
		en.MovI(R0, 0)
		en.MovI(R12, 0)
		en.MovI(R14, 0)
		en.MovI(R13, msgs)

		m := NewLoop(f, "msg", en, R0, R13)
		bb := m.Body
		// Load key word for this message.
		bb.AndI(R4, R0, 63)
		bb.ShlI(R4, R4, 3)
		bb.MovI(R10, key)
		bb.Add(R10, R10, R4)
		bb.Ld(R8, R10, 0) // key word
		// Square-and-multiply over 16 key bits; state in acc[digits].
		bb.MovI(R1, 0)
		bb.MovI(R11, 16)
		bits := NewLoop(f, "bit", bb, R1, R11)
		tb := bits.Body
		// Square pass over digits: acc[d] = (acc[d]*acc[d] + msg[d]) mod 2^31-ish
		tb.MovI(R2, 0)
		tb.MovI(R10, digits)
		dg := NewLoop(f, "dig", tb, R2, R10)
		db := dg.Body
		db.MovI(R10, acc)
		db.ShlI(R4, R2, 3)
		db.Add(R10, R10, R4)
		db.Ld(R3, R10, 0)
		db.Mul(R3, R3, R3)
		db.MulI(R5, R0, digits*8)
		db.Add(R5, R5, R4)
		db.MovI(R6, msg)
		db.Add(R5, R5, R6)
		db.Ld(R6, R5, 0)
		db.Add(R3, R3, R6)
		db.MovI(R5, (1<<31)-1)
		db.And(R3, R3, R5)
		db.MovI(R10, acc)
		db.Add(R10, R10, R4)
		db.St(R10, 0, R3)
		db.MovI(R10, digits) // restore loop limit
		dg.Close(db, 1)
		de := dg.Exit
		// Multiply step only when the key bit is set (branch).
		mulB := f.NewBlock("bit.mul")
		cont := f.NewBlock("bit.cont")
		de.AndI(R5, R8, 1)
		de.SarI(R8, R8, 1)
		de.Bne(R5, R12, mulB, cont)
		mulB.MovI(R10, acc)
		mulB.Ld(R3, R10, 0)
		mulB.Ld(R4, R10, 8)
		mulB.Mul(R3, R3, R4)
		mulB.ShrI(R4, R3, 17)
		mulB.Xor(R3, R3, R4)
		mulB.St(R10, 0, R3)
		mulB.Jmp(cont)
		bits.Close(cont, 1)

		// Emit the digest digits to the output (8 stores per message).
		be := bits.Exit
		be.MovI(R2, 0)
		be.MovI(R10, digits)
		emit := NewLoop(f, "emit", be, R2, R10)
		eb := emit.Body
		eb.MovI(R10, acc)
		eb.ShlI(R4, R2, 3)
		eb.Add(R10, R10, R4)
		eb.Ld(R3, R10, 0)
		if decode {
			eb.XorI(R3, R3, 0x5a5a5a)
		}
		eb.MulI(R5, R0, digits*8)
		eb.Add(R5, R5, R4)
		eb.MovI(R6, out)
		eb.Add(R5, R5, R6)
		eb.St(R5, 0, R3)
		eb.Add(R14, R14, R3)
		eb.ShlI(R4, R14, 19)
		eb.Xor(R14, R14, R4)
		eb.MovI(R10, digits) // restore loop limit
		emit.Close(eb, 1)
		m.Close(emit.Exit, 1)

		k.finishFold(newLib(k), f, m.Exit, out, msgs*digits*8, R14)
		return k.p
	}
}
