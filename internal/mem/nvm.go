// Package mem models the byte-addressable nonvolatile main memory (NVM).
//
// The model is functional — real bytes are stored, so the simulator can
// verify crash consistency — and instrumented: every access is counted so
// experiments can report NVM write amplification (Figure 16). Latency and
// energy are charged by the caller from its parameter set; this package
// only stores data and counts traffic.
package mem

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// LineSize is the cacheline (and persist-buffer entry) granularity in
// bytes, fixed at 64 as in the paper.
const LineSize = 64

// LineAddr returns the line-aligned base of addr.
func LineAddr(addr int64) int64 { return addr &^ (LineSize - 1) }

const pageSize = 1 << 16

// NVM is a sparse byte-addressable nonvolatile memory.
type NVM struct {
	pages map[int64]*[pageSize]byte
	size  int64

	// One-entry page cache: simulated accesses are heavily clustered, so
	// remembering the last page touched turns most map lookups into a
	// single compare.
	lastBase int64
	lastPage *[pageSize]byte

	// Traffic counters. Reads/Writes count word- or byte-granular
	// accesses; LineReads/LineWrites count 64-byte transfers (cache
	// fills, writebacks, buffer traffic).
	Reads      uint64
	Writes     uint64
	LineReads  uint64
	LineWrites uint64
}

// New returns an NVM of the given byte capacity.
func New(size int64) *NVM {
	return &NVM{pages: map[int64]*[pageSize]byte{}, size: size, lastBase: -1}
}

// Size returns the configured capacity in bytes.
func (m *NVM) Size() int64 { return m.size }

func (m *NVM) page(addr int64) *[pageSize]byte {
	if addr < 0 || addr >= m.size {
		panic(fmt.Sprintf("mem: address %#x out of range [0,%#x)", addr, m.size))
	}
	base := addr &^ (pageSize - 1)
	if base == m.lastBase {
		return m.lastPage
	}
	p := m.pages[base]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[base] = p
	}
	m.lastBase, m.lastPage = base, p
	return p
}

// peekByte reads without counting traffic.
func (m *NVM) peekByte(addr int64) byte {
	return m.page(addr)[addr&(pageSize-1)]
}

func (m *NVM) pokeByte(addr int64, v byte) {
	m.page(addr)[addr&(pageSize-1)] = v
}

// PeekWord reads a little-endian 64-bit word without counting traffic;
// used by recovery protocols, initialization, and tests.
func (m *NVM) PeekWord(addr int64) int64 {
	if off := addr & (pageSize - 1); off <= pageSize-8 && addr >= 0 && addr+8 <= m.size {
		p := m.page(addr)
		return int64(binary.LittleEndian.Uint64(p[off : off+8]))
	}
	var v uint64 // word straddles a page boundary: byte-at-a-time
	for i := int64(0); i < 8; i++ {
		v |= uint64(m.peekByte(addr+i)) << (8 * i)
	}
	return int64(v)
}

// PokeWord writes a word without counting traffic.
func (m *NVM) PokeWord(addr, val int64) {
	if off := addr & (pageSize - 1); off <= pageSize-8 && addr >= 0 && addr+8 <= m.size {
		p := m.page(addr)
		binary.LittleEndian.PutUint64(p[off:off+8], uint64(val))
		return
	}
	for i := int64(0); i < 8; i++ {
		m.pokeByte(addr+i, byte(uint64(val)>>(8*i)))
	}
}

// PokeByte writes a byte without counting traffic.
func (m *NVM) PokeByte(addr int64, v byte) { m.pokeByte(addr, v) }

// PokeImage bulk-writes a byte run starting at addr without counting
// traffic. It is equivalent to poking each byte in order but copies a
// page-sized chunk at a time, so loading a program's data image costs a
// few memcpys instead of a page lookup per word.
func (m *NVM) PokeImage(addr int64, data []byte) {
	if addr < 0 || addr+int64(len(data)) > m.size {
		panic(fmt.Sprintf("mem: image [%#x,%#x) out of range [0,%#x)", addr, addr+int64(len(data)), m.size))
	}
	for len(data) > 0 {
		p := m.page(addr)
		n := copy(p[addr&(pageSize-1):], data)
		data = data[n:]
		addr += int64(n)
	}
}

// ReadWord performs a counted 64-bit read.
func (m *NVM) ReadWord(addr int64) int64 {
	m.Reads++
	return m.PeekWord(addr)
}

// WriteWord performs a counted 64-bit write.
func (m *NVM) WriteWord(addr, val int64) {
	m.Writes++
	m.PokeWord(addr, val)
}

// ReadByte performs a counted byte read.
func (m *NVM) ReadByteAt(addr int64) byte {
	m.Reads++
	return m.peekByte(addr)
}

// WriteByte performs a counted byte write.
func (m *NVM) WriteByteAt(addr int64, v byte) {
	m.Writes++
	m.pokeByte(addr, v)
}

// ReadLine copies the 64-byte line at the line-aligned addr into dst,
// counting one line read.
func (m *NVM) ReadLine(addr int64, dst *[LineSize]byte) {
	m.LineReads++
	if off := addr & (pageSize - 1); off&(LineSize-1) == 0 && addr >= 0 && addr+LineSize <= m.size {
		copy(dst[:], m.page(addr)[off:off+LineSize])
		return
	}
	for i := int64(0); i < LineSize; i++ {
		dst[i] = m.peekByte(addr + i)
	}
}

// PokeLine writes a 64-byte line without counting traffic (used for
// rename-commit mapping switches and test setup).
func (m *NVM) PokeLine(addr int64, src *[LineSize]byte) {
	if off := addr & (pageSize - 1); off&(LineSize-1) == 0 && addr >= 0 && addr+LineSize <= m.size {
		copy(m.page(addr)[off:off+LineSize], src[:])
		return
	}
	for i := int64(0); i < LineSize; i++ {
		m.pokeByte(addr+i, src[i])
	}
}

// WriteLine writes a 64-byte line, counting one line write.
func (m *NVM) WriteLine(addr int64, src *[LineSize]byte) {
	m.LineWrites++
	m.PokeLine(addr, src)
}

// ContentHash returns a SHA-256 digest of the memory contents over
// [0, size). All-zero pages hash identically whether or not they were ever
// materialized, so two NVMs with m.Equal(o) share a hash. Golden tests use
// this to pin final memory images without storing them.
func (m *NVM) ContentHash() [sha256.Size]byte {
	bases := make([]int64, 0, len(m.pages))
	for base, p := range m.pages {
		if *p != ([pageSize]byte{}) {
			bases = append(bases, base)
		}
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	h := sha256.New()
	var hdr [8]byte
	for _, base := range bases {
		binary.LittleEndian.PutUint64(hdr[:], uint64(base))
		h.Write(hdr[:])
		h.Write(m.pages[base][:])
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// ResetCounters zeroes the traffic counters, keeping contents.
func (m *NVM) ResetCounters() {
	m.Reads, m.Writes, m.LineReads, m.LineWrites = 0, 0, 0, 0
}

// Equal reports whether the contents of m and o are byte-identical over
// [0, max(sizes)); used by crash-consistency tests.
func (m *NVM) Equal(o *NVM) bool {
	return m.FirstDiff(o) < 0
}

// FirstDiff returns the lowest address at which m and o differ, or -1.
func (m *NVM) FirstDiff(o *NVM) int64 {
	seen := map[int64]bool{}
	for base := range m.pages {
		seen[base] = true
	}
	for base := range o.pages {
		seen[base] = true
	}
	first := int64(-1)
	for base := range seen {
		a, b := m.pages[base], o.pages[base]
		for i := 0; i < pageSize; i++ {
			var av, bv byte
			if a != nil {
				av = a[i]
			}
			if b != nil {
				bv = b[i]
			}
			if av != bv {
				addr := base + int64(i)
				if first < 0 || addr < first {
					first = addr
				}
				break
			}
		}
	}
	return first
}
