package mem

import (
	"testing"
	"testing/quick"
)

func TestWordRoundTrip(t *testing.T) {
	m := New(1 << 20)
	m.WriteWord(128, -123456789)
	if got := m.ReadWord(128); got != -123456789 {
		t.Errorf("got %d", got)
	}
	if m.Reads != 1 || m.Writes != 1 {
		t.Errorf("counters: %d reads %d writes", m.Reads, m.Writes)
	}
}

func TestByteAndWordConsistency(t *testing.T) {
	m := New(1 << 20)
	m.PokeWord(64, 0x0102030405060708)
	// Little-endian layout.
	if m.ReadByteAt(64) != 0x08 || m.ReadByteAt(71) != 0x01 {
		t.Error("little-endian byte layout")
	}
	m.WriteByteAt(64, 0xFF)
	if got := m.PeekWord(64); got != 0x01020304050607FF {
		t.Errorf("after byte write: %#x", got)
	}
}

func TestPeekPokeDoNotCount(t *testing.T) {
	m := New(1 << 20)
	m.PokeWord(0, 1)
	_ = m.PeekWord(0)
	m.PokeByte(9, 2)
	var line [LineSize]byte
	m.PokeLine(128, &line)
	if m.Reads != 0 || m.Writes != 0 || m.LineWrites != 0 {
		t.Error("peek/poke counted traffic")
	}
}

func TestLineOps(t *testing.T) {
	m := New(1 << 20)
	var src [LineSize]byte
	for i := range src {
		src[i] = byte(i)
	}
	m.WriteLine(192, &src)
	var dst [LineSize]byte
	m.ReadLine(192, &dst)
	if dst != src {
		t.Error("line round trip")
	}
	if m.LineReads != 1 || m.LineWrites != 1 {
		t.Error("line counters")
	}
	if m.PeekWord(192) != 0x0706050403020100 {
		t.Errorf("line/word aliasing: %#x", m.PeekWord(192))
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 64 || LineAddr(129) != 128 {
		t.Error("line alignment")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.PokeWord(1<<40, 1)
}

func TestEqualAndFirstDiff(t *testing.T) {
	a, b := New(1<<20), New(1<<20)
	if !a.Equal(b) {
		t.Error("fresh NVMs differ")
	}
	a.PokeWord(70000, 5)
	b.PokeWord(70000, 5)
	if !a.Equal(b) {
		t.Error("identical contents differ")
	}
	b.PokeByte(70001, 9)
	if a.Equal(b) {
		t.Error("differing contents equal")
	}
	if d := a.FirstDiff(b); d != 70001 {
		t.Errorf("first diff = %d", d)
	}
	// Page allocated on one side but zero-filled equals unallocated.
	c := New(1 << 20)
	d := New(1 << 20)
	c.PokeWord(100000, 0)
	if !c.Equal(d) {
		t.Error("zero-write created a phantom difference")
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	m := New(1 << 22)
	if err := quick.Check(func(addr uint32, v int64) bool {
		a := int64(addr) % (1<<22 - 8)
		m.PokeWord(a, v)
		return m.PeekWord(a) == v
	}, nil); err != nil {
		t.Error(err)
	}
}
