// Package store promotes the cell journal into a tiered, memoized result
// store — the heart of simulation-as-a-service. A lookup walks two tiers:
//
//   - memory: a bounded LRU over *journal.Record, modeled on the shared
//     trace-tape cache — hot cells cost a map probe, eviction simply
//     demotes a cell back to "disk-only".
//   - disk: the durable JSONL journal (internal/journal), which also
//     gives the store its crash story: every computed cell is fsynced
//     before the caller sees it, and a restarted store re-serves the
//     whole corpus from the first Lookup.
//
// Misses go through singleflight dedup: N concurrent requests for the
// same cell key cost exactly one simulation, with the followers blocking
// on the leader's result. The cell key is the journal's content hash over
// the full cell identity (workload, scale, scheme, profile, seed, params
// fingerprint, engine version), so a cached record can never be served
// across a configuration or model change.
//
// Records are treated as immutable once stored; tiers share pointers.
package store

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/journal"
	"repro/internal/telemetry"
)

// Tier names where a record came from.
type Tier int

const (
	// TierNone: the record was computed by this call (a miss), or the
	// lookup failed.
	TierNone Tier = iota
	TierMemory
	TierDisk
)

func (t Tier) String() string {
	switch t {
	case TierMemory:
		return "memory"
	case TierDisk:
		return "disk"
	}
	return "simulated"
}

// Stats is a snapshot of the store's counters.
type Stats struct {
	MemHits        uint64 `json:"mem_hits"`
	DiskHits       uint64 `json:"disk_hits"`
	Misses         uint64 `json:"misses"` // computes actually started
	DedupCollapses uint64 `json:"dedup_collapses"`
	Errors         uint64 `json:"errors"` // failed computes
	InFlight       int    `json:"in_flight"`
	MemEntries     int    `json:"mem_entries"`
	MemCap         int    `json:"mem_cap"`
	// Disk is the underlying journal's view (zero-valued when the store
	// is memory-only).
	Disk journal.Stats `json:"disk"`
}

// DefaultMemCap is the memory tier's entry bound when the caller passes
// a non-positive cap. Records are a few hundred bytes of counters each,
// so the default keeps the hot set of a large campaign resident for
// single-digit megabytes.
const DefaultMemCap = 4096

// flight is one in-progress compute; followers block on done.
type flight struct {
	done chan struct{}
	rec  *journal.Record
	err  error
}

// Store is a tiered, deduplicating result store. Safe for concurrent use.
type Store struct {
	mu      sync.Mutex
	mem     map[string]*journal.Record
	order   []string // LRU order, least recently used first
	memCap  int
	disk    *journal.Journal // nil = memory-only
	flights map[string]*flight
	stats   Stats
	reg     *telemetry.LiveRegistry // optional live counters, may be nil
}

// New builds a store over an already-open journal (nil for memory-only).
// memCap bounds the memory tier; non-positive selects DefaultMemCap.
// The store owns the journal from here: Close closes it.
func New(disk *journal.Journal, memCap int) *Store {
	if memCap <= 0 {
		memCap = DefaultMemCap
	}
	return &Store{
		mem:     make(map[string]*journal.Record),
		memCap:  memCap,
		disk:    disk,
		flights: make(map[string]*flight),
	}
}

// Open opens (or creates) the journal at path and builds a store over
// it. An empty path yields a memory-only store — every restart is cold.
func Open(path string, memCap int) (*Store, error) {
	var disk *journal.Journal
	if path != "" {
		j, err := journal.Open(path)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		disk = j
	}
	return New(disk, memCap), nil
}

// SetRegistry attaches a live telemetry registry: the store mirrors its
// counters (store.mem_hits, store.disk_hits, store.misses,
// store.dedup_collapses, store.errors) into it as they happen, so a
// /metrics scrape sees them without locking the store.
func (s *Store) SetRegistry(reg *telemetry.LiveRegistry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reg = reg
}

// count bumps a live counter if a registry is attached. Called with s.mu
// held; LiveRegistry counters are atomic, so this never blocks.
func (s *Store) count(name string) {
	if s.reg != nil {
		s.reg.Counter("store." + name).Add(1)
	}
}

// touchLocked moves key to the most-recently-used end of the LRU order,
// appending it if new.
func (s *Store) touchLocked(key string) {
	for i, k := range s.order {
		if k == key {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = key
			return
		}
	}
	s.order = append(s.order, key)
}

// insertLocked puts a record into the memory tier, evicting LRU entries
// beyond the cap. Eviction only demotes: the record stays on disk.
func (s *Store) insertLocked(key string, rec *journal.Record) {
	s.mem[key] = rec
	s.touchLocked(key)
	for len(s.mem) > s.memCap {
		victim := s.order[0]
		s.order = s.order[1:]
		delete(s.mem, victim)
	}
}

// lookupLocked walks the tiers for key. On a disk hit the record is
// promoted into the memory tier.
func (s *Store) lookupLocked(c journal.Cell, key string) (*journal.Record, Tier, bool) {
	if rec, ok := s.mem[key]; ok {
		s.stats.MemHits++
		s.count("mem_hits")
		s.touchLocked(key)
		return rec, TierMemory, true
	}
	if s.disk != nil {
		// Lock order is always store.mu -> journal.mu, never the reverse.
		if rec, ok := s.disk.Lookup(c); ok {
			s.stats.DiskHits++
			s.count("disk_hits")
			s.insertLocked(key, rec)
			return rec, TierDisk, true
		}
	}
	return nil, TierNone, false
}

// Lookup returns the cell's record from the fastest tier holding it.
func (s *Store) Lookup(c journal.Cell) (*journal.Record, Tier, bool) {
	key := c.Key()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookupLocked(c, key)
}

// Put stores a computed record in both tiers: the disk append (durable,
// fsynced) happens first — outside the store lock, the journal has its
// own — so the memory tier never holds a record the disk tier could
// lose, and an fsync never stalls concurrent memory-tier hits. With no
// disk tier the insert is memory-only.
func (s *Store) Put(c journal.Cell, rec *journal.Record) error {
	key := c.Key()
	if s.disk != nil {
		if err := s.disk.Append(c, rec); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.insertLocked(key, rec)
	return nil
}

// GetOrCompute serves the cell from the fastest tier that has it, or —
// on a miss — runs compute exactly once however many callers ask
// concurrently: one leader simulates while followers block on its
// result (each counted as a dedup collapse). A successful compute is
// durable (journal append + fsync) before anyone sees it; a failed one
// is reported to every waiter and cached nowhere, so the next request
// retries.
//
// A follower whose ctx ends stops waiting and returns ctx.Err(); the
// leader's compute keeps running (it serves the other waiters) under
// the leader's own ctx.
func (s *Store) GetOrCompute(ctx context.Context, c journal.Cell, compute func(ctx context.Context) (*journal.Record, error)) (*journal.Record, Tier, error) {
	key := c.Key()
	s.mu.Lock()
	if rec, tier, ok := s.lookupLocked(c, key); ok {
		s.mu.Unlock()
		return rec, tier, nil
	}
	if f, ok := s.flights[key]; ok {
		s.stats.DedupCollapses++
		s.count("dedup_collapses")
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.rec, TierNone, f.err
		case <-ctx.Done():
			return nil, TierNone, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.stats.Misses++
	s.stats.InFlight++
	s.count("misses")
	s.mu.Unlock()

	rec, err := compute(ctx)
	if err == nil {
		if perr := s.Put(c, rec); perr != nil {
			// The cell simulated but its proof is not durable — the
			// store's contract is "served results are reproducible from
			// the journal", so this surfaces as a failure, not a success
			// with silent data loss.
			rec, err = nil, fmt.Errorf("store: cell computed but not durable: %w", perr)
		}
	}
	s.mu.Lock()
	if err != nil {
		s.stats.Errors++
		s.count("errors")
	}
	delete(s.flights, key)
	s.stats.InFlight--
	s.mu.Unlock()
	f.rec, f.err = rec, err
	close(f.done)
	return rec, TierNone, err
}

// Stats snapshots the store's counters, including the disk tier's.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.MemEntries = len(s.mem)
	st.MemCap = s.memCap
	if s.disk != nil {
		st.Disk = s.disk.Stats()
	}
	return st
}

// Close releases the disk tier. In-memory lookups keep working; further
// computes on a disk-backed store will fail their durable append.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disk == nil {
		return nil
	}
	return s.disk.Close()
}
