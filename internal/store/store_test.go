package store_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// cellN builds a distinct cell identity per n; the key space the torture
// tests overlap on.
func cellN(n int) journal.Cell {
	return journal.Cell{
		Workload: fmt.Sprintf("wl%03d", n), Scale: 1, Scheme: "Sweep-EmptyBit",
		Profile: "RFHome", Seed: int64(n),
		ParamsFP: "deadbeefdeadbeefdeadbeefdeadbeef", Engine: sim.EngineVersion,
	}
}

// recN builds a deterministic synthetic record per n — the store's
// contract is content-addressed caching, not simulation, so the tests
// can use cheap records with distinctive fields.
func recN(n int) *journal.Record {
	return &journal.Record{
		Scheme: "Sweep-EmptyBit", Halted: true,
		TimeNs: int64(1000 + n), RunNs: int64(900 + n),
		Outages: uint64(n), CacheHits: uint64(n * 7),
	}
}

func openStore(t *testing.T, path string, memCap int) *store.Store {
	t.Helper()
	s, err := store.Open(path, memCap)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestTiers walks one cell through the three tiers: computed on first
// request, memory on the second, disk (after a cold restart) on the
// third — with byte-identical records and digests throughout.
func TestTiers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	s := openStore(t, path, 0)
	c := cellN(1)

	computes := 0
	compute := func(context.Context) (*journal.Record, error) {
		computes++
		return recN(1), nil
	}

	rec1, tier, err := s.GetOrCompute(context.Background(), c, compute)
	if err != nil || tier != store.TierNone || computes != 1 {
		t.Fatalf("first request: tier=%v err=%v computes=%d", tier, err, computes)
	}
	rec2, tier, err := s.GetOrCompute(context.Background(), c, compute)
	if err != nil || tier != store.TierMemory || computes != 1 {
		t.Fatalf("second request: tier=%v err=%v computes=%d", tier, err, computes)
	}
	if rec2.Digest() != rec1.Digest() {
		t.Fatal("memory tier served a different record")
	}
	// The memory hit must not have touched the disk tier.
	if st := s.Stats(); st.Disk.Hits != 0 {
		t.Fatalf("memory hit consulted disk: %+v", st)
	}
	s.Close()

	// Cold restart: fresh store over the same journal path.
	s2 := openStore(t, path, 0)
	rec3, tier, err := s2.GetOrCompute(context.Background(), c, compute)
	if err != nil || tier != store.TierDisk || computes != 1 {
		t.Fatalf("post-restart request: tier=%v err=%v computes=%d", tier, err, computes)
	}
	a, _ := json.Marshal(rec1)
	b, _ := json.Marshal(rec3)
	if !bytes.Equal(a, b) {
		t.Fatal("disk tier record not byte-identical to the computed one")
	}
	// Promoted: the next request is a memory hit.
	if _, tier, _ := s2.GetOrCompute(context.Background(), c, compute); tier != store.TierMemory {
		t.Fatalf("disk hit not promoted to memory: tier=%v", tier)
	}
}

// TestSingleflightExactlyOnce: many concurrent requests per key, one
// simulation per key — the dedup invariant the service's cost model
// rests on.
func TestSingleflightExactlyOnce(t *testing.T) {
	const keys, callers = 8, 12
	s := openStore(t, filepath.Join(t.TempDir(), "cells.jsonl"), 0)

	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	digests := make([][]string, keys)
	for k := 0; k < keys; k++ {
		digests[k] = make([]string, callers)
		for i := 0; i < callers; i++ {
			wg.Add(1)
			go func(k, i int) {
				defer wg.Done()
				<-start
				rec, _, err := s.GetOrCompute(context.Background(), cellN(k),
					func(context.Context) (*journal.Record, error) {
						computes[k].Add(1)
						time.Sleep(5 * time.Millisecond) // widen the dedup window
						return recN(k), nil
					})
				if err != nil {
					t.Errorf("key %d caller %d: %v", k, i, err)
					return
				}
				digests[k][i] = rec.Digest()
			}(k, i)
		}
	}
	close(start)
	wg.Wait()

	for k := 0; k < keys; k++ {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d simulated %d times, want exactly once", k, n)
		}
		for i := 1; i < callers; i++ {
			if digests[k][i] != digests[k][0] {
				t.Errorf("key %d: caller %d got a different record", k, i)
			}
		}
	}
	st := s.Stats()
	if st.Misses != keys {
		t.Errorf("misses = %d, want %d", st.Misses, keys)
	}
	// Every call is accounted to exactly one bucket.
	if got := st.MemHits + st.DiskHits + st.Misses + st.DedupCollapses; got != keys*callers {
		t.Errorf("accounting: mem %d + disk %d + miss %d + dedup %d = %d, want %d",
			st.MemHits, st.DiskHits, st.Misses, st.DedupCollapses, got, keys*callers)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after quiescence", st.InFlight)
	}
}

// TestTortureOverlappingKeys is the -race workhorse: parallel Lookup,
// Put, and singleflight misses over an overlapping key space, with a
// memory tier small enough to churn evictions throughout. Afterwards:
// exactly one compute per key ever ran, and a cold reopen serves every
// key byte-identically from disk.
func TestTortureOverlappingKeys(t *testing.T) {
	const keys, workers, opsPerWorker = 16, 8, 200
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	s := openStore(t, path, 4) // far below the key count: constant eviction

	reg := telemetry.NewLiveRegistry()
	s.SetRegistry(reg)

	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for op := 0; op < opsPerWorker; op++ {
				k := (w*31 + op*17) % keys
				switch op % 3 {
				case 0:
					if rec, _, ok := s.Lookup(cellN(k)); ok && rec.TimeNs != int64(1000+k) {
						t.Errorf("lookup key %d returned foreign record", k)
					}
				default:
					rec, _, err := s.GetOrCompute(context.Background(), cellN(k),
						func(context.Context) (*journal.Record, error) {
							computes[k].Add(1)
							return recN(k), nil
						})
					if err != nil {
						t.Errorf("key %d: %v", k, err)
					} else if rec.TimeNs != int64(1000+k) {
						t.Errorf("key %d served foreign record", k)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	for k := 0; k < keys; k++ {
		if n := computes[k].Load(); n != 1 {
			t.Errorf("key %d simulated %d times, want exactly once", k, n)
		}
	}
	st := s.Stats()
	if st.MemEntries > 4 {
		t.Errorf("memory tier holds %d entries over cap 4", st.MemEntries)
	}
	if st.Errors != 0 {
		t.Errorf("%d compute errors during torture", st.Errors)
	}
	// Live counters mirror the snapshot counters.
	if got := reg.Counter("store.misses").Value(); got != st.Misses {
		t.Errorf("live misses %d != stats misses %d", got, st.Misses)
	}
	s.Close()

	// Byte-identical across tiers: a cold store must serve every key from
	// disk with the exact bytes the computes produced.
	s2 := openStore(t, path, 0)
	for k := 0; k < keys; k++ {
		rec, tier, ok := s2.Lookup(cellN(k))
		if !ok || tier != store.TierDisk {
			t.Fatalf("key %d not on disk after torture (ok=%v tier=%v)", k, ok, tier)
		}
		a, _ := json.Marshal(recN(k))
		b, _ := json.Marshal(rec)
		if !bytes.Equal(a, b) {
			t.Errorf("key %d: disk record not byte-identical", k)
		}
	}
}

// TestComputeErrorNotCached: a failed compute reaches every concurrent
// waiter and is cached nowhere — the next request retries and can
// succeed.
func TestComputeErrorNotCached(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "cells.jsonl"), 0)
	boom := errors.New("supply collapsed")
	_, _, err := s.GetOrCompute(context.Background(), cellN(1),
		func(context.Context) (*journal.Record, error) { return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the compute error", err)
	}
	rec, tier, err := s.GetOrCompute(context.Background(), cellN(1),
		func(context.Context) (*journal.Record, error) { return recN(1), nil })
	if err != nil || tier != store.TierNone || rec == nil {
		t.Fatalf("retry after error: tier=%v err=%v", tier, err)
	}
	if st := s.Stats(); st.Misses != 2 || st.Errors != 1 {
		t.Fatalf("stats after error+retry: %+v", st)
	}
}

// TestFollowerCancellation: a follower whose context ends stops waiting
// with ctx.Err() while the leader's compute finishes and lands in the
// store.
func TestFollowerCancellation(t *testing.T) {
	s := openStore(t, filepath.Join(t.TempDir(), "cells.jsonl"), 0)
	inCompute := make(chan struct{})
	release := make(chan struct{})

	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrCompute(context.Background(), cellN(1),
			func(context.Context) (*journal.Record, error) {
				close(inCompute)
				<-release
				return recN(1), nil
			})
		leaderDone <- err
	}()
	<-inCompute

	ctx, cancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, _, err := s.GetOrCompute(ctx, cellN(1),
			func(context.Context) (*journal.Record, error) {
				t.Error("follower must not compute")
				return nil, errors.New("unreachable")
			})
		followerDone <- err
	}()
	// Let the follower reach the wait, then cancel only it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("follower err = %v, want context.Canceled", err)
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled follower still waiting")
	}

	close(release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed: %v", err)
	}
	if _, tier, ok := s.Lookup(cellN(1)); !ok || tier != store.TierMemory {
		t.Fatalf("leader's record missing after follower cancellation (ok=%v tier=%v)", ok, tier)
	}
}

// TestTailErrorPropagates pins the operator-visibility chain for a
// truncated-tail disaster: a journal whose tail the scanner cannot read
// (a line beyond the 64 MB buffer cap) must surface journal.Stats.
// TailError through store.Stats().Disk — the same document /v1/stats
// serves — not be silently folded into the Corrupt count.
func TestTailErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Fsync = false
	if err := j.Append(cellN(1), recN(1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	chunk := bytes.Repeat([]byte{'x'}, 1<<20)
	for i := 0; i < 65; i++ { // one 65 MB line, no newline
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	s, err := store.Open(path, 0)
	if err != nil {
		t.Fatalf("tolerant open must survive an unreadable tail: %v", err)
	}
	defer s.Close()
	st := s.Stats()
	if st.Disk.TailError == "" {
		t.Fatalf("store stats hide the journal tail error: %+v", st.Disk)
	}
	if st.Disk.Loaded != 1 {
		t.Fatalf("entries before the bad tail must load: loaded %d, want 1", st.Disk.Loaded)
	}
}
