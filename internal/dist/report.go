package dist

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/service"
)

// Outcome is one accepted cell completion.
type Outcome struct {
	Cell service.CellRequest `json:"cell"`
	// Key/Digest are the cell's content-hash store key and record
	// digest — the identity the golden comparison pins.
	Key    string `json:"key"`
	Digest string `json:"digest"`
	// Tier says which store tier of the winning worker answered.
	Tier string `json:"tier"`
	// Worker is the winning worker's run ID.
	Worker string `json:"worker"`
	// Attempts is how many leases the coordinator issued for the cell
	// (1 = clean first dispatch; more = reissues, retries, or hedges).
	Attempts int `json:"attempts"`
}

// Quarantined is one cell the campaign gave up on: reported, never
// silently dropped.
type Quarantined struct {
	Cell      service.CellRequest `json:"cell"`
	Attempts  int                 `json:"attempts"`
	LastError string              `json:"last_error"`
}

// Report is a campaign's full accounting: every completion, every
// quarantined cell, and the fault-handling counters the chaos suite
// asserts on.
type Report struct {
	Workers []string `json:"workers"`

	Completed   []Outcome     `json:"completed"`
	Quarantined []Quarantined `json:"quarantined,omitempty"`

	// Reissues counts every re-dispatch for transient causes: expired
	// leases, connection failures, 502/503/504, hedges, torn responses.
	Reissues int `json:"reissues"`
	// Expired counts leases abandoned at their TTL (hung worker or a
	// cell that outran the TTL).
	Expired int `json:"expired"`
	// ConnFailures counts connection-level dispatch failures (dial
	// refused/reset — the SIGKILL signature).
	ConnFailures int `json:"conn_failures"`
	// Hedges counts straggler re-dispatches at HedgeK×p95.
	Hedges int `json:"hedges"`
	// Retries counts backoff retries of deterministic cell failures.
	Retries int `json:"retries"`
	// Duplicates counts completions that lost the first-wins race
	// (hedges and duplicated lease deliveries collapse here).
	Duplicates int `json:"duplicates"`
	// DigestMismatches counts completions whose record failed its own
	// digest check, plus duplicate completions disagreeing with the
	// accepted digest. Nonzero means a worker is corrupting results.
	DigestMismatches int `json:"digest_mismatches"`
	// CanceledLeases counts leases canceled after the cell reached a
	// terminal state elsewhere (stolen work).
	CanceledLeases int `json:"canceled_leases"`
}

// digestLines renders one "key digest" line per completion, sorted —
// the campaign's canonical result-set identity, independent of which
// worker proved what in which order.
func (r *Report) digestLines() []string {
	lines := make([]string, 0, len(r.Completed))
	for _, o := range r.Completed {
		lines = append(lines, o.Key+" "+o.Digest)
	}
	sort.Strings(lines)
	return lines
}

// CampaignDigest is a content hash over the sorted (key, digest) pairs
// of every completed cell. Two campaigns over the same cell set — one
// process or fifty workers, chaos or no chaos — must produce the same
// campaign digest, or results differ somewhere.
func (r *Report) CampaignDigest() string {
	h := sha256.New()
	for _, l := range r.digestLines() {
		io.WriteString(h, l)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// WriteDigests emits the sorted "key digest" lines, one per completion
// — the file scripts/dist_smoke.sh diffs against the single-process
// golden run.
func (r *Report) WriteDigests(w io.Writer) error {
	_, err := io.WriteString(w, strings.Join(r.digestLines(), "\n")+"\n")
	return err
}

// Summary is a one-line human accounting for logs.
func (r *Report) Summary() string {
	return fmt.Sprintf("completed=%d quarantined=%d reissues=%d expired=%d conn_failures=%d hedges=%d retries=%d duplicates=%d digest_mismatches=%d canceled=%d",
		len(r.Completed), len(r.Quarantined), r.Reissues, r.Expired,
		r.ConnFailures, r.Hedges, r.Retries, r.Duplicates,
		r.DigestMismatches, r.CanceledLeases)
}
