package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/service"
	"repro/internal/workloads"
)

// QuickWorkloads is the sweep subset — two of each flavour (codec,
// crypto, image, irregular), mirroring internal/exp's quick set — in
// deterministic order.
var QuickWorkloads = []string{
	"adpcmenc", "blowfishenc", "dijkstra", "fft",
	"gsmdec", "rijndaelenc", "sha", "susane",
}

// ParseWorkloads resolves a -workloads flag: "quick" (the sweep
// subset), "all", or a comma-separated list of workload names.
func ParseWorkloads(spec string) ([]string, error) {
	switch spec {
	case "", "quick":
		return QuickWorkloads, nil
	case "all":
		names := workloads.Names()
		sort.Strings(names)
		return names, nil
	}
	var out []string
	for _, n := range strings.Split(spec, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		if _, err := workloads.ByName(n); err != nil {
			return nil, fmt.Errorf("dist: %w", err)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("dist: empty workload list %q", spec)
	}
	return out, nil
}

// ParseSchemes resolves a -schemes flag: "" for the headline evaluation
// schemes (Figures 5–7), "all", or a comma-separated list of scheme
// names in their presentation form (e.g. "Sweep-EmptyBit").
func ParseSchemes(spec string) ([]string, error) {
	var kinds []arch.Kind
	switch spec {
	case "", "eval":
		kinds = arch.EvalKinds()
	case "all":
		kinds = arch.AllKinds()
	default:
		for _, n := range strings.Split(spec, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			k, ok := arch.ParseKind(n)
			if !ok {
				return nil, fmt.Errorf("dist: unknown scheme %q (want one of %v)", n, arch.AllKinds())
			}
			kinds = append(kinds, k)
		}
		if len(kinds) == 0 {
			return nil, fmt.Errorf("dist: empty scheme list %q", spec)
		}
	}
	out := make([]string, len(kinds))
	for i, k := range kinds {
		out[i] = k.String()
	}
	return out, nil
}

// MatrixSpec names a campaign's cell matrix: the cross product of
// workloads × schemes × seeds under one supply profile, scale, and
// params override.
type MatrixSpec struct {
	Workloads []string
	Schemes   []string
	Profile   string
	Seeds     []int64
	Scale     int
	Params    json.RawMessage
}

// Requests expands the matrix into cell requests in deterministic
// order (workload-major, then scheme, then seed).
func (m MatrixSpec) Requests() []service.CellRequest {
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1}
	}
	var out []service.CellRequest
	for _, w := range m.Workloads {
		for _, s := range m.Schemes {
			for _, seed := range seeds {
				out = append(out, service.CellRequest{
					Workload: w, Scheme: s, Profile: m.Profile,
					Scale: m.Scale, Seed: seed, Params: m.Params,
				})
			}
		}
	}
	return out
}

// RunLocal runs the same requests in-process through a memory-only
// service — the single-process golden path every distributed campaign
// is proven byte-identical against. The service layer guarantees the
// cells go through exactly the machinery a worker would use.
func RunLocal(ctx context.Context, reqs []service.CellRequest, log *slog.Logger) (*Report, error) {
	svc, err := service.New(service.Config{Log: log})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	rep := &Report{Workers: []string{"local"}}
	for i, item := range svc.Cells(ctx, reqs) {
		switch {
		case item.Response != nil:
			r := item.Response
			rep.Completed = append(rep.Completed, Outcome{
				Cell: reqs[i], Key: r.Key, Digest: r.Digest,
				Tier: r.Tier, Worker: "local", Attempts: 1,
			})
		default:
			rep.Quarantined = append(rep.Quarantined,
				Quarantined{Cell: reqs[i], Attempts: 1, LastError: item.Error})
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}
