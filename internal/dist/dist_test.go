package dist

// The chaos suite for the distributed-campaign plane. Every scenario
// ends the same way: the merged result set's campaign digest must equal
// the single-process golden digest — worker kills, hung leases,
// stragglers, injected 500s, and torn journals are allowed to cost
// time, never correctness.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/sim"
)

// testMatrix is the suite's small campaign: 2 workloads × 2 schemes ×
// 3 seeds = 12 cells, enough completions to warm the hedger's p95
// window (8) with cells to spare.
var testMatrix = MatrixSpec{
	Workloads: []string{"sha", "adpcmenc"},
	Schemes:   []string{"Sweep-EmptyBit", "NVP"},
	Profile:   "RFHome",
	Seeds:     []int64{1, 2, 3},
}

// sameCell compares cell requests field-wise (Params is a byte slice,
// so == is unavailable on the struct).
func sameCell(a, b service.CellRequest) bool {
	return a.Workload == b.Workload && a.Scheme == b.Scheme &&
		a.Profile == b.Profile && a.Scale == b.Scale && a.Seed == b.Seed &&
		bytes.Equal(a.Params, b.Params)
}

// leaseHook inspects a decoded lease before the real handler sees it
// and returns an artificial delay and/or an HTTP status to inject
// (0 = pass through).
type leaseHook func(lr service.LeaseRequest) (delay time.Duration, status int)

// wrapLease intercepts /v1/lease, decodes the request for the hook,
// and restores the body for the real handler. Delays honor the request
// context, so canceled leases release immediately.
func wrapLease(h http.Handler, hook leaseHook) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hook != nil && r.URL.Path == "/v1/lease" {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
			var lr service.LeaseRequest
			if json.Unmarshal(body, &lr) == nil {
				delay, status := hook(lr)
				if delay > 0 {
					select {
					case <-time.After(delay):
					case <-r.Context().Done():
						return
					}
				}
				if status != 0 {
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(status)
					json.NewEncoder(w).Encode(map[string]string{"error": "injected failure"})
					return
				}
			}
		}
		h.ServeHTTP(w, r)
	})
}

// startWorker boots one sweepd-equivalent worker: a Service over its
// own store path behind an httptest server, optionally wrapped with a
// lease hook.
func startWorker(t *testing.T, path string, hook leaseHook) (*httptest.Server, *service.Service) {
	t.Helper()
	svc, err := service.New(service.Config{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	h := svc.Handler(obs.NewRunInfo("sweepd-test", sim.EngineVersion))
	ts := httptest.NewServer(wrapLease(h, hook))
	t.Cleanup(func() { ts.Close(); svc.Close() })
	return ts, svc
}

// golden computes the single-process reference report for reqs.
func golden(t *testing.T, reqs []service.CellRequest) *Report {
	t.Helper()
	rep, err := RunLocal(context.Background(), reqs, nil)
	if err != nil {
		t.Fatalf("golden local run: %v", err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("golden local run quarantined cells: %+v", rep.Quarantined)
	}
	return rep
}

// fastCfg shortens every campaign knob for test wall clocks.
func fastCfg(workers ...string) Config {
	return Config{
		Workers:       workers,
		LeaseTTL:      20 * time.Second,
		RetryBase:     5 * time.Millisecond,
		RetryCap:      40 * time.Millisecond,
		HedgeInterval: 20 * time.Millisecond,
		StallTimeout:  30 * time.Second,
	}
}

// requireGoldenDigests pins the whole point: the distributed campaign's
// merged result set is byte-identical to the single-process run.
func requireGoldenDigests(t *testing.T, rep, gold *Report) {
	t.Helper()
	if got, want := rep.CampaignDigest(), gold.CampaignDigest(); got != want {
		var a, b bytes.Buffer
		rep.WriteDigests(&a)
		gold.WriteDigests(&b)
		t.Fatalf("campaign digest %s != golden %s\ndistributed:\n%sgolden:\n%s", got, want, a.String(), b.String())
	}
}

// TestDistCampaignMatchesLocal is the no-fault baseline: two healthy
// workers, every cell completes, digests golden, no reissues needed.
func TestDistCampaignMatchesLocal(t *testing.T) {
	reqs := testMatrix.Requests()
	gold := golden(t, reqs)
	dir := t.TempDir()
	w0, _ := startWorker(t, filepath.Join(dir, "w0.jsonl"), nil)
	w1, _ := startWorker(t, filepath.Join(dir, "w1.jsonl"), nil)

	mergePath := filepath.Join(dir, "merged.jsonl")
	merge, err := journal.Open(mergePath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastCfg(w0.URL, w1.URL)
	cfg.MergeJournal = merge
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	rep, err := coord.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("campaign: %v (report %s)", err, rep.Summary())
	}
	merge.Close()
	if len(rep.Completed) != len(reqs) || len(rep.Quarantined) != 0 {
		t.Fatalf("completed %d of %d, quarantined %d", len(rep.Completed), len(reqs), len(rep.Quarantined))
	}
	requireGoldenDigests(t, rep, gold)

	// The merged journal replays: every accepted record is durable and
	// digest-clean under the normal tolerant Open.
	j, err := journal.Open(mergePath)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	st := j.Stats()
	if st.Loaded != len(reqs) || st.Corrupt != 0 {
		t.Fatalf("merged journal: loaded %d corrupt %d, want %d/0", st.Loaded, st.Corrupt, len(reqs))
	}
}

// TestDistWorkerKillAndTornJournal is the headline chaos scenario:
// three workers, one SIGKILL-equivalent mid-campaign (connections torn
// down hard), one worker restarted over a chaos-corrupted journal —
// and the merged digests still match the single-process golden run,
// with the kill visible as reissues.
func TestDistWorkerKillAndTornJournal(t *testing.T) {
	reqs := testMatrix.Requests()
	gold := golden(t, reqs)
	dir := t.TempDir()

	// Worker 2's journal is pre-populated with a few of the campaign's
	// own cells, then corrupted — the torn-tail crash signature. Its
	// tolerant Open must count the damage and the worker simply
	// re-simulates what the tail lost.
	tornPath := filepath.Join(dir, "w2.jsonl")
	pre, err := service.New(service.Config{StorePath: tornPath})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range pre.Cells(context.Background(), reqs[:3]) {
		if it.Error != "" {
			t.Fatalf("pre-populate: %s", it.Error)
		}
	}
	pre.Close()
	var corrupted bool
	for seed := int64(1); seed <= 8; seed++ {
		if err := chaos.CorruptFile(tornPath, seed); err != nil {
			t.Fatal(err)
		}
		j, err := journal.Open(tornPath)
		if err != nil {
			t.Fatal(err)
		}
		st := j.Stats()
		j.Close()
		if st.Corrupt > 0 || st.TailError != "" {
			t.Logf("journal corrupted with seed %d: corrupt=%d tail=%q loaded=%d", seed, st.Corrupt, st.TailError, st.Loaded)
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("CorruptFile never produced visible damage across 8 seeds")
	}

	// Slow every lease slightly so the campaign is provably still in
	// flight when the kill lands.
	slow := func(service.LeaseRequest) (time.Duration, int) { return 100 * time.Millisecond, 0 }
	w0, _ := startWorker(t, filepath.Join(dir, "w0.jsonl"), slow)
	w1, _ := startWorker(t, filepath.Join(dir, "w1.jsonl"), slow)
	w2, svc2 := startWorker(t, tornPath, slow)
	if st := svc2.Store().Stats(); st.Disk.Corrupt == 0 && st.Disk.TailError == "" {
		t.Fatalf("worker over torn journal reports no damage: %+v", st.Disk)
	}

	tracker := obs.NewCampaignTracker(nil)
	cfg := fastCfg(w0.URL, w1.URL, w2.URL)
	cfg.Tracker = tracker
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	type result struct {
		rep *Report
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		rep, err := coord.Run(context.Background(), reqs)
		resCh <- result{rep, err}
	}()

	// Kill worker 0 the moment the campaign has proven progress but
	// cannot have finished (12 cells × 100ms floor ÷ 6 lanes ≫ poll).
	deadline := time.Now().Add(30 * time.Second)
	for {
		if p := tracker.Progress(); p.Done >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	w0.CloseClientConnections() // tear in-flight leases down hard (SIGKILL signature)
	w0.Close()

	res := <-resCh
	if res.err != nil {
		t.Fatalf("campaign: %v (report %s)", res.err, res.rep.Summary())
	}
	rep := res.rep
	t.Logf("chaos campaign: %s", rep.Summary())
	if len(rep.Completed) != len(reqs) || len(rep.Quarantined) != 0 {
		t.Fatalf("completed %d of %d, quarantined %d", len(rep.Completed), len(reqs), len(rep.Quarantined))
	}
	if rep.Reissues == 0 {
		t.Fatal("worker kill mid-campaign caused no reissues — the kill landed after completion, test proved nothing")
	}
	requireGoldenDigests(t, rep, gold)
}

// TestDistStragglerHedged: one cell's first lease hangs (a stalled
// worker thread); the hedger must re-dispatch it at k×p95 and the
// hedge's completion must cancel the straggler.
func TestDistStragglerHedged(t *testing.T) {
	reqs := testMatrix.Requests()
	gold := golden(t, reqs)
	straggle := reqs[len(reqs)-1]
	hook := func(lr service.LeaseRequest) (time.Duration, int) {
		if lr.Attempt == 1 && sameCell(lr.Cell, straggle) {
			return 60 * time.Second, 0 // far beyond any hedge threshold; ctx-aware
		}
		return 0, 0
	}
	dir := t.TempDir()
	w0, _ := startWorker(t, filepath.Join(dir, "w0.jsonl"), hook)
	w1, _ := startWorker(t, filepath.Join(dir, "w1.jsonl"), hook)

	cfg := fastCfg(w0.URL, w1.URL)
	cfg.HedgeK = 2
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	rep, err := coord.Run(context.Background(), reqs)
	if err != nil {
		t.Fatalf("campaign: %v (report %s)", err, rep.Summary())
	}
	t.Logf("straggler campaign: %s", rep.Summary())
	if len(rep.Completed) != len(reqs) || len(rep.Quarantined) != 0 {
		t.Fatalf("completed %d of %d, quarantined %d", len(rep.Completed), len(reqs), len(rep.Quarantined))
	}
	if rep.Hedges == 0 {
		t.Fatal("straggling cell was never hedged")
	}
	for _, o := range rep.Completed {
		if sameCell(o.Cell, straggle) && o.Attempts < 2 {
			t.Fatalf("straggling cell completed with %d attempts, want >= 2 (the hedge)", o.Attempts)
		}
	}
	requireGoldenDigests(t, rep, gold)
}

// TestDistQuarantine: a cell that fails deterministically (500 on every
// attempt, every worker) is retried with backoff, quarantined at
// MaxAttempts, and explicitly reported — while the rest of the campaign
// completes and Run returns no error (graceful degradation). A 400
// (request poisoned everywhere) quarantines immediately.
func TestDistQuarantine(t *testing.T) {
	reqs := testMatrix.Requests()
	poisoned := reqs[0]
	bad := service.CellRequest{Workload: "no-such-workload", Scheme: "NVP"}
	all := append(append([]service.CellRequest{}, reqs...), bad)

	var injected atomic.Int32
	hook := func(lr service.LeaseRequest) (time.Duration, int) {
		if sameCell(lr.Cell, poisoned) {
			injected.Add(1)
			return 0, http.StatusInternalServerError
		}
		return 0, 0
	}
	dir := t.TempDir()
	w0, _ := startWorker(t, filepath.Join(dir, "w0.jsonl"), hook)
	w1, _ := startWorker(t, filepath.Join(dir, "w1.jsonl"), hook)

	cfg := fastCfg(w0.URL, w1.URL)
	cfg.MaxAttempts = 3
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	rep, err := coord.Run(context.Background(), all)
	if err != nil {
		t.Fatalf("quarantine must degrade gracefully, not fail the run: %v", err)
	}
	t.Logf("quarantine campaign: %s", rep.Summary())
	if len(rep.Completed) != len(reqs)-1 {
		t.Fatalf("completed %d, want %d (all but the poisoned cell)", len(rep.Completed), len(reqs)-1)
	}
	if len(rep.Quarantined) != 2 {
		t.Fatalf("quarantined %d cells, want 2 (deterministic 500 + unknown workload): %+v", len(rep.Quarantined), rep.Quarantined)
	}
	var saw500, saw400 bool
	for _, q := range rep.Quarantined {
		switch {
		case sameCell(q.Cell, poisoned):
			saw500 = true
			if q.Attempts != cfg.MaxAttempts {
				t.Errorf("500-poisoned cell quarantined after %d attempts, want %d", q.Attempts, cfg.MaxAttempts)
			}
			if q.LastError == "" {
				t.Error("500-poisoned cell reported with empty last error")
			}
		case sameCell(q.Cell, bad):
			saw400 = true
			if q.Attempts != 1 {
				t.Errorf("400 cell quarantined after %d attempts, want 1 (no retry can fix a bad request)", q.Attempts)
			}
		}
	}
	if !saw500 || !saw400 {
		t.Fatalf("quarantine list missing a scenario: %+v", rep.Quarantined)
	}
	if got := int(injected.Load()); got != cfg.MaxAttempts {
		t.Errorf("injected %d failures, want exactly MaxAttempts=%d dispatches", got, cfg.MaxAttempts)
	}
	if rep.Retries < cfg.MaxAttempts-1 {
		t.Errorf("retries %d, want >= %d (backoff retries before quarantine)", rep.Retries, cfg.MaxAttempts-1)
	}
}

// TestDistDuplicateCompletion drives the first-wins dedup directly:
// a duplicated lease delivery is counted, a disagreeing duplicate
// digest is flagged as a mismatch, and neither double-retires the task.
func TestDistDuplicateCompletion(t *testing.T) {
	coord, err := New(Config{Workers: []string{"http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	req := service.CellRequest{Workload: "sha", Scheme: "NVP"}
	coord.cfg.Tracker.AddCells([]obs.CellMeta{{Workload: "sha", Scheme: "NVP"}})
	tk := &task{idx: 0, req: req, inflight: map[string]func(){}}
	coord.tasks = []*task{tk}
	coord.remain = 1

	mk := func(lease, digest string) *service.LeaseResponse {
		return &service.LeaseResponse{
			LeaseID: lease, Worker: "w",
			Result: &service.CellResponse{Key: "k", Digest: digest, Record: &journal.Record{}},
		}
	}
	coord.complete(0, tk, mk("l1", "d1"))
	if !tk.done || coord.remain != 0 {
		t.Fatalf("first completion not accepted: done=%v remain=%d", tk.done, coord.remain)
	}
	coord.complete(0, tk, mk("l2", "d1")) // duplicated delivery, same digest
	coord.complete(0, tk, mk("l3", "d2")) // duplicate with a WRONG digest
	if coord.rep.Duplicates != 2 {
		t.Fatalf("duplicates %d, want 2", coord.rep.Duplicates)
	}
	if coord.rep.DigestMismatches != 1 {
		t.Fatalf("digest mismatches %d, want 1 (the disagreeing duplicate)", coord.rep.DigestMismatches)
	}
	if coord.remain != 0 || tk.out.Digest != "d1" {
		t.Fatalf("duplicate completion disturbed the accepted outcome: remain=%d digest=%q", coord.remain, tk.out.Digest)
	}
	select {
	case <-coord.doneCh:
	default:
		t.Fatal("doneCh never closed")
	}
}

// TestDistNoGoroutineLeak: a completed campaign and a canceled one both
// return every goroutine — lanes, hedger, stall monitor, and canceled
// in-flight leases included.
func TestDistNoGoroutineLeak(t *testing.T) {
	reqs := MatrixSpec{
		Workloads: []string{"sha"}, Schemes: []string{"NVP", "Sweep-EmptyBit"},
		Profile: "RFHome", Seeds: []int64{1, 2},
	}.Requests()
	before := runtime.NumGoroutine()

	run := func(cancelMidway bool) {
		dir := t.TempDir()
		var hook leaseHook
		if cancelMidway {
			hook = func(service.LeaseRequest) (time.Duration, int) { return 50 * time.Millisecond, 0 }
		}
		w0, _ := startWorker(t, filepath.Join(dir, "w0.jsonl"), hook)
		coord, err := New(fastCfg(w0.URL))
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		if cancelMidway {
			go func() { time.Sleep(25 * time.Millisecond); cancel() }()
		} else {
			defer cancel()
		}
		rep, err := coord.Run(ctx, reqs)
		if cancelMidway {
			if err == nil {
				t.Log("cancel landed after completion; still checking for leaks")
			}
		} else if err != nil {
			t.Fatalf("campaign: %v (report %s)", err, rep.Summary())
		}
		coord.Close()
		w0.CloseClientConnections()
		w0.Close()
	}
	run(false)
	run(true)

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines %d > %d+2 after settle:\n%s",
				runtime.NumGoroutine(), before, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestMatrixSpec pins request expansion and the flag parsers.
func TestMatrixSpec(t *testing.T) {
	wl, err := ParseWorkloads("quick")
	if err != nil || len(wl) != 8 {
		t.Fatalf("quick workloads: %v %v", wl, err)
	}
	if _, err := ParseWorkloads("sha,nope"); err == nil {
		t.Fatal("unknown workload accepted")
	}
	sc, err := ParseSchemes("")
	if err != nil || len(sc) != 4 {
		t.Fatalf("eval schemes: %v %v", sc, err)
	}
	if _, err := ParseSchemes("NVP,bogus"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	reqs := MatrixSpec{Workloads: []string{"a", "b"}, Schemes: []string{"X"}, Seeds: []int64{1, 2, 3}}.Requests()
	if len(reqs) != 6 {
		t.Fatalf("matrix expanded to %d cells, want 6", len(reqs))
	}
	if reqs[0].Seed != 1 || reqs[5].Workload != "b" {
		t.Fatalf("matrix order drifted: %+v", reqs)
	}
}
