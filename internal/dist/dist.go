// Package dist is the fault-tolerant campaign coordinator: it shards a
// campaign into cell leases and farms them to N sweepd workers over
// HTTP, surviving worker kills, hangs, stragglers, and torn journals.
//
// The design leans entirely on the substrate the lower layers already
// proved: every cell is content-hash keyed (internal/journal) and
// memoized (internal/store), so a lease is idempotent — re-issuing,
// duplicating, or hedging one can change which worker answers but never
// what the answer is. The coordinator therefore never needs distributed
// consensus; it needs only to keep issuing leases until every cell has
// exactly one accepted completion, and to prove at the end that the
// merged result set is byte-identical to a single-process run (the
// digest identity the chaos suite and scripts/dist_smoke.sh pin).
//
// Fault model and response:
//
//   - Worker crash / SIGKILL: connection errors are transient — the
//     lease is re-queued for any worker, the dead worker is benched
//     with exponentially growing cooldowns so its lanes stop burning
//     dispatches.
//   - Worker hang / SIGSTOP: the lease TTL expires, the coordinator
//     abandons the lease (the worker aborts the simulation at its own
//     copy of the TTL) and re-issues it elsewhere.
//   - Straggler: once enough cells have completed to trust the rolling
//     p95 (obs.CampaignTracker's latency window), any cell in flight
//     longer than HedgeK×p95 is hedged — dispatched a second time to
//     another lane — and the first completion wins; losing leases are
//     canceled (work stealing).
//   - Deterministic cell failure: a 500 is retried with capped
//     exponential backoff + jitter; MaxAttempts consecutive compute
//     failures quarantine the cell — reported, never silently dropped —
//     and the campaign degrades gracefully instead of aborting.
//   - Poisoned request: a 400 can never succeed anywhere; it is
//     quarantined immediately.
//   - Torn worker journal: the worker's own tolerant journal Open
//     re-simulates what the tail lost; the coordinator only ever sees
//     digest-checked completions.
//   - Total loss (every worker gone): StallTimeout without a single
//     worker response fails the campaign rather than spinning forever.
//
// Completions are deduplicated by task, digest-checked against the
// record they carry, and appended to one merged journal, so the merged
// artifact replays through the normal resume machinery.
package dist

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/service"
)

// Config assembles a Coordinator.
type Config struct {
	// Workers are the sweepd base URLs to farm leases to.
	Workers []string
	// LanesPerWorker is how many leases one worker holds concurrently
	// (default 2; a worker's own -maxsim semaphore gates real work).
	LanesPerWorker int
	// LeaseTTL bounds one lease's wall clock; it must exceed the
	// worst-case single-cell simulation time on a healthy worker, or
	// every lease for that cell expires and the cell starves (default
	// 30s).
	LeaseTTL time.Duration
	// MaxAttempts quarantines a cell after this many deterministic
	// compute failures (default 3). Transient failures — connection
	// errors, expired leases, 502/503/504 — never count.
	MaxAttempts int
	// HedgeK hedges a cell once it has been in flight HedgeK× the
	// rolling p95 cell latency (default 4; needs ≥8 completions first).
	HedgeK float64
	// HedgeInterval is the straggler-scan period (default 100ms).
	HedgeInterval time.Duration
	// RetryBase/RetryCap shape the per-cell failure backoff (defaults
	// 100ms / 5s), with full jitter over the upper half.
	RetryBase time.Duration
	RetryCap  time.Duration
	// StallTimeout fails the campaign after this long without a single
	// worker response (default 2m): the all-workers-dead bound.
	StallTimeout time.Duration
	// MergeJournal, when non-nil, receives every accepted completion —
	// the single merged result set (callers own Close).
	MergeJournal *journal.Journal
	// Tracker follows the campaign for /progress; nil gets a private
	// tracker (the hedger needs its latency window regardless).
	Tracker *obs.CampaignTracker
	Log     *slog.Logger
}

func (c *Config) withDefaults() error {
	if len(c.Workers) == 0 {
		return errors.New("dist: no workers")
	}
	if c.LanesPerWorker <= 0 {
		c.LanesPerWorker = 2
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.HedgeK <= 0 {
		c.HedgeK = 4
	}
	if c.HedgeInterval <= 0 {
		c.HedgeInterval = 100 * time.Millisecond
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.RetryCap <= 0 {
		c.RetryCap = 5 * time.Second
	}
	if c.StallTimeout <= 0 {
		c.StallTimeout = 2 * time.Minute
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	if c.Tracker == nil {
		c.Tracker = obs.NewCampaignTracker(c.Log)
	}
	return nil
}

// task is one cell's coordinator-side state. Guarded by Coordinator.mu.
type task struct {
	idx int
	req service.CellRequest

	trkIdx int // obs tracker cell index

	attempts int // leases issued (dispatches, including hedges/reissues)
	failures int // deterministic compute failures (quarantine counter)

	queued    bool
	notBefore time.Time // backoff gate for the next dispatch

	// inflight maps lease ID → cancel for every outstanding dispatch;
	// the winning completion cancels the losers.
	inflight map[string]func()
	started  time.Time // earliest outstanding dispatch (hedge clock)

	done        bool
	quarantined bool
	lastErr     string
	out         Outcome
}

// Coordinator runs campaigns against a fixed worker set. One
// Coordinator runs one campaign at a time.
type Coordinator struct {
	cfg     Config
	clients []*service.Client
	runID   string

	mu       sync.Mutex
	tasks    []*task
	queue    []int // task indexes awaiting (re-)dispatch
	remain   int   // tasks not yet terminal (done or quarantined)
	leaseSeq int
	bench    []benchState // per worker
	lastBeat time.Time    // last worker response of any kind
	runErr   error

	wake   chan struct{} // queue became runnable
	doneCh chan struct{} // remain hit 0
	rep    Report
}

// benchState is one worker's cooldown after connection-level failures:
// each consecutive failure doubles the bench (250ms → 5s cap); any
// response resets it.
type benchState struct {
	streak int
	until  time.Time
}

const (
	benchBase = 250 * time.Millisecond
	benchCap  = 5 * time.Second
)

// New validates the config and builds the coordinator (one HTTP client
// per worker; the coordinator owns retry policy, so the clients
// themselves never retry).
func New(cfg Config) (*Coordinator, error) {
	if err := cfg.withDefaults(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		cfg:    cfg,
		runID:  obs.NewRunID(),
		bench:  make([]benchState, len(cfg.Workers)),
		wake:   make(chan struct{}, 1),
		doneCh: make(chan struct{}),
	}
	for _, w := range cfg.Workers {
		cl := service.NewClient(w)
		cl.Retry = service.RetryPolicy{Attempts: 1}
		c.clients = append(c.clients, cl)
	}
	return c, nil
}

// Close releases the worker clients' idle connection pools.
func (c *Coordinator) Close() {
	for _, cl := range c.clients {
		if t, ok := cl.HTTP.Transport.(*http.Transport); ok {
			t.CloseIdleConnections()
		}
	}
}

// Run farms every request out as leases and blocks until each cell is
// done or quarantined, the context dies, or the campaign stalls.
// Quarantined cells alone are not an error — they are reported in the
// Report so degradation is explicit, never silent.
func (c *Coordinator) Run(ctx context.Context, reqs []service.CellRequest) (*Report, error) {
	if len(reqs) == 0 {
		return &Report{Workers: c.cfg.Workers}, nil
	}
	metas := make([]obs.CellMeta, len(reqs))
	for i, r := range reqs {
		metas[i] = obs.CellMeta{Workload: r.Workload, Scheme: r.Scheme, Profile: r.Profile}
	}
	c.cfg.Tracker.BeginPhase("dist")
	base := c.cfg.Tracker.AddCells(metas)

	c.mu.Lock()
	c.tasks = make([]*task, len(reqs))
	c.queue = c.queue[:0]
	c.remain = len(reqs)
	c.lastBeat = time.Now()
	for i, r := range reqs {
		c.tasks[i] = &task{idx: i, req: r, trkIdx: base + i, queued: true, inflight: map[string]func(){}}
		c.queue = append(c.queue, i)
	}
	c.rep = Report{Workers: c.cfg.Workers}
	c.mu.Unlock()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	for wi := range c.clients {
		for lane := 0; lane < c.cfg.LanesPerWorker; lane++ {
			wg.Add(1)
			laneID := wi*c.cfg.LanesPerWorker + lane
			go func(wi, laneID int) {
				defer wg.Done()
				c.lane(runCtx, wi, laneID)
			}(wi, laneID)
		}
	}
	wg.Add(2)
	go func() { defer wg.Done(); c.hedger(runCtx) }()
	go func() { defer wg.Done(); c.stallMonitor(runCtx) }()

	select {
	case <-c.doneCh:
	case <-runCtx.Done():
	}
	cancel()
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	for _, t := range c.tasks {
		switch {
		case t.done:
			c.rep.Completed = append(c.rep.Completed, t.out)
		case t.quarantined:
			c.rep.Quarantined = append(c.rep.Quarantined,
				Quarantined{Cell: t.req, Attempts: t.attempts, LastError: t.lastErr})
		}
	}
	rep := c.rep
	err := c.runErr
	if err == nil && ctx.Err() != nil && c.remain > 0 {
		err = ctx.Err()
	}
	return &rep, err
}

// lane is one worker's dispatch loop: claim the next runnable task,
// lease it to this worker, classify the outcome, repeat.
func (c *Coordinator) lane(ctx context.Context, wi, laneID int) {
	for {
		if !c.waitBench(ctx, wi) {
			return
		}
		t := c.next(ctx)
		if t == nil {
			return
		}
		c.dispatch(ctx, wi, laneID, t)
	}
}

// waitBench sleeps out the worker's cooldown; false means the run ended.
func (c *Coordinator) waitBench(ctx context.Context, wi int) bool {
	for {
		c.mu.Lock()
		d := time.Until(c.bench[wi].until)
		c.mu.Unlock()
		if d <= 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return false
		case <-c.doneCh:
			return false
		case <-time.After(d):
		}
	}
}

// next claims the first runnable queued task, blocking until one exists.
// nil means the campaign is over (done, canceled).
func (c *Coordinator) next(ctx context.Context) *task {
	for {
		c.mu.Lock()
		now := time.Now()
		var claimed *task
		minWait := time.Duration(-1)
		keep := c.queue[:0] // filter in place; reads stay ahead of writes
		for _, ti := range c.queue {
			t := c.tasks[ti]
			if t.done || t.quarantined {
				continue // stale entry (won or retired while queued)
			}
			if claimed == nil {
				if wait := t.notBefore.Sub(now); wait <= 0 {
					claimed = t
					t.queued = false
					continue
				} else if minWait < 0 || wait < minWait {
					minWait = wait
				}
			}
			keep = append(keep, ti)
		}
		c.queue = keep
		c.mu.Unlock()
		if claimed != nil {
			return claimed
		}
		if minWait < 0 || minWait > 25*time.Millisecond {
			minWait = 25 * time.Millisecond // idle poll bound; enqueue wakes us sooner
		}
		select {
		case <-ctx.Done():
			return nil
		case <-c.doneCh:
			return nil
		case <-c.wake:
		case <-time.After(minWait):
		}
	}
}

// enqueue re-queues a task (idempotently) and wakes one lane. Callers
// hold c.mu.
func (c *Coordinator) enqueue(t *task, delay time.Duration) {
	if t.done || t.quarantined || t.queued {
		return
	}
	t.queued = true
	t.notBefore = time.Now().Add(delay)
	c.queue = append(c.queue, t.idx)
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// backoff returns the jittered delay before retry n (0-based): capped
// exponential with full jitter over the upper half.
func (c *Coordinator) backoff(n int) time.Duration {
	d := c.cfg.RetryBase
	for i := 0; i < n && d < c.cfg.RetryCap; i++ {
		d *= 2
	}
	if d > c.cfg.RetryCap {
		d = c.cfg.RetryCap
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

// dispatch issues one lease for t to worker wi and classifies the
// outcome.
func (c *Coordinator) dispatch(ctx context.Context, wi, laneID int, t *task) {
	c.mu.Lock()
	if t.done || t.quarantined {
		c.mu.Unlock()
		return
	}
	c.leaseSeq++
	leaseID := fmt.Sprintf("%s-%06d", c.runID, c.leaseSeq)
	t.attempts++
	attempt := t.attempts
	lctx, lcancel := context.WithTimeout(ctx, c.cfg.LeaseTTL)
	t.inflight[leaseID] = lcancel
	if len(t.inflight) == 1 {
		t.started = time.Now()
	}
	c.mu.Unlock()
	defer lcancel()

	c.cfg.Tracker.Start(laneID, t.trkIdx)
	resp, err := c.clients[wi].Lease(lctx, service.LeaseRequest{
		LeaseID: leaseID,
		Attempt: attempt,
		TTLMs:   c.cfg.LeaseTTL.Milliseconds(),
		Cell:    t.req,
	})

	c.mu.Lock()
	delete(t.inflight, leaseID)
	if err == nil {
		c.bench[wi] = benchState{}
		c.lastBeat = time.Now()
		if resp.Result == nil || resp.Result.Record == nil {
			// A 200 without a record is a torn response; transient.
			c.rep.Reissues++
			c.enqueue(t, 0)
			c.mu.Unlock()
			return
		}
		if got := resp.Result.Record.Digest(); got != resp.Result.Digest {
			// The worker's own digest disagrees with its record: corrupt
			// in flight or a sick worker. Never accept; re-prove elsewhere.
			c.rep.DigestMismatches++
			c.rep.Reissues++
			c.cfg.Log.Warn("lease completion failed digest check — re-issuing",
				"worker", c.cfg.Workers[wi], "lease", leaseID,
				"claimed", resp.Result.Digest, "computed", got)
			c.benchLocked(wi)
			c.enqueue(t, 0)
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		c.complete(laneID, t, resp)
		return
	}

	if ctx.Err() != nil {
		c.mu.Unlock()
		return // run over; Run assembles the report
	}
	if t.done || t.quarantined {
		// The cell reached a terminal state on another lane while we
		// were out; this lease was canceled (work stealing) or wasted.
		c.rep.CanceledLeases++
		c.mu.Unlock()
		return
	}
	c.classify(wi, laneID, t, lctx, err)
	c.mu.Unlock()
}

// classify handles a failed lease. Callers hold c.mu; run ctx is alive
// and t is not terminal.
func (c *Coordinator) classify(wi, laneID int, t *task, lctx context.Context, err error) {
	t.lastErr = err.Error()
	var se *service.StatusError
	switch {
	case errors.Is(lctx.Err(), context.DeadlineExceeded):
		// Lease TTL expired: the worker is hung or the cell outran the
		// TTL. Steal the work: re-issue elsewhere, bench the worker.
		c.rep.Expired++
		c.rep.Reissues++
		c.benchLocked(wi)
		c.enqueue(t, 0)
	case errors.As(err, &se) && se.Status == 400:
		// A request the service rejects is poisoned everywhere, forever.
		c.lastBeat = time.Now()
		c.quarantineLocked(laneID, t, err)
	case errors.As(err, &se) && (se.Status == 502 || se.Status == 503 || se.Status == 504):
		// Draining worker or gateway hiccup: transient, not the cell's
		// fault. Route around.
		c.lastBeat = time.Now()
		c.rep.Reissues++
		c.benchLocked(wi)
		c.enqueue(t, 0)
	case errors.As(err, &se):
		// A 500-class answer is a deterministic compute failure (panic,
		// no-progress, chaos): retry with backoff, quarantine at the cap.
		c.lastBeat = time.Now()
		t.failures++
		if t.failures >= c.cfg.MaxAttempts {
			c.quarantineLocked(laneID, t, err)
			return
		}
		c.rep.Retries++
		c.enqueue(t, c.backoff(t.failures-1))
	case errors.Is(err, context.Canceled):
		// Our own cancel without t.done: the run is shutting down via a
		// path ctx.Err() hasn't surfaced yet. Leave the task; Run reports
		// it as incomplete.
	default:
		// Connection-level: dial refused, reset, torn body. The worker is
		// the suspect, not the cell.
		c.rep.ConnFailures++
		c.rep.Reissues++
		c.benchLocked(wi)
		c.enqueue(t, 0)
	}
}

// benchLocked extends a worker's cooldown after a connection-level
// failure. Callers hold c.mu.
func (c *Coordinator) benchLocked(wi int) {
	b := &c.bench[wi]
	d := benchBase
	for i := 0; i < b.streak && d < benchCap; i++ {
		d *= 2
	}
	if d > benchCap {
		d = benchCap
	}
	b.streak++
	b.until = time.Now().Add(d)
}

// quarantineLocked retires a poisoned cell: reported, never retried
// again, never silently dropped. Callers hold c.mu.
func (c *Coordinator) quarantineLocked(laneID int, t *task, err error) {
	t.quarantined = true
	t.lastErr = err.Error()
	c.cfg.Tracker.Fail(laneID, t.trkIdx, err, false)
	c.cfg.Log.Warn("cell quarantined",
		"workload", t.req.Workload, "scheme", t.req.Scheme,
		"attempts", t.attempts, "failures", t.failures, "err", err)
	c.retireLocked(t)
}

// retireLocked finishes a task's lifecycle. Callers hold c.mu.
func (c *Coordinator) retireLocked(t *task) {
	for _, cancel := range t.inflight {
		cancel()
	}
	c.remain--
	if c.remain == 0 {
		c.closeDoneLocked()
	}
}

// closeDoneLocked closes doneCh exactly once (fail and the last retire
// can race). Callers hold c.mu.
func (c *Coordinator) closeDoneLocked() {
	select {
	case <-c.doneCh:
	default:
		close(c.doneCh)
	}
}

// complete accepts the first completion for a task: dedup, cancel the
// losing leases, append to the merged journal (before the task counts
// as finished, so Run never returns with appends still in flight).
func (c *Coordinator) complete(laneID int, t *task, resp *service.LeaseResponse) {
	r := resp.Result
	c.mu.Lock()
	if t.done || t.quarantined {
		c.rep.Duplicates++
		if t.done && t.out.Digest != r.Digest {
			// Two workers proved the same cell with different digests:
			// the determinism contract is broken. Loudly visible.
			c.rep.DigestMismatches++
			c.cfg.Log.Error("duplicate completion digest mismatch",
				"workload", t.req.Workload, "scheme", t.req.Scheme,
				"first", t.out.Digest, "second", r.Digest, "worker", resp.Worker)
		}
		c.mu.Unlock()
		return
	}
	t.done = true
	t.out = Outcome{
		Cell: t.req, Key: r.Key, Digest: r.Digest, Tier: r.Tier,
		Worker: resp.Worker, Attempts: t.attempts,
	}
	for id, cancel := range t.inflight {
		if id != resp.LeaseID {
			cancel()
		}
	}
	cell, rec := r.Cell, r.Record
	c.mu.Unlock()

	c.cfg.Tracker.Done(laneID, t.trkIdx)
	if c.cfg.MergeJournal != nil {
		if err := c.cfg.MergeJournal.Append(cell, rec); err != nil {
			c.fail(fmt.Errorf("dist: merged journal append: %w", err))
			return
		}
	}

	c.mu.Lock()
	c.retireLocked(t)
	c.mu.Unlock()
}

// fail records the first hard campaign error and stops the run.
func (c *Coordinator) fail(err error) {
	c.mu.Lock()
	if c.runErr == nil {
		c.runErr = err
	}
	c.closeDoneLocked()
	c.mu.Unlock()
}

// hedger is the straggler scan: once the tracker's latency window is
// warm, any cell with exactly one lease in flight for more than
// HedgeK×p95 is re-enqueued, so another lane races the straggler and
// the first completion cancels the loser.
func (c *Coordinator) hedger(ctx context.Context) {
	tick := time.NewTicker(c.cfg.HedgeInterval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.doneCh:
			return
		case <-tick.C:
		}
		p := c.cfg.Tracker.Progress()
		if p.Done < 8 || p.P95Ms <= 0 {
			continue // too early to know what "slow" means
		}
		limit := time.Duration(c.cfg.HedgeK * p.P95Ms * float64(time.Millisecond))
		now := time.Now()
		c.mu.Lock()
		for _, t := range c.tasks {
			if t.done || t.quarantined || t.queued || len(t.inflight) != 1 {
				continue
			}
			if now.Sub(t.started) <= limit {
				continue
			}
			c.rep.Hedges++
			c.rep.Reissues++
			c.cfg.Log.Info("hedging straggler cell",
				"workload", t.req.Workload, "scheme", t.req.Scheme,
				"elapsed", now.Sub(t.started).Round(time.Millisecond),
				"p95_ms", p.P95Ms, "k", c.cfg.HedgeK)
			c.enqueue(t, 0)
		}
		c.mu.Unlock()
	}
}

// stallMonitor fails the campaign when no worker has answered anything
// for StallTimeout — the every-worker-is-gone bound that keeps reissue
// loops from spinning forever.
func (c *Coordinator) stallMonitor(ctx context.Context) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.doneCh:
			return
		case <-tick.C:
		}
		c.mu.Lock()
		stalled := time.Since(c.lastBeat) > c.cfg.StallTimeout
		c.mu.Unlock()
		if stalled {
			c.fail(fmt.Errorf("dist: campaign stalled — no worker response in %v", c.cfg.StallTimeout))
			return
		}
	}
}
