// Package config centralizes every simulation parameter: the Table 1
// machine configuration (voltages, latencies, capacitor, cache geometry,
// persist-buffer size, propagation delays) and the energy model constants
// the paper inherits from NVPSim.
//
// Where the paper gives a number, the default reproduces it exactly. The
// remaining energy constants were chosen once, during calibration against
// the paper's reported aggregate shapes, and are shared by every
// experiment (see DESIGN.md, "Calibration, not curve-fitting").
package config

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
)

// Params is the full parameter set for one simulation.
type Params struct {
	// ---- core timing ----

	// CycleNs is the single-issue core's cycle time in nanoseconds. All
	// non-memory instructions take one cycle; Mul takes MulCycles and
	// Div/Rem DivCycles.
	CycleNs   int64
	MulCycles int64
	DivCycles int64

	// ---- NVM (Table 1: ReRAM, 120 ns write / 20 ns read, 16 MB) ----

	NVMSize        int64
	NVMReadNs      int64 // word-granular read latency
	NVMWriteNs     int64 // word-granular write latency
	NVMLineReadNs  int64 // 64 B line fill latency
	NVMLineWriteNs int64 // 64 B line writeback latency

	// NVPFetchNs is the instruction fetch latency of the cache-free NVP,
	// which fetches every instruction from NVM. Cache-enabled designs
	// keep the paper's NVM-technology L1I whose hit time is folded into
	// the 1-cycle base cost.
	NVPFetchNs int64

	// ---- SRAM cache (Table 1: 4 kB, 2-way) ----

	CacheSize int
	CacheWays int

	// ---- persist buffers (Section 4.5) ----

	// StoreThreshold is the persist-buffer capacity in entries and the
	// compiler's region store bound.
	StoreThreshold int
	// FlushPerLineNs is the s-phase1 per-line cost of flushing a dirty
	// cacheline into the NVM-resident buffer.
	FlushPerLineNs int64
	// DrainPerLineNs is the s-phase2 per-line cost of the DMA moving
	// buffer entries to their home NVM locations (DMA burst throughput,
	// Section 3.2).
	DrainPerLineNs int64
	// SearchPerEntryNs is the sequential buffer-search cost per entry on
	// a load miss (NVM-resident buffer, Section 4.4); SearchBaseNs is
	// charged per searched buffer even when it has no entries (reading
	// the FIFO metadata). The empty-bit variant skips empty buffers
	// entirely.
	SearchPerEntryNs int64
	SearchBaseNs     int64

	// ---- ReplayCache ----

	// ClwbQueueDepth is the number of in-flight asynchronous line
	// writebacks; a clwb with a full queue stalls.
	ClwbQueueDepth int

	// ---- voltages (Table 1) ----

	Vmax float64 // fully-charged capacitor
	Vmin float64 // brown-out: execution is impossible below this

	// VBackup is the JIT-checkpoint trigger voltage (unused by
	// SweepCache). VRestore is the reboot voltage.
	VBackup  float64
	VRestore float64

	// CapacitorF is the storage capacitance in farads (Table 1: 470 nF).
	CapacitorF float64

	// VBackupBoost raises the JIT backup threshold by this fraction of
	// the (Vmax - VBackup) headroom, modelling the safety margin that
	// capacitor degradation forces (Section 2.2). 0 disables it.
	VBackupBoost float64

	// ---- propagation delays (Table 1, Section 2.2) ----

	// BackupDelayNs (T_phl) elapses between the monitor tripping and the
	// backup starting; RestoreDelayNs (T_plh) between reaching VRestore
	// and execution resuming.
	BackupDelayNs  int64
	RestoreDelayNs int64
	// SweepRestoreDelayNs is the restore delay of SweepCache's simpler
	// single-threshold comparator (Table 1: 1.1 us; raised to 10.3 us in
	// the Figure 11a sensitivity study).
	SweepRestoreDelayNs int64

	// ---- energy model (NVPSim-style, joules) ----

	// EInstr is the core energy of one instruction's execute stage;
	// ESRAMAccess the L1D hit energy; ENVMRead/ENVMWrite word-granular
	// NVM access energies; ENVMLineRead/ENVMLineWrite 64 B transfers.
	EInstr        float64
	ESRAMAccess   float64
	ENVMRead      float64
	ENVMWrite     float64
	ENVMLineRead  float64
	ENVMLineWrite float64

	// EBackupFixed is the fixed JIT backup energy (register file to NVFF
	// with the parallel-transfer inrush the paper describes);
	// EBackupPerLine is the additional cost per cacheline backed up to
	// the NVSRAM counterpart. ERestoreFixed/ERestorePerLine are the
	// corresponding restore costs; ESweepRestore is SweepCache's much
	// lighter software restore (checkpoint-array reads).
	EBackupFixed    float64
	EBackupPerLine  float64
	ERestoreFixed   float64
	ERestorePerLine float64
	ESweepRestore   float64

	// PSleep is the drawn power while waiting for recharge (monitor +
	// leakage); PRun is the static power while running, on top of
	// per-operation energies.
	PSleep float64
	PRun   float64

	// BackupTimeNs/RestoreTimeNs are the fixed parts of JIT backup and
	// restore, plus per-line costs for cache backup schemes.
	BackupTimeNs     int64
	BackupPerLineNs  int64
	RestoreTimeNs    int64
	RestorePerLineNs int64

	// ---- NvMR (Section 6.7) ----

	// NvMRRenameCap is the number of distinct renamed lines after which
	// NvMR must take another backup to free rename resources.
	NvMRRenameCap int

	// ---- ablations ----

	// SweepSingleBuffer disables region-level parallelism: a region end
	// stalls until its own buffer finishes s-phase2, reproducing
	// Figure 3's "No Parallelism Case".
	SweepSingleBuffer bool
	// CompilerUnrollCap overrides the compiler's loop-unrolling factor
	// cap (0 = default; 1 disables unrolling).
	CompilerUnrollCap int
	// CompilerInline enables the Section 5 small-function inlining
	// optimization.
	CompilerInline bool
	// SweepVmin, when positive, overrides Vmin for SweepCache only —
	// Table 1's footnote: the simpler single-threshold comparator can
	// afford a lower brown-out voltage (the paper cites 1.8 V for an
	// extra 10-15%).
	SweepVmin float64
}

// Default returns the paper's configuration (Table 1) for the given
// scheme-independent machine; scheme-specific voltage thresholds are
// selected by the scheme constructors via the With* helpers.
func Default() Params {
	return Params{
		CycleNs:   2, // 500 MHz in-order core
		MulCycles: 3,
		DivCycles: 12,

		NVMSize:        16 << 20,
		NVMReadNs:      20,
		NVMWriteNs:     120,
		NVMLineReadNs:  40,
		NVMLineWriteNs: 120,
		NVPFetchNs:     20,

		CacheSize: 4 << 10,
		CacheWays: 2,

		StoreThreshold:   64,
		FlushPerLineNs:   10,
		DrainPerLineNs:   15,
		SearchPerEntryNs: 20,
		SearchBaseNs:     20,

		ClwbQueueDepth: 4,

		Vmax:       3.5,
		Vmin:       2.8,
		VBackup:    2.9, // NVP/ReplayCache default; NVSRAM overrides
		VRestore:   3.2,
		CapacitorF: 470e-9,

		BackupDelayNs:       1500,  // T_phl = 1.5 us
		RestoreDelayNs:      10300, // T_plh = 10.3 us
		SweepRestoreDelayNs: 1100,

		EInstr:        2e-12,
		ESRAMAccess:   1e-12,
		ENVMRead:      10e-12,
		ENVMWrite:     30e-12,
		ENVMLineRead:  20e-12,
		ENVMLineWrite: 10e-12,

		EBackupFixed:    150e-9,
		EBackupPerLine:  2e-9,
		ERestoreFixed:   60e-9,
		ERestorePerLine: 1e-9,
		ESweepRestore:   5e-9,

		PSleep: 2e-6,
		PRun:   10e-3,

		BackupTimeNs:     1000,
		BackupPerLineNs:  60,
		RestoreTimeNs:    500,
		RestorePerLineNs: 40,

		NvMRRenameCap: 16,
	}
}

// boost applies the Section 2.2 degradation margin to a JIT backup
// threshold.
func (p Params) boost() Params {
	if p.VBackupBoost > 0 {
		p.VBackup += p.VBackupBoost * (p.Vmax - p.VBackup)
		if p.VBackup >= p.VRestore {
			p.VBackup = p.VRestore - 0.05
		}
	}
	return p
}

// WithNVPThresholds returns p with the NVP/ReplayCache voltage settings
// (Table 1: backup 2.9, restore 3.2).
func (p Params) WithNVPThresholds() Params {
	p.VBackup, p.VRestore = 2.9, 3.2
	return p.boost()
}

// WithNVSRAMThresholds returns p with the NVSRAM voltage settings
// (Table 1: backup 3.2, restore 3.4 — the headroom that guarantees a
// failure-atomic whole-cache backup).
func (p Params) WithNVSRAMThresholds() Params {
	p.VBackup, p.VRestore = 3.2, 3.4
	return p.boost()
}

// WithSweepThresholds returns p with SweepCache's settings: no backup
// threshold, restore at 3.3, and the cheap single-threshold comparator's
// restore propagation delay (Table 1: 1.1 us; no backup delay).
func (p Params) WithSweepThresholds() Params {
	p.VBackup = 0 // unused: SweepCache runs down to Vmin
	p.VRestore = 3.3
	p.BackupDelayNs = 0
	p.RestoreDelayNs = p.SweepRestoreDelayNs
	if p.SweepVmin > 0 {
		p.Vmin = p.SweepVmin
	}
	return p
}

// UsableEnergy returns the energy between two voltages on this capacitor.
func (p Params) UsableEnergy(vhi, vlo float64) float64 {
	return 0.5 * p.CapacitorF * (vhi*vhi - vlo*vlo)
}

// Validate reports the first scheme-independent inconsistency in p as a
// descriptive error, instead of letting a malformed configuration surface
// downstream as a NaN energy ledger, a zero-set cache panic, or an
// infinite recharge loop. The dynamic-only failure modes — most notably a
// restore threshold at or below the brown-out voltage, which Table 1
// studies deliberately explore — stay with the engine's forward-progress
// guard (ErrNoProgress) rather than being rejected here.
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Vmax", p.Vmax}, {"Vmin", p.Vmin}, {"VBackup", p.VBackup},
		{"VRestore", p.VRestore}, {"CapacitorF", p.CapacitorF},
		{"VBackupBoost", p.VBackupBoost}, {"SweepVmin", p.SweepVmin},
		{"EInstr", p.EInstr}, {"ESRAMAccess", p.ESRAMAccess},
		{"ENVMRead", p.ENVMRead}, {"ENVMWrite", p.ENVMWrite},
		{"ENVMLineRead", p.ENVMLineRead}, {"ENVMLineWrite", p.ENVMLineWrite},
		{"EBackupFixed", p.EBackupFixed}, {"EBackupPerLine", p.EBackupPerLine},
		{"ERestoreFixed", p.ERestoreFixed}, {"ERestorePerLine", p.ERestorePerLine},
		{"ESweepRestore", p.ESweepRestore}, {"PSleep", p.PSleep}, {"PRun", p.PRun},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("config: %s is %v — every energy/voltage parameter must be finite", f.name, f.v)
		}
		if f.v < 0 {
			return fmt.Errorf("config: %s is negative (%v)", f.name, f.v)
		}
	}
	if p.CapacitorF <= 0 {
		return fmt.Errorf("config: non-positive capacitor size %v F — the energy buffer must store something", p.CapacitorF)
	}
	if p.Vmax <= 0 || p.Vmin <= 0 {
		return fmt.Errorf("config: voltages must be positive (Vmax %v, Vmin %v)", p.Vmax, p.Vmin)
	}
	if p.Vmax <= p.Vmin {
		return fmt.Errorf("config: Vmax %v must exceed Vmin %v — no usable energy window", p.Vmax, p.Vmin)
	}
	if p.VRestore > p.Vmax {
		return fmt.Errorf("config: VRestore %v above Vmax %v — the capacitor can never reach the restore threshold", p.VRestore, p.Vmax)
	}
	if p.PRun <= 0 {
		return fmt.Errorf("config: non-positive run power %v W", p.PRun)
	}
	if p.CycleNs <= 0 || p.MulCycles <= 0 || p.DivCycles <= 0 {
		return fmt.Errorf("config: core timing must be positive (CycleNs %d, MulCycles %d, DivCycles %d)",
			p.CycleNs, p.MulCycles, p.DivCycles)
	}
	if p.NVMSize <= 0 {
		return fmt.Errorf("config: non-positive NVM size %d", p.NVMSize)
	}
	if p.NVMReadNs < 0 || p.NVMWriteNs < 0 || p.NVMLineReadNs < 0 || p.NVMLineWriteNs < 0 || p.NVPFetchNs < 0 {
		return fmt.Errorf("config: negative NVM latency")
	}
	if p.BackupDelayNs < 0 || p.RestoreDelayNs < 0 || p.SweepRestoreDelayNs < 0 {
		return fmt.Errorf("config: negative propagation delay")
	}
	if p.BackupTimeNs < 0 || p.BackupPerLineNs < 0 || p.RestoreTimeNs < 0 || p.RestorePerLineNs < 0 {
		return fmt.Errorf("config: negative backup/restore time")
	}
	if p.CacheSize <= 0 || p.CacheWays <= 0 {
		return fmt.Errorf("config: cache geometry must be positive (size %d, ways %d)", p.CacheSize, p.CacheWays)
	}
	if p.CacheSize < 64*p.CacheWays {
		return fmt.Errorf("config: cache size %d below one 64 B line per way (%d ways)", p.CacheSize, p.CacheWays)
	}
	if p.StoreThreshold <= 0 {
		return fmt.Errorf("config: non-positive store threshold %d — persist buffers need capacity", p.StoreThreshold)
	}
	if p.ClwbQueueDepth <= 0 {
		return fmt.Errorf("config: non-positive clwb queue depth %d", p.ClwbQueueDepth)
	}
	if p.NvMRRenameCap <= 0 {
		return fmt.Errorf("config: non-positive NvMR rename capacity %d", p.NvMRRenameCap)
	}
	return nil
}

// ValidateJIT layers the JIT-checkpoint threshold ordering on top of
// Validate: a backup trigger at or below the brown-out voltage can never
// fire before state is lost, and one at or above the restore threshold
// fires the instant execution resumes. Only meaningful for schemes that
// JIT-checkpoint under harvested power; SweepCache runs with VBackup 0.
func (p Params) ValidateJIT() error {
	if p.VBackup <= p.Vmin {
		return fmt.Errorf("config: VBackup %v at or below Vmin %v — the JIT backup would fire after brown-out", p.VBackup, p.Vmin)
	}
	if p.VBackup >= p.VRestore {
		return fmt.Errorf("config: VBackup %v at or above VRestore %v — execution would re-backup immediately on restore", p.VBackup, p.VRestore)
	}
	return nil
}

// FromJSON decodes a partial parameter override on top of Default() and
// validates the merged result: absent fields keep their Table 1 values,
// unknown fields are an error, and a decoded set that fails Validate is
// rejected here rather than mid-experiment. This is the `-params file`
// path of cmd/sweepsim and cmd/sweepexp.
func FromJSON(data []byte) (Params, error) {
	p := Default()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return Params{}, fmt.Errorf("config: decode params: %w", err)
	}
	// Trailing garbage after the object is malformed input, not silence.
	if dec.More() {
		return Params{}, fmt.Errorf("config: trailing data after params object")
	}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// Fingerprint returns a short stable content hash over every field of p.
// Two parameter sets share a fingerprint exactly when every field matches
// bit for bit (Go renders floats in shortest round-trip form), which is
// what keys journalled experiment cells to their configuration.
func (p Params) Fingerprint() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%#v", p)))
	return hex.EncodeToString(h[:16])
}
