package config

import "testing"

func TestDefaultMatchesTable1(t *testing.T) {
	p := Default()
	if p.Vmax != 3.5 || p.Vmin != 2.8 {
		t.Error("Vmax/Vmin")
	}
	if p.CapacitorF != 470e-9 {
		t.Error("capacitor")
	}
	if p.NVMSize != 16<<20 || p.NVMWriteNs != 120 || p.NVMReadNs != 20 {
		t.Error("NVM parameters")
	}
	if p.CacheSize != 4<<10 || p.CacheWays != 2 {
		t.Error("cache geometry")
	}
	if p.StoreThreshold != 64 {
		t.Error("store threshold")
	}
	if p.BackupDelayNs != 1500 || p.RestoreDelayNs != 10300 || p.SweepRestoreDelayNs != 1100 {
		t.Error("propagation delays")
	}
}

func TestThresholdSelectors(t *testing.T) {
	p := Default()
	nvp := p.WithNVPThresholds()
	if nvp.VBackup != 2.9 || nvp.VRestore != 3.2 {
		t.Error("NVP thresholds")
	}
	nvs := p.WithNVSRAMThresholds()
	if nvs.VBackup != 3.2 || nvs.VRestore != 3.4 {
		t.Error("NVSRAM thresholds")
	}
	sw := p.WithSweepThresholds()
	if sw.VBackup != 0 || sw.VRestore != 3.3 {
		t.Error("Sweep thresholds")
	}
	if sw.BackupDelayNs != 0 || sw.RestoreDelayNs != 1100 {
		t.Error("Sweep delays")
	}
}

func TestVBackupBoost(t *testing.T) {
	p := Default()
	p.VBackupBoost = 0.4
	boosted := p.WithNVPThresholds()
	plain := Default().WithNVPThresholds()
	if boosted.VBackup <= plain.VBackup {
		t.Error("boost did not raise the threshold")
	}
	if boosted.VBackup >= boosted.VRestore {
		t.Error("boost crossed the restore threshold")
	}
}

func TestUsableEnergy(t *testing.T) {
	p := Default()
	got := p.UsableEnergy(3.5, 2.8)
	want := 0.5 * 470e-9 * (3.5*3.5 - 2.8*2.8)
	if diff := got - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("usable energy %g want %g", got, want)
	}
}
