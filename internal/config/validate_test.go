package config

import (
	"math"
	"strings"
	"testing"
)

func TestValidateDefault(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() must validate: %v", err)
	}
	if err := Default().ValidateJIT(); err != nil {
		t.Fatalf("Default() must satisfy the JIT ordering: %v", err)
	}
	if err := Default().WithSweepThresholds().Validate(); err != nil {
		t.Fatalf("sweep thresholds must validate: %v", err)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Params)
		want string // substring of the error
	}{
		{"nan voltage", func(p *Params) { p.Vmax = math.NaN() }, "finite"},
		{"inf energy", func(p *Params) { p.EInstr = math.Inf(1) }, "finite"},
		{"negative energy", func(p *Params) { p.ENVMWrite = -1e-12 }, "negative"},
		{"zero capacitor", func(p *Params) { p.CapacitorF = 0 }, "capacitor"},
		{"negative capacitor", func(p *Params) { p.CapacitorF = -470e-9 }, "negative"},
		{"vmax below vmin", func(p *Params) { p.Vmax, p.Vmin = 1.0, 2.0 }, "usable energy"},
		{"restore above vmax", func(p *Params) { p.VRestore = p.Vmax + 1 }, "restore"},
		{"zero run power", func(p *Params) { p.PRun = 0 }, "run power"},
		{"zero cycle", func(p *Params) { p.CycleNs = 0 }, "timing"},
		{"zero nvm", func(p *Params) { p.NVMSize = 0 }, "NVM size"},
		{"negative latency", func(p *Params) { p.NVMWriteNs = -1 }, "latency"},
		{"negative delay", func(p *Params) { p.RestoreDelayNs = -1 }, "delay"},
		{"zero cache", func(p *Params) { p.CacheSize = 0 }, "cache"},
		{"cache below one line per way", func(p *Params) { p.CacheSize = 64 }, "64 B line"},
		{"zero store threshold", func(p *Params) { p.StoreThreshold = 0 }, "store threshold"},
		{"zero clwb depth", func(p *Params) { p.ClwbQueueDepth = 0 }, "clwb"},
		{"zero rename cap", func(p *Params) { p.NvMRRenameCap = 0 }, "rename"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Default()
			tc.mut(&p)
			err := p.Validate()
			if err == nil {
				t.Fatal("Validate accepted a malformed configuration")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestValidateJITOrdering(t *testing.T) {
	p := Default()
	p.VBackup = p.Vmin // trigger at brown-out: backup can never fire in time
	if err := p.ValidateJIT(); err == nil || !strings.Contains(err.Error(), "Vmin") {
		t.Errorf("VBackup <= Vmin: err = %v", err)
	}
	p = Default()
	p.VBackup = p.VRestore
	if err := p.ValidateJIT(); err == nil || !strings.Contains(err.Error(), "VRestore") {
		t.Errorf("VBackup >= VRestore: err = %v", err)
	}
}

// TestValidateAllowsDynamicNoProgress pins that the static validator does
// NOT reject a restore threshold at or below the brown-out floor: the
// Table 1 sweep-Vmin study runs such configurations on purpose and relies
// on the engine's ErrNoProgress guard instead.
func TestValidateAllowsDynamicNoProgress(t *testing.T) {
	p := Default()
	p.SweepVmin = 3.4 // above the 3.3 V sweep restore threshold
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate must leave dynamic no-progress configs to the engine: %v", err)
	}
	if err := p.WithSweepThresholds().Validate(); err != nil {
		t.Fatalf("WithSweepThresholds: %v", err)
	}
}

func TestFromJSON(t *testing.T) {
	p, err := FromJSON([]byte(`{"CapacitorF": 100e-9, "CacheSize": 8192}`))
	if err != nil {
		t.Fatal(err)
	}
	if p.CapacitorF != 100e-9 || p.CacheSize != 8192 {
		t.Errorf("override not applied: cap=%v cache=%d", p.CapacitorF, p.CacheSize)
	}
	if p.Vmax != Default().Vmax {
		t.Error("absent fields must keep their defaults")
	}

	if _, err := FromJSON([]byte(`{"NoSuchKnob": 1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	if _, err := FromJSON([]byte(`{"CapacitorF": 100e-9} trailing`)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := FromJSON([]byte(`{"CapacitorF": -1}`)); err == nil {
		t.Error("invalid merged config accepted")
	}
	if _, err := FromJSON([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestFingerprint(t *testing.T) {
	a, b := Default(), Default()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("identical params must share a fingerprint")
	}
	b.CapacitorF += 1e-12
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("a one-bit parameter change must change the fingerprint")
	}
	if n := len(a.Fingerprint()); n != 32 {
		t.Errorf("fingerprint length %d, want 32 hex chars", n)
	}
}
