package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/ir"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// recordRun executes one traced simulation and returns the JSONL encoding
// of its telemetry stream.
func recordRun(t *testing.T, kind arch.Kind) []byte {
	t.Helper()
	w, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	sink := &telemetry.MemorySink{}
	tr := telemetry.NewTracer(sink, 64) // small buffer: exercise mid-run flushes
	src := trace.New(trace.RFOffice, 1)
	build := func() *ir.Program { return w.Build(1) }
	res, err := RunTraced(build, kind, config.Default(), src, tr)
	if err != nil {
		t.Fatalf("%v run: %v", kind, err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("%v close: %v", kind, err)
	}
	if len(sink.Events) == 0 {
		t.Fatalf("%v produced no telemetry events", kind)
	}
	if last := sink.Events[len(sink.Events)-1]; last.Kind != telemetry.EvHalt {
		t.Fatalf("%v stream does not end in halt: %v", kind, last.Kind)
	}
	if res.Outages == 0 {
		t.Fatalf("%v saw no outages under RFOffice", kind)
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSONL(&buf, sink.Events); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTelemetryDeterministic runs the identical simulation twice and
// demands byte-identical telemetry streams — the property that makes
// recorded traces diffable across code changes.
func TestTelemetryDeterministic(t *testing.T) {
	for _, kind := range []arch.Kind{arch.SweepEmptyBit, arch.NVP, arch.ReplayCache} {
		kind := kind
		t.Run(fmt.Sprint(kind), func(t *testing.T) {
			a := recordRun(t, kind)
			b := recordRun(t, kind)
			if !bytes.Equal(a, b) {
				t.Fatalf("telemetry streams differ between identical runs (%d vs %d bytes)", len(a), len(b))
			}
		})
	}
}
