package core

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/ir"
	"repro/internal/workloads"
)

func testBuilder(t *testing.T, name string, builds *atomic.Int64) Builder {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return func() *ir.Program {
		if builds != nil {
			builds.Add(1)
		}
		return w.Build(1)
	}
}

func TestCompileCacheSharesByKey(t *testing.T) {
	cc := NewCompileCache()
	p := config.Default()
	var builds atomic.Int64
	b := testBuilder(t, "sha", &builds)

	a1, err := cc.Get(KeyFor("sha", 1, arch.NVP, p), b, arch.NVP, p)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := cc.Get(KeyFor("sha", 1, arch.NVP, p), b, arch.NVP, p)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("identical keys returned distinct compilations")
	}
	// NVSRAM shares NVP's plain compiler mode: same binary.
	a3, err := cc.Get(KeyFor("sha", 1, arch.NVSRAM, p), b, arch.NVSRAM, p)
	if err != nil {
		t.Fatal(err)
	}
	if a3 != a1 {
		t.Error("plain-mode schemes should share one compilation")
	}
	// SweepCache compiles in region mode: distinct binary.
	a4, err := cc.Get(KeyFor("sha", 1, arch.SweepEmptyBit, p), b, arch.SweepEmptyBit, p)
	if err != nil {
		t.Fatal(err)
	}
	if a4 == a1 {
		t.Error("different compiler modes shared a compilation")
	}
	// A compile-relevant parameter forks the key.
	p2 := p
	p2.StoreThreshold += 8
	a5, err := cc.Get(KeyFor("sha", 1, arch.SweepEmptyBit, p2), b, arch.SweepEmptyBit, p2)
	if err != nil {
		t.Fatal(err)
	}
	if a5 == a4 {
		t.Error("changed StoreThreshold shared a compilation")
	}
	if got, want := builds.Load(), int64(3); got != want {
		t.Errorf("builder invoked %d times, want %d", got, want)
	}
	if cc.Len() != 3 {
		t.Errorf("cache holds %d entries, want 3", cc.Len())
	}
}

func TestCompileCacheConcurrentSingleflight(t *testing.T) {
	cc := NewCompileCache()
	p := config.Default()
	var builds atomic.Int64
	b := testBuilder(t, "fft", &builds)
	key := KeyFor("fft", 1, arch.SweepEmptyBit, p)

	const n = 16
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cc.Get(key, b, arch.SweepEmptyBit, p)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Errorf("builder invoked %d times under concurrency, want 1", builds.Load())
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("goroutine %d got a different compilation", i)
		}
	}
}
