package core_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func builder(t *testing.T, name string) core.Builder {
	t.Helper()
	w, err := workloads.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return func() *ir.Program { return w.Build(1) }
}

// TestOutageFreeSchemesAgree runs one workload on every scheme without
// power failure and demands the identical checksum: the memory hierarchies
// must be functionally transparent.
func TestOutageFreeSchemesAgree(t *testing.T) {
	build := builder(t, "adpcmenc")
	p := config.Default()
	var ref int64
	for i, kind := range arch.AllKinds() {
		res, err := core.Run(build, kind, p, nil)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		sum := res.NVM.PeekWord(workloads.CheckAddr())
		if sum == 0 {
			t.Fatalf("%v: zero checksum", kind)
		}
		if i == 0 {
			ref = sum
		} else if sum != ref {
			t.Errorf("%v: checksum %#x, want %#x", kind, sum, ref)
		}
		t.Logf("%-16v time=%.3fms instrs=%d sum=%#x", kind,
			float64(res.TimeNs)/1e6, res.Counts.Executed, sum)
	}
}

// TestCrashConsistencySweep runs SweepCache under a harsh RF trace and
// checks the final data segment matches the outage-free run bit for bit —
// the paper's central crash-consistency claim.
func TestCrashConsistencySweep(t *testing.T) {
	build := builder(t, "adpcmenc")
	p := config.Default()
	golden, err := core.Run(build, arch.SweepEmptyBit, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []arch.Kind{arch.SweepEmptyBit, arch.SweepNVMSearch} {
		res, err := core.Run(build, kind, p, trace.New(trace.RFOffice, 42))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Outages == 0 {
			t.Errorf("%v: expected outages under RFOffice", kind)
		}
		got := res.NVM.PeekWord(workloads.CheckAddr())
		want := golden.NVM.PeekWord(workloads.CheckAddr())
		if got != want {
			t.Errorf("%v: checksum %#x after %d outages, want %#x", kind, got, res.Outages, want)
		}
		t.Logf("%v: outages=%d time=%.1fms charge=%.1fms", kind, res.Outages,
			float64(res.TimeNs)/1e6, float64(res.ChargeNs)/1e6)
	}
}

// TestCompare drives the multi-scheme comparison façade.
func TestCompare(t *testing.T) {
	build := builder(t, "sha")
	p := config.Default()
	pr := trace.RFOffice
	cmp, err := core.Compare(build, []arch.Kind{arch.SweepEmptyBit, arch.NVSRAM}, p, &pr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Baseline == nil || cmp.Results[arch.SweepEmptyBit] == nil {
		t.Fatal("missing results")
	}
	if s := cmp.SpeedupOver(arch.SweepEmptyBit); s <= 1 {
		t.Errorf("sweep speedup %f", s)
	}
	if core.Speedup(cmp.Baseline, cmp.Baseline) != 1 {
		t.Error("self speedup != 1")
	}
}
