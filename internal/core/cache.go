package core

import (
	"sync"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/config"
)

// CompileKey identifies one compilation output. Two cells of an
// experiment matrix share a binary exactly when their keys match: the
// same workload build (Workload and Scale must uniquely determine the
// Builder's program — builders are deterministic by contract) compiled
// under the same mode and the same compiler-relevant parameters. Scheme
// kinds that share a compiler mode (NVP, WTVCache, NVSRAM, NVSRAME,
// NvMR all run plain binaries) collapse onto one entry.
type CompileKey struct {
	Workload       string
	Scale          int
	Mode           compiler.Mode
	StoreThreshold int
	UnrollCap      int
	Inline         bool
}

// KeyFor returns the compile key for building workload at scale for kind
// under p. It must list every Params field the compiler reads — adding a
// compiler knob to config.Params means adding it here.
func KeyFor(workload string, scale int, kind arch.Kind, p config.Params) CompileKey {
	return CompileKey{
		Workload:       workload,
		Scale:          scale,
		Mode:           ModeFor(kind),
		StoreThreshold: p.StoreThreshold,
		UnrollCap:      p.CompilerUnrollCap,
		Inline:         p.CompilerInline,
	}
}

// CompileCache memoizes compiler results across an experiment matrix.
// A compiler.Result is immutable once linked — the engine only reads
// Code/Dec/Prog.Inits — so one entry is safely shared by concurrent
// simulations. Each key compiles exactly once even under concurrent
// lookups (per-entry sync.Once).
type CompileCache struct {
	mu sync.Mutex
	m  map[CompileKey]*cacheEntry
}

type cacheEntry struct {
	once sync.Once
	res  *compiler.Result
	err  error
}

// NewCompileCache returns an empty cache.
func NewCompileCache() *CompileCache {
	return &CompileCache{m: map[CompileKey]*cacheEntry{}}
}

// Get returns the cached compilation for key, invoking build (through
// Compile) at most once per key. Errors are cached alongside results so
// a failing compilation is not retried by every cell of a matrix.
func (cc *CompileCache) Get(key CompileKey, build Builder, kind arch.Kind, p config.Params) (*compiler.Result, error) {
	cc.mu.Lock()
	e := cc.m[key]
	if e == nil {
		e = &cacheEntry{}
		cc.m[key] = e
	}
	cc.mu.Unlock()
	e.once.Do(func() { e.res, e.err = Compile(build, kind, p) })
	return e.res, e.err
}

// Len reports how many distinct binaries the cache holds.
func (cc *CompileCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.m)
}

// shared is the process-wide cache the experiment drivers use: matrices
// for different figures recompile nothing the evaluation has already
// built.
var shared = NewCompileCache()

// SharedCompileCache returns the process-wide compile cache.
func SharedCompileCache() *CompileCache { return shared }
