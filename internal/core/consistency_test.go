package core_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// smallBuilder shrinks a workload for test speed while keeping its shape.
func smallBuilder(w workloads.Workload) core.Builder {
	return func() *ir.Program { return w.Build(1) }
}

// TestAllWorkloadsAllSchemesOutageFree is the master functional test:
// every workload must produce the same checksum on every scheme under an
// ideal supply — the memory hierarchies must never change program
// semantics.
func TestAllWorkloadsAllSchemesOutageFree(t *testing.T) {
	if testing.Short() {
		t.Skip("long differential sweep")
	}
	p := config.Default()
	for _, w := range workloads.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			t.Parallel()
			build := smallBuilder(w)
			var ref int64
			for i, kind := range arch.AllKinds() {
				res, err := core.Run(build, kind, p, nil)
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				sum := res.NVM.PeekWord(workloads.CheckAddr())
				if sum == 0 {
					t.Fatalf("%v: zero checksum", kind)
				}
				if i == 0 {
					ref = sum
				} else if sum != ref {
					t.Errorf("%v: checksum %#x, want %#x", kind, sum, ref)
				}
			}
		})
	}
}

// TestCrashConsistencyAllSchemes injects real power failures (several
// seeds of the harsh RFOffice trace) into every scheme on a few
// representative workloads and demands the final checksum match the
// outage-free run — the paper's correctness claim, verified end to end.
func TestCrashConsistencyAllSchemes(t *testing.T) {
	p := config.Default()
	names := []string{"adpcmenc", "sha", "patricia"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		w, err := workloads.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			build := smallBuilder(w)
			golden, err := core.Run(build, arch.NVP, p, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := golden.NVM.PeekWord(workloads.CheckAddr())
			for _, kind := range arch.AllKinds() {
				for seed := int64(1); seed <= 3; seed++ {
					res, err := core.Run(build, kind, p, trace.New(trace.RFOffice, seed))
					if err != nil {
						t.Fatalf("%v seed %d: %v", kind, seed, err)
					}
					got := res.NVM.PeekWord(workloads.CheckAddr())
					if got != want {
						t.Errorf("%v seed %d: checksum %#x after %d outages, want %#x",
							kind, seed, got, res.Outages, want)
					}
				}
			}
		})
	}
}

// TestOutagesActuallyHappen guards the crash tests against becoming
// vacuous: under RFOffice at 470 nF every scheme must see real outages.
func TestOutagesActuallyHappen(t *testing.T) {
	p := config.Default()
	w, err := workloads.ByName("adpcmenc")
	if err != nil {
		t.Fatal(err)
	}
	build := smallBuilder(w)
	for _, kind := range arch.AllKinds() {
		res, err := core.Run(build, kind, p, trace.New(trace.RFOffice, 7))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if res.Outages == 0 {
			t.Errorf("%v: no outages under RFOffice", kind)
		}
	}
}
