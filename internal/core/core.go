// Package core is the public façade of the SweepCache reproduction: it
// wires a workload builder through the right compiler mode for a scheme,
// constructs the machine, and runs the energy-coupled simulation. The
// examples and experiment drivers sit on top of this package.
package core

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Builder constructs a fresh program. Compilation is destructive, so every
// run must build anew; a Builder must be deterministic.
type Builder func() *ir.Program

// ModeFor maps a scheme to its compiler mode: SweepCache variants get the
// region/checkpoint pipeline, ReplayCache the clwb/fence lowering, and the
// JIT-checkpoint designs run plain binaries.
func ModeFor(kind arch.Kind) compiler.Mode {
	return compiler.Mode(kind.CompilerMode())
}

// Compile builds and compiles the program for the scheme.
func Compile(build Builder, kind arch.Kind, p config.Params) (*compiler.Result, error) {
	return compiler.Compile(build(), compiler.Options{
		Mode:             ModeFor(kind),
		StoreThreshold:   p.StoreThreshold,
		UnrollCap:        p.CompilerUnrollCap,
		InlineSmallFuncs: p.CompilerInline,
	})
}

// Run compiles build for kind and executes it under the given power source
// (nil = outage-free).
func Run(build Builder, kind arch.Kind, p config.Params, src trace.Source) (*sim.Result, error) {
	return RunTraced(build, kind, p, src, nil)
}

// RunTraced is Run with a telemetry tracer attached to the engine and the
// scheme; a nil tracer is the untraced fast path.
func RunTraced(build Builder, kind arch.Kind, p config.Params, src trace.Source, tr *telemetry.Tracer) (*sim.Result, error) {
	return RunTracedCtx(context.Background(), build, kind, p, src, tr)
}

// RunTracedCtx is RunTraced under a cancellation context: the engine polls
// ctx at epoch boundaries and aborts with an error wrapping ctx.Err().
func RunTracedCtx(ctx context.Context, build Builder, kind arch.Kind, p config.Params, src trace.Source, tr *telemetry.Tracer) (*sim.Result, error) {
	cres, err := Compile(build, kind, p)
	if err != nil {
		return nil, fmt.Errorf("core: compile for %v: %w", kind, err)
	}
	return RunCompiledCtx(ctx, cres, kind, p, src, tr)
}

// RunCompiled executes an already-compiled binary on a fresh machine of
// the given kind. The compiled result is only read, so one compilation —
// typically out of SharedCompileCache — can back many concurrent runs.
func RunCompiled(cres *compiler.Result, kind arch.Kind, p config.Params, src trace.Source, tr *telemetry.Tracer) (*sim.Result, error) {
	return RunCompiledCtx(context.Background(), cres, kind, p, src, tr)
}

// RunCompiledCtx is RunCompiled under a cancellation context. Params are
// validated before the machine is constructed, so malformed inputs surface
// as descriptive errors here rather than panics inside arch.New.
func RunCompiledCtx(ctx context.Context, cres *compiler.Result, kind arch.Kind, p config.Params, src trace.Source, tr *telemetry.Tracer) (*sim.Result, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: params for %v: %w", kind, err)
	}
	scheme := arch.New(kind, p)
	opt := sim.Options{Source: src, Tracer: tr}
	if ctx != context.Background() {
		opt.Ctx = ctx
	}
	res, err := sim.Run(cres.Linked, scheme, opt)
	if err != nil {
		return res, fmt.Errorf("core: run %v: %w", kind, err)
	}
	return res, nil
}

// Speedup returns how much faster b finished than a (total wall-clock).
func Speedup(a, b *sim.Result) float64 {
	return float64(a.TimeNs) / float64(b.TimeNs)
}

// Comparison is the result of running one workload on several schemes.
type Comparison struct {
	Baseline *sim.Result
	Results  map[arch.Kind]*sim.Result
}

// SpeedupOver returns kind's speedup over the comparison baseline.
func (c *Comparison) SpeedupOver(kind arch.Kind) float64 {
	return Speedup(c.Baseline, c.Results[kind])
}

// Compare runs build on NVP (the baseline) and on each requested scheme
// under per-scheme fresh cursors of the same trace profile, so every
// machine experiences the identical energy timeline. The timeline is a
// shared tape: the synthetic generator runs once no matter how many
// schemes replay it.
func Compare(build Builder, kinds []arch.Kind, p config.Params, profile *trace.Profile, seed int64) (*Comparison, error) {
	src := func() trace.Source {
		if profile == nil {
			return nil
		}
		return trace.NewShared(*profile, seed)
	}
	base, err := Run(build, arch.NVP, p, src())
	if err != nil {
		return nil, err
	}
	cmp := &Comparison{Baseline: base, Results: map[arch.Kind]*sim.Result{arch.NVP: base}}
	for _, k := range kinds {
		if k == arch.NVP {
			continue
		}
		r, err := Run(build, k, p, src())
		if err != nil {
			return nil, err
		}
		cmp.Results[k] = r
	}
	return cmp, nil
}
