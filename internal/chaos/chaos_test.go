package chaos

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestParse(t *testing.T) {
	cfg, err := Parse("seed=7,panic=0.05,cancel=12,delay=5ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, PanicProb: 0.05, CancelAfter: 12, CancelDelay: 5 * time.Millisecond}
	if cfg != want {
		t.Errorf("cfg = %+v, want %+v", cfg, want)
	}
	if cfg, err := Parse(""); err != nil || cfg.Seed != 1 {
		t.Errorf("empty spec: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"panic=1.5", "panic=-0.1", "frobnicate=1", "seed", "seed=x"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// startOutcome records whether one CellStart attempt panicked.
func startOutcome(in *Injector, workload, scheme string) (panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			if _, ok := v.(InjectedPanic); !ok {
				panic(v) // only injected panics are expected here
			}
			panicked = true
		}
	}()
	in.CellStart(workload, scheme)
	return false
}

// TestPanicDeterminism replays the same cell sequence through two
// injectors with the same seed and requires identical decisions; a third
// injector with a different seed must diverge somewhere over 64 cells.
func TestPanicDeterminism(t *testing.T) {
	pattern := func(seed int64) []bool {
		in := New(Config{Seed: seed, PanicProb: 0.5})
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, startOutcome(in, "wl"+string(rune('a'+i%8)), "scheme"+string(rune('0'+i/8))))
		}
		return out
	}
	a, b, c := pattern(7), pattern(7), pattern(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different panic patterns")
	}
	if same(a, c) {
		t.Error("different seeds produced identical 64-cell patterns")
	}
	hits := 0
	for _, p := range a {
		if p {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Errorf("prob 0.5 over 64 cells hit %d times — draw looks degenerate", hits)
	}
}

// TestAttemptSalting pins the convergence property the resume loop needs:
// a cell that panics on one attempt draws fresh on the next, so repeated
// retries of the same cell eventually pass even at high panic probability.
func TestAttemptSalting(t *testing.T) {
	in := New(Config{Seed: 3, PanicProb: 0.9})
	for attempt := 1; ; attempt++ {
		if attempt > 200 {
			t.Fatal("cell never passed in 200 attempts — attempt salting broken")
		}
		if !startOutcome(in, "sha", "sweep-eb") {
			break
		}
	}
}

func TestCancelAfter(t *testing.T) {
	in := New(Config{Seed: 1, CancelAfter: 3})
	ctx, cancel := in.Arm(context.Background())
	defer cancel()
	for i := 0; i < 2; i++ {
		in.CellStart("w", "s")
		if ctx.Err() != nil {
			t.Fatalf("cancelled after %d starts, want 3", i+1)
		}
	}
	in.CellStart("w", "s")
	if ctx.Err() == nil {
		t.Fatal("not cancelled after the configured number of starts")
	}
	if in.Cancels() != 1 || in.Starts() != 3 {
		t.Errorf("cancels=%d starts=%d", in.Cancels(), in.Starts())
	}
}

func TestCorruptFile(t *testing.T) {
	dir := t.TempDir()
	orig := bytes.Repeat([]byte(`{"k":"v"}`+"\n"), 64)
	for seed := int64(0); seed < 4; seed++ {
		p := filepath.Join(dir, "f")
		if err := os.WriteFile(p, orig, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := CorruptFile(p, seed); err != nil {
			t.Fatal(err)
		}
		after, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(after, orig) {
			t.Errorf("seed %d: file unchanged", seed)
		}
		// Replaying the same seed on the same content damages identically.
		os.WriteFile(p, orig, 0o644)
		CorruptFile(p, seed)
		again, _ := os.ReadFile(p)
		if !bytes.Equal(after, again) {
			t.Errorf("seed %d: corruption not deterministic", seed)
		}
	}
	empty := filepath.Join(dir, "empty")
	os.WriteFile(empty, nil, 0o644)
	if err := CorruptFile(empty, 1); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(empty); st.Size() != 0 {
		t.Error("empty file was touched")
	}
}
