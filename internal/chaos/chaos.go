// Package chaos is the fault-injection harness: deterministic, seeded
// injection of the failures an intermittently-powered experiment campaign
// actually meets — worker panics, mid-run cancellation, and journal
// truncation/corruption — so the resilience tests can assert the engine
// always ends in one of {complete, cleanly-cancelled, resumable} and never
// deadlocks or leaks goroutines.
//
// Every decision derives from a hash of (seed, cell identity, attempt
// number), never from scheduling order or time, so a chaos run replays
// exactly and a resumed run eventually drains: a cell that panicked on
// attempt n draws a fresh decision on attempt n+1.
package chaos

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config bounds the injected faults.
type Config struct {
	// Seed drives every decision; two injectors with the same seed make
	// identical per-cell choices.
	Seed int64
	// PanicProb is the probability that one cell attempt panics inside
	// its worker ([0,1]). Decisions are salted with the per-cell attempt
	// counter, so retries converge.
	PanicProb float64
	// CancelAfter cancels the armed context when this many cell attempts
	// have started (0 = never). Which cells made the cut depends on
	// worker scheduling — that nondeterminism is the point of the fault —
	// but the count itself is exact.
	CancelAfter int
	// CancelDelay postpones the injected cancellation after the trigger
	// (0 = immediate).
	CancelDelay time.Duration
}

// Injector injects the configured faults. One injector may arm many
// successive matrices; the attempt counters persist across them.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	attempts map[string]uint64
	cancel   context.CancelFunc

	starts  atomic.Uint64
	panics  atomic.Uint64
	cancels atomic.Uint64
}

// New returns an injector for the config.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, attempts: map[string]uint64{}}
}

// Parse builds a Config from a comma-separated spec, the -chaos flag
// syntax: "seed=7,panic=0.05,cancel=12,delay=5ms". Unknown keys are an
// error; every key is optional.
func Parse(spec string) (Config, error) {
	cfg := Config{Seed: 1}
	if spec == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: bad spec element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(v, 10, 64)
		case "panic":
			cfg.PanicProb, err = strconv.ParseFloat(v, 64)
			if err == nil && (cfg.PanicProb < 0 || cfg.PanicProb > 1) {
				err = fmt.Errorf("probability out of [0,1]")
			}
		case "cancel":
			cfg.CancelAfter, err = strconv.Atoi(v)
		case "delay":
			cfg.CancelDelay, err = time.ParseDuration(v)
		default:
			return Config{}, fmt.Errorf("chaos: unknown spec key %q", k)
		}
		if err != nil {
			return Config{}, fmt.Errorf("chaos: spec %s=%s: %v", k, v, err)
		}
	}
	return cfg, nil
}

// InjectedPanic is the value thrown by an injected worker panic; the
// experiment layer's recover() converts it into a structured cell error.
type InjectedPanic struct {
	Workload string
	Scheme   string
	Attempt  uint64
	Seed     int64
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("chaos: injected panic (seed %d) in %s/%s attempt %d",
		p.Seed, p.Workload, p.Scheme, p.Attempt)
}

// Arm wraps ctx with the cancellation the injector may trigger and
// remembers the cancel function. The caller owns the returned context's
// lifetime as usual.
func (in *Injector) Arm(ctx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(ctx)
	in.mu.Lock()
	in.cancel = cancel
	in.mu.Unlock()
	return ctx, cancel
}

// decide returns a uniform [0,1) draw for (seed, cell, attempt).
func decide(seed int64, cell string, attempt uint64) float64 {
	h := sha256.New()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(cell))
	binary.LittleEndian.PutUint64(b[:], attempt)
	h.Write(b[:])
	u := binary.LittleEndian.Uint64(h.Sum(nil)[:8])
	return float64(u>>11) / float64(1<<53)
}

// CellStart is called by each worker as a cell attempt begins. It may
// panic (InjectedPanic) and may trigger the armed cancellation; both
// decisions are deterministic in (seed, cell, attempt).
func (in *Injector) CellStart(workload, scheme string) {
	n := in.starts.Add(1)
	if in.cfg.CancelAfter > 0 && n == uint64(in.cfg.CancelAfter) {
		in.mu.Lock()
		cancel := in.cancel
		in.mu.Unlock()
		if cancel != nil {
			in.cancels.Add(1)
			if in.cfg.CancelDelay > 0 {
				time.AfterFunc(in.cfg.CancelDelay, cancel)
			} else {
				cancel()
			}
		}
	}
	if in.cfg.PanicProb <= 0 {
		return
	}
	cell := workload + "/" + scheme
	in.mu.Lock()
	in.attempts[cell]++
	attempt := in.attempts[cell]
	in.mu.Unlock()
	if decide(in.cfg.Seed, cell, attempt) < in.cfg.PanicProb {
		in.panics.Add(1)
		panic(InjectedPanic{Workload: workload, Scheme: scheme, Attempt: attempt, Seed: in.cfg.Seed})
	}
}

// Panics returns how many panics the injector has thrown.
func (in *Injector) Panics() uint64 { return in.panics.Load() }

// Cancels returns how many cancellations the injector has triggered.
func (in *Injector) Cancels() uint64 { return in.cancels.Load() }

// Starts returns how many cell attempts the injector has observed.
func (in *Injector) Starts() uint64 { return in.starts.Load() }

// CorruptFile damages a journal (or any) file deterministically for
// crash-recovery tests: depending on the seed it truncates the file at a
// random offset (a crash mid-append) or flips one byte (bit rot). An
// empty file is left alone.
func CorruptFile(path string, seed int64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(raw) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	if rng.Intn(2) == 0 {
		// Truncate somewhere strictly inside the file.
		cut := 1 + rng.Intn(len(raw))
		return os.WriteFile(path, raw[:cut], 0o644)
	}
	pos := rng.Intn(len(raw))
	raw[pos] ^= 0x20
	return os.WriteFile(path, raw, 0o644)
}
