package fuzz

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/sim"
)

// checksumWith compiles a random program with the given options and runs
// it on SweepCache outage-free, returning the final checksum.
func checksumWith(t *testing.T, seed int64, opt compiler.Options) int64 {
	t.Helper()
	opt.Mode = compiler.ModeSweep
	cres, err := compiler.Compile(Generate(seed, Config{}), opt)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	s := arch.New(arch.SweepEmptyBit, config.Default())
	r, err := sim.Run(cres.Linked, s, sim.Options{MaxInstructions: 100_000_000})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return r.NVM.PeekWord(CheckAddr())
}

// TestUnrollingSemanticsPreserving: any unroll factor yields the same
// result — the transformation keeps every exit test, so it must be exact
// for any trip count.
func TestUnrollingSemanticsPreserving(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		base := checksumWith(t, seed, compiler.Options{UnrollCap: 1})
		for _, cap := range []int{2, 4, 8} {
			if got := checksumWith(t, seed, compiler.Options{UnrollCap: cap}); got != base {
				t.Errorf("seed %d unroll %d: %#x != %#x", seed, cap, got, base)
			}
		}
	}
}

// TestThresholdSemanticsPreserving: the store threshold moves boundaries
// but may never change results.
func TestThresholdSemanticsPreserving(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		base := checksumWith(t, seed, compiler.Options{StoreThreshold: 64})
		for _, th := range []int{32, 128, 256} {
			if got := checksumWith(t, seed, compiler.Options{StoreThreshold: th}); got != base {
				t.Errorf("seed %d threshold %d: %#x != %#x", seed, th, got, base)
			}
		}
	}
}

// TestInliningSemanticsPreserving: inlining removes call boundaries but
// may never change results.
func TestInliningSemanticsPreserving(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		base := checksumWith(t, seed, compiler.Options{})
		got := checksumWith(t, seed, compiler.Options{InlineSmallFuncs: true})
		if got != base {
			t.Errorf("seed %d inlined: %#x != %#x", seed, got, base)
		}
	}
}

// TestSingleBufferSemanticsPreserving: the Figure 3a ablation changes
// only timing, never results — even under outages.
func TestSingleBufferSemanticsPreserving(t *testing.T) {
	p := config.Default()
	p.SweepSingleBuffer = true
	for seed := int64(0); seed < 10; seed++ {
		cres, err := compiler.Compile(Generate(seed, Config{}), compiler.Options{Mode: compiler.ModeSweep})
		if err != nil {
			t.Fatal(err)
		}
		s := arch.New(arch.SweepEmptyBit, p)
		r, err := sim.Run(cres.Linked, s, sim.Options{MaxInstructions: 100_000_000})
		if err != nil {
			t.Fatal(err)
		}
		want := checksumWith(t, seed, compiler.Options{})
		if got := r.NVM.PeekWord(CheckAddr()); got != want {
			t.Errorf("seed %d single-buffer: %#x != %#x", seed, got, want)
		}
	}
}

// TestPeepholeSemanticsPreserving: the dead-code cleanup may never change
// results on arbitrary programs.
func TestPeepholeSemanticsPreserving(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		base := checksumWith(t, seed, compiler.Options{DisablePeephole: true})
		got := checksumWith(t, seed, compiler.Options{})
		if got != base {
			t.Errorf("seed %d: peephole changed result %#x != %#x", seed, got, base)
		}
	}
}
