// Package fuzz generates random—but always well-formed—IR programs for
// differential testing: every generated program terminates, stays within
// its data segment, and exercises loops, branches, calls, byte and word
// memory traffic, and enough stores to stress region formation.
//
// The generator is seeded and deterministic. Differential tests run the
// same program on every scheme and under many outage patterns and demand
// identical final memory images; any divergence is a crash-consistency or
// functional-transparency bug somewhere in the stack.
package fuzz

import (
	"math/rand"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Config bounds the generated program.
type Config struct {
	// MaxOuterIters bounds the top-level loop trip count. Default 40.
	MaxOuterIters int
	// MaxBodyOps bounds the random straight-line ops per block. Default 12.
	MaxBodyOps int
	// DataWords is the size of the scratch array. Default 512.
	DataWords int
	// Funcs is how many callable helper functions to generate. Default 2.
	Funcs int
}

func (c Config) withDefaults() Config {
	if c.MaxOuterIters == 0 {
		c.MaxOuterIters = 40
	}
	if c.MaxBodyOps == 0 {
		c.MaxBodyOps = 12
	}
	if c.DataWords == 0 {
		c.DataWords = 512
	}
	if c.Funcs == 0 {
		c.Funcs = 2
	}
	return c
}

// gen carries generation state.
type gen struct {
	rng  *rand.Rand
	p    *ir.Program
	cfg  Config
	base int64 // scratch array base
	mask int64 // index mask (DataWords-1)

	callees []*ir.Function
}

// Generate builds a random program from the seed. Identical seeds yield
// identical programs.
func Generate(seed int64, cfg Config) *ir.Program {
	cfg = cfg.withDefaults()
	// Round DataWords to a power of two for cheap index masking.
	dw := 1
	for dw < cfg.DataWords {
		dw <<= 1
	}
	cfg.DataWords = dw

	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	g.p = ir.NewProgram("fuzz")
	g.base = g.p.Alloc(int64(dw) * 8)
	g.mask = int64(dw - 1)
	for i := 0; i < dw; i++ {
		g.p.InitWord(g.base+int64(i)*8, g.rng.Int63n(1<<32))
	}

	// Helper functions first, so calls can reference them. Each helper
	// works on registers r0..r3 and the scratch array, then returns.
	main := g.p.NewFunc("main")
	g.p.SetEntry(main)
	for i := 0; i < cfg.Funcs; i++ {
		g.callees = append(g.callees, g.helper(i))
	}

	g.buildMain(main)
	if err := g.p.Validate(); err != nil {
		panic("fuzz: generated invalid program: " + err.Error())
	}
	return g.p
}

// Register conventions inside generated code:
//
//	r0..r5   free computation registers
//	r8       outer loop counter        r9  outer limit
//	r10, r11 address scratch
//	r12      inner loop counter        r13 inner limit
//	r14      running checksum
const (
	rCtr   = isa.Reg(8)
	rLim   = isa.Reg(9)
	rAddrA = isa.Reg(10)
	rAddrB = isa.Reg(11)
	rICtr  = isa.Reg(12)
	rILim  = isa.Reg(13)
	rSum   = isa.Reg(14)
)

// emitRandomOps appends n random ALU/memory ops to b using r0..r5 plus the
// checksum register. All memory accesses are masked into the scratch
// array, so any register value yields a legal address.
func (g *gen) emitRandomOps(b *ir.Block, n int) {
	for i := 0; i < n; i++ {
		d := isa.Reg(g.rng.Intn(6))
		a := isa.Reg(g.rng.Intn(6))
		c := isa.Reg(g.rng.Intn(6))
		switch g.rng.Intn(10) {
		case 0:
			b.MovI(d, g.rng.Int63n(1<<20)-1<<19)
		case 1:
			b.Add(d, a, c)
		case 2:
			b.Sub(d, a, c)
		case 3:
			b.Mul(d, a, c)
		case 4:
			b.XorI(d, a, g.rng.Int63n(1<<16))
		case 5:
			b.ShrI(d, a, int64(g.rng.Intn(15)+1))
		case 6, 7: // load
			g.addr(b, a)
			if g.rng.Intn(4) == 0 {
				b.LdB(d, rAddrA, int64(g.rng.Intn(8)))
			} else {
				b.Ld(d, rAddrA, 0)
			}
			b.Add(rSum, rSum, d)
		case 8, 9: // store
			g.addr(b, a)
			if g.rng.Intn(4) == 0 {
				b.StB(rAddrA, int64(g.rng.Intn(8)), c)
			} else {
				b.St(rAddrA, 0, c)
			}
		}
	}
}

// addr computes a masked scratch-array word address from reg into rAddrA.
func (g *gen) addr(b *ir.Block, reg isa.Reg) {
	b.And(rAddrB, reg, reg) // copy through AND to vary dataflow
	b.AndI(rAddrB, rAddrB, g.mask)
	b.ShlI(rAddrB, rAddrB, 3)
	b.MovI(rAddrA, g.base)
	b.Add(rAddrA, rAddrA, rAddrB)
}

// helper builds one callable leaf function: a small bounded loop over the
// scratch array with random ops.
func (g *gen) helper(idx int) *ir.Function {
	f := g.p.NewFunc("helper" + string(rune('a'+idx)))
	en := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	iters := int64(g.rng.Intn(6) + 2)
	en.MovI(rICtr, 0)
	en.MovI(rILim, iters)
	en.Jmp(head)
	head.Bge(rICtr, rILim, exit, body)
	g.emitRandomOps(body, g.rng.Intn(g.cfg.MaxBodyOps)+2)
	body.AddI(rICtr, rICtr, 1)
	body.Jmp(head)
	exit.Ret()
	return f
}

// buildMain builds the entry function: an outer counted loop whose body is
// a random mix of straight-line ops, an if-diamond, an inner loop, and an
// occasional helper call; then a final fold of the checksum into the
// scratch array.
func (g *gen) buildMain(f *ir.Function) {
	en := f.Entry()
	outerIters := int64(g.rng.Intn(g.cfg.MaxOuterIters) + 5)
	en.MovI(rCtr, 0)
	en.MovI(rLim, outerIters)
	en.MovI(rSum, 0)
	for r := isa.Reg(0); r < 6; r++ {
		en.MovI(r, g.rng.Int63n(1<<16))
	}

	head := f.NewBlock("o.head")
	body := f.NewBlock("o.body")
	exit := f.NewBlock("o.exit")
	en.Jmp(head)
	head.Bge(rCtr, rLim, exit, body)

	cur := body
	g.emitRandomOps(cur, g.rng.Intn(g.cfg.MaxBodyOps)+2)

	// Optional if-diamond.
	if g.rng.Intn(2) == 0 {
		thenB := f.NewBlock("o.then")
		elseB := f.NewBlock("o.else")
		join := f.NewBlock("o.join")
		a := isa.Reg(g.rng.Intn(6))
		c := isa.Reg(g.rng.Intn(6))
		ops := []func(*ir.Block, isa.Reg, isa.Reg, *ir.Block, *ir.Block){
			(*ir.Block).Beq, (*ir.Block).Bne, (*ir.Block).Blt, (*ir.Block).Bge,
		}
		ops[g.rng.Intn(len(ops))](cur, a, c, thenB, elseB)
		g.emitRandomOps(thenB, g.rng.Intn(6)+1)
		thenB.Jmp(join)
		g.emitRandomOps(elseB, g.rng.Intn(6)+1)
		elseB.Jmp(join)
		cur = join
	}

	// Optional inner counted loop.
	if g.rng.Intn(2) == 0 {
		ih := f.NewBlock("i.head")
		ib := f.NewBlock("i.body")
		ix := f.NewBlock("i.exit")
		cur.MovI(rICtr, 0)
		cur.MovI(rILim, int64(g.rng.Intn(8)+2))
		cur.Jmp(ih)
		ih.Bge(rICtr, rILim, ix, ib)
		g.emitRandomOps(ib, g.rng.Intn(g.cfg.MaxBodyOps)+1)
		ib.AddI(rICtr, rICtr, 1)
		ib.Jmp(ih)
		cur = ix
	}

	// Optional helper call. The callee clobbers r0..r5 and rICtr/rILim,
	// which is exactly the kind of interprocedural liveness pressure the
	// checkpoint machinery must get right.
	if len(g.callees) > 0 && g.rng.Intn(2) == 0 {
		cont := f.NewBlock("o.cont")
		cur.Call(g.callees[g.rng.Intn(len(g.callees))], cont)
		cur = cont
	}

	g.emitRandomOps(cur, g.rng.Intn(4)+1)
	cur.AddI(rCtr, rCtr, 1)
	cur.Jmp(head)

	// Epilogue: store the checksum at a fixed slot.
	exit.MovI(rAddrA, g.base)
	exit.St(rAddrA, 0, rSum)
	exit.Halt()
}

// CheckAddr returns where the generated program stores its checksum.
func CheckAddr() int64 { return ir.DataBase }
