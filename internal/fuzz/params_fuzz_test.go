package fuzz

// Fuzz target for the -params decoding path: arbitrary bytes must never
// panic the decoder, and anything it accepts must be a configuration the
// validator also accepts (the property cmd/sweepexp and cmd/sweepsim rely
// on before handing params to the engine). Accepted inputs must also
// fingerprint deterministically — the journal keys cells by it.

import (
	"testing"

	"repro/internal/config"
)

func FuzzParamsJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"CapacitorF": 470e-9}`))
	f.Add([]byte(`{"Vmax": 5.0, "Vmin": 1.8, "VBackup": 2.5, "VRestore": 3.3}`))
	f.Add([]byte(`{"CacheSize": 4096, "CacheWays": 2, "StoreThreshold": 8}`))
	f.Add([]byte(`{"CapacitorF": -1}`))
	f.Add([]byte(`{"Vmax": "NaN"}`))
	f.Add([]byte(`{"NoSuchKnob": 1}`))
	f.Add([]byte(`{"CapacitorF": 1e-9} {"CapacitorF": 2e-9}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := config.FromJSON(data)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("FromJSON accepted %q but Validate rejects it: %v", data, verr)
		}
		if p.Fingerprint() != p.Fingerprint() {
			t.Fatal("fingerprint not deterministic")
		}
	})
}
