package fuzz

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/persist"
)

// refFind is the original linear buffer search: walk the FIFO youngest
// first, return the youngest entry for addr's line plus the number of
// entries probed (Len()-i for a hit at position i, Len() for a miss).
// FindDepth must agree with it exactly — the youngest-entry index is an
// implementation detail, the modelled probe depth is the contract.
func refFind(b *persist.Buffer, addr int64) (*persist.Entry, int) {
	la := mem.LineAddr(addr)
	for i := b.Len() - 1; i >= 0; i-- {
		if b.EntryAt(i).Addr == la {
			return b.EntryAt(i), b.Len() - i
		}
	}
	return nil, b.Len()
}

// FuzzBufferIndex drives a persist buffer through random append / seal /
// drain / discard / claim sequences and cross-checks the indexed
// FindDepth against the reference linear scan after every step.
func FuzzBufferIndex(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 0, 5, 3, 0, 4})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1, 2, 3, 4, 5})
	f.Add([]byte{5, 5, 5, 0, 2, 0, 3, 0, 0, 4, 0, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 8
		b := persist.NewBuffer(capacity)
		b.Claim(1)
		nvm := mem.New(1 << 16)
		region := uint64(1)
		var now int64

		check := func(addr int64) {
			got, gotDepth := b.FindDepth(addr)
			want, wantDepth := refFind(b, addr)
			if gotDepth != wantDepth {
				t.Fatalf("addr %d: depth %d, linear scan %d", addr, gotDepth, wantDepth)
			}
			if (got == nil) != (want == nil) {
				t.Fatalf("addr %d: hit %v, linear scan %v", addr, got != nil, want != nil)
			}
			if got != nil && (got.Addr != want.Addr || got.Data != want.Data) {
				t.Fatalf("addr %d: entry mismatch", addr)
			}
		}

		for i := 0; i < len(ops); i++ {
			op := ops[i] % 6
			arg := byte(0)
			if i+1 < len(ops) {
				arg = ops[i+1]
			}
			switch op {
			case 0, 1: // append (twice as likely — buffers mostly fill)
				if b.Sealed || b.Len() >= capacity {
					continue
				}
				addr := int64(arg%16) * mem.LineSize
				var data [mem.LineSize]byte
				data[0] = arg
				b.Append(addr, &data)
				i++
			case 2: // seal with a small flush set
				if b.Sealed {
					continue
				}
				var flush []persist.Entry
				for j := 0; j < int(arg%3) && b.Len()+j < capacity; j++ {
					var d [mem.LineSize]byte
					d[0] = byte(j) + 1
					flush = append(flush, persist.Entry{Addr: int64(j) * mem.LineSize, Data: d})
				}
				now += 100
				b.Seal(now, flush, 10, 15, 0)
				i++
			case 3: // drain
				b.Drain(nvm)
			case 4: // discard
				b.Discard()
			case 5: // claim a new region
				if b.Len() > 0 && !b.Retired {
					continue
				}
				region++
				b.Claim(region)
			}
			// Probe every line the driver can name, hit or miss.
			for a := int64(0); a < 16; a++ {
				check(a*mem.LineSize + int64(arg%mem.LineSize))
			}
		}
	})
}
