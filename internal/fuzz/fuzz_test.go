package fuzz

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/compiler"
	"repro/internal/config"
	"repro/internal/ir"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := ir.Link(Generate(7, Config{}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ir.Link(Generate(7, Config{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Code) != len(b.Code) {
		t.Fatal("same seed, different programs")
	}
	for i := range a.Code {
		if a.Code[i] != b.Code[i] {
			t.Fatalf("instr %d differs", i)
		}
	}
}

func TestGeneratedProgramsTerminate(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		prog := Generate(seed, Config{})
		res, err := compiler.Compile(prog, compiler.Options{Mode: compiler.ModePlain})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := arch.New(arch.NVP, config.Default())
		r, err := sim.Run(res.Linked, s, sim.Options{MaxInstructions: 50_000_000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !r.Halted {
			t.Fatalf("seed %d did not halt", seed)
		}
	}
}

// TestDifferentialAcrossSchemes is the centerpiece: random programs must
// produce identical final memory images on every scheme, outage-free.
func TestDifferentialAcrossSchemes(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	p := config.Default()
	for seed := int64(0); seed < int64(seeds); seed++ {
		var ref int64
		refSet := false
		for _, kind := range arch.AllKinds() {
			prog := Generate(seed, Config{})
			cres, err := compiler.Compile(prog, compiler.Options{
				Mode: compiler.Mode(kind.CompilerMode()),
			})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, kind, err)
			}
			s := arch.New(kind, p)
			r, err := sim.Run(cres.Linked, s, sim.Options{MaxInstructions: 50_000_000})
			if err != nil {
				t.Fatalf("seed %d %v: %v", seed, kind, err)
			}
			sum := r.NVM.PeekWord(CheckAddr())
			if !refSet {
				ref, refSet = sum, true
			} else if sum != ref {
				t.Errorf("seed %d: %v checksum %#x, want %#x", seed, kind, sum, ref)
			}
		}
	}
}

// TestDifferentialUnderOutages injects power failures into every scheme on
// random programs and checks the result against the outage-free image —
// randomized crash-consistency verification end to end.
func TestDifferentialUnderOutages(t *testing.T) {
	progSeeds := 12
	if testing.Short() {
		progSeeds = 3
	}
	p := config.Default()
	// A small capacitor makes outages frequent even on short programs.
	p.CapacitorF = 100e-9
	for seed := int64(100); seed < int64(100+progSeeds); seed++ {
		golden := runOne(t, seed, arch.NVP, p, nil)
		want := golden.NVM.PeekWord(CheckAddr())
		for _, kind := range arch.AllKinds() {
			for ts := int64(1); ts <= 2; ts++ {
				r := runOne(t, seed, kind, p, trace.New(trace.RFOffice, ts))
				got := r.NVM.PeekWord(CheckAddr())
				if got != want {
					t.Errorf("seed %d %v trace-seed %d: %#x after %d outages, want %#x",
						seed, kind, ts, got, r.Outages, want)
				}
			}
		}
	}
}

func runOne(t *testing.T, seed int64, kind arch.Kind, p config.Params, src trace.Source) *sim.Result {
	t.Helper()
	prog := Generate(seed, Config{})
	cres, err := compiler.Compile(prog, compiler.Options{Mode: compiler.Mode(kind.CompilerMode())})
	if err != nil {
		t.Fatalf("seed %d %v: %v", seed, kind, err)
	}
	s := arch.New(kind, p)
	r, err := sim.Run(cres.Linked, s, sim.Options{MaxInstructions: 100_000_000})
	if err != nil {
		t.Fatalf("seed %d %v: %v", seed, kind, err)
	}
	return r
}

// TestCompilerInvariantsOnRandomPrograms: region formation must respect
// the store threshold on arbitrary CFGs, not just the curated kernels.
func TestCompilerInvariantsOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, th := range []int{32, 64} {
			prog := Generate(seed, Config{})
			res, err := compiler.Compile(prog, compiler.Options{
				Mode:           compiler.ModeSweep,
				StoreThreshold: th,
			})
			if err != nil {
				t.Fatalf("seed %d th %d: %v", seed, th, err)
			}
			for i, n := range res.Stats.MaxPathStores {
				if n > th {
					t.Errorf("seed %d th %d: region %d worst-case %d stores", seed, th, i, n)
				}
			}
		}
	}
}
