// Package stats provides the small statistical utilities the experiments
// need: integer histograms (for the Figure 12 CDFs), geometric means (the
// paper's aggregate for speedups), and quantiles.
package stats

import (
	"fmt"
	"math"
)

// Hist is a histogram over small non-negative integers.
type Hist struct {
	Buckets  []uint64 // Buckets[i] counts samples equal to i
	Overflow uint64   // samples >= len(Buckets)
	N        uint64
	Sum      float64
}

// NewHist returns a histogram covering values [0, max].
func NewHist(max int) *Hist {
	return &Hist{Buckets: make([]uint64, max+1)}
}

// Add records one sample.
func (h *Hist) Add(v int) {
	h.N++
	h.Sum += float64(v)
	if v < 0 {
		v = 0
	}
	if v < len(h.Buckets) {
		h.Buckets[v]++
	} else {
		h.Overflow++
	}
}

// Mean returns the sample mean, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// CDF returns the cumulative fraction of samples <= i for each bucket i.
func (h *Hist) CDF() []float64 {
	out := make([]float64, len(h.Buckets))
	if h.N == 0 {
		return out
	}
	var acc uint64
	for i, c := range h.Buckets {
		acc += c
		out[i] = float64(acc) / float64(h.N)
	}
	return out
}

// Quantile returns the smallest recorded value v with CDF(v) >= q;
// Overflow samples map to len(Buckets). Edge cases are pinned down:
// q <= 0 returns the smallest recorded value (not bucket 0), q >= 1 the
// largest, and an empty histogram returns 0 for every q.
func (h *Hist) Quantile(q float64) int {
	if h.N == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.N)
	if target < 1 {
		target = 1 // q <= 0 (or q below 1/N) selects the minimum sample
	}
	var acc float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		acc += float64(c)
		if acc >= target {
			return i
		}
	}
	return len(h.Buckets)
}

// Merge adds o's samples into h. Histograms with different bucket counts
// do not merge meaningfully (the same value would sit in a bucket in one
// and in Overflow in the other), so a mismatch is an explicit error and
// h is left unchanged.
func (h *Hist) Merge(o *Hist) error {
	if len(h.Buckets) != len(o.Buckets) {
		return fmt.Errorf("stats: merging histograms with %d and %d buckets", len(h.Buckets), len(o.Buckets))
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	h.Overflow += o.Overflow
	h.N += o.N
	h.Sum += o.Sum
	return nil
}

// Geomean returns the geometric mean of xs (which must be positive), or 0
// for an empty slice.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
