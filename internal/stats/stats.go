// Package stats provides the small statistical utilities the experiments
// need: integer histograms (for the Figure 12 CDFs), geometric means (the
// paper's aggregate for speedups), and quantiles.
package stats

import (
	"fmt"
	"math"
)

// Hist is a histogram over small non-negative integers.
type Hist struct {
	Buckets  []uint64 // Buckets[i] counts samples equal to i
	Overflow uint64   // samples >= len(Buckets)
	N        uint64
	Sum      float64
}

// NewHist returns a histogram covering values [0, max].
func NewHist(max int) *Hist {
	return &Hist{Buckets: make([]uint64, max+1)}
}

// Add records one sample.
func (h *Hist) Add(v int) {
	h.N++
	h.Sum += float64(v)
	if v < 0 {
		v = 0
	}
	if v < len(h.Buckets) {
		h.Buckets[v]++
	} else {
		h.Overflow++
	}
}

// Mean returns the sample mean, or 0 with no samples.
func (h *Hist) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// CDF returns the cumulative fraction of samples <= i for each bucket i.
func (h *Hist) CDF() []float64 {
	out := make([]float64, len(h.Buckets))
	if h.N == 0 {
		return out
	}
	var acc uint64
	for i, c := range h.Buckets {
		acc += c
		out[i] = float64(acc) / float64(h.N)
	}
	return out
}

// Quantile returns the smallest recorded value v with CDF(v) >= q;
// Overflow samples map to len(Buckets). Edge cases are pinned down:
// q <= 0 returns the smallest recorded value (not bucket 0), q >= 1 the
// largest, and an empty histogram returns 0 for every q.
func (h *Hist) Quantile(q float64) int {
	if h.N == 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(h.N)
	if target < 1 {
		target = 1 // q <= 0 (or q below 1/N) selects the minimum sample
	}
	var acc float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		acc += float64(c)
		if acc >= target {
			return i
		}
	}
	return len(h.Buckets)
}

// Merge adds o's samples into h. Histograms with different bucket counts
// do not merge meaningfully (the same value would sit in a bucket in one
// and in Overflow in the other), so a mismatch is an explicit error and
// h is left unchanged.
func (h *Hist) Merge(o *Hist) error {
	if len(h.Buckets) != len(o.Buckets) {
		return fmt.Errorf("stats: merging histograms with %d and %d buckets", len(h.Buckets), len(o.Buckets))
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	h.Overflow += o.Overflow
	h.N += o.N
	h.Sum += o.Sum
	return nil
}

// tCrit95 holds two-sided 95% Student-t critical values by degrees of
// freedom (index = df) for the small-sample range Monte-Carlo seed sweeps
// actually use. Larger df fall through to selected rows and then to the
// normal limit 1.96.
var tCrit95 = [...]float64{
	0, // df 0 unused
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// tCrit95Coarse extends the table to large samples: the critical value
// for the largest tabulated df not exceeding the actual df.
var tCrit95Coarse = []struct {
	df int
	t  float64
}{
	{40, 2.021}, {50, 2.009}, {60, 2.000}, {80, 1.990}, {100, 1.984}, {120, 1.980},
}

// MeanCI returns the sample mean of xs and the half-width of its two-sided
// 95% confidence interval under the Student-t distribution — the standard
// summary for a Monte-Carlo seed sweep's per-cell metric. With fewer than
// two samples the half-width is 0 (no spread estimate exists); the t
// critical value is exact for df ≤ 30, stepwise through df 120, and the
// normal-limit 1.96 beyond.
func MeanCI(xs []float64) (mean, half float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(n)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	df := n - 1
	var t float64
	switch {
	case df < len(tCrit95):
		t = tCrit95[df]
	case df > 120:
		t = 1.96
	default:
		t = tCrit95[len(tCrit95)-1] // largest tabulated df ≤ actual
		for _, row := range tCrit95Coarse {
			if df >= row.df {
				t = row.t
			}
		}
	}
	return mean, t * sd / math.Sqrt(float64(n))
}

// Geomean returns the geometric mean of xs (which must be positive), or 0
// for an empty slice.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
