package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistBasics(t *testing.T) {
	h := NewHist(10)
	for _, v := range []int{0, 1, 1, 5, 10, 12, -3} {
		h.Add(v)
	}
	if h.N != 7 {
		t.Errorf("N = %d", h.N)
	}
	if h.Buckets[1] != 2 || h.Buckets[0] != 2 { // -3 clamps to 0
		t.Errorf("buckets: %v", h.Buckets)
	}
	if h.Overflow != 1 {
		t.Errorf("overflow = %d", h.Overflow)
	}
	wantMean := (0.0 + 1 + 1 + 5 + 10 + 12 - 3) / 7
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Errorf("mean = %f", h.Mean())
	}
}

func TestHistCDFMonotone(t *testing.T) {
	h := NewHist(20)
	for i := 0; i < 100; i++ {
		h.Add(i % 21)
	}
	cdf := h.CDF()
	prev := 0.0
	for i, v := range cdf {
		if v < prev {
			t.Fatalf("CDF not monotone at %d", i)
		}
		prev = v
	}
	if math.Abs(cdf[len(cdf)-1]-1.0) > 1e-9 {
		t.Errorf("CDF end = %f", cdf[len(cdf)-1])
	}
}

func TestQuantile(t *testing.T) {
	h := NewHist(100)
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Errorf("p50 = %d", q)
	}
	if q := h.Quantile(0.99); q != 99 {
		t.Errorf("p99 = %d", q)
	}
	empty := NewHist(4)
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestQuantileEdges(t *testing.T) {
	empty := NewHist(8)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := empty.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%g) = %d", q, v)
		}
	}

	h := NewHist(10)
	h.Add(3)
	h.Add(3)
	h.Add(7)
	if v := h.Quantile(0); v != 3 {
		t.Errorf("Quantile(0) = %d, want smallest recorded value 3", v)
	}
	if v := h.Quantile(-0.5); v != 3 {
		t.Errorf("Quantile(-0.5) = %d, want 3", v)
	}
	if v := h.Quantile(1); v != 7 {
		t.Errorf("Quantile(1) = %d, want largest recorded value 7", v)
	}
	if v := h.Quantile(1.5); v != 7 {
		t.Errorf("Quantile(1.5) = %d, want clamp to 7", v)
	}

	// Overflowed samples map to len(Buckets) at the top quantile.
	h.Add(99)
	if v := h.Quantile(1); v != len(h.Buckets) {
		t.Errorf("Quantile(1) with overflow = %d, want %d", v, len(h.Buckets))
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHist(4), NewHist(4)
	a.Add(1)
	b.Add(2)
	b.Add(9)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.N != 3 || a.Buckets[2] != 1 || a.Overflow != 1 {
		t.Errorf("merge: %+v", a)
	}
}

func TestMergeMismatchedBuckets(t *testing.T) {
	a, b := NewHist(4), NewHist(8)
	a.Add(1)
	b.Add(2)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bucket counts should be an explicit error")
	}
	// The failed merge must leave the target untouched.
	if a.N != 1 || a.Buckets[1] != 1 || a.Buckets[2] != 0 {
		t.Errorf("failed merge mutated target: %+v", a)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %f", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean")
	}
	// Geomean is scale-multiplicative.
	if err := quick.Check(func(a, b uint8) bool {
		x := float64(a)/16 + 1
		y := float64(b)/16 + 1
		g1 := Geomean([]float64{x, y})
		g2 := Geomean([]float64{2 * x, 2 * y})
		return math.Abs(g2-2*g1) < 1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanCI(t *testing.T) {
	cases := []struct {
		name       string
		xs         []float64
		mean, half float64
	}{
		{"empty", nil, 0, 0},
		{"single", []float64{42}, 42, 0},
		{"pair", []float64{1, 3}, 2, 12.706 * math.Sqrt2 / math.Sqrt2},
		// {1..5}: sd = sqrt(2.5), t(df=4) = 2.776 → half = 2.776*sqrt(2.5)/sqrt(5)
		{"five", []float64{1, 2, 3, 4, 5}, 3, 2.776 * math.Sqrt(2.5) / math.Sqrt(5)},
		{"constant", []float64{7, 7, 7, 7}, 7, 0},
		{"negatives", []float64{-1, 1}, 0, 12.706 * math.Sqrt2 / math.Sqrt2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mean, half := MeanCI(c.xs)
			if math.Abs(mean-c.mean) > 1e-12 {
				t.Errorf("mean = %g, want %g", mean, c.mean)
			}
			if math.Abs(half-c.half) > 1e-9 {
				t.Errorf("half = %g, want %g", half, c.half)
			}
		})
	}
}

func TestMeanCICritValues(t *testing.T) {
	// The t critical value is monotone non-increasing in sample size: a
	// constant-spread sample's CI half-width times sqrt(n) must shrink.
	prev := math.Inf(1)
	for n := 2; n <= 200; n++ {
		// Samples alternating ±1 around 0: sd is constant-ish per parity;
		// use exact two-point repetition to keep sd = 1 for even n.
		xs := make([]float64, n)
		for i := range xs {
			if i%2 == 0 {
				xs[i] = 1
			} else {
				xs[i] = -1
			}
		}
		if n%2 != 0 {
			continue
		}
		_, half := MeanCI(xs)
		sd := math.Sqrt(float64(n) / float64(n-1)) // mean 0, deviations all ±1
		tcrit := half * math.Sqrt(float64(n)) / sd
		if tcrit > prev+1e-9 {
			t.Fatalf("n=%d: t critical %g rose above %g", n, tcrit, prev)
		}
		if tcrit < 1.96-1e-9 {
			t.Fatalf("n=%d: t critical %g below the normal limit", n, tcrit)
		}
		prev = tcrit
	}
}
