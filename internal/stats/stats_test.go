package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistBasics(t *testing.T) {
	h := NewHist(10)
	for _, v := range []int{0, 1, 1, 5, 10, 12, -3} {
		h.Add(v)
	}
	if h.N != 7 {
		t.Errorf("N = %d", h.N)
	}
	if h.Buckets[1] != 2 || h.Buckets[0] != 2 { // -3 clamps to 0
		t.Errorf("buckets: %v", h.Buckets)
	}
	if h.Overflow != 1 {
		t.Errorf("overflow = %d", h.Overflow)
	}
	wantMean := (0.0 + 1 + 1 + 5 + 10 + 12 - 3) / 7
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Errorf("mean = %f", h.Mean())
	}
}

func TestHistCDFMonotone(t *testing.T) {
	h := NewHist(20)
	for i := 0; i < 100; i++ {
		h.Add(i % 21)
	}
	cdf := h.CDF()
	prev := 0.0
	for i, v := range cdf {
		if v < prev {
			t.Fatalf("CDF not monotone at %d", i)
		}
		prev = v
	}
	if math.Abs(cdf[len(cdf)-1]-1.0) > 1e-9 {
		t.Errorf("CDF end = %f", cdf[len(cdf)-1])
	}
}

func TestQuantile(t *testing.T) {
	h := NewHist(100)
	for i := 1; i <= 100; i++ {
		h.Add(i)
	}
	if q := h.Quantile(0.5); q != 50 {
		t.Errorf("p50 = %d", q)
	}
	if q := h.Quantile(0.99); q != 99 {
		t.Errorf("p99 = %d", q)
	}
	empty := NewHist(4)
	if empty.Quantile(0.5) != 0 {
		t.Error("empty quantile")
	}
}

func TestQuantileEdges(t *testing.T) {
	empty := NewHist(8)
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if v := empty.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%g) = %d", q, v)
		}
	}

	h := NewHist(10)
	h.Add(3)
	h.Add(3)
	h.Add(7)
	if v := h.Quantile(0); v != 3 {
		t.Errorf("Quantile(0) = %d, want smallest recorded value 3", v)
	}
	if v := h.Quantile(-0.5); v != 3 {
		t.Errorf("Quantile(-0.5) = %d, want 3", v)
	}
	if v := h.Quantile(1); v != 7 {
		t.Errorf("Quantile(1) = %d, want largest recorded value 7", v)
	}
	if v := h.Quantile(1.5); v != 7 {
		t.Errorf("Quantile(1.5) = %d, want clamp to 7", v)
	}

	// Overflowed samples map to len(Buckets) at the top quantile.
	h.Add(99)
	if v := h.Quantile(1); v != len(h.Buckets) {
		t.Errorf("Quantile(1) with overflow = %d, want %d", v, len(h.Buckets))
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHist(4), NewHist(4)
	a.Add(1)
	b.Add(2)
	b.Add(9)
	if err := a.Merge(b); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if a.N != 3 || a.Buckets[2] != 1 || a.Overflow != 1 {
		t.Errorf("merge: %+v", a)
	}
}

func TestMergeMismatchedBuckets(t *testing.T) {
	a, b := NewHist(4), NewHist(8)
	a.Add(1)
	b.Add(2)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched bucket counts should be an explicit error")
	}
	// The failed merge must leave the target untouched.
	if a.N != 1 || a.Buckets[1] != 1 || a.Buckets[2] != 0 {
		t.Errorf("failed merge mutated target: %+v", a)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean(2,8) = %f", g)
	}
	if Geomean(nil) != 0 {
		t.Error("empty geomean")
	}
	// Geomean is scale-multiplicative.
	if err := quick.Check(func(a, b uint8) bool {
		x := float64(a)/16 + 1
		y := float64(b)/16 + 1
		g1 := Geomean([]float64{x, y})
		g2 := Geomean([]float64{2 * x, 2 * y})
		return math.Abs(g2-2*g1) < 1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}
