package obs

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func testTracker(clk *fakeClock) *CampaignTracker {
	t := NewCampaignTracker(slog.New(slog.NewTextHandler(new(bytes.Buffer), nil)))
	if clk != nil {
		t.now = clk.now
		t.birth = clk.now()
	}
	return t
}

func TestTrackerStateMachine(t *testing.T) {
	clk := newFakeClock()
	tr := testTracker(clk)
	tr.BeginPhase("fig5")
	base := tr.AddCells([]CellMeta{
		{Workload: "sha", Scheme: "NVP", Profile: "outage-free"},
		{Workload: "sha", Scheme: "Sweep-EmptyBit", Profile: "outage-free"},
		{Workload: "fft", Scheme: "NVP", Profile: "outage-free"},
		{Workload: "fft", Scheme: "Sweep-EmptyBit", Profile: "outage-free"},
	})
	if base != 0 {
		t.Fatalf("base = %d, want 0", base)
	}

	tr.Skip(base + 3) // journal hit
	tr.Start(0, base+0)
	clk.advance(10 * time.Millisecond)
	tr.Done(0, base+0)
	tr.Start(0, base+1)
	clk.advance(5 * time.Millisecond)
	tr.Fail(0, base+1, errors.New("worker panic: boom"), true)
	tr.Start(1, base+2) // still running

	p := tr.Progress()
	if p.Phase != "fig5" {
		t.Fatalf("phase = %q", p.Phase)
	}
	if p.Total != 4 || p.Done != 1 || p.Failed != 1 || p.Skipped != 1 || p.Running != 1 || p.Pending != 0 {
		t.Fatalf("counts: %+v", p)
	}
	if p.Panics != 1 {
		t.Fatalf("panics = %d, want 1", p.Panics)
	}
	var states []string
	for _, c := range p.Cells {
		states = append(states, c.State.String())
	}
	if got, want := strings.Join(states, ","), "done,failed,running,skipped"; got != want {
		t.Fatalf("cell states = %s, want %s", got, want)
	}
	if p.Cells[1].Error == "" || !strings.Contains(p.Cells[1].Error, "boom") {
		t.Fatalf("failed cell error = %q", p.Cells[1].Error)
	}
	if p.Cells[0].DurationMs != 10 {
		t.Fatalf("done cell duration = %g ms, want 10", p.Cells[0].DurationMs)
	}
	// Worker 1 is mid-cell; worker 0 went idle after its failure.
	if len(p.Workers) != 2 || !p.Workers[0].Idle || p.Workers[1].Idle {
		t.Fatalf("workers: %+v", p.Workers)
	}
	if p.Workers[1].Workload != "fft" {
		t.Fatalf("worker 1 on %q, want fft", p.Workers[1].Workload)
	}

	m := tr.Metrics()
	if m.Counters["campaign_cells_done"] != 1 || m.Counters["campaign_cells_failed"] != 1 ||
		m.Counters["campaign_cells_skipped"] != 1 || m.Counters["campaign_worker_panics"] != 1 {
		t.Fatalf("metrics counters: %v", m.Counters)
	}
	if m.Gauges["campaign_cells_running"] != 1 || m.Gauges["campaign_cells_total"] != 4 {
		t.Fatalf("metrics gauges: %v", m.Gauges)
	}
}

// TestTrackerETAMonotonic drives a constant-latency campaign on a fake
// clock and checks the ETA estimate never increases as cells complete.
func TestTrackerETAMonotonic(t *testing.T) {
	clk := newFakeClock()
	tr := testTracker(clk)
	const n = 32
	metas := make([]CellMeta, n)
	for i := range metas {
		metas[i] = CellMeta{Workload: "w", Scheme: "s", Profile: "p"}
	}
	tr.AddCells(metas)

	last := -1.0
	for i := 0; i < n; i++ {
		tr.Start(0, i)
		clk.advance(100 * time.Millisecond)
		tr.Done(0, i)
		p := tr.Progress()
		if !p.EtaKnown {
			t.Fatalf("cell %d: ETA unknown after a completion", i)
		}
		if last >= 0 && p.EtaSec > last+1e-9 {
			t.Fatalf("cell %d: ETA rose %.3fs -> %.3fs", i, last, p.EtaSec)
		}
		last = p.EtaSec
	}
	if last != 0 {
		t.Fatalf("final ETA = %g, want 0", last)
	}
	p := tr.Progress()
	if want := float64(n) / (float64(n) * 0.1); p.CellsPerSec != want {
		t.Fatalf("cells/sec = %g, want %g", p.CellsPerSec, want)
	}
	if p.P50Ms != 100 || p.P95Ms != 100 {
		t.Fatalf("latency quantiles p50=%g p95=%g, want 100", p.P50Ms, p.P95Ms)
	}
}

// TestTrackerNilSafe calls every hook on a nil tracker and checks the
// read side degrades to empty documents.
func TestTrackerNilSafe(t *testing.T) {
	var tr *CampaignTracker
	tr.BeginPhase("x")
	_ = tr.AddCells(nil)
	tr.Skip(0)
	tr.Start(0, 0)
	tr.Done(0, 0)
	tr.Fail(0, 0, errors.New("x"), true)
	tr.Heartbeat(0)
	tr.SetJournalStats(1, 2)
	if c := tr.Counter("x"); c != nil {
		t.Fatal("nil tracker Counter should be nil")
	}
	if p := tr.Progress(); p.Total != 0 {
		t.Fatalf("nil Progress: %+v", p)
	}
	if m := tr.Metrics(); len(m.Counters) != 0 {
		t.Fatalf("nil Metrics: %+v", m)
	}
	if stop := tr.StartWatchdog(time.Second, 4); stop == nil {
		t.Fatal("nil watchdog stop is nil")
	} else {
		stop()
	}
}

// TestTrackerHooksNilZeroAlloc pins the disabled-path contract: with no
// tracker attached (the no -listen case) the worker-pool hooks must not
// allocate — same bar as the telemetry tracer's disabled path.
func TestTrackerHooksNilZeroAlloc(t *testing.T) {
	var tr *CampaignTracker
	err := errors.New("static")
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Heartbeat(3)
		tr.Start(3, 17)
		tr.Done(3, 17)
		tr.Fail(3, 17, err, false)
		tr.Skip(17)
	})
	if allocs != 0 {
		t.Fatalf("nil-tracker hooks allocate %v/run, want 0", allocs)
	}
}

// TestWatchdogFlagsSlowCell exercises one watchdog pass directly: a cell
// running k× beyond the rolling p95 is logged exactly once.
func TestWatchdogFlagsSlowCell(t *testing.T) {
	clk := newFakeClock()
	var buf bytes.Buffer
	tr := NewCampaignTracker(slog.New(slog.NewTextHandler(&buf, nil)))
	tr.now = clk.now
	tr.birth = clk.now()

	metas := make([]CellMeta, minSamples+1)
	for i := range metas {
		metas[i] = CellMeta{Workload: "w", Scheme: "s", Profile: "p"}
	}
	tr.AddCells(metas)
	// minSamples completions at 10ms establish the p95.
	for i := 0; i < minSamples; i++ {
		tr.Start(0, i)
		clk.advance(10 * time.Millisecond)
		tr.Done(0, i)
	}
	// The straggler runs 100× p95.
	tr.Start(1, minSamples)
	clk.advance(time.Second)

	tr.sniff(4)
	if out := buf.String(); !strings.Contains(out, "slow cell") || !strings.Contains(out, "workload=w") {
		t.Fatalf("watchdog log missing: %q", out)
	}
	buf.Reset()
	tr.sniff(4)
	if out := buf.String(); out != "" {
		t.Fatalf("watchdog re-warned: %q", out)
	}
}
