package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro/internal/telemetry"
)

// RunInfo is the /runinfo manifest: everything needed to attribute and
// reproduce a running campaign. Fields the binary does not use are
// simply left empty.
type RunInfo struct {
	RunID      string    `json:"run_id"`
	Binary     string    `json:"binary"`
	Engine     string    `json:"engine"` // sim.EngineVersion
	GoVersion  string    `json:"go_version"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	PID        int       `json:"pid"`
	StartedAt  time.Time `json:"started_at"`

	Experiment string `json:"experiment,omitempty"`
	ParamsFP   string `json:"params_fp,omitempty"` // config.Params.Fingerprint()
	Seed       int64  `json:"seed,omitempty"`
	Scale      int    `json:"scale,omitempty"`
	Journal    string `json:"journal,omitempty"`
	ChaosSpec  string `json:"chaos,omitempty"`
	ChaosSeed  int64  `json:"chaos_seed,omitempty"`
}

// NewRunInfo fills the process-derived fields (run ID, go version,
// GOMAXPROCS, PID, start time) for the named binary; the caller sets
// the campaign-specific rest.
func NewRunInfo(binary, engine string) RunInfo {
	return RunInfo{
		RunID:      NewRunID(),
		Binary:     binary,
		Engine:     engine,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PID:        os.Getpid(),
		StartedAt:  time.Now(),
	}
}

// NewRunID returns a fresh 64-bit random run identifier in hex.
func NewRunID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; a timestamp
		// still distinguishes runs well enough for a manifest.
		return fmt.Sprintf("t%x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Health states a process can report on /healthz. Anything but
// HealthOK answers 503, so load balancers and the campaign coordinator
// route around a worker that is shutting down or serving a poisoned
// cell set without parsing the body.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded" // alive, but e.g. quarantined cells > 0
	HealthDraining = "draining" // shutting down; not accepting new work
)

// Health is the /healthz verdict.
type Health struct {
	State  string `json:"state"` // HealthOK, HealthDegraded, HealthDraining
	Reason string `json:"reason,omitempty"`
}

// Server wires the introspection endpoints over a tracker and an
// optional extra metrics source (the experiment context's accumulated
// simulation metrics). Tracker and Extra may both be nil; every
// endpoint degrades to an empty-but-valid document.
type Server struct {
	Info    RunInfo
	Tracker *CampaignTracker
	// Extra, when non-nil, returns additional metrics to merge into
	// /metrics (called per scrape; must be safe for concurrent use).
	Extra func() *telemetry.Snapshot
	// Health, when non-nil, decides the /healthz verdict per probe
	// (must be safe for concurrent use). nil always answers ok — a
	// plain campaign binary is healthy for exactly as long as it runs.
	Health func() Health
	Log    *slog.Logger
}

// Handler returns the introspection mux: /metrics, /progress, /healthz,
// /runinfo.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		h := Health{State: HealthOK}
		if s.Health != nil {
			h = s.Health()
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if h.State != HealthOK && h.State != "" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if h.State == "" {
			h.State = HealthOK
		}
		if h.Reason != "" {
			fmt.Fprintf(w, "%s: %s\n", h.State, h.Reason)
		} else {
			fmt.Fprintln(w, h.State)
		}
	})
	mux.HandleFunc("GET /runinfo", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, s.Info)
	})
	mux.HandleFunc("GET /progress", func(w http.ResponseWriter, r *http.Request) {
		s.writeJSON(w, s.Tracker.Progress())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := s.Tracker.Metrics()
		if s.Extra != nil {
			if err := snap.Merge(s.Extra()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, snap); err != nil && s.Log != nil {
			s.Log.Debug("metrics write aborted", "err", err)
		}
	})
	return mux
}

// writeJSON encodes v to the response. An Encode failure after the first
// byte is on the wire cannot change the status code anymore, but it is
// never silently dropped: it is logged so an operator tailing the server
// log can tell a truncated scrape from a healthy one.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log := s.Log
		if log == nil {
			log = slog.Default()
		}
		log.Warn("obs: response encode failed", "err", err)
	}
}

// ShutdownGrace is how long Serve's shutdown function waits for in-flight
// responses to complete before tearing connections down hard.
const ShutdownGrace = 2 * time.Second

// Serve binds addr (e.g. ":8090") and serves the introspection
// endpoints in the background until the returned shutdown function is
// called. The bind itself is synchronous so a bad -listen value fails
// fast at startup; the bound address (useful with ":0") is returned.
//
// Shutdown is graceful: in-flight /progress and /metrics responses get
// ShutdownGrace to finish — a scrape racing campaign completion sees a
// whole document, not a cut connection — and only connections still open
// after the grace period are closed hard.
func (s *Server) Serve(addr string) (bound string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	log := s.Log
	if log == nil {
		log = slog.Default()
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			log.Error("introspection server failed", "addr", addr, "err", err)
		}
	}()
	log.Info("introspection server listening",
		"addr", ln.Addr().String(), "run_id", s.Info.RunID,
		"endpoints", "/metrics /progress /healthz /runinfo")
	shutdown = func() {
		ctx, cancel := context.WithTimeout(context.Background(), ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			// Grace expired (or the context machinery failed): close hard
			// rather than leak the listener and hang the caller.
			log.Warn("obs: graceful shutdown incomplete — closing hard", "err", err)
			srv.Close()
		}
	}
	return ln.Addr().String(), shutdown, nil
}
