// Package obs is the live observability layer for experiment campaigns:
// a CampaignTracker that follows every matrix cell through its state
// machine (pending → running → done/failed, or skipped when the journal
// already proves it), a slow-cell watchdog, and an opt-in HTTP
// introspection server exposing /metrics (Prometheus text), /progress
// (JSON), /healthz, and /runinfo.
//
// The tracker is nil-safe by design: every hook is a method on
// *CampaignTracker that returns immediately on a nil receiver, takes
// only pre-existing values (ints, interned strings, error interfaces),
// and therefore allocates nothing when observability is disabled — the
// same contract as the telemetry tracer's disabled path. A campaign run
// without -listen is byte-identical to one before this package existed.
package obs

import (
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// CellState is one station of a matrix cell's life cycle.
type CellState uint8

const (
	// CellPending: registered, not yet picked up by a worker.
	CellPending CellState = iota
	// CellRunning: a worker is simulating it right now.
	CellRunning
	// CellDone: completed successfully (and journaled, if a journal is
	// attached).
	CellDone
	// CellFailed: simulation error, worker panic, timeout, or drained by
	// a cancellation.
	CellFailed
	// CellSkipped: never simulated — the journal already held a proof
	// under the identical configuration.
	CellSkipped
)

var cellStateNames = [...]string{"pending", "running", "done", "failed", "skipped"}

func (s CellState) String() string { return cellStateNames[s] }

// MarshalText renders the state for JSON progress snapshots.
func (s CellState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses the textual state, so /progress documents decode
// back into Progress (dashboards, tests).
func (s *CellState) UnmarshalText(b []byte) error {
	for i, n := range cellStateNames {
		if n == string(b) {
			*s = CellState(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown cell state %q", b)
}

// CellMeta identifies one cell for display.
type CellMeta struct {
	Workload string
	Scheme   string
	Profile  string
}

// latWindow is the rolling completed-cell latency window the p50/p95 and
// the watchdog threshold derive from.
const latWindow = 512

// maxErrLen bounds the per-cell error string kept for /progress.
const maxErrLen = 256

type cellRec struct {
	meta    CellMeta
	phase   string
	state   CellState
	worker  int
	started time.Time
	dur     time.Duration
	errMsg  string
	warned  bool // slow-cell watchdog already logged it
}

type workerRec struct {
	cell      int // tracker cell index, -1 when idle
	started   time.Time
	heartbeat time.Time
}

// CampaignTracker follows a campaign's cells across every matrix the
// experiment drivers run. All methods are safe for concurrent use and
// are no-ops (allocating nothing) on a nil receiver.
type CampaignTracker struct {
	mu    sync.Mutex
	now   func() time.Time // injectable for tests
	birth time.Time
	phase string

	cells   []cellRec
	counts  [len(cellStateNames)]int
	panics  uint64
	workers map[int]*workerRec

	// lat is a ring of the most recent completed-cell latencies.
	lat     [latWindow]time.Duration
	latN    int // total completions ever
	latHead int

	// live carries externally-injected counters (journal stats, chaos
	// stats) on the concurrency-safe snapshot path; /metrics renders its
	// snapshot merged with the tracker's computed gauges.
	live *telemetry.LiveRegistry
	log  *slog.Logger
}

// NewCampaignTracker returns a tracker logging watchdog findings to log
// (nil = slog.Default()).
func NewCampaignTracker(log *slog.Logger) *CampaignTracker {
	if log == nil {
		log = slog.Default()
	}
	t := &CampaignTracker{
		now:     time.Now,
		workers: map[int]*workerRec{},
		live:    telemetry.NewLiveRegistry(),
		log:     log,
	}
	t.birth = t.now()
	return t
}

// BeginPhase stamps subsequently-registered cells with an experiment
// name, so /progress can say which figure a campaign is inside.
func (t *CampaignTracker) BeginPhase(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.phase = name
	t.mu.Unlock()
}

// AddCells registers a matrix worth of cells as pending and returns the
// base index; cell i of the batch is tracker cell base+i. Callers must
// skip the call entirely when the tracker is nil — building the metas
// slice is the one hook that allocates.
func (t *CampaignTracker) AddCells(metas []CellMeta) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	base := len(t.cells)
	for _, m := range metas {
		t.cells = append(t.cells, cellRec{meta: m, phase: t.phase, state: CellPending, worker: -1})
		t.counts[CellPending]++
	}
	return base
}

// Skip marks a cell as journal-skipped: proven under the identical
// configuration, never simulated.
func (t *CampaignTracker) Skip(idx int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.transition(idx, CellSkipped)
}

// Start marks a cell running on a worker and stamps the worker's
// heartbeat.
func (t *CampaignTracker) Start(worker, idx int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.transition(idx, CellRunning)
	t.cells[idx].worker = worker
	t.cells[idx].started = now
	w := t.worker(worker)
	w.cell = idx
	w.started = now
	w.heartbeat = now
}

// Done marks a cell complete and folds its latency into the rolling
// window.
func (t *CampaignTracker) Done(worker, idx int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finish(worker, idx, CellDone, nil, false)
}

// Fail marks a cell failed (simulation error, journal-append error,
// cancellation drain, or — with panicked — a recovered worker panic).
// The error may be nil.
func (t *CampaignTracker) Fail(worker, idx int, err error, panicked bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finish(worker, idx, CellFailed, err, panicked)
}

// Heartbeat stamps a worker as alive; the worker pool calls it once per
// dequeued job, so a stale heartbeat means a worker stuck inside one
// cell.
func (t *CampaignTracker) Heartbeat(worker int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.worker(worker).heartbeat = t.now()
}

// Counter exposes the tracker's concurrency-safe registry, for
// externally-owned counters (journal stats, chaos stats) that should
// ride along on /metrics.
func (t *CampaignTracker) Counter(name string) *telemetry.AtomicCounter {
	if t == nil {
		return nil
	}
	return t.live.Counter(name)
}

// SetJournalStats records the journal's load-time counters as
// journal_cells_loaded / journal_lines_corrupt metrics.
func (t *CampaignTracker) SetJournalStats(loaded, corrupt int) {
	if t == nil {
		return
	}
	t.live.Counter("journal_cells_loaded").Add(uint64(loaded))
	t.live.Counter("journal_lines_corrupt").Add(uint64(corrupt))
}

// transition moves cell idx to state, keeping the per-state counts.
func (t *CampaignTracker) transition(idx int, to CellState) {
	if idx < 0 || idx >= len(t.cells) {
		return
	}
	c := &t.cells[idx]
	t.counts[c.state]--
	c.state = to
	t.counts[to]++
}

func (t *CampaignTracker) finish(worker, idx int, to CellState, err error, panicked bool) {
	now := t.now()
	t.transition(idx, to)
	if idx >= 0 && idx < len(t.cells) {
		c := &t.cells[idx]
		if !c.started.IsZero() {
			c.dur = now.Sub(c.started)
		}
		if err != nil {
			msg := err.Error()
			if len(msg) > maxErrLen {
				msg = msg[:maxErrLen] + "…"
			}
			c.errMsg = msg
		}
		if to == CellDone {
			t.lat[t.latHead] = c.dur
			t.latHead = (t.latHead + 1) % latWindow
			t.latN++
		}
	}
	if panicked {
		t.panics++
	}
	w := t.worker(worker)
	w.cell = -1
	w.heartbeat = now
}

// worker returns worker id's record, creating it idle on first use.
// Callers hold t.mu.
func (t *CampaignTracker) worker(id int) *workerRec {
	w := t.workers[id]
	if w == nil {
		w = &workerRec{cell: -1}
		t.workers[id] = w
	}
	return w
}

// latencies returns a sorted copy of the rolling window. Callers hold
// t.mu.
func (t *CampaignTracker) latencies() []time.Duration {
	n := t.latN
	if n > latWindow {
		n = latWindow
	}
	out := make([]time.Duration, n)
	copy(out, t.lat[:n])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// quantile reads q from a sorted latency window (0 when empty).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// WorkerProgress is one worker's live status in a /progress snapshot.
type WorkerProgress struct {
	ID        int       `json:"id"`
	Idle      bool      `json:"idle"`
	Workload  string    `json:"workload,omitempty"`
	Scheme    string    `json:"scheme,omitempty"`
	Profile   string    `json:"profile,omitempty"`
	StartedAt time.Time `json:"started_at,omitempty"`
	RunningMs float64   `json:"running_ms,omitempty"`
	Heartbeat time.Time `json:"heartbeat"`
}

// CellProgress is one cell's status in a /progress snapshot.
type CellProgress struct {
	Phase      string    `json:"phase,omitempty"`
	Workload   string    `json:"workload"`
	Scheme     string    `json:"scheme"`
	Profile    string    `json:"profile"`
	State      CellState `json:"state"`
	Worker     int       `json:"worker,omitempty"`
	DurationMs float64   `json:"duration_ms,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// Progress is the /progress document.
type Progress struct {
	Phase      string  `json:"phase,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec"`

	Total   int `json:"cells_total"`
	Pending int `json:"cells_pending"`
	Running int `json:"cells_running"`
	Done    int `json:"cells_done"`
	Failed  int `json:"cells_failed"`
	Skipped int `json:"cells_skipped"`

	Panics uint64 `json:"worker_panics"`

	// CellsPerSec is the completed-cell throughput since the tracker was
	// born; ETA divides the remaining cells by it (EtaKnown reports
	// whether at least one cell has completed, so the division is
	// meaningful).
	CellsPerSec float64 `json:"cells_per_sec"`
	EtaSec      float64 `json:"eta_sec"`
	EtaKnown    bool    `json:"eta_known"`

	// P50Ms / P95Ms are completed-cell latencies over the rolling
	// window; the slow-cell watchdog flags cells exceeding k× P95.
	P50Ms float64 `json:"cell_p50_ms"`
	P95Ms float64 `json:"cell_p95_ms"`

	Workers []WorkerProgress `json:"workers"`
	Cells   []CellProgress   `json:"cells"`
}

// Progress captures a point-in-time snapshot of the whole campaign.
func (t *CampaignTracker) Progress() *Progress {
	if t == nil {
		return &Progress{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	p := &Progress{
		Phase:      t.phase,
		ElapsedSec: now.Sub(t.birth).Seconds(),
		Total:      len(t.cells),
		Pending:    t.counts[CellPending],
		Running:    t.counts[CellRunning],
		Done:       t.counts[CellDone],
		Failed:     t.counts[CellFailed],
		Skipped:    t.counts[CellSkipped],
		Panics:     t.panics,
	}
	sorted := t.latencies()
	p.P50Ms = quantile(sorted, 0.50).Seconds() * 1e3
	p.P95Ms = quantile(sorted, 0.95).Seconds() * 1e3
	if el := now.Sub(t.birth).Seconds(); el > 0 {
		p.CellsPerSec = float64(t.counts[CellDone]) / el
	}
	if remaining := p.Pending + p.Running; p.Done > 0 && p.CellsPerSec > 0 {
		p.EtaSec = float64(remaining) / p.CellsPerSec
		p.EtaKnown = true
	}
	ids := make([]int, 0, len(t.workers))
	for id := range t.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		w := t.workers[id]
		wp := WorkerProgress{ID: id, Idle: w.cell < 0, Heartbeat: w.heartbeat}
		if w.cell >= 0 {
			c := &t.cells[w.cell]
			wp.Workload, wp.Scheme, wp.Profile = c.meta.Workload, c.meta.Scheme, c.meta.Profile
			wp.StartedAt = w.started
			wp.RunningMs = now.Sub(w.started).Seconds() * 1e3
		}
		p.Workers = append(p.Workers, wp)
	}
	p.Cells = make([]CellProgress, len(t.cells))
	for i := range t.cells {
		c := &t.cells[i]
		cp := CellProgress{
			Phase: c.phase, Workload: c.meta.Workload, Scheme: c.meta.Scheme,
			Profile: c.meta.Profile, State: c.state, Error: c.errMsg,
		}
		if c.state == CellRunning {
			cp.Worker = c.worker
			cp.DurationMs = now.Sub(c.started).Seconds() * 1e3
		} else if c.dur > 0 {
			cp.DurationMs = c.dur.Seconds() * 1e3
		}
		p.Cells[i] = cp
	}
	return p
}

// Metrics renders the campaign's current state as a mergeable snapshot:
// the concurrency-safe live registry (journal/chaos counters) plus the
// tracker's computed counts and rates. This is what /metrics serves.
func (t *CampaignTracker) Metrics() *telemetry.Snapshot {
	if t == nil {
		return telemetry.NewSnapshot()
	}
	s := t.live.Snapshot()
	p := t.Progress()
	s.Counters["campaign_cells_done"] = uint64(p.Done)
	s.Counters["campaign_cells_failed"] = uint64(p.Failed)
	s.Counters["campaign_cells_skipped"] = uint64(p.Skipped)
	s.Counters["campaign_worker_panics"] = p.Panics
	s.Gauges["campaign_cells_total"] = float64(p.Total)
	s.Gauges["campaign_cells_pending"] = float64(p.Pending)
	s.Gauges["campaign_cells_running"] = float64(p.Running)
	s.Gauges["campaign_cells_per_sec"] = p.CellsPerSec
	s.Gauges["campaign_uptime_seconds"] = p.ElapsedSec
	s.Gauges["campaign_cell_latency_p50_seconds"] = p.P50Ms / 1e3
	s.Gauges["campaign_cell_latency_p95_seconds"] = p.P95Ms / 1e3
	if p.EtaKnown {
		s.Gauges["campaign_eta_seconds"] = p.EtaSec
	}
	return s
}

// StartWatchdog begins the slow-cell watchdog: every interval it checks
// each running cell against k× the rolling p95 completed-cell latency
// and logs one warning per offender (once at least minSamples cells
// have completed, so early noise can't trip it). Returns a stop
// function; both are nil-safe.
func (t *CampaignTracker) StartWatchdog(interval time.Duration, k float64) (stop func()) {
	if t == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if k <= 0 {
		k = 4
	}
	done := make(chan struct{})
	tick := time.NewTicker(interval)
	go func() {
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				t.sniff(k)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// minSamples is how many completed cells the watchdog needs before its
// p95 threshold means anything.
const minSamples = 8

// sniff is one watchdog pass.
func (t *CampaignTracker) sniff(k float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.latN < minSamples {
		return
	}
	p95 := quantile(t.latencies(), 0.95)
	if p95 <= 0 {
		return
	}
	limit := time.Duration(k * float64(p95))
	now := t.now()
	for i := range t.cells {
		c := &t.cells[i]
		if c.state != CellRunning || c.warned || c.started.IsZero() {
			continue
		}
		if el := now.Sub(c.started); el > limit {
			c.warned = true
			t.log.Warn("slow cell",
				"workload", c.meta.Workload, "scheme", c.meta.Scheme,
				"profile", c.meta.Profile, "worker", c.worker,
				"elapsed", el.Round(time.Millisecond),
				"p95", p95.Round(time.Millisecond), "k", k)
		}
	}
}
