package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/telemetry"
)

// WritePrometheus renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4): counters and gauges as themselves,
// histograms as summaries (quantiles + _sum + _count). Metric names are
// sanitized to the Prometheus grammar — the simulator's dotted names
// ("cache.hits") become underscored ("cache_hits").
func WritePrometheus(w io.Writer, s *telemetry.Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Hists[n]
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", pn); err != nil {
			return err
		}
		for _, q := range [...]float64{0.5, 0.9, 0.99} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %d\n", pn, fmt.Sprintf("%g", q), h.Quantile(q)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.N); err != nil {
			return err
		}
	}
	return nil
}

// promName maps an internal metric name onto the Prometheus name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !ok {
			if i == 0 && r >= '0' && r <= '9' {
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
