package obs

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/telemetry"
)

// midCampaign builds a tracker frozen mid-run: one cell done, one
// running, one failed (a panic), one journal-skipped.
func midCampaign(clk *fakeClock) *CampaignTracker {
	tr := testTracker(clk)
	tr.BeginPhase("fig6")
	tr.AddCells([]CellMeta{
		{Workload: "sha", Scheme: "NVP", Profile: "rfhome"},
		{Workload: "fft", Scheme: "Sweep-EmptyBit", Profile: "rfhome"},
		{Workload: "crc", Scheme: "NVP", Profile: "rfhome"},
		{Workload: "dijkstra", Scheme: "Sweep-EmptyBit", Profile: "rfhome"},
	})
	tr.SetJournalStats(1, 0)
	tr.Skip(3)
	tr.Start(0, 0)
	clk.advance(20 * time.Millisecond)
	tr.Done(0, 0)
	tr.Start(0, 2)
	clk.advance(5 * time.Millisecond)
	tr.Fail(0, 2, errors.New("worker panic: index out of range"), true)
	tr.Start(1, 1) // left running at scrape time
	clk.advance(3 * time.Millisecond)
	return tr
}

func testServer(t *testing.T, tr *CampaignTracker, extra func() *telemetry.Snapshot) *httptest.Server {
	t.Helper()
	srv := &Server{
		Info:    NewRunInfo("sweeptest", "engine-test"),
		Tracker: tr,
		Extra:   extra,
	}
	srv.Info.Experiment = "fig6"
	srv.Info.Seed = 42
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerHealthz(t *testing.T) {
	ts := testServer(t, midCampaign(newFakeClock()), nil)
	code, body := get(t, ts.URL+"/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Fatalf("healthz: %d %q", code, body)
	}
}

// TestServerHealthzStates: a Health hook turns /healthz into a router
// signal — degraded and draining answer 503 with the state and reason
// in the body, ok stays 200, and a nil hook is always ok.
func TestServerHealthzStates(t *testing.T) {
	var (
		mu sync.Mutex
		h  Health
	)
	srv := &Server{
		Info:   NewRunInfo("sweeptest", "engine-test"),
		Health: func() Health { mu.Lock(); defer mu.Unlock(); return h },
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	for _, tc := range []struct {
		health   Health
		wantCode int
		wantBody string
	}{
		{Health{State: HealthOK}, http.StatusOK, "ok"},
		{Health{}, http.StatusOK, "ok"}, // zero value degrades to ok
		{Health{State: HealthDegraded, Reason: "3 quarantined cells"}, http.StatusServiceUnavailable, "degraded: 3 quarantined cells"},
		{Health{State: HealthDraining, Reason: "shutting down"}, http.StatusServiceUnavailable, "draining: shutting down"},
		{Health{State: HealthDraining}, http.StatusServiceUnavailable, "draining"},
	} {
		mu.Lock()
		h = tc.health
		mu.Unlock()
		code, body := get(t, ts.URL+"/healthz")
		if code != tc.wantCode || strings.TrimSpace(body) != tc.wantBody {
			t.Errorf("healthz for %+v: got %d %q, want %d %q", tc.health, code, body, tc.wantCode, tc.wantBody)
		}
	}
}

func TestServerRunInfo(t *testing.T) {
	ts := testServer(t, midCampaign(newFakeClock()), nil)
	code, body := get(t, ts.URL+"/runinfo")
	if code != http.StatusOK {
		t.Fatalf("runinfo: %d", code)
	}
	var info RunInfo
	if err := json.Unmarshal([]byte(body), &info); err != nil {
		t.Fatalf("runinfo decode: %v\n%s", err, body)
	}
	if info.Binary != "sweeptest" || info.Engine != "engine-test" ||
		info.Experiment != "fig6" || info.Seed != 42 {
		t.Fatalf("runinfo fields: %+v", info)
	}
	if len(info.RunID) != 16 {
		t.Fatalf("run id %q, want 16 hex chars", info.RunID)
	}
	if info.GoVersion != runtime.Version() || info.GOMAXPROCS < 1 || info.PID <= 0 {
		t.Fatalf("process fields: %+v", info)
	}
}

// TestServerProgressMidCampaign pins the /progress document for a
// campaign caught mid-flight with one failed and one journal-skipped
// cell.
func TestServerProgressMidCampaign(t *testing.T) {
	ts := testServer(t, midCampaign(newFakeClock()), nil)
	code, body := get(t, ts.URL+"/progress")
	if code != http.StatusOK {
		t.Fatalf("progress: %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("progress decode: %v\n%s", err, body)
	}
	if p.Phase != "fig6" || p.Total != 4 ||
		p.Done != 1 || p.Running != 1 || p.Failed != 1 || p.Skipped != 1 || p.Pending != 0 {
		t.Fatalf("progress counts: %+v", p)
	}
	if p.Panics != 1 {
		t.Fatalf("panics = %d", p.Panics)
	}
	if !p.EtaKnown || p.EtaSec <= 0 {
		t.Fatalf("eta: known=%v sec=%g (one cell running, one done)", p.EtaKnown, p.EtaSec)
	}
	// JSON round-trips cell state as its text form.
	if !strings.Contains(body, `"state": "skipped"`) || !strings.Contains(body, `"state": "failed"`) {
		t.Fatalf("state strings missing from:\n%s", body)
	}
	if !strings.Contains(body, "worker panic: index out of range") {
		t.Fatalf("failed cell error missing from:\n%s", body)
	}
}

// TestServerMetricsMidCampaign checks /metrics renders the campaign
// gauges, the journal counters, and the Extra simulation snapshot in
// Prometheus text form.
func TestServerMetricsMidCampaign(t *testing.T) {
	extra := func() *telemetry.Snapshot {
		s := telemetry.NewSnapshot()
		s.Counters["cache.hits"] = 12345
		s.Gauges["energy.compute_uj"] = 3.5
		h := stats.NewHist(64)
		h.Add(3)
		h.Add(7)
		s.Hists["region.insts"] = h
		return s
	}
	ts := testServer(t, midCampaign(newFakeClock()), extra)
	code, body := get(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE campaign_cells_done counter\ncampaign_cells_done 1",
		"campaign_cells_failed 1",
		"campaign_cells_skipped 1",
		"campaign_worker_panics 1",
		"# TYPE campaign_cells_total gauge\ncampaign_cells_total 4",
		"campaign_cells_running 1",
		"journal_cells_loaded 1",
		"journal_lines_corrupt 0",
		// Extra snapshot, names sanitized to the Prometheus grammar.
		"# TYPE cache_hits counter\ncache_hits 12345",
		"energy_compute_uj 3.5",
		"# TYPE region_insts summary",
		"region_insts_count 2",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestServerNilTracker: a server over a nil tracker (sweepsim before its
// single cell registers) must serve empty-but-valid documents.
func TestServerNilTracker(t *testing.T) {
	ts := testServer(t, nil, nil)
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	code, body := get(t, ts.URL+"/progress")
	if code != http.StatusOK {
		t.Fatalf("progress: %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil || p.Total != 0 {
		t.Fatalf("nil progress: err=%v %+v", err, p)
	}
	if code, body := get(t, ts.URL+"/metrics"); code != http.StatusOK || strings.Contains(body, "campaign_") {
		t.Fatalf("nil metrics: %d\n%s", code, body)
	}
}

// TestServeGracefulShutdown pins the shutdown contract: a response in
// flight when shutdown is called completes in full — the old srv.Close()
// path reset the connection mid-body. The Extra hook doubles as the
// blocking point: /metrics calls it, so the test holds a scrape open
// inside the handler while shutdown begins.
func TestServeGracefulShutdown(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv := &Server{
		Info:    NewRunInfo("sweeptest", "engine-test"),
		Tracker: midCampaign(newFakeClock()),
		Extra: func() *telemetry.Snapshot {
			close(entered)
			<-release
			s := telemetry.NewSnapshot()
			s.Counters["slow.scrape"] = 1
			return s
		},
	}
	addr, shutdown, err := srv.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	type scrape struct {
		code int
		body string
		err  error
	}
	got := make(chan scrape, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			got <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		got <- scrape{code: resp.StatusCode, body: string(body), err: err}
	}()

	<-entered // the scrape is inside the handler now
	done := make(chan struct{})
	go func() {
		shutdown()
		close(done)
	}()
	// Give Shutdown a moment to start draining, then let the handler
	// finish its response.
	time.Sleep(20 * time.Millisecond)
	close(release)

	sc := <-got
	if sc.err != nil {
		t.Fatalf("in-flight scrape aborted by shutdown: %v", sc.err)
	}
	if sc.code != http.StatusOK || !strings.Contains(sc.body, "slow_scrape 1") {
		t.Fatalf("in-flight scrape incomplete: %d\n%s", sc.code, sc.body)
	}
	select {
	case <-done:
	case <-time.After(2 * ShutdownGrace):
		t.Fatal("shutdown did not return")
	}
	// The listener is gone: new connections must fail.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"cache.hits":       "cache_hits",
		"sim-instrs/s":     "sim_instrs_s",
		"already_fine":     "already_fine",
		"ns:scoped":        "ns:scoped",
		"9starts_numeric":  "_9starts_numeric",
		"mixed.CASE-name7": "mixed_CASE_name7",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}
