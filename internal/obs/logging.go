package obs

import (
	"fmt"
	"io"
	"log/slog"
	"os"
)

// NewLogger builds the structured logger every cmd/ binary shares:
// format is "text" (human-oriented key=value, the default) or "json"
// (one object per line, for log shippers), verbose lifts the level from
// Info to Debug. The logger is installed as slog.Default so library
// code (the watchdog, the introspection server) logs through the same
// sink.
func NewLogger(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	if w == nil {
		w = os.Stderr
	}
	level := slog.LevelInfo
	if verbose {
		level = slog.LevelDebug
	}
	opts := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch format {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
	}
	l := slog.New(h)
	slog.SetDefault(l)
	return l, nil
}
