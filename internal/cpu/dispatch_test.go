package cpu

// Lockstep equivalence for the predecoded interpreter entry points: a
// core built from raw code (New, which predecodes itself) and a core
// reusing the linker's decode table (NewLinked) must retire the same
// instructions with the same costs, and Step must be a thin wrapper over
// StepFast.

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/workloads"
)

func TestNewLinkedMatchesNew(t *testing.T) {
	w, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	l, err := ir.Link(w.Build(1))
	if err != nil {
		t.Fatal(err)
	}
	a := New(l.Code, int64(l.EntryPC))
	b := NewLinked(l)
	ma := newFlatMem()
	mb := newFlatMem()
	for step := 0; step < 5_000_000 && !a.Halted; step++ {
		nsA := a.Step(0, ma, timing).Ns
		nsB, cl := b.StepFast(0, mb, timing)
		if nsA != nsB || a.PC != b.PC {
			t.Fatalf("step %d: (ns=%d, pc=%d) vs (ns=%d, pc=%d, class=%d)",
				step, nsA, a.PC, nsB, b.PC, cl)
		}
	}
	if !a.Halted || !b.Halted {
		t.Fatal("cores did not halt")
	}
	if a.Regs != b.Regs || a.Counts != b.Counts {
		t.Errorf("final state diverges:\n%v\n%v", a.Counts, b.Counts)
	}
}

func TestClassAt(t *testing.T) {
	w, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	l, err := ir.Link(w.Build(1))
	if err != nil {
		t.Fatal(err)
	}
	c := NewLinked(l)
	for pc := int64(0); pc < int64(len(l.Code)); pc++ {
		if got, want := c.ClassAt(pc), l.Code[pc].Op.Class(); got != want {
			t.Fatalf("pc %d: ClassAt = %d, Op.Class = %d", pc, got, want)
		}
	}
}
