package cpu

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// flatMem is a trivial MemSystem over a map, with fixed op latencies.
type flatMem struct {
	words   map[int64]int64
	loadNs  int64
	storeNs int64
	fetches int
	regions int
	clwbs   int
	fences  int
}

func newFlatMem() *flatMem { return &flatMem{words: map[int64]int64{}} }

func (m *flatMem) Fetch(now int64) Cost { m.fetches++; return Cost{} }

func (m *flatMem) Load(now int64, addr int64, byteWide bool) (int64, Cost) {
	w := m.words[addr&^7]
	if byteWide {
		return int64(byte(uint64(w) >> (8 * (uint64(addr) & 7)))), Cost{Ns: m.loadNs}
	}
	return m.words[addr], Cost{Ns: m.loadNs}
}

func (m *flatMem) Store(now int64, addr int64, val int64, byteWide bool) Cost {
	if byteWide {
		w := uint64(m.words[addr&^7])
		sh := 8 * (uint64(addr) & 7)
		w = w&^(0xFF<<sh) | uint64(byte(val))<<sh
		m.words[addr&^7] = int64(w)
	} else {
		m.words[addr] = val
	}
	return Cost{Ns: m.storeNs}
}

func (m *flatMem) RegionEnd(now int64) Cost        { m.regions++; return Cost{} }
func (m *flatMem) Clwb(now int64, addr int64) Cost { m.clwbs++; return Cost{} }
func (m *flatMem) Fence(now int64) Cost            { m.fences++; return Cost{} }

var timing = StepTiming{CycleNs: 2, MulCycles: 3, DivCycles: 12}

// run executes the linked program to halt and returns the core.
func run(t *testing.T, l *ir.Linked, m MemSystem) *CPU {
	t.Helper()
	c := New(l.Code, int64(l.EntryPC))
	for i := 0; i < 100000 && !c.Halted; i++ {
		c.Step(0, m, timing)
	}
	if !c.Halted {
		t.Fatal("program did not halt")
	}
	return c
}

func TestArithmeticAndControl(t *testing.T) {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	// sum 1..10 into r2
	en.MovI(0, 1)
	en.MovI(1, 10)
	en.MovI(2, 0)
	en.Jmp(head)
	head.Bge(0, 1, exit, body) // note: exits when r0 >= 10, so sums 1..9
	body.Add(2, 2, 0)
	body.AddI(0, 0, 1)
	body.Jmp(head)
	exit.MovI(3, 100)
	exit.St(3, 0, 2)
	exit.Halt()
	l, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := newFlatMem()
	c := run(t, l, m)
	if m.words[100] != 45 {
		t.Errorf("sum = %d", m.words[100])
	}
	if c.Counts.Stores != 1 || c.Counts.Branches != 10 {
		t.Errorf("counts: %+v", c.Counts)
	}
}

func TestCallRet(t *testing.T) {
	p := ir.NewProgram("t")
	callee := p.NewFunc("double")
	p.SetEntry(nil)
	main := p.NewFunc("main")
	p.SetEntry(main)
	ce := callee.Entry()
	ce.Add(1, 0, 0) // r1 = 2*r0
	ce.Ret()
	en := main.Entry()
	cont := main.NewBlock("cont")
	en.MovI(0, 21)
	en.Call(callee, cont)
	cont.MovI(2, 64)
	cont.St(2, 0, 1)
	cont.Halt()
	l, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := newFlatMem()
	c := run(t, l, m)
	if m.words[64] != 42 {
		t.Errorf("result = %d", m.words[64])
	}
	if c.Counts.Calls != 1 {
		t.Error("call count")
	}
}

func TestByteLoadStore(t *testing.T) {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	en.MovI(0, 64)
	en.MovI(1, 0x1FF) // low byte 0xFF
	en.StB(0, 3, 1)
	en.LdB(2, 0, 3)
	en.MovI(3, 128)
	en.St(3, 0, 2)
	en.Halt()
	l, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := newFlatMem()
	run(t, l, m)
	if m.words[128] != 0xFF {
		t.Errorf("byte round trip = %#x", m.words[128])
	}
}

func TestLatencies(t *testing.T) {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	en.MovI(0, 5)
	en.Mul(1, 0, 0)
	en.Div(2, 1, 0)
	en.Halt()
	l, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	c := New(l.Code, int64(l.EntryPC))
	m := newFlatMem()
	var total int64
	for !c.Halted {
		total += c.Step(0, m, timing).Ns
	}
	// movi 2 + mul 6 + div 24 + halt 2 = 34.
	if total != 34 {
		t.Errorf("total ns = %d", total)
	}
}

func TestCkptAndSavePCSemantics(t *testing.T) {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	en.MovI(5, 777)
	// Raw compiler-style instructions.
	en.Instrs = append(en.Instrs,
		isa.Instr{Op: isa.OpCkptSt, Src2: 5},
		isa.Instr{Op: isa.OpSavePC, Imm: 1234},
		isa.Instr{Op: isa.OpRegionEnd},
		isa.Instr{Op: isa.OpClwb, Src1: 5},
		isa.Instr{Op: isa.OpFence},
	)
	en.Halt()
	l, err := ir.Link(p)
	if err != nil {
		t.Fatal(err)
	}
	m := newFlatMem()
	c := run(t, l, m)
	if m.words[ir.CkptSlotAddr(5)] != 777 {
		t.Error("ckpt.st did not store to the register's slot")
	}
	// The linker re-patches every save.pc immediate to its own PC+2
	// (the next region's first instruction): movi=0, ckpt=1, save.pc=2.
	if m.words[ir.PCSlotAddr] != 4 {
		t.Errorf("PC slot = %d, want 4", m.words[ir.PCSlotAddr])
	}
	if m.regions != 1 || m.clwbs != 1 || m.fences != 1 {
		t.Errorf("hooks: %d %d %d", m.regions, m.clwbs, m.fences)
	}
	if c.Counts.CkptStores != 1 || c.Counts.SavePCs != 1 {
		t.Errorf("counts: %+v", c.Counts)
	}
}

func TestHaltStopsStepping(t *testing.T) {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	f.Entry().Halt()
	l, _ := ir.Link(p)
	c := New(l.Code, int64(l.EntryPC))
	m := newFlatMem()
	c.Step(0, m, timing)
	if !c.Halted {
		t.Fatal("not halted")
	}
	before := c.Counts.Executed
	if cost := c.Step(0, m, timing); cost.Ns != 0 || c.Counts.Executed != before {
		t.Error("step after halt had effects")
	}
}
