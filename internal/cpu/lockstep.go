// Lockstep multi-lane execution: N simulation instances that differ only
// in power-trace seed advance over one shared decoded instruction stream.
//
// The key structural fact the batch engine exploits is that the
// architectural register/PC trajectory of a run does not depend on the
// power trace: loads return the values the program stored (every scheme's
// crash-consistency protocol guarantees recovery to the architectural
// state), and control flow reads only registers. So while lanes are
// converged — same PC, same registers — the pack executes each
// instruction's semantics exactly once on a shared core, and only the
// per-lane quantities (simulated clock, energy accounting, epoch budget,
// memory-system state) are maintained per lane. Lanes leave the pack at
// power events (see internal/sim's batch coordinator) and rejoin when
// their private replay reaches the pack state again.
//
// The per-lane scalar state lives in a dense array of one-cache-line
// laneHot records for the duration of a RunLockstep call, so the hot loop
// walks contiguous memory with a single bounds check per lane instead of
// chasing a pointer per lane per slot. Two further reductions keep the
// shared fast path nearly lane-free:
//
//   - The simulated clock advances by the same (integer) ns on every lane
//     for shared slots, so the per-lane clocks are materialized lazily
//     from a single accumulated delta — integer addition is associative,
//     so this is exact. The segment-deadline stop is triggered by one
//     scalar slack counter (the minimum headroom across lanes), which
//     under uniform advance crosses zero on exactly the slot the first
//     lane's deadline fires.
//   - Energy is order-sensitive (float addition does not commute), so each
//     lane's Compute accumulator must take every per-slot add in program
//     order to stay bit-identical to the scalar engine. The shared path
//     therefore buffers the per-slot energies — identical across lanes —
//     in a ring and replays them lane-major in flushE, preserving each
//     lane's add order exactly while hiding the float-add latency. The
//     per-lane *watermark compare* is hoisted into one shared gate: a
//     running remainder that starts at the minimum watermark slack across
//     lanes and subtracts each slot's energy plus a rounding margin that
//     dominates the float accumulation error. The gate fires at or
//     (margin-rarely) before the exact crossing slot; on fire the pending
//     energy is materialized and the per-lane compares run eagerly, so
//     folds — and therefore budget stops and watermark updates — happen
//     on exactly the slot the scalar engine folds.
//
// Per-lane accounting below reproduces RunEpoch's per-instruction
// sequence bit for bit: the same ledger adds in the same order, the same
// Compute watermark, the same exact budget fold, the same latency and
// segment-deadline stops. The batch differential tests in internal/sim
// pin the equivalence against the scalar engine lane by lane.
package cpu

import (
	"fmt"
	"math"

	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/isa"
)

// LockstepLane is one lane's accounting state while it runs inside the
// pack. The fields are owned by the batch coordinator between RunLockstep
// calls; during a call the scalar state lives in the control's laneHot
// scratch and is written back on return.
type LockstepLane struct {
	// MS is the lane's private memory hierarchy; NeedsBackup its
	// structural-backup query (JIT schemes); Led its live energy ledger;
	// OnRegionEnd its region-size histogram sink.
	MS          MemSystem
	NeedsBackup func() bool
	Led         *energy.Ledger
	OnRegionEnd func(int)

	// Now is the lane's simulated clock.
	Now int64
	// Epoch state, mirroring RunEpoch: ledger total at epoch start, the
	// epoch energy budget, the Compute watermark below which the exact
	// budget fold is skippable, and the absolute segment deadline
	// (epochStart + segRem - maxInstrNs). A lane outside an epoch (the
	// precise fallback) carries +Inf budget/watermark and a far deadline,
	// so none of the epoch stops fire.
	LedStart    float64
	Budget      float64
	CSafe       float64
	SegDeadline int64
	// RiOff is the lane's region-length offset: the lane's running
	// region-instruction count is packRi + RiOff (power cycles reset a
	// lane's count mid-region without disturbing the pack's).
	RiOff int
	// Stop is set when the lane's epoch must close (budget reached,
	// latency bound, segment deadline, structural backup request, halt).
	// The pack returns at the end of the slot that set any lane's Stop;
	// the coordinator settles and re-plans stopped lanes.
	Stop bool
}

// laneHot is one lane's per-call epoch state. The lane's live Compute
// accumulator is NOT here: it lives in the control's contiguous comps
// array so the shared path's per-slot energy adds walk one cache line
// for the whole pack instead of striding across lane records.
type laneHot struct {
	csafe       float64 // fold watermark
	ledStart    float64 // ledger total at epoch start
	budget      float64 // epoch energy budget
	now         int64   // simulated clock (lazily materialized on shared slots)
	segDeadline int64   // absolute segment deadline
	stop        bool
	_           [7]byte // pad to 48 bytes
}

// LockstepControl parameterizes RunLockstep. The fields are run-constant
// except LimitExec/MaxSlots (refreshed per call) and PackRi (in/out: the
// pack's running region-instruction count).
type LockstepControl struct {
	Timing StepTiming
	// Per-instruction ledger charge, exactly as in RunEpoch: EByNs[ns]
	// when ns indexes the table, else EInstr + PRun*ns*1e-9.
	EByNs  []float64
	EInstr float64
	PRun   float64

	Jit        bool
	MaxInstrNs int64 // bound on a single instruction's latency
	// LimitExec stops the pack before its Executed counter reaches this
	// (the tightest lane's instruction budget); MaxSlots bounds one call
	// (cancellation chunking).
	LimitExec uint64
	MaxSlots  int

	PackRi int // pack's running region length (in/out)

	// Per-call scratch, reused across calls.
	hot    []laneHot
	comps  []float64 // per-lane Compute accumulators (register shadows of Led.Compute)
	nsBase []int64   // per-lane base latency for the current slot
	ering  []float64 // pending shared per-slot energies (see flushE)

	// Cross-lane minima/maxima accumulated by retireLane during a general
	// slot's fan-out, consumed to refresh the shared-path gates without a
	// second scan over the lanes.
	accMinSlackE float64
	accMaxComp   float64
	accMinSlack  int64
}

// flushE applies a run of pending shared per-slot energies to every
// lane's Compute accumulator. Each lane adds the same values in the same
// order a slot-by-slot loop would, so the result is bit-identical — but
// the lane-major order with four interleaved accumulator chains hides
// the float-add latency that a one-add-per-lane-per-slot loop serializes
// on, and pays the loop overhead once per run instead of once per slot.
func flushE(comps []float64, es []float64) {
	if len(comps) == 8 {
		// Single pass over the ring for the default batch width: eight
		// independent accumulator chains saturate the FP add ports, and es
		// is read once instead of twice.
		c0, c1, c2, c3 := comps[0], comps[1], comps[2], comps[3]
		c4, c5, c6, c7 := comps[4], comps[5], comps[6], comps[7]
		for _, e := range es {
			c0 += e
			c1 += e
			c2 += e
			c3 += e
			c4 += e
			c5 += e
			c6 += e
			c7 += e
		}
		comps[0], comps[1], comps[2], comps[3] = c0, c1, c2, c3
		comps[4], comps[5], comps[6], comps[7] = c4, c5, c6, c7
		return
	}
	i := 0
	for ; i+4 <= len(comps); i += 4 {
		c0, c1, c2, c3 := comps[i], comps[i+1], comps[i+2], comps[i+3]
		for _, e := range es {
			c0 += e
			c1 += e
			c2 += e
			c3 += e
		}
		comps[i], comps[i+1], comps[i+2], comps[i+3] = c0, c1, c2, c3
	}
	for ; i < len(comps); i++ {
		c := comps[i]
		for _, e := range es {
			c += e
		}
		comps[i] = c
	}
}

// eGate computes the shared watermark gate for the fast path: the minimum
// fold-watermark slack across lanes, and a per-slot rounding margin some
// three decimal orders above the worst-case float64 accumulation error of
// one add at the pack's energy scale. While the shared energy accumulated
// since the last per-lane check (plus one margin per slot) stays below
// the slack minimum, no lane's Compute can have reached its watermark,
// so the per-lane compares are skippable.
func eGate(hot []laneHot, comps []float64) (minSlackE, gateEps float64) {
	minSlackE = math.Inf(1)
	maxComp := 0.0
	for i := range hot {
		if sl := hot[i].csafe - comps[i]; sl < minSlackE {
			minSlackE = sl
		}
		if comps[i] > maxComp {
			maxComp = comps[i]
		}
	}
	return minSlackE, 1e-12 * (maxComp + 1)
}

// fold is RunEpoch's exact budget fold: refresh the live ledger, compare
// the epoch's drawn total against the budget, and either stop the lane or
// advance the watermark by half the remaining slack. Kept out of line so
// the shared-path per-lane loop stays tight; folds are watermark-rare.
//
//go:noinline
func (h *laneHot) fold(led *energy.Ledger, comp float64) (stop bool) {
	led.Compute = comp // the fold reads the live ledger field
	tt := led.Total()
	if tt-h.ledStart >= h.budget {
		h.stop = true
		return true
	}
	slack := h.budget - (tt - h.ledStart)
	if slack > (tt+1)*1e-9 {
		h.csafe = comp + 0.5*slack
	} else {
		h.csafe = comp
	}
	return false
}

// retireLane performs one lane's per-instruction accounting for the
// general (memory-touching or charged-fetch) path, mirroring the tail of
// RunEpoch's per-instruction sequence: the ledger Compute add, the clock
// advance, the structural-backup query after memory-touching
// instructions, the latency/deadline stops, and the watermark-guarded
// exact budget fold. Reports whether the lane stopped.
func (ctl *LockstepControl) retireLane(h *laneHot, ln *LockstepLane, compp *float64, ns int64, memTouch bool) bool {
	comp := *compp
	if ns < int64(len(ctl.EByNs)) {
		comp += ctl.EByNs[ns]
	} else {
		comp += ctl.EInstr + ctl.PRun*float64(ns)*1e-9
	}
	*compp = comp
	now := h.now + ns
	h.now = now
	needBk := false
	if ctl.Jit && memTouch {
		needBk = ln.NeedsBackup()
	}
	stop := h.stop
	if ns >= ctl.MaxInstrNs || now >= h.segDeadline {
		stop = true
	}
	if memTouch || comp >= h.csafe {
		if h.fold(ln.Led, comp) {
			stop = true
		}
	}
	// Every lane passes through here on a general slot, so the shared-gate
	// and deadline minima for the following shared slots are maintained
	// inline instead of with a separate scan over the lanes.
	if sl := h.csafe - comp; sl < ctl.accMinSlackE {
		ctl.accMinSlackE = sl
	}
	if comp > ctl.accMaxComp {
		ctl.accMaxComp = comp
	}
	if sl := h.segDeadline - now; sl < ctl.accMinSlack {
		ctl.accMinSlack = sl
	}
	if needBk {
		stop = true
	}
	h.stop = stop
	return stop
}

// RunLockstep advances the pack — and every lane's accounting — until any
// lane stops, the pack halts, MaxSlots retire, or Executed reaches
// LimitExec. Each instruction's decode/dispatch and register semantics
// run once on the shared core c; per-lane work is the accounting in
// retireLane plus, for memory-touching instructions, each lane's private
// memory-system call at its own clock. Lanes must be converged with the
// pack on entry; all lanes observe every retired slot.
//
// Loads must return the same value on every lane — converged lanes are
// architecturally identical, so a cross-lane mismatch means a scheme's
// recovery protocol lost a write, and the pack panics loudly rather than
// silently splitting the trajectory.
func (c *CPU) RunLockstep(ctl *LockstepControl, lanes []*LockstepLane) int {
	if c.Halted || len(lanes) == 0 {
		return 0
	}
	n := len(lanes)
	if cap(ctl.hot) < n {
		ctl.hot = make([]laneHot, n)
		ctl.comps = make([]float64, n)
		ctl.nsBase = make([]int64, n)
	}
	hot := ctl.hot[:n:n]
	comps := ctl.comps[:n:n]
	nsBase := ctl.nsBase[:n:n]

	t := ctl.Timing
	dec := c.dec
	fetchFree := c.fetchFree
	eByNs := ctl.EByNs
	pc := c.PC
	executed := c.Counts.Executed
	packRi := ctl.PackRi

	// minSlack is the tightest segment-deadline headroom across lanes.
	// Shared slots advance every clock by the same ns, so decrementing
	// this one scalar tracks the exact slot the first deadline fires;
	// general-path slots advance clocks unevenly and recompute it.
	minSlack := int64(math.MaxInt64)
	// nowDelta is the clock advance accumulated by shared slots since the
	// clocks were last materialized (exact: integer addition commutes).
	var nowDelta int64
	for i, ln := range lanes {
		hot[i] = laneHot{
			csafe:       ln.CSafe,
			ledStart:    ln.LedStart,
			budget:      ln.Budget,
			now:         ln.Now,
			segDeadline: ln.SegDeadline,
		}
		comps[i] = ln.Led.Compute
		if sl := ln.SegDeadline - ln.Now; sl < minSlack {
			minSlack = sl
		}
	}
	// Watermark-gate state for the shared path, kept as a running
	// remainder: gateRem starts at the minimum watermark slack and each
	// shared slot subtracts its energy plus the rounding margin, so one
	// subtract-and-compare decides whether any lane could fold. Pending
	// energies are buffered in ering and applied lane-major by flushE at
	// gate fires, memory-system slots, ring overflow, and return.
	if ctl.ering == nil {
		ctl.ering = make([]float64, 256)
	}
	ering := ctl.ering
	en := 0
	minSlackE, gateEps := eGate(hot, comps)
	gateRem := minSlackE
	if fetchFree {
		// With free fetches the base latency is the shared cycle time for
		// every slot; only charged fetches (NVP) refill this per slot.
		for i := range nsBase {
			nsBase[i] = t.CycleNs
		}
	}

	slots := 0
	stopped := false
	for !stopped && slots < ctl.MaxSlots && executed < ctl.LimitExec {
		d := &dec[pc]
		cl := d.Class
		slots++
		executed++
		next := pc + 1

		if fetchFree && isa.ClassFlags[cl]&isa.FlagMemSystem == 0 {
			// Shared path: the instruction provably never enters any
			// lane's memory system, so its semantics and latency are
			// lane-independent; only the energy accounting fans out.
			ns := t.CycleNs
			switch cl {
			case isa.ClassNop:

			case isa.ClassAdd:
				c.Regs[d.Dst] = c.Regs[d.Src1] + c.Regs[d.Src2]
			case isa.ClassSub:
				c.Regs[d.Dst] = c.Regs[d.Src1] - c.Regs[d.Src2]
			case isa.ClassAnd:
				c.Regs[d.Dst] = c.Regs[d.Src1] & c.Regs[d.Src2]
			case isa.ClassOr:
				c.Regs[d.Dst] = c.Regs[d.Src1] | c.Regs[d.Src2]
			case isa.ClassXor:
				c.Regs[d.Dst] = c.Regs[d.Src1] ^ c.Regs[d.Src2]
			case isa.ClassAddI:
				c.Regs[d.Dst] = c.Regs[d.Src1] + d.Imm
			case isa.ClassAndI:
				c.Regs[d.Dst] = c.Regs[d.Src1] & d.Imm
			case isa.ClassOrI:
				c.Regs[d.Dst] = c.Regs[d.Src1] | d.Imm
			case isa.ClassXorI:
				c.Regs[d.Dst] = c.Regs[d.Src1] ^ d.Imm
			case isa.ClassALURR:
				c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
			case isa.ClassALURRMul:
				c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
				ns += (t.MulCycles - 1) * t.CycleNs
			case isa.ClassALURRDiv:
				c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
				ns += (t.DivCycles - 1) * t.CycleNs
			case isa.ClassALURI:
				c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
			case isa.ClassALURIMul:
				c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
				ns += (t.MulCycles - 1) * t.CycleNs
			case isa.ClassMovI:
				c.Regs[d.Dst] = d.Imm
			case isa.ClassMov:
				c.Regs[d.Dst] = c.Regs[d.Src1]

			case isa.ClassBeq:
				c.Counts.Branches++
				if c.Regs[d.Src1] == c.Regs[d.Src2] {
					next = int64(d.Target)
				}
			case isa.ClassBne:
				c.Counts.Branches++
				if c.Regs[d.Src1] != c.Regs[d.Src2] {
					next = int64(d.Target)
				}
			case isa.ClassBranch:
				c.Counts.Branches++
				if isa.BranchTaken(d.Op, c.Regs[d.Src1], c.Regs[d.Src2]) {
					next = int64(d.Target)
				}
			case isa.ClassJmp:
				next = int64(d.Target)
			case isa.ClassCall:
				c.Counts.Calls++
				c.Regs[isa.LR] = pc + 1
				next = int64(d.Target)
			case isa.ClassRet:
				next = c.Regs[isa.LR]
			case isa.ClassHalt:
				c.Halted = true
				next = pc

			default:
				panic(fmt.Sprintf("cpu: unknown class %d at pc %d", cl, pc))
			}
			pc = next
			packRi++

			var e float64
			if ns < int64(len(eByNs)) {
				e = eByNs[ns]
			} else {
				e = ctl.EInstr + ctl.PRun*float64(ns)*1e-9
			}
			nowDelta += ns
			minSlack -= ns
			if bigNs := ns >= ctl.MaxInstrNs; bigNs || minSlack <= 0 {
				// A latency or deadline stop fires on exactly this slot:
				// materialize the clocks and mark the stopping lanes.
				for i := range hot {
					hot[i].now += nowDelta
					if bigNs || hot[i].now >= hot[i].segDeadline {
						hot[i].stop = true
						stopped = true
					}
				}
				nowDelta = 0
			}
			ering[en] = e
			en++
			gateRem -= e + gateEps
			if gateRem <= 0 {
				// The earliest possible watermark crossing is on this slot
				// (or the margin fired a hair early): materialize the
				// pending energy and run the per-lane compares eagerly,
				// exactly as the scalar engine would.
				flushE(comps, ering[:en])
				en = 0
				for i := range hot {
					h := &hot[i]
					if comps[i] >= h.csafe {
						if h.fold(lanes[i].Led, comps[i]) {
							stopped = true
						}
					}
				}
				minSlackE, gateEps = eGate(hot, comps)
				gateRem = minSlackE
			} else if en == len(ering) {
				// Ring full without a possible crossing: materialize and
				// keep the gate remainder running.
				flushE(comps, ering)
				en = 0
			}
			if c.Halted {
				for i := range hot {
					hot[i].stop = true
				}
				stopped = true
			}
			continue
		}

		// General path: the instruction enters the memory system (or
		// fetches are charged, so every instruction does). Clocks must be
		// live for the per-lane memory-system calls; then the per-lane
		// base latency — NVP pays a private fetch per lane — the class
		// semantics once, and each lane's memory-system call and
		// accounting fanned out at its own clock.
		if nowDelta != 0 {
			for i := range hot {
				hot[i].now += nowDelta
			}
			nowDelta = 0
		}
		if en != 0 {
			flushE(comps, ering[:en])
			en = 0
		}
		ctl.accMinSlackE = math.Inf(1)
		ctl.accMaxComp = 0
		ctl.accMinSlack = math.MaxInt64
		if !fetchFree {
			for i, ln := range lanes {
				h := &hot[i]
				ln.Led.Compute = comps[i]
				nsBase[i] = t.CycleNs + ln.MS.Fetch(h.now).Ns
				comps[i] = ln.Led.Compute
			}
		}
		memTouch := !fetchFree || cl.TouchesMemSystem()
		var extraNs int64
		memDone := false

		switch cl {
		case isa.ClassNop:

		case isa.ClassAdd:
			c.Regs[d.Dst] = c.Regs[d.Src1] + c.Regs[d.Src2]
		case isa.ClassSub:
			c.Regs[d.Dst] = c.Regs[d.Src1] - c.Regs[d.Src2]
		case isa.ClassAnd:
			c.Regs[d.Dst] = c.Regs[d.Src1] & c.Regs[d.Src2]
		case isa.ClassOr:
			c.Regs[d.Dst] = c.Regs[d.Src1] | c.Regs[d.Src2]
		case isa.ClassXor:
			c.Regs[d.Dst] = c.Regs[d.Src1] ^ c.Regs[d.Src2]
		case isa.ClassAddI:
			c.Regs[d.Dst] = c.Regs[d.Src1] + d.Imm
		case isa.ClassAndI:
			c.Regs[d.Dst] = c.Regs[d.Src1] & d.Imm
		case isa.ClassOrI:
			c.Regs[d.Dst] = c.Regs[d.Src1] | d.Imm
		case isa.ClassXorI:
			c.Regs[d.Dst] = c.Regs[d.Src1] ^ d.Imm
		case isa.ClassALURR:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
		case isa.ClassALURRMul:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
			extraNs = (t.MulCycles - 1) * t.CycleNs
		case isa.ClassALURRDiv:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
			extraNs = (t.DivCycles - 1) * t.CycleNs
		case isa.ClassALURI:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
		case isa.ClassALURIMul:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
			extraNs = (t.MulCycles - 1) * t.CycleNs
		case isa.ClassMovI:
			c.Regs[d.Dst] = d.Imm
		case isa.ClassMov:
			c.Regs[d.Dst] = c.Regs[d.Src1]

		case isa.ClassLd, isa.ClassLdB:
			c.Counts.Loads++
			addr := c.Regs[d.Src1] + d.Imm
			byteWide := cl == isa.ClassLdB
			var v0 int64
			for i, ln := range lanes {
				h := &hot[i]
				ln.Led.Compute = comps[i]
				v, mc := ln.MS.Load(h.now+nsBase[i], addr, byteWide)
				comps[i] = ln.Led.Compute
				if i == 0 {
					v0 = v
				} else if v != v0 {
					panic(fmt.Sprintf("cpu: lockstep load divergence at pc %d addr %#x: lane 0 read %d, lane %d read %d",
						pc, addr, v0, i, v))
				}
				if ctl.retireLane(h, ln, &comps[i], nsBase[i]+mc.Ns, true) {
					stopped = true
				}
			}
			c.Regs[d.Dst] = v0
			memDone = true
		case isa.ClassSt, isa.ClassStB:
			c.Counts.Stores++
			addr := c.Regs[d.Src1] + d.Imm
			val := c.Regs[d.Src2]
			byteWide := cl == isa.ClassStB
			for i, ln := range lanes {
				h := &hot[i]
				ln.Led.Compute = comps[i]
				mc := ln.MS.Store(h.now+nsBase[i], addr, val, byteWide)
				comps[i] = ln.Led.Compute
				if ctl.retireLane(h, ln, &comps[i], nsBase[i]+mc.Ns, true) {
					stopped = true
				}
			}
			memDone = true

		case isa.ClassBeq:
			c.Counts.Branches++
			if c.Regs[d.Src1] == c.Regs[d.Src2] {
				next = int64(d.Target)
			}
		case isa.ClassBne:
			c.Counts.Branches++
			if c.Regs[d.Src1] != c.Regs[d.Src2] {
				next = int64(d.Target)
			}
		case isa.ClassBranch:
			c.Counts.Branches++
			if isa.BranchTaken(d.Op, c.Regs[d.Src1], c.Regs[d.Src2]) {
				next = int64(d.Target)
			}
		case isa.ClassJmp:
			next = int64(d.Target)
		case isa.ClassCall:
			c.Counts.Calls++
			c.Regs[isa.LR] = pc + 1
			next = int64(d.Target)
		case isa.ClassRet:
			next = c.Regs[isa.LR]
		case isa.ClassHalt:
			c.Halted = true
			next = pc

		case isa.ClassCkptSt:
			c.Counts.CkptStores++
			addr := ir.CkptSlotAddr(d.Src2)
			val := c.Regs[d.Src2]
			for i, ln := range lanes {
				h := &hot[i]
				ln.Led.Compute = comps[i]
				mc := ln.MS.Store(h.now+nsBase[i], addr, val, false)
				comps[i] = ln.Led.Compute
				if ctl.retireLane(h, ln, &comps[i], nsBase[i]+mc.Ns, true) {
					stopped = true
				}
			}
			memDone = true
		case isa.ClassSavePC:
			c.Counts.SavePCs++
			for i, ln := range lanes {
				h := &hot[i]
				ln.Led.Compute = comps[i]
				mc := ln.MS.Store(h.now+nsBase[i], ir.PCSlotAddr, d.Imm, false)
				comps[i] = ln.Led.Compute
				if ctl.retireLane(h, ln, &comps[i], nsBase[i]+mc.Ns, true) {
					stopped = true
				}
			}
			memDone = true
		case isa.ClassRegionEnd:
			c.Counts.RegionEnds++
			for i, ln := range lanes {
				h := &hot[i]
				ln.Led.Compute = comps[i]
				mc := ln.MS.RegionEnd(h.now + nsBase[i])
				comps[i] = ln.Led.Compute
				if ctl.retireLane(h, ln, &comps[i], nsBase[i]+mc.Ns, true) {
					stopped = true
				}
			}
			memDone = true
		case isa.ClassClwb:
			c.Counts.Clwbs++
			addr := c.Regs[d.Src1] + d.Imm
			for i, ln := range lanes {
				h := &hot[i]
				ln.Led.Compute = comps[i]
				mc := ln.MS.Clwb(h.now+nsBase[i], addr)
				comps[i] = ln.Led.Compute
				if ctl.retireLane(h, ln, &comps[i], nsBase[i]+mc.Ns, true) {
					stopped = true
				}
			}
			memDone = true
		case isa.ClassFence:
			c.Counts.Fences++
			for i, ln := range lanes {
				h := &hot[i]
				ln.Led.Compute = comps[i]
				mc := ln.MS.Fence(h.now + nsBase[i])
				comps[i] = ln.Led.Compute
				if ctl.retireLane(h, ln, &comps[i], nsBase[i]+mc.Ns, true) {
					stopped = true
				}
			}
			memDone = true

		default:
			panic(fmt.Sprintf("cpu: unknown class %d at pc %d", cl, pc))
		}
		pc = next

		if !memDone {
			// Lane-independent semantics under charged fetches (or a
			// halt): the per-lane latency is nsBase + the class extra.
			for i, ln := range lanes {
				if ctl.retireLane(&hot[i], ln, &comps[i], nsBase[i]+extraNs, memTouch) {
					stopped = true
				}
			}
		}
		// General-path retires advance the clocks unevenly and fold every
		// lane (moving the watermarks); the retires accumulated the fresh
		// deadline-slack minimum and watermark gate along the way.
		minSlack = ctl.accMinSlack
		gateRem = ctl.accMinSlackE
		gateEps = 1e-12 * (ctl.accMaxComp + 1)
		if isa.ClassFlags[cl]&isa.FlagDelim != 0 {
			for _, ln := range lanes {
				ln.OnRegionEnd(packRi + ln.RiOff)
				ln.RiOff = 0
			}
			packRi = 0
		} else {
			packRi++
		}
		if c.Halted {
			for i := range hot {
				hot[i].stop = true
			}
			stopped = true
		}
	}

	if nowDelta != 0 {
		for i := range hot {
			hot[i].now += nowDelta
		}
	}
	if en != 0 {
		flushE(comps, ering[:en])
	}
	c.PC = pc
	c.Counts.Executed = executed
	ctl.PackRi = packRi
	for i, ln := range lanes {
		h := &hot[i]
		ln.Led.Compute = comps[i]
		ln.CSafe = h.csafe
		ln.Now = h.now
		ln.Stop = h.stop
	}
	return slots
}
