// Package cpu implements the single-issue in-order core: an interpreter
// over isa code with per-instruction latency accounting. All memory
// behaviour — caches, persist buffers, NVM, persistence stalls — is behind
// the MemSystem interface that each architecture scheme implements.
//
// Energy is not returned by Step: schemes and the engine attribute energy
// to the shared ledger directly, and the engine draws the ledger delta from
// the capacitor after each step (see internal/sim).
package cpu

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Regs is the architectural register file.
type Regs [isa.NumRegs]int64

// Cost is the time cost of an operation in nanoseconds.
type Cost struct {
	Ns int64
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) { c.Ns += o.Ns }

// MemSystem is the per-scheme memory hierarchy. now is the current
// simulation time; implementations use it to resolve persistence stalls
// and background completions.
type MemSystem interface {
	// Fetch charges the instruction-fetch cost beyond the 1-cycle base
	// (only the cache-free NVP pays NVM latency here).
	Fetch(now int64) Cost
	// Load reads a word (or a zero-extended byte) from addr.
	Load(now int64, addr int64, byteWide bool) (int64, Cost)
	// Store writes a word (or the low byte of val) to addr.
	Store(now int64, addr int64, val int64, byteWide bool) Cost
	// RegionEnd runs the SweepCache region-boundary protocol; other
	// schemes never see it.
	RegionEnd(now int64) Cost
	// Clwb writes back the line containing addr (ReplayCache).
	Clwb(now int64, addr int64) Cost
	// Fence drains outstanding writebacks (ReplayCache).
	Fence(now int64) Cost
}

// Counts tallies dynamically executed instructions by class.
type Counts struct {
	Executed   uint64
	Loads      uint64
	Stores     uint64 // plain stores only
	CkptStores uint64
	SavePCs    uint64
	RegionEnds uint64
	Clwbs      uint64
	Fences     uint64
	Calls      uint64
	Branches   uint64
}

// CPU is the architectural core state.
type CPU struct {
	Regs   Regs
	PC     int64
	Code   []isa.Instr
	Halted bool
	Counts Counts

	// dec is the predecoded dispatch table, position-matched to Code.
	dec []isa.Decoded
	// fetchFree elides the per-instruction ms.Fetch call for memory
	// systems that declare it cost- and effect-free (see FreeFetcher).
	fetchFree bool
}

// FreeFetcher is an optional MemSystem capability: implementations whose
// Fetch never charges time or energy and has no side effects return true,
// and the interpreter drops the call from the per-instruction path. The
// cache-free NVP pays NVM latency on every fetch and must return false.
type FreeFetcher interface {
	FetchIsFree() bool
}

// SetFetchFree configures fetch elision; callers must only enable it for
// a memory system whose Fetch is a no-op.
func (c *CPU) SetFetchFree(free bool) { c.fetchFree = free }

// New returns a core ready to run code from entryPC, predecoding the
// dispatch table itself.
func New(code []isa.Instr, entryPC int64) *CPU {
	return NewPredecoded(code, isa.Predecode(code), entryPC)
}

// NewPredecoded returns a core over an already-predecoded program (the
// linker decodes once; the compile cache shares the table across runs).
// dec must be position-matched to code.
func NewPredecoded(code []isa.Instr, dec []isa.Decoded, entryPC int64) *CPU {
	if len(dec) != len(code) {
		panic(fmt.Sprintf("cpu: decode table length %d != code length %d", len(dec), len(code)))
	}
	return &CPU{Code: code, dec: dec, PC: entryPC}
}

// NewLinked returns a core for a linked program, reusing its link-time
// decode table.
func NewLinked(l *ir.Linked) *CPU {
	return NewPredecoded(l.Code, l.Dec, int64(l.EntryPC))
}

// StepTiming carries the per-op latencies the core itself owns.
type StepTiming struct {
	CycleNs   int64
	MulCycles int64
	DivCycles int64
}

// Step executes the instruction at PC against ms and returns its time
// cost. It panics on malformed code (the linker guarantees well-formed
// programs).
func (c *CPU) Step(now int64, ms MemSystem, t StepTiming) Cost {
	ns, _ := c.StepFast(now, ms, t)
	return Cost{Ns: ns}
}

// StepFast executes the instruction at PC against ms and returns its time
// cost in nanoseconds plus its dispatch class, through the predecoded
// table: one dense switch, no opcode range tests, and the class flows
// back to the engine so it never re-reads the instruction word.
func (c *CPU) StepFast(now int64, ms MemSystem, t StepTiming) (int64, isa.Class) {
	if c.Halted {
		return 0, isa.ClassHalt
	}
	d := &c.dec[c.PC]
	ns := t.CycleNs
	if !c.fetchFree {
		ns += ms.Fetch(now).Ns
	}
	next := c.PC + 1
	c.Counts.Executed++

	switch d.Class {
	case isa.ClassNop:

	case isa.ClassALURR:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
	case isa.ClassALURRMul:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
		ns += (t.MulCycles - 1) * t.CycleNs
	case isa.ClassALURRDiv:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
		ns += (t.DivCycles - 1) * t.CycleNs
	case isa.ClassALURI:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
	case isa.ClassALURIMul:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
		ns += (t.MulCycles - 1) * t.CycleNs
	case isa.ClassMovI:
		c.Regs[d.Dst] = d.Imm
	case isa.ClassMov:
		c.Regs[d.Dst] = c.Regs[d.Src1]

	case isa.ClassLd:
		c.Counts.Loads++
		v, mc := ms.Load(now+ns, c.Regs[d.Src1]+d.Imm, false)
		c.Regs[d.Dst] = v
		ns += mc.Ns
	case isa.ClassLdB:
		c.Counts.Loads++
		v, mc := ms.Load(now+ns, c.Regs[d.Src1]+d.Imm, true)
		c.Regs[d.Dst] = v
		ns += mc.Ns
	case isa.ClassSt:
		c.Counts.Stores++
		ns += ms.Store(now+ns, c.Regs[d.Src1]+d.Imm, c.Regs[d.Src2], false).Ns
	case isa.ClassStB:
		c.Counts.Stores++
		ns += ms.Store(now+ns, c.Regs[d.Src1]+d.Imm, c.Regs[d.Src2], true).Ns

	case isa.ClassBranch:
		c.Counts.Branches++
		if isa.BranchTaken(d.Op, c.Regs[d.Src1], c.Regs[d.Src2]) {
			next = int64(d.Target)
		}
	case isa.ClassJmp:
		next = int64(d.Target)
	case isa.ClassCall:
		c.Counts.Calls++
		c.Regs[isa.LR] = c.PC + 1
		next = int64(d.Target)
	case isa.ClassRet:
		next = c.Regs[isa.LR]
	case isa.ClassHalt:
		c.Halted = true
		next = c.PC

	case isa.ClassCkptSt:
		c.Counts.CkptStores++
		ns += ms.Store(now+ns, ir.CkptSlotAddr(d.Src2), c.Regs[d.Src2], false).Ns
	case isa.ClassSavePC:
		c.Counts.SavePCs++
		ns += ms.Store(now+ns, ir.PCSlotAddr, d.Imm, false).Ns
	case isa.ClassRegionEnd:
		c.Counts.RegionEnds++
		ns += ms.RegionEnd(now + ns).Ns
	case isa.ClassClwb:
		c.Counts.Clwbs++
		ns += ms.Clwb(now+ns, c.Regs[d.Src1]+d.Imm).Ns
	case isa.ClassFence:
		c.Counts.Fences++
		ns += ms.Fence(now + ns).Ns

	default:
		panic(fmt.Sprintf("cpu: unknown class %d at pc %d", d.Class, c.PC))
	}

	c.PC = next
	return ns, d.Class
}

// ClassAt returns the dispatch class of the instruction at pc.
func (c *CPU) ClassAt(pc int64) isa.Class { return c.dec[pc].Class }
