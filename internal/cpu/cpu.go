// Package cpu implements the single-issue in-order core: an interpreter
// over isa code with per-instruction latency accounting. All memory
// behaviour — caches, persist buffers, NVM, persistence stalls — is behind
// the MemSystem interface that each architecture scheme implements.
//
// Energy is not returned by Step: schemes and the engine attribute energy
// to the shared ledger directly, and the engine draws the ledger delta from
// the capacitor after each step (see internal/sim).
package cpu

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/ir"
	"repro/internal/isa"
)

// Regs is the architectural register file.
type Regs [isa.NumRegs]int64

// Cost is the time cost of an operation in nanoseconds.
type Cost struct {
	Ns int64
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) { c.Ns += o.Ns }

// MemSystem is the per-scheme memory hierarchy. now is the current
// simulation time; implementations use it to resolve persistence stalls
// and background completions.
type MemSystem interface {
	// Fetch charges the instruction-fetch cost beyond the 1-cycle base
	// (only the cache-free NVP pays NVM latency here).
	Fetch(now int64) Cost
	// Load reads a word (or a zero-extended byte) from addr.
	Load(now int64, addr int64, byteWide bool) (int64, Cost)
	// Store writes a word (or the low byte of val) to addr.
	Store(now int64, addr int64, val int64, byteWide bool) Cost
	// RegionEnd runs the SweepCache region-boundary protocol; other
	// schemes never see it.
	RegionEnd(now int64) Cost
	// Clwb writes back the line containing addr (ReplayCache).
	Clwb(now int64, addr int64) Cost
	// Fence drains outstanding writebacks (ReplayCache).
	Fence(now int64) Cost
}

// Counts tallies dynamically executed instructions by class.
type Counts struct {
	Executed   uint64
	Loads      uint64
	Stores     uint64 // plain stores only
	CkptStores uint64
	SavePCs    uint64
	RegionEnds uint64
	Clwbs      uint64
	Fences     uint64
	Calls      uint64
	Branches   uint64
}

// CPU is the architectural core state.
type CPU struct {
	Regs   Regs
	PC     int64
	Code   []isa.Instr
	Halted bool
	Counts Counts

	// dec is the predecoded dispatch table, position-matched to Code.
	dec []isa.Decoded
	// fetchFree elides the per-instruction ms.Fetch call for memory
	// systems that declare it cost- and effect-free (see FreeFetcher).
	fetchFree bool
}

// FreeFetcher is an optional MemSystem capability: implementations whose
// Fetch never charges time or energy and has no side effects return true,
// and the interpreter drops the call from the per-instruction path. The
// cache-free NVP pays NVM latency on every fetch and must return false.
type FreeFetcher interface {
	FetchIsFree() bool
}

// SetFetchFree configures fetch elision; callers must only enable it for
// a memory system whose Fetch is a no-op.
func (c *CPU) SetFetchFree(free bool) { c.fetchFree = free }

// New returns a core ready to run code from entryPC, predecoding the
// dispatch table itself.
func New(code []isa.Instr, entryPC int64) *CPU {
	return NewPredecoded(code, isa.Predecode(code), entryPC)
}

// NewPredecoded returns a core over an already-predecoded program (the
// linker decodes once; the compile cache shares the table across runs).
// dec must be position-matched to code.
func NewPredecoded(code []isa.Instr, dec []isa.Decoded, entryPC int64) *CPU {
	if len(dec) != len(code) {
		panic(fmt.Sprintf("cpu: decode table length %d != code length %d", len(dec), len(code)))
	}
	return &CPU{Code: code, dec: dec, PC: entryPC}
}

// NewLinked returns a core for a linked program, reusing its link-time
// decode table.
func NewLinked(l *ir.Linked) *CPU {
	return NewPredecoded(l.Code, l.Dec, int64(l.EntryPC))
}

// StepTiming carries the per-op latencies the core itself owns.
type StepTiming struct {
	CycleNs   int64
	MulCycles int64
	DivCycles int64
}

// Step executes the instruction at PC against ms and returns its time
// cost. It panics on malformed code (the linker guarantees well-formed
// programs).
func (c *CPU) Step(now int64, ms MemSystem, t StepTiming) Cost {
	ns, _ := c.StepFast(now, ms, t)
	return Cost{Ns: ns}
}

// StepFast executes the instruction at PC against ms and returns its time
// cost in nanoseconds plus its dispatch class, through the predecoded
// table: one dense switch, no opcode range tests, and the class flows
// back to the engine so it never re-reads the instruction word.
func (c *CPU) StepFast(now int64, ms MemSystem, t StepTiming) (int64, isa.Class) {
	if c.Halted {
		return 0, isa.ClassHalt
	}
	d := &c.dec[c.PC]
	ns := t.CycleNs
	if !c.fetchFree {
		ns += ms.Fetch(now).Ns
	}
	next := c.PC + 1
	c.Counts.Executed++

	switch d.Class {
	case isa.ClassNop:

	case isa.ClassAdd:
		c.Regs[d.Dst] = c.Regs[d.Src1] + c.Regs[d.Src2]
	case isa.ClassSub:
		c.Regs[d.Dst] = c.Regs[d.Src1] - c.Regs[d.Src2]
	case isa.ClassAnd:
		c.Regs[d.Dst] = c.Regs[d.Src1] & c.Regs[d.Src2]
	case isa.ClassOr:
		c.Regs[d.Dst] = c.Regs[d.Src1] | c.Regs[d.Src2]
	case isa.ClassXor:
		c.Regs[d.Dst] = c.Regs[d.Src1] ^ c.Regs[d.Src2]
	case isa.ClassAddI:
		c.Regs[d.Dst] = c.Regs[d.Src1] + d.Imm
	case isa.ClassAndI:
		c.Regs[d.Dst] = c.Regs[d.Src1] & d.Imm
	case isa.ClassOrI:
		c.Regs[d.Dst] = c.Regs[d.Src1] | d.Imm
	case isa.ClassXorI:
		c.Regs[d.Dst] = c.Regs[d.Src1] ^ d.Imm
	case isa.ClassALURR:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
	case isa.ClassALURRMul:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
		ns += (t.MulCycles - 1) * t.CycleNs
	case isa.ClassALURRDiv:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
		ns += (t.DivCycles - 1) * t.CycleNs
	case isa.ClassALURI:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
	case isa.ClassALURIMul:
		c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
		ns += (t.MulCycles - 1) * t.CycleNs
	case isa.ClassMovI:
		c.Regs[d.Dst] = d.Imm
	case isa.ClassMov:
		c.Regs[d.Dst] = c.Regs[d.Src1]

	case isa.ClassLd:
		c.Counts.Loads++
		v, mc := ms.Load(now+ns, c.Regs[d.Src1]+d.Imm, false)
		c.Regs[d.Dst] = v
		ns += mc.Ns
	case isa.ClassLdB:
		c.Counts.Loads++
		v, mc := ms.Load(now+ns, c.Regs[d.Src1]+d.Imm, true)
		c.Regs[d.Dst] = v
		ns += mc.Ns
	case isa.ClassSt:
		c.Counts.Stores++
		ns += ms.Store(now+ns, c.Regs[d.Src1]+d.Imm, c.Regs[d.Src2], false).Ns
	case isa.ClassStB:
		c.Counts.Stores++
		ns += ms.Store(now+ns, c.Regs[d.Src1]+d.Imm, c.Regs[d.Src2], true).Ns

	case isa.ClassBeq:
		c.Counts.Branches++
		if c.Regs[d.Src1] == c.Regs[d.Src2] {
			next = int64(d.Target)
		}
	case isa.ClassBne:
		c.Counts.Branches++
		if c.Regs[d.Src1] != c.Regs[d.Src2] {
			next = int64(d.Target)
		}
	case isa.ClassBranch:
		c.Counts.Branches++
		if isa.BranchTaken(d.Op, c.Regs[d.Src1], c.Regs[d.Src2]) {
			next = int64(d.Target)
		}
	case isa.ClassJmp:
		next = int64(d.Target)
	case isa.ClassCall:
		c.Counts.Calls++
		c.Regs[isa.LR] = c.PC + 1
		next = int64(d.Target)
	case isa.ClassRet:
		next = c.Regs[isa.LR]
	case isa.ClassHalt:
		c.Halted = true
		next = c.PC

	case isa.ClassCkptSt:
		c.Counts.CkptStores++
		ns += ms.Store(now+ns, ir.CkptSlotAddr(d.Src2), c.Regs[d.Src2], false).Ns
	case isa.ClassSavePC:
		c.Counts.SavePCs++
		ns += ms.Store(now+ns, ir.PCSlotAddr, d.Imm, false).Ns
	case isa.ClassRegionEnd:
		c.Counts.RegionEnds++
		ns += ms.RegionEnd(now + ns).Ns
	case isa.ClassClwb:
		c.Counts.Clwbs++
		ns += ms.Clwb(now+ns, c.Regs[d.Src1]+d.Imm).Ns
	case isa.ClassFence:
		c.Counts.Fences++
		ns += ms.Fence(now + ns).Ns

	default:
		panic(fmt.Sprintf("cpu: unknown class %d at pc %d", d.Class, c.PC))
	}

	c.PC = next
	return ns, d.Class
}

// ClassAt returns the dispatch class of the instruction at pc.
func (c *CPU) ClassAt(pc int64) isa.Class { return c.dec[pc].Class }

// RunUntraced is the engine's fused outage-free inner loop: it retires
// instructions back-to-back — keeping PC and the executed counter in
// locals instead of reloading them through c on every Step call — until
// the program halts, the instruction budget max would be exceeded, or a
// region-delimiting instruction (region end / fence) retires, which the
// caller observes for region-size bookkeeping. It returns the elapsed
// time, the number of instructions retired, and whether the stop was a
// region delimiter.
//
// After each instruction it adds the engine's per-instruction ledger
// charge to *compute: eByNs[ns] when ns indexes the table, otherwise
// eInstr + pRun*float64(ns)*1e-9 — the exact expression of the per-step
// engine loop, so ledger totals are bit-identical. compute aliases a live
// ledger field that the memory system also accumulates into during
// Load/Store, so it is read and written through the pointer on every
// instruction, never cached in a local.
//
// The dispatch switch below must stay in lockstep with StepFast; the
// traced-versus-untraced matrix test in internal/sim pins the
// equivalence.
func (c *CPU) RunUntraced(now int64, ms MemSystem, t StepTiming, eByNs []float64, eInstr, pRun float64, compute *float64, max uint64) (elapsed int64, instrs int, delim bool) {
	if c.Halted {
		return 0, 0, false
	}
	pc := c.PC
	executed := c.Counts.Executed
	// dec and fetchFree live in locals so the memory-system calls — which
	// could alias c for all the compiler knows — don't force per-iteration
	// reloads. comp shadows *compute in a register: the ledger field is
	// synced around every ms call (the only other writer/reader) and on
	// exit, so the sequence of float adds it receives is unchanged — only
	// where the running value is stored between adds differs.
	dec := c.dec
	fetchFree := c.fetchFree
	comp := *compute
	// now is the only clock accumulator (elapsed = now-start) and the
	// retire count is derived from the executed delta on exit.
	start := now
	startExec := executed
	for executed < max {
		d := &dec[pc]
		ns := t.CycleNs
		if !fetchFree {
			*compute = comp
			ns += ms.Fetch(now).Ns
			comp = *compute
		}
		next := pc + 1
		executed++

		switch d.Class {
		case isa.ClassNop:

		case isa.ClassAdd:
			c.Regs[d.Dst] = c.Regs[d.Src1] + c.Regs[d.Src2]
		case isa.ClassSub:
			c.Regs[d.Dst] = c.Regs[d.Src1] - c.Regs[d.Src2]
		case isa.ClassAnd:
			c.Regs[d.Dst] = c.Regs[d.Src1] & c.Regs[d.Src2]
		case isa.ClassOr:
			c.Regs[d.Dst] = c.Regs[d.Src1] | c.Regs[d.Src2]
		case isa.ClassXor:
			c.Regs[d.Dst] = c.Regs[d.Src1] ^ c.Regs[d.Src2]
		case isa.ClassAddI:
			c.Regs[d.Dst] = c.Regs[d.Src1] + d.Imm
		case isa.ClassAndI:
			c.Regs[d.Dst] = c.Regs[d.Src1] & d.Imm
		case isa.ClassOrI:
			c.Regs[d.Dst] = c.Regs[d.Src1] | d.Imm
		case isa.ClassXorI:
			c.Regs[d.Dst] = c.Regs[d.Src1] ^ d.Imm
		case isa.ClassALURR:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
		case isa.ClassALURRMul:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
			ns += (t.MulCycles - 1) * t.CycleNs
		case isa.ClassALURRDiv:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
			ns += (t.DivCycles - 1) * t.CycleNs
		case isa.ClassALURI:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
		case isa.ClassALURIMul:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
			ns += (t.MulCycles - 1) * t.CycleNs
		case isa.ClassMovI:
			c.Regs[d.Dst] = d.Imm
		case isa.ClassMov:
			c.Regs[d.Dst] = c.Regs[d.Src1]

		case isa.ClassLd:
			c.Counts.Loads++
			*compute = comp
			v, mc := ms.Load(now+ns, c.Regs[d.Src1]+d.Imm, false)
			comp = *compute
			c.Regs[d.Dst] = v
			ns += mc.Ns
		case isa.ClassLdB:
			c.Counts.Loads++
			*compute = comp
			v, mc := ms.Load(now+ns, c.Regs[d.Src1]+d.Imm, true)
			comp = *compute
			c.Regs[d.Dst] = v
			ns += mc.Ns
		case isa.ClassSt:
			c.Counts.Stores++
			*compute = comp
			mc := ms.Store(now+ns, c.Regs[d.Src1]+d.Imm, c.Regs[d.Src2], false)
			comp = *compute
			ns += mc.Ns
		case isa.ClassStB:
			c.Counts.Stores++
			*compute = comp
			mc := ms.Store(now+ns, c.Regs[d.Src1]+d.Imm, c.Regs[d.Src2], true)
			comp = *compute
			ns += mc.Ns

		case isa.ClassBeq:
			c.Counts.Branches++
			if c.Regs[d.Src1] == c.Regs[d.Src2] {
				next = int64(d.Target)
			}
		case isa.ClassBne:
			c.Counts.Branches++
			if c.Regs[d.Src1] != c.Regs[d.Src2] {
				next = int64(d.Target)
			}
		case isa.ClassBranch:
			c.Counts.Branches++
			if isa.BranchTaken(d.Op, c.Regs[d.Src1], c.Regs[d.Src2]) {
				next = int64(d.Target)
			}
		case isa.ClassJmp:
			next = int64(d.Target)
		case isa.ClassCall:
			c.Counts.Calls++
			c.Regs[isa.LR] = pc + 1
			next = int64(d.Target)
		case isa.ClassRet:
			next = c.Regs[isa.LR]
		case isa.ClassHalt:
			c.Halted = true
			next = pc

		case isa.ClassCkptSt:
			c.Counts.CkptStores++
			*compute = comp
			mc := ms.Store(now+ns, ir.CkptSlotAddr(d.Src2), c.Regs[d.Src2], false)
			comp = *compute
			ns += mc.Ns
		case isa.ClassSavePC:
			c.Counts.SavePCs++
			*compute = comp
			mc := ms.Store(now+ns, ir.PCSlotAddr, d.Imm, false)
			comp = *compute
			ns += mc.Ns
		case isa.ClassRegionEnd:
			c.Counts.RegionEnds++
			*compute = comp
			mc := ms.RegionEnd(now + ns)
			comp = *compute
			ns += mc.Ns
		case isa.ClassClwb:
			c.Counts.Clwbs++
			*compute = comp
			mc := ms.Clwb(now+ns, c.Regs[d.Src1]+d.Imm)
			comp = *compute
			ns += mc.Ns
		case isa.ClassFence:
			c.Counts.Fences++
			*compute = comp
			mc := ms.Fence(now + ns)
			comp = *compute
			ns += mc.Ns

		default:
			panic(fmt.Sprintf("cpu: unknown class %d at pc %d", d.Class, pc))
		}

		pc = next
		if ns < int64(len(eByNs)) {
			comp += eByNs[ns]
		} else {
			comp += eInstr + pRun*float64(ns)*1e-9
		}
		now += ns
		if f := isa.ClassFlags[d.Class] & (isa.FlagDelim | isa.FlagHalt); f != 0 {
			delim = f&isa.FlagDelim != 0
			break
		}
	}
	c.PC = pc
	c.Counts.Executed = executed
	*compute = comp
	return now - start, int(executed - startExec), delim
}

// EpochControl parameterizes RunEpoch, the fused harvested-power inner
// loop. The run-constant fields are set once per simulation; LedStart,
// Budget, SegRem and RegionInstrs are refreshed per epoch by the engine.
// NeedsBackup stays a closure and is consulted only after instructions
// that enter the memory system (scheme state cannot change elsewhere);
// the ledger is passed directly so the budget comparison's exact fold
// (Led.Total()) inlines, and even that is evaluated only when the
// Compute watermark says the comparison could go true.
type EpochControl struct {
	// Per-instruction ledger charge, exactly as in RunUntraced: EByNs[ns]
	// when ns indexes the table, else EInstr + PRun*ns*1e-9.
	EByNs  []float64
	EInstr float64
	PRun   float64
	Max    uint64 // global instruction budget

	Jit         bool
	NeedsBackup func() bool    // structural backup request (JIT schemes)
	Led         *energy.Ledger // the live ledger (Compute is the engine-charged field)
	LedStart    float64        // ledger total at epoch start
	Budget      float64        // epoch energy budget (joules)
	SegRem      int64          // remaining ns in the power-trace segment
	MaxInstrNs  int64          // bound on a single instruction's latency

	RegionInstrs int       // running region length carried across epochs
	OnRegionEnd  func(int) // region-size histogram sink
}

// RunEpoch retires one epoch's instructions back-to-back — the fused
// counterpart of the engine's per-step epoch loop, with PC and the
// executed counter in locals. It stops exactly where the per-step loop
// would: on a structural backup request, at the instruction budget, on
// halt, on an instruction at the single-instruction latency bound, when
// the next instruction might not fit in the power-trace segment, or when
// the ledger delta reaches the epoch budget. It returns the elapsed time
// and the updated running region length.
//
// The budget comparison Total()-LedStart >= Budget is evaluated with that
// exact expression whenever it can matter; on pure-compute stretches it is
// skipped under a Compute watermark (see the engine's runEpoch for the
// monotonicity argument), which cannot change the outcome. The caller must
// not invoke RunEpoch on a halted core or with a pending backup request.
//
// The dispatch switch must stay in lockstep with StepFast; the
// traced-versus-untraced matrix test in internal/sim pins the equivalence.
func (c *CPU) RunEpoch(now int64, ms MemSystem, t StepTiming, ec *EpochControl) (elapsed int64, ri int) {
	pc := c.PC
	executed := c.Counts.Executed
	ri = ec.RegionInstrs
	led := ec.Led
	compute := &led.Compute
	// Hoist the control fields into locals: the closure and ms calls below
	// could alias ec (or c) for all the compiler knows, so field accesses
	// inside the loop would otherwise reload on every instruction. comp
	// shadows *compute in a register, synced around every ms call (the
	// only other writer) and before every Total() fold (the only other
	// reader), so the float-add sequence it receives is unchanged.
	eByNs, eInstr, pRun := ec.EByNs, ec.EInstr, ec.PRun
	max, jit := ec.Max, ec.Jit
	ledStart, budget := ec.LedStart, ec.Budget
	segRem, maxInstrNs := ec.SegRem, ec.MaxInstrNs
	dec := c.dec
	fetchFree := c.fetchFree
	comp := *compute
	cSafe := comp // force an exact budget check on the first instruction
	// now is the only clock accumulator: the epoch clock is now-start,
	// and the segment check epochNs+maxInstrNs >= segRem becomes a single
	// compare against an absolute deadline.
	start := now
	segDeadline := now + segRem - maxInstrNs
	for executed < max {
		d := &dec[pc]
		ns := t.CycleNs
		if !fetchFree {
			*compute = comp
			ns += ms.Fetch(now).Ns
			comp = *compute
		}
		next := pc + 1
		executed++

		switch d.Class {
		case isa.ClassNop:

		case isa.ClassAdd:
			c.Regs[d.Dst] = c.Regs[d.Src1] + c.Regs[d.Src2]
		case isa.ClassSub:
			c.Regs[d.Dst] = c.Regs[d.Src1] - c.Regs[d.Src2]
		case isa.ClassAnd:
			c.Regs[d.Dst] = c.Regs[d.Src1] & c.Regs[d.Src2]
		case isa.ClassOr:
			c.Regs[d.Dst] = c.Regs[d.Src1] | c.Regs[d.Src2]
		case isa.ClassXor:
			c.Regs[d.Dst] = c.Regs[d.Src1] ^ c.Regs[d.Src2]
		case isa.ClassAddI:
			c.Regs[d.Dst] = c.Regs[d.Src1] + d.Imm
		case isa.ClassAndI:
			c.Regs[d.Dst] = c.Regs[d.Src1] & d.Imm
		case isa.ClassOrI:
			c.Regs[d.Dst] = c.Regs[d.Src1] | d.Imm
		case isa.ClassXorI:
			c.Regs[d.Dst] = c.Regs[d.Src1] ^ d.Imm
		case isa.ClassALURR:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
		case isa.ClassALURRMul:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
			ns += (t.MulCycles - 1) * t.CycleNs
		case isa.ClassALURRDiv:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], c.Regs[d.Src2])
			ns += (t.DivCycles - 1) * t.CycleNs
		case isa.ClassALURI:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
		case isa.ClassALURIMul:
			c.Regs[d.Dst] = isa.EvalALU(d.Op, c.Regs[d.Src1], d.Imm)
			ns += (t.MulCycles - 1) * t.CycleNs
		case isa.ClassMovI:
			c.Regs[d.Dst] = d.Imm
		case isa.ClassMov:
			c.Regs[d.Dst] = c.Regs[d.Src1]

		case isa.ClassLd:
			c.Counts.Loads++
			*compute = comp
			v, mc := ms.Load(now+ns, c.Regs[d.Src1]+d.Imm, false)
			comp = *compute
			c.Regs[d.Dst] = v
			ns += mc.Ns
		case isa.ClassLdB:
			c.Counts.Loads++
			*compute = comp
			v, mc := ms.Load(now+ns, c.Regs[d.Src1]+d.Imm, true)
			comp = *compute
			c.Regs[d.Dst] = v
			ns += mc.Ns
		case isa.ClassSt:
			c.Counts.Stores++
			*compute = comp
			mc := ms.Store(now+ns, c.Regs[d.Src1]+d.Imm, c.Regs[d.Src2], false)
			comp = *compute
			ns += mc.Ns
		case isa.ClassStB:
			c.Counts.Stores++
			*compute = comp
			mc := ms.Store(now+ns, c.Regs[d.Src1]+d.Imm, c.Regs[d.Src2], true)
			comp = *compute
			ns += mc.Ns

		case isa.ClassBeq:
			c.Counts.Branches++
			if c.Regs[d.Src1] == c.Regs[d.Src2] {
				next = int64(d.Target)
			}
		case isa.ClassBne:
			c.Counts.Branches++
			if c.Regs[d.Src1] != c.Regs[d.Src2] {
				next = int64(d.Target)
			}
		case isa.ClassBranch:
			c.Counts.Branches++
			if isa.BranchTaken(d.Op, c.Regs[d.Src1], c.Regs[d.Src2]) {
				next = int64(d.Target)
			}
		case isa.ClassJmp:
			next = int64(d.Target)
		case isa.ClassCall:
			c.Counts.Calls++
			c.Regs[isa.LR] = pc + 1
			next = int64(d.Target)
		case isa.ClassRet:
			next = c.Regs[isa.LR]
		case isa.ClassHalt:
			c.Halted = true
			next = pc

		case isa.ClassCkptSt:
			c.Counts.CkptStores++
			*compute = comp
			mc := ms.Store(now+ns, ir.CkptSlotAddr(d.Src2), c.Regs[d.Src2], false)
			comp = *compute
			ns += mc.Ns
		case isa.ClassSavePC:
			c.Counts.SavePCs++
			*compute = comp
			mc := ms.Store(now+ns, ir.PCSlotAddr, d.Imm, false)
			comp = *compute
			ns += mc.Ns
		case isa.ClassRegionEnd:
			c.Counts.RegionEnds++
			*compute = comp
			mc := ms.RegionEnd(now + ns)
			comp = *compute
			ns += mc.Ns
		case isa.ClassClwb:
			c.Counts.Clwbs++
			*compute = comp
			mc := ms.Clwb(now+ns, c.Regs[d.Src1]+d.Imm)
			comp = *compute
			ns += mc.Ns
		case isa.ClassFence:
			c.Counts.Fences++
			*compute = comp
			mc := ms.Fence(now + ns)
			comp = *compute
			ns += mc.Ns

		default:
			panic(fmt.Sprintf("cpu: unknown class %d at pc %d", d.Class, pc))
		}

		pc = next
		if ns < int64(len(eByNs)) {
			comp += eByNs[ns]
		} else {
			comp += eInstr + pRun*float64(ns)*1e-9
		}
		now += ns

		cl := d.Class
		if fetchFree && isa.ClassFlags[cl] == 0 {
			// Pure-compute fast path: not a delimiter, cannot halt,
			// cannot touch the memory system — so scheme state is
			// unchanged and the budget comparison is skippable while
			// Compute stays below the watermark. The latency-bound and
			// segment-deadline compares are the same tests as below.
			ri++
			if ns >= maxInstrNs || now >= segDeadline {
				break
			}
			if comp < cSafe {
				continue
			}
			*compute = comp // the fold reads the live ledger field
			tt := led.Total()
			if tt-ledStart >= budget {
				break
			}
			slack := budget - (tt - ledStart)
			if slack > (tt+1)*1e-9 {
				cSafe = comp + 0.5*slack
			} else {
				cSafe = comp
			}
			continue
		}
		memTouch := !fetchFree || cl.TouchesMemSystem()
		needBk := false
		if jit && memTouch {
			needBk = ec.NeedsBackup()
		}
		if cl == isa.ClassRegionEnd || cl == isa.ClassFence {
			ec.OnRegionEnd(ri)
			ri = 0
		} else {
			ri++
		}
		// cl == ClassHalt iff the core just halted: the core enters the
		// epoch running and only the Halt case sets Halted.
		if cl == isa.ClassHalt || ns >= maxInstrNs ||
			now >= segDeadline {
			break
		}
		if memTouch || comp >= cSafe {
			*compute = comp // the fold reads the live ledger field
			tt := led.Total()
			if tt-ledStart >= budget {
				break
			}
			slack := budget - (tt - ledStart)
			if slack > (tt+1)*1e-9 {
				cSafe = comp + 0.5*slack
			} else {
				cSafe = comp
			}
		}
		if needBk {
			break
		}
	}
	c.PC = pc
	c.Counts.Executed = executed
	*compute = comp
	return now - start, ri
}
