// Package cpu implements the single-issue in-order core: an interpreter
// over isa code with per-instruction latency accounting. All memory
// behaviour — caches, persist buffers, NVM, persistence stalls — is behind
// the MemSystem interface that each architecture scheme implements.
//
// Energy is not returned by Step: schemes and the engine attribute energy
// to the shared ledger directly, and the engine draws the ledger delta from
// the capacitor after each step (see internal/sim).
package cpu

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/isa"
)

// Regs is the architectural register file.
type Regs [isa.NumRegs]int64

// Cost is the time cost of an operation in nanoseconds.
type Cost struct {
	Ns int64
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) { c.Ns += o.Ns }

// MemSystem is the per-scheme memory hierarchy. now is the current
// simulation time; implementations use it to resolve persistence stalls
// and background completions.
type MemSystem interface {
	// Fetch charges the instruction-fetch cost beyond the 1-cycle base
	// (only the cache-free NVP pays NVM latency here).
	Fetch(now int64) Cost
	// Load reads a word (or a zero-extended byte) from addr.
	Load(now int64, addr int64, byteWide bool) (int64, Cost)
	// Store writes a word (or the low byte of val) to addr.
	Store(now int64, addr int64, val int64, byteWide bool) Cost
	// RegionEnd runs the SweepCache region-boundary protocol; other
	// schemes never see it.
	RegionEnd(now int64) Cost
	// Clwb writes back the line containing addr (ReplayCache).
	Clwb(now int64, addr int64) Cost
	// Fence drains outstanding writebacks (ReplayCache).
	Fence(now int64) Cost
}

// Counts tallies dynamically executed instructions by class.
type Counts struct {
	Executed   uint64
	Loads      uint64
	Stores     uint64 // plain stores only
	CkptStores uint64
	SavePCs    uint64
	RegionEnds uint64
	Clwbs      uint64
	Fences     uint64
	Calls      uint64
	Branches   uint64
}

// CPU is the architectural core state.
type CPU struct {
	Regs   Regs
	PC     int64
	Code   []isa.Instr
	Halted bool
	Counts Counts
}

// New returns a core ready to run code from entryPC.
func New(code []isa.Instr, entryPC int64) *CPU {
	return &CPU{Code: code, PC: entryPC}
}

// StepTiming carries the per-op latencies the core itself owns.
type StepTiming struct {
	CycleNs   int64
	MulCycles int64
	DivCycles int64
}

// Step executes the instruction at PC against ms and returns its time
// cost. It panics on malformed code (the linker guarantees well-formed
// programs).
func (c *CPU) Step(now int64, ms MemSystem, t StepTiming) Cost {
	if c.Halted {
		return Cost{}
	}
	in := c.Code[c.PC]
	cost := Cost{Ns: t.CycleNs}
	cost.Add(ms.Fetch(now))
	next := c.PC + 1
	c.Counts.Executed++

	switch {
	case in.Op == isa.OpNop:

	case in.Op.IsALURR():
		c.Regs[in.Dst] = isa.EvalALU(in.Op, c.Regs[in.Src1], c.Regs[in.Src2])
		cost.Ns += c.aluExtra(in.Op, t)
	case in.Op.IsALURI():
		c.Regs[in.Dst] = isa.EvalALU(in.Op, c.Regs[in.Src1], in.Imm)
		cost.Ns += c.aluExtra(in.Op, t)
	case in.Op == isa.OpMovI:
		c.Regs[in.Dst] = in.Imm
	case in.Op == isa.OpMov:
		c.Regs[in.Dst] = c.Regs[in.Src1]

	case in.Op == isa.OpLd, in.Op == isa.OpLdB:
		c.Counts.Loads++
		v, mc := ms.Load(now+cost.Ns, c.Regs[in.Src1]+in.Imm, in.Op == isa.OpLdB)
		c.Regs[in.Dst] = v
		cost.Add(mc)
	case in.Op == isa.OpSt, in.Op == isa.OpStB:
		c.Counts.Stores++
		mc := ms.Store(now+cost.Ns, c.Regs[in.Src1]+in.Imm, c.Regs[in.Src2], in.Op == isa.OpStB)
		cost.Add(mc)

	case in.Op.IsBranch():
		c.Counts.Branches++
		if isa.BranchTaken(in.Op, c.Regs[in.Src1], c.Regs[in.Src2]) {
			next = int64(in.Target)
		}
	case in.Op == isa.OpJmp:
		next = int64(in.Target)
	case in.Op == isa.OpCall:
		c.Counts.Calls++
		c.Regs[isa.LR] = c.PC + 1
		next = int64(in.Target)
	case in.Op == isa.OpRet:
		next = c.Regs[isa.LR]
	case in.Op == isa.OpHalt:
		c.Halted = true
		next = c.PC

	case in.Op == isa.OpCkptSt:
		c.Counts.CkptStores++
		mc := ms.Store(now+cost.Ns, ir.CkptSlotAddr(in.Src2), c.Regs[in.Src2], false)
		cost.Add(mc)
	case in.Op == isa.OpSavePC:
		c.Counts.SavePCs++
		mc := ms.Store(now+cost.Ns, ir.PCSlotAddr, in.Imm, false)
		cost.Add(mc)
	case in.Op == isa.OpRegionEnd:
		c.Counts.RegionEnds++
		cost.Add(ms.RegionEnd(now + cost.Ns))
	case in.Op == isa.OpClwb:
		c.Counts.Clwbs++
		cost.Add(ms.Clwb(now+cost.Ns, c.Regs[in.Src1]+in.Imm))
	case in.Op == isa.OpFence:
		c.Counts.Fences++
		cost.Add(ms.Fence(now + cost.Ns))

	default:
		panic(fmt.Sprintf("cpu: unknown op %v at pc %d", in.Op, c.PC))
	}

	c.PC = next
	return cost
}

func (c *CPU) aluExtra(op isa.Op, t StepTiming) int64 {
	switch op {
	case isa.OpMul, isa.OpMulI:
		return (t.MulCycles - 1) * t.CycleNs
	case isa.OpDiv, isa.OpRem:
		return (t.DivCycles - 1) * t.CycleNs
	}
	return 0
}
