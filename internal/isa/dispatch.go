// Predecoded dispatch: the interpreter's inner loop wants a dense,
// contiguous switch rather than the chained range tests the symbolic Op
// space requires (IsALURR, IsALURI, ...). Class collapses every opcode
// into one dispatch class — with multiply and divide split out so the
// extra-latency lookup needs no second switch — and Decoded carries the
// instruction fields pre-extracted. The linker predecodes a program once;
// every simulation of that binary then dispatches through the table.
package isa

// Class is the dense dispatch class of an instruction.
type Class uint8

const (
	ClassNop Class = iota
	ClassALURR
	ClassALURRMul // Mul: pays the multiplier's extra cycles
	ClassALURRDiv // Div/Rem: pays the divider's extra cycles
	ClassALURI
	ClassALURIMul // MulI
	ClassMovI
	ClassMov
	ClassLd
	ClassLdB
	ClassSt
	ClassStB
	ClassBranch
	ClassJmp
	ClassCall
	ClassRet
	ClassHalt
	ClassCkptSt
	ClassSavePC
	ClassRegionEnd
	ClassClwb
	ClassFence

	NumClasses
)

// Class returns the dispatch class of o. It panics on an opcode outside
// the ISA, mirroring the interpreter's malformed-code contract.
func (o Op) Class() Class {
	switch {
	case o == OpNop:
		return ClassNop
	case o == OpMul:
		return ClassALURRMul
	case o == OpDiv, o == OpRem:
		return ClassALURRDiv
	case o.IsALURR():
		return ClassALURR
	case o == OpMulI:
		return ClassALURIMul
	case o.IsALURI():
		return ClassALURI
	case o == OpMovI:
		return ClassMovI
	case o == OpMov:
		return ClassMov
	case o == OpLd:
		return ClassLd
	case o == OpLdB:
		return ClassLdB
	case o == OpSt:
		return ClassSt
	case o == OpStB:
		return ClassStB
	case o.IsBranch():
		return ClassBranch
	case o == OpJmp:
		return ClassJmp
	case o == OpCall:
		return ClassCall
	case o == OpRet:
		return ClassRet
	case o == OpHalt:
		return ClassHalt
	case o == OpCkptSt:
		return ClassCkptSt
	case o == OpSavePC:
		return ClassSavePC
	case o == OpRegionEnd:
		return ClassRegionEnd
	case o == OpClwb:
		return ClassClwb
	case o == OpFence:
		return ClassFence
	}
	panic("isa: no dispatch class for " + o.String())
}

// Decoded is the predecoded form of one instruction: the dispatch class
// plus every operand field extracted, sized so a program's decode table
// stays cache-resident alongside its code.
type Decoded struct {
	Class  Class
	Op     Op // retained for EvalALU and diagnostics
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Target int32
	Imm    int64
}

// Predecode builds the dispatch table for code. The result is immutable
// and position-matched: dec[pc] describes code[pc].
func Predecode(code []Instr) []Decoded {
	dec := make([]Decoded, len(code))
	for i, in := range code {
		dec[i] = Decoded{
			Class:  in.Op.Class(),
			Op:     in.Op,
			Dst:    in.Dst,
			Src1:   in.Src1,
			Src2:   in.Src2,
			Target: in.Target,
			Imm:    in.Imm,
		}
	}
	return dec
}
