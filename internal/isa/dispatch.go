// Predecoded dispatch: the interpreter's inner loop wants a dense,
// contiguous switch rather than the chained range tests the symbolic Op
// space requires (IsALURR, IsALURI, ...). Class collapses every opcode
// into one dispatch class — with multiply and divide split out so the
// extra-latency lookup needs no second switch — and Decoded carries the
// instruction fields pre-extracted. The linker predecodes a program once;
// every simulation of that binary then dispatches through the table.
package isa

// Class is the dense dispatch class of an instruction.
type Class uint8

const (
	ClassNop Class = iota
	// Dedicated classes for the hottest single-cycle ALU ops: the
	// interpreter computes these inline in its dense switch, with no
	// second dispatch through EvalALU.
	ClassAdd  // Dst = Src1 + Src2
	ClassSub  // Dst = Src1 - Src2
	ClassAnd  // Dst = Src1 & Src2
	ClassOr   // Dst = Src1 | Src2
	ClassXor  // Dst = Src1 ^ Src2
	ClassAddI // Dst = Src1 + Imm
	ClassAndI // Dst = Src1 & Imm
	ClassOrI  // Dst = Src1 | Imm
	ClassXorI // Dst = Src1 ^ Imm
	ClassALURR
	ClassALURRMul // Mul: pays the multiplier's extra cycles
	ClassALURRDiv // Div/Rem: pays the divider's extra cycles
	ClassALURI
	ClassALURIMul // MulI
	ClassMovI
	ClassMov
	ClassLd
	ClassLdB
	ClassSt
	ClassStB
	ClassBeq    // taken iff Src1 == Src2
	ClassBne    // taken iff Src1 != Src2
	ClassBranch // remaining comparisons, resolved via BranchTaken
	ClassJmp
	ClassCall
	ClassRet
	ClassHalt
	ClassCkptSt
	ClassSavePC
	ClassRegionEnd
	ClassClwb
	ClassFence

	NumClasses
)

// TouchesMemSystem reports whether interpreting an instruction of class
// cl can call into the memory system beyond the per-instruction fetch.
// Scheme state (persist buffers, rename tables, structural-backup
// requests) can only change across such instructions, which lets the
// engine hoist per-instruction scheme queries out of pure-compute runs.
func (cl Class) TouchesMemSystem() bool {
	switch cl {
	case ClassLd, ClassLdB, ClassSt, ClassStB,
		ClassCkptSt, ClassSavePC, ClassRegionEnd, ClassClwb, ClassFence:
		return true
	}
	return false
}

// Interpreter fast-path flags, one byte per class: the fused engine
// loops test the whole byte for zero to take the common pure-compute
// path with a single branch instead of re-deriving each property.
const (
	// FlagMemSystem mirrors TouchesMemSystem.
	FlagMemSystem uint8 = 1 << iota
	// FlagDelim marks the region delimiters (region end, fence).
	FlagDelim
	// FlagHalt marks the halt class.
	FlagHalt
)

// ClassFlags tabulates the fast-path flags per class.
var ClassFlags = func() (t [NumClasses]uint8) {
	for cl := Class(0); cl < NumClasses; cl++ {
		var f uint8
		if cl.TouchesMemSystem() {
			f |= FlagMemSystem
		}
		if cl == ClassRegionEnd || cl == ClassFence {
			f |= FlagDelim
		}
		if cl == ClassHalt {
			f |= FlagHalt
		}
		t[cl] = f
	}
	return t
}()

// Class returns the dispatch class of o. It panics on an opcode outside
// the ISA, mirroring the interpreter's malformed-code contract.
func (o Op) Class() Class {
	switch {
	case o == OpNop:
		return ClassNop
	case o == OpAdd:
		return ClassAdd
	case o == OpSub:
		return ClassSub
	case o == OpAnd:
		return ClassAnd
	case o == OpOr:
		return ClassOr
	case o == OpXor:
		return ClassXor
	case o == OpAddI:
		return ClassAddI
	case o == OpAndI:
		return ClassAndI
	case o == OpOrI:
		return ClassOrI
	case o == OpXorI:
		return ClassXorI
	case o == OpMul:
		return ClassALURRMul
	case o == OpDiv, o == OpRem:
		return ClassALURRDiv
	case o.IsALURR():
		return ClassALURR
	case o == OpMulI:
		return ClassALURIMul
	case o.IsALURI():
		return ClassALURI
	case o == OpMovI:
		return ClassMovI
	case o == OpMov:
		return ClassMov
	case o == OpLd:
		return ClassLd
	case o == OpLdB:
		return ClassLdB
	case o == OpSt:
		return ClassSt
	case o == OpStB:
		return ClassStB
	case o == OpBeq:
		return ClassBeq
	case o == OpBne:
		return ClassBne
	case o.IsBranch():
		return ClassBranch
	case o == OpJmp:
		return ClassJmp
	case o == OpCall:
		return ClassCall
	case o == OpRet:
		return ClassRet
	case o == OpHalt:
		return ClassHalt
	case o == OpCkptSt:
		return ClassCkptSt
	case o == OpSavePC:
		return ClassSavePC
	case o == OpRegionEnd:
		return ClassRegionEnd
	case o == OpClwb:
		return ClassClwb
	case o == OpFence:
		return ClassFence
	}
	panic("isa: no dispatch class for " + o.String())
}

// Decoded is the predecoded form of one instruction: the dispatch class
// plus every operand field extracted, sized so a program's decode table
// stays cache-resident alongside its code.
type Decoded struct {
	Class  Class
	Op     Op // retained for EvalALU and diagnostics
	Dst    Reg
	Src1   Reg
	Src2   Reg
	Target int32
	Imm    int64
}

// Predecode builds the dispatch table for code. The result is immutable
// and position-matched: dec[pc] describes code[pc].
func Predecode(code []Instr) []Decoded {
	dec := make([]Decoded, len(code))
	for i, in := range code {
		dec[i] = Decoded{
			Class:  in.Op.Class(),
			Op:     in.Op,
			Dst:    in.Dst,
			Src1:   in.Src1,
			Src2:   in.Src2,
			Target: in.Target,
			Imm:    in.Imm,
		}
	}
	return dec
}
