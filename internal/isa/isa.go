// Package isa defines the instruction set of the simulated in-order core.
//
// The ISA is a small load/store register machine in the spirit of the ARM
// subset the paper's gem5 setup uses: 16 general-purpose 64-bit registers,
// two-operand ALU ops with register or immediate second operand, word and
// byte loads/stores, conditional branches, direct calls, and a handful of
// architectural helper ops the SweepCache / ReplayCache compilers insert
// (checkpoint stores, PC saves, region ends, cacheline writebacks, fences).
//
// Instructions are represented unencoded as structs; the simulator never
// needs a binary encoding.
package isa

import "fmt"

// NumRegs is the number of architectural general-purpose registers.
// Register 15 doubles as the link register for calls.
const NumRegs = 16

// LR is the link register, written by Call and read by Ret.
const LR = 15

// Reg names an architectural register, 0 <= Reg < NumRegs.
type Reg uint8

func (r Reg) String() string { return fmt.Sprintf("r%d", uint8(r)) }

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpNop does nothing for one cycle.
	OpNop Op = iota

	// ALU register-register: Dst = Src1 op Src2.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr  // logical right shift
	OpSar  // arithmetic right shift
	OpSlt  // set if less-than (signed): Dst = (Src1 < Src2) ? 1 : 0
	OpSltu // set if less-than (unsigned)

	// ALU register-immediate: Dst = Src1 op Imm.
	OpAddI
	OpMulI
	OpAndI
	OpOrI
	OpXorI
	OpShlI
	OpShrI
	OpSarI

	// OpMovI sets Dst = Imm.
	OpMovI
	// OpMov sets Dst = Src1.
	OpMov

	// Memory. Effective address is Src1 + Imm.
	// OpLd loads a 64-bit word into Dst; OpLdB loads one zero-extended byte.
	OpLd
	OpLdB
	// OpSt stores the 64-bit word in Src2; OpStB stores its low byte.
	OpSt
	OpStB

	// Control flow. Branches compare Src1 against Src2 and jump to Target.
	OpBeq
	OpBne
	OpBlt  // signed
	OpBge  // signed
	OpBltu // unsigned
	OpBgeu // unsigned
	// OpJmp jumps unconditionally to Target.
	OpJmp
	// OpCall jumps to Target saving the return PC in LR.
	OpCall
	// OpRet jumps to the address in LR.
	OpRet

	// OpHalt ends the program.
	OpHalt

	// Architectural helpers inserted by the compilers.

	// OpCkptSt checkpoints register Src2 into its dedicated slot of the
	// register-checkpoint array in NVM (slot index = register number).
	// It behaves exactly like a normal store through the memory system.
	OpCkptSt
	// OpSavePC stores Imm (the flat PC of the next region's first
	// instruction) to the fixed recovery-PC slot in NVM. Behaves like a
	// normal store.
	OpSavePC
	// OpRegionEnd marks a region boundary: the architecture flushes all
	// dirty cachelines to the active persist buffer (s-phase1), schedules
	// the DMA drain to NVM (s-phase2), and switches to the other buffer.
	OpRegionEnd
	// OpClwb writes back (but does not evict) the cacheline containing
	// Src1 + Imm. Inserted by the ReplayCache compiler after every store.
	OpClwb
	// OpFence stalls until all outstanding clwb writebacks are persistent.
	// Inserted by the ReplayCache compiler at region ends.
	OpFence
)

var opNames = [...]string{
	OpNop: "nop",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSar: "sar", OpSlt: "slt", OpSltu: "sltu",
	OpAddI: "addi", OpMulI: "muli", OpAndI: "andi", OpOrI: "ori", OpXorI: "xori",
	OpShlI: "shli", OpShrI: "shri", OpSarI: "sari",
	OpMovI: "movi", OpMov: "mov",
	OpLd: "ld", OpLdB: "ldb", OpSt: "st", OpStB: "stb",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge", OpBltu: "bltu", OpBgeu: "bgeu",
	OpJmp: "jmp", OpCall: "call", OpRet: "ret", OpHalt: "halt",
	OpCkptSt: "ckpt.st", OpSavePC: "save.pc", OpRegionEnd: "region.end",
	OpClwb: "clwb", OpFence: "fence",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsALURR reports whether o is a register-register ALU op.
func (o Op) IsALURR() bool { return o >= OpAdd && o <= OpSltu }

// IsALURI reports whether o is a register-immediate ALU op.
func (o Op) IsALURI() bool { return o >= OpAddI && o <= OpSarI }

// IsLoad reports whether o reads data memory.
func (o Op) IsLoad() bool { return o == OpLd || o == OpLdB }

// IsStore reports whether o writes data memory, including the compiler
// helper stores (checkpoint stores and PC saves count against the persist
// buffer just like program stores).
func (o Op) IsStore() bool {
	return o == OpSt || o == OpStB || o == OpCkptSt || o == OpSavePC
}

// IsBranch reports whether o is a conditional branch.
func (o Op) IsBranch() bool { return o >= OpBeq && o <= OpBgeu }

// IsTerminator reports whether o ends a basic block.
func (o Op) IsTerminator() bool {
	return o.IsBranch() || o == OpJmp || o == OpCall || o == OpRet || o == OpHalt
}

// Instr is one machine instruction. Fields are used per-opcode as
// documented on the Op constants; unused fields are zero.
type Instr struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Imm  int64
	// Target is the flat-code index for branches, jumps, and calls. The
	// IR layer fills it in at link time; before linking it holds a block
	// or function reference private to the IR.
	Target int32
}

// Defs returns the register the instruction writes, or -1 if none.
func (in Instr) Defs() int {
	switch {
	case in.Op.IsALURR(), in.Op.IsALURI(),
		in.Op == OpMovI, in.Op == OpMov,
		in.Op == OpLd, in.Op == OpLdB:
		return int(in.Dst)
	case in.Op == OpCall:
		return LR
	}
	return -1
}

// Uses appends the registers the instruction reads to buf and returns it.
func (in Instr) Uses(buf []Reg) []Reg {
	switch {
	case in.Op.IsALURR():
		buf = append(buf, in.Src1, in.Src2)
	case in.Op.IsALURI(), in.Op == OpMov:
		buf = append(buf, in.Src1)
	case in.Op == OpLd, in.Op == OpLdB, in.Op == OpClwb:
		buf = append(buf, in.Src1)
	case in.Op == OpSt, in.Op == OpStB:
		buf = append(buf, in.Src1, in.Src2)
	case in.Op.IsBranch():
		buf = append(buf, in.Src1, in.Src2)
	case in.Op == OpRet:
		buf = append(buf, LR)
	case in.Op == OpCkptSt:
		buf = append(buf, in.Src2)
	}
	return buf
}

func (in Instr) String() string {
	switch {
	case in.Op == OpNop || in.Op == OpHalt || in.Op == OpRet ||
		in.Op == OpFence || in.Op == OpRegionEnd:
		return in.Op.String()
	case in.Op.IsALURR():
		return fmt.Sprintf("%s %s, %s, %s", in.Op, in.Dst, in.Src1, in.Src2)
	case in.Op.IsALURI():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, in.Dst, in.Src1, in.Imm)
	case in.Op == OpMovI:
		return fmt.Sprintf("movi %s, %d", in.Dst, in.Imm)
	case in.Op == OpMov:
		return fmt.Sprintf("mov %s, %s", in.Dst, in.Src1)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, [%s+%d]", in.Op, in.Dst, in.Src1, in.Imm)
	case in.Op == OpSt, in.Op == OpStB:
		return fmt.Sprintf("%s [%s+%d], %s", in.Op, in.Src1, in.Imm, in.Src2)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, @%d", in.Op, in.Src1, in.Src2, in.Target)
	case in.Op == OpJmp, in.Op == OpCall:
		return fmt.Sprintf("%s @%d", in.Op, in.Target)
	case in.Op == OpCkptSt:
		return fmt.Sprintf("ckpt.st %s", in.Src2)
	case in.Op == OpSavePC:
		return fmt.Sprintf("save.pc %d", in.Imm)
	case in.Op == OpClwb:
		return fmt.Sprintf("clwb [%s+%d]", in.Src1, in.Imm)
	}
	return in.Op.String()
}

// EvalALU computes the result of a register-register or register-immediate
// ALU operation. b is Src2's value for RR forms or Imm for RI forms.
// Division or remainder by zero yields 0, matching the simulator's
// deliberately total semantics (real hardware would trap; the benchmark
// kernels never divide by zero, but totality keeps property tests simple).
// The add/sub fast path is split out so it inlines into the interpreter's
// dispatch loop (the Go inliner's budget is 80 nodes; more cases push it
// over); everything else falls through to the cold half. Semantics are
// identical to one flat switch.
func EvalALU(op Op, a, b int64) int64 {
	switch op {
	case OpAdd, OpAddI:
		return a + b
	case OpSub:
		return a - b
	}
	return evalALUSlow(op, a, b)
}

func evalALUSlow(op Op, a, b int64) int64 {
	switch op {
	case OpAnd, OpAndI:
		return a & b
	case OpXor, OpXorI:
		return a ^ b
	case OpOr, OpOrI:
		return a | b
	case OpMul, OpMulI:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpRem:
		if b == 0 {
			return 0
		}
		return a % b
	case OpShl, OpShlI:
		return a << (uint64(b) & 63)
	case OpShr, OpShrI:
		return int64(uint64(a) >> (uint64(b) & 63))
	case OpSar, OpSarI:
		return a >> (uint64(b) & 63)
	case OpSlt:
		if a < b {
			return 1
		}
		return 0
	case OpSltu:
		if uint64(a) < uint64(b) {
			return 1
		}
		return 0
	}
	panic("isa: EvalALU called with non-ALU op " + op.String())
}

// BranchTaken evaluates a conditional branch. Like EvalALU it is split so
// the hot comparisons inline into the dispatch loop.
func BranchTaken(op Op, a, b int64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	}
	return branchTakenSlow(op, a, b)
}

func branchTakenSlow(op Op, a, b int64) bool {
	switch op {
	case OpBlt:
		return a < b
	case OpBge:
		return a >= b
	case OpBltu:
		return uint64(a) < uint64(b)
	case OpBgeu:
		return uint64(a) >= uint64(b)
	}
	panic("isa: BranchTaken called with non-branch op " + op.String())
}
