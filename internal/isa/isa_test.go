package isa

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOpClassification(t *testing.T) {
	cases := []struct {
		op                                  Op
		alurr, aluri, load, store, br, term bool
	}{
		{OpAdd, true, false, false, false, false, false},
		{OpSltu, true, false, false, false, false, false},
		{OpAddI, false, true, false, false, false, false},
		{OpSarI, false, true, false, false, false, false},
		{OpLd, false, false, true, false, false, false},
		{OpLdB, false, false, true, false, false, false},
		{OpSt, false, false, false, true, false, false},
		{OpStB, false, false, false, true, false, false},
		{OpCkptSt, false, false, false, true, false, false},
		{OpSavePC, false, false, false, true, false, false},
		{OpBeq, false, false, false, false, true, true},
		{OpBgeu, false, false, false, false, true, true},
		{OpJmp, false, false, false, false, false, true},
		{OpCall, false, false, false, false, false, true},
		{OpRet, false, false, false, false, false, true},
		{OpHalt, false, false, false, false, false, true},
		{OpRegionEnd, false, false, false, false, false, false},
		{OpClwb, false, false, false, false, false, false},
		{OpFence, false, false, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsALURR(); got != c.alurr {
			t.Errorf("%v IsALURR=%v", c.op, got)
		}
		if got := c.op.IsALURI(); got != c.aluri {
			t.Errorf("%v IsALURI=%v", c.op, got)
		}
		if got := c.op.IsLoad(); got != c.load {
			t.Errorf("%v IsLoad=%v", c.op, got)
		}
		if got := c.op.IsStore(); got != c.store {
			t.Errorf("%v IsStore=%v", c.op, got)
		}
		if got := c.op.IsBranch(); got != c.br {
			t.Errorf("%v IsBranch=%v", c.op, got)
		}
		if got := c.op.IsTerminator(); got != c.term {
			t.Errorf("%v IsTerminator=%v", c.op, got)
		}
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want int64
	}{
		{OpAdd, 2, 3, 5},
		{OpSub, 2, 3, -1},
		{OpMul, -4, 3, -12},
		{OpDiv, 7, 2, 3},
		{OpDiv, 7, 0, 0},
		{OpRem, 7, 2, 1},
		{OpRem, 7, 0, 0},
		{OpAnd, 0b1100, 0b1010, 0b1000},
		{OpOr, 0b1100, 0b1010, 0b1110},
		{OpXor, 0b1100, 0b1010, 0b0110},
		{OpShl, 1, 65, 2},  // shift masked to 6 bits
		{OpShr, -1, 63, 1}, // logical
		{OpSar, -8, 2, -2}, // arithmetic
		{OpSlt, -1, 0, 1},
		{OpSlt, 1, 0, 0},
		{OpSltu, -1, 0, 0}, // unsigned: -1 is huge
		{OpAddI, 10, -3, 7},
	}
	for _, c := range cases {
		if got := EvalALU(c.op, c.a, c.b); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUPanicsOnNonALU(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-ALU op")
		}
	}()
	EvalALU(OpLd, 1, 2)
}

func TestBranchTaken(t *testing.T) {
	cases := []struct {
		op   Op
		a, b int64
		want bool
	}{
		{OpBeq, 5, 5, true},
		{OpBeq, 5, 6, false},
		{OpBne, 5, 6, true},
		{OpBlt, -2, -1, true},
		{OpBge, -1, -1, true},
		{OpBltu, -1, 1, false}, // unsigned
		{OpBgeu, -1, 1, true},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v, %d, %d) = %v", c.op, c.a, c.b, got)
		}
	}
}

// TestALUProperties checks algebraic identities with testing/quick.
func TestALUProperties(t *testing.T) {
	if err := quick.Check(func(a, b int64) bool {
		return EvalALU(OpAdd, a, b) == EvalALU(OpAdd, b, a) &&
			EvalALU(OpXor, a, a) == 0 &&
			EvalALU(OpSub, a, a) == 0 &&
			EvalALU(OpAnd, a, b) == EvalALU(OpAnd, b, a) &&
			EvalALU(OpOr, a, 0) == a
	}, nil); err != nil {
		t.Error(err)
	}
	// slt/sltu agree with direct comparisons.
	if err := quick.Check(func(a, b int64) bool {
		slt := EvalALU(OpSlt, a, b) == 1
		sltu := EvalALU(OpSltu, a, b) == 1
		return slt == (a < b) && sltu == (uint64(a) < uint64(b))
	}, nil); err != nil {
		t.Error(err)
	}
	// shifts are total for any shift amount.
	if err := quick.Check(func(a, s int64) bool {
		_ = EvalALU(OpShl, a, s)
		_ = EvalALU(OpShr, a, s)
		_ = EvalALU(OpSar, a, s)
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDefsUses(t *testing.T) {
	in := Instr{Op: OpAdd, Dst: 3, Src1: 1, Src2: 2}
	if in.Defs() != 3 {
		t.Errorf("Defs = %d", in.Defs())
	}
	uses := in.Uses(nil)
	if len(uses) != 2 || uses[0] != 1 || uses[1] != 2 {
		t.Errorf("Uses = %v", uses)
	}

	st := Instr{Op: OpSt, Src1: 4, Src2: 5}
	if st.Defs() != -1 {
		t.Errorf("store Defs = %d", st.Defs())
	}
	uses = st.Uses(nil)
	if len(uses) != 2 {
		t.Errorf("store Uses = %v", uses)
	}

	call := Instr{Op: OpCall}
	if call.Defs() != LR {
		t.Errorf("call Defs = %d, want LR", call.Defs())
	}
	ret := Instr{Op: OpRet}
	uses = ret.Uses(nil)
	if len(uses) != 1 || uses[0] != LR {
		t.Errorf("ret Uses = %v", uses)
	}
	ck := Instr{Op: OpCkptSt, Src2: 7}
	uses = ck.Uses(nil)
	if len(uses) != 1 || uses[0] != 7 {
		t.Errorf("ckpt Uses = %v", uses)
	}
}

func TestStringForms(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpAdd, Dst: 1, Src1: 2, Src2: 3}, "add r1, r2, r3"},
		{Instr{Op: OpAddI, Dst: 1, Src1: 2, Imm: -5}, "addi r1, r2, -5"},
		{Instr{Op: OpLd, Dst: 1, Src1: 2, Imm: 8}, "ld r1, [r2+8]"},
		{Instr{Op: OpSt, Src1: 2, Imm: 8, Src2: 3}, "st [r2+8], r3"},
		{Instr{Op: OpHalt}, "halt"},
		{Instr{Op: OpCkptSt, Src2: 4}, "ckpt.st r4"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestShiftMaskBoundary(t *testing.T) {
	// 1<<64 would overflow; masked to 0 -> identity.
	if got := EvalALU(OpShl, 1, 64); got != 1 {
		t.Errorf("shl by 64 = %d", got)
	}
	if got := EvalALU(OpShr, math.MinInt64, 63); got != 1 {
		t.Errorf("shr MinInt64 by 63 = %d", got)
	}
}
