package isa

import (
	"fmt"
	"testing"
)

// TestClassCoversAllOps proves every opcode the assembler can emit has a
// dispatch class (Class panics on an unmapped op, so predecoding a
// program containing one would fail at link time, not mid-simulation).
func TestClassCoversAllOps(t *testing.T) {
	for op := Op(0); op < opSentinel(); op++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("op %v has no dispatch class", op)
				}
			}()
			_ = op.Class()
		}()
	}
}

// opSentinel returns one past the highest defined opcode by scanning the
// name table (undefined ops render as "op(N)").
func opSentinel() Op {
	op := Op(0)
	for ; op.String() != fmt.Sprintf("op(%d)", uint8(op)); op++ {
	}
	return op
}

func TestClassLatencySplits(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{OpMul, ClassALURRMul},
		{OpDiv, ClassALURRDiv},
		{OpRem, ClassALURRDiv},
		{OpMulI, ClassALURIMul},
		{OpAdd, ClassAdd},
		{OpAddI, ClassAddI},
		{OpXor, ClassXor},
		{OpShl, ClassALURR},
		{OpShlI, ClassALURI},
		{OpBeq, ClassBeq},
		{OpBne, ClassBne},
		{OpBlt, ClassBranch},
		{OpRegionEnd, ClassRegionEnd},
		{OpFence, ClassFence},
		{OpCkptSt, ClassCkptSt},
	}
	for _, c := range cases {
		if got := c.op.Class(); got != c.want {
			t.Errorf("%v.Class() = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestPredecodeMirrorsInstrs(t *testing.T) {
	code := []Instr{
		{Op: OpMovI, Dst: 3, Imm: 42},
		{Op: OpAdd, Dst: 1, Src1: 2, Src2: 3},
		{Op: OpLd, Dst: 4, Src1: 1, Imm: 8},
		{Op: OpBeq, Src1: 1, Src2: 2, Target: 7},
		{Op: OpHalt},
	}
	dec := Predecode(code)
	if len(dec) != len(code) {
		t.Fatalf("len = %d, want %d", len(dec), len(code))
	}
	for i, in := range code {
		d := dec[i]
		if d.Op != in.Op || d.Class != in.Op.Class() ||
			d.Dst != in.Dst || d.Src1 != in.Src1 || d.Src2 != in.Src2 ||
			d.Target != in.Target || d.Imm != in.Imm {
			t.Errorf("instr %d: decoded %+v from %+v", i, d, in)
		}
	}
}
