package telemetry

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/stats"
)

func sampleEvents() []Event {
	return []Event{
		{Kind: EvRegionStart, Now: 0, A: 1},
		{Kind: EvOutageBegin, Now: 1500, A: 1, F: 1.9},
		{Kind: EvRestore, Now: 2500, A: 42, B: 300},
		{Kind: EvOutageEnd, Now: 2800, A: 1, B: 1000, F: 4.93},
		{Kind: EvBackup, Now: 3000, A: 77, B: 250},
		{Kind: EvRegionCommit, Now: 4000, A: 1, B: 12, C: 3},
		{Kind: EvSweepBegin, Now: 4000, A: 1, B: 5},
		{Kind: EvRegionStart, Now: 4100, A: 2},
		{Kind: EvSweepEnd, Now: 4700, A: 1, B: 5},
		{Kind: EvDirtyEvict, Now: 5000, A: 0x2040, B: 2},
		{Kind: EvCkptStore, Now: 5100, A: 3},
		{Kind: EvSavePC, Now: 5200, A: 99},
		{Kind: EvRedoDrain, Now: 5300, A: 2, B: 4},
		{Kind: EvHalt, Now: 6000, A: 123456},
	}
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(EvHalt, 1, 2, 3, 4, 5)
	if err := tr.Close(); err != nil {
		t.Fatalf("nil Close: %v", err)
	}
	if err := tr.Err(); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
}

func TestNilTracerEmitAllocs(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(EvBackup, 10, 1, 2, 3, 4.5)
	})
	if allocs != 0 {
		t.Fatalf("nil Emit allocates %v per call", allocs)
	}
}

func TestTracerFlushOnFillAndClose(t *testing.T) {
	sink := &MemorySink{}
	tr := NewTracer(sink, 4)
	for i := 0; i < 10; i++ {
		tr.Emit(EvBackup, int64(i), int64(i), 0, 0, 0)
	}
	// Capacity 4 → two full flushes so far, 2 events still buffered.
	if got := len(sink.Events); got != 8 {
		t.Fatalf("before close: %d events flushed, want 8", got)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := len(sink.Events); got != 10 {
		t.Fatalf("after close: %d events, want 10", got)
	}
	for i, e := range sink.Events {
		if e.Now != int64(i) {
			t.Fatalf("event %d out of order: Now=%d", i, e.Now)
		}
	}
}

type failSink struct{ n int }

func (f *failSink) WriteEvents([]Event) error { f.n++; return errors.New("disk full") }
func (f *failSink) Close() error              { return nil }

func TestTracerLatchesSinkError(t *testing.T) {
	sink := &failSink{}
	tr := NewTracer(sink, 2)
	for i := 0; i < 10; i++ {
		tr.Emit(EvBackup, int64(i), 0, 0, 0, 0)
	}
	if err := tr.Close(); err == nil {
		t.Fatal("Close did not surface sink error")
	}
	if sink.n != 1 {
		t.Fatalf("sink written %d times after error, want 1", sink.n)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	events := sampleEvents()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	// Every line must be valid standalone JSON.
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i+1, err, line)
		}
		if _, ok := m["ev"]; !ok {
			t.Fatalf("line %d missing ev: %s", i+1, line)
		}
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(got) != len(events) {
		t.Fatalf("round trip: %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: got %+v want %+v", i, got[i], events[i])
		}
	}
}

func TestReadJSONLUnknownEvent(t *testing.T) {
	_, err := ReadJSONL(strings.NewReader(`{"ev":"no.such.event","ns":1}` + "\n"))
	if err == nil {
		t.Fatal("unknown event name accepted")
	}
}

func TestKindNamesBijective(t *testing.T) {
	seen := map[string]bool{}
	for k := EvNone + 1; k < numKinds; k++ {
		name := k.String()
		if name == "" || name == "unknown" {
			t.Fatalf("kind %d has no wire name", k)
		}
		if seen[name] {
			t.Fatalf("duplicate wire name %q", name)
		}
		seen[name] = true
		if KindByName(name) != k {
			t.Fatalf("KindByName(%q) != %v", name, k)
		}
	}
}

func TestChromeTraceValid(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sampleEvents()); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TsUs  float64 `json:"ts"`
			DurUs float64 `json:"dur"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	counts := map[string]int{}
	spans := map[string]bool{}
	for _, e := range doc.TraceEvents {
		counts[e.Phase]++
		if e.Phase == "X" {
			spans[e.Name] = true
			if e.DurUs < 0 {
				t.Fatalf("span %q has negative duration %v", e.Name, e.DurUs)
			}
		}
	}
	if counts["M"] != 4 {
		t.Fatalf("want 4 thread_name metadata events, got %d", counts["M"])
	}
	for _, want := range []string{"outage 1", "region 1", "sweep 1", "backup", "restore"} {
		if !spans[want] {
			t.Fatalf("missing expected span %q (have %v)", want, spans)
		}
	}
	// region 2 never commits (halt) — must still be closed as a span.
	if !spans["region 2"] {
		t.Fatal("dangling region 2 not closed")
	}
	if counts["i"] == 0 {
		t.Fatal("no instant events exported")
	}
}

func TestRegistryAndSnapshotMerge(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(1)
	r.Counter("stores").Add(40)
	r.Gauge("time_ns").Add(100)
	h := r.Histogram("sizes", 8)
	h.Add(3)
	h.Add(5)
	a := r.Snapshot()

	// Mutating the registry after Snapshot must not affect the snapshot.
	r.Counter("runs").Add(100)
	h.Add(7)
	if a.Counters["runs"] != 1 || a.Hists["sizes"].N != 2 {
		t.Fatal("snapshot aliases live registry state")
	}

	r2 := NewRegistry()
	r2.Counter("runs").Add(1)
	r2.Counter("misses").Add(7)
	r2.Gauge("time_ns").Add(50)
	h2 := r2.Histogram("sizes", 8)
	h2.Add(5)
	b := r2.Snapshot()

	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Counters["runs"] != 2 || a.Counters["stores"] != 40 || a.Counters["misses"] != 7 {
		t.Fatalf("counter merge wrong: %v", a.Counters)
	}
	if a.Gauges["time_ns"] != 150 {
		t.Fatalf("gauge merge wrong: %v", a.Gauges)
	}
	if a.Hists["sizes"].N != 3 {
		t.Fatalf("hist merge wrong: N=%d", a.Hists["sizes"].N)
	}
}

func TestSnapshotMergeMismatchedHists(t *testing.T) {
	a := NewSnapshot()
	a.Hists["h"] = stats.NewHist(4)
	a.Hists["h"].Add(2)
	a.Hists["h"].Add(9) // overflow in the 4-bucket histogram

	b := NewSnapshot()
	b.Hists["h"] = stats.NewHist(16)
	b.Hists["h"].Add(9)

	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge with mismatched buckets: %v", err)
	}
	h := a.Hists["h"]
	if want := len(stats.NewHist(16).Buckets); len(h.Buckets) != want {
		t.Fatalf("merged histogram has %d buckets, want %d", len(h.Buckets), want)
	}
	if h.N != 3 {
		t.Fatalf("merged N=%d, want 3", h.N)
	}
	// The 9 sampled before growth stays in overflow; the 9 sampled in the
	// 16-bucket histogram is a real bucket.
	if h.Overflow != 1 {
		t.Fatalf("merged overflow=%d, want 1", h.Overflow)
	}
	// b must be untouched by the merge.
	if len(b.Hists["h"].Buckets) != len(stats.NewHist(16).Buckets) || b.Hists["h"].N != 1 {
		t.Fatal("Merge mutated its argument")
	}
}

func TestSnapshotWriteText(t *testing.T) {
	s := NewSnapshot()
	s.Counters["b"] = 2
	s.Counters["a"] = 1
	s.Gauges["g"] = 1.5
	s.Hists["h"] = stats.NewHist(4)
	s.Hists["h"].Add(1)
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	ia, ib := strings.Index(out, "counter a"), strings.Index(out, "counter b")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("counters missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, "gauge   g") || !strings.Contains(out, "hist    h") {
		t.Fatalf("gauge/hist lines missing:\n%s", out)
	}
}
