package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export: renders an event stream as a JSON object
// Perfetto and chrome://tracing load directly. Paired begin/end events
// become complete ("X") spans on per-component tracks, everything else
// becomes instant ("i") events on an auxiliary track:
//
//	tid 1 "power"    — outage spans (failure → restored)
//	tid 2 "regions"  — region spans (claim → commit)
//	tid 3 "sweeps"   — persist-buffer spans (seal → phase-2 DMA done)
//	tid 4 "events"   — backups, restores, evictions, checkpoint stores
//
// Timestamps are microseconds (the format's unit) derived from the
// simulation clock, so a 1 ms run renders as 1000 time units.

const (
	trackPower   = 1
	trackRegions = 2
	trackSweeps  = 3
	trackEvents  = 4
)

type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUs  float64        `json:"ts"`
	DurUs float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// WriteChromeTrace renders events in Chrome trace_event format.
func WriteChromeTrace(w io.Writer, events []Event) error {
	tr := chromeTrace{DisplayTimeUnit: "ns"}
	for tid, name := range map[int]string{
		trackPower: "power", trackRegions: "regions",
		trackSweeps: "sweeps", trackEvents: "events",
	} {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": name},
		})
	}
	// Metadata order above comes from a map; sort for stable output.
	sort.Slice(tr.TraceEvents, func(i, j int) bool {
		return tr.TraceEvents[i].TID < tr.TraceEvents[j].TID
	})

	// Pair begin/end kinds by their identifying A argument.
	type spanKey struct {
		kind EventKind
		id   int64
	}
	open := map[spanKey]Event{}
	span := func(begin Event, endNs int64, tid int, name string, args map[string]any) {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: name, Phase: "X", TsUs: us(begin.Now),
			DurUs: us(endNs - begin.Now), PID: 1, TID: tid, Args: args,
		})
	}
	instant := func(e Event, name string, args map[string]any) {
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: name, Phase: "i", TsUs: us(e.Now), PID: 1,
			TID: trackEvents, Scope: "t", Args: args,
		})
	}

	for _, e := range events {
		switch e.Kind {
		case EvOutageBegin:
			open[spanKey{EvOutageBegin, e.A}] = e
		case EvOutageEnd:
			if b, ok := open[spanKey{EvOutageBegin, e.A}]; ok {
				delete(open, spanKey{EvOutageBegin, e.A})
				span(b, e.Now, trackPower, fmt.Sprintf("outage %d", e.A), map[string]any{
					"v_fail": b.F, "v_restore": e.F, "charge_ns": e.B,
				})
			}
		case EvRegionStart:
			open[spanKey{EvRegionStart, e.A}] = e
		case EvRegionCommit:
			if b, ok := open[spanKey{EvRegionStart, e.A}]; ok {
				delete(open, spanKey{EvRegionStart, e.A})
				span(b, e.Now, trackRegions, fmt.Sprintf("region %d", e.A), map[string]any{
					"stores": e.B, "flushed": e.C,
				})
			}
		case EvSweepBegin:
			open[spanKey{EvSweepBegin, e.A}] = e
		case EvSweepEnd:
			if b, ok := open[spanKey{EvSweepBegin, e.A}]; ok {
				delete(open, spanKey{EvSweepBegin, e.A})
				span(b, e.Now, trackSweeps, fmt.Sprintf("sweep %d", e.A), map[string]any{
					"entries": e.B,
				})
			}
		case EvBackup:
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "backup", Phase: "X", TsUs: us(e.Now), DurUs: us(e.B),
				PID: 1, TID: trackEvents, Args: map[string]any{"pc": e.A},
			})
		case EvRestore:
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: "restore", Phase: "X", TsUs: us(e.Now), DurUs: us(e.B),
				PID: 1, TID: trackEvents, Args: map[string]any{"pc": e.A},
			})
		case EvDirtyEvict:
			instant(e, "evict", map[string]any{"addr": e.A, "region": e.B})
		case EvCkptStore:
			instant(e, "ckpt.st", map[string]any{"reg": e.A})
		case EvSavePC:
			instant(e, "save.pc", map[string]any{"pc": e.A})
		case EvRedoDrain:
			instant(e, "redo.drain", map[string]any{"region": e.A, "entries": e.B})
		case EvHalt:
			instant(e, "halt", map[string]any{"executed": e.A})
		}
	}
	// Regions or sweeps cut short by halt: close them at their begin time
	// so the trace stays loadable. Sorted so output is deterministic.
	var dangling []spanKey
	for k := range open {
		dangling = append(dangling, k)
	}
	sort.Slice(dangling, func(i, j int) bool {
		if dangling[i].kind != dangling[j].kind {
			return dangling[i].kind < dangling[j].kind
		}
		return dangling[i].id < dangling[j].id
	})
	for _, k := range dangling {
		b := open[k]
		switch k.kind {
		case EvRegionStart:
			span(b, b.Now, trackRegions, fmt.Sprintf("region %d", k.id), nil)
		case EvSweepBegin:
			span(b, b.Now, trackSweeps, fmt.Sprintf("sweep %d", k.id), nil)
		case EvOutageBegin:
			span(b, b.Now, trackPower, fmt.Sprintf("outage %d", k.id), nil)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(&tr)
}

// ChromeSink buffers the full event stream and renders it as a Chrome
// trace at Close (the format needs the whole stream to pair spans).
type ChromeSink struct {
	w      io.Writer
	events []Event
}

// NewChromeSink returns a sink that writes a trace_event JSON document
// to w when closed.
func NewChromeSink(w io.Writer) *ChromeSink { return &ChromeSink{w: w} }

func (s *ChromeSink) WriteEvents(events []Event) error {
	s.events = append(s.events, events...)
	return nil
}

func (s *ChromeSink) Close() error { return WriteChromeTrace(s.w, s.events) }
