package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// AtomicCounter is a monotonically increasing count safe for concurrent
// use. It is the shared-ownership counterpart of Counter: the campaign
// tracker increments it from every runMatrix worker while an HTTP
// handler snapshots it, with no coordination beyond the atomics.
type AtomicCounter struct{ v atomic.Uint64 }

// Add increases the counter by n.
func (c *AtomicCounter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *AtomicCounter) Value() uint64 { return c.v.Load() }

// AtomicGauge is a point-in-time float64 safe for concurrent use.
type AtomicGauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *AtomicGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *AtomicGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LiveRegistry is a set of named metrics safe for concurrent use: any
// goroutine may create, write, and snapshot metrics at any time. It is
// the serving-path complement of Registry — a live /metrics endpoint
// renders a LiveRegistry snapshot mid-campaign, while simulation results
// keep their single-owner Registry and post-run Snapshot merge.
type LiveRegistry struct {
	mu       sync.RWMutex
	counters map[string]*AtomicCounter
	gauges   map[string]*AtomicGauge
}

// NewLiveRegistry returns an empty live registry.
func NewLiveRegistry() *LiveRegistry {
	return &LiveRegistry{
		counters: map[string]*AtomicCounter{},
		gauges:   map[string]*AtomicGauge{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *LiveRegistry) Counter(name string) *AtomicCounter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &AtomicCounter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *LiveRegistry) Gauge(name string) *AtomicGauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &AtomicGauge{}
		r.gauges[name] = g
	}
	return g
}

// Snapshot captures the registry's current values. Safe to call while
// writers are mutating: each metric is read atomically (the snapshot is
// per-metric consistent, not a cross-metric transaction — the usual
// Prometheus exposition contract).
func (r *LiveRegistry) Snapshot() *Snapshot {
	s := NewSnapshot()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	return s
}

// Names returns the registered metric names, sorted, for tests and
// debug output.
func (r *LiveRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
