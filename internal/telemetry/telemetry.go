// Package telemetry is the observability layer of the simulator: a typed
// event tracer, a metrics registry, and exporters.
//
// The tracer answers "when and why" questions the aggregate counters in
// sim.Result cannot: the exact sequence of power outages, JIT backups,
// restores, region commits, persist-buffer sweeps, and dirty evictions
// that produced a number. Events are fixed-size structs collected into a
// ring buffer and flushed to a pluggable Sink (JSONL, Chrome trace_event,
// in-memory). Tracing is off by default and free when off: every emit
// site holds a possibly-nil *Tracer, and Emit on a nil receiver returns
// immediately without allocating, so the disabled path costs one branch.
//
// The metrics registry generalises the ad-hoc counter fields that
// accumulated in sim.Result: named counters, gauges, and histograms with
// a Snapshot that can be merged across the parallel runs of an
// experiment matrix (internal/exp).
package telemetry

// EventKind identifies what happened. The zero value is reserved so a
// zeroed Event is recognisably invalid.
type EventKind uint8

const (
	EvNone EventKind = iota
	// EvOutageBegin marks a power failure: A = outage index (1-based),
	// F = capacitor voltage at the failure instant.
	EvOutageBegin
	// EvOutageEnd marks the end of recovery, after recharge and restore:
	// A = outage index, B = total recharge ns, F = restored voltage.
	EvOutageEnd
	// EvBackup is a JIT checkpoint: A = PC at backup, B = backup cost ns.
	EvBackup
	// EvRestore is a post-outage restore: A = resume PC, B = restore cost ns.
	EvRestore
	// EvRegionStart marks a region claiming a persist buffer: A = region
	// sequence number.
	EvRegionStart
	// EvRegionCommit marks a region.end boundary: A = region sequence,
	// B = dynamic stores executed in the region, C = dirty lines flushed.
	EvRegionCommit
	// EvSweepBegin marks a persist-buffer seal (s-phase1 start): A =
	// region sequence, B = buffer entries to drain.
	EvSweepBegin
	// EvSweepEnd marks the s-phase2 DMA completion: A = region sequence,
	// B = entries drained. Now is the logical completion time (Phase2End),
	// which may precede the emission point in stream order.
	EvSweepEnd
	// EvDirtyEvict is a dirty cacheline leaving the cache mid-region:
	// A = line address, B = region sequence that dirtied it (0 for
	// schemes without regions).
	EvDirtyEvict
	// EvCkptStore is a compiler-inserted ckpt.st: A = register index.
	EvCkptStore
	// EvSavePC is a compiler-inserted save.pc: A = the PC value stored.
	EvSavePC
	// EvRedoDrain is a (1,0) recovery redo of a sweep drain: A = region
	// sequence, B = entries re-drained.
	EvRedoDrain
	// EvHalt terminates the stream: A = instructions executed.
	EvHalt

	numKinds
)

// Event is one fixed-size telemetry record. Now is simulation time in
// nanoseconds; the meaning of A, B, C, and F depends on Kind (documented
// on each kind constant). Fixed size and pointer-free so the ring buffer
// never allocates per event.
type Event struct {
	Kind    EventKind
	Now     int64
	A, B, C int64
	F       float64
}

// kindSpec names a kind and its used argument fields for the JSONL
// schema; an empty field name means the argument is unused.
type kindSpec struct {
	name       string
	a, b, c, f string
}

var kindSpecs = [numKinds]kindSpec{
	EvOutageBegin:  {name: "outage.begin", a: "outage", f: "v"},
	EvOutageEnd:    {name: "outage.end", a: "outage", b: "charge_ns", f: "v"},
	EvBackup:       {name: "backup", a: "pc", b: "cost_ns"},
	EvRestore:      {name: "restore", a: "pc", b: "cost_ns"},
	EvRegionStart:  {name: "region.start", a: "region"},
	EvRegionCommit: {name: "region.commit", a: "region", b: "stores", c: "flushed"},
	EvSweepBegin:   {name: "sweep.begin", a: "region", b: "entries"},
	EvSweepEnd:     {name: "sweep.end", a: "region", b: "entries"},
	EvDirtyEvict:   {name: "evict.dirty", a: "addr", b: "region"},
	EvCkptStore:    {name: "ckpt.store", a: "reg"},
	EvSavePC:       {name: "save.pc", a: "pc"},
	EvRedoDrain:    {name: "redo.drain", a: "region", b: "entries"},
	EvHalt:         {name: "halt", a: "executed"},
}

// String returns the kind's wire name.
func (k EventKind) String() string {
	if int(k) < len(kindSpecs) && kindSpecs[k].name != "" {
		return kindSpecs[k].name
	}
	return "unknown"
}

// KindByName resolves a wire name back to its kind, or EvNone.
func KindByName(name string) EventKind {
	for k, s := range kindSpecs {
		if s.name == name {
			return EventKind(k)
		}
	}
	return EvNone
}

// Sink receives flushed event batches. Implementations must not retain
// the slice past the call.
type Sink interface {
	WriteEvents(events []Event) error
	Close() error
}

// defaultBufferCap is the tracer's ring capacity between flushes.
const defaultBufferCap = 4096

// Tracer collects events into a fixed buffer and flushes them to a sink
// when the buffer fills and at Close. A nil *Tracer is the disabled
// tracer: Emit is a no-op, so emit sites never branch on a flag.
type Tracer struct {
	buf  []Event
	sink Sink
	err  error
}

// NewTracer returns a tracer flushing to sink. bufCap <= 0 selects the
// default capacity.
func NewTracer(sink Sink, bufCap int) *Tracer {
	if bufCap <= 0 {
		bufCap = defaultBufferCap
	}
	return &Tracer{buf: make([]Event, 0, bufCap), sink: sink}
}

// Enabled reports whether the tracer records events; callers may use it
// to skip expensive argument preparation.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event. Safe on a nil tracer (no-op). The first sink
// error latches and suppresses further writes.
func (t *Tracer) Emit(kind EventKind, now int64, a, b, c int64, f float64) {
	if t == nil || t.err != nil {
		return
	}
	t.buf = append(t.buf, Event{Kind: kind, Now: now, A: a, B: b, C: c, F: f})
	if len(t.buf) == cap(t.buf) {
		t.flush()
	}
}

func (t *Tracer) flush() {
	if len(t.buf) == 0 || t.err != nil {
		return
	}
	t.err = t.sink.WriteEvents(t.buf)
	t.buf = t.buf[:0]
}

// Close flushes buffered events and closes the sink. Safe on nil.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.flush()
	if err := t.sink.Close(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// Err returns the first error the tracer or its sink reported.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	return t.err
}
