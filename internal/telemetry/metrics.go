package telemetry

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
)

// Counter is a monotonically increasing count.
//
// Single-owner rule: a Counter (like a Gauge and a Registry) is owned by
// exactly one goroutine at a time — the simulation that populates it —
// and must not be written from two goroutines, nor read while its owner
// is still writing. Parallel runs each own a private Registry and merge
// immutable Snapshots afterwards; that hand-off (write, then publish the
// snapshot) is the only cross-goroutine flow. Anything shared between
// live goroutines — the campaign tracker's counters, a served /metrics
// endpoint — must use AtomicCounter or LiveRegistry instead.
// TestRegistrySingleOwnerHandoff and TestAtomicCounterConcurrent pin
// both halves of this contract under the race detector.
type Counter struct{ v uint64 }

// Add increases the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a point-in-time value. Gauges merge additively across runs
// (times and energies — the gauges this simulator records — are sums).
// Gauge follows the same single-owner rule as Counter.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add increases the gauge by v.
func (g *Gauge) Add(v float64) { g.v += v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Registry is a set of named metrics. It is not safe for concurrent use
// (see the single-owner rule on Counter); parallel runs each populate
// their own registry and merge Snapshots. For metrics shared between
// live goroutines use LiveRegistry.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*stats.Hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*stats.Hist{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bound on first use (max is ignored for an existing histogram).
func (r *Registry) Histogram(name string, max int) *stats.Hist {
	h := r.hists[name]
	if h == nil {
		h = stats.NewHist(max)
		r.hists[name] = h
	}
	return h
}

// SetHistogram installs an existing histogram under name (the simulator
// records region histograms in stats.Hist already; re-sampling them into
// a fresh histogram would be waste).
func (r *Registry) SetHistogram(name string, h *stats.Hist) { r.hists[name] = h }

// Snapshot captures the registry's current values. Histograms are
// deep-copied so a snapshot is immune to later mutation.
func (r *Registry) Snapshot() *Snapshot {
	s := NewSnapshot()
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		s.Hists[name] = copyHist(h)
	}
	return s
}

func copyHist(h *stats.Hist) *stats.Hist {
	cp := &stats.Hist{
		Buckets:  append([]uint64(nil), h.Buckets...),
		Overflow: h.Overflow,
		N:        h.N,
		Sum:      h.Sum,
	}
	return cp
}

// Snapshot is a point-in-time copy of a registry, mergeable across runs.
type Snapshot struct {
	Counters map[string]uint64
	Gauges   map[string]float64
	Hists    map[string]*stats.Hist
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Counters: map[string]uint64{},
		Gauges:   map[string]float64{},
		Hists:    map[string]*stats.Hist{},
	}
}

// Merge folds o into s: counters and gauges add, histograms merge
// sample-wise. Histograms recorded with different bucket bounds (e.g.
// across store-threshold sweeps) are reconciled by growing the smaller
// histogram first; samples already in its overflow stay in overflow.
func (s *Snapshot) Merge(o *Snapshot) error {
	for name, v := range o.Counters {
		s.Counters[name] += v
	}
	for name, v := range o.Gauges {
		s.Gauges[name] += v
	}
	for name, oh := range o.Hists {
		h := s.Hists[name]
		if h == nil {
			s.Hists[name] = copyHist(oh)
			continue
		}
		if len(h.Buckets) != len(oh.Buckets) {
			oh = copyHist(oh)
			grow(h, len(oh.Buckets))
			grow(oh, len(h.Buckets))
		}
		if err := h.Merge(oh); err != nil {
			return fmt.Errorf("telemetry: merge %q: %w", name, err)
		}
	}
	return nil
}

func grow(h *stats.Hist, n int) {
	for len(h.Buckets) < n {
		h.Buckets = append(h.Buckets, 0)
	}
}

// WriteText renders the snapshot as sorted, aligned plain text.
func (s *Snapshot) WriteText(w io.Writer) error {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter %-28s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge   %-28s %g\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Hists[n]
		if _, err := fmt.Fprintf(w, "hist    %-28s n=%d mean=%.2f p50=%d p99=%d overflow=%d\n",
			n, h.N, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Overflow); err != nil {
			return err
		}
	}
	return nil
}
