package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// MemorySink accumulates events in memory — the sink for tests and for
// in-process analysis.
type MemorySink struct {
	Events []Event
}

func (m *MemorySink) WriteEvents(events []Event) error {
	m.Events = append(m.Events, events...)
	return nil
}

func (m *MemorySink) Close() error { return nil }

// DiscardSink drops every event — the sink for overhead benchmarks of
// the enabled path.
type DiscardSink struct{}

func (DiscardSink) WriteEvents([]Event) error { return nil }
func (DiscardSink) Close() error              { return nil }

// MultiSink fans every batch out to several sinks.
type MultiSink []Sink

func (m MultiSink) WriteEvents(events []Event) error {
	for _, s := range m {
		if err := s.WriteEvents(events); err != nil {
			return err
		}
	}
	return nil
}

func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// JSONLSink streams events as one JSON object per line. The encoding is
// hand-rolled over a reused scratch buffer so an enabled trace does not
// allocate per event, and field order is fixed so identical runs produce
// byte-identical streams.
type JSONLSink struct {
	w       *bufio.Writer
	scratch []byte
}

// NewJSONLSink returns a sink writing JSON lines to w. The caller owns
// w's underlying file; Close flushes but does not close it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: bufio.NewWriterSize(w, 64<<10)}
}

func (s *JSONLSink) WriteEvents(events []Event) error {
	for i := range events {
		s.scratch = AppendJSONL(s.scratch[:0], &events[i])
		if _, err := s.w.Write(s.scratch); err != nil {
			return err
		}
	}
	return nil
}

func (s *JSONLSink) Close() error { return s.w.Flush() }

// AppendJSONL appends e's JSONL encoding (including the trailing
// newline) to dst and returns the extended slice.
func AppendJSONL(dst []byte, e *Event) []byte {
	spec := &kindSpecs[e.Kind]
	dst = append(dst, `{"ev":"`...)
	dst = append(dst, spec.name...)
	dst = append(dst, `","ns":`...)
	dst = strconv.AppendInt(dst, e.Now, 10)
	if spec.a != "" {
		dst = appendIntField(dst, spec.a, e.A)
	}
	if spec.b != "" {
		dst = appendIntField(dst, spec.b, e.B)
	}
	if spec.c != "" {
		dst = appendIntField(dst, spec.c, e.C)
	}
	if spec.f != "" {
		dst = append(dst, ',', '"')
		dst = append(dst, spec.f...)
		dst = append(dst, '"', ':')
		// Shortest representation that round-trips exactly, so parsing a
		// stream reconstructs the recorded events bit-for-bit.
		dst = strconv.AppendFloat(dst, e.F, 'g', -1, 64)
	}
	return append(dst, '}', '\n')
}

func appendIntField(dst []byte, name string, v int64) []byte {
	dst = append(dst, ',', '"')
	dst = append(dst, name...)
	dst = append(dst, '"', ':')
	return strconv.AppendInt(dst, v, 10)
}

// WriteJSONL writes events as a JSONL stream.
func WriteJSONL(w io.Writer, events []Event) error {
	s := NewJSONLSink(w)
	if err := s.WriteEvents(events); err != nil {
		return err
	}
	return s.Close()
}

// parseJSONLEvent decodes one JSONL line into an Event.
func parseJSONLEvent(line []byte) (Event, error) {
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(line, &fields); err != nil {
		return Event{}, err
	}
	var name string
	if err := json.Unmarshal(fields["ev"], &name); err != nil {
		return Event{}, fmt.Errorf("missing ev: %w", err)
	}
	kind := KindByName(name)
	if kind == EvNone {
		return Event{}, fmt.Errorf("unknown event %q", name)
	}
	e := Event{Kind: kind}
	spec := &kindSpecs[kind]
	getInt := func(name string, dst *int64) error {
		if name == "" {
			return nil
		}
		if msg, ok := fields[name]; ok {
			return json.Unmarshal(msg, dst)
		}
		return nil
	}
	if err := getInt("ns", &e.Now); err != nil {
		return Event{}, err
	}
	if err := getInt(spec.a, &e.A); err != nil {
		return Event{}, err
	}
	if err := getInt(spec.b, &e.B); err != nil {
		return Event{}, err
	}
	if err := getInt(spec.c, &e.C); err != nil {
		return Event{}, err
	}
	if spec.f != "" {
		if msg, ok := fields[spec.f]; ok {
			if err := json.Unmarshal(msg, &e.F); err != nil {
				return Event{}, err
			}
		}
	}
	return e, nil
}

// ReadJSONL parses a JSONL event stream back into events — the inverse
// of the JSONL sink, used by cmd/sweeptrace. Unknown event names are an
// error so schema drift is caught loudly.
func ReadJSONL(r io.Reader) ([]Event, error) {
	events, _, err := readJSONL(r, true)
	return events, err
}

// ReadJSONLTolerant is ReadJSONL for streams that may end (or be damaged)
// mid-line — the normal state of a trace whose recorder was killed. Bad
// lines are skipped and counted instead of failing the whole read.
func ReadJSONLTolerant(r io.Reader) (events []Event, skipped int, err error) {
	return readJSONL(r, false)
}

func readJSONL(r io.Reader, strict bool) ([]Event, int, error) {
	var out []Event
	skipped := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		e, err := parseJSONLEvent(line)
		if err != nil {
			if strict {
				return nil, 0, fmt.Errorf("telemetry: line %d: %w", lineNo, err)
			}
			skipped++
			continue
		}
		out = append(out, e)
	}
	return out, skipped, sc.Err()
}
