package telemetry

import (
	"sync"
	"testing"
)

// TestAtomicCounterConcurrent hammers one AtomicCounter and one
// AtomicGauge from many goroutines while a reader snapshots them. Under
// -race this enforces that the shared metric types — unlike Counter and
// Gauge — really are safe for concurrent use.
func TestAtomicCounterConcurrent(t *testing.T) {
	r := NewLiveRegistry()
	const workers, perWorker = 8, 1000

	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() { // concurrent reader: snapshot while writers mutate
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()

	var writers sync.WaitGroup
	for i := 0; i < workers; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < perWorker; j++ {
				r.Counter("cells.done").Add(1)
				r.Gauge("cells.rate").Set(float64(j))
			}
			r.Counter("workers.started").Add(1)
		}()
	}
	writers.Wait()
	close(stop)
	<-readerDone

	if got := r.Counter("cells.done").Value(); got != workers*perWorker {
		t.Fatalf("cells.done = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("workers.started").Value(); got != workers {
		t.Fatalf("workers.started = %d, want %d", got, workers)
	}
	snap := r.Snapshot()
	if snap.Counters["cells.done"] != workers*perWorker {
		t.Fatalf("snapshot cells.done = %d", snap.Counters["cells.done"])
	}
	if want := []string{"cells.done", "cells.rate", "workers.started"}; len(r.Names()) != len(want) {
		t.Fatalf("Names() = %v, want %v", r.Names(), want)
	}
}

// TestRegistrySingleOwnerHandoff pins the legal cross-goroutine flow for
// the unsynchronized Registry: each goroutine owns a private registry,
// writes it, and publishes the immutable snapshot over a channel. Under
// -race this passes precisely because the hand-off is sequenced by the
// channel; writing one registry from two goroutines would trip the race
// detector (and is forbidden by the single-owner rule documented on
// Counter).
func TestRegistrySingleOwnerHandoff(t *testing.T) {
	snaps := make(chan *Snapshot, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(n uint64) {
			defer wg.Done()
			reg := NewRegistry() // private to this goroutine
			reg.Counter("sim.instrs").Add(n)
			reg.Gauge("sim.time_ns").Add(float64(n))
			snaps <- reg.Snapshot() // publish: ownership of the data ends here
		}(uint64(i + 1))
	}
	wg.Wait()
	close(snaps)
	total := NewSnapshot()
	for s := range snaps {
		if err := total.Merge(s); err != nil {
			t.Fatal(err)
		}
	}
	if got := total.Counters["sim.instrs"]; got != 1+2+3+4 {
		t.Fatalf("merged sim.instrs = %d, want 10", got)
	}
}
