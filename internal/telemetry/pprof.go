package telemetry

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins CPU profiling into <prefix>.cpu.pb.gz and returns
// a stop function that ends it and additionally writes a heap profile to
// <prefix>.mem.pb.gz — the run-phase profiling hook behind the CLIs'
// -pprof flag. Inspect the outputs with `go tool pprof`.
func StartProfiles(prefix string) (stop func() error, err error) {
	cpuFile, err := os.Create(prefix + ".cpu.pb.gz")
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(cpuFile); err != nil {
		cpuFile.Close()
		return nil, err
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			return err
		}
		memFile, err := os.Create(prefix + ".mem.pb.gz")
		if err != nil {
			return err
		}
		defer memFile.Close()
		runtime.GC() // settle allocations so the heap profile is meaningful
		if err := pprof.WriteHeapProfile(memFile); err != nil {
			return fmt.Errorf("telemetry: heap profile: %w", err)
		}
		return nil
	}, nil
}
