//go:build unix

package journal

import (
	"os"
	"syscall"
)

// Advisory inter-process file locking via flock(2). Locks attach to the
// open file description, so two Journal handles on the same path — in one
// process or two — contend with each other, while the in-process mutex
// keeps a single handle's goroutines ordered. Advisory means a rogue
// writer that never locks can still interleave; every writer in this
// repository locks.

// lockFile takes the advisory lock on f: exclusive for writers, shared
// for the Open scan. Blocks until the lock is granted.
func lockFile(f *os.File, exclusive bool) error {
	how := syscall.LOCK_SH
	if exclusive {
		how = syscall.LOCK_EX
	}
	for {
		err := syscall.Flock(int(f.Fd()), how)
		if err != syscall.EINTR {
			return err
		}
	}
}

// unlockFile releases the advisory lock on f.
func unlockFile(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
