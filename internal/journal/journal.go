// Package journal makes experiment matrices crash-safe: every completed
// (workload, scheme, supply, params) cell is appended to a durable JSONL
// journal as soon as it finishes, and a restarted run consults the journal
// first and skips every already-proven cell. A process kill, OOM, panic or
// Ctrl-C therefore loses at most the cells that were in flight — resume is
// a plain re-run with the same journal path.
//
// Entries are keyed by a content hash of the full cell identity (workload,
// scale, scheme, trace profile, seed, a fingerprint of every simulation
// parameter, and the engine revision), so a journal can never serve a
// result produced under a different configuration or model version.
// Records round-trip the simulation result exactly — encoding/json renders
// float64 in shortest round-trip form, so a reloaded cell is bit-identical
// to the freshly simulated one; the resume tests in internal/exp prove the
// digests match across an interruption.
//
// The file format is deliberately forgiving: a line that fails to parse,
// fails its key check, or fails its digest check (a crash mid-append, a
// truncated disk, bit rot) is counted and skipped, and the cell simply
// re-runs. The journal never makes a run fail that would have succeeded
// without one.
package journal

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/energy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// FormatVersion is the journal line format revision; lines with any other
// version are skipped (counted as corrupt) rather than misread.
const FormatVersion = 1

// Cell identifies one experiment-matrix cell completely: everything that
// can change the simulated result is part of the key.
type Cell struct {
	Workload string `json:"workload"`
	Scale    int    `json:"scale"`
	Scheme   string `json:"scheme"`
	// Profile is the trace profile name, or "outage-free" for an ideal
	// supply.
	Profile string `json:"profile"`
	Seed    int64  `json:"seed"`
	// ParamsFP is config.Params.Fingerprint() — a content hash over every
	// simulation parameter.
	ParamsFP string `json:"params_fp"`
	// Engine is sim.EngineVersion at record time; a model change
	// invalidates every prior entry.
	Engine string `json:"engine"`
}

// Key returns the cell's content-hash key.
func (c Cell) Key() string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d\x00%s\x00%s\x00%d\x00%s\x00%s",
		c.Workload, c.Scale, c.Scheme, c.Profile, c.Seed, c.ParamsFP, c.Engine)))
	return hex.EncodeToString(h[:])
}

// Record is the durable form of a sim.Result. Every observable field is
// kept except the final NVM image, which is replaced by its content hash
// (NVMHash): the image exists for differential consistency checks during
// the run, while the hash is what result digests and golden tests pin.
type Record struct {
	Scheme string `json:"scheme"`
	Halted bool   `json:"halted"`

	TimeNs    int64  `json:"time_ns"`
	RunNs     int64  `json:"run_ns"`
	ChargeNs  int64  `json:"charge_ns"`
	RestoreNs int64  `json:"restore_ns"`
	Outages   uint64 `json:"outages"`

	Counts cpu.Counts    `json:"counts"`
	Ledger energy.Ledger `json:"ledger"`
	Arch   archRecord    `json:"arch"`

	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	DirtyEvictions uint64 `json:"dirty_evictions"`

	NVMReads      uint64 `json:"nvm_reads"`
	NVMWrites     uint64 `json:"nvm_writes"`
	NVMLineReads  uint64 `json:"nvm_line_reads"`
	NVMLineWrites uint64 `json:"nvm_line_writes"`

	RegionSizes *stats.Hist `json:"region_sizes,omitempty"`

	// NVMHash is the hex SHA-256 of the final NVM image ("" when the
	// result carried no image).
	NVMHash string `json:"nvm_hash,omitempty"`
}

// archRecord mirrors arch.Stats field for field with JSON tags.
type archRecord struct {
	TpNs            int64       `json:"tp_ns"`
	TwaitNs         int64       `json:"twait_ns"`
	RegionsExecuted uint64      `json:"regions"`
	StoresPerRegion *stats.Hist `json:"stores_per_region,omitempty"`
	BufferSearches  uint64      `json:"buffer_searches"`
	BufferBypasses  uint64      `json:"buffer_bypasses"`
	BufferHits      uint64      `json:"buffer_hits"`
	WAWStallNs      int64       `json:"waw_stall_ns"`
	FenceStallNs    int64       `json:"fence_stall_ns"`
	ClwbStallNs     int64       `json:"clwb_stall_ns"`
	BackupEvents    uint64      `json:"backups"`
	RestoreEvents   uint64      `json:"restores"`
	LinesBackedUp   uint64      `json:"lines_backed_up"`
	ReplayedStores  uint64      `json:"replayed_stores"`
	RedoneDrains    uint64      `json:"redone_drains"`
}

// FromResult converts a simulation result into its durable record.
func FromResult(r *sim.Result) *Record {
	rec := &Record{
		Scheme: r.Scheme, Halted: r.Halted,
		TimeNs: r.TimeNs, RunNs: r.RunNs, ChargeNs: r.ChargeNs,
		RestoreNs: r.RestoreNs, Outages: r.Outages,
		Counts: r.Counts, Ledger: r.Ledger,
		Arch: archRecord{
			TpNs: r.Arch.TpNs, TwaitNs: r.Arch.TwaitNs,
			RegionsExecuted: r.Arch.RegionsExecuted,
			StoresPerRegion: r.Arch.StoresPerRegion,
			BufferSearches:  r.Arch.BufferSearches,
			BufferBypasses:  r.Arch.BufferBypasses,
			BufferHits:      r.Arch.BufferHits,
			WAWStallNs:      r.Arch.WAWStallNs,
			FenceStallNs:    r.Arch.FenceStallNs,
			ClwbStallNs:     r.Arch.ClwbStallNs,
			BackupEvents:    r.Arch.BackupEvents,
			RestoreEvents:   r.Arch.RestoreEvents,
			LinesBackedUp:   r.Arch.LinesBackedUp,
			ReplayedStores:  r.Arch.ReplayedStores,
			RedoneDrains:    r.Arch.RedoneDrains,
		},
		CacheHits: r.CacheHits, CacheMisses: r.CacheMisses,
		DirtyEvictions: r.DirtyEvictions,
		NVMReads:       r.NVMReads, NVMWrites: r.NVMWrites,
		NVMLineReads: r.NVMLineReads, NVMLineWrites: r.NVMLineWrites,
		RegionSizes: r.RegionSizes,
	}
	if r.NVM != nil {
		h := r.NVM.ContentHash()
		rec.NVMHash = hex.EncodeToString(h[:])
	}
	return rec
}

// Result reconstructs the sim.Result. The NVM field is nil — the image is
// not journalled, only its hash — so reconstructed results serve every
// figure and aggregate but not differential memory-image checks.
func (rec *Record) Result() *sim.Result {
	return &sim.Result{
		Scheme: rec.Scheme, Halted: rec.Halted,
		TimeNs: rec.TimeNs, RunNs: rec.RunNs, ChargeNs: rec.ChargeNs,
		RestoreNs: rec.RestoreNs, Outages: rec.Outages,
		Counts: rec.Counts, Ledger: rec.Ledger,
		Arch: arch.Stats{
			TpNs: rec.Arch.TpNs, TwaitNs: rec.Arch.TwaitNs,
			RegionsExecuted: rec.Arch.RegionsExecuted,
			StoresPerRegion: rec.Arch.StoresPerRegion,
			BufferSearches:  rec.Arch.BufferSearches,
			BufferBypasses:  rec.Arch.BufferBypasses,
			BufferHits:      rec.Arch.BufferHits,
			WAWStallNs:      rec.Arch.WAWStallNs,
			FenceStallNs:    rec.Arch.FenceStallNs,
			ClwbStallNs:     rec.Arch.ClwbStallNs,
			BackupEvents:    rec.Arch.BackupEvents,
			RestoreEvents:   rec.Arch.RestoreEvents,
			LinesBackedUp:   rec.Arch.LinesBackedUp,
			ReplayedStores:  rec.Arch.ReplayedStores,
			RedoneDrains:    rec.Arch.RedoneDrains,
		},
		CacheHits: rec.CacheHits, CacheMisses: rec.CacheMisses,
		DirtyEvictions: rec.DirtyEvictions,
		NVMReads:       rec.NVMReads, NVMWrites: rec.NVMWrites,
		NVMLineReads: rec.NVMLineReads, NVMLineWrites: rec.NVMLineWrites,
		RegionSizes: rec.RegionSizes,
	}
}

// Digest returns the hex SHA-256 of the record's canonical JSON encoding.
// Because float64 JSON round-trips exactly, a record written, reloaded,
// and re-digested hashes identically — the property the kill/resume
// invariant tests pin.
func (rec *Record) Digest() string {
	raw, err := json.Marshal(rec)
	if err != nil {
		// Record holds only finite numbers and plain structs; Marshal
		// cannot fail on a value FromResult built.
		panic("journal: marshal record: " + err.Error())
	}
	h := sha256.Sum256(raw)
	return hex.EncodeToString(h[:])
}

// line is one journal line on disk.
type line struct {
	Format int     `json:"format"`
	Key    string  `json:"key"`
	Cell   Cell    `json:"cell"`
	Digest string  `json:"digest"`
	Record *Record `json:"record"`
}

// Stats counts what the journal has seen.
type Stats struct {
	Loaded  int // valid entries recovered at Open
	Corrupt int // lines skipped at Open (parse, key, or digest failure)
	Hits    int // Lookup calls that returned a record
	Appends int // entries appended this session
	// TailError records a scanner failure during Open — e.g. a line beyond
	// the 64 MB buffer cap — that made the entire remaining tail of the
	// file unreadable. Unlike a Corrupt line (one bad entry), a tail error
	// means an unknown number of valid cells were dropped and will re-run;
	// it is surfaced distinctly so operators can see the difference.
	TailError string
}

// Journal is an open cell journal: an in-memory index over an append-only
// file. Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	entries map[string]*Record
	stats   Stats
	// Fsync forces a Sync after every append (the default): an entry is
	// durable against power loss, not just process death, before the cell
	// is reported complete. Tests may disable it for speed.
	Fsync bool
}

// Open reads (or creates) the journal at path and indexes its valid
// entries. Corrupt or truncated lines — a crash mid-append leaves at most
// one — are skipped and counted, never fatal.
//
// The file is opened O_APPEND and every append holds an exclusive
// advisory flock, so multiple processes (service replicas, a resuming
// batch run beside a live server) can share one journal: appends land
// whole at the end of the file, never interleaved mid-line. The initial
// scan holds the shared lock, so it never reads through a half-written
// line from a concurrent appender.
func Open(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j := &Journal{f: f, entries: map[string]*Record{}, Fsync: true}

	if err := lockFile(f, false); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: lock %s: %w", path, err)
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var l line
		if err := json.Unmarshal([]byte(raw), &l); err != nil ||
			l.Format != FormatVersion || l.Record == nil {
			j.stats.Corrupt++
			continue
		}
		// Integrity: the key must re-derive from the cell, and the digest
		// from the record, or the line has been tampered with / bit-rotted.
		if l.Cell.Key() != l.Key || l.Record.Digest() != l.Digest {
			j.stats.Corrupt++
			continue
		}
		j.entries[l.Key] = l.Record
		j.stats.Loaded++
	}
	if err := sc.Err(); err != nil {
		// An unreadable tail (e.g. a line beyond the buffer cap) degrades
		// to "those cells re-run" — but unlike a single corrupt line it
		// drops every entry after the failure point, so it is surfaced as
		// its own field and logged, not folded into the Corrupt count.
		j.stats.TailError = err.Error()
		slog.Warn("journal: unreadable tail — entries after the failure point are dropped and those cells will re-run",
			"path", path, "loaded", j.stats.Loaded, "err", err)
	}
	if err := unlockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: unlock %s: %w", path, err)
	}
	// No seek needed: O_APPEND routes every write to the end atomically,
	// which is what lets two processes share one journal file.
	return j, nil
}

// Lookup returns the journalled record for the cell, if one exists.
func (j *Journal) Lookup(c Cell) (*Record, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec, ok := j.entries[c.Key()]
	if ok {
		j.stats.Hits++
	}
	return rec, ok
}

// Append journals one completed cell durably: the line is written and (by
// default) fsynced before Append returns, so a kill immediately after
// cannot lose it.
func (j *Journal) Append(c Cell, rec *Record) error {
	l := line{Format: FormatVersion, Key: c.Key(), Cell: c, Digest: rec.Digest(), Record: rec}
	raw, err := json.Marshal(&l)
	if err != nil {
		return fmt.Errorf("journal: marshal entry: %w", err)
	}
	raw = append(raw, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	// Exclusive advisory lock for the write+sync: O_APPEND already lands
	// the single write() whole at the end of the file, and the lock keeps
	// concurrent handles (other processes sharing this journal) from
	// racing a partial write or reordering against the fsync.
	if err := lockFile(j.f, true); err != nil {
		return fmt.Errorf("journal: lock for append: %w", err)
	}
	defer unlockFile(j.f)
	if _, err := j.f.Write(raw); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if j.Fsync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	j.entries[l.Key] = rec
	j.stats.Appends++
	return nil
}

// Len returns the number of distinct cells currently proven.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Stats returns a snapshot of the journal's counters.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// Close releases the underlying file. The journal stays readable in
// memory but further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
