package journal_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/journal"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// result runs one real quick simulation so the records under test carry
// genuine float ledgers and histograms, not synthetic round numbers.
func result(t *testing.T) *sim.Result {
	t.Helper()
	w, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *ir.Program { return w.Build(1) }
	res, err := core.Run(build, arch.SweepEmptyBit, config.Default(), trace.New(trace.RFHome, 1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testCell(n string) journal.Cell {
	return journal.Cell{
		Workload: n, Scale: 1, Scheme: "sweep-eb", Profile: "RFHome",
		Seed: 1, ParamsFP: "deadbeefdeadbeefdeadbeefdeadbeef", Engine: sim.EngineVersion,
	}
}

// TestRecordRoundTripExact is the property the kill/resume invariant
// rests on: a record written to disk, reloaded, and re-digested hashes
// identically to the fresh one — encoding/json renders float64 in
// shortest round-trip form, so nothing drifts.
func TestRecordRoundTripExact(t *testing.T) {
	res := result(t)
	rec := journal.FromResult(res)
	want := rec.Digest()

	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Fsync = false
	if err := j.Append(testCell("sha"), rec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.Stats(); st.Loaded != 1 || st.Corrupt != 0 {
		t.Fatalf("reload stats = %+v, want 1 loaded 0 corrupt", st)
	}
	got, ok := j2.Lookup(testCell("sha"))
	if !ok {
		t.Fatal("reloaded journal misses the cell")
	}
	if d := got.Digest(); d != want {
		t.Errorf("digest drift across write/reload:\n fresh    %s\n reloaded %s", want, d)
	}
	ra, _ := json.Marshal(rec)
	rb, _ := json.Marshal(got)
	if !bytes.Equal(ra, rb) {
		t.Error("reloaded record is not byte-identical to the fresh one")
	}

	// The reconstructed result serves the figures: timing, energy, and
	// every counter must match (only the NVM image is hash-only).
	back := got.Result()
	if back.TimeNs != res.TimeNs || back.Outages != res.Outages ||
		back.Counts != res.Counts || back.Ledger != res.Ledger {
		t.Error("reconstructed result diverges from the original")
	}
	if back.NVM != nil {
		t.Error("reconstructed result must not claim an NVM image")
	}
}

// TestLookupIsolation pins that a journal never serves a record across a
// configuration change: any identity field difference is a miss.
func TestLookupIsolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Fsync = false
	if err := j.Append(testCell("sha"), journal.FromResult(result(t))); err != nil {
		t.Fatal(err)
	}
	muts := map[string]func(*journal.Cell){
		"workload": func(c *journal.Cell) { c.Workload = "fft" },
		"scale":    func(c *journal.Cell) { c.Scale = 2 },
		"scheme":   func(c *journal.Cell) { c.Scheme = "nvp" },
		"profile":  func(c *journal.Cell) { c.Profile = "outage-free" },
		"seed":     func(c *journal.Cell) { c.Seed = 2 },
		"params":   func(c *journal.Cell) { c.ParamsFP = "0123456789abcdef0123456789abcdef" },
		"engine":   func(c *journal.Cell) { c.Engine = "engine-v0" },
	}
	for name, mut := range muts {
		c := testCell("sha")
		mut(&c)
		if _, ok := j.Lookup(c); ok {
			t.Errorf("journal served a record across a %s change", name)
		}
	}
}

// TestOpenTolerance damages a journal the ways a crash does — a torn
// final line, a flipped byte, foreign garbage — and requires Open to
// recover every intact entry while counting the rest.
func TestOpenTolerance(t *testing.T) {
	rec := journal.FromResult(result(t))
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Fsync = false
	for _, n := range []string{"a", "b", "c"} {
		if err := j.Append(testCell(n), rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))

	t.Run("torn tail", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "j.jsonl")
		damaged := append(append([]byte{}, raw...), lines[0][:40]...) // mid-append crash
		os.WriteFile(p, damaged, 0o644)
		j, err := journal.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		if st := j.Stats(); st.Loaded != 3 || st.Corrupt != 1 {
			t.Errorf("stats = %+v, want 3 loaded 1 corrupt", st)
		}
	})

	t.Run("flipped byte", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "j.jsonl")
		damaged := append([]byte{}, raw...)
		damaged[len(lines[0])+len(lines[1])/2] ^= 0x20 // inside line 2
		os.WriteFile(p, damaged, 0o644)
		j, err := journal.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		st := j.Stats()
		if st.Loaded+st.Corrupt != 3 || st.Loaded < 2 {
			t.Errorf("stats = %+v, want the 2 intact lines recovered", st)
		}
	})

	t.Run("foreign garbage then append", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "j.jsonl")
		os.WriteFile(p, append([]byte("not json at all\n{\"format\":99}\n"), lines[0]...), 0o644)
		j, err := journal.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		j.Fsync = false
		if st := j.Stats(); st.Loaded != 1 || st.Corrupt != 2 {
			t.Errorf("stats = %+v, want 1 loaded 2 corrupt", st)
		}
		// The journal stays appendable after a tolerant open, and a clean
		// reopen sees both the surviving and the new entry.
		if err := j.Append(testCell("d"), rec); err != nil {
			t.Fatal(err)
		}
		j.Close()
		j2, err := journal.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		if j2.Len() != 2 {
			t.Errorf("after damage + append: %d entries, want 2", j2.Len())
		}
	})
}
