package journal_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/journal"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// result runs one real quick simulation so the records under test carry
// genuine float ledgers and histograms, not synthetic round numbers.
func result(t *testing.T) *sim.Result {
	t.Helper()
	w, err := workloads.ByName("sha")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *ir.Program { return w.Build(1) }
	res, err := core.Run(build, arch.SweepEmptyBit, config.Default(), trace.New(trace.RFHome, 1))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testCell(n string) journal.Cell {
	return journal.Cell{
		Workload: n, Scale: 1, Scheme: "sweep-eb", Profile: "RFHome",
		Seed: 1, ParamsFP: "deadbeefdeadbeefdeadbeefdeadbeef", Engine: sim.EngineVersion,
	}
}

// TestRecordRoundTripExact is the property the kill/resume invariant
// rests on: a record written to disk, reloaded, and re-digested hashes
// identically to the fresh one — encoding/json renders float64 in
// shortest round-trip form, so nothing drifts.
func TestRecordRoundTripExact(t *testing.T) {
	res := result(t)
	rec := journal.FromResult(res)
	want := rec.Digest()

	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Fsync = false
	if err := j.Append(testCell("sha"), rec); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if st := j2.Stats(); st.Loaded != 1 || st.Corrupt != 0 {
		t.Fatalf("reload stats = %+v, want 1 loaded 0 corrupt", st)
	}
	got, ok := j2.Lookup(testCell("sha"))
	if !ok {
		t.Fatal("reloaded journal misses the cell")
	}
	if d := got.Digest(); d != want {
		t.Errorf("digest drift across write/reload:\n fresh    %s\n reloaded %s", want, d)
	}
	ra, _ := json.Marshal(rec)
	rb, _ := json.Marshal(got)
	if !bytes.Equal(ra, rb) {
		t.Error("reloaded record is not byte-identical to the fresh one")
	}

	// The reconstructed result serves the figures: timing, energy, and
	// every counter must match (only the NVM image is hash-only).
	back := got.Result()
	if back.TimeNs != res.TimeNs || back.Outages != res.Outages ||
		back.Counts != res.Counts || back.Ledger != res.Ledger {
		t.Error("reconstructed result diverges from the original")
	}
	if back.NVM != nil {
		t.Error("reconstructed result must not claim an NVM image")
	}
}

// TestLookupIsolation pins that a journal never serves a record across a
// configuration change: any identity field difference is a miss.
func TestLookupIsolation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	j.Fsync = false
	if err := j.Append(testCell("sha"), journal.FromResult(result(t))); err != nil {
		t.Fatal(err)
	}
	muts := map[string]func(*journal.Cell){
		"workload": func(c *journal.Cell) { c.Workload = "fft" },
		"scale":    func(c *journal.Cell) { c.Scale = 2 },
		"scheme":   func(c *journal.Cell) { c.Scheme = "nvp" },
		"profile":  func(c *journal.Cell) { c.Profile = "outage-free" },
		"seed":     func(c *journal.Cell) { c.Seed = 2 },
		"params":   func(c *journal.Cell) { c.ParamsFP = "0123456789abcdef0123456789abcdef" },
		"engine":   func(c *journal.Cell) { c.Engine = "engine-v0" },
	}
	for name, mut := range muts {
		c := testCell("sha")
		mut(&c)
		if _, ok := j.Lookup(c); ok {
			t.Errorf("journal served a record across a %s change", name)
		}
	}
}

// TestTwoHandleConcurrentAppend opens the same journal file through two
// independent handles — the same file-description layout two processes
// sharing one journal would have — and appends from both concurrently.
// O_APPEND plus the per-append flock must keep every line whole: a clean
// reopen recovers every entry with zero corruption. Before the fix
// (O_RDWR + manual seek-to-end, no lock) the two handles' cached offsets
// made appends overwrite and tear each other.
func TestTwoHandleConcurrentAppend(t *testing.T) {
	rec := journal.FromResult(result(t))
	path := filepath.Join(t.TempDir(), "shared.jsonl")

	ja, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ja.Fsync, jb.Fsync = false, false

	const perHandle = 50
	var wg sync.WaitGroup
	appendAll := func(j *journal.Journal, prefix string) {
		defer wg.Done()
		for i := 0; i < perHandle; i++ {
			if err := j.Append(testCell(fmt.Sprintf("%s%03d", prefix, i)), rec); err != nil {
				t.Errorf("append %s%d: %v", prefix, i, err)
				return
			}
		}
	}
	wg.Add(2)
	go appendAll(ja, "a")
	go appendAll(jb, "b")
	wg.Wait()
	ja.Close()
	jb.Close()

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.Corrupt != 0 || st.TailError != "" {
		t.Errorf("concurrent two-handle appends corrupted the journal: %+v", st)
	}
	if st.Loaded != 2*perHandle {
		t.Errorf("loaded %d entries, want %d", st.Loaded, 2*perHandle)
	}
	// Every entry must be intact, not merely parseable: digests re-verify
	// at Open, so Loaded == total already proves it, but check a sample
	// lookup from each handle's range.
	for _, n := range []string{"a000", "a049", "b000", "b049"} {
		if _, ok := j2.Lookup(testCell(n)); !ok {
			t.Errorf("entry %s missing after concurrent appends", n)
		}
	}
}

// TestTailErrorSurfaced feeds Open a journal whose tail holds a line
// beyond the scanner's 64 MB buffer cap. Every entry before the bad line
// must load, and the scanner failure must surface as Stats.TailError —
// not be silently folded into the per-line Corrupt count.
func TestTailErrorSurfaced(t *testing.T) {
	rec := journal.FromResult(result(t))
	path := filepath.Join(t.TempDir(), "tail.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Fsync = false
	if err := j.Append(testCell("ok"), rec); err != nil {
		t.Fatal(err)
	}
	j.Close()

	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// One monster line: longer than the 64 MB scanner cap, no newline.
	chunk := bytes.Repeat([]byte{'x'}, 1<<20)
	for i := 0; i < 65; i++ {
		if _, err := f.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	j2, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	st := j2.Stats()
	if st.Loaded != 1 {
		t.Errorf("loaded %d entries, want the 1 before the oversized line", st.Loaded)
	}
	if st.TailError == "" {
		t.Error("scanner failure not surfaced in Stats.TailError")
	}
	if st.Corrupt != 0 {
		t.Errorf("tail error double-counted as %d corrupt lines", st.Corrupt)
	}
}

// TestOpenTolerance damages a journal the ways a crash does — a torn
// final line, a flipped byte, foreign garbage — and requires Open to
// recover every intact entry while counting the rest.
func TestOpenTolerance(t *testing.T) {
	rec := journal.FromResult(result(t))
	path := filepath.Join(t.TempDir(), "cells.jsonl")
	j, err := journal.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Fsync = false
	for _, n := range []string{"a", "b", "c"} {
		if err := j.Append(testCell(n), rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))

	t.Run("torn tail", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "j.jsonl")
		damaged := append(append([]byte{}, raw...), lines[0][:40]...) // mid-append crash
		os.WriteFile(p, damaged, 0o644)
		j, err := journal.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		if st := j.Stats(); st.Loaded != 3 || st.Corrupt != 1 {
			t.Errorf("stats = %+v, want 3 loaded 1 corrupt", st)
		}
	})

	t.Run("flipped byte", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "j.jsonl")
		damaged := append([]byte{}, raw...)
		damaged[len(lines[0])+len(lines[1])/2] ^= 0x20 // inside line 2
		os.WriteFile(p, damaged, 0o644)
		j, err := journal.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer j.Close()
		st := j.Stats()
		if st.Loaded+st.Corrupt != 3 || st.Loaded < 2 {
			t.Errorf("stats = %+v, want the 2 intact lines recovered", st)
		}
	})

	t.Run("foreign garbage then append", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "j.jsonl")
		os.WriteFile(p, append([]byte("not json at all\n{\"format\":99}\n"), lines[0]...), 0o644)
		j, err := journal.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		j.Fsync = false
		if st := j.Stats(); st.Loaded != 1 || st.Corrupt != 2 {
			t.Errorf("stats = %+v, want 1 loaded 2 corrupt", st)
		}
		// The journal stays appendable after a tolerant open, and a clean
		// reopen sees both the surviving and the new entry.
		if err := j.Append(testCell("d"), rec); err != nil {
			t.Fatal(err)
		}
		j.Close()
		j2, err := journal.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer j2.Close()
		if j2.Len() != 2 {
			t.Errorf("after damage + append: %d entries, want 2", j2.Len())
		}
	})
}
