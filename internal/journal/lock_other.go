//go:build !unix

package journal

import "os"

// Non-unix platforms have no flock(2); O_APPEND alone still keeps
// single-process appends intact, and multi-process sharing is only
// supported where the advisory lock exists.

func lockFile(f *os.File, exclusive bool) error { return nil }

func unlockFile(f *os.File) error { return nil }
