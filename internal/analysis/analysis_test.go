package analysis

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/isa"
)

// diamond builds: entry -> (l | r) -> join -> halt.
func diamond(t *testing.T) (*ir.Program, *ir.Function) {
	t.Helper()
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	l := f.NewBlock("l")
	r := f.NewBlock("r")
	j := f.NewBlock("join")
	en.Beq(0, 1, l, r)
	l.MovI(2, 1)
	l.Jmp(j)
	r.MovI(2, 2)
	r.Jmp(j)
	j.Halt()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, f
}

// loopFn builds: entry -> head; head -> (exit | body); body -> head.
func loopFn(t *testing.T) (*ir.Program, *ir.Function) {
	t.Helper()
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	head := f.NewBlock("head")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")
	en.MovI(0, 0)
	en.MovI(1, 10)
	en.Jmp(head)
	head.Bge(0, 1, exit, body)
	body.MovI(3, 5)
	body.St(3, 0, 0) // store so the loop counts for region formation
	body.AddI(0, 0, 1)
	body.Jmp(head)
	exit.Halt()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p, f
}

func TestPreds(t *testing.T) {
	_, f := diamond(t)
	preds := Preds(f)
	if len(preds[3]) != 2 {
		t.Errorf("join preds = %d", len(preds[3]))
	}
	if len(preds[0]) != 0 {
		t.Errorf("entry preds = %d", len(preds[0]))
	}
}

func TestReversePostorder(t *testing.T) {
	_, f := diamond(t)
	rpo := ReversePostorder(f)
	if len(rpo) != 4 {
		t.Fatalf("rpo len = %d", len(rpo))
	}
	if rpo[0] != f.Entry() {
		t.Error("rpo does not start at entry")
	}
	pos := map[*ir.Block]int{}
	for i, b := range rpo {
		pos[b] = i
	}
	// Join must come after both arms.
	if pos[f.Blocks[3]] < pos[f.Blocks[1]] || pos[f.Blocks[3]] < pos[f.Blocks[2]] {
		t.Error("join ordered before its predecessors")
	}
}

func TestReversePostorderSkipsUnreachable(t *testing.T) {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	f.Entry().Halt()
	dead := f.NewBlock("dead")
	dead.Halt()
	if got := len(ReversePostorder(f)); got != 1 {
		t.Errorf("rpo includes unreachable: %d", got)
	}
}

func TestDominators(t *testing.T) {
	_, f := diamond(t)
	dom := Dominators(f)
	en, l, r, j := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if dom.IDom[j.Idx] != en {
		t.Errorf("idom(join) = %v", dom.IDom[j.Idx])
	}
	if !dom.Dominates(en, j) || !dom.Dominates(j, j) {
		t.Error("dominance relation broken")
	}
	if dom.Dominates(l, j) || dom.Dominates(r, j) {
		t.Error("arm should not dominate join")
	}
}

func TestNaturalLoops(t *testing.T) {
	_, f := loopFn(t)
	loops := NaturalLoops(f)
	if len(loops) != 1 {
		t.Fatalf("loops = %d", len(loops))
	}
	lp := loops[0]
	if lp.Header != f.Blocks[1] {
		t.Errorf("header = %v", lp.Header.Label)
	}
	if !lp.Blocks[f.Blocks[2]] || !lp.Blocks[lp.Header] {
		t.Error("loop body membership")
	}
	if lp.Blocks[f.Blocks[3]] {
		t.Error("exit included in loop")
	}
	if !lp.HasStore() {
		t.Error("loop store not detected")
	}
	if len(lp.Latches) != 1 || lp.Latches[0] != f.Blocks[2] {
		t.Error("latch detection")
	}
}

func TestNaturalLoopsNone(t *testing.T) {
	_, f := diamond(t)
	if loops := NaturalLoops(f); len(loops) != 0 {
		t.Errorf("found %d loops in acyclic cfg", len(loops))
	}
}

func TestRegSet(t *testing.T) {
	var s RegSet
	s = s.Add(3).Add(15)
	if !s.Has(3) || !s.Has(15) || s.Has(4) {
		t.Error("membership")
	}
	if s.Count() != 2 {
		t.Errorf("count = %d", s.Count())
	}
	s = s.Remove(3)
	if s.Has(3) {
		t.Error("remove")
	}
	regs := s.Regs(nil)
	if len(regs) != 1 || regs[0] != 15 {
		t.Errorf("regs = %v", regs)
	}
	if s.Union(RegSet(0b1)).Count() != 2 {
		t.Error("union")
	}
}

func TestLivenessStraightLine(t *testing.T) {
	p := ir.NewProgram("t")
	f := p.NewFunc("main")
	en := f.Entry()
	en.MovI(1, 7)    // def r1
	en.AddI(2, 1, 1) // use r1, def r2
	en.St(2, 0, 2)   // use r2
	en.Halt()
	lv := ComputeLiveness(p)
	if lv.In[en] != 0 {
		t.Errorf("live-in of entry = %v (nothing should be live-in)", lv.In[en])
	}
}

func TestLivenessLoop(t *testing.T) {
	p, f := loopFn(t)
	lv := ComputeLiveness(p)
	head := f.Blocks[1]
	// r0 (counter) and r1 (limit) are live at the loop head.
	if !lv.In[head].Has(0) || !lv.In[head].Has(1) {
		t.Errorf("head live-in = %v", lv.In[head])
	}
	// r3 is defined in the body before use; not live into the head.
	if lv.In[head].Has(3) {
		t.Error("r3 spuriously live at head")
	}
}

func TestLivenessInterprocedural(t *testing.T) {
	p := ir.NewProgram("t")
	main := p.NewFunc("main")
	callee := p.NewFunc("callee")

	// callee: uses r5, defines r6, returns.
	ce := callee.Entry()
	ce.AddI(6, 5, 1)
	ce.Ret()

	en := main.Entry()
	cont := main.NewBlock("cont")
	en.MovI(5, 42) // argument
	en.MovI(7, 9)  // live across the call
	en.Call(callee, cont)
	cont.St(7, 0, 6) // uses callee result r6 and caller value r7
	cont.Halt()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	lv := ComputeLiveness(p)
	// Callee needs r5 (argument) and lr (to return).
	if !lv.EntryIn[callee].Has(5) || !lv.EntryIn[callee].Has(isa.LR) {
		t.Errorf("callee entry live-in = %v", lv.EntryIn[callee])
	}
	// r6 and r7 are live after the call -> callee exit-live includes them.
	if !lv.ExitLive[callee].Has(6) || !lv.ExitLive[callee].Has(7) {
		t.Errorf("callee exit-live = %v", lv.ExitLive[callee])
	}
	// The analysis never treats a call as killing a register (the callee
	// may or may not define it), so r6 is conservatively live through
	// the call — extra checkpoint stores, never a missed one.
	if !lv.In[en].Has(6) {
		t.Error("expected conservative liveness of r6 through the call")
	}
}

func TestLivenessCallKillsLR(t *testing.T) {
	p := ir.NewProgram("t")
	main := p.NewFunc("main")
	callee := p.NewFunc("callee")
	callee.Entry().Ret()
	en := main.Entry()
	cont := main.NewBlock("cont")
	en.Call(callee, cont)
	cont.Halt()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(p)
	// LR is defined by the call, so it must not be live into main's entry.
	if lv.In[en].Has(isa.LR) {
		t.Error("lr live into caller entry despite call defining it")
	}
}
