// Package analysis implements the compiler analyses SweepCache's region
// formation depends on: control-flow predecessors, reverse postorder,
// dominator trees, natural-loop detection, and interprocedural register
// liveness.
//
// Liveness is computed at basic-block granularity, matching the paper's
// observation (Section 4.1) that "liveness analysis is generally conducted
// at the level of basic blocks"; the region-formation pass splits blocks so
// region boundaries always coincide with block starts.
package analysis

import (
	"math/bits"

	"repro/internal/ir"
	"repro/internal/isa"
)

// RegSet is a bitset over the architectural registers.
type RegSet uint32

// Has reports whether r is in the set.
func (s RegSet) Has(r isa.Reg) bool { return s&(1<<r) != 0 }

// Add returns s with r included.
func (s RegSet) Add(r isa.Reg) RegSet { return s | 1<<r }

// Remove returns s without r.
func (s RegSet) Remove(r isa.Reg) RegSet { return s &^ (1 << r) }

// Union returns the union of s and t.
func (s RegSet) Union(t RegSet) RegSet { return s | t }

// Count returns the number of registers in the set.
func (s RegSet) Count() int { return bits.OnesCount32(uint32(s)) }

// Regs appends the members of s to dst in ascending order.
func (s RegSet) Regs(dst []isa.Reg) []isa.Reg {
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		if s.Has(r) {
			dst = append(dst, r)
		}
	}
	return dst
}

// Preds returns, for each block of f (indexed by Block.Idx), its
// predecessor blocks.
func Preds(f *ir.Function) [][]*ir.Block {
	preds := make([][]*ir.Block, len(f.Blocks))
	var succs []*ir.Block
	for _, b := range f.Blocks {
		succs = b.Succs(succs[:0])
		for _, s := range succs {
			preds[s.Idx] = append(preds[s.Idx], b)
		}
	}
	return preds
}

// ReversePostorder returns f's blocks in reverse postorder from the entry.
// Unreachable blocks are omitted.
func ReversePostorder(f *ir.Function) []*ir.Block {
	seen := make([]bool, len(f.Blocks))
	var post []*ir.Block
	var dfs func(b *ir.Block)
	var succs []*ir.Block
	dfs = func(b *ir.Block) {
		seen[b.Idx] = true
		succs = b.Succs(succs[:0])
		// Copy: dfs recursion reuses the shared scratch slice.
		local := append([]*ir.Block(nil), succs...)
		for _, s := range local {
			if !seen[s.Idx] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DomTree holds immediate dominators for a function's reachable blocks.
type DomTree struct {
	// IDom[b.Idx] is b's immediate dominator, or nil for the entry and
	// unreachable blocks.
	IDom []*ir.Block
	f    *ir.Function
}

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = d.IDom[b.Idx]
	}
	return false
}

// Dominators computes the dominator tree with the Cooper–Harvey–Kennedy
// iterative algorithm over reverse postorder.
func Dominators(f *ir.Function) *DomTree {
	rpo := ReversePostorder(f)
	rpoNum := make([]int, len(f.Blocks))
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range rpo {
		rpoNum[b.Idx] = i
	}
	preds := Preds(f)
	idom := make([]*ir.Block, len(f.Blocks))
	entry := f.Entry()
	idom[entry.Idx] = entry

	intersect := func(a, b *ir.Block) *ir.Block {
		for a != b {
			for rpoNum[a.Idx] > rpoNum[b.Idx] {
				a = idom[a.Idx]
			}
			for rpoNum[b.Idx] > rpoNum[a.Idx] {
				b = idom[b.Idx]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *ir.Block
			for _, p := range preds[b.Idx] {
				if idom[p.Idx] == nil {
					continue // p not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[b.Idx] != newIdom {
				idom[b.Idx] = newIdom
				changed = true
			}
		}
	}
	idom[entry.Idx] = nil
	return &DomTree{IDom: idom, f: f}
}

// Loop is one natural loop.
type Loop struct {
	Header *ir.Block
	// Blocks is the loop body including the header, keyed by Block.Idx.
	Blocks map[*ir.Block]bool
	// Latches are the blocks with back edges to Header.
	Latches []*ir.Block
}

// NaturalLoops finds all natural loops of f. Loops sharing a header are
// merged into one Loop.
func NaturalLoops(f *ir.Function) []*Loop {
	dom := Dominators(f)
	preds := Preds(f)
	byHeader := map[*ir.Block]*Loop{}
	var order []*ir.Block

	var succs []*ir.Block
	for _, b := range f.Blocks {
		succs = b.Succs(succs[:0])
		for _, h := range succs {
			if !dom.Dominates(h, b) {
				continue
			}
			// Back edge b -> h.
			lp := byHeader[h]
			if lp == nil {
				lp = &Loop{Header: h, Blocks: map[*ir.Block]bool{h: true}}
				byHeader[h] = lp
				order = append(order, h)
			}
			lp.Latches = append(lp.Latches, b)
			// Walk predecessors back from the latch to collect the body.
			stack := []*ir.Block{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if lp.Blocks[n] {
					continue
				}
				lp.Blocks[n] = true
				stack = append(stack, preds[n.Idx]...)
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHeader[h])
	}
	return loops
}

// HasStore reports whether any block of the loop contains a store; loops
// without stores are exempt from header boundaries (Section 4.1, footnote).
func (lp *Loop) HasStore() bool {
	for b := range lp.Blocks {
		for _, in := range b.Instrs {
			if in.Op.IsStore() {
				return true
			}
		}
	}
	return false
}
