package analysis

import (
	"repro/internal/ir"
	"repro/internal/isa"
)

// Liveness holds interprocedural register liveness at block granularity.
//
// Calls are handled with a whole-program fixpoint: a call uses the callee's
// entry live-in set, and a function's return blocks are live-out for the
// union of its callsites' continuation live-ins. The analysis never treats
// a call as killing a register (the callee may or may not define it), which
// is conservative in the safe direction for checkpoint insertion: a
// register reported live is checkpointed; one reported dead is provably
// never read again.
type Liveness struct {
	In  map[*ir.Block]RegSet
	Out map[*ir.Block]RegSet
	// EntryIn[f] is liveness at f's entry; ExitLive[f] is liveness at
	// f's return points.
	EntryIn  map[*ir.Function]RegSet
	ExitLive map[*ir.Function]RegSet
}

// ComputeLiveness runs the interprocedural fixpoint over the program.
func ComputeLiveness(p *ir.Program) *Liveness {
	lv := &Liveness{
		In:       map[*ir.Block]RegSet{},
		Out:      map[*ir.Block]RegSet{},
		EntryIn:  map[*ir.Function]RegSet{},
		ExitLive: map[*ir.Function]RegSet{},
	}
	// Iterate until the whole program stabilizes. All transfer functions
	// are monotone over finite lattices, so this terminates.
	for changed := true; changed; {
		changed = false
		// Propagate callsite continuations into callee exit sets first.
		for _, f := range p.Funcs {
			for _, b := range f.Blocks {
				if b.Terminator().Op == isa.OpCall {
					callee := b.CallTarget
					add := lv.In[b.FallTarget]
					if lv.ExitLive[callee]|add != lv.ExitLive[callee] {
						lv.ExitLive[callee] |= add
						changed = true
					}
				}
			}
		}
		for _, f := range p.Funcs {
			if lv.funcPass(f) {
				changed = true
			}
		}
	}
	return lv
}

// funcPass runs one backward dataflow pass over f; reports change.
func (lv *Liveness) funcPass(f *ir.Function) bool {
	changed := false
	rpo := ReversePostorder(f)
	var succs []*ir.Block
	// Iterate f's blocks to a local fixpoint (postorder for backward flow).
	for again := true; again; {
		again = false
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			var out RegSet
			if b.Terminator().Op == isa.OpRet {
				out = lv.ExitLive[f]
			}
			succs = b.Succs(succs[:0])
			for _, s := range succs {
				out |= lv.In[s]
			}
			in := lv.BlockTransfer(b, out)
			if out != lv.Out[b] || in != lv.In[b] {
				lv.Out[b] = out
				lv.In[b] = in
				again = true
				changed = true
			}
		}
	}
	if e := lv.In[f.Entry()]; e != lv.EntryIn[f] {
		lv.EntryIn[f] = e
		changed = true
	}
	return changed
}

// BlockTransfer computes the live-in set of b given its live-out set by
// scanning instructions backwards.
func (lv *Liveness) BlockTransfer(b *ir.Block, out RegSet) RegSet {
	live := out
	var uses []isa.Reg
	for i := len(b.Instrs) - 1; i >= 0; i-- {
		in := b.Instrs[i]
		if in.Op == isa.OpCall {
			// The call defines LR and uses the callee's entry live-ins
			// — except LR itself, whose upward exposure in the callee
			// is satisfied by this very call.
			live = live.Remove(isa.LR)
			live |= lv.EntryIn[b.CallTarget].Remove(isa.LR)
			continue
		}
		if d := in.Defs(); d >= 0 {
			live = live.Remove(isa.Reg(d))
		}
		uses = in.Uses(uses[:0])
		for _, u := range uses {
			live = live.Add(u)
		}
	}
	return live
}
