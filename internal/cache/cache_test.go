package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func fill(c *Cache, addr int64, b byte) *Line {
	var data [mem.LineSize]byte
	for i := range data {
		data[i] = b
	}
	return c.Fill(addr, &data)
}

func TestHitMiss(t *testing.T) {
	c := New(4096, 2)
	if c.Touch(100) != nil {
		t.Fatal("hit in empty cache")
	}
	fill(c, 100, 7)
	ln := c.Touch(100)
	if ln == nil {
		t.Fatal("miss after fill")
	}
	if ln.ByteAt(100) != 7 {
		t.Error("data")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate %f", c.MissRate())
	}
}

func TestSameSetMapping(t *testing.T) {
	c := New(4096, 2)
	nsets := 4096 / 64 / 2
	a := int64(0)
	b := int64(nsets * 64) // same set, different tag
	fill(c, a, 1)
	fill(c, b, 2)
	if c.Probe(a) == nil || c.Probe(b) == nil {
		t.Fatal("two ways should coexist")
	}
	// A third line in the same set must evict the LRU (a, untouched).
	c.Touch(b)
	fill(c, int64(2*nsets*64), 3)
	if c.Probe(a) != nil {
		t.Error("LRU line not evicted")
	}
	if c.Probe(b) == nil {
		t.Error("MRU line evicted")
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := New(4096, 2)
	fill(c, 0, 1)
	v := c.Victim(0)
	if v.Valid {
		t.Error("victim should be the invalid way")
	}
}

func TestFillOverDirtyVictimPanics(t *testing.T) {
	c := New(128, 2) // one set, two ways
	fill(c, 0, 1)
	fill(c, 64, 2)
	c.Probe(0).Dirty = true
	c.Probe(64).Dirty = true
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on un-drained dirty victim")
		}
	}()
	fill(c, 128, 3)
}

func TestWordByteAccessors(t *testing.T) {
	c := New(4096, 2)
	ln := fill(c, 256, 0)
	ln.WriteWord(256+8, -42)
	if ln.ReadWord(256+8) != -42 {
		t.Error("word round trip")
	}
	ln.SetByte(256+3, 0xAB)
	if ln.ByteAt(256+3) != 0xAB {
		t.Error("byte round trip")
	}
}

func TestDirtyAndValidLines(t *testing.T) {
	c := New(4096, 2)
	fill(c, 0, 1)
	fill(c, 64, 2)
	fill(c, 128, 3)
	c.Probe(64).Dirty = true
	d := c.DirtyLines(nil)
	if len(d) != 1 || d[0].Tag != 64 {
		t.Errorf("dirty lines: %d", len(d))
	}
	if len(c.ValidLines(nil)) != 3 {
		t.Error("valid lines")
	}
}

func TestInvalidatePreservesSlots(t *testing.T) {
	c := New(4096, 2)
	ln := fill(c, 64, 1)
	slot := ln.Slot
	c.Invalidate()
	if c.Probe(64) != nil {
		t.Error("line survived invalidate")
	}
	ln2 := fill(c, 64, 1)
	if ln2.Slot != slot {
		t.Errorf("slot changed across invalidate: %d -> %d", slot, ln2.Slot)
	}
}

func TestSlotsUniqueAndStable(t *testing.T) {
	c := New(2048, 4)
	seen := map[int]bool{}
	for _, ln := range allLines(c) {
		if seen[ln.Slot] {
			t.Fatalf("duplicate slot %d", ln.Slot)
		}
		seen[ln.Slot] = true
	}
	if len(seen) != c.NumLines() {
		t.Errorf("%d slots for %d lines", len(seen), c.NumLines())
	}
}

func allLines(c *Cache) []*Line {
	var out []*Line
	for si := range c.sets {
		for i := range c.sets[si] {
			out = append(out, &c.sets[si][i])
		}
	}
	return out
}

func TestBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ size, ways int }{{0, 2}, {100, 0}, {64, 2}, {192, 1}} {
		func() {
			defer func() { recover() }()
			New(tc.size, tc.ways)
			t.Errorf("New(%d,%d) did not panic", tc.size, tc.ways)
		}()
	}
}

// TestCacheCoherentWithShadow: property test — a cache over a shadow map
// returns exactly the shadow's data for every probe, under random fills
// and writes.
func TestCacheCoherentWithShadow(t *testing.T) {
	c := New(1024, 2)
	shadow := map[int64]int64{} // word addr -> value
	rng := rand.New(rand.NewSource(1))
	backing := map[int64][mem.LineSize]byte{}

	readLine := func(la int64) [mem.LineSize]byte { return backing[la] }
	writeBack := func(ln *Line) {
		backing[ln.Tag] = ln.Data
	}

	for i := 0; i < 20000; i++ {
		addr := int64(rng.Intn(64)) * 8 // 64 words over 8 sets: heavy conflict
		if rng.Intn(4) < 3 {
			la := mem.LineAddr(addr)
			ln := c.Touch(addr)
			if ln == nil {
				v := c.Victim(addr)
				if v.Valid && v.Dirty {
					writeBack(v)
					v.Dirty = false
				}
				data := readLine(la)
				ln = c.Fill(addr, &data)
			}
			if want := shadow[addr]; ln.ReadWord(addr) != want {
				t.Fatalf("step %d: read %d != %d", i, ln.ReadWord(addr), want)
			}
		} else {
			v := rng.Int63()
			la := mem.LineAddr(addr)
			ln := c.Touch(addr)
			if ln == nil {
				vic := c.Victim(addr)
				if vic.Valid && vic.Dirty {
					writeBack(vic)
					vic.Dirty = false
				}
				data := readLine(la)
				ln = c.Fill(addr, &data)
			}
			ln.WriteWord(addr, v)
			ln.Dirty = true
			shadow[addr] = v
		}
	}
}

func TestLRUQuick(t *testing.T) {
	// Repeatedly touching one line must keep it resident regardless of
	// other traffic to the same set.
	if err := quick.Check(func(seed int64) bool {
		c := New(128, 2) // one set
		fill(c, 0, 1)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			c.Touch(0)
			other := int64(1+rng.Intn(10)) * 64
			if c.Touch(other) == nil {
				v := c.Victim(other)
				if v.Valid && v.Dirty {
					v.Dirty = false
				}
				var d [mem.LineSize]byte
				c.Fill(other, &d)
			}
		}
		return c.Probe(0) != nil
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
