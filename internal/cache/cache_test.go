package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func fill(c *Cache, addr int64, b byte) int {
	var data [mem.LineSize]byte
	for i := range data {
		data[i] = b
	}
	return c.Fill(addr, &data)
}

func TestHitMiss(t *testing.T) {
	c := New(4096, 2)
	if c.Touch(100) != NoSlot {
		t.Fatal("hit in empty cache")
	}
	fill(c, 100, 7)
	slot := c.Touch(100)
	if slot == NoSlot {
		t.Fatal("miss after fill")
	}
	if c.ByteAt(slot, 100) != 7 {
		t.Error("data")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
	if c.MissRate() != 0.5 {
		t.Errorf("miss rate %f", c.MissRate())
	}
}

func TestSameSetMapping(t *testing.T) {
	c := New(4096, 2)
	nsets := 4096 / 64 / 2
	a := int64(0)
	b := int64(nsets * 64) // same set, different tag
	fill(c, a, 1)
	fill(c, b, 2)
	if c.Probe(a) == NoSlot || c.Probe(b) == NoSlot {
		t.Fatal("two ways should coexist")
	}
	// A third line in the same set must evict the LRU (a, untouched).
	c.Touch(b)
	fill(c, int64(2*nsets*64), 3)
	if c.Probe(a) != NoSlot {
		t.Error("LRU line not evicted")
	}
	if c.Probe(b) == NoSlot {
		t.Error("MRU line evicted")
	}
}

func TestVictimPrefersInvalid(t *testing.T) {
	c := New(4096, 2)
	fill(c, 0, 1)
	v := c.Victim(0)
	if c.Valid(v) {
		t.Error("victim should be the invalid way")
	}
}

// TestVictimPrefersInvalidProperty: for any interleaving of fills that
// leaves at least one invalid way in a set, Victim must pick an invalid
// way — never evict live data while free space remains (satellite
// property test for the SoA rewrite).
func TestVictimPrefersInvalidProperty(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		c := New(1024, 4) // 4 sets x 4 ways
		rng := rand.New(rand.NewSource(seed))
		filled := map[int64]bool{}
		for i := 0; i < 50; i++ {
			addr := int64(rng.Intn(16)) * 64
			set := int(mem.LineAddr(addr)/mem.LineSize) % 4
			// Count valid ways in addr's set before deciding.
			validWays := 0
			for w := 0; w < 4; w++ {
				if c.Valid(set*4 + w) {
					validWays++
				}
			}
			v := c.Victim(addr)
			if validWays < 4 && c.Valid(v) {
				return false // evicted live data despite a free way
			}
			if validWays == 4 && !c.Valid(v) {
				return false // full set must evict something valid
			}
			fill(c, addr, byte(i))
			filled[mem.LineAddr(addr)] = true
		}
		return true
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// lruRef is a reference true-LRU model: per set, an ordered list of line
// addresses from most- to least-recently used.
type lruRef struct {
	ways  int
	nsets int
	sets  [][]int64 // MRU first
}

func newLRURef(nsets, ways int) *lruRef {
	r := &lruRef{ways: ways, nsets: nsets, sets: make([][]int64, nsets)}
	return r
}

func (r *lruRef) set(la int64) int { return int(la/mem.LineSize) % r.nsets }

// touch returns true on hit and moves la to MRU.
func (r *lruRef) touch(la int64) bool {
	s := r.set(la)
	for i, a := range r.sets[s] {
		if a == la {
			r.sets[s] = append(r.sets[s][:i], r.sets[s][i+1:]...)
			r.sets[s] = append([]int64{la}, r.sets[s]...)
			return true
		}
	}
	return false
}

// fill inserts la at MRU, evicting the LRU entry if the set is full;
// returns the evicted line address or -1.
func (r *lruRef) fill(la int64) int64 {
	s := r.set(la)
	evicted := int64(-1)
	if len(r.sets[s]) == r.ways {
		evicted = r.sets[s][len(r.sets[s])-1]
		r.sets[s] = r.sets[s][:len(r.sets[s])-1]
	}
	r.sets[s] = append([]int64{la}, r.sets[s]...)
	return evicted
}

// TestTrueLRUAgainstReference: the SoA cache's residency must match a
// reference true-LRU model under arbitrary touch/fill traffic (satellite
// property test — proves the tick/lru rewrite preserved exact LRU).
func TestTrueLRUAgainstReference(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		const nsets, ways = 4, 2
		c := New(nsets*ways*64, ways)
		ref := newLRURef(nsets, ways)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 500; i++ {
			addr := int64(rng.Intn(4*nsets*ways)) * 64
			la := mem.LineAddr(addr)
			hit := c.Touch(addr) != NoSlot
			refHit := ref.touch(la)
			if hit != refHit {
				return false
			}
			if !hit {
				var d [mem.LineSize]byte
				c.Fill(addr, &d)
				ref.fill(la)
			}
		}
		// Residency sets must agree exactly.
		for s := 0; s < nsets; s++ {
			for _, la := range ref.sets[s] {
				if c.Probe(la) == NoSlot {
					return false
				}
			}
		}
		for _, slot := range c.ValidSlots(nil) {
			if !ref.touch(c.Tag(slot)) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFillOverDirtyVictimPanics(t *testing.T) {
	c := New(128, 2) // one set, two ways
	fill(c, 0, 1)
	fill(c, 64, 2)
	c.MarkDirty(c.Probe(0))
	c.MarkDirty(c.Probe(64))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on un-drained dirty victim")
		}
	}()
	fill(c, 128, 3)
}

func TestWordByteAccessors(t *testing.T) {
	c := New(4096, 2)
	slot := fill(c, 256, 0)
	c.WriteWord(slot, 256+8, -42)
	if c.ReadWord(slot, 256+8) != -42 {
		t.Error("word round trip")
	}
	c.SetByte(slot, 256+3, 0xAB)
	if c.ByteAt(slot, 256+3) != 0xAB {
		t.Error("byte round trip")
	}
}

func TestDirtyAndValidSlots(t *testing.T) {
	c := New(4096, 2)
	fill(c, 0, 1)
	fill(c, 64, 2)
	fill(c, 128, 3)
	c.MarkDirty(c.Probe(64))
	d := c.DirtySlots(nil)
	if len(d) != 1 || c.Tag(d[0]) != 64 {
		t.Errorf("dirty slots: %d", len(d))
	}
	if len(c.ValidSlots(nil)) != 3 {
		t.Error("valid slots")
	}
	c.ClearDirty(d[0])
	if len(c.DirtySlots(nil)) != 0 {
		t.Error("dirty slot survived ClearDirty")
	}
}

func TestDirtyRegionTracking(t *testing.T) {
	c := New(4096, 2)
	slot := fill(c, 0, 1)
	if c.DirtyRegion(slot) != 0 {
		t.Error("fresh fill has a dirty region")
	}
	c.MarkDirtyRegion(slot, 7)
	if !c.Dirty(slot) || c.DirtyRegion(slot) != 7 {
		t.Error("MarkDirtyRegion")
	}
	c.ClearDirty(slot)
	if c.Dirty(slot) || c.DirtyRegion(slot) != 7 {
		t.Error("ClearDirty must keep the region stamp")
	}
}

func TestInvalidatePreservesSlots(t *testing.T) {
	c := New(4096, 2)
	slot := fill(c, 64, 1)
	c.Invalidate()
	if c.Probe(64) != NoSlot {
		t.Error("line survived invalidate")
	}
	slot2 := fill(c, 64, 1)
	if slot2 != slot {
		t.Errorf("slot changed across invalidate: %d -> %d", slot, slot2)
	}
}

// TestInvalidateMatchesZeroing: property test — the generation-tagged
// Invalidate must be observationally identical to rebuilding the cache
// from scratch (the old zeroing semantics), modulo the hit/miss counters,
// which Invalidate explicitly preserves.
func TestInvalidateMatchesZeroing(t *testing.T) {
	if err := quick.Check(func(seed int64) bool {
		mk := func() *Cache { return New(512, 2) }
		run := func(c *Cache, rng *rand.Rand, steps int) {
			for i := 0; i < steps; i++ {
				addr := int64(rng.Intn(32)) * 64
				slot := c.Touch(addr)
				if slot == NoSlot {
					v := c.Victim(addr)
					if c.Valid(v) && c.Dirty(v) {
						c.ClearDirty(v)
					}
					var d [mem.LineSize]byte
					d[0] = byte(i)
					slot = c.Fill(addr, &d)
				}
				if rng.Intn(2) == 0 {
					c.MarkDirtyRegion(slot, uint64(i))
				}
			}
		}
		rng1 := rand.New(rand.NewSource(seed))
		rng2 := rand.New(rand.NewSource(seed))

		a := mk()
		run(a, rng1, 40)
		a.Invalidate()

		b := mk() // fresh cache = old "zero everything" semantics
		// Burn the same random numbers so the post-invalidate traffic
		// below sees identical streams.
		run(mk(), rng2, 40)

		// Post-invalidate, both must behave identically under the same
		// traffic: same hits/misses delta, same dirty sets, same data.
		h0, m0 := a.Hits, a.Misses
		rngA := rand.New(rand.NewSource(seed + 1))
		rngB := rand.New(rand.NewSource(seed + 1))
		run(a, rngA, 60)
		run(b, rngB, 60)
		if a.Hits-h0 != b.Hits || a.Misses-m0 != b.Misses {
			return false
		}
		da, db := a.DirtySlots(nil), b.DirtySlots(nil)
		if len(da) != len(db) {
			return false
		}
		for i := range da {
			if a.Tag(da[i]) != b.Tag(db[i]) ||
				a.DirtyRegion(da[i]) != b.DirtyRegion(db[i]) ||
				*a.Data(da[i]) != *b.Data(db[i]) {
				return false
			}
		}
		va, vb := a.ValidSlots(nil), b.ValidSlots(nil)
		if len(va) != len(vb) {
			return false
		}
		for i := range va {
			if a.Tag(va[i]) != b.Tag(vb[i]) || *a.Data(va[i]) != *b.Data(vb[i]) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSlotsUniqueAndStable(t *testing.T) {
	c := New(2048, 4)
	seen := map[int]bool{}
	for la := int64(0); la < 2048; la += 64 {
		slot := fill(c, la, 1)
		if seen[slot] {
			t.Fatalf("duplicate slot %d", slot)
		}
		seen[slot] = true
	}
	if len(seen) != c.NumLines() {
		t.Errorf("%d slots for %d lines", len(seen), c.NumLines())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, tc := range []struct{ size, ways int }{{0, 2}, {100, 0}, {64, 2}, {192, 1}} {
		func() {
			defer func() { recover() }()
			New(tc.size, tc.ways)
			t.Errorf("New(%d,%d) did not panic", tc.size, tc.ways)
		}()
	}
}

// TestCacheCoherentWithShadow: property test — a cache over a shadow map
// returns exactly the shadow's data for every probe, under random fills
// and writes.
func TestCacheCoherentWithShadow(t *testing.T) {
	c := New(1024, 2)
	shadow := map[int64]int64{} // word addr -> value
	rng := rand.New(rand.NewSource(1))
	backing := map[int64][mem.LineSize]byte{}

	readLine := func(la int64) [mem.LineSize]byte { return backing[la] }
	writeBack := func(slot int) {
		backing[c.Tag(slot)] = *c.Data(slot)
	}

	access := func(addr int64) int {
		slot := c.Touch(addr)
		if slot == NoSlot {
			v := c.Victim(addr)
			if c.Valid(v) && c.Dirty(v) {
				writeBack(v)
				c.ClearDirty(v)
			}
			data := readLine(mem.LineAddr(addr))
			slot = c.Fill(addr, &data)
		}
		return slot
	}

	for i := 0; i < 20000; i++ {
		addr := int64(rng.Intn(64)) * 8 // 64 words over 8 sets: heavy conflict
		slot := access(addr)
		if rng.Intn(4) < 3 {
			if want := shadow[addr]; c.ReadWord(slot, addr) != want {
				t.Fatalf("step %d: read %d != %d", i, c.ReadWord(slot, addr), want)
			}
		} else {
			v := rng.Int63()
			c.WriteWord(slot, addr, v)
			c.MarkDirty(slot)
			shadow[addr] = v
		}
	}
}

func TestLRUQuick(t *testing.T) {
	// Repeatedly touching one line must keep it resident regardless of
	// other traffic to the same set.
	if err := quick.Check(func(seed int64) bool {
		c := New(128, 2) // one set
		fill(c, 0, 1)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 100; i++ {
			c.Touch(0)
			other := int64(1+rng.Intn(10)) * 64
			if c.Touch(other) == NoSlot {
				v := c.Victim(other)
				if c.Valid(v) && c.Dirty(v) {
					c.ClearDirty(v)
				}
				var d [mem.LineSize]byte
				c.Fill(other, &d)
			}
		}
		return c.Probe(0) != NoSlot
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestMRUHintConsistency: the per-set MRU hint is an optimisation only —
// Probe through the hint and Probe through a full way scan must agree.
func TestMRUHintConsistency(t *testing.T) {
	c := New(512, 2)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		addr := int64(rng.Intn(16)) * 64
		slot := c.Probe(addr)
		// Reference: scan every way directly.
		want := NoSlot
		set := int(mem.LineAddr(addr)/mem.LineSize) % c.nsets
		tag := mem.LineAddr(addr)
		for w := 0; w < c.ways; w++ {
			s := set*c.ways + w
			if c.gen[s] == c.epoch && c.tags[s] == tag {
				want = s
				break
			}
		}
		if slot != want {
			t.Fatalf("step %d: Probe=%d, scan=%d", i, slot, want)
		}
		if slot == NoSlot {
			var d [mem.LineSize]byte
			c.Fill(addr, &d)
		}
		if rng.Intn(10) == 0 {
			c.Invalidate()
		}
	}
}
