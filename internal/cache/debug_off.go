//go:build !debugcheck

package cache

// DebugChecks gates the O(cache) agreement assertions that the fast paths
// made redundant in production: dirty-bitmap/validity coherence here, and
// the Section 4.6 WBI-table-vs-dirty-scan assertion in the SweepCache
// scheme. Build with -tags debugcheck to execute them.
const DebugChecks = false
