//go:build debugcheck

package cache

// DebugChecks enables the O(cache) agreement assertions (see debug_off.go).
const DebugChecks = true
