// Package cache models the volatile set-associative SRAM L1 data cache the
// schemes build on. It is mechanism, not policy: schemes decide write-back
// versus write-through, where victims go (NVM, persist buffer, NVSRAM
// backup), and what happens at power failure. The cache stores real line
// data so the simulation stays functional.
//
// Dirty lines carry the region sequence number that dirtied them, which the
// SweepCache write-after-write rule (Section 4.3) and the write-back-
// instructive table (Section 4.6) consume.
package cache

import (
	"fmt"

	"repro/internal/mem"
)

// Line is one cache line.
type Line struct {
	Tag   int64 // line-aligned address
	Valid bool
	Dirty bool
	// DirtyRegion is the region sequence number of the store that made
	// the line dirty (meaningful while Dirty).
	DirtyRegion uint64
	// Slot is the line's fixed position in the cache (set*ways + way),
	// which indexes the write-back-instructive tables.
	Slot int
	Data [mem.LineSize]byte

	lru uint64
}

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	sets  [][]Line
	ways  int
	nsets int
	tick  uint64

	// Counters.
	Hits           uint64
	Misses         uint64
	DirtyEvictions uint64
}

// New builds a cache of sizeBytes with the given associativity.
func New(sizeBytes, ways int) *Cache {
	if ways <= 0 || sizeBytes <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := sizeBytes / mem.LineSize
	if lines < ways {
		panic(fmt.Sprintf("cache: %dB too small for %d ways", sizeBytes, ways))
	}
	nsets := lines / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	c := &Cache{ways: ways, nsets: nsets}
	c.sets = make([][]Line, nsets)
	backing := make([]Line, nsets*ways)
	for i := range backing {
		backing[i].Slot = i
	}
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return c
}

// NumLines returns the total line count (the write-back-instructive table
// needs one bit per line — Section 4.6).
func (c *Cache) NumLines() int { return c.nsets * c.ways }

func (c *Cache) set(addr int64) []Line {
	return c.sets[(addr/mem.LineSize)&int64(c.nsets-1)]
}

// Probe returns the line holding addr, or nil. It does not update LRU or
// counters; use Touch for demand accesses.
func (c *Cache) Probe(addr int64) *Line {
	tag := mem.LineAddr(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].Valid && set[i].Tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Touch performs a demand lookup: on hit it updates LRU and the hit
// counter and returns the line; on miss it counts a miss and returns nil.
func (c *Cache) Touch(addr int64) *Line {
	if ln := c.Probe(addr); ln != nil {
		c.tick++
		ln.lru = c.tick
		c.Hits++
		return ln
	}
	c.Misses++
	return nil
}

// Victim returns the line that a fill of addr would replace: an invalid
// way if present, otherwise the LRU way. The caller must handle the
// victim's dirty data before calling Fill.
func (c *Cache) Victim(addr int64) *Line {
	set := c.set(addr)
	v := &set[0]
	for i := range set {
		if !set[i].Valid {
			return &set[i]
		}
		if set[i].lru < v.lru {
			v = &set[i]
		}
	}
	return v
}

// Fill installs a clean line for addr into the victim way.
func (c *Cache) Fill(addr int64, data *[mem.LineSize]byte) *Line {
	v := c.Victim(addr)
	if v.Valid && v.Dirty {
		// The caller was required to drain the victim first.
		panic("cache: Fill over un-drained dirty victim")
	}
	c.tick++
	*v = Line{Tag: mem.LineAddr(addr), Valid: true, Data: *data, lru: c.tick, Slot: v.Slot}
	return v
}

// DirtyLines appends pointers to all dirty lines to dst and returns it.
func (c *Cache) DirtyLines(dst []*Line) []*Line {
	for si := range c.sets {
		set := c.sets[si]
		for i := range set {
			if set[i].Valid && set[i].Dirty {
				dst = append(dst, &set[i])
			}
		}
	}
	return dst
}

// ValidLines appends pointers to all valid lines to dst and returns it.
func (c *Cache) ValidLines(dst []*Line) []*Line {
	for si := range c.sets {
		set := c.sets[si]
		for i := range set {
			if set[i].Valid {
				dst = append(dst, &set[i])
			}
		}
	}
	return dst
}

// Invalidate clears the whole cache, modelling volatile loss at power
// failure. Counters are preserved.
func (c *Cache) Invalidate() {
	for si := range c.sets {
		set := c.sets[si]
		for i := range set {
			set[i] = Line{Slot: set[i].Slot}
		}
	}
}

// ReadWord reads a little-endian word from a resident line.
func (ln *Line) ReadWord(addr int64) int64 {
	off := addr - ln.Tag
	var v uint64
	for i := int64(0); i < 8; i++ {
		v |= uint64(ln.Data[off+i]) << (8 * i)
	}
	return int64(v)
}

// WriteWord writes a little-endian word into a resident line; the caller
// sets Dirty/DirtyRegion per its policy.
func (ln *Line) WriteWord(addr, val int64) {
	off := addr - ln.Tag
	for i := int64(0); i < 8; i++ {
		ln.Data[off+i] = byte(uint64(val) >> (8 * i))
	}
}

// ReadByte reads one byte from a resident line.
func (ln *Line) ByteAt(addr int64) byte { return ln.Data[addr-ln.Tag] }

// WriteByte writes one byte into a resident line.
func (ln *Line) SetByte(addr int64, v byte) { ln.Data[addr-ln.Tag] = v }

// MissRate returns misses / (hits+misses), or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	tot := c.Hits + c.Misses
	if tot == 0 {
		return 0
	}
	return float64(c.Misses) / float64(tot)
}
