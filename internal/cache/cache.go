// Package cache models the volatile set-associative SRAM L1 data cache the
// schemes build on. It is mechanism, not policy: schemes decide write-back
// versus write-through, where victims go (NVM, persist buffer, NVSRAM
// backup), and what happens at power failure. The cache stores real line
// data so the simulation stays functional.
//
// Layout is structure-of-arrays, keyed by slot (set*ways + way, the fixed
// position that also indexes the write-back-instructive tables of
// Section 4.6): Probe/Touch/Victim walk only the compact tag/generation
// arrays — never the 64 B data blocks — and a per-set MRU-way hint resolves
// the common re-reference without scanning at all. Dirtiness lives in a
// bitmap kept incrementally, so DirtySlots enumerates dirty lines in O(set
// bits) instead of a full-cache walk, and Invalidate bumps a generation
// counter instead of zeroing every line (lazy reclamation: a stale line is
// simply not valid, and the next Fill of its slot overwrites it).
//
// Dirty lines carry the region sequence number that dirtied them, which the
// SweepCache write-after-write rule (Section 4.3) and the write-back-
// instructive table (Section 4.6) consume.
package cache

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/mem"
)

// NoSlot is the miss result of Probe and Touch.
const NoSlot = -1

// noTag is the MRU-hint sentinel: line addresses are non-negative multiples
// of the line size, so -1 never matches a real tag.
const noTag = int64(-1)

// Cache is a set-associative cache with true-LRU replacement.
type Cache struct {
	ways  int
	nsets int
	tick  uint64
	// epoch tags the current power-on generation: a slot is valid iff
	// gen[slot] == epoch, so Invalidate is one increment instead of a
	// full-array wipe.
	epoch uint64

	tags        []int64  // line-aligned address per slot
	gen         []uint64 // power-on generation per slot
	lru         []uint64 // last-touch tick per slot
	dirtyRegion []uint64 // region that dirtied the slot (meaningful while dirty)
	dirtyBits   []uint64 // one bit per slot, kept incrementally
	data        [][mem.LineSize]byte
	// Per-set MRU hint, keyed by tag so the common re-reference is a single
	// compare: mruTag[set] is the line address resident in way mruWay[set]
	// (or the never-matching sentinel noTag). Invalidate resets the hint
	// arrays eagerly — they are per-set, not per-slot, so the wipe is tiny.
	mruWay []int32
	mruTag []int64

	// Counters.
	Hits           uint64
	Misses         uint64
	DirtyEvictions uint64
}

// New builds a cache of sizeBytes with the given associativity.
func New(sizeBytes, ways int) *Cache {
	if ways <= 0 || sizeBytes <= 0 {
		panic("cache: non-positive geometry")
	}
	lines := sizeBytes / mem.LineSize
	if lines < ways {
		panic(fmt.Sprintf("cache: %dB too small for %d ways", sizeBytes, ways))
	}
	nsets := lines / ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache: set count %d not a power of two", nsets))
	}
	n := nsets * ways
	c := &Cache{
		ways:        ways,
		nsets:       nsets,
		epoch:       1,
		tags:        make([]int64, n),
		gen:         make([]uint64, n),
		lru:         make([]uint64, n),
		dirtyRegion: make([]uint64, n),
		dirtyBits:   make([]uint64, (n+63)/64),
		data:        make([][mem.LineSize]byte, n),
		mruWay:      make([]int32, nsets),
		mruTag:      make([]int64, nsets),
	}
	for i := range c.mruTag {
		c.mruTag[i] = noTag
	}
	return c
}

// NumLines returns the total line count (the write-back-instructive table
// needs one bit per line — Section 4.6).
func (c *Cache) NumLines() int { return c.nsets * c.ways }

func (c *Cache) setIndex(addr int64) int {
	return int((addr / mem.LineSize) & int64(c.nsets-1))
}

// Probe returns the slot holding addr, or NoSlot. It does not update LRU
// or the hit/miss counters; use Touch for demand accesses. The per-set MRU
// hint short-circuits the way scan on repeated references to one line.
func (c *Cache) Probe(addr int64) int {
	tag := mem.LineAddr(addr)
	set := int(uint64(tag) / mem.LineSize & uint64(c.nsets-1))
	if c.mruTag[set] == tag {
		return set*c.ways + int(c.mruWay[set])
	}
	return c.probeScan(tag, set)
}

// probeScan is Probe's miss-or-cold-set half: a full way scan that
// refreshes the MRU hint on hit. Split out so the hint fast path inlines
// into Probe's callers.
func (c *Cache) probeScan(tag int64, set int) int {
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		s := base + w
		if c.gen[s] == c.epoch && c.tags[s] == tag {
			c.mruWay[set] = int32(w)
			c.mruTag[set] = tag
			return s
		}
	}
	return NoSlot
}

// Touch performs a demand lookup in a single tag scan (shared with Probe):
// on hit it updates LRU and the hit counter and returns the slot; on miss
// it counts a miss and returns NoSlot.
func (c *Cache) Touch(addr int64) int {
	tag := mem.LineAddr(addr)
	set := int(uint64(tag) / mem.LineSize & uint64(c.nsets-1))
	s := NoSlot
	if c.mruTag[set] == tag {
		s = set*c.ways + int(c.mruWay[set])
	} else {
		s = c.probeScan(tag, set)
	}
	if s != NoSlot {
		c.tick++
		c.lru[s] = c.tick
		c.Hits++
		return s
	}
	c.Misses++
	return NoSlot
}

// Victim returns the slot that a fill of addr would replace: an invalid
// way if present (lowest way first), otherwise the LRU way. The caller
// must handle the victim's dirty data before calling Fill.
func (c *Cache) Victim(addr int64) int {
	base := c.setIndex(addr) * c.ways
	v := base
	for w := 0; w < c.ways; w++ {
		s := base + w
		if c.gen[s] != c.epoch {
			return s
		}
		if c.lru[s] < c.lru[v] {
			v = s
		}
	}
	return v
}

// Fill installs a clean line for addr into the victim way and returns its
// slot.
func (c *Cache) Fill(addr int64, data *[mem.LineSize]byte) int {
	v := c.FillUninit(addr)
	c.data[v] = *data
	return v
}

// FillUninit allocates addr's line exactly like Fill but leaves the
// 64-byte payload untouched, so the caller can write it in place (an NVM
// read or a buffer-entry copy lands directly in the slot, skipping the
// intermediate stack buffer). The caller must fully overwrite
// Data(slot) before the line is read.
func (c *Cache) FillUninit(addr int64) int {
	v := c.Victim(addr)
	if c.gen[v] == c.epoch && c.dirty(v) {
		// The caller was required to drain the victim first.
		panic("cache: Fill over un-drained dirty victim")
	}
	c.tick++
	c.tags[v] = mem.LineAddr(addr)
	c.gen[v] = c.epoch
	c.lru[v] = c.tick
	c.dirtyRegion[v] = 0
	set := v / c.ways
	c.mruWay[set] = int32(v % c.ways)
	c.mruTag[set] = c.tags[v]
	return v
}

// Tag returns the line-aligned address resident in slot.
func (c *Cache) Tag(slot int) int64 { return c.tags[slot] }

// Valid reports whether slot holds a line of the current power-on
// generation.
func (c *Cache) Valid(slot int) bool { return c.gen[slot] == c.epoch }

func (c *Cache) dirty(slot int) bool {
	return c.dirtyBits[slot>>6]&(1<<(uint(slot)&63)) != 0
}

// Dirty reports whether slot holds unwritten-back data.
func (c *Cache) Dirty(slot int) bool { return c.dirty(slot) }

// DirtyRegion returns the region sequence number of the store that made
// slot dirty (meaningful while Dirty).
func (c *Cache) DirtyRegion(slot int) uint64 { return c.dirtyRegion[slot] }

// MarkDirty sets slot's dirty bit, keeping the incremental dirty bitmap in
// lockstep with the caller's bookkeeping (e.g. the WBI table).
func (c *Cache) MarkDirty(slot int) {
	c.dirtyBits[slot>>6] |= 1 << (uint(slot) & 63)
}

// MarkDirtyRegion marks slot dirty and records the dirtying region.
func (c *Cache) MarkDirtyRegion(slot int, region uint64) {
	c.MarkDirty(slot)
	c.dirtyRegion[slot] = region
}

// ClearDirty clears slot's dirty bit (the line was written back or
// quarantined).
func (c *Cache) ClearDirty(slot int) {
	c.dirtyBits[slot>>6] &^= 1 << (uint(slot) & 63)
}

// Data returns the 64 B block resident in slot.
func (c *Cache) Data(slot int) *[mem.LineSize]byte { return &c.data[slot] }

// DirtySlots appends all dirty slots to dst in ascending slot order — the
// same set-major order the old full-cache walk produced — and returns it.
// It enumerates only the set bits of the dirty bitmap.
func (c *Cache) DirtySlots(dst []int) []int {
	for wi, word := range c.dirtyBits {
		for word != 0 {
			slot := wi*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if DebugChecks && c.gen[slot] != c.epoch {
				panic(fmt.Sprintf("cache: dirty bit on invalid slot %d", slot))
			}
			dst = append(dst, slot)
		}
	}
	return dst
}

// ValidSlots appends all valid slots to dst in ascending slot order and
// returns it.
func (c *Cache) ValidSlots(dst []int) []int {
	for s := range c.gen {
		if c.gen[s] == c.epoch {
			dst = append(dst, s)
		}
	}
	return dst
}

// Invalidate clears the whole cache, modelling volatile loss at power
// failure: the generation counter advances, orphaning every resident line,
// and the dirty bitmap is wiped. Counters are preserved. Stale tags, data
// and LRU stamps are reclaimed lazily by the next Fill of each slot.
func (c *Cache) Invalidate() {
	c.epoch++
	for i := range c.dirtyBits {
		c.dirtyBits[i] = 0
	}
	for i := range c.mruTag {
		c.mruTag[i] = noTag
	}
}

// ReadWord reads a little-endian word from the line resident in slot.
func (c *Cache) ReadWord(slot int, addr int64) int64 {
	off := addr - c.tags[slot]
	return int64(binary.LittleEndian.Uint64(c.data[slot][off : off+8]))
}

// WriteWord writes a little-endian word into the line resident in slot;
// the caller marks dirtiness per its policy.
func (c *Cache) WriteWord(slot int, addr, val int64) {
	off := addr - c.tags[slot]
	binary.LittleEndian.PutUint64(c.data[slot][off:off+8], uint64(val))
}

// ByteAt reads one byte from the line resident in slot.
func (c *Cache) ByteAt(slot int, addr int64) byte {
	return c.data[slot][addr-c.tags[slot]]
}

// SetByte writes one byte into the line resident in slot; the caller marks
// dirtiness per its policy.
func (c *Cache) SetByte(slot int, addr int64, v byte) {
	c.data[slot][addr-c.tags[slot]] = v
}

// MissRate returns misses / (hits+misses), or 0 with no accesses.
func (c *Cache) MissRate() float64 {
	tot := c.Hits + c.Misses
	if tot == 0 {
		return 0
	}
	return float64(c.Misses) / float64(tot)
}
