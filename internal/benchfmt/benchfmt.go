// Package benchfmt is the shared model of the repo's archived benchmark
// documents: `go test -bench` text parsed into a stable JSON shape
// (cmd/benchjson writes it, BENCH_engine.json stores it) plus the
// regression comparison cmd/benchcheck gates CI with.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Doc is one archived benchmark run: the non-benchmark header lines
// (goos/goarch/pkg/cpu, plus whatever the writer injects — git commit,
// engine version, GOMAXPROCS) in Context, one Result per benchmark.
type Doc struct {
	Context map[string]string `json:"context"`
	Results []Result          `json:"results"`
}

// ParseLine parses one `BenchmarkX  N  v unit  v unit...` line.
func ParseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: n, Metrics: map[string]float64{}}
	// Remaining fields come in (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

// Parse converts `go test -bench` text output into a Doc. Benchmark
// lines become Results; "key: value" header lines (goos, goarch, pkg,
// cpu) land in Context; everything else (PASS/ok trailers) is dropped.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Context: map[string]string{}, Results: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if res, ok := ParseLine(line); ok {
			doc.Results = append(doc.Results, res)
			continue
		}
		if k, v, ok := strings.Cut(line, ":"); ok && !strings.Contains(k, " ") && v != "" {
			doc.Context[strings.TrimSpace(k)] = strings.TrimSpace(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchfmt: parse: %w", err)
	}
	return doc, nil
}

// ReadFile loads a JSON benchmark document.
func ReadFile(path string) (*Doc, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchfmt: %w", err)
	}
	var doc Doc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("benchfmt: decode %s: %w", path, err)
	}
	return &doc, nil
}

// Encode renders the document as indented JSON with a trailing newline.
func (d *Doc) Encode() ([]byte, error) {
	enc, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("benchfmt: encode: %w", err)
	}
	return append(enc, '\n'), nil
}

// Result returns the named benchmark's entry, or nil.
func (d *Doc) Result(name string) *Result {
	for i := range d.Results {
		if d.Results[i].Name == name {
			return &d.Results[i]
		}
	}
	return nil
}

// Delta is one benchmark's baseline-vs-current comparison on a metric.
type Delta struct {
	Name      string
	Base      float64
	Current   float64
	Ratio     float64 // Current / Base
	Regressed bool
}

// Change renders the relative change as a signed percentage.
func (d Delta) Change() string {
	return fmt.Sprintf("%+.1f%%", (d.Ratio-1)*100)
}

// Compare diffs every baseline benchmark carrying the metric against the
// current run. With higherBetter (throughput metrics like sim-instrs/s)
// a Delta regresses when current falls more than tolerance below
// baseline; otherwise (latency metrics like ns/op) when it rises more
// than tolerance above. Benchmarks absent from the current run, or a
// metric absent from every baseline entry, are reported as errors — a
// gate that silently compares nothing is worse than no gate.
func Compare(base, cur *Doc, metric string, tolerance float64, higherBetter bool) ([]Delta, error) {
	var deltas []Delta
	var missing []string
	for _, b := range base.Results {
		bv, ok := b.Metrics[metric]
		if !ok {
			continue
		}
		c := cur.Result(b.Name)
		if c == nil {
			missing = append(missing, b.Name)
			continue
		}
		cv, ok := c.Metrics[metric]
		if !ok {
			missing = append(missing, b.Name)
			continue
		}
		if bv == 0 {
			return nil, fmt.Errorf("benchfmt: baseline %s has zero %s", b.Name, metric)
		}
		d := Delta{Name: b.Name, Base: bv, Current: cv, Ratio: cv / bv}
		if higherBetter {
			d.Regressed = d.Ratio < 1-tolerance
		} else {
			d.Regressed = d.Ratio > 1+tolerance
		}
		deltas = append(deltas, d)
	}
	if len(deltas) == 0 {
		return nil, fmt.Errorf("benchfmt: no baseline benchmark carries metric %q", metric)
	}
	if missing != nil {
		return deltas, fmt.Errorf("benchfmt: current run is missing %s for: %s",
			metric, strings.Join(missing, ", "))
	}
	return deltas, nil
}
