package benchfmt

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: AMD EPYC 7B13
BenchmarkEngineStep-8   	 1000000	      1052 ns/op	        16.50 instrs/step	 950000 sim-instrs/s
BenchmarkRunRFHome-8    	       3	 712345678 ns/op	1234567 sim-instrs/s
PASS
ok  	repro	4.123s
`

func TestParse(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Context["goos"] != "linux" || doc.Context["cpu"] != "AMD EPYC 7B13" {
		t.Fatalf("context: %v", doc.Context)
	}
	if len(doc.Results) != 2 {
		t.Fatalf("results: %d, want 2", len(doc.Results))
	}
	r := doc.Result("BenchmarkEngineStep-8")
	if r == nil {
		t.Fatal("EngineStep missing")
	}
	if r.Iterations != 1000000 || r.Metrics["ns/op"] != 1052 ||
		r.Metrics["instrs/step"] != 16.5 || r.Metrics["sim-instrs/s"] != 950000 {
		t.Fatalf("EngineStep: %+v", r)
	}
	// PASS / ok trailers must not leak into context or results.
	if _, ok := doc.Context["ok"]; ok {
		t.Fatalf("trailer leaked into context: %v", doc.Context)
	}
	if doc.Result("PASS") != nil {
		t.Fatal("trailer parsed as result")
	}
}

func TestParseLineRejects(t *testing.T) {
	for _, line := range []string{
		"",
		"PASS",
		"ok  	repro	4.123s",
		"Benchmark",                     // no fields
		"BenchmarkX notanint 5 ns/op",   // bad iteration count
		"BenchmarkX 10 notafloat ns/op", // bad value
		"goos: linux",
	} {
		if _, ok := ParseLine(line); ok {
			t.Errorf("ParseLine(%q) accepted", line)
		}
	}
}

func mkdoc(vals map[string]float64) *Doc {
	d := &Doc{Context: map[string]string{}}
	for name, v := range vals {
		d.Results = append(d.Results, Result{
			Name: name, Iterations: 1,
			Metrics: map[string]float64{"sim-instrs/s": v},
		})
	}
	return d
}

func TestCompareHigherBetter(t *testing.T) {
	base := mkdoc(map[string]float64{"A": 100, "B": 100, "C": 100})
	cur := mkdoc(map[string]float64{"A": 90, "B": 84, "C": 120})
	deltas, err := Compare(base, cur, "sim-instrs/s", 0.15, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(deltas) != 3 {
		t.Fatalf("deltas: %d", len(deltas))
	}
	got := map[string]bool{}
	for _, d := range deltas {
		got[d.Name] = d.Regressed
	}
	// -10% within tolerance, -16% regressed, +20% (improvement) fine.
	if got["A"] || !got["B"] || got["C"] {
		t.Fatalf("regression flags: %v", got)
	}
}

func TestCompareLowerBetter(t *testing.T) {
	base := mkdoc(map[string]float64{"A": 100, "B": 100})
	cur := mkdoc(map[string]float64{"A": 120, "B": 80})
	deltas, err := Compare(base, cur, "sim-instrs/s", 0.15, false)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]bool{}
	for _, d := range deltas {
		got[d.Name] = d.Regressed
	}
	// For a lower-better metric +20% regresses, -20% improves.
	if !got["A"] || got["B"] {
		t.Fatalf("regression flags: %v", got)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	base := mkdoc(map[string]float64{"A": 100, "B": 100})
	cur := mkdoc(map[string]float64{"A": 100})
	deltas, err := Compare(base, cur, "sim-instrs/s", 0.15, true)
	if err == nil || !strings.Contains(err.Error(), "B") {
		t.Fatalf("err = %v, want missing-B error", err)
	}
	if len(deltas) != 1 || deltas[0].Name != "A" {
		t.Fatalf("partial deltas: %+v", deltas)
	}
}

func TestCompareNoMetricCarrier(t *testing.T) {
	base := mkdoc(map[string]float64{"A": 100})
	cur := mkdoc(map[string]float64{"A": 100})
	if _, err := Compare(base, cur, "widgets/s", 0.15, true); err == nil {
		t.Fatal("want no-carrier error")
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := mkdoc(map[string]float64{"A": 0})
	cur := mkdoc(map[string]float64{"A": 100})
	if _, err := Compare(base, cur, "sim-instrs/s", 0.15, true); err == nil {
		t.Fatal("want zero-baseline error")
	}
}

func TestDeltaChange(t *testing.T) {
	if got := (Delta{Ratio: 0.825}).Change(); got != "-17.5%" {
		t.Fatalf("Change() = %q", got)
	}
	if got := (Delta{Ratio: 1.003}).Change(); got != "+0.3%" {
		t.Fatalf("Change() = %q", got)
	}
}

func TestEncodeRoundTrip(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	doc.Context["git-commit"] = "deadbeef"
	enc, err := doc.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if enc[len(enc)-1] != '\n' {
		t.Fatal("missing trailing newline")
	}
	if !strings.Contains(string(enc), `"git-commit": "deadbeef"`) {
		t.Fatalf("context lost:\n%s", enc)
	}
}
