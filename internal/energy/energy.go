// Package energy models the harvested-energy storage of an intermittent
// system: a small capacitor whose stored energy is E = ½CV², charged by a
// power trace and drained by execution, plus a ledger that attributes every
// consumed joule to a category for the Figure 13 breakdown.
package energy

import "math"

// Capacitor is the energy store. Stored energy is the state variable —
// Add and Draw are then plain additions with a clamp/floor, and the
// square root is paid only when a caller actually asks for the voltage.
// This matters because the simulation engine settles the capacitor on
// every accounting interval; see docs/PERFORMANCE.md.
type Capacitor struct {
	C    float64 // farads
	Vmax float64 // clamp voltage
	e    float64 // stored energy, joules
	emax float64 // energy at Vmax
}

// NewCapacitor returns a capacitor charged to vInit.
func NewCapacitor(c, vmax, vInit float64) *Capacitor {
	cap := &Capacitor{C: c, Vmax: vmax, emax: 0.5 * c * vmax * vmax}
	cap.SetVoltage(vInit)
	return cap
}

// V returns the current voltage.
func (c *Capacitor) V() float64 { return math.Sqrt(2 * c.e / c.C) }

// Energy returns the stored energy in joules.
func (c *Capacitor) Energy() float64 { return c.e }

// SetVoltage forces the voltage (used for initialization).
func (c *Capacitor) SetVoltage(v float64) {
	v = math.Min(v, c.Vmax)
	c.e = 0.5 * c.C * v * v
}

// Add charges the capacitor by j joules, clamping at Vmax. Returns the
// energy actually absorbed.
func (c *Capacitor) Add(j float64) float64 {
	if j <= 0 {
		return 0
	}
	e := c.e + j
	absorbed := j
	if e > c.emax {
		absorbed -= e - c.emax
		e = c.emax
	}
	c.e = e
	return absorbed
}

// Draw removes j joules, flooring at zero volts.
func (c *Capacitor) Draw(j float64) {
	e := c.e - j
	if e < 0 {
		e = 0
	}
	c.e = e
}

// EnergyAt returns the stored energy the capacitor would hold at voltage v.
func (c *Capacitor) EnergyAt(v float64) float64 { return 0.5 * c.C * v * v }

// Ledger attributes consumed energy to categories (joules).
type Ledger struct {
	Compute float64 // core execution incl. SRAM accesses
	NVM     float64 // demand NVM traffic
	Persist float64 // persist-buffer flush/drain traffic and clwb drains
	Backup  float64 // JIT backup events
	Restore float64 // restore events after reboot
	Sleep   float64 // recharge-wait monitor/leakage draw
}

// Total returns all consumed energy.
func (l *Ledger) Total() float64 {
	return l.Compute + l.NVM + l.Persist + l.Backup + l.Restore + l.Sleep
}
