package energy

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCapacitorBasics(t *testing.T) {
	c := NewCapacitor(470e-9, 3.5, 3.5)
	wantE := 0.5 * 470e-9 * 3.5 * 3.5
	if math.Abs(c.Energy()-wantE) > 1e-12 {
		t.Errorf("energy = %g", c.Energy())
	}
	c.Draw(1e-6)
	if c.V() >= 3.5 {
		t.Error("draw did not lower voltage")
	}
	c.Add(1e-6)
	if math.Abs(c.V()-3.5) > 1e-9 {
		t.Errorf("recharge: %f", c.V())
	}
}

func TestCapacitorClampsAtVmax(t *testing.T) {
	c := NewCapacitor(470e-9, 3.5, 3.5)
	absorbed := c.Add(1)
	if c.V() > 3.5 {
		t.Error("exceeded Vmax")
	}
	if absorbed > 1e-12 {
		t.Errorf("absorbed %g at full charge", absorbed)
	}
}

func TestCapacitorFloorsAtZero(t *testing.T) {
	c := NewCapacitor(470e-9, 3.5, 3.0)
	c.Draw(1) // far more than stored
	if c.V() != 0 {
		t.Errorf("voltage %f after overdraw", c.V())
	}
}

func TestEnergyAt(t *testing.T) {
	c := NewCapacitor(470e-9, 3.5, 2.8)
	usable := c.EnergyAt(3.5) - c.EnergyAt(2.8)
	want := 0.5 * 470e-9 * (3.5*3.5 - 2.8*2.8)
	if math.Abs(usable-want) > 1e-12 {
		t.Errorf("usable %g want %g", usable, want)
	}
}

// TestAddDrawInverse: add then draw of the same amount restores the
// voltage (when not clamped).
func TestAddDrawInverse(t *testing.T) {
	if err := quick.Check(func(mj uint16) bool {
		c := NewCapacitor(470e-9, 3.5, 2.0)
		j := float64(mj) * 1e-12
		v0 := c.V()
		c.Add(j)
		c.Draw(j)
		return math.Abs(c.V()-v0) < 1e-9
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestLedgerTotal(t *testing.T) {
	l := Ledger{Compute: 1, NVM: 2, Persist: 3, Backup: 4, Restore: 5, Sleep: 6}
	if l.Total() != 21 {
		t.Errorf("total = %f", l.Total())
	}
}
