package trace

import (
	"testing"

	"repro/internal/energy"
)

func TestDeterminism(t *testing.T) {
	for _, pr := range Profiles() {
		a := New(pr, 42)
		b := New(pr, 42)
		for i := 0; i < 200; i++ {
			da, pa := a.Next()
			db, pb := b.Next()
			if da != db || pa != pb {
				t.Fatalf("%v: segment %d diverged", pr, i)
			}
		}
	}
}

func TestResetRewinds(t *testing.T) {
	s := New(RFOffice, 7)
	d1, p1 := s.Next()
	s.Next()
	s.Reset()
	d2, p2 := s.Next()
	if d1 != d2 || p1 != p2 {
		t.Fatal("reset did not rewind")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(RFHome, 1), New(RFHome, 2)
	same := true
	for i := 0; i < 20; i++ {
		da, pa := a.Next()
		db, pb := b.Next()
		if da != db || pa != pb {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestProfileCharacters(t *testing.T) {
	// Mean power and variability must differ by design: RF is bursty
	// (high ratio of max to mean), thermal nearly constant.
	stats := func(pr Profile) (mean, max float64) {
		s := New(pr, 3)
		var totE, totT float64
		for i := 0; i < 2000; i++ {
			d, p := s.Next()
			totE += p * float64(d)
			totT += float64(d)
			if p > max {
				max = p
			}
		}
		return totE / totT, max
	}
	rfMean, rfMax := stats(RFOffice)
	thMean, thMax := stats(Thermal)
	if rfMax/rfMean < 2 {
		t.Errorf("RF not bursty: max/mean = %f", rfMax/rfMean)
	}
	if thMax/thMean > 1.2 {
		t.Errorf("thermal too bursty: max/mean = %f", thMax/thMean)
	}
	if rfMean <= 0 || thMean <= 0 {
		t.Error("non-positive mean power")
	}
}

func TestCursorHarvestMatchesSegments(t *testing.T) {
	src := New(RFHome, 5)
	d1, p1 := src.Next()
	d2, p2 := src.Next()
	want := p1*float64(d1)*1e-9 + p2*float64(d2)*1e-9

	cur := NewCursor(New(RFHome, 5))
	got := cur.Harvest(d1 + d2)
	if diff := got - want; diff > 1e-15 || diff < -1e-15 {
		t.Errorf("harvest %g want %g", got, want)
	}
}

func TestCursorHarvestSplitsSegments(t *testing.T) {
	cur := NewCursor(&Constant{P: 1e-3})
	a := cur.Harvest(500)
	b := cur.Harvest(500)
	whole := NewCursor(&Constant{P: 1e-3}).Harvest(1000)
	if diff := (a + b) - whole; diff > 1e-18 || diff < -1e-18 {
		t.Errorf("split harvest %g whole %g", a+b, whole)
	}
}

func TestChargeUntilReachesTarget(t *testing.T) {
	cap := energy.NewCapacitor(470e-9, 3.5, 2.8)
	cur := NewCursor(&Constant{P: 1e-3})
	var led energy.Ledger
	elapsed, ok := cur.ChargeUntil(cap, 3.3, 2e-6, 1e12, &led)
	if !ok {
		t.Fatal("charge failed")
	}
	if cap.V() < 3.3 {
		t.Errorf("V = %f", cap.V())
	}
	// Time should be roughly energy/power.
	need := 0.5 * 470e-9 * (3.3*3.3 - 2.8*2.8)
	wantNs := need / (1e-3 - 2e-6) * 1e9
	if ratio := float64(elapsed) / wantNs; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("elapsed %d want ~%f", elapsed, wantNs)
	}
	if led.Sleep <= 0 {
		t.Error("sleep energy not recorded")
	}
}

func TestChargeUntilStagnation(t *testing.T) {
	capac := energy.NewCapacitor(470e-9, 3.5, 2.8)
	// Source weaker than the sleep draw can never charge.
	cur := NewCursor(&Constant{P: 1e-9})
	var led energy.Ledger
	_, ok := cur.ChargeUntil(capac, 3.3, 2e-6, 1e9, &led)
	if ok {
		t.Fatal("charged from a source weaker than sleep draw")
	}
}

func TestProfileNames(t *testing.T) {
	if RFHome.String() != "RFHome" || Thermal.String() != "thermal" {
		t.Error("profile names")
	}
	if len(Profiles()) != 4 {
		t.Error("profile count")
	}
}
