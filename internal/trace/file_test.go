package trace

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseCSV(t *testing.T) {
	src, err := ParseCSV(strings.NewReader(
		"time_us,power_uW\n0,1000\n500,8\n1500,600\n"))
	if err != nil {
		t.Fatal(err)
	}
	if src.Segments() != 3 {
		t.Fatalf("segments = %d", src.Segments())
	}
	d, p := src.Next()
	if d != 500_000 || p != 1e-3 {
		t.Errorf("seg0 = %d ns %g W", d, p)
	}
	d, p = src.Next()
	if d != 1_000_000 || p != 8e-6 {
		t.Errorf("seg1 = %d ns %g W", d, p)
	}
	// Last segment uses the default tail, then the trace loops.
	d, _ = src.Next()
	if d != 1_000_000 {
		t.Errorf("tail = %d ns", d)
	}
	d, p = src.Next()
	if d != 500_000 || p != 1e-3 {
		t.Error("trace did not loop")
	}
	src.Reset()
	d, _ = src.Next()
	if d != 500_000 {
		t.Error("reset")
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",           // empty
		"0,1\n0,2\n", // non-increasing time
		"a,b\n",      // garbage
		"0,-5\n",     // negative power
		"0\n",        // wrong field count
	}
	for _, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("no error for %q", c)
		}
	}
}

// TestCSVRoundTrip: a generated profile dumped to CSV and re-parsed must
// deliver the same energy.
func TestCSVRoundTrip(t *testing.T) {
	gen := New(RFHome, 3)
	var sb strings.Builder
	sb.WriteString("time_us,power_uW\n")
	var tNs int64
	type seg struct {
		d int64
		p float64
	}
	var segs []seg
	for i := 0; i < 50; i++ {
		d, p := gen.Next()
		sb.WriteString(
			formatRow(tNs, p))
		segs = append(segs, seg{d, p})
		tNs += d
	}
	src, err := ParseCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range segs[:49] { // last segment's duration is synthetic
		d, p := src.Next()
		if d != want.d {
			t.Fatalf("seg %d duration %d want %d", i, d, want.d)
		}
		if diff := p - want.p; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("seg %d power %g want %g", i, p, want.p)
		}
	}
}

func formatRow(tNs int64, watts float64) string {
	return fmt.Sprintf("%.6f,%.6f\n", float64(tNs)/1e3, watts*1e6)
}
