package trace

import "sync"

// Tape memoizes the segment sequence of a Source so that many cursors —
// across the schemes and figures of an experiment matrix — replay one
// timeline without regenerating it. Segments are materialized lazily, in
// order, exactly as the underlying source would have produced them, so a
// replay is indistinguishable from the original source.
type Tape struct {
	mu   sync.Mutex
	src  Source
	name string
	segs []tapeSeg
}

type tapeSeg struct {
	dur int64
	p   float64
}

// NewTape wraps src. The tape takes ownership: src must not be used
// directly afterwards.
func NewTape(src Source) *Tape {
	src.Reset()
	return &Tape{src: src, name: src.Name()}
}

// seg returns segment i, generating forward as needed.
func (t *Tape) seg(i int) tapeSeg {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.segs) <= i {
		d, p := t.src.Next()
		t.segs = append(t.segs, tapeSeg{d, p})
	}
	return t.segs[i]
}

// Replay returns a fresh Source positioned at the start of the timeline.
// Replays are cheap and safe to use concurrently with each other.
func (t *Tape) Replay() Source { return &tapeReplay{t: t} }

type tapeReplay struct {
	t   *Tape
	pos int
}

func (r *tapeReplay) Name() string { return r.t.name }
func (r *tapeReplay) Reset()       { r.pos = 0 }
func (r *tapeReplay) Next() (int64, float64) {
	s := r.t.seg(r.pos)
	r.pos++
	return s.dur, s.p
}

// Shared profile tapes: one memoized timeline per (profile, seed),
// process-wide. Experiment matrices run the same timeline across dozens
// of (workload, scheme) cells; sharing the tape means the synthetic
// generator runs once per timeline instead of once per cell.
//
// The cache is bounded: a Monte-Carlo seed sweep walks an unbounded seed
// space, and an unbounded map would pin every timeline ever replayed for
// the life of the process. Least-recently-used tapes are evicted once the
// cache exceeds its cap; an evicted timeline is simply regenerated (bit
// identically) if it is requested again. Replays handed out before an
// eviction keep their tape alive independently of the cache.
var (
	tapesMu   sync.Mutex
	tapes     = map[tapeKey]*Tape{}
	tapeOrder []tapeKey // least recently used first
	tapeCap   = 64
)

type tapeKey struct {
	p    Profile
	seed int64
}

// SetTapeCacheCap sets the shared tape cache's maximum entry count and
// returns the previous cap, evicting least-recently-used tapes if the
// cache currently exceeds the new cap. Caps below 1 are clamped to 1.
func SetTapeCacheCap(n int) int {
	if n < 1 {
		n = 1
	}
	tapesMu.Lock()
	defer tapesMu.Unlock()
	prev := tapeCap
	tapeCap = n
	evictLocked()
	return prev
}

// TapeCacheLen reports the number of memoized timelines currently cached.
func TapeCacheLen() int {
	tapesMu.Lock()
	defer tapesMu.Unlock()
	return len(tapes)
}

// FlushSharedTapes drops every cached timeline. Outstanding replays keep
// working; subsequent NewShared calls regenerate from scratch.
func FlushSharedTapes() {
	tapesMu.Lock()
	defer tapesMu.Unlock()
	tapes = map[tapeKey]*Tape{}
	tapeOrder = tapeOrder[:0]
}

// touchLocked moves k to the most-recently-used end of the order.
func touchLocked(k tapeKey) {
	for i, o := range tapeOrder {
		if o == k {
			copy(tapeOrder[i:], tapeOrder[i+1:])
			tapeOrder[len(tapeOrder)-1] = k
			return
		}
	}
	tapeOrder = append(tapeOrder, k)
}

func evictLocked() {
	for len(tapes) > tapeCap {
		k := tapeOrder[0]
		tapeOrder = tapeOrder[1:]
		delete(tapes, k)
	}
}

// NewShared returns a source replaying the memoized (profile, seed)
// timeline — identical, segment for segment, to New(p, seed), but backed
// by a process-wide tape shared across all cursors of that timeline.
func NewShared(p Profile, seed int64) Source {
	k := tapeKey{p, seed}
	tapesMu.Lock()
	t := tapes[k]
	if t == nil {
		t = NewTape(New(p, seed))
		tapes[k] = t
	}
	touchLocked(k)
	evictLocked()
	tapesMu.Unlock()
	return t.Replay()
}
