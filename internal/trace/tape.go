package trace

import "sync"

// Tape memoizes the segment sequence of a Source so that many cursors —
// across the schemes and figures of an experiment matrix — replay one
// timeline without regenerating it. Segments are materialized lazily, in
// order, exactly as the underlying source would have produced them, so a
// replay is indistinguishable from the original source.
type Tape struct {
	mu   sync.Mutex
	src  Source
	name string
	segs []tapeSeg
}

type tapeSeg struct {
	dur int64
	p   float64
}

// NewTape wraps src. The tape takes ownership: src must not be used
// directly afterwards.
func NewTape(src Source) *Tape {
	src.Reset()
	return &Tape{src: src, name: src.Name()}
}

// seg returns segment i, generating forward as needed.
func (t *Tape) seg(i int) tapeSeg {
	t.mu.Lock()
	defer t.mu.Unlock()
	for len(t.segs) <= i {
		d, p := t.src.Next()
		t.segs = append(t.segs, tapeSeg{d, p})
	}
	return t.segs[i]
}

// Replay returns a fresh Source positioned at the start of the timeline.
// Replays are cheap and safe to use concurrently with each other.
func (t *Tape) Replay() Source { return &tapeReplay{t: t} }

type tapeReplay struct {
	t   *Tape
	pos int
}

func (r *tapeReplay) Name() string { return r.t.name }
func (r *tapeReplay) Reset()       { r.pos = 0 }
func (r *tapeReplay) Next() (int64, float64) {
	s := r.t.seg(r.pos)
	r.pos++
	return s.dur, s.p
}

// Shared profile tapes: one memoized timeline per (profile, seed),
// process-wide. Experiment matrices run the same timeline across dozens
// of (workload, scheme) cells; sharing the tape means the synthetic
// generator runs once per timeline instead of once per cell.
var (
	tapesMu sync.Mutex
	tapes   = map[tapeKey]*Tape{}
)

type tapeKey struct {
	p    Profile
	seed int64
}

// NewShared returns a source replaying the memoized (profile, seed)
// timeline — identical, segment for segment, to New(p, seed), but backed
// by a process-wide tape shared across all cursors of that timeline.
func NewShared(p Profile, seed int64) Source {
	tapesMu.Lock()
	t := tapes[tapeKey{p, seed}]
	if t == nil {
		t = NewTape(New(p, seed))
		tapes[tapeKey{p, seed}] = t
	}
	tapesMu.Unlock()
	return t.Replay()
}
