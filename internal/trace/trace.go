// Package trace synthesizes the ambient-power traces the evaluation runs
// under. The paper uses two real RF traces (RFHome, RFOffice) collected by
// NVPsim plus solar and thermal traces; those recordings are not
// redistributable, so this package generates seeded synthetic equivalents
// with the properties the experiments depend on: RF is bursty and weak,
// solar varies slowly around a higher mean, thermal is nearly constant.
// A (profile, seed) pair always reproduces the identical power timeline,
// so every scheme sees the same energy environment.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// Source produces a power trace as a sequence of piecewise-constant
// segments.
type Source interface {
	Name() string
	// Reset rewinds the source to the start of its timeline.
	Reset()
	// Next returns the next segment: a duration in nanoseconds and the
	// harvested power in watts over it.
	Next() (durNs int64, watts float64)
}

// Profile names a built-in trace generator.
type Profile int

const (
	RFHome Profile = iota
	RFOffice
	Solar
	Thermal
)

var profileNames = map[Profile]string{
	RFHome: "RFHome", RFOffice: "RFOffice", Solar: "solar", Thermal: "thermal",
}

func (p Profile) String() string {
	if s, ok := profileNames[p]; ok {
		return s
	}
	return fmt.Sprintf("profile(%d)", int(p))
}

// Profiles lists all built-in profiles in evaluation order.
func Profiles() []Profile { return []Profile{RFOffice, RFHome, Solar, Thermal} }

// ParseProfile resolves a profile's String form (e.g. "RFHome") back to
// the Profile. It does not cover the outage-free case — callers decide
// what name (if any) selects "no supply trace".
func ParseProfile(name string) (Profile, bool) {
	for p, n := range profileNames {
		if n == name {
			return p, true
		}
	}
	return 0, false
}

// New returns a seeded source for the profile.
func New(p Profile, seed int64) Source {
	switch p {
	case RFHome:
		// Home RF: sparse, longer bursts from a nearby transmitter.
		return newRF("RFHome", seed, rfParams{
			meanOnNs: 2_000_000, meanOffNs: 5_000_000,
			pMin: 0.4e-3, pMax: 1.6e-3, idle: 6e-6,
		})
	case RFOffice:
		// Office RF: denser but weaker bursts from many sources.
		return newRF("RFOffice", seed, rfParams{
			meanOnNs: 900_000, meanOffNs: 2_200_000,
			pMin: 0.3e-3, pMax: 1.2e-3, idle: 8e-6,
		})
	case Solar:
		return &solar{seed: seed, rng: rand.New(rand.NewSource(seed))}
	case Thermal:
		return &thermal{seed: seed, rng: rand.New(rand.NewSource(seed))}
	}
	panic("trace: unknown profile " + p.String())
}

// rfParams parameterizes the bursty RF generator.
type rfParams struct {
	meanOnNs  float64 // mean burst duration
	meanOffNs float64 // mean gap duration
	pMin      float64 // burst power range (watts)
	pMax      float64
	idle      float64 // trickle power between bursts
}

type rf struct {
	name string
	seed int64
	p    rfParams
	rng  *rand.Rand
	on   bool
}

func newRF(name string, seed int64, p rfParams) *rf {
	s := &rf{name: name, seed: seed, p: p}
	s.Reset()
	return s
}

func (s *rf) Name() string { return s.name }

func (s *rf) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.on = false
}

// expDur draws an exponential duration with the given mean, clamped to
// avoid degenerate zero-length segments.
func expDur(rng *rand.Rand, mean float64) int64 {
	d := int64(rng.ExpFloat64() * mean)
	if d < 1000 {
		d = 1000
	}
	return d
}

func (s *rf) Next() (int64, float64) {
	s.on = !s.on
	if s.on {
		dur := expDur(s.rng, s.p.meanOnNs)
		pow := s.p.pMin + s.rng.Float64()*(s.p.pMax-s.p.pMin)
		return dur, pow
	}
	return expDur(s.rng, s.p.meanOffNs), s.p.idle
}

// solar varies slowly (cloud shadowing) around a healthy mean: segments of
// a few ms whose power follows a slow sinusoid plus noise.
type solar struct {
	seed int64
	rng  *rand.Rand
	t    float64
}

func (s *solar) Name() string { return "solar" }
func (s *solar) Reset() {
	s.rng = rand.New(rand.NewSource(s.seed))
	s.t = 0
}

func (s *solar) Next() (int64, float64) {
	const segNs = 2_000_000
	s.t += segNs
	base := 0.55e-3
	swing := 0.25e-3 * math.Sin(2*math.Pi*s.t/(500*segNs))
	noise := (s.rng.Float64() - 0.5) * 0.1e-3
	p := base + swing + noise
	if p < 0.05e-3 {
		p = 0.05e-3
	}
	return segNs, p
}

// thermal is a weak, nearly constant source (body-heat TEG).
type thermal struct {
	seed int64
	rng  *rand.Rand
}

func (s *thermal) Name() string { return "thermal" }
func (s *thermal) Reset()       { s.rng = rand.New(rand.NewSource(s.seed)) }

func (s *thermal) Next() (int64, float64) {
	return 5_000_000, 0.40e-3 + (s.rng.Float64()-0.5)*0.02e-3
}

// Constant is an always-on source, useful for tests and for modelling a
// bench supply.
type Constant struct {
	P     float64
	Label string
}

func (c *Constant) Name() string {
	if c.Label != "" {
		return c.Label
	}
	return "constant"
}
func (c *Constant) Reset() {}
func (c *Constant) Next() (int64, float64) {
	return 1_000_000_000, c.P
}
