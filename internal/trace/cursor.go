package trace

import "repro/internal/energy"

// Cursor consumes a Source incrementally. The simulation engine uses it in
// two modes: Harvest integrates incoming energy over an execution interval,
// and ChargeUntil fast-forwards through a power-off period until the
// capacitor reaches a target voltage.
type Cursor struct {
	src       Source
	remaining int64
	power     float64
}

// NewCursor returns a cursor at the start of src's timeline.
func NewCursor(src Source) *Cursor {
	src.Reset()
	return &Cursor{src: src}
}

// Reset rewinds to the start of the timeline.
func (c *Cursor) Reset() {
	c.src.Reset()
	c.remaining = 0
	c.power = 0
}

func (c *Cursor) refill() {
	for c.remaining <= 0 {
		c.remaining, c.power = c.src.Next()
	}
}

// Power returns the instantaneous harvested power.
func (c *Cursor) Power() float64 {
	c.refill()
	return c.power
}

// SegmentRemaining returns the nanoseconds left in the current
// piecewise-constant segment — the window over which Power() is exact.
// The simulation engine sizes its batched accounting epochs to stay
// inside this window so its harvest-rate bound holds.
func (c *Cursor) SegmentRemaining() int64 {
	c.refill()
	return c.remaining
}

// Harvest advances the timeline by dt nanoseconds and returns the energy
// harvested over it.
func (c *Cursor) Harvest(dt int64) float64 {
	var e float64
	for dt > 0 {
		c.refill()
		step := dt
		if step > c.remaining {
			step = c.remaining
		}
		e += c.power * float64(step) * 1e-9
		c.remaining -= step
		dt -= step
	}
	return e
}

// ChargeUntil advances the timeline while the system is off, charging cap
// (net of the sleep draw pSleep) until it reaches targetV. It returns the
// elapsed off-time. If maxNs elapses first the charge attempt is abandoned
// and ok is false — the engine reports stagnation, matching an energy
// source too weak for forward progress (Section 4.1, "Forward Progress").
// Sleep draw is attributed to the ledger.
func (c *Cursor) ChargeUntil(cap *energy.Capacitor, targetV, pSleep float64, maxNs int64, led *energy.Ledger) (elapsed int64, ok bool) {
	for elapsed < maxNs {
		if cap.V() >= targetV {
			return elapsed, true
		}
		c.refill()
		step := c.remaining
		if elapsed+step > maxNs {
			step = maxNs - elapsed
		}
		net := c.power - pSleep
		need := cap.EnergyAt(targetV) - cap.Energy()
		if net > 0 {
			// Will the target be reached inside this segment?
			dt := int64(need / net * 1e9)
			if dt < step {
				if dt < 1 {
					dt = 1
				}
				step = dt
			}
		}
		sec := float64(step) * 1e-9
		led.Sleep += pSleep * sec
		cap.Draw(pSleep * sec)
		cap.Add(c.power * sec)
		c.remaining -= step
		elapsed += step
	}
	return elapsed, cap.V() >= targetV
}
