package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FileSource replays a recorded power trace — the format cmd/tracegen
// emits and the format real captures (like the NVPsim RF recordings the
// paper uses) are easily converted to: CSV rows of `time_us,power_uW`,
// each row starting one piecewise-constant segment. The final segment's
// duration is taken from TailNs (default 1 ms), and the whole trace loops
// so simulations longer than the recording keep harvesting.
type FileSource struct {
	Label string
	// TailNs is the duration of the last segment. 0 means 1 ms.
	TailNs int64

	segs []fileSeg
	pos  int
}

type fileSeg struct {
	durNs int64
	watts float64
}

// ParseCSV reads a `time_us,power_uW` stream. A header row is optional.
func ParseCSV(r io.Reader) (*FileSource, error) {
	sc := bufio.NewScanner(r)
	type point struct {
		tNs int64
		w   float64
	}
	var pts []point
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if line == 1 && strings.HasPrefix(strings.ToLower(text), "time") {
			continue // header
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want 2 fields, got %d", line, len(parts))
		}
		tUS, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: time: %v", line, err)
		}
		pUW, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: power: %v", line, err)
		}
		if pUW < 0 {
			return nil, fmt.Errorf("trace: line %d: negative power", line)
		}
		pts = append(pts, point{int64(tUS * 1e3), pUW * 1e-6})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("trace: empty trace")
	}
	f := &FileSource{Label: "file", TailNs: 1_000_000}
	for i, p := range pts {
		var dur int64
		if i+1 < len(pts) {
			dur = pts[i+1].tNs - p.tNs
			if dur <= 0 {
				return nil, fmt.Errorf("trace: non-increasing time at row %d", i+1)
			}
		} else {
			dur = f.TailNs
		}
		f.segs = append(f.segs, fileSeg{durNs: dur, watts: p.w})
	}
	return f, nil
}

// Name implements Source.
func (f *FileSource) Name() string { return f.Label }

// Reset implements Source.
func (f *FileSource) Reset() { f.pos = 0 }

// Next implements Source; the recording loops when exhausted.
func (f *FileSource) Next() (int64, float64) {
	s := f.segs[f.pos%len(f.segs)]
	f.pos++
	return s.durNs, s.watts
}

// Segments returns the number of recorded segments.
func (f *FileSource) Segments() int { return len(f.segs) }
