package trace

import "testing"

// drainSeg pulls the first segment from a source.
func drainSeg(s Source) (int64, float64) { return s.Next() }

func TestSharedTapeMatchesFresh(t *testing.T) {
	FlushSharedTapes()
	shared := NewShared(RFHome, 7)
	fresh := New(RFHome, 7)
	for i := 0; i < 1000; i++ {
		sd, sp := shared.Next()
		fd, fp := fresh.Next()
		if sd != fd || sp != fp {
			t.Fatalf("segment %d: shared (%d,%g) != fresh (%d,%g)", i, sd, sp, fd, fp)
		}
	}
}

func TestTapeCacheBounded(t *testing.T) {
	FlushSharedTapes()
	prev := SetTapeCacheCap(8)
	defer SetTapeCacheCap(prev)
	defer FlushSharedTapes()

	for seed := int64(1); seed <= 100; seed++ {
		NewShared(RFHome, seed)
		if n := TapeCacheLen(); n > 8 {
			t.Fatalf("cache grew to %d entries with cap 8", n)
		}
	}
	if n := TapeCacheLen(); n != 8 {
		t.Fatalf("cache holds %d entries after 100 inserts with cap 8, want 8", n)
	}
}

func TestTapeCacheLRUOrder(t *testing.T) {
	FlushSharedTapes()
	prev := SetTapeCacheCap(2)
	defer SetTapeCacheCap(prev)
	defer FlushSharedTapes()

	a := NewShared(Solar, 1) // cache: {1}
	NewShared(Solar, 2)      // cache: {1,2}
	NewShared(Solar, 1)      // touch 1 → LRU is 2
	NewShared(Solar, 3)      // evicts 2 → cache: {1,3}

	tapesMu.Lock()
	_, have1 := tapes[tapeKey{Solar, 1}]
	_, have2 := tapes[tapeKey{Solar, 2}]
	_, have3 := tapes[tapeKey{Solar, 3}]
	tapesMu.Unlock()
	if !have1 || have2 || !have3 {
		t.Fatalf("LRU kept wrong tapes: seed1=%v seed2=%v seed3=%v, want true/false/true", have1, have2, have3)
	}

	// An evicted timeline regenerates bit-identically.
	evicted := NewShared(Solar, 2)
	fresh := New(Solar, 2)
	for i := 0; i < 100; i++ {
		ed, ep := evicted.Next()
		fd, fp := fresh.Next()
		if ed != fd || ep != fp {
			t.Fatalf("segment %d after eviction: (%d,%g) != fresh (%d,%g)", i, ed, ep, fd, fp)
		}
	}

	// Replays handed out before the eviction keep working.
	if d, _ := drainSeg(a); d <= 0 {
		t.Fatalf("pre-eviction replay broke: dur %d", d)
	}
}
