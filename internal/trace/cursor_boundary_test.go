package trace

// Boundary coverage for the cursor primitives the batched-accounting
// engine leans on: zero-length and segment-spanning harvest intervals,
// the segment-remaining window, and tape replays standing in for their
// original sources.

import (
	"testing"

	"repro/internal/energy"
)

// steps is a deterministic two-segment repeating source: 1000 ns at 1 mW,
// then 500 ns at 2 mW.
type steps struct{ i int }

func (s *steps) Name() string { return "steps" }
func (s *steps) Reset()       { s.i = 0 }
func (s *steps) Next() (int64, float64) {
	s.i++
	if s.i%2 == 1 {
		return 1000, 1e-3
	}
	return 500, 2e-3
}

func TestHarvestZeroLength(t *testing.T) {
	c := NewCursor(&steps{})
	if e := c.Harvest(0); e != 0 {
		t.Fatalf("Harvest(0) = %g, want 0", e)
	}
	// A zero-length harvest must not advance the timeline.
	if got := c.Harvest(1000); got != 1e-3*1000e-9 {
		t.Fatalf("first segment after Harvest(0) = %g", got)
	}
}

func TestHarvestSpansSegments(t *testing.T) {
	// One call across both segments must equal the piecewise sum.
	whole := NewCursor(&steps{}).Harvest(1500)
	c := NewCursor(&steps{})
	parts := c.Harvest(1000) + c.Harvest(500)
	if whole != parts {
		t.Fatalf("spanning harvest %g != piecewise %g", whole, parts)
	}
	want := 1e-3*1000e-9 + 2e-3*500e-9
	if whole != want {
		t.Fatalf("harvest = %g, want %g", whole, want)
	}
}

func TestSegmentRemainingTracksConsumption(t *testing.T) {
	c := NewCursor(&steps{})
	if rem := c.SegmentRemaining(); rem != 1000 {
		t.Fatalf("fresh segment remaining = %d", rem)
	}
	c.Harvest(400)
	if rem := c.SegmentRemaining(); rem != 600 {
		t.Fatalf("after 400 ns, remaining = %d", rem)
	}
	c.Harvest(600)
	// Exactly exhausted: the next query must refill to the new segment.
	if rem, p := c.SegmentRemaining(), c.Power(); rem != 500 || p != 2e-3 {
		t.Fatalf("next segment = (%d, %g)", rem, p)
	}
}

func TestChargeUntilAlreadyCharged(t *testing.T) {
	cap := energy.NewCapacitor(470e-9, 3.5, 3.4)
	var led energy.Ledger
	elapsed, ok := NewCursor(&steps{}).ChargeUntil(cap, 3.3, 1e-6, 1e9, &led)
	if !ok || elapsed != 0 {
		t.Fatalf("ChargeUntil above target: elapsed=%d ok=%v", elapsed, ok)
	}
	if led.Sleep != 0 {
		t.Error("no time passed but sleep energy was charged")
	}
}

// TestTapeReplayMatchesSource proves NewShared timelines are segment-for-
// segment identical to fresh sources, including across concurrent
// replays that interleave lazy materialization.
func TestTapeReplayMatchesSource(t *testing.T) {
	fresh := New(RFHome, 42)
	replay := NewShared(RFHome, 42)
	for i := 0; i < 10_000; i++ {
		fd, fp := fresh.Next()
		rd, rp := replay.Next()
		if fd != rd || fp != rp {
			t.Fatalf("segment %d: fresh (%d, %g) != replay (%d, %g)", i, fd, fp, rd, rp)
		}
	}
	// A second replay starts over at the beginning.
	again := NewShared(RFHome, 42)
	fresh.Reset()
	for i := 0; i < 100; i++ {
		fd, fp := fresh.Next()
		rd, rp := again.Next()
		if fd != rd || fp != rp {
			t.Fatalf("second replay diverges at segment %d", i)
		}
	}
}

func TestTapeConcurrentReplays(t *testing.T) {
	tape := NewTape(New(RFOffice, 9))
	const n = 8
	done := make(chan []float64, n)
	for i := 0; i < n; i++ {
		go func() {
			r := tape.Replay()
			var powers []float64
			for j := 0; j < 2000; j++ {
				_, p := r.Next()
				powers = append(powers, p)
			}
			done <- powers
		}()
	}
	first := <-done
	for i := 1; i < n; i++ {
		got := <-done
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("replayer %d diverges at segment %d", i, j)
			}
		}
	}
}
