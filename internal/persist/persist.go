// Package persist models SweepCache's NVM-resident persist buffers
// (Sections 3.2–3.4, 4.2, 4.4–4.6): dual FIFO redo buffers with
// phase1Complete/phase2Complete bits, per-buffer empty-bits, and the
// write-back-instructive (WBI) bit tables.
//
// A buffer's life cycle per region:
//
//	Claim (region start) -> Append (t-phase1 evictions) ->
//	Seal (region end: s-phase1 flush entries added, phase windows fixed) ->
//	Retire (s-phase2 DMA done: entries applied to NVM, buffer empty)
//
// Phase completion is tracked as simulation timestamps; the persistent
// phase bits of the paper correspond to comparing those timestamps against
// the moment of power failure. Data is captured into entries at the time
// they are appended (the WAW rule of Section 4.3 guarantees the flushed
// lines cannot be modified while s-phase1 is conceptually in flight, so
// capture-at-boundary is behaviourally identical).
package persist

import (
	"repro/internal/mem"
)

// Entry is one buffer slot: a line-aligned address plus 64 bytes of data.
type Entry struct {
	Addr int64
	Data [mem.LineSize]byte
}

// Buffer is one FIFO persist buffer.
type Buffer struct {
	Entries []Entry
	// Sealed is set at the region end that closes this buffer.
	Sealed bool
	// Retired is set once the s-phase2 DMA has been applied to NVM.
	Retired bool
	// Phase1End / Phase2End are the simulation times at which s-phase1
	// (dirty-line flush into the buffer) and s-phase2 (DMA into NVM)
	// complete. Valid once Sealed.
	Phase1End int64
	Phase2End int64
	// Region is the sequence number of the region that filled the buffer.
	Region uint64

	cap int
}

// NewBuffer returns an empty buffer with the given entry capacity (the
// store threshold, Section 4.5).
func NewBuffer(capacity int) *Buffer {
	return &Buffer{cap: capacity}
}

// Cap returns the entry capacity.
func (b *Buffer) Cap() int { return b.cap }

// Empty reports the state of the buffer's empty-bit (Section 4.4).
func (b *Buffer) Empty() bool { return len(b.Entries) == 0 }

// Claim readies the buffer for a new region. It panics if the previous
// occupant has not retired — the structural hazard the scheme must avoid
// by stalling (Section 3.3).
func (b *Buffer) Claim(region uint64) {
	if len(b.Entries) > 0 && !b.Retired {
		panic("persist: claiming an unretired buffer")
	}
	b.Entries = b.Entries[:0]
	b.Sealed = false
	b.Retired = false
	b.Phase1End = 0
	b.Phase2End = 0
	b.Region = region
}

// Append quarantines one evicted dirty line (t-phase1). The FIFO may hold
// multiple entries for the same line; the youngest wins on search and on
// drain. Appending beyond capacity panics: the compiler's store threshold
// must make overflow impossible, and the property tests rely on that.
func (b *Buffer) Append(addr int64, data *[mem.LineSize]byte) {
	if b.Sealed {
		panic("persist: append to sealed buffer")
	}
	if len(b.Entries) >= b.cap {
		panic("persist: buffer overflow — compiler store threshold violated")
	}
	b.Entries = append(b.Entries, Entry{Addr: mem.LineAddr(addr), Data: *data})
}

// Seal closes the buffer at a region end, appending the s-phase1 flush
// set and fixing the phase windows. now is the region-end time;
// perLine1/perLine2 are the per-line costs of the flush and of the DMA
// drain; phase2Floor is the earliest moment s-phase2 may begin (the prior
// buffer's Phase2End — SweepCache keeps s-phase2 ordering sequential,
// Section 3.3 footnote).
func (b *Buffer) Seal(now int64, flush []Entry, perLine1, perLine2, phase2Floor int64) {
	if b.Sealed {
		panic("persist: double seal")
	}
	for i := range flush {
		if len(b.Entries) >= b.cap {
			panic("persist: buffer overflow at seal — store threshold violated")
		}
		b.Entries = append(b.Entries, flush[i])
	}
	b.Sealed = true
	b.Phase1End = now + int64(len(flush))*perLine1
	start := b.Phase1End
	if phase2Floor > start {
		start = phase2Floor
	}
	b.Phase2End = start + int64(len(b.Entries))*perLine2
}

// Phase1CompleteAt reports the phase1Complete bit as of time t.
func (b *Buffer) Phase1CompleteAt(t int64) bool {
	return b.Sealed && t >= b.Phase1End
}

// Phase2CompleteAt reports the phase2Complete bit as of time t.
func (b *Buffer) Phase2CompleteAt(t int64) bool {
	return b.Sealed && t >= b.Phase2End
}

// Find returns the youngest entry for addr's line, or nil. The caller
// accounts search latency (sequential, NVM-resident — Section 4.4).
func (b *Buffer) Find(addr int64) *Entry {
	la := mem.LineAddr(addr)
	for i := len(b.Entries) - 1; i >= 0; i-- {
		if b.Entries[i].Addr == la {
			return &b.Entries[i]
		}
	}
	return nil
}

// Drain applies the FIFO to NVM oldest-first, so a younger duplicate
// overwrites an older one (Section 3.2 footnote 4), then marks the buffer
// retired and empty. Drain is idempotent with respect to NVM contents,
// which is exactly why the (1,0) recovery case may simply redo it.
func (b *Buffer) Drain(nvm *mem.NVM) {
	for i := range b.Entries {
		nvm.WriteLine(b.Entries[i].Addr, &b.Entries[i].Data)
	}
	b.Entries = b.Entries[:0]
	b.Retired = true
}

// Discard empties the buffer without touching NVM — the (0,0) recovery
// case for a power-interrupted region.
func (b *Buffer) Discard() {
	b.Entries = b.Entries[:0]
	b.Sealed = false
	b.Retired = true
}

// Len returns the current entry count.
func (b *Buffer) Len() int { return len(b.Entries) }

// EntryAt returns the i-th entry (0 = oldest).
func (b *Buffer) EntryAt(i int) *Entry { return &b.Entries[i] }
