// Package persist models SweepCache's NVM-resident persist buffers
// (Sections 3.2–3.4, 4.2, 4.4–4.6): dual FIFO redo buffers with
// phase1Complete/phase2Complete bits, per-buffer empty-bits, and the
// write-back-instructive (WBI) bit tables.
//
// A buffer's life cycle per region:
//
//	Claim (region start) -> Append (t-phase1 evictions) ->
//	Seal (region end: s-phase1 flush entries added, phase windows fixed) ->
//	Retire (s-phase2 DMA done: entries applied to NVM, buffer empty)
//
// Phase completion is tracked as simulation timestamps; the persistent
// phase bits of the paper correspond to comparing those timestamps against
// the moment of power failure. Data is captured into entries at the time
// they are appended (the WAW rule of Section 4.3 guarantees the flushed
// lines cannot be modified while s-phase1 is conceptually in flight, so
// capture-at-boundary is behaviourally identical).
package persist

import (
	"repro/internal/mem"
)

// Entry is one buffer slot: a line-aligned address plus 64 bytes of data.
type Entry struct {
	Addr int64
	Data [mem.LineSize]byte
}

// Buffer is one FIFO persist buffer.
type Buffer struct {
	Entries []Entry
	// Sealed is set at the region end that closes this buffer.
	Sealed bool
	// Retired is set once the s-phase2 DMA has been applied to NVM.
	Retired bool
	// Phase1End / Phase2End are the simulation times at which s-phase1
	// (dirty-line flush into the buffer) and s-phase2 (DMA into NVM)
	// complete. Valid once Sealed.
	Phase1End int64
	Phase2End int64
	// Region is the sequence number of the region that filled the buffer.
	Region uint64

	cap int
	// idx is a fixed-size open-addressed (linear probing) table mapping a
	// line address to the position of its youngest entry, so Find locates
	// the hit arithmetically instead of scanning entry data. The *charged*
	// search cost is unchanged: callers derive the modelled sequential
	// probe depth from the returned position (FindDepth). Sized at twice
	// the entry capacity, the load factor never exceeds one half. Slots
	// are generation-tagged: a slot is live iff its gen equals idxGen, and
	// emptying the buffer bumps idxGen instead of wiping the table, so the
	// per-region Claim/Drain/Discard cycle costs one increment. Within one
	// generation slots only ever fill — never empty — which keeps every
	// live key reachable from its home slot without tombstones.
	idx      []idxSlot
	idxMask  uint64
	idxShift uint
	idxGen   uint64
}

type idxSlot struct {
	key int64 // line address
	pos int32 // youngest entry position for key
	gen uint64
}

// NewBuffer returns an empty buffer with the given entry capacity (the
// store threshold, Section 4.5).
func NewBuffer(capacity int) *Buffer {
	size, bits := 8, uint(3)
	for size < 2*capacity {
		size <<= 1
		bits++
	}
	return &Buffer{
		cap:      capacity,
		idx:      make([]idxSlot, size),
		idxMask:  uint64(size - 1),
		idxShift: 64 - bits,
		// Zeroed slots carry gen 0; starting the generation at 1 makes
		// them stale without an initialization pass.
		idxGen: 1,
	}
}

// idxHome returns la's home slot: a Fibonacci hash of the line number,
// taking the high multiply bits for spread.
func (b *Buffer) idxHome(la int64) uint64 {
	return (uint64(la) >> 6 * 0x9E3779B97F4A7C15) >> b.idxShift & b.idxMask
}

// idxPut records pos as the youngest entry for la. Linear probing stops at
// la's existing slot (overwritten: youngest wins) or the first stale slot;
// a stale slot cannot precede a live key in its chain, because live slots
// never empty within a generation.
func (b *Buffer) idxPut(la int64, pos int) {
	i := b.idxHome(la)
	for {
		s := &b.idx[i]
		if s.gen != b.idxGen || s.key == la {
			s.key, s.pos, s.gen = la, int32(pos), b.idxGen
			return
		}
		i = (i + 1) & b.idxMask
	}
}

// Cap returns the entry capacity.
func (b *Buffer) Cap() int { return b.cap }

// Empty reports the state of the buffer's empty-bit (Section 4.4).
func (b *Buffer) Empty() bool { return len(b.Entries) == 0 }

// Claim readies the buffer for a new region. It panics if the previous
// occupant has not retired — the structural hazard the scheme must avoid
// by stalling (Section 3.3).
func (b *Buffer) Claim(region uint64) {
	if len(b.Entries) > 0 && !b.Retired {
		panic("persist: claiming an unretired buffer")
	}
	b.Entries = b.Entries[:0]
	b.idxGen++
	b.Sealed = false
	b.Retired = false
	b.Phase1End = 0
	b.Phase2End = 0
	b.Region = region
}

// Append quarantines one evicted dirty line (t-phase1). The FIFO may hold
// multiple entries for the same line; the youngest wins on search and on
// drain. Appending beyond capacity panics: the compiler's store threshold
// must make overflow impossible, and the property tests rely on that.
func (b *Buffer) Append(addr int64, data *[mem.LineSize]byte) {
	if b.Sealed {
		panic("persist: append to sealed buffer")
	}
	if len(b.Entries) >= b.cap {
		panic("persist: buffer overflow — compiler store threshold violated")
	}
	la := mem.LineAddr(addr)
	b.Entries = append(b.Entries, Entry{Addr: la, Data: *data})
	b.idxPut(la, len(b.Entries)-1)
}

// Seal closes the buffer at a region end, appending the s-phase1 flush
// set and fixing the phase windows. now is the region-end time;
// perLine1/perLine2 are the per-line costs of the flush and of the DMA
// drain; phase2Floor is the earliest moment s-phase2 may begin (the prior
// buffer's Phase2End — SweepCache keeps s-phase2 ordering sequential,
// Section 3.3 footnote).
func (b *Buffer) Seal(now int64, flush []Entry, perLine1, perLine2, phase2Floor int64) {
	if b.Sealed {
		panic("persist: double seal")
	}
	for i := range flush {
		if len(b.Entries) >= b.cap {
			panic("persist: buffer overflow at seal — store threshold violated")
		}
		b.Entries = append(b.Entries, flush[i])
		b.idxPut(flush[i].Addr, len(b.Entries)-1)
	}
	b.Sealed = true
	b.Phase1End = now + int64(len(flush))*perLine1
	start := b.Phase1End
	if phase2Floor > start {
		start = phase2Floor
	}
	b.Phase2End = start + int64(len(b.Entries))*perLine2
}

// Phase1CompleteAt reports the phase1Complete bit as of time t.
func (b *Buffer) Phase1CompleteAt(t int64) bool {
	return b.Sealed && t >= b.Phase1End
}

// Phase2CompleteAt reports the phase2Complete bit as of time t.
func (b *Buffer) Phase2CompleteAt(t int64) bool {
	return b.Sealed && t >= b.Phase2End
}

// Find returns the youngest entry for addr's line, or nil. The caller
// accounts search latency (sequential, NVM-resident — Section 4.4); use
// FindDepth when the modelled probe depth is needed.
func (b *Buffer) Find(addr int64) *Entry {
	e, _ := b.FindDepth(addr)
	return e
}

// FindDepth returns the youngest entry for addr's line (or nil) plus the
// number of entries the modelled hardware's youngest-first sequential scan
// would probe: Len()-i for a hit at position i, Len() for a miss. The hit
// position comes from the youngest-entry index, so no entry data is
// touched, but the charged per-entry search cost is exactly the linear
// scan's.
func (b *Buffer) FindDepth(addr int64) (*Entry, int) {
	la := mem.LineAddr(addr)
	i := b.idxHome(la)
	for {
		s := &b.idx[i]
		if s.gen != b.idxGen {
			return nil, len(b.Entries)
		}
		if s.key == la {
			return &b.Entries[s.pos], len(b.Entries) - int(s.pos)
		}
		i = (i + 1) & b.idxMask
	}
}

// Drain applies the FIFO to NVM oldest-first, so a younger duplicate
// overwrites an older one (Section 3.2 footnote 4), then marks the buffer
// retired and empty. Drain is idempotent with respect to NVM contents,
// which is exactly why the (1,0) recovery case may simply redo it.
func (b *Buffer) Drain(nvm *mem.NVM) {
	for i := range b.Entries {
		nvm.WriteLine(b.Entries[i].Addr, &b.Entries[i].Data)
	}
	b.Entries = b.Entries[:0]
	b.idxGen++
	b.Retired = true
}

// Discard empties the buffer without touching NVM — the (0,0) recovery
// case for a power-interrupted region.
func (b *Buffer) Discard() {
	b.Entries = b.Entries[:0]
	b.idxGen++
	b.Sealed = false
	b.Retired = true
}

// Len returns the current entry count.
func (b *Buffer) Len() int { return len(b.Entries) }

// EntryAt returns the i-th entry (0 = oldest).
func (b *Buffer) EntryAt(i int) *Entry { return &b.Entries[i] }
