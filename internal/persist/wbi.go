package persist

import "math/bits"

// WBITable is the write-back-instructive table (Section 4.6): one SRAM bit
// per cacheline, set when a store dirties the line during the current
// region, so the region-end flush can enumerate dirty lines without
// scanning the whole cache. SweepCache deploys two, one per persist
// buffer, to avoid structural hazards between adjacent regions.
type WBITable struct {
	bits []uint64
	n    int
}

// NewWBITable returns a table covering numLines cachelines.
func NewWBITable(numLines int) *WBITable {
	return &WBITable{bits: make([]uint64, (numLines+63)/64), n: numLines}
}

// Set marks cacheline slot dirty in this region.
func (t *WBITable) Set(slot int) { t.bits[slot/64] |= 1 << (slot % 64) }

// Get reports whether slot is marked.
func (t *WBITable) Get(slot int) bool { return t.bits[slot/64]&(1<<(slot%64)) != 0 }

// ClearBit unmarks slot (its line was evicted mid-region and is already
// quarantined in the persist buffer).
func (t *WBITable) ClearBit(slot int) { t.bits[slot/64] &^= 1 << (slot % 64) }

// Clear resets the table for the next region.
func (t *WBITable) Clear() {
	for i := range t.bits {
		t.bits[i] = 0
	}
}

// Count returns the number of marked lines.
func (t *WBITable) Count() int {
	n := 0
	for _, w := range t.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// SizeBits returns the table's SRAM cost in bits (Section 6.9).
func (t *WBITable) SizeBits() int { return t.n }

// HardwareCostBits returns SweepCache's total extra state in bits beyond
// the two persist buffers for a cache of numLines lines: two empty-bits,
// four phaseComplete bits, and two WBI tables (Section 6.9 — 134 bits for
// a 4 kB cache with 64 B lines).
func HardwareCostBits(numLines int) int {
	return 2 + 4 + 2*numLines
}
