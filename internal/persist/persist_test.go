package persist

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func lineData(b byte) *[mem.LineSize]byte {
	var d [mem.LineSize]byte
	for i := range d {
		d[i] = b
	}
	return &d
}

func TestBufferLifecycle(t *testing.T) {
	b := NewBuffer(8)
	if !b.Empty() {
		t.Fatal("fresh buffer not empty")
	}
	b.Claim(1)
	b.Append(128, lineData(1))
	b.Append(256, lineData(2))
	if b.Empty() || b.Len() != 2 {
		t.Fatal("append")
	}
	flush := []Entry{{Addr: 512, Data: *lineData(3)}}
	b.Seal(1000, flush, 10, 20, 0)
	if !b.Sealed || b.Len() != 3 {
		t.Fatal("seal")
	}
	// Phase windows: phase1 = 1000 + 1*10; phase2 = 1010 + 3*20 = 1070.
	if b.Phase1End != 1010 || b.Phase2End != 1070 {
		t.Fatalf("phase ends: %d %d", b.Phase1End, b.Phase2End)
	}
	if b.Phase1CompleteAt(1009) || !b.Phase1CompleteAt(1010) {
		t.Error("phase1 bit")
	}
	if b.Phase2CompleteAt(1069) || !b.Phase2CompleteAt(1070) {
		t.Error("phase2 bit")
	}
	nvm := mem.New(1 << 20)
	b.Drain(nvm)
	if !b.Retired || !b.Empty() {
		t.Error("drain state")
	}
	if nvm.PeekWord(512) == 0 || nvm.LineWrites != 3 {
		t.Error("drain contents/counters")
	}
}

func TestSealPhase2Floor(t *testing.T) {
	b := NewBuffer(8)
	b.Claim(1)
	b.Seal(100, nil, 10, 20, 5000)
	// No flush entries: phase1 ends immediately; phase2 floored at 5000.
	if b.Phase1End != 100 || b.Phase2End != 5000 {
		t.Errorf("ends: %d %d", b.Phase1End, b.Phase2End)
	}
}

func TestFindYoungestWins(t *testing.T) {
	b := NewBuffer(8)
	b.Claim(1)
	b.Append(128, lineData(1))
	b.Append(128, lineData(9))
	e := b.Find(130) // any address within the line
	if e == nil || e.Data[0] != 9 {
		t.Fatal("youngest entry must win")
	}
	if b.Find(4096) != nil {
		t.Error("found absent line")
	}
}

func TestDrainOrderYoungerOverwrites(t *testing.T) {
	b := NewBuffer(8)
	b.Claim(1)
	b.Append(128, lineData(1))
	b.Append(128, lineData(9))
	nvm := mem.New(1 << 20)
	b.Drain(nvm)
	var got [mem.LineSize]byte
	nvm.ReadLine(128, &got)
	if got[0] != 9 {
		t.Error("older entry overwrote younger")
	}
}

func TestDiscardLeavesNVMIntact(t *testing.T) {
	b := NewBuffer(8)
	b.Claim(1)
	b.Append(128, lineData(5))
	b.Discard()
	if !b.Retired || b.Len() != 0 {
		t.Error("discard state")
	}
}

func TestOverflowPanics(t *testing.T) {
	b := NewBuffer(2)
	b.Claim(1)
	b.Append(0, lineData(1))
	b.Append(64, lineData(2))
	defer func() {
		if recover() == nil {
			t.Fatal("no overflow panic")
		}
	}()
	b.Append(128, lineData(3))
}

func TestSealOverflowPanics(t *testing.T) {
	b := NewBuffer(2)
	b.Claim(1)
	b.Append(0, lineData(1))
	defer func() {
		if recover() == nil {
			t.Fatal("no overflow panic at seal")
		}
	}()
	b.Seal(0, []Entry{{Addr: 64}, {Addr: 128}}, 1, 1, 0)
}

func TestClaimUnretiredPanics(t *testing.T) {
	b := NewBuffer(4)
	b.Claim(1)
	b.Append(0, lineData(1))
	b.Seal(0, nil, 1, 1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("claimed an unretired buffer")
		}
	}()
	b.Claim(2)
}

func TestDrainIdempotent(t *testing.T) {
	// Redoing a drain (the (1,0) recovery case) must be harmless: apply
	// entries to one NVM, then re-apply to another that already received
	// a partial prefix; both must agree.
	if err := quick.Check(func(vals []byte) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 16 {
			vals = vals[:16]
		}
		build := func() *Buffer {
			b := NewBuffer(32)
			b.Claim(1)
			for i, v := range vals {
				b.Append(int64(i%4)*64, lineData(v))
			}
			b.Seal(0, nil, 1, 1, 0)
			return b
		}
		full := mem.New(1 << 16)
		build().Drain(full)

		partial := mem.New(1 << 16)
		bp := build()
		// Simulate a crash mid-drain: apply a prefix manually.
		for i := 0; i < len(vals)/2; i++ {
			e := bp.EntryAt(i)
			partial.WriteLine(e.Addr, &e.Data)
		}
		bp.Drain(partial) // redo from the start
		return full.Equal(partial)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestWBITable(t *testing.T) {
	w := NewWBITable(64)
	if w.Count() != 0 {
		t.Fatal("fresh count")
	}
	w.Set(0)
	w.Set(63)
	w.Set(63)
	if !w.Get(0) || !w.Get(63) || w.Get(5) {
		t.Error("get/set")
	}
	if w.Count() != 2 {
		t.Errorf("count = %d", w.Count())
	}
	w.ClearBit(63)
	if w.Get(63) || w.Count() != 1 {
		t.Error("clear bit")
	}
	w.Clear()
	if w.Count() != 0 {
		t.Error("clear all")
	}
	if w.SizeBits() != 64 {
		t.Error("size")
	}
}

func TestHardwareCostMatchesPaper(t *testing.T) {
	// Section 6.9: 4 kB cache, 64 B lines -> 64 lines -> 134 bits.
	if got := HardwareCostBits(64); got != 134 {
		t.Errorf("hardware cost = %d, want 134", got)
	}
}
